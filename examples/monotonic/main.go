// Monotonic: the Section 1.1 technique for clients that need a locally
// monotonic clock. The synchronization algorithms freely set a server's
// clock backward; a monotonic view "temporarily runs more slowly when the
// nonmonotonic clock is set backwards" and rejoins it once the underlying
// clock catches up — so event ordering never sees time run in reverse.
package main

import (
	"fmt"

	"disttime"
)

func main() {
	// A server clock that runs 2% fast and gets corrected (set backward)
	// by its time service every 40 s.
	server := disttime.NewDriftingClock(0, 0, 0.02)
	mono := disttime.NewMonotonicClock(server, 0.5)

	fmt.Println("server clock runs 2% fast; the service sets it back 4s every 40s")
	fmt.Println("the monotonic view runs at half speed while catching up, never backward:")
	fmt.Printf("\n%8s  %12s  %12s  %10s\n", "t (s)", "server clock", "monotonic", "view ahead")

	var lastMono float64
	violations := 0
	events := 0
	var lastStamp float64
	for t := 0.0; t <= 120; t += 2 {
		if t > 0 && int(t)%40 == 0 {
			// The time service corrects the fast clock backward, past the
			// last monotonic reading.
			server.Set(t, server.Read(t)-4)
		}
		m := mono.Read(t)
		if m < lastMono {
			violations++
		}
		lastMono = m
		fmt.Printf("%8.0f  %12.3f  %12.3f  %10.3f\n", t, server.Read(t), m, mono.Offset())

		// Timestamp an event stream with the monotonic view.
		stamp := mono.Read(t)
		if stamp >= lastStamp {
			events++
		}
		lastStamp = stamp
	}

	fmt.Printf("\nmonotonicity violations: %d (events stamped in order: %d)\n", violations, events)
}
