// Faultydrift: the paper's Section 3 recovery experiment, narrated. Two
// servers share a network; one claims its drift is bounded by one second
// a day but actually runs about four percent fast (an hour a day). Every
// time it tries to synchronize it finds itself inconsistent with its
// neighbor, so it obtains the time from a server on another network —
// and, as the paper observes, "the time of the inaccurate clock would be
// very far off by the time it reset."
package main

import (
	"fmt"
	"log"

	"disttime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		day = 86400.0
		tau = 600.0 // the servers check each other every 10 minutes
	)
	specs := []disttime.ServerSpec{
		{ // S0: healthy server on the local network.
			Delta: 2.0 / day, Drift: 1.0 / day,
			InitialError: 0.5, SyncEvery: tau, Recovery: true,
		},
		{ // S1: claims 1 s/day; actually 4% fast.
			Delta: 1.0 / day, Drift: 0.04,
			InitialError: 0.5, SyncEvery: tau, Recovery: true,
		},
		{ // S2: the reference server on another network.
			Delta: 2.0 / day, Drift: -1.0 / day,
			InitialError: 0.5, SyncEvery: tau,
		},
	}
	sim, err := disttime.NewSimulation(disttime.SimulationConfig{
		Seed:     11,
		Delay:    disttime.UniformDelay{Max: 0.05},
		Topology: disttime.Custom,
		Fn:       disttime.MM{},
		Servers:  specs,
	})
	if err != nil {
		return err
	}
	link := disttime.LinkConfig{Delay: disttime.UniformDelay{Max: 0.05}}
	for _, pair := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
		if err := sim.Net.Connect(sim.Nodes[pair[0]].NetID, sim.Nodes[pair[1]].NetID, link); err != nil {
			return err
		}
	}

	fmt.Println("S1 claims a drift bound of 1 s/day but gains 4% (~144 s per hour).")
	fmt.Println("Watch it swing away and get yanked back by recovery each sync period:")
	fmt.Printf("\n%8s  %14s  %14s  %8s  %s\n",
		"t (s)", "S1 offset (s)", "S0 offset (s)", "consistent", "recoveries so far")
	for t := 600.0; t <= 6*3600; t += 600 {
		sim.Run(t)
		s := sim.Snapshot()
		fmt.Printf("%8.0f  %14.3f  %14.6f  %8v  %d\n",
			s.T, s.Offset[1], s.Offset[0], s.Consistent, sim.Nodes[1].Recoveries)
	}

	s := sim.Snapshot()
	fmt.Printf("\nafter %v simulated hours:\n", s.T/3600)
	fmt.Printf("  unchecked, S1 would be off by %.0f s\n", 0.04*s.T)
	fmt.Printf("  with recovery it is off by %.3f s (%d inconsistencies, %d recoveries)\n",
		s.Offset[1], sim.Nodes[1].Server.Inconsistencies(), sim.Nodes[1].Recoveries)
	fmt.Printf("  the healthy S0 stayed correct: |offset| %.6f <= E %.6f\n",
		s.Offset[0], s.E[0])
	return nil
}
