// Peers: a dynamic time-service cluster over real UDP. One anchor peer
// holds a pre-disciplined clock; three more peers join knowing a single
// seed address each — two of them are never told where the anchor is.
// Membership gossip spreads the roster, the drift-aware failure detector
// stands guard, and every sync round polls the live members with the
// smallest advertised maximum error, so accuracy flows outward from the
// anchor exactly as the paper's MM rule prescribes — applied to
// topology instead of replies.
package main

import (
	"fmt"
	"log"
	"math"
	"net"
	"time"

	"disttime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// reserveAddrs binds n loopback UDP sockets to learn n free ports, then
// releases them so the peers can claim the addresses.
func reserveAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	conns := make([]*net.UDPConn, n)
	for i := range addrs {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return nil, err
		}
		conns[i] = conn
		addrs[i] = conn.LocalAddr().String()
	}
	for _, conn := range conns {
		conn.Close()
	}
	return addrs, nil
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(d time.Duration, what string, cond func() bool) error {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("timed out after %v waiting for %s", d, what)
}

func run() error {
	// Four addresses up front: the anchor and three joiners. Nothing
	// else is configured statically — each peer gets one seed address.
	addrs, err := reserveAddrs(4)
	if err != nil {
		return err
	}
	membership := disttime.MembershipConfig{Gossip: 150 * time.Millisecond}

	// The anchor: a peer whose disciplined clock is pre-set from the OS
	// clock with a 5 ms bound. It advertises that small error, so
	// quality ranking sends everyone's polls its way.
	anchorClock, err := disttime.NewDisciplinedClock(100)
	if err != nil {
		return err
	}
	if err := anchorClock.Set(time.Now(), 5*time.Millisecond); err != nil {
		return err
	}
	anchor, err := disttime.NewPeer(disttime.PeerConfig{
		Addr:       addrs[0],
		ID:         100,
		Clock:      anchorClock,
		Seeds:      []string{addrs[1]},
		Membership: membership,
		Interval:   200 * time.Millisecond,
		Timeout:    time.Second,
	})
	if err != nil {
		return err
	}
	defer anchor.Close()
	fmt.Printf("anchor peer on %v (clock pre-set to +/- 5ms)\n", anchor.Addr())

	// Three joiners. Peer 1 seeds to the anchor; peers 2 and 3 seed to
	// peer 1 and must *learn* the anchor's address through gossip before
	// they can synchronize at all — the dynamic join.
	var peers []*disttime.Peer
	for i := 1; i <= 3; i++ {
		seed := addrs[0]
		if i > 1 {
			seed = addrs[1]
		}
		peer, err := disttime.NewPeer(disttime.PeerConfig{
			Addr:       addrs[i],
			ID:         uint64(i),
			DriftPPM:   100,
			Seeds:      []string{seed},
			Membership: membership,
			Interval:   200 * time.Millisecond,
			Timeout:    time.Second,
		})
		if err != nil {
			return err
		}
		defer peer.Close()
		peers = append(peers, peer)
		fmt.Printf("peer %d on %v (seed: %s)\n", i, peer.Addr(), seed)
	}

	// Gossip converges: every peer's roster reaches all four members.
	all := append([]*disttime.Peer{anchor}, peers...)
	err = waitFor(20*time.Second, "roster convergence", func() bool {
		for _, p := range all {
			alive := 0
			for _, e := range p.Members() {
				if e.Status == disttime.MemberAlive {
					alive++
				}
			}
			if alive < len(all) {
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nrosters converged: every peer sees %d alive members\n", len(all))

	// Quality-ranked polling then disciplines every joiner from the
	// anchor's timeline.
	err = waitFor(20*time.Second, "all peers synchronized", func() bool {
		for _, p := range peers {
			if _, _, synced := p.Clock().Now(); !synced {
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}

	// The membership view of the last joiner: it was seeded with one
	// address and now knows — and ranks — the whole cluster.
	fmt.Println("\npeer 3's learned roster (seeded with one address):")
	for _, e := range peers[2].Members() {
		self := ""
		if e.ID == peers[2].Addr().String() {
			self = "  (self)"
		}
		adv := "inf (last heard unsynchronized)"
		if !math.IsInf(e.E, 1) {
			adv = time.Duration(e.E * float64(time.Second)).Round(time.Microsecond).String()
		}
		fmt.Printf("  %-21s %-7v advertised E=%-12s%s\n", e.ID, e.Status, adv, self)
	}

	// A client queries the whole service and intersects the answers.
	client := disttime.NewUDPClient(time.Second, nil)
	ms, err := client.QueryMany(addrs)
	if err != nil {
		return err
	}
	fmt.Println("\nservice answers:")
	var readings []disttime.TimeReading
	for _, m := range ms {
		fmt.Printf("  server %3d: C=%s E=%-12v RTT=%v\n",
			m.ServerID, m.C.Format("15:04:05.000000"), m.E, m.RTT.Round(time.Microsecond))
		readings = append(readings, disttime.TimeReading{C: m.C, E: m.E + m.RTT})
	}
	c, e, ok := disttime.IntersectReadings(readings)
	if !ok {
		return fmt.Errorf("service inconsistent")
	}
	fmt.Printf("\nintersected: %s +/- %v (from %d servers)\n",
		c.Format("15:04:05.000000"), e, len(readings))

	// Peers carry chained error bounds: anchor error + transit + their
	// own drift allowance. The bound covers the actual offset.
	fmt.Println("\npeer clock quality:")
	for i, p := range peers {
		now, maxErr, _ := p.Clock().Now()
		off := now.Sub(time.Now())
		fmt.Printf("  peer %d: offset %-12v bound %-12v rounds %d, served %d requests\n",
			i+1, off.Round(time.Microsecond), maxErr, p.Rounds(), p.Requests())
	}
	return nil
}
