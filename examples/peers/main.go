// Peers: a small time service built from full peers over real UDP. One
// reference server anchors the timeline; three peers each serve time from
// a disciplined software clock while synchronizing against the reference
// and each other — the composition the paper's time servers run on the
// Xerox internet, on loopback.
package main

import (
	"fmt"
	"log"
	"time"

	"disttime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The reference: an OS-clock server trusted to 5 ms.
	refSrc, err := disttime.NewSystemClock(5*time.Millisecond, 100)
	if err != nil {
		return err
	}
	ref, err := disttime.NewUDPServer("127.0.0.1:0", 100, refSrc)
	if err != nil {
		return err
	}
	defer ref.Close()
	fmt.Printf("reference server on %v\n", ref.Addr())

	// Three peers. Each knows the reference and the peers started before
	// it, forming a partial mesh; all serve time themselves.
	var peers []*disttime.Peer
	addrs := []string{ref.Addr().String()}
	for i := 1; i <= 3; i++ {
		synced := make(chan struct{}, 1)
		peer, err := disttime.NewPeer(disttime.PeerConfig{
			Addr:     "127.0.0.1:0",
			ID:       uint64(i),
			DriftPPM: 100,
			Peers:    append([]string(nil), addrs...),
			Interval: 200 * time.Millisecond,
			Timeout:  time.Second,
			OnSync: func(r disttime.SyncReport) {
				if r.Err == nil {
					select {
					case synced <- struct{}{}:
					default:
					}
				}
			},
		})
		if err != nil {
			return err
		}
		defer peer.Close()
		select {
		case <-synced:
		case <-time.After(5 * time.Second):
			return fmt.Errorf("peer %d never synchronized", i)
		}
		peers = append(peers, peer)
		addrs = append(addrs, peer.Addr().String())
		fmt.Printf("peer %d on %v (syncing against %d upstreams)\n", i, peer.Addr(), len(addrs)-1)
	}

	// A client queries the whole service — reference and peers alike —
	// and intersects the answers.
	client := disttime.NewUDPClient(time.Second, nil)
	ms, err := client.QueryMany(addrs)
	if err != nil {
		return err
	}
	fmt.Println("\nservice answers:")
	var readings []disttime.TimeReading
	for _, m := range ms {
		fmt.Printf("  server %3d: C=%s E=%-12v RTT=%v\n",
			m.ServerID, m.C.Format("15:04:05.000000"), m.E, m.RTT.Round(time.Microsecond))
		readings = append(readings, disttime.TimeReading{C: m.C, E: m.E + m.RTT})
	}
	c, e, ok := disttime.IntersectReadings(readings)
	if !ok {
		return fmt.Errorf("service inconsistent")
	}
	fmt.Printf("\nintersected: %s +/- %v (from %d servers)\n",
		c.Format("15:04:05.000000"), e, len(readings))

	// Peers carry chained error bounds: reference error + transit + their
	// own drift allowance. The bound covers the actual offset.
	fmt.Println("\npeer clock quality:")
	for i, p := range peers {
		now, maxErr, _ := p.Clock().Now()
		off := now.Sub(time.Now())
		fmt.Printf("  peer %d: offset %-12v bound %-12v rounds %d, served %d requests\n",
			i+1, off.Round(time.Microsecond), maxErr, p.Rounds(), p.Requests())
	}
	return nil
}
