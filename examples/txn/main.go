// Txn: external consistency bought with commit-wait. Four servers start
// with clocks skewed across the full error envelope — each contained in
// its own [C-E, C+E] interval, but up to 80 ms apart from each other.
// One client per server runs transactions stamped with hybrid logical
// clock timestamps drawn from the server's latest bound C+E.
//
// The run is performed twice. With the real commit-wait (hold each
// transaction until the server's earliest bound C-E passes its stamp),
// a transaction that completes before another starts always carries the
// smaller timestamp: true time at the first commit is past its stamp,
// and the second stamp — at least true time — lands above it. With the
// planted BuggyCommitWait (commit immediately), a fast server's stamp
// runs ahead of true time and a later transaction on a slow server
// undercuts it, so the workload's online checker fires. The example
// asserts both outcomes: zero violations with the wait, some without.
package main

import (
	"fmt"
	"log"

	"disttime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// workload runs a 4-server simulation for 120 virtual seconds under the
// given commit policy and reports commits, violations, and the longest
// wait.
func workload(waiter disttime.CommitWaiter) (commits, violations int, maxWait float64, err error) {
	specs := make([]disttime.ServerSpec, 4)
	for i := range specs {
		specs[i] = disttime.ServerSpec{
			Delta:         1e-4,
			Drift:         1e-4 * (1 - 2*float64(i%2)), // alternate fast/slow
			InitialOffset: 0.04 - 0.08*float64(i)/3,    // spread across [-40ms, +40ms]
			InitialError:  0.05,
			SyncEvery:     20,
		}
	}
	svc, err := disttime.NewSimulation(disttime.SimulationConfig{
		Seed:    7,
		Delay:   disttime.UniformDelay{Max: 0.05},
		Fn:      disttime.IM{},
		Servers: specs,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	w, err := disttime.AttachTxns(svc, disttime.TxnConfig{
		Clients: 4,
		Rate:    2,
		Waiter:  waiter,
		OnCommit: func(x disttime.Txn) {
			if wait := x.Commit - x.Start; wait > maxWait {
				maxWait = wait
			}
		},
	})
	if err != nil {
		return 0, 0, 0, err
	}
	svc.Run(120)
	return w.Commits, w.Violations, maxWait, nil
}

func run() error {
	commits, violations, maxWait, err := workload(disttime.CommitWait{})
	if err != nil {
		return err
	}
	fmt.Printf("commit-wait:       %4d commits, %3d violations, longest wait %.3fs\n",
		commits, violations, maxWait)
	if violations != 0 {
		return fmt.Errorf("external consistency broken under the real commit-wait")
	}

	bCommits, bViolations, bMaxWait, err := workload(disttime.BuggyCommitWait{})
	if err != nil {
		return err
	}
	fmt.Printf("buggy commit-wait: %4d commits, %3d violations, longest wait %.3fs\n",
		bCommits, bViolations, bMaxWait)
	if bViolations == 0 {
		return fmt.Errorf("skipping the wait went uncaught; the checker is asleep")
	}
	fmt.Println("external consistency holds exactly when transactions wait out their stamps")
	return nil
}
