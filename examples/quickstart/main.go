// Quickstart: the interval algebra, Marzullo's fault-tolerant
// intersection, and a five-server simulated time service running
// algorithm IM — the paper's pipeline in thirty lines of API.
package main

import (
	"fmt"
	"log"
	"math"

	"disttime"
)

func main() {
	// 1. A time server answers with an interval [C-E, C+E] guaranteed to
	// contain the correct time. Intersecting consistent answers yields a
	// tighter interval than any single server offers (Theorem 6).
	answers := []disttime.Interval{
		disttime.FromEstimate(10.000, 0.005),
		disttime.FromEstimate(10.003, 0.004),
		disttime.FromEstimate(9.998, 0.006),
	}
	common, ok := disttime.IntersectAll(answers)
	if !ok {
		log.Fatal("servers inconsistent: at least one is wrong")
	}
	fmt.Printf("three answers intersect to C=%.4f E=%.4f (tightest single E was 0.004)\n",
		common.Midpoint(), common.HalfWidth())

	// 2. With falsetickers in the mix, plain intersection fails; Marzullo's
	// algorithm finds the interval the largest number of servers agree on.
	answers = append(answers, disttime.FromEstimate(99.0, 0.001))
	if _, ok := disttime.IntersectAll(answers); ok {
		log.Fatal("expected inconsistency")
	}
	best := disttime.Marzullo(answers)
	fmt.Printf("with a falseticker: %d of %d agree on [%.4f, %.4f]\n",
		best.Count, len(answers), best.Interval.Lo, best.Interval.Hi)

	// 3. A full simulated service: five drifting clocks, full mesh,
	// synchronizing every 10 s with algorithm IM.
	specs := make([]disttime.ServerSpec, 5)
	for i := range specs {
		drift := float64(i-2) * 2e-5
		specs[i] = disttime.ServerSpec{
			Delta:        math.Abs(drift)*1.2 + 1e-6, // claimed bound, valid
			Drift:        drift,                      // actual oscillator drift
			InitialError: 0.05,
			SyncEvery:    10,
		}
	}
	sim, err := disttime.NewSimulation(disttime.SimulationConfig{
		Seed:    1,
		Delay:   disttime.UniformDelay{Max: 0.01}, // xi = 20 ms round trip
		Fn:      disttime.IM{},
		Servers: specs,
	})
	if err != nil {
		log.Fatal(err)
	}
	samples, err := sim.RunSampled(600, 120)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsimulated service under algorithm IM:")
	fmt.Printf("%8s  %12s  %12s  %s\n", "t (s)", "max |C-t|", "max async", "all correct")
	for _, s := range samples {
		fmt.Printf("%8.0f  %12.6f  %12.6f  %v\n", s.T, s.MaxAbsOffset, s.MaxAsync, s.AllCorrect)
	}
}
