// Udpservice: the real-network path. Three honest UDP time servers and
// one falseticker run on loopback; a client measures all four, rejects
// the falseticker with majority selection (Marzullo's algorithm), and
// disciplines a local software clock with the intersection. The whole
// exchange is observed: servers and client share one metrics registry,
// the first server exposes it (with /healthz and pprof) on an HTTP
// health listener, and the program prints the Prometheus exposition.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"disttime"
)

// skewedClock serves the system time displaced by a fixed offset — the
// falseticker's broken oscillator.
type skewedClock struct {
	offset time.Duration
	err    time.Duration
}

func (c skewedClock) Now() (time.Time, time.Duration, bool) {
	return time.Now().Add(c.offset), c.err, true
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One registry observes the whole process: servers and client.
	reg := disttime.NewMetricsRegistry()

	// Three honest servers reading the OS clock; the first also serves
	// /healthz, /metrics, and pprof on an HTTP health listener.
	honest, err := disttime.NewSystemClock(5*time.Millisecond, 100)
	if err != nil {
		return err
	}
	var addrs []string
	var healthURL string
	for i := 1; i <= 3; i++ {
		opts := []disttime.UDPServerOption{disttime.WithServerObservability(reg)}
		if i == 1 {
			opts = append(opts, disttime.WithHealthListener("127.0.0.1:0"))
		}
		srv, err := disttime.NewUDPServer("127.0.0.1:0", uint64(i), honest, opts...)
		if err != nil {
			return err
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr().String())
		if ha := srv.HealthAddr(); ha != nil {
			healthURL = "http://" + ha.String()
		}
	}
	// ...and one falseticker, 90 seconds in the future with a tiny
	// claimed error (the dangerous kind).
	liar, err := disttime.NewUDPServer("127.0.0.1:0", 99,
		skewedClock{offset: 90 * time.Second, err: time.Millisecond})
	if err != nil {
		return err
	}
	defer liar.Close()
	addrs = append(addrs, liar.Addr().String())

	// The client disciplines a local software clock; offsets are measured
	// against the clock being steered.
	dc, err := disttime.NewDisciplinedClock(100)
	if err != nil {
		return err
	}
	client := disttime.NewUDPClient(2*time.Second, dc,
		disttime.WithSyncOptions(disttime.SyncOptions{Delta: 100e-6}),
		disttime.WithClientObservability(reg))

	ms, err := client.QueryMany(addrs)
	if err != nil {
		return err
	}
	fmt.Println("measurements:")
	for _, m := range ms {
		iv := m.OffsetInterval()
		fmt.Printf("  server %2d  E=%-12v RTT=%-10v offset in [%.4f, %.4f] s\n",
			m.ServerID, m.E, m.RTT.Round(time.Microsecond), iv.Lo, iv.Hi)
	}

	// Plain intersection fails: the falseticker contradicts the others.
	if _, err := disttime.SyncIM(dc, ms); err != nil {
		fmt.Printf("\nplain intersection: %v\n", err)
	}

	// Majority selection rejects it and disciplines the clock.
	sel, err := disttime.SyncSelect(dc, ms, 10)
	if err != nil {
		return err
	}
	fmt.Printf("selection: %d survivors, %d falseticker(s) rejected\n",
		len(sel.Survivors), len(sel.Falsetickers))

	now, maxErr, synced := dc.Now()
	fmt.Printf("\ndisciplined clock: %s +/- %v (synchronized=%v)\n",
		now.Format(time.RFC3339Nano), maxErr, synced)
	fmt.Printf("offset from OS clock: %v (the falseticker wanted +90s)\n",
		now.Sub(time.Now()).Round(time.Microsecond))

	// The health listener serves the shared registry as Prometheus text
	// (and /healthz and pprof beside it).
	resp, err := http.Get(healthURL + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Printf("\nmetrics from %s/metrics (histogram buckets elided):\n", healthURL)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "udptime_") && !strings.Contains(line, "_bucket{") {
			fmt.Println("  " + line)
		}
	}
	return nil
}
