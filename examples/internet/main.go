// Internet: a time service shaped like the Xerox Research Internet the
// paper's experiments ran on — several local networks of servers joined
// by slower backbone links between gateways, with heterogeneous clock
// quality, one server holding an invalid drift bound, and the Section 3
// recovery heuristic keeping the service usable.
package main

import (
	"fmt"
	"log"
	"math"

	"disttime"
)

const (
	networks      = 4
	perNetwork    = 6
	tau           = 120.0 // sync period
	duration      = 4 * 3600
	localDelayMax = 0.003 // fast local Ethernet
	wideDelayMax  = 0.08  // leased backbone line
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Heterogeneous clock quality: each network has one good oscillator
	// and progressively worse ones; one server in network 2 claims a far
	// better bound than its oscillator honors (the paper's failure mode).
	var specs []disttime.ServerSpec
	for net := 0; net < networks; net++ {
		for k := 0; k < perNetwork; k++ {
			mag := (1 + float64(k)) * 1e-5
			drift := mag
			if (net+k)%2 == 1 {
				drift = -mag
			}
			spec := disttime.ServerSpec{
				Delta:        1.2 * mag,
				Drift:        drift,
				InitialError: 0.1,
				SyncEvery:    tau,
				Recovery:     true,
			}
			if net == 2 && k == perNetwork-1 {
				// Invalid bound: claims ~72 us/s but runs 2% fast, so it
				// gains ~2.4 s per sync period and goes inconsistent.
				spec.Drift = 0.02
			}
			specs = append(specs, spec)
		}
	}

	sim, err := disttime.NewSimulation(disttime.SimulationConfig{
		Seed:     7,
		Delay:    disttime.UniformDelay{Max: localDelayMax},
		Topology: disttime.Custom,
		Fn:       disttime.MM{},
		Servers:  specs,
	})
	if err != nil {
		return err
	}

	// Wire the internet: full mesh inside each network over fast links,
	// gateways (first server of each network) in a ring over slow links.
	local := disttime.LinkConfig{Delay: disttime.UniformDelay{Max: localDelayMax}}
	wide := disttime.LinkConfig{Delay: disttime.UniformDelay{Min: 0.01, Max: wideDelayMax}, Loss: 0.02}
	id := func(net, k int) int { return net*perNetwork + k }
	for net := 0; net < networks; net++ {
		for a := 0; a < perNetwork; a++ {
			for b := a + 1; b < perNetwork; b++ {
				if err := sim.Net.Connect(sim.Nodes[id(net, a)].NetID, sim.Nodes[id(net, b)].NetID, local); err != nil {
					return err
				}
			}
		}
	}
	for net := 0; net < networks; net++ {
		next := (net + 1) % networks
		if err := sim.Net.Connect(sim.Nodes[id(net, 0)].NetID, sim.Nodes[id(next, 0)].NetID, wide); err != nil {
			return err
		}
	}

	fmt.Printf("internet time service: %d networks x %d servers, tau=%.0fs, xi=%.3fs\n",
		networks, perNetwork, tau, sim.Net.Xi())
	fmt.Printf("server %d holds an invalid drift bound (claims 72 us/s, runs 2%% fast)\n\n", id(2, perNetwork-1))

	samples, err := sim.RunSampled(duration, 1800)
	if err != nil {
		return err
	}
	fmt.Printf("%8s  %14s  %14s  %12s  %s\n",
		"t (s)", "worst |C-t| (s)", "healthy worst", "E_M (s)", "groups")
	faulty := id(2, perNetwork-1)
	for _, s := range samples {
		healthyWorst := 0.0
		for i, off := range s.Offset {
			if i == faulty {
				continue
			}
			healthyWorst = math.Max(healthyWorst, math.Abs(off))
		}
		fmt.Printf("%8.0f  %14.4f  %14.4f  %12.4f  %d\n",
			s.T, s.MaxAbsOffset, healthyWorst, s.MinError, s.Groups)
	}

	recoveries, inconsistencies := 0, 0
	for _, n := range sim.Nodes {
		recoveries += n.Recoveries
		inconsistencies += n.Server.Inconsistencies()
	}
	fmt.Printf("\n%d inconsistencies observed, %d recoveries performed\n", inconsistencies, recoveries)
	fmt.Printf("faulty server: %d resets, %d recoveries — repeatedly pulled back toward the service\n",
		sim.Nodes[faulty].Resets, sim.Nodes[faulty].Recoveries)
	return nil
}
