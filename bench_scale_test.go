package disttime_test

// The scale benchmark suite: the S1 sweep sizes run one at a time on the
// sharded kernel, recorded to BENCH_SCALE.json by `make bench-scale`.
// Like the paper-figure benchmarks these double as reproduction gates —
// a size fails if its skew-vs-distance shape stops holding. The 100k
// run must stay in single-digit seconds; its events/sec throughput is
// reported as an extra metric.

import (
	"strconv"
	"testing"

	"disttime/internal/experiments"
)

func runScaleSize(b *testing.B, sz experiments.ScaleSize) {
	b.Helper()
	b.ReportAllocs()
	var events int
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.ScaleSweep(experiments.ScaleConfig{
			Sizes: []experiments.ScaleSize{sz},
			Seed:  1,
		})
		if err != nil {
			b.Fatalf("scale sweep failed: %v\n%s", err, tbl)
		}
		n, err := strconv.Atoi(tbl.Rows[0][3])
		if err != nil {
			b.Fatalf("bad event count %q: %v", tbl.Rows[0][3], err)
		}
		events += n
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkScaleSweep10k(b *testing.B) {
	runScaleSize(b, experiments.ScaleSize{Name: "10k", Regions: 10, Clusters: 20, Members: 50})
}

func BenchmarkScaleSweep50k(b *testing.B) {
	runScaleSize(b, experiments.ScaleSize{Name: "50k", Regions: 10, Clusters: 100, Members: 50})
}

func BenchmarkScaleSweep100k(b *testing.B) {
	runScaleSize(b, experiments.ScaleSize{Name: "100k", Regions: 20, Clusters: 100, Members: 50})
}
