// Command timeserver runs a UDP time server: it answers each request with
// the pair <C, E> of rule MM-1 — its clock value and its current maximum
// error, which deteriorates at the claimed drift rate between restarts.
//
// Usage:
//
//	timeserver -addr 127.0.0.1:3123 -id 1 -initial-error 10ms -drift-ppm 50
//
// The server runs until interrupted.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"disttime/internal/udptime"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "timeserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("timeserver", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:3123", "UDP address to listen on")
		id         = fs.Uint64("id", 1, "server identity echoed in responses")
		initialErr = fs.Duration("initial-error", 10*time.Millisecond,
			"error the local clock is trusted to at startup")
		driftPPM = fs.Float64("drift-ppm", 50,
			"claimed drift bound of the local clock, parts per million")
		health = fs.String("health", "",
			"HTTP health listener address (e.g. 127.0.0.1:9123): /healthz, Prometheus /metrics, and pprof")
		verbose = fs.Bool("v", false, "log malformed datagrams")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	src, err := udptime.NewSystemClock(*initialErr, *driftPPM)
	if err != nil {
		return err
	}
	var opts []udptime.ServerOption
	if *verbose {
		opts = append(opts, udptime.WithServerLogger(log.New(os.Stderr, "", log.LstdFlags)))
	}
	if *health != "" {
		opts = append(opts, udptime.WithHealthListener(*health))
	}
	srv, err := udptime.NewServer(*addr, *id, src, opts...)
	if err != nil {
		return err
	}
	log.Printf("timeserver %d listening on %v (initial error %v, drift bound %v ppm)",
		*id, srv.Addr(), *initialErr, *driftPPM)
	if ha := srv.HealthAddr(); ha != nil {
		log.Printf("health listener on http://%v (/healthz, /metrics, /debug/pprof/)", ha)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("shutting down after %d requests (%d malformed datagrams)",
		srv.Requests(), srv.MalformedDatagrams())
	return srv.Close()
}
