// Command timeserver runs a UDP time server: it answers each request with
// the pair <C, E> of rule MM-1 — its clock value and its current maximum
// error, which deteriorates at the claimed drift rate between restarts.
//
// Usage:
//
//	timeserver -addr 127.0.0.1:3123 -id 1 -initial-error 10ms -drift-ppm 50
//
// The server runs until interrupted.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"disttime/internal/udptime"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "timeserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("timeserver", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:3123", "UDP address to listen on")
		id         = fs.Uint64("id", 1, "server identity echoed in responses")
		initialErr = fs.Duration("initial-error", 10*time.Millisecond,
			"error the local clock is trusted to at startup")
		driftPPM = fs.Float64("drift-ppm", 50,
			"claimed drift bound of the local clock, parts per million")
		health = fs.String("health", "",
			"HTTP health listener address (e.g. 127.0.0.1:9123): /healthz, Prometheus /metrics, and pprof")
		shards = fs.Int("shards", 0,
			"batched serving shards (0 = classic per-packet server; >0 enables the batch path)")
		batch = fs.Int("batch", 0,
			"datagrams per recvmmsg/sendmmsg batch in shard mode (0 = default)")
		tick = fs.Duration("tick", 0,
			"cached-response refresh interval in shard mode (0 = default 1ms, negative = uncached)")
		verbose = fs.Bool("v", false, "log malformed datagrams")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	src, err := udptime.NewSystemClock(*initialErr, *driftPPM)
	if err != nil {
		return err
	}
	if *shards > 0 {
		return runBatch(*addr, *id, src, *shards, *batch, *tick, *health, *verbose)
	}
	if *batch != 0 || *tick != 0 {
		return fmt.Errorf("-batch and -tick require -shards >= 1")
	}
	var opts []udptime.ServerOption
	if *verbose {
		opts = append(opts, udptime.WithServerLogger(log.New(os.Stderr, "", log.LstdFlags)))
	}
	if *health != "" {
		opts = append(opts, udptime.WithHealthListener(*health))
	}
	srv, err := udptime.NewServer(*addr, *id, src, opts...)
	if err != nil {
		return err
	}
	log.Printf("timeserver %d listening on %v (initial error %v, drift bound %v ppm)",
		*id, srv.Addr(), *initialErr, *driftPPM)
	if ha := srv.HealthAddr(); ha != nil {
		log.Printf("health listener on http://%v (/healthz, /metrics, /debug/pprof/)", ha)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("shutting down after %d requests (%d malformed datagrams)",
		srv.Requests(), srv.MalformedDatagrams())
	return srv.Close()
}

// runBatch serves with the batched sharded path. The health listener is
// a feature of the classic server; shard mode rejects it rather than
// silently ignoring the flag.
func runBatch(addr string, id uint64, src udptime.ClockSource, shards, batch int, tick time.Duration, health string, verbose bool) error {
	if health != "" {
		return fmt.Errorf("-health is not supported with -shards; run the classic server or scrape the process externally")
	}
	cfg := udptime.BatchConfig{Shards: shards, Batch: batch, Tick: tick}
	if verbose {
		cfg.Logger = log.New(os.Stderr, "", log.LstdFlags)
	}
	srv, err := udptime.NewBatchServer(addr, id, src, cfg)
	if err != nil {
		return err
	}
	log.Printf("timeserver %d listening on %v (%d shards, batched)", id, srv.Addr(), srv.Shards())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("shutting down after %d requests (%d malformed datagrams)",
		srv.Requests(), srv.MalformedDatagrams())
	return srv.Close()
}
