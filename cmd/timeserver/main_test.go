package main

import "testing"

// run blocks until a signal once the server starts, so only the error
// paths are testable directly; the happy path is covered by the udptime
// package tests and the examples.
func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "bad flag", args: []string{"-bogus"}},
		{name: "bad address", args: []string{"-addr", "not an address"}},
		{name: "negative initial error", args: []string{"-initial-error", "-1s"}},
		{name: "negative drift", args: []string{"-drift-ppm", "-5"}},
		{name: "batch without shards", args: []string{"-batch", "16"}},
		{name: "tick without shards", args: []string{"-tick", "5ms"}},
		{name: "health with shards", args: []string{"-shards", "2", "-health", "127.0.0.1:0"}},
		{name: "bad address sharded", args: []string{"-shards", "2", "-addr", "not an address"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Errorf("run(%v) accepted", tt.args)
			}
		})
	}
}
