// Command timesyncd is the client-side daemon: it polls a set of UDP time
// servers, disciplines a local software clock with the intersection
// algorithm (or fault-tolerant selection with -select), and logs each
// round. It is the deployable form of the paper's client: "a client simply
// requests the time from any set of servers" — and, with intervals, gets a
// bound on how wrong its clock can be.
//
// With -serve the daemon becomes a full peer: it also answers time
// requests on the given address from the clock it is disciplining, which
// is exactly what the paper's time servers do.
//
// Usage:
//
//	timesyncd -servers 127.0.0.1:3123,127.0.0.1:3124 -interval 64s -select
//	timesyncd -servers 127.0.0.1:3123 -serve 127.0.0.1:3200 -id 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"disttime/internal/udptime"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "timesyncd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("timesyncd", flag.ContinueOnError)
	var (
		servers  = fs.String("servers", "", "comma-separated UDP time server addresses")
		interval = fs.Duration("interval", 64*time.Second, "polling period (the paper's tau)")
		timeout  = fs.Duration("timeout", time.Second, "per-server query timeout")
		doSel    = fs.Bool("select", false, "reject falsetickers with majority selection")
		driftPPM = fs.Float64("drift-ppm", 100, "claimed drift bound of the local oscillator, ppm")
		serve    = fs.String("serve", "", "also serve time on this UDP address (become a full peer)")
		id       = fs.Uint64("id", 1, "server identity when serving")
		burst    = fs.Int("burst", 1, "queries per server per round, keeping the minimum-RTT one")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *servers == "" {
		return fmt.Errorf("no servers given (-servers host:port,...)")
	}

	report := func(clock *udptime.DisciplinedClock) func(udptime.SyncReport) {
		return func(r udptime.SyncReport) {
			if r.Err != nil {
				log.Printf("sync failed (%d measurements): %v", r.Measurements, r.Err)
				return
			}
			now, maxErr, _ := clock.Now()
			log.Printf("synced from %d/%d servers (%d falsetickers): offset %.6fs, clock %s +/- %v",
				r.Survivors, r.Measurements, r.Falsetickers,
				r.Applied.Midpoint(), now.Format(time.RFC3339Nano), maxErr)
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if *serve != "" {
		// Full peer: serve the disciplined clock while syncing it.
		dc, err := udptime.NewDisciplinedClock(*driftPPM)
		if err != nil {
			return err
		}
		peer, err := udptime.NewPeer(udptime.PeerConfig{
			Addr:      *serve,
			ID:        *id,
			Clock:     dc,
			Peers:     strings.Split(*servers, ","),
			Interval:  *interval,
			Timeout:   *timeout,
			Selection: *doSel,
			Burst:     *burst,
			OnSync:    report(dc),
		})
		if err != nil {
			return err
		}
		log.Printf("timesyncd peer %d serving on %v, polling %s every %v (selection=%v, burst=%d)",
			*id, peer.Addr(), *servers, *interval, *doSel, *burst)
		<-stop
		log.Printf("stopped after %d rounds, %d requests answered", peer.Rounds(), peer.Requests())
		return peer.Close()
	}

	dc, err := udptime.NewDisciplinedClock(*driftPPM)
	if err != nil {
		return err
	}
	syncer, err := udptime.NewSyncer(dc, udptime.SyncerConfig{
		Servers:   strings.Split(*servers, ","),
		Interval:  *interval,
		Timeout:   *timeout,
		Selection: *doSel,
		Burst:     *burst,
		OnSync:    report(dc),
	})
	if err != nil {
		return err
	}
	log.Printf("timesyncd polling %s every %v (selection=%v)", *servers, *interval, *doSel)
	<-stop
	syncer.Stop()
	log.Printf("stopped after %d rounds", syncer.Rounds())
	return nil
}
