package main

import "testing"

// run blocks until a signal once the syncer starts, so only the error
// paths are testable directly; the syncer itself is covered by the
// udptime package tests.
func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "bad flag", args: []string{"-bogus"}},
		{name: "no servers", args: nil},
		{name: "negative drift", args: []string{"-servers", "127.0.0.1:1", "-drift-ppm", "-1"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Errorf("run(%v) accepted", tt.args)
			}
		})
	}
}
