package main

import (
	"strings"
	"testing"
)

// churnArgs keeps the test runs short: a small cluster over a short
// virtual window.
func churnArgs(seed string) []string {
	return []string{"-churn", "3", "-churn-seed", seed, "-churn-n", "4", "-churn-dur", "150"}
}

// TestRunChurnDeterministic is the satellite acceptance check: two runs
// with the same seed produce byte-identical membership timelines.
func TestRunChurnDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run(churnArgs("9"), &a); err != nil {
		t.Fatal(err)
	}
	if err := run(churnArgs("9"), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("seeded churn runs diverge:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{"churn demo:", "alive->left", "left->alive", "false-evictions=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("churn output missing %q:\n%s", want, out)
		}
	}
	// Different seeds must explore different schedules.
	var c strings.Builder
	if err := run(churnArgs("10"), &c); err != nil {
		t.Fatal(err)
	}
	if c.String() == out {
		t.Error("different churn seeds produced identical timelines")
	}
}

// TestRunChurnValidation rejects clusters too small to gossip.
func TestRunChurnValidation(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-churn", "1", "-churn-n", "2"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "at least 3") {
		t.Fatalf("two-server churn demo accepted: %v", err)
	}
}
