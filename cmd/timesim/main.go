// Command timesim runs the paper-reproduction experiments: every figure,
// theorem bound, and in-text experimental claim of Marzullo & Owicki 1983
// (the E1..E15 index in DESIGN.md).
//
// Usage:
//
//	timesim -list
//	timesim -experiment fig3
//	timesim -experiment E9
//	timesim -all
//	timesim -all -parallel 0        # fan out over GOMAXPROCS workers
//	timesim -ablations -parallel 4  # identical output, 4 workers
//	timesim -chaos -campaigns 60 -chaos-seed 1
//	timesim -chaos -adversarial -campaigns 50   # hill-climb Byzantine schedules
//	timesim -chaos -replay internal/chaos/corpus/buggy-mm-churn.repro
//	timesim -txn -txn-seed 7 -txn-n 4  # commit-wait transaction timeline demo
//	timesim -churn 2 -churn-seed 7     # dynamic-membership timeline demo
//	timesim -metrics out.json -trace-out spans.jsonl   # instrumented demo run
//	timesim -chaos -campaigns 60 -metrics chaos.json   # observed campaigns
//	timesim -scale -shards 4           # 10k/50k/100k sweep on the sharded kernel
//
// Each experiment prints the paper's claim, the measured finding, and the
// regenerated table. The exit status is nonzero when a reproduced shape
// does not hold. The -chaos mode instead runs randomized fault campaigns
// under the always-on theorem-invariant monitor (see internal/chaos),
// shrinking any failure to a one-line reproducer.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"disttime/internal/experiments"
	"disttime/internal/par"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "timesim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("timesim", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list the available experiments")
		name      = fs.String("experiment", "", "experiment or ablation ID or slug to run (e.g. E9, recovery, A3)")
		all       = fs.Bool("all", false, "run every paper experiment in order")
		ablations = fs.Bool("ablations", false, "run every ablation study in order")
		asCSV     = fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
		figures   = fs.Bool("figures", false, "render the paper's four figures as interval diagrams")
		parallel  = fs.Int("parallel", 1, "worker budget for -all/-ablations and per-experiment trials (0 = GOMAXPROCS); output is byte-identical at any setting")
		doChaos   = fs.Bool("chaos", false, "run randomized fault campaigns under the theorem-invariant monitor")
		campaigns = fs.Int("campaigns", 60, "number of chaos campaigns to run (with -chaos)")
		chaosSeed = fs.Uint64("chaos-seed", 1, "first campaign seed (with -chaos; campaigns use consecutive seeds)")
		replay    = fs.String("replay", "", "replay a chaos reproducer: a literal line or a corpus file path (with -chaos)")
		noShrink  = fs.Bool("no-shrink", false, "report failing chaos campaigns without minimizing them")
		advSearch = fs.Bool("adversarial", false, "hill-climb Byzantine fault schedules toward an invariant violation instead of sampling (with -chaos)")
		advSteps  = fs.Int("adv-steps", 20, "mutation steps per adversarial search (with -chaos -adversarial)")
		doTxn     = fs.Bool("txn", false, "run the commit-wait transaction demo: HLC-stamped transactions with external-consistency checking; prints the deterministic commit timeline")
		txnSeed   = fs.Uint64("txn-seed", 1, "seed of the txn demo (with -txn); equal seeds give byte-identical timelines")
		txnN      = fs.Int("txn-n", 4, "cluster size of the txn demo (with -txn); one client per server")
		txnRate   = fs.Float64("txn-rate", 1, "per-client transaction rate in transactions per virtual second (with -txn)")
		txnDur    = fs.Float64("txn-dur", 120, "virtual duration in seconds of the txn demo (with -txn)")
		churnRate = fs.Float64("churn", 0, "run the dynamic-membership demo: voluntary leave/rejoin cycles per 100 simulated seconds; prints the deterministic membership timeline")
		churnSeed = fs.Uint64("churn-seed", 1, "seed of the churn demo (with -churn); equal seeds give byte-identical timelines")
		churnN    = fs.Int("churn-n", 5, "cluster size of the churn demo (with -churn)")
		churnDur  = fs.Float64("churn-dur", 300, "virtual duration in seconds of the churn demo (with -churn)")
		metrics   = fs.String("metrics", "", "write a deterministic metrics snapshot (JSON) to this path; alone it runs the instrumented demo scenario, with -chaos it observes the campaigns")
		traceOut  = fs.String("trace-out", "", "write sync-round spans (JSONL) to this path; runs the instrumented demo scenario")
		obsSeed   = fs.Uint64("obs-seed", 1, "seed for the instrumented demo scenario (with -metrics/-trace-out)")
		obsDur    = fs.Float64("obs-dur", 600, "virtual duration in seconds of the instrumented demo scenario")
		doScale   = fs.Bool("scale", false, "run the S1 scale sweep (10k/50k/100k servers) on the sharded kernel")
		shards    = fs.Int("shards", 0, "kernel shard count for -scale (0 = GOMAXPROCS; results are byte-identical at any setting)")
		scaleFor  = fs.Float64("scale-until", 600, "virtual duration in seconds per scale-sweep size (with -scale)")
		scaleSeed = fs.Uint64("scale-seed", 1, "seed of the scale sweep (with -scale)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	defer par.SetLimit(par.SetLimit(workers))
	emit := func(tbl experiments.Table) error {
		if *asCSV {
			return tbl.WriteCSV(out)
		}
		_, err := fmt.Fprintln(out, tbl)
		return err
	}

	obs := obsOpts{metrics: *metrics, traceOut: *traceOut, seed: *obsSeed, dur: *obsDur}

	switch {
	case *doChaos:
		return runChaos(chaosOpts{
			campaigns:   *campaigns,
			seed:        *chaosSeed,
			replay:      *replay,
			shrink:      !*noShrink,
			metrics:     *metrics,
			adversarial: *advSearch,
			advSteps:    *advSteps,
		}, out)
	case *doTxn:
		return runTxn(txnOpts{
			seed:    *txnSeed,
			n:       *txnN,
			rate:    *txnRate,
			dur:     *txnDur,
			metrics: *metrics,
		}, out)
	case *churnRate > 0:
		return runChurn(churnOpts{
			rate:    *churnRate,
			seed:    *churnSeed,
			n:       *churnN,
			dur:     *churnDur,
			metrics: *metrics,
		}, out)
	case *doScale:
		kernelShards := *shards
		if kernelShards <= 0 {
			kernelShards = runtime.GOMAXPROCS(0)
		}
		tbl, err := experiments.ScaleSweep(experiments.ScaleConfig{
			Shards: kernelShards,
			Seed:   *scaleSeed,
			Until:  *scaleFor,
		})
		if err != nil {
			fmt.Fprintln(out, tbl)
			return fmt.Errorf("scale sweep: %w", err)
		}
		return emit(tbl)
	case *figures:
		_, err := fmt.Fprintln(out, experiments.Figures())
		return err
	case *list:
		fmt.Fprintf(out, "%-4s  %-22s  %s\n", "ID", "SLUG", "SOURCE")
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-4s  %-22s  %s\n", e.ID, e.Slug, e.Source)
		}
		for _, e := range experiments.Ablations() {
			fmt.Fprintf(out, "%-4s  %-22s  %s\n", e.ID, e.Slug, e.Source)
		}
		for _, e := range experiments.ScaleEntries() {
			fmt.Fprintf(out, "%-4s  %-22s  %s\n", e.ID, e.Slug, e.Source)
		}
		return nil
	case *ablations:
		return experiments.WriteResults(out,
			experiments.RunAll(experiments.Ablations(), 0), *asCSV)
	case *all:
		return experiments.WriteResults(out,
			experiments.RunAll(experiments.All(), 0), *asCSV)
	case *name != "":
		e, ok := experiments.FindAny(*name)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *name)
		}
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintln(out, tbl)
			return fmt.Errorf("%s (%s): %w", e.ID, e.Source, err)
		}
		return emit(tbl)
	case obs.active():
		return runObserved(obs, out)
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -list, -all, -ablations, -figures, -experiment, or -chaos")
	}
}
