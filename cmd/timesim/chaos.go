package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"disttime/internal/chaos"
	"disttime/internal/obs"
)

// chaosOpts carries the chaos-mode flags.
type chaosOpts struct {
	campaigns   int
	seed        uint64
	replay      string
	shrink      bool
	metrics     string // when set, campaigns run observed and a snapshot is written here
	adversarial bool   // hill-climb fault schedules toward a violation instead of sampling
	advSteps    int    // mutation steps per adversarial search
}

// runChaos executes a batch of generated campaigns (or replays one
// reproducer) and reports one line per campaign. The output is a pure
// function of the flags: campaigns are generated from consecutive seeds
// and every run is deterministic, so two invocations with the same flags
// print identical bytes. The returned error is non-nil when any campaign
// failed, which makes the exit status the CI signal.
func runChaos(opts chaosOpts, out io.Writer) error {
	if opts.replay != "" {
		return replayReproducer(opts.replay, out)
	}
	if opts.campaigns <= 0 {
		return fmt.Errorf("chaos: -campaigns must be positive, got %d", opts.campaigns)
	}
	// With -metrics, every campaign feeds one shared registry; observation
	// is passive, so verdicts and step counts match an unobserved batch.
	var reg *obs.Registry
	if opts.metrics != "" {
		reg = obs.NewRegistry()
	}
	runOne := func(c chaos.Campaign) (chaos.Verdict, error) {
		if reg != nil {
			return chaos.RunObserved(c, reg)
		}
		return chaos.Run(c)
	}
	if opts.adversarial {
		return runAdversarial(opts, runOne, reg, out)
	}
	failed := 0
	for i := 0; i < opts.campaigns; i++ {
		seed := opts.seed + uint64(i)
		c := chaos.Generate(seed)
		v, err := runOne(c)
		if err != nil {
			return fmt.Errorf("chaos: seed %d: %w", seed, err)
		}
		if v.OK {
			fmt.Fprintf(out, "campaign seed=%d n=%d fn=%s topo=%s faults=%d verdict=ok steps=%d\n",
				seed, c.N, c.FnName, c.Topo, len(c.Faults), v.Steps)
			continue
		}
		failed++
		first, _ := v.First()
		fmt.Fprintf(out, "campaign seed=%d n=%d fn=%s topo=%s faults=%d verdict=FAIL steps=%d\n",
			seed, c.N, c.FnName, c.Topo, len(c.Faults), v.Steps)
		fmt.Fprintf(out, "  violation: %v\n", first)
		if opts.shrink {
			res, err := chaos.Shrink(c, chaos.Run, 0)
			if err != nil {
				return fmt.Errorf("chaos: seed %d: shrink: %w", seed, err)
			}
			fmt.Fprintf(out, "  reproducer (%d faults, %d shrink runs): %s\n",
				len(res.Campaign.Faults), res.Runs, res.Campaign)
		} else {
			fmt.Fprintf(out, "  reproducer: %s\n", c)
		}
	}
	if err := writeMetrics(opts.metrics, reg); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("chaos: %d of %d campaigns violated an invariant", failed, opts.campaigns)
	}
	fmt.Fprintf(out, "chaos: %d campaigns ok\n", opts.campaigns)
	return nil
}

// runAdversarial runs a batch of seeded hill-climbing searches (see
// chaos.Adversarial): each starts from a within-budget Byzantine
// campaign and mutates the schedule toward the monitor's tightest
// containment margin. Output is one line per search plus the minimized
// reproducer on failure, and is byte-identical across invocations with
// equal flags.
func runAdversarial(opts chaosOpts, runOne chaos.Runner, reg *obs.Registry, out io.Writer) error {
	failed := 0
	for i := 0; i < opts.campaigns; i++ {
		seed := opts.seed + uint64(i)
		res, err := chaos.Adversarial(chaos.AdversarialConfig{
			Seed:  seed,
			Steps: opts.advSteps,
			Run:   runOne,
		})
		if err != nil {
			return fmt.Errorf("chaos: adversarial seed %d: %w", seed, err)
		}
		if !res.Found {
			fmt.Fprintf(out, "adversarial seed=%d n=%d evals=%d verdict=ok minslack=%.6g\n",
				seed, res.Best.N, res.Evals, res.Verdict.MinSlack)
			continue
		}
		failed++
		first, _ := res.Verdict.First()
		fmt.Fprintf(out, "adversarial seed=%d n=%d evals=%d verdict=FAIL\n", seed, res.Best.N, res.Evals)
		fmt.Fprintf(out, "  violation: %v\n", first)
		if res.Shrunk != nil {
			fmt.Fprintf(out, "  reproducer (%d faults, %d shrink runs): %s\n",
				len(res.Shrunk.Campaign.Faults), res.Shrunk.Runs, res.Shrunk.Campaign)
		} else {
			fmt.Fprintf(out, "  reproducer: %s\n", res.Best)
		}
	}
	if err := writeMetrics(opts.metrics, reg); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("chaos: %d of %d adversarial searches found a violation", failed, opts.campaigns)
	}
	fmt.Fprintf(out, "chaos: %d adversarial searches ok\n", opts.campaigns)
	return nil
}

// replayReproducer re-executes one reproducer, given either as a literal
// line or as a path to a corpus file ('#'-comment lines are skipped). The
// campaign is run twice and the step counts compared, so a replay also
// re-proves determinism.
func replayReproducer(arg string, out io.Writer) error {
	line := arg
	if data, err := os.ReadFile(arg); err == nil {
		line = ""
		for _, l := range strings.Split(string(data), "\n") {
			l = strings.TrimSpace(l)
			if l != "" && !strings.HasPrefix(l, "#") {
				line = l
			}
		}
		if line == "" {
			return fmt.Errorf("chaos: %s holds no reproducer line", arg)
		}
	}
	c, err := chaos.Parse(line)
	if err != nil {
		return err
	}
	v, err := chaos.Run(c)
	if err != nil {
		return err
	}
	again, err := chaos.Run(c)
	if err != nil {
		return err
	}
	if again.Steps != v.Steps || again.OK != v.OK {
		return fmt.Errorf("chaos: replay is not deterministic (steps %d vs %d)", v.Steps, again.Steps)
	}
	if v.OK {
		fmt.Fprintf(out, "replay seed=%d verdict=ok steps=%d\n", c.Seed, v.Steps)
		return nil
	}
	fmt.Fprintf(out, "replay seed=%d verdict=FAIL steps=%d\n", c.Seed, v.Steps)
	for _, viol := range v.Violations {
		fmt.Fprintf(out, "  violation: %v\n", viol)
	}
	return fmt.Errorf("chaos: reproducer violated %d invariant observations", len(v.Violations))
}
