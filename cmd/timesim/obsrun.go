package main

import (
	"fmt"
	"io"
	"os"

	"disttime/internal/obs"
	"disttime/internal/service"
)

// obsOpts carries the observability flags.
type obsOpts struct {
	metrics  string // -metrics: registry snapshot JSON path
	traceOut string // -trace-out: sync-round span JSONL path
	seed     uint64 // -obs-seed: demo scenario seed
	dur      float64
}

func (o obsOpts) active() bool { return o.metrics != "" || o.traceOut != "" }

// runObserved executes the instrumented demo scenario: a four-server
// full-mesh MM service with mixed drift rates, run for a fixed virtual
// duration under the given seed with the full observability layer
// attached. The metrics snapshot and the span log are pure functions of
// the seed — two invocations with the same flags write byte-identical
// files — which is the determinism contract DESIGN.md §12 specifies and
// the obs smoke test enforces.
func runObserved(o obsOpts, out io.Writer) error {
	reg := obs.NewRegistry()
	tr, closeTrace, err := openTracer(o.traceOut)
	if err != nil {
		return err
	}
	defer closeTrace()

	svc, err := service.New(service.Config{
		Seed: o.seed,
		Servers: []service.ServerSpec{
			{Delta: 1e-4, Drift: 5e-5, InitialError: 0.05, SyncEvery: 10},
			{Delta: 1e-4, Drift: -8e-5, InitialError: 0.05, SyncEvery: 10},
			{Delta: 2e-4, Drift: 1.5e-4, InitialError: 0.08, SyncEvery: 10},
			{Delta: 1e-4, Drift: 2e-5, InitialError: 0.05, SyncEvery: 10},
		},
	})
	if err != nil {
		return err
	}
	svc.Observe(reg, tr)
	dur := o.dur
	if dur <= 0 {
		dur = 600
	}
	svc.Run(dur)

	if err := writeMetrics(o.metrics, reg); err != nil {
		return err
	}
	if err := tr.Err(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	fmt.Fprintf(out, "observed run: seed=%d dur=%gs steps=%d spans=%d\n",
		o.seed, dur, svc.Sim.Steps(), tr.Spans())
	return nil
}

// openTracer opens a span tracer writing to path; an empty path yields a
// nil (discarding) tracer and a no-op closer.
func openTracer(path string) (*obs.Tracer, func(), error) {
	if path == "" {
		return nil, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: %w", err)
	}
	return obs.NewTracer(f), func() { f.Close() }, nil
}

// writeMetrics snapshots reg to path as JSON; an empty path is a no-op.
func writeMetrics(path string, reg *obs.Registry) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	defer f.Close()
	if err := reg.WriteJSON(f); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	return f.Close()
}
