package main

import (
	"fmt"
	"io"
	"math/rand/v2"

	"disttime/internal/obs"
	"disttime/internal/service"
)

// churnOpts carries the -churn flags.
type churnOpts struct {
	rate    float64 // -churn: leave/rejoin cycles per 100 simulated seconds
	seed    uint64  // -churn-seed
	n       int     // -churn-n: cluster size
	dur     float64 // -churn-dur: virtual duration, seconds
	metrics string  // -metrics, shared with the other modes
}

// runChurn runs the membership demo: an n-server mesh with dynamic
// membership enabled, subjected to a seeded schedule of voluntary
// leave/rejoin cycles, printing the full membership timeline — every
// roster transition every server observes, in virtual-time order.
//
// The schedule is drawn from its own deterministic generator and the
// service is seeded, so the entire output is a pure function of the
// flags: two invocations with the same seed are byte-identical, which
// `make churn-smoke` and the CLI tests enforce. A FALSE-EVICTION token
// in the timeline (a live server evicted) would mark a detector-bound
// violation and is asserted absent.
func runChurn(o churnOpts, out io.Writer) error {
	if o.n < 3 {
		return fmt.Errorf("churn demo needs at least 3 servers, got %d", o.n)
	}
	if o.dur <= 0 {
		o.dur = 300
	}
	specs := make([]service.ServerSpec, o.n)
	for i := range specs {
		// Deterministic mixed drift rates within the claimed bound.
		specs[i] = service.ServerSpec{
			Delta:        2e-4,
			Drift:        (float64(i%5) - 2) * 4e-5,
			InitialError: 0.05,
			SyncEvery:    10,
		}
	}
	svc, err := service.New(service.Config{
		Seed:    o.seed,
		Servers: specs,
		Members: &service.MemberConfig{GossipEvery: 5},
	})
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if o.metrics != "" {
		reg = obs.NewRegistry()
		svc.Observe(reg, nil)
	}
	// The roster emits a change for every fresher observation, heartbeat
	// refreshes included; the timeline keeps only material transitions —
	// joins, status changes, and generation bumps (rejoins) — which is
	// still a deterministic function of the run.
	timeline, falseEvictions := 0, 0
	lastGen := make(map[[2]int]uint64)
	svc.AddMemberChange(func(ev service.MemberEvent) {
		key := [2]int{ev.Observer, ev.Subject}
		refresh := ev.From == ev.To && !ev.Joined && !ev.FalseEviction && lastGen[key] == ev.Gen
		lastGen[key] = ev.Gen
		if refresh {
			return
		}
		timeline++
		if ev.FalseEviction {
			falseEvictions++
		}
		fmt.Fprintln(out, ev)
	})

	// The churn schedule: rate cycles per 100 simulated seconds, each a
	// voluntary departure followed by a rejoin 20..60 s later, landing
	// inside the middle of the run so departures settle before the end.
	rng := rand.New(rand.NewPCG(o.seed, 0x636875726e)) // "churn"
	cycles := int(o.rate * o.dur / 100)
	if cycles < 1 {
		cycles = 1
	}
	fmt.Fprintf(out, "churn demo: n=%d dur=%gs rate=%g cycles=%d seed=%d\n",
		o.n, o.dur, o.rate, cycles, o.seed)
	for k := 0; k < cycles; k++ {
		target := rng.IntN(o.n)
		at := (0.05 + 0.70*rng.Float64()) * o.dur
		down := 20 + 40*rng.Float64()
		fmt.Fprintf(out, "cycle %d: server %d leaves t=%.3f rejoins t=%.3f\n",
			k, target, at, at+down)
		svc.LeaveAt(at, target)
		svc.RejoinAt(at+down, target)
	}
	svc.Run(o.dur)
	fmt.Fprintf(out, "churn run: seed=%d steps=%d timeline=%d false-evictions=%d\n",
		o.seed, svc.Sim.Steps(), timeline, falseEvictions)
	if err := writeMetrics(o.metrics, reg); err != nil {
		return err
	}
	if falseEvictions > 0 {
		return fmt.Errorf("churn demo recorded %d false evictions", falseEvictions)
	}
	return nil
}
