package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"E1", "E15", "A1", "fig1", "recovery", "ablation-slew"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-experiment", "fig3"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "E11") {
		t.Errorf("output missing experiment table:\n%s", buf.String())
	}
}

func TestRunSingleAblation(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-experiment", "A1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Ablation") {
		t.Errorf("output missing ablation table:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-experiment", "nope"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunNothingToDo(t *testing.T) {
	var buf strings.Builder
	if err := run(nil, &buf); err == nil {
		t.Error("no-op invocation accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunCSV(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-experiment", "fig3", "-csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# E11:") {
		t.Errorf("CSV comment header missing:\n%s", out)
	}
	if !strings.Contains(out, "algorithm,resulting C") {
		t.Errorf("CSV header row missing:\n%s", out)
	}
}

func TestRunFigures(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-figures"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1", "Figure 4"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("figures output missing %q", want)
		}
	}
}
