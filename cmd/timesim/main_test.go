package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"E1", "E15", "A1", "fig1", "recovery", "ablation-slew"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-experiment", "fig3"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "E11") {
		t.Errorf("output missing experiment table:\n%s", buf.String())
	}
}

func TestRunSingleAblation(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-experiment", "A1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Ablation") {
		t.Errorf("output missing ablation table:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-experiment", "nope"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunNothingToDo(t *testing.T) {
	var buf strings.Builder
	if err := run(nil, &buf); err == nil {
		t.Error("no-op invocation accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunCSV(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-experiment", "fig3", "-csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# E11:") {
		t.Errorf("CSV comment header missing:\n%s", out)
	}
	if !strings.Contains(out, "algorithm,resulting C") {
		t.Errorf("CSV header row missing:\n%s", out)
	}
}

func TestRunChaosBatch(t *testing.T) {
	var a, b strings.Builder
	args := []string{"-chaos", "-campaigns", "12", "-chaos-seed", "1"}
	if err := run(args, &a); err != nil {
		t.Fatalf("%v\n%s", err, a.String())
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("chaos batch output is not deterministic")
	}
	if !strings.Contains(a.String(), "chaos: 12 campaigns ok") {
		t.Errorf("missing summary line:\n%s", a.String())
	}
	if strings.Count(a.String(), "verdict=ok") != 12 {
		t.Errorf("expected 12 ok verdict lines:\n%s", a.String())
	}
}

func TestRunChaosBadCampaignCount(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-chaos", "-campaigns", "0"}, &buf); err == nil {
		t.Error("zero campaign count accepted")
	}
}

func TestRunChaosReplayLine(t *testing.T) {
	var buf strings.Builder
	line := "v1 seed=3 n=4 topo=star fn=IM rec=0 dur=300 sync=30 faults=-"
	if err := run([]string{"-chaos", "-replay", line}, &buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "replay seed=3 verdict=ok") {
		t.Errorf("unexpected replay output:\n%s", buf.String())
	}
}

func TestRunChaosReplayCorpusFiles(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "internal", "chaos", "corpus", "*.repro"))
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus glob: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		var buf strings.Builder
		if err := run([]string{"-chaos", "-replay", f}, &buf); err != nil {
			t.Errorf("%s: %v\n%s", f, err, buf.String())
		}
	}
}

func TestRunChaosReplayMalformed(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-chaos", "-replay", "v1 nonsense"}, &buf); err == nil {
		t.Error("malformed reproducer accepted")
	}
}

func TestRunFigures(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-figures"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1", "Figure 4"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("figures output missing %q", want)
		}
	}
}
