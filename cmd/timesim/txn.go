package main

import (
	"fmt"
	"io"

	"disttime/internal/core"
	"disttime/internal/obs"
	"disttime/internal/service"
	"disttime/internal/simnet"
	"disttime/internal/txn"
)

// txnOpts carries the -txn flags.
type txnOpts struct {
	seed    uint64  // -txn-seed
	n       int     // -txn-n: cluster size (one client per server)
	rate    float64 // -txn-rate: per-client transactions per virtual second
	dur     float64 // -txn-dur: virtual duration, seconds
	metrics string  // -metrics, shared with the other modes
}

// runTxn runs the commit-wait transaction demo: an n-server mesh whose
// clocks start skewed but contained, with one client per server
// stamping transactions from the server's hybrid logical clock and
// committing only after the TrueTime-style commit-wait, printing the
// full commit timeline in virtual-time order.
//
// The service is seeded and the workload draws its think gaps from the
// service's simulator, so the entire output is a pure function of the
// flags: two invocations with the same seed are byte-identical, which
// `make txn-smoke` and the CLI tests enforce. A VIOLATION line (a
// commit whose timestamp does not exceed one committed before its
// start) would mark an external-consistency break and exits nonzero.
func runTxn(o txnOpts, out io.Writer) error {
	if o.n < 2 {
		return fmt.Errorf("txn demo needs at least 2 servers, got %d", o.n)
	}
	if o.rate <= 0 {
		o.rate = 1
	}
	if o.dur <= 0 {
		o.dur = 300
	}
	specs := make([]service.ServerSpec, o.n)
	for i := range specs {
		// Deterministic mixed drifts inside the claimed bound and initial
		// offsets spread across the error envelope — the skew that makes
		// commit-wait earn its keep.
		specs[i] = service.ServerSpec{
			Delta:         1e-4,
			Drift:         1e-4 * (1 - 2*float64(i%2)),
			InitialOffset: 0.04 - 0.08*float64(i)/float64(o.n-1),
			InitialError:  0.05,
			SyncEvery:     20,
		}
	}
	svc, err := service.New(service.Config{
		Seed:    o.seed,
		Delay:   simnet.Uniform{Max: 0.05},
		Fn:      core.IM{},
		Servers: specs,
	})
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if o.metrics != "" {
		reg = obs.NewRegistry()
		svc.Observe(reg, nil)
	}
	fmt.Fprintf(out, "txn demo: n=%d dur=%gs rate=%g/client seed=%d waiter=commit-wait\n",
		o.n, o.dur, o.rate, o.seed)
	w, err := txn.Attach(svc, txn.Config{
		Clients: o.n,
		Rate:    o.rate,
		OnCommit: func(x txn.Txn) {
			fmt.Fprintf(out, "commit client=%d seq=%d start=%.6f commit=%.6f wait=%.6f ts=%v\n",
				x.Client, x.Seq, x.Start, x.Commit, x.Commit-x.Start, x.TS)
		},
		OnViolation: func(v txn.Violation) {
			fmt.Fprintf(out, "VIOLATION t=%.6f client=%d: %s\n", v.T, v.Client, v.Detail)
		},
	})
	if err != nil {
		return err
	}
	svc.Run(o.dur)
	maxTS, maxNode := w.MaxCommitted()
	fmt.Fprintf(out, "txn run: seed=%d steps=%d commits=%d violations=%d max-ts=%v@server%d\n",
		o.seed, svc.Sim.Steps(), w.Commits, w.Violations, maxTS, maxNode)
	if err := writeMetrics(o.metrics, reg); err != nil {
		return err
	}
	if w.Violations > 0 {
		return fmt.Errorf("txn demo recorded %d external-consistency violations", w.Violations)
	}
	return nil
}
