package main

import (
	"strings"
	"testing"
)

// txnArgs keeps the test runs short: a small cluster over a short
// virtual window.
func txnArgs(seed string) []string {
	return []string{"-txn", "-txn-seed", seed, "-txn-n", "3", "-txn-rate", "2", "-txn-dur", "60"}
}

// TestRunTxnDeterministic is the satellite acceptance check: two runs
// with the same seed produce byte-identical commit timelines, with no
// external-consistency violations.
func TestRunTxnDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run(txnArgs("9"), &a); err != nil {
		t.Fatal(err)
	}
	if err := run(txnArgs("9"), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("seeded txn runs diverge:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{"txn demo:", "commit client=", "violations=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("txn output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "VIOLATION") {
		t.Errorf("txn demo reported a violation:\n%s", out)
	}
	// Different seeds must explore different schedules.
	var c strings.Builder
	if err := run(txnArgs("10"), &c); err != nil {
		t.Fatal(err)
	}
	if c.String() == out {
		t.Error("different txn seeds produced identical timelines")
	}
}

// TestRunTxnValidation rejects single-server clusters (external
// consistency across one server is vacuous).
func TestRunTxnValidation(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-txn", "-txn-n", "1"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "at least 2") {
		t.Fatalf("one-server txn demo accepted: %v", err)
	}
}
