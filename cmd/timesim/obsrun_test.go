package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestObservedRunDeterministic is the ISSUE acceptance check: two seeded
// `timesim -metrics -trace-out` invocations write byte-identical files.
func TestObservedRunDeterministic(t *testing.T) {
	dir := t.TempDir()
	paths := func(n string) (string, string) {
		return filepath.Join(dir, "m"+n+".json"), filepath.Join(dir, "t"+n+".jsonl")
	}
	m1, t1 := paths("1")
	m2, t2 := paths("2")
	var out1, out2 strings.Builder
	if err := run([]string{"-metrics", m1, "-trace-out", t1, "-obs-seed", "7", "-obs-dur", "120"}, &out1); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-metrics", m2, "-trace-out", t2, "-obs-seed", "7", "-obs-dur", "120"}, &out2); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Errorf("stdout differs:\n%s\nvs\n%s", out1.String(), out2.String())
	}
	for _, pair := range [][2]string{{m1, m2}, {t1, t2}} {
		a, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s and %s differ", pair[0], pair[1])
		}
	}
	// The snapshot actually carries the expected metric families.
	data, _ := os.ReadFile(m1)
	for _, want := range []string{
		"service_sync_rounds_total", "sim_events_executed_total",
		"simnet_messages_delivered_total", "simnet_delay_seconds",
		"service_error_after_seconds",
	} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("metrics snapshot missing %q", want)
		}
	}
	// And the span log is JSONL with the documented schema.
	spans, _ := os.ReadFile(t1)
	lines := bytes.Split(bytes.TrimSpace(spans), []byte("\n"))
	if len(lines) == 0 || len(lines[0]) == 0 {
		t.Fatal("empty span log")
	}
	for _, want := range []string{`"span":"sync_round"`, `"rule":"MM-2"`, `"before":{"c":`} {
		if !bytes.Contains(lines[0], []byte(want)) {
			t.Errorf("span line missing %q: %s", want, lines[0])
		}
	}
	// A different seed changes the bytes (the snapshot is a function of
	// the seed, not a constant).
	m3 := filepath.Join(dir, "m3.json")
	var out3 strings.Builder
	if err := run([]string{"-metrics", m3, "-obs-seed", "8", "-obs-dur", "120"}, &out3); err != nil {
		t.Fatal(err)
	}
	other, _ := os.ReadFile(m3)
	if bytes.Equal(data, other) {
		t.Error("different seeds produced identical snapshots")
	}
}

// TestChaosMetricsPassive checks that -chaos -metrics writes a snapshot
// while leaving the campaign report (including every Steps fingerprint)
// byte-identical to an unobserved batch.
func TestChaosMetricsPassive(t *testing.T) {
	dir := t.TempDir()
	mPath := filepath.Join(dir, "chaos.json")
	var observed, plain strings.Builder
	if err := run([]string{"-chaos", "-campaigns", "5", "-metrics", mPath}, &observed); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-chaos", "-campaigns", "5"}, &plain); err != nil {
		t.Fatal(err)
	}
	if observed.String() != plain.String() {
		t.Errorf("observed chaos batch diverged from unobserved:\n%s\nvs\n%s",
			observed.String(), plain.String())
	}
	data, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"chaos_campaigns_total", "chaos_invariant_checks_total"} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("chaos metrics snapshot missing %q", want)
		}
	}
}
