package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"disttime/internal/udptime"
)

// TestUDPSmoke is the end-to-end loopback smoke the Makefile's
// udp-smoke target runs: a live batched server, a short timeload run
// against it, zero errors, and a -json summary whose shape is
// deterministic (fixed key set, consistent counters).
func TestUDPSmoke(t *testing.T) {
	src, err := udptime.NewSystemClock(time.Millisecond, 50)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := udptime.NewBatchServer("127.0.0.1:0", 11, src,
		udptime.BatchConfig{Shards: 2, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var out bytes.Buffer
	args := []string{
		"-addr", srv.Addr().String(),
		"-conns", "2",
		"-window", "16",
		"-duration", "100ms",
		"-json",
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v\noutput: %s", args, err, out.String())
	}

	var got map[string]any
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("summary is not JSON: %v\n%s", err, out.String())
	}
	want := []string{
		"addr", "conns", "window", "sent", "received", "timeouts",
		"strays", "errors", "elapsed_ns", "qps",
		"p50_ns", "p90_ns", "p99_ns", "p999_ns",
	}
	if len(got) != len(want) {
		t.Fatalf("summary has %d keys, want %d: %v", len(got), len(want), got)
	}
	for _, k := range want {
		if _, ok := got[k]; !ok {
			t.Fatalf("summary missing key %q: %v", k, got)
		}
	}
	if got["errors"].(float64) != 0 {
		t.Fatalf("smoke run saw errors: %v", got)
	}
	if got["received"].(float64) == 0 {
		t.Fatalf("smoke run received nothing: %v", got)
	}
	if got["received"].(float64) > got["sent"].(float64) {
		t.Fatalf("received more than sent: %v", got)
	}

	// The text mode must mention throughput and all four percentiles.
	out.Reset()
	args = []string{"-addr", srv.Addr().String(), "-duration", "50ms"}
	if err := run(args, &out); err != nil {
		t.Fatalf("text run: %v\n%s", err, out.String())
	}
	for _, needle := range []string{"req/s", "p50", "p90", "p99", "p999"} {
		if !strings.Contains(out.String(), needle) {
			t.Fatalf("text summary missing %q:\n%s", needle, out.String())
		}
	}
}

// TestRunErrors covers the argument and no-server error paths.
func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "bad flag", args: []string{"-bogus"}},
		{name: "empty address", args: []string{"-addr", ""}},
		{name: "unresolvable address", args: []string{"-addr", "not an address"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tt.args, &out); err == nil {
				t.Errorf("run(%v) accepted", tt.args)
			}
		})
	}
}
