// Command timeload is a closed-loop load generator for the UDP time
// service: N connections each keep a window of requests in flight
// against a live server, batching sends and receives, and the run ends
// with throughput and latency percentiles from the HDR histogram the
// run recorded into.
//
// Usage:
//
//	timeload -addr 127.0.0.1:3123 -conns 4 -window 64 -duration 5s
//	timeload -addr 127.0.0.1:3123 -requests 1000000 -json
//
// -json emits a deterministic-shape summary object on stdout for
// machine consumers; the default output is human-readable.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"disttime/internal/udptime"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "timeload:", err)
		os.Exit(1)
	}
}

// summary is the -json output shape. Field order and presence are fixed
// so downstream tooling can diff runs; durations are nanoseconds.
type summary struct {
	Addr     string  `json:"addr"`
	Conns    int     `json:"conns"`
	Window   int     `json:"window"`
	Sent     uint64  `json:"sent"`
	Received uint64  `json:"received"`
	Timeouts uint64  `json:"timeouts"`
	Strays   uint64  `json:"strays"`
	Errors   uint64  `json:"errors"`
	Elapsed  int64   `json:"elapsed_ns"`
	QPS      float64 `json:"qps"`
	P50      int64   `json:"p50_ns"`
	P90      int64   `json:"p90_ns"`
	P99      int64   `json:"p99_ns"`
	P999     int64   `json:"p999_ns"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("timeload", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:3123", "server UDP address")
		conns    = fs.Int("conns", 1, "concurrent client connections")
		window   = fs.Int("window", 32, "in-flight requests per connection (max 1024)")
		batch    = fs.Int("batch", 32, "datagrams per I/O batch")
		rate     = fs.Float64("rate", 0, "total request rate cap, req/s (0 = unlimited)")
		duration = fs.Duration("duration", time.Second, "run duration")
		requests = fs.Uint64("requests", 0, "stop after this many requests (0 = run for -duration)")
		timeout  = fs.Duration("timeout", time.Second, "per-window stall timeout")
		jsonOut  = fs.Bool("json", false, "emit a JSON summary instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := udptime.LoadConfig{
		Addr:        *addr,
		Conns:       *conns,
		Window:      *window,
		Batch:       *batch,
		Rate:        *rate,
		Duration:    *duration,
		MaxRequests: *requests,
		Timeout:     *timeout,
	}
	res, err := udptime.RunLoad(cfg)
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		return enc.Encode(summary{
			Addr:     *addr,
			Conns:    cfg.Conns,
			Window:   cfg.Window,
			Sent:     res.Sent,
			Received: res.Received,
			Timeouts: res.Timeouts,
			Strays:   res.Strays,
			Errors:   res.Errors,
			Elapsed:  int64(res.Elapsed),
			QPS:      res.QPS,
			P50:      int64(res.P50),
			P90:      int64(res.P90),
			P99:      int64(res.P99),
			P999:     int64(res.P999),
		})
	}
	fmt.Fprintf(out, "timeload %s: %d conns x window %d\n", *addr, cfg.Conns, cfg.Window)
	fmt.Fprintf(out, "  sent %d  received %d  timeouts %d  strays %d  errors %d\n",
		res.Sent, res.Received, res.Timeouts, res.Strays, res.Errors)
	fmt.Fprintf(out, "  elapsed %v  throughput %.0f req/s\n", res.Elapsed.Round(time.Millisecond), res.QPS)
	fmt.Fprintf(out, "  latency p50 %v  p90 %v  p99 %v  p999 %v\n", res.P50, res.P90, res.P99, res.P999)
	if res.Received == 0 && res.Sent > 0 {
		return errors.New("no replies received")
	}
	return nil
}
