// Command disttimelint runs disttime's in-tree static analyzers: five
// repo-specific invariant checks (nowcheck, globalrand, floateq, mapiter,
// poolput) built on the standard library's go/ast and go/types, with no
// external dependencies. See internal/lint for the framework and
// DESIGN.md §10 for the invariant each check guards.
//
// Usage:
//
//	disttimelint [-json] [-checks nowcheck,floateq] [patterns...]
//
// Patterns are package directories or recursive "dir/..." walks (default
// "./..."). The exit code is 0 when clean, 1 on findings, 2 on load or
// usage errors. Findings can be suppressed line-by-line with a justified
// "//lint:ignore <check> <reason>" directive.
package main

import (
	"os"

	"disttime/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
