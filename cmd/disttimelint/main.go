// Command disttimelint runs disttime's in-tree static analyzers: nine
// repo-specific invariant checks (nowcheck, globalrand, floateq, mapiter,
// poolput, guardedby, atomicmix, noalloc, barrier) built on the standard
// library's go/ast and go/types, with no external dependencies. See
// internal/lint for the framework and DESIGN.md §10 and §15 for the
// invariant each check guards.
//
// Usage:
//
//	disttimelint [-json] [-checks nowcheck,floateq] [patterns...]
//	disttimelint -noalloc-audit BENCH_BASELINE.json [patterns...]
//
// Patterns are package directories or recursive "dir/..." walks (default
// "./..."). The exit code is 0 when clean, 1 on findings, 2 on load or
// usage errors. Findings can be suppressed line-by-line with a
// "//lint:ignore <check> <reason>" directive whose reason is a written
// justification of at least three words. The -noalloc-audit mode
// cross-checks every benchmark cited by a //lint:noalloc annotation
// against the measured allocs/op in the given baseline.
package main

import (
	"os"

	"disttime/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
