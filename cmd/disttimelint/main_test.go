package main

import (
	"bytes"
	"strings"
	"testing"

	"disttime/internal/lint"
)

// TestLintMainFromCmdDir exercises the driver exactly as the binary does,
// with paths relative to this package's directory.
func TestLintMainFromCmdDir(t *testing.T) {
	var out, errb bytes.Buffer
	code := lint.Main([]string{"../../internal/lint/testdata/src/clean"}, &out, &errb)
	if code != lint.ExitClean {
		t.Fatalf("clean fixture: exit %d, stderr %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	code = lint.Main([]string{"../../internal/lint/testdata/src/globalrand"}, &out, &errb)
	if code != lint.ExitFindings {
		t.Fatalf("globalrand fixture: exit %d, stderr %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "globalrand:") {
		t.Fatalf("missing check name in output:\n%s", out.String())
	}
}

// TestLintUsage lists all nine checks in the usage text.
func TestLintUsage(t *testing.T) {
	var out, errb bytes.Buffer
	code := lint.Main([]string{"-h"}, &out, &errb)
	if code != lint.ExitError {
		t.Fatalf("-h: exit %d", code)
	}
	for _, check := range []string{"nowcheck", "globalrand", "floateq", "mapiter", "poolput",
		"guardedby", "atomicmix", "noalloc", "barrier"} {
		if !strings.Contains(errb.String(), check) {
			t.Errorf("usage missing %s:\n%s", check, errb.String())
		}
	}
}
