package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: disttime
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMarzulloSweep-4   	  123456	      9876.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkServiceHour       	      20	   1878266 ns/op	   34086 B/op	     346 allocs/op
BenchmarkNoMem-8           	     100	       50 ns/op
PASS
ok  	disttime	1.234s
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %v", len(results), results)
	}
	sweep, ok := results["BenchmarkMarzulloSweep"]
	if !ok {
		t.Fatalf("CPU suffix not trimmed: %v", results)
	}
	if sweep.NsPerOp != 9876.5 || sweep.Iterations != 123456 {
		t.Fatalf("sweep = %+v", sweep)
	}
	if sweep.AllocsPerOp == nil || *sweep.AllocsPerOp != 0 {
		t.Fatalf("sweep allocs = %v, want 0", sweep.AllocsPerOp)
	}
	hour := results["BenchmarkServiceHour"]
	if hour.NsPerOp != 1878266 || *hour.BytesPerOp != 34086 || *hour.AllocsPerOp != 346 {
		t.Fatalf("hour = %+v", hour)
	}
	if nm := results["BenchmarkNoMem"]; nm.BytesPerOp != nil || nm.AllocsPerOp != nil {
		t.Fatalf("no-benchmem line should omit memory fields: %+v", nm)
	}
}

func TestRunJSON(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]Result
	if err := json.Unmarshal([]byte(out.String()), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(decoded) != 3 {
		t.Fatalf("round-trip lost results: %v", decoded)
	}
}

func TestRunEmpty(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("PASS\n"), &out); err == nil {
		t.Fatal("expected an error for input without benchmarks")
	}
}
