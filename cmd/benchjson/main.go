// Command benchjson converts `go test -bench` output on stdin into a JSON
// object on stdout mapping benchmark name to its measured ns/op, B/op, and
// allocs/op. The Makefile's bench target pipes through it to record
// BENCH_BASELINE.json, the repo's perf trajectory: future PRs regenerate
// the file and diff it to see what they cost or saved.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson > BENCH_BASELINE.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements. Pointer fields distinguish "not
// reported" (no -benchmem) from zero.
type Result struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	results, err := parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results) // map keys marshal sorted
}

// parse scans bench output for result lines.
func parse(in io.Reader) (map[string]Result, error) {
	results := make(map[string]Result)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Shape: Name iterations value unit [value unit]...
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := trimCPUSuffix(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = ptr(v)
			case "allocs/op":
				res.AllocsPerOp = ptr(v)
			}
		}
		results[name] = res
	}
	return results, sc.Err()
}

func ptr(v float64) *float64 { return &v }

// trimCPUSuffix drops the -N GOMAXPROCS suffix go test appends to
// benchmark names (absent when GOMAXPROCS is 1).
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
