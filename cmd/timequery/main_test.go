package main

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"disttime/internal/udptime"
)

// fixedClock answers with the system time shifted by offset.
type fixedClock struct {
	offset time.Duration
	err    time.Duration
}

func (c fixedClock) Now() (time.Time, time.Duration, bool) {
	return time.Now().Add(c.offset), c.err, true
}

func startServer(t *testing.T, id uint64, src udptime.ClockSource) string {
	t.Helper()
	srv, err := udptime.NewServer("127.0.0.1:0", id, src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr().String()
}

func TestRunNoServers(t *testing.T) {
	var buf strings.Builder
	if err := run(nil, &buf); err == nil {
		t.Error("missing -servers accepted")
	}
}

func TestRunQueriesAndCombines(t *testing.T) {
	a := startServer(t, 1, fixedClock{err: 10 * time.Millisecond})
	b := startServer(t, 2, fixedClock{err: 10 * time.Millisecond})
	var buf strings.Builder
	err := run([]string{"-servers", a + "," + b, "-timeout", "2s"}, &buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "combined:") {
		t.Errorf("no combined line:\n%s", out)
	}
}

func TestRunInconsistentWithoutSelect(t *testing.T) {
	a := startServer(t, 1, fixedClock{err: time.Millisecond})
	b := startServer(t, 2, fixedClock{offset: time.Hour, err: time.Millisecond})
	var buf strings.Builder
	err := run([]string{"-servers", a + "," + b, "-timeout", "2s"}, &buf)
	if err == nil {
		t.Error("inconsistent servers did not fail without -select")
	}
}

func TestRunSelectRejectsFalseticker(t *testing.T) {
	good1 := startServer(t, 1, fixedClock{err: 10 * time.Millisecond})
	good2 := startServer(t, 2, fixedClock{err: 10 * time.Millisecond})
	liar := startServer(t, 3, fixedClock{offset: time.Hour, err: time.Millisecond})
	var buf strings.Builder
	servers := fmt.Sprintf("%s,%s,%s", good1, good2, liar)
	if err := run([]string{"-servers", servers, "-select", "-timeout", "2s"}, &buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "falseticker rejected") {
		t.Errorf("falseticker not reported:\n%s", buf.String())
	}
}

func TestRunAllServersDown(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-servers", "127.0.0.1:1", "-timeout", "100ms"}, &buf)
	if err == nil {
		t.Error("unreachable server accepted")
	}
}

// unsyncedClock reports itself unsynchronized.
type unsyncedClock struct{}

func (unsyncedClock) Now() (time.Time, time.Duration, bool) {
	return time.Now(), 0, false
}

func TestRunAllUnsynchronized(t *testing.T) {
	a := startServer(t, 1, unsyncedClock{})
	var buf strings.Builder
	err := run([]string{"-servers", a, "-timeout", "2s"}, &buf)
	if err == nil {
		t.Error("all-unsynchronized service accepted")
	}
}
