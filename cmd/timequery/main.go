// Command timequery queries a set of UDP time servers, prints each
// server's interval, and combines them: the intersection (algorithm IM)
// by default, or fault-tolerant selection (-select) when some servers may
// be falsetickers.
//
// Usage:
//
//	timequery -servers 127.0.0.1:3123,127.0.0.1:3124,127.0.0.1:3125
//	timequery -servers ... -select
//
// The exit status is nonzero if the servers are mutually inconsistent (at
// least one of them must be wrong) or unreachable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"disttime/internal/interval"
	"disttime/internal/ntp"
	"disttime/internal/udptime"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "timequery:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("timequery", flag.ContinueOnError)
	var (
		servers = fs.String("servers", "", "comma-separated UDP time server addresses")
		timeout = fs.Duration("timeout", time.Second, "per-server query timeout")
		doSel   = fs.Bool("select", false, "reject falsetickers with majority selection instead of plain intersection")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *servers == "" {
		return fmt.Errorf("no servers given (-servers host:port,host:port,...)")
	}
	addrs := strings.Split(*servers, ",")

	client := udptime.NewClient(*timeout, nil)
	ms, err := client.QueryMany(addrs)
	if err != nil && len(ms) == 0 {
		return fmt.Errorf("all queries failed: %w", err)
	}
	if err != nil {
		fmt.Fprintf(out, "warning: some queries failed: %v\n", err)
	}

	fmt.Fprintf(out, "%-22s %-4s %-28s %-12s %-10s %s\n",
		"SERVER", "ID", "CLOCK", "MAX ERROR", "RTT", "OFFSET INTERVAL (s)")
	var readings []ntp.Reading
	for _, m := range ms {
		iv := m.OffsetInterval()
		note := ""
		if m.Unsynchronized {
			note = " (unsynchronized, ignored)"
		} else {
			readings = append(readings, ntp.Reading{
				ID: m.Addr, Interval: iv, RTT: m.RTT.Seconds(),
			})
		}
		fmt.Fprintf(out, "%-22s %-4d %-28s %-12v %-10v [%.6f, %.6f]%s\n",
			m.Addr, m.ServerID, m.C.Format(time.RFC3339Nano), m.E, m.RTT.Round(time.Microsecond),
			iv.Lo, iv.Hi, note)
	}
	if len(readings) == 0 {
		return fmt.Errorf("no synchronized servers answered")
	}

	var common interval.Interval
	if *doSel {
		sel, err := ntp.Select(readings, ntp.Options{})
		if err != nil {
			return fmt.Errorf("selection: %w", err)
		}
		for _, idx := range sel.Falsetickers {
			fmt.Fprintf(out, "falseticker rejected: %s\n", readings[idx].ID)
		}
		common = sel.Interval
	} else {
		ivs := make([]interval.Interval, len(readings))
		for i, r := range readings {
			ivs[i] = r.Interval
		}
		var ok bool
		if common, ok = interval.IntersectAll(ivs); !ok {
			return fmt.Errorf("servers are mutually inconsistent: at least one must be wrong (rerun with -select)")
		}
	}

	offset := time.Duration(common.Midpoint() * float64(time.Second))
	maxErr := time.Duration(common.HalfWidth() * float64(time.Second))
	fmt.Fprintf(out, "\ncombined: local clock offset %v +/- %v\n", offset, maxErr)
	fmt.Fprintf(out, "true time: %s +/- %v\n",
		time.Now().Add(offset).Format(time.RFC3339Nano), maxErr)
	return nil
}
