// Package disttime is a distributed time service library reproducing
// Marzullo & Owicki, "Maintaining the Time in a Distributed System"
// (Stanford CSL TR 83-247, PODC 1983) — the paper whose intersection
// algorithm ("Marzullo's algorithm") later became the heart of NTP's
// clock selection.
//
// A time server answers a request with a pair <C, E>: its clock value and
// a bound on its maximum error, denoting the interval [C-E, C+E] that
// contains the correct time while the server's drift bound is valid. The
// library implements both of the paper's synchronization functions —
// algorithm MM (adopt the neighbor with the smallest transit-adjusted
// error) and algorithm IM (intersect all intervals and take the midpoint)
// — together with everything needed to run, test, and measure them:
//
//   - the interval algebra, consistency groups, and the fault-tolerant
//     M-of-N intersection (Marzullo's algorithm) in internal/interval;
//   - drifting and failing clock models and a monotonic wrapper in
//     internal/clock;
//   - a deterministic discrete-event simulator and network in
//     internal/sim and internal/simnet;
//   - the server state machine, both algorithms, the Section 3 recovery
//     heuristic, the Section 5 consonance (rate interval) machinery, and
//     baseline synchronization functions in internal/core;
//   - a full simulated time service harness in internal/service;
//   - NTP-style selection/cluster/combine in internal/ntp;
//   - a real UDP time service (wire protocol, server, client, disciplined
//     clock) in internal/udptime;
//   - every figure and theorem of the paper as a runnable experiment in
//     internal/experiments (see EXPERIMENTS.md).
//
// This package re-exports the public API. Quick start:
//
//	best := disttime.Marzullo([]disttime.Interval{
//		disttime.FromEstimate(10.000, 0.005),
//		disttime.FromEstimate(10.003, 0.004),
//		disttime.FromEstimate(99.0, 0.001), // falseticker
//	})
//	// best.Interval contains the correct time; best.Count == 2.
//
// The executables under cmd/ expose the same functionality: timesim runs
// the paper's experiments, timeserver serves time over UDP, and timequery
// queries a set of servers and intersects their answers.
package disttime
