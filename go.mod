module disttime

go 1.23
