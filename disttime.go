package disttime

import (
	"time"

	"disttime/internal/clock"
	"disttime/internal/core"
	"disttime/internal/hlc"
	"disttime/internal/interval"
	"disttime/internal/member"
	"disttime/internal/ntp"
	"disttime/internal/obs"
	"disttime/internal/service"
	"disttime/internal/simnet"
	"disttime/internal/trace"
	"disttime/internal/txn"
	"disttime/internal/udptime"
)

// Interval algebra (internal/interval). An Interval is a closed range
// [Lo, Hi] of real time in seconds; FromEstimate builds [C-E, C+E] from a
// reading.
type (
	// Interval is a closed real-time interval in seconds.
	Interval = interval.Interval
	// IntervalGroup is one maximal mutually-consistent subset of a set of
	// intervals (one shaded region of the paper's Figure 4).
	IntervalGroup = interval.Group
	// Best is the result of Marzullo's fault-tolerant intersection.
	Best = interval.Best
)

// Interval constructors and algorithms.
var (
	// NewInterval returns [lo, hi], rejecting inverted bounds.
	NewInterval = interval.New
	// FromEstimate returns [c-e, c+e].
	FromEstimate = interval.FromEstimate
	// Consistent reports whether two intervals overlap (the paper's
	// consistency predicate |Ci - Cj| <= Ei + Ej).
	Consistent = interval.Consistent
	// IntersectAll intersects a set of intervals.
	IntersectAll = interval.IntersectAll
	// Marzullo finds the interval contained in the largest number of
	// source intervals (Marzullo's algorithm, as used by NTP).
	Marzullo = interval.Marzullo
	// MarzulloAtLeast finds the leftmost region covered by at least m
	// sources.
	MarzulloAtLeast = interval.MarzulloAtLeast
	// ConsistencyGroups decomposes intervals into maximal
	// mutually-consistent subsets.
	ConsistencyGroups = interval.ConsistencyGroups
)

// Time-server protocol engine (internal/core): the paper's rules MM-1,
// MM-2, and IM-2 plus the baseline synchronization functions.
type (
	// Server is one time server's synchronization state (rule MM-1).
	Server = core.Server
	// ServerConfig configures a Server.
	ServerConfig = core.Config
	// Reading is a server's <C, E> answer.
	Reading = core.Reading
	// Reply is a remote reading with its measured round trip.
	Reply = core.Reply
	// SyncFunc is a pluggable synchronization function.
	SyncFunc = core.SyncFunc
	// SyncResult reports what a synchronization pass did.
	SyncResult = core.Result
	// MM is algorithm MM: minimization of the maximum error.
	MM = core.MM
	// IM is algorithm IM: intersection of the time intervals.
	IM = core.IM
	// LamportMax, Median, and Mean are the Section 1.2 baselines.
	LamportMax = core.LamportMax
	// Median is the median-clock baseline.
	Median = core.Median
	// Mean is the mean-clock baseline.
	Mean = core.Mean
	// TrimmedMean is the fault-tolerant averaging function of [Lamport 82].
	TrimmedMean = core.TrimmedMean
	// SelectIM is the intersection function hardened against falsetickers
	// (the [Marzullo 83] extension as a synchronization function).
	SelectIM = core.SelectIM
	// RateTracker estimates neighbor separation rates (Section 5).
	RateTracker = core.RateTracker
	// RateEstimate bounds a neighbor's rate of separation.
	RateEstimate = core.RateEstimate
)

// NewServer constructs a time server whose bookkeeping starts at real
// time t.
var NewServer = core.NewServer

// Clock models (internal/clock).
type (
	// Clock is a settable clock driven by external real time.
	Clock = clock.Clock
	// DriftingClock advances at a constant rate 1+drift.
	DriftingClock = clock.Drifting
	// MonotonicClock derives a monotonic view from a settable clock
	// (Section 1.1).
	MonotonicClock = clock.Monotonic
	// RandomWalkConfig configures a bounded random-walk oscillator.
	RandomWalkConfig = clock.RandomWalkConfig
	// SlewingClock absorbs corrections gradually at a bounded rate, the
	// way deployed time daemons discipline an OS clock.
	SlewingClock = clock.Slewing
	// SinusoidClock models a thermally-cycling oscillator whose rate
	// amplitude is a valid drift bound.
	SinusoidClock = clock.Sinusoid
)

// Clock constructors.
var (
	// NewDriftingClock returns a constant-drift clock.
	NewDriftingClock = clock.NewDrifting
	// NewRandomWalkClock returns a bounded random-walk clock.
	NewRandomWalkClock = clock.NewRandomWalk
	// NewMonotonicClock wraps a clock with the Section 1.1 monotonic
	// technique.
	NewMonotonicClock = clock.NewMonotonic
	// NewStoppedClock, NewRacingClock, and NewStuckClock arm the Section
	// 1.1 failure modes.
	NewStoppedClock = clock.NewStopped
	// NewRacingClock wraps a clock that races ahead after a failure time.
	NewRacingClock = clock.NewRacing
	// NewStuckClock wraps a clock that ignores resets after a failure
	// time.
	NewStuckClock = clock.NewStuck
	// NewSlewingClock wraps a clock so corrections are absorbed at a
	// bounded slew rate.
	NewSlewingClock = clock.NewSlewing
	// NewSinusoidClock returns a sinusoidal-rate oscillator.
	NewSinusoidClock = clock.NewSinusoid
)

// Simulated time service (internal/service, internal/simnet).
type (
	// Simulation is a complete simulated time service.
	Simulation = service.Service
	// SimulationConfig configures a Simulation.
	SimulationConfig = service.Config
	// ServerSpec describes one simulated server.
	ServerSpec = service.ServerSpec
	// SimSample is one metrics snapshot of a running simulation.
	SimSample = service.Sample
	// Topology selects the simulated link structure.
	Topology = service.Topology
	// DelayModel samples one-way message delays.
	DelayModel = simnet.DelayModel
	// UniformDelay draws uniformly from [Min, Max].
	UniformDelay = simnet.Uniform
	// ConstantDelay is a fixed delay.
	ConstantDelay = simnet.Constant
	// TruncExpDelay is a truncated-exponential delay.
	TruncExpDelay = simnet.TruncExp
	// LinkConfig describes one simulated link (for Custom topologies
	// wired directly through Simulation.Net).
	LinkConfig = simnet.LinkConfig
	// SimNode is one running server inside a Simulation.
	SimNode = service.Node
	// ConsonanceReport is the Section 5 diagnosis of a running
	// simulation: who observes whom separating faster than the claimed
	// bounds allow.
	ConsonanceReport = service.ConsonanceReport
)

// Topologies for SimulationConfig.
const (
	FullMesh = service.FullMesh
	Ring     = service.Ring
	Line     = service.Line
	Star     = service.Star
	Custom   = service.Custom
)

// NewSimulation builds a simulated time service at virtual time zero.
var NewSimulation = service.New

// Fault-tolerant selection (internal/ntp).
type (
	// SelectionReading is one candidate source for selection.
	SelectionReading = ntp.Reading
	// Selection is the outcome of the select pass.
	Selection = ntp.Selection
	// SelectOptions tunes Select.
	SelectOptions = ntp.Options
)

// Selection functions.
var (
	// Select classifies readings into survivors and falsetickers.
	Select = ntp.Select
	// SelectRFC is the RFC 5905 refinement with the midpoint majority
	// condition.
	SelectRFC = ntp.SelectRFC
	// Cluster prunes outlier survivors.
	Cluster = ntp.Cluster
	// Combine produces the final estimate from survivors.
	Combine = ntp.Combine
)

// Real UDP time service (internal/udptime).
type (
	// UDPServer answers time requests over UDP.
	UDPServer = udptime.Server
	// UDPClient queries UDP time servers.
	UDPClient = udptime.Client
	// Measurement is one completed UDP exchange.
	Measurement = udptime.Measurement
	// ClockSource yields <C, E> readings for servers and clients.
	ClockSource = udptime.ClockSource
	// SystemClock reads the OS clock with error bookkeeping.
	SystemClock = udptime.SystemClock
	// DisciplinedClock is a settable software clock steered by the
	// intersection algorithm.
	DisciplinedClock = udptime.DisciplinedClock
	// Syncer is the client daemon: it polls servers periodically and
	// disciplines a DisciplinedClock.
	Syncer = udptime.Syncer
	// SyncerConfig configures a Syncer.
	SyncerConfig = udptime.SyncerConfig
	// SyncReport describes one Syncer round.
	SyncReport = udptime.SyncReport
	// Peer is a full time-service member: it serves a disciplined clock
	// while a background syncer steers it.
	Peer = udptime.Peer
	// PeerConfig configures a Peer.
	PeerConfig = udptime.PeerConfig
	// SyncOptions carries the IM-2 transform parameters (the local drift
	// charge) a client applies to its measurements.
	SyncOptions = udptime.SyncOptions
	// UDPServerOption configures a UDPServer.
	UDPServerOption = udptime.ServerOption
	// UDPClientOption configures a UDPClient.
	UDPClientOption = udptime.ClientOption
	// MetricsRegistry is the process-wide metrics registry (counters,
	// gauges, histograms) shared by servers, clients, and syncers.
	MetricsRegistry = obs.Registry
)

// UDP service constructors and synchronizers.
var (
	// NewUDPServer starts a UDP time server.
	NewUDPServer = udptime.NewServer
	// NewUDPClient returns a UDP time client.
	NewUDPClient = udptime.NewClient
	// NewSystemClock returns an OS-clock source.
	NewSystemClock = udptime.NewSystemClock
	// NewDisciplinedClock returns an unsynchronized disciplined clock.
	NewDisciplinedClock = udptime.NewDisciplinedClock
	// SyncIM disciplines a clock with the intersection algorithm.
	SyncIM = udptime.SyncIM
	// SyncSelect disciplines a clock with falseticker rejection.
	SyncSelect = udptime.SyncSelect
	// NewSyncer starts the background synchronization daemon.
	NewSyncer = udptime.NewSyncer
	// NewPeer starts a full peer (server plus syncer).
	NewPeer = udptime.NewPeer
	// NewMetricsRegistry returns an empty metrics registry.
	NewMetricsRegistry = obs.NewRegistry
	// WithHealthListener serves /healthz, Prometheus /metrics, and pprof
	// over HTTP alongside a UDP time server.
	WithHealthListener = udptime.WithHealthListener
	// WithServerObservability resolves a server's counters in a registry.
	WithServerObservability = udptime.WithServerObservability
	// WithClientObservability resolves a client's query counters and RTT
	// histogram in a registry.
	WithClientObservability = udptime.WithClientObservability
	// WithSyncOptions sets a client's IM-2 transform parameters.
	WithSyncOptions = udptime.WithSyncOptions
)

// Dynamic membership (internal/member), available on both substrates:
// SimulationConfig.Members enables it in the simulator, PeerConfig.Seeds
// on the real UDP path.
type (
	// MembershipConfig tunes a roster-backed Peer's gossip cadence,
	// drift-aware failure detection, and peer-selection fanout.
	MembershipConfig = udptime.MembershipConfig
	// MemberConfig enables dynamic membership in a Simulation.
	MemberConfig = service.MemberConfig
	// MemberEvent is one roster transition observed in a Simulation.
	MemberEvent = service.MemberEvent
	// MemberStatus is a roster entry's lifecycle status.
	MemberStatus = member.Status
	// UDPMember is one roster entry of a roster-backed Peer, keyed by
	// the member's serving address.
	UDPMember = member.Entry[string]
	// MemberDetectorConfig carries the drift-aware deadline parameters
	// (period, miss budget, delay bound xi, drift bounds delta).
	MemberDetectorConfig = member.DetectorConfig
)

// Roster statuses.
const (
	MemberAlive   = member.Alive
	MemberSuspect = member.Suspect
	MemberLeft    = member.Left
	MemberEvicted = member.Evicted
)

// Hybrid logical clocks and causal ordering (internal/hlc): timestamps
// whose physical component is drawn from a server's latest bound C + E,
// with a logical counter breaking ties so happens-before always implies
// a strictly larger timestamp. Both substrates piggyback them on their
// wire traffic; DisciplinedClock.WaitUntilAfter provides the matching
// TrueTime-style commit-wait on the real UDP path.
type (
	// HLCTimestamp is a hybrid logical clock timestamp: wall nanoseconds,
	// a logical tiebreak counter, and the issuing node.
	HLCTimestamp = hlc.Timestamp
	// HLCClock is one node's hybrid logical clock.
	HLCClock = hlc.Clock
)

// HLCTimestampSize is the encoded size of an HLCTimestamp in bytes.
const HLCTimestampSize = hlc.TimestampSize

// Hybrid logical clock constructors and codec.
var (
	// NewHLC returns a zeroed hybrid logical clock for a node.
	NewHLC = hlc.New
	// AppendHLCTimestamp appends the 16-byte encoding of a timestamp.
	AppendHLCTimestamp = hlc.AppendTimestamp
	// ParseHLCTimestamp decodes a timestamp encoded by
	// AppendHLCTimestamp.
	ParseHLCTimestamp = hlc.ParseTimestamp
)

// Commit-wait transaction workload (internal/txn) for Simulations:
// clients stamp transactions with HLC timestamps and commit after a
// commit-wait, and the workload checks external consistency online.
type (
	// TxnConfig configures a transaction workload.
	TxnConfig = txn.Config
	// TxnWorkload is an attached transaction workload.
	TxnWorkload = txn.Workload
	// Txn is one committed transaction.
	Txn = txn.Txn
	// TxnViolation is one observed external-consistency breach.
	TxnViolation = txn.Violation
	// CommitWaiter decides when a stamped transaction may commit.
	CommitWaiter = txn.Waiter
	// CommitWait is the correct policy: wait until C - E passes the
	// stamp.
	CommitWait = txn.CommitWait
	// BuggyCommitWait is the planted bug that skips the wait (the chaos
	// harness proves the external-consistency checker catches it).
	BuggyCommitWait = txn.BuggyCommitWait
)

// AttachTxns schedules a transaction workload on a Simulation.
var AttachTxns = txn.Attach

// Simulation tracing (internal/trace).
type (
	// TraceLog is a bounded structured event log for simulations.
	TraceLog = trace.Log
	// TraceEvent is one recorded occurrence.
	TraceEvent = trace.Event
	// TraceKind classifies trace events.
	TraceKind = trace.Kind
)

// Trace kinds.
const (
	TraceSync         = trace.KindSync
	TraceReset        = trace.KindReset
	TraceInconsistent = trace.KindInconsistent
	TraceRecovery     = trace.KindRecovery
	TraceNote         = trace.KindNote
)

// Trace constructors.
var (
	// NewTraceLog returns a bounded event log.
	NewTraceLog = trace.New
	// AttachTrace wires a log to a simulation's synchronization passes.
	AttachTrace = trace.Attach
)

// TimeReading is an absolute-time reading <C, E> for IntersectReadings.
type TimeReading struct {
	// C is the clock value.
	C time.Time
	// E is the maximum error.
	E time.Duration
}

// IntersectReadings intersects absolute-time readings and returns the
// midpoint and maximum error of the common interval. ok is false when the
// readings are mutually inconsistent (or empty), in which case at least
// one reading is incorrect.
func IntersectReadings(readings []TimeReading) (c time.Time, e time.Duration, ok bool) {
	if len(readings) == 0 {
		return time.Time{}, 0, false
	}
	base := readings[0].C
	ivs := make([]Interval, len(readings))
	for i, r := range readings {
		center := r.C.Sub(base).Seconds()
		ivs[i] = FromEstimate(center, r.E.Seconds())
	}
	common, ok := IntersectAll(ivs)
	if !ok {
		return time.Time{}, 0, false
	}
	mid := time.Duration(common.Midpoint() * float64(time.Second))
	half := time.Duration(common.HalfWidth() * float64(time.Second))
	return base.Add(mid), half, true
}
