package disttime_test

// The benchmark harness: one benchmark per figure, theorem, and in-text
// experimental claim of the paper (the E1..E15 index in DESIGN.md). Each
// benchmark regenerates the corresponding experiment's table — run with
//
//	go test -bench=. -benchmem
//
// and compare with the recorded results in EXPERIMENTS.md. A benchmark
// fails if its experiment's paper-shape assertion does not hold, so the
// suite doubles as the reproduction gate. The final section adds
// micro-benchmarks on the hot paths (intersection sweep, event loop, the
// full service protocol).

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"disttime"
	"disttime/internal/experiments"
	"disttime/internal/hlc"
	"disttime/internal/sim"
	"disttime/internal/sim/shard"
	"disttime/internal/udptime"
	"disttime/internal/wire"
)

func runExperiment(b *testing.B, fn func() (experiments.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := fn()
		if err != nil {
			b.Fatalf("experiment failed: %v\n%s", err, tbl)
		}
	}
}

// BenchmarkFigure1ErrorGrowth regenerates E1 (Figure 1): growth of maximum
// errors.
func BenchmarkFigure1ErrorGrowth(b *testing.B) { runExperiment(b, experiments.Figure1) }

// BenchmarkFigure2Intersection regenerates E2 (Figure 2 / Theorem 6).
func BenchmarkFigure2Intersection(b *testing.B) { runExperiment(b, experiments.Figure2) }

// BenchmarkTheorem1Correctness regenerates E3 (Theorems 1 and 5).
func BenchmarkTheorem1Correctness(b *testing.B) { runExperiment(b, experiments.Correctness) }

// BenchmarkTheorem2ErrorBound regenerates E4 (Theorem 2).
func BenchmarkTheorem2ErrorBound(b *testing.B) { runExperiment(b, experiments.Theorem2) }

// BenchmarkTheorem3Asynchronism regenerates E5 (Theorem 3).
func BenchmarkTheorem3Asynchronism(b *testing.B) { runExperiment(b, experiments.Theorem3) }

// BenchmarkTheorem4Convergence regenerates E6 (Theorem 4).
func BenchmarkTheorem4Convergence(b *testing.B) { runExperiment(b, experiments.Theorem4) }

// BenchmarkTheorem7IMAsynchronism regenerates E7 (Theorem 7).
func BenchmarkTheorem7IMAsynchronism(b *testing.B) { runExperiment(b, experiments.Theorem7) }

// BenchmarkTheorem8ExpectedError regenerates E8 (Theorem 8).
func BenchmarkTheorem8ExpectedError(b *testing.B) { runExperiment(b, experiments.Theorem8) }

// BenchmarkRecoveryFaultyDrift regenerates E9 (the Section 3 experiment).
func BenchmarkRecoveryFaultyDrift(b *testing.B) { runExperiment(b, experiments.Recovery) }

// BenchmarkIMvsMMErrorGrowth regenerates E10 (the Section 4 "ten times
// slower" experiment).
func BenchmarkIMvsMMErrorGrowth(b *testing.B) { runExperiment(b, experiments.IMvsMM) }

// BenchmarkFigure3IMFailure regenerates E11 (Figure 3).
func BenchmarkFigure3IMFailure(b *testing.B) { runExperiment(b, experiments.Figure3) }

// BenchmarkFigure4ConsistencyGroups regenerates E12 (Figure 4).
func BenchmarkFigure4ConsistencyGroups(b *testing.B) { runExperiment(b, experiments.Figure4) }

// BenchmarkConsonanceRates regenerates E13 (Section 5).
func BenchmarkConsonanceRates(b *testing.B) { runExperiment(b, experiments.Consonance) }

// BenchmarkBaselineComparison regenerates E14 (Section 1.2 baselines).
func BenchmarkBaselineComparison(b *testing.B) { runExperiment(b, experiments.Baselines) }

// BenchmarkFaultTolerantIntersection regenerates E15 (the [Marzullo 83]
// extension).
func BenchmarkFaultTolerantIntersection(b *testing.B) {
	runExperiment(b, experiments.FaultTolerantIntersection)
}

// --- Micro-benchmarks on the hot paths ---

// BenchmarkMarzulloSweep measures the fault-tolerant intersection sweep on
// 100 intervals (the per-selection cost in an NTP-like client). The warm-up
// call before the timer primes the sweeper pool, so the measured window is
// steady-state: 0 allocs/op.
func BenchmarkMarzulloSweep(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	ivs := make([]disttime.Interval, 100)
	for i := range ivs {
		ivs[i] = disttime.FromEstimate(rng.Float64()*10, 0.5+rng.Float64())
	}
	disttime.Marzullo(ivs) // warm the sweeper pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disttime.Marzullo(ivs)
	}
}

// BenchmarkMarzulloSweep1000 is the adversarial scale point: 1000
// overlapping intervals, the regime of the A5 scale ablation grown toward
// the paper's hundreds-of-servers deployment. Still 0 allocs/op.
func BenchmarkMarzulloSweep1000(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 6))
	ivs := make([]disttime.Interval, 1000)
	for i := range ivs {
		ivs[i] = disttime.FromEstimate(rng.Float64()*10, 0.5+rng.Float64())
	}
	disttime.Marzullo(ivs) // warm the sweeper pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disttime.Marzullo(ivs)
	}
}

// BenchmarkConsistencyGroups measures Figure 4 decomposition on 100
// intervals.
func BenchmarkConsistencyGroups(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	ivs := make([]disttime.Interval, 100)
	for i := range ivs {
		ivs[i] = disttime.FromEstimate(rng.Float64()*100, 0.5+rng.Float64())
	}
	disttime.ConsistencyGroups(ivs) // warm the sweeper pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disttime.ConsistencyGroups(ivs)
	}
}

// BenchmarkConsistencyGroupsDense is the worst case for the sweep's active
// set: 256 mutually overlapping intervals (one giant clique), which made
// the former map-based active set churn hardest. Only the returned group
// is allocated.
func BenchmarkConsistencyGroupsDense(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 8))
	ivs := make([]disttime.Interval, 256)
	for i := range ivs {
		// All intervals contain [0.9, 1.0]: a single dense clique.
		ivs[i] = disttime.FromEstimate(rng.Float64()*0.4+0.8, 1+rng.Float64())
	}
	disttime.ConsistencyGroups(ivs) // warm the sweeper pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disttime.ConsistencyGroups(ivs)
	}
}

// BenchmarkServiceHour measures the full protocol cost of one simulated
// hour for an eight-server full mesh under IM (requests, replies, RTT
// measurement, rule IM-2, sampling).
func BenchmarkServiceHour(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		specs := make([]disttime.ServerSpec, 8)
		for j := range specs {
			drift := float64(j-4) * 1e-5
			specs[j] = disttime.ServerSpec{
				Delta:        math.Abs(drift)*1.2 + 1e-6,
				Drift:        drift,
				InitialError: 0.05,
				SyncEvery:    60,
			}
		}
		sim, err := disttime.NewSimulation(disttime.SimulationConfig{
			Seed:    uint64(i),
			Delay:   disttime.UniformDelay{Max: 0.01},
			Fn:      disttime.IM{},
			Servers: specs,
		})
		if err != nil {
			b.Fatal(err)
		}
		sim.Run(3600)
		if s := sim.Snapshot(); !s.AllCorrect {
			b.Fatal("correctness lost")
		}
	}
}

// BenchmarkRuleMM2 measures a single rule-MM-2 pass over eight replies in
// steady state: the server is built once and repeatedly resynchronized, so
// the pass itself is what's measured (0 allocs/op).
func BenchmarkRuleMM2(b *testing.B) {
	replies := make([]disttime.Reply, 8)
	for i := range replies {
		replies[i] = disttime.Reply{From: i + 1, C: 1000.001, E: 0.5, RTT: 0.01}
	}
	s, err := disttime.NewServer(1000, disttime.ServerConfig{
		Clock:        disttime.NewDriftingClock(1000, 1000, 0),
		Delta:        1e-5,
		InitialError: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disttime.MM{}.Sync(s, 1000, replies)
	}
}

// BenchmarkRuleIM2 measures a single rule-IM-2 pass over eight replies in
// steady state (0 allocs/op).
func BenchmarkRuleIM2(b *testing.B) {
	replies := make([]disttime.Reply, 8)
	for i := range replies {
		replies[i] = disttime.Reply{From: i + 1, C: 1000.001, E: 0.5, RTT: 0.01}
	}
	s, err := disttime.NewServer(1000, disttime.ServerConfig{
		Clock:        disttime.NewDriftingClock(1000, 1000, 0),
		Delta:        1e-5,
		InitialError: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disttime.IM{}.Sync(s, 1000, replies)
	}
}

// churnState drives BenchmarkSimEventChurn's self-rescheduling event chain
// through the closure-free AfterCall path.
type churnState struct {
	s *sim.Simulator
	n int
}

func churnTick(x any) {
	c := x.(*churnState)
	c.n++
	if c.n < 1000 {
		c.s.AfterCall(1, churnTick, c)
	}
}

// BenchmarkSimEventChurn measures the raw event kernel: a self-rescheduling
// chain of 1000 events per op, with Sim.Reset reusing one simulator across
// iterations. Steady state is allocation-free: pooled events, no heap
// interface boxing, no scheduling closures.
func BenchmarkSimEventChurn(b *testing.B) {
	c := &churnState{s: sim.New(1)}
	churn := func() {
		c.n = 0
		c.s.AfterCall(1, churnTick, c)
		c.s.Run()
	}
	churn() // warm the event pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.s.Reset(uint64(i))
		churn()
	}
}

// shardChurn is a self-rescheduling Handler for BenchmarkShardWindow:
// every event re-arms itself one virtual second later, so the kernel's
// heap stays at a constant size while windows, pushes, and pops churn.
type shardChurn struct{}

func (shardChurn) Event(p *shard.Proc, ev shard.Ev) {
	p.After(ev.Node, 1, ev.Kind, ev.Tag, ev.A, ev.B)
}

// BenchmarkShardWindow measures the sharded kernel's window loop: 64
// nodes firing one self-rescheduling timer per virtual second, 1000
// virtual seconds per op. Steady state is allocation-free — value events
// on a preallocated heap, no closures, no boxing (the //lint:noalloc
// annotations on push/pop/runWindow are audited against this benchmark).
func BenchmarkShardWindow(b *testing.B) {
	k, err := shard.New(shard.Config{Nodes: 64, Seed: 9, Handler: shardChurn{}})
	if err != nil {
		b.Fatal(err)
	}
	defer k.Close()
	for n := int32(0); n < 64; n++ {
		k.Seed(n, 0.5, 1, 0, 0, 0)
	}
	k.Run(1000) // warm the heap to its steady size
	until := 1000.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		until += 1000
		k.Run(until)
	}
}

// BenchmarkWireRoundTrip measures one request/response encode+decode
// round trip on the UDP wire path against reused buffers — the per-query
// serialization cost of the real service. 0 allocs/op; the wire codec's
// //lint:noalloc annotations are audited against this benchmark.
func BenchmarkWireRoundTrip(b *testing.B) {
	reqBuf := make([]byte, 0, wire.RequestSize)
	respBuf := make([]byte, 0, wire.ResponseSize)
	resp := wire.Response{
		ReqID:    7,
		ServerID: 3,
		Clock:    time.Unix(0, 1_700_000_000_000_000_000),
		MaxError: 250 * time.Microsecond,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqBuf = wire.AppendRequest(reqBuf[:0], wire.Request{ReqID: uint64(i)})
		req, err := wire.ParseRequest(reqBuf)
		if err != nil {
			b.Fatal(err)
		}
		resp.ReqID = req.ReqID
		respBuf, err = wire.AppendResponse(respBuf[:0], resp)
		if err != nil {
			b.Fatal(err)
		}
		if _, err = wire.ParseResponse(respBuf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHLCClock measures one Now plus one Update on a hybrid
// logical clock — the per-event stamping cost on the message paths of
// both substrates. 0 allocs/op; the hlc clock's //lint:noalloc
// annotations are audited against this benchmark.
func BenchmarkHLCClock(b *testing.B) {
	local := hlc.New(1)
	remote := hlc.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wall := int64(1_700_000_000_000_000_000 + i)
		ts := remote.Now(wall)
		local.Update(wall, ts)
	}
}

// BenchmarkHLCCodec measures one timestamp encode+decode round trip
// against a reused buffer — the piggyback cost per wire message.
// 0 allocs/op; the hlc codec's //lint:noalloc annotations are audited
// against this benchmark.
func BenchmarkHLCCodec(b *testing.B) {
	var buf [hlc.TimestampSize]byte
	ts := hlc.Timestamp{Wall: 1_700_000_000_000_000_000, Logical: 3, Node: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Wall++
		hlc.PutTimestamp(buf[:], ts)
		got, err := hlc.ParseTimestamp(buf[:])
		if err != nil {
			b.Fatal(err)
		}
		if got != ts {
			b.Fatal("round trip changed the timestamp")
		}
	}
}

// BenchmarkWireRoundTripHLC measures one version-3 request/response
// encode+decode round trip — the per-query serialization cost with the
// HLC piggyback. 0 allocs/op; the v3 codec's //lint:noalloc
// annotations are audited against this benchmark.
func BenchmarkWireRoundTripHLC(b *testing.B) {
	reqBuf := make([]byte, 0, wire.RequestHLCSize)
	respBuf := make([]byte, 0, wire.ResponseHLCSize)
	resp := wire.ResponseHLC{
		Response: wire.Response{
			ReqID:    7,
			ServerID: 3,
			Clock:    time.Unix(0, 1_700_000_000_000_000_000),
			MaxError: 250 * time.Microsecond,
		},
		TS: hlc.Timestamp{Wall: 1_700_000_000_000_000_000, Logical: 1, Node: 3},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqBuf = wire.AppendRequestHLC(reqBuf[:0], wire.RequestHLC{
			ReqID: uint64(i),
			TS:    hlc.Timestamp{Wall: int64(i), Node: 1},
		})
		req, err := wire.ParseRequestHLC(reqBuf)
		if err != nil {
			b.Fatal(err)
		}
		resp.ReqID = req.ReqID
		respBuf, err = wire.AppendResponseHLC(respBuf[:0], resp)
		if err != nil {
			b.Fatal(err)
		}
		if _, err = wire.ParseResponseHLC(respBuf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation studies (DESIGN.md A1..A5) ---

// BenchmarkAblationSelfInterval regenerates A1.
func BenchmarkAblationSelfInterval(b *testing.B) { runExperiment(b, experiments.AblationSelfInterval) }

// BenchmarkAblationInconsistentPolicy regenerates A2.
func BenchmarkAblationInconsistentPolicy(b *testing.B) {
	runExperiment(b, experiments.AblationInconsistentPolicy)
}

// BenchmarkAblationTau regenerates A3.
func BenchmarkAblationTau(b *testing.B) { runExperiment(b, experiments.AblationTau) }

// BenchmarkAblationLoss regenerates A4.
func BenchmarkAblationLoss(b *testing.B) { runExperiment(b, experiments.AblationLoss) }

// BenchmarkAblationScale regenerates A5.
func BenchmarkAblationScale(b *testing.B) { runExperiment(b, experiments.AblationScale) }

// BenchmarkAblationSlew regenerates A6.
func BenchmarkAblationSlew(b *testing.B) { runExperiment(b, experiments.AblationSlew) }

// BenchmarkRecoveryBreakdown regenerates E16 (the Section 3 breakdown
// caveat).
func BenchmarkRecoveryBreakdown(b *testing.B) { runExperiment(b, experiments.RecoveryBreakdown) }

// BenchmarkAblationErrorFloor regenerates A7.
func BenchmarkAblationErrorFloor(b *testing.B) { runExperiment(b, experiments.AblationErrorFloor) }

// BenchmarkAblationRateFilter regenerates A8 (the Section 5 defense).
func BenchmarkAblationRateFilter(b *testing.B) { runExperiment(b, experiments.AblationRateFilter) }

// BenchmarkAblationAdaptiveDelta regenerates A9 (delta maintenance).
func BenchmarkAblationAdaptiveDelta(b *testing.B) {
	runExperiment(b, experiments.AblationAdaptiveDelta)
}

// BenchmarkServeBatch measures the batched serving transform — parse a
// full batch of requests, read the per-tick cached clock, encode every
// reply into retained buffers — with no sockets in the way. It must
// report 0 allocs/op: the //lint:noalloc annotations on the batch
// serving path (responder.respond, TickCache.Now, Server.respondOne)
// are audited against this benchmark.
func BenchmarkServeBatch(b *testing.B) {
	const batch = 64
	pump := udptime.NewServeBatchBench(batch)
	if got := pump(); got != batch {
		b.Fatalf("pump answered %d of %d requests", got, batch)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pump() != batch {
			b.Fatal("batch not fully answered")
		}
	}
}
