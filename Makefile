# disttime — reproduction of Marzullo & Owicki, "Maintaining the Time in
# a Distributed System" (1983). Standard library only; Go 1.23+.

GO ?= go

# Canonical race list: every package that hosts pooled state, the
# parallel experiment runner, or real concurrency. Referenced by BOTH
# `make test` and `make test-race` so no package is raced in one target
# but omitted from the other.
RACE_PKGS = ./internal/par ./internal/sim ./internal/experiments \
            ./internal/service ./internal/simnet ./internal/interval \
            ./internal/udptime ./cmd/...

.PHONY: all build vet lint test check test-race cover bench experiments ablations examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static-analysis gate: the five repo-specific invariant checks
# (nowcheck, globalrand, floateq, mapiter, poolput) built on the standard
# library only. See DESIGN.md §10 for the invariant each one guards.
lint:
	$(GO) run ./cmd/disttimelint ./...

# Tier-1 gate: vet, the full suite, and a race pass over RACE_PKGS.
test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race $(RACE_PKGS)

# check = vet + lint + test + race: the tier-1 tests and the lint gate
# travel together (race rides inside `test` via RACE_PKGS).
check: vet lint test

test-race:
	$(GO) test -race $(RACE_PKGS)

cover:
	$(GO) test -cover ./...

# One benchmark per paper figure/claim plus the ablations; doubles as the
# reproduction gate (a benchmark fails if its paper-shape stops holding).
# The run is recorded to BENCH_BASELINE.json (name -> ns/op, B/op,
# allocs/op) so every PR leaves a perf trajectory behind. BENCHTIME=1x
# keeps the recording fast; the hot-path benchmarks warm their pools
# before the measured window so allocs/op is steady-state even at 1x.
BENCHTIME ?= 1x
BENCH ?= .
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime=$(BENCHTIME) . | tee bench.out
	$(GO) run ./cmd/benchjson < bench.out > BENCH_BASELINE.json
	@rm -f bench.out
	@echo "wrote BENCH_BASELINE.json"

# Regenerate the EXPERIMENTS.md data.
experiments:
	$(GO) run ./cmd/timesim -all

ablations:
	$(GO) run ./cmd/timesim -ablations

examples:
	@for d in examples/*/; do echo "=== $$d ==="; $(GO) run ./$$d || exit 1; done

clean:
	$(GO) clean ./...
