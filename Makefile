# disttime — reproduction of Marzullo & Owicki, "Maintaining the Time in
# a Distributed System" (1983). Standard library only; Go 1.23+.

GO ?= go

.PHONY: all build vet test check test-race cover bench experiments ablations examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1 gate: vet, the full suite, and a race pass over the packages that
# host the parallel experiment runner and the pooled event kernel.
test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/par ./internal/sim ./internal/experiments

check: test

test-race:
	$(GO) test -race ./internal/udptime/ ./cmd/...

cover:
	$(GO) test -cover ./...

# One benchmark per paper figure/claim plus the ablations; doubles as the
# reproduction gate (a benchmark fails if its paper-shape stops holding).
# The run is recorded to BENCH_BASELINE.json (name -> ns/op, B/op,
# allocs/op) so every PR leaves a perf trajectory behind. BENCHTIME=1x
# keeps the recording fast; the hot-path benchmarks warm their pools
# before the measured window so allocs/op is steady-state even at 1x.
BENCHTIME ?= 1x
BENCH ?= .
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime=$(BENCHTIME) . | tee bench.out
	$(GO) run ./cmd/benchjson < bench.out > BENCH_BASELINE.json
	@rm -f bench.out
	@echo "wrote BENCH_BASELINE.json"

# Regenerate the EXPERIMENTS.md data.
experiments:
	$(GO) run ./cmd/timesim -all

ablations:
	$(GO) run ./cmd/timesim -ablations

examples:
	@for d in examples/*/; do echo "=== $$d ==="; $(GO) run ./$$d || exit 1; done

clean:
	$(GO) clean ./...
