# disttime — reproduction of Marzullo & Owicki, "Maintaining the Time in
# a Distributed System" (1983). Standard library only; Go 1.23+.

GO ?= go

# Canonical race list: every package that hosts pooled state, the
# parallel experiment runner, or real concurrency. Referenced by BOTH
# `make test` and `make test-race` so no package is raced in one target
# but omitted from the other.
RACE_PKGS = ./internal/par ./internal/sim/... ./internal/experiments \
            ./internal/service ./internal/simnet ./internal/interval \
            ./internal/chaos ./internal/udptime ./internal/obs \
            ./internal/member ./internal/scale ./internal/hlc \
            ./internal/txn ./cmd/...

# Packages whose line coverage is floored by `make cover-check` (and so by
# `make check`): the theorem algebra, the interval sweep, and the
# membership state machine are the proof core, so untested lines there
# are untested math. The sharded kernel and its worker pool join the
# list because every untested line there is a potential determinism or
# race hole, and the lint package joins because an untested analyzer
# rule is an invariant the tree only appears to satisfy.
COVER_FLOOR_PKGS = ./internal/core ./internal/interval ./internal/member \
                   ./internal/par ./internal/sim/shard ./internal/scale \
                   ./internal/lint ./internal/hlc ./internal/txn
COVER_FLOOR     ?= 85

.PHONY: all build vet lint noalloc-audit test check test-race cover cover-check chaos chaos-replay byz-smoke obs-smoke churn-smoke txn-smoke scale-smoke udp-smoke fuzz-smoke bench bench-scale bench-udp experiments ablations examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static-analysis gate: the nine repo-specific invariant checks
# (nowcheck, globalrand, floateq, mapiter, poolput, guardedby, atomicmix,
# noalloc, barrier) built on the standard library only. See DESIGN.md §10
# and §15 for the invariant each one guards. The tree must be clean of
# unsuppressed diagnostics, and every suppression carries a written
# justification (the framework rejects reasons under three words).
lint:
	$(GO) run ./cmd/disttimelint ./...

# Cross-check every //lint:noalloc annotation that cites benchmarks
# against the recorded baseline: a cited benchmark must exist in
# BENCH_BASELINE.json with allocs/op == 0, so the static proof (no
# allocation constructs) and the measured evidence cannot silently
# drift apart. Regenerate the baseline with `make bench`.
noalloc-audit:
	$(GO) run ./cmd/disttimelint -noalloc-audit BENCH_BASELINE.json ./...

# Tier-1 gate: vet, the full suite, and a race pass over RACE_PKGS.
test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race $(RACE_PKGS)

# check = vet + lint + noalloc audit + test + race + coverage floor +
# smokes: the tier-1 tests, the lint gate, the annotation-vs-baseline
# allocation audit, the proof-core coverage floor, the
# observability/membership determinism smokes, the committed chaos
# corpus replays, and the sharded-kernel scale smoke travel together
# (race rides inside `test` via RACE_PKGS).
check: vet lint noalloc-audit test cover-check obs-smoke churn-smoke txn-smoke chaos-replay byz-smoke scale-smoke udp-smoke

test-race:
	$(GO) test -race $(RACE_PKGS)

cover:
	$(GO) test -cover ./...

# Coverage floor over COVER_FLOOR_PKGS: fail if any of them dips below
# COVER_FLOOR percent line coverage.
cover-check:
	@for pkg in $(COVER_FLOOR_PKGS); do \
		line=$$($(GO) test -cover $$pkg | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*'); \
		if [ -z "$$line" ]; then echo "cover-check: no coverage for $$pkg"; exit 1; fi; \
		ok=$$(awk -v c="$$line" -v f="$(COVER_FLOOR)" 'BEGIN { print (c >= f) ? 1 : 0 }'); \
		if [ "$$ok" != 1 ]; then \
			echo "cover-check: $$pkg coverage $$line% below floor $(COVER_FLOOR)%"; exit 1; \
		fi; \
		echo "cover-check: $$pkg $$line% (floor $(COVER_FLOOR)%)"; \
	done

# Chaos conformance: 60 seeded fault campaigns under the always-on
# theorem-invariant monitor (deterministic: identical output every run).
# Failures are shrunk to one-line reproducers; commit the interesting
# ones under internal/chaos/corpus/. See DESIGN.md §11.
chaos:
	$(GO) run ./cmd/timesim -chaos -campaigns 60 -chaos-seed 1

# Replay every committed chaos reproducer: the corpus under
# internal/chaos/corpus/ is the repo's regression suite of interesting
# fault campaigns, so `make check` re-runs each line verbatim.
chaos-replay:
	@for repro in internal/chaos/corpus/*.repro; do \
		echo "chaos-replay: $$repro"; \
		$(GO) run ./cmd/timesim -chaos -replay $$repro || exit 1; \
	done

# Byzantine-tier smoke: a seeded batch of adversarial hill-climb
# searches (DESIGN.md §17) run twice and diffed byte-for-byte — the
# search, like every chaos mode, is a pure function of its seeds — then
# a replay of the committed two-faced reproducer, which must pass under
# the real byzIM rules (it fails only under the planted BuggyIM).
byz-smoke:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/timesim -chaos -adversarial -campaigns 10 -adv-steps 15 -chaos-seed 1 > $$tmp/b1.txt && \
	$(GO) run ./cmd/timesim -chaos -adversarial -campaigns 10 -adv-steps 15 -chaos-seed 1 > $$tmp/b2.txt && \
	cmp $$tmp/b1.txt $$tmp/b2.txt && \
	$(GO) run ./cmd/timesim -chaos -replay internal/chaos/corpus/buggy-byz-twoface.repro && \
	rm -rf $$tmp && echo "byz-smoke: adversarial searches byte-identical, two-faced reproducer ok"

# Sharded-kernel scale smoke: the S1 sweep at its CI-sized topology (the
# full 10k/50k/100k sweep is `timesim -scale` / `make bench-scale`).
scale-smoke:
	$(GO) run ./cmd/timesim -experiment S1

# UDP serving-path smoke: the closed-loop load generator against a live
# batched sharded server on the loopback — zero load errors, JSON shape
# pinned, histogram counts advancing (see cmd/timeload's TestUDPSmoke).
udp-smoke:
	$(GO) test ./cmd/timeload -run TestUDPSmoke

# Observability smoke: the obs package under -race, then two seeded
# `timesim -metrics -trace-out` runs diffed byte-for-byte — the
# determinism contract of DESIGN.md §12 (sorted snapshot keys, shortest
# round-trip floats, passive observation).
obs-smoke:
	$(GO) test -race ./internal/obs
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/timesim -metrics $$tmp/m1.json -trace-out $$tmp/t1.jsonl > /dev/null && \
	$(GO) run ./cmd/timesim -metrics $$tmp/m2.json -trace-out $$tmp/t2.jsonl > /dev/null && \
	cmp $$tmp/m1.json $$tmp/m2.json && cmp $$tmp/t1.jsonl $$tmp/t2.jsonl && \
	rm -rf $$tmp && echo "obs-smoke: seeded snapshots and span logs byte-identical"

# Membership smoke: two seeded `timesim -churn` runs diffed
# byte-for-byte — the dynamic-membership timeline (joins, voluntary
# departures, rejoins, detector verdicts) is a pure function of the seed.
churn-smoke:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/timesim -churn 2 -churn-seed 7 > $$tmp/c1.txt && \
	$(GO) run ./cmd/timesim -churn 2 -churn-seed 7 > $$tmp/c2.txt && \
	cmp $$tmp/c1.txt $$tmp/c2.txt && \
	rm -rf $$tmp && echo "churn-smoke: seeded membership timelines byte-identical"

# Transaction smoke: two seeded `timesim -txn` runs diffed
# byte-for-byte — the commit-wait timeline (HLC stamps, wait lengths,
# the external-consistency verdict) is a pure function of the seed.
txn-smoke:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/timesim -txn -txn-seed 7 > $$tmp/t1.txt && \
	$(GO) run ./cmd/timesim -txn -txn-seed 7 > $$tmp/t2.txt && \
	cmp $$tmp/t1.txt $$tmp/t2.txt && \
	rm -rf $$tmp && echo "txn-smoke: seeded commit timelines byte-identical"

# Short coverage-guided fuzz pass over the M-of-N interval sweep (vs the
# naive oracle). CI-sized; run with a larger -fuzztime when hunting.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/interval -run '^$$' -fuzz FuzzIntersectMofN -fuzztime $(FUZZTIME)

# One benchmark per paper figure/claim plus the ablations; doubles as the
# reproduction gate (a benchmark fails if its paper-shape stops holding).
# The run is recorded to BENCH_BASELINE.json (name -> ns/op, B/op,
# allocs/op) so every PR leaves a perf trajectory behind. BENCHTIME=1x
# keeps the recording fast; the hot-path benchmarks warm their pools
# before the measured window so allocs/op is steady-state even at 1x.
BENCHTIME ?= 1x
BENCH ?= .
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime=$(BENCHTIME) . | tee bench.out
	$(GO) run ./cmd/benchjson < bench.out > BENCH_BASELINE.json
	@rm -f bench.out
	@echo "wrote BENCH_BASELINE.json"

# The planet-scale sweep benchmarks (10k/50k/100k servers on the sharded
# kernel), recorded separately so the scale trajectory travels next to
# the per-figure baseline. The 100k size must stay in single-digit
# seconds per iteration.
bench-scale:
	$(GO) test -run '^$$' -bench 'BenchmarkScaleSweep' -benchmem -benchtime=$(BENCHTIME) . | tee bench-scale.out
	$(GO) run ./cmd/benchjson < bench-scale.out > BENCH_SCALE.json
	@rm -f bench-scale.out
	@echo "wrote BENCH_SCALE.json"

# The UDP serving-path benchmarks: the per-packet baseline (serial
# Client.Query against the classic Server), the windowed legacy path,
# and the batched sharded path, each pushing the same fixed request
# quantum per iteration so the ns/op ratios are throughput ratios. The
# batched path must land at no more than one fifth of the per-packet
# baseline's ns/op (>= 5x throughput).
bench-udp:
	$(GO) test -run '^$$' -bench 'BenchmarkUDPServe' -benchmem -benchtime=$(BENCHTIME) . | tee bench-udp.out
	$(GO) run ./cmd/benchjson < bench-udp.out > BENCH_UDP.json
	@rm -f bench-udp.out
	@echo "wrote BENCH_UDP.json"

# Regenerate the EXPERIMENTS.md data.
experiments:
	$(GO) run ./cmd/timesim -all

ablations:
	$(GO) run ./cmd/timesim -ablations

examples:
	@for d in examples/*/; do echo "=== $$d ==="; $(GO) run ./$$d || exit 1; done

clean:
	$(GO) clean ./...
