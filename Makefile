# disttime — reproduction of Marzullo & Owicki, "Maintaining the Time in
# a Distributed System" (1983). Standard library only; Go 1.23+.

GO ?= go

.PHONY: all build vet test test-race cover bench experiments ablations examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./internal/udptime/ ./cmd/...

cover:
	$(GO) test -cover ./...

# One benchmark per paper figure/claim plus the ablations; doubles as the
# reproduction gate (a benchmark fails if its paper-shape stops holding).
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate the EXPERIMENTS.md data.
experiments:
	$(GO) run ./cmd/timesim -all

ablations:
	$(GO) run ./cmd/timesim -ablations

examples:
	@for d in examples/*/; do echo "=== $$d ==="; $(GO) run ./$$d || exit 1; done

clean:
	$(GO) clean ./...
