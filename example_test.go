package disttime_test

import (
	"fmt"
	"math"

	"disttime"
)

// The intersection of consistent server answers is tighter than any
// single answer (Theorem 6) and still contains the correct time.
func ExampleIntersectAll() {
	answers := []disttime.Interval{
		disttime.FromEstimate(10.000, 0.005),
		disttime.FromEstimate(10.003, 0.004),
		disttime.FromEstimate(9.998, 0.006),
	}
	common, ok := disttime.IntersectAll(answers)
	fmt.Printf("ok=%v C=%.4f E=%.4f\n", ok, common.Midpoint(), common.HalfWidth())
	// Output: ok=true C=10.0015 E=0.0025
}

// Marzullo's algorithm finds the interval the largest number of sources
// agree on, outvoting falsetickers.
func ExampleMarzullo() {
	answers := []disttime.Interval{
		disttime.FromEstimate(10.000, 0.005),
		disttime.FromEstimate(10.003, 0.004),
		disttime.FromEstimate(99.0, 0.001), // falseticker
	}
	best := disttime.Marzullo(answers)
	fmt.Printf("%d of %d agree on [%.4f, %.4f]\n",
		best.Count, len(answers), best.Interval.Lo, best.Interval.Hi)
	// Output: 2 of 3 agree on [9.9990, 10.0050]
}

// An inconsistent service decomposes into maximal consistency groups
// (the paper's Figure 4); consistency is not transitive, so groups may
// share members.
func ExampleConsistencyGroups() {
	ivs := []disttime.Interval{
		{Lo: 0, Hi: 3},   // S1
		{Lo: 2.5, Hi: 6}, // S2: consistent with S1 and with S3
		{Lo: 5, Hi: 9},   // S3
	}
	for _, g := range disttime.ConsistencyGroups(ivs) {
		fmt.Printf("members=%v intersection=[%.1f, %.1f]\n",
			g.Members, g.Intersection.Lo, g.Intersection.Hi)
	}
	// Output:
	// members=[0 1] intersection=[2.5, 3.0]
	// members=[1 2] intersection=[5.0, 6.0]
}

// A time server answers with the pair <C, E> of rule MM-1 and
// synchronizes with rule IM-2: intersect the reply intervals and adopt
// the midpoint.
func ExampleServer() {
	server, err := disttime.NewServer(0, disttime.ServerConfig{
		Clock:        disttime.NewDriftingClock(0, 100, 0), // reads 100 at t=0
		Delta:        1e-5,                                 // claimed drift bound
		InitialError: 5,
	})
	if err != nil {
		panic(err)
	}
	replies := []disttime.Reply{
		{From: 1, C: 103, E: 4}, // interval [99, 107]
		{From: 2, C: 98, E: 2},  // interval [96, 100]
	}
	res := disttime.IM{}.Sync(server, 0, replies)
	r := server.Reading(0)
	fmt.Printf("reset=%v C=%.1f E=%.1f\n", res.Reset, r.C, r.E)
	// Output: reset=true C=99.5 E=0.5
}

// A whole simulated time service: five drifting clocks in a full mesh
// synchronizing with algorithm IM every ten seconds, all provably correct
// throughout.
func ExampleNewSimulation() {
	specs := make([]disttime.ServerSpec, 5)
	for i := range specs {
		drift := float64(i-2) * 2e-5
		specs[i] = disttime.ServerSpec{
			Delta:        math.Abs(drift)*1.2 + 1e-6,
			Drift:        drift,
			InitialError: 0.05,
			SyncEvery:    10,
		}
	}
	sim, err := disttime.NewSimulation(disttime.SimulationConfig{
		Seed:    1,
		Delay:   disttime.UniformDelay{Max: 0.01},
		Fn:      disttime.IM{},
		Servers: specs,
	})
	if err != nil {
		panic(err)
	}
	sim.Run(600)
	s := sim.Snapshot()
	fmt.Printf("after %.0fs: all correct=%v, consistent=%v\n", s.T, s.AllCorrect, s.Consistent)
	// Output: after 600s: all correct=true, consistent=true
}

// Selection classifies sources into survivors and falsetickers before
// combining.
func ExampleSelect() {
	sel, err := disttime.Select([]disttime.SelectionReading{
		{ID: "good-1", Interval: disttime.FromEstimate(5.0, 1)},
		{ID: "good-2", Interval: disttime.FromEstimate(5.4, 1)},
		{ID: "liar", Interval: disttime.FromEstimate(50, 1)},
	}, disttime.SelectOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("survivors=%v falsetickers=%v tolerated=%d\n",
		sel.Survivors, sel.Falsetickers, sel.ToleratedFaults)
	// Output: survivors=[0 1] falsetickers=[2] tolerated=1
}

// The monotonic wrapper implements the Section 1.1 technique: after a
// backward set it runs at half speed until the underlying clock catches
// up, so readings never decrease.
func ExampleMonotonicClock() {
	server := disttime.NewDriftingClock(0, 0, 0)
	mono := disttime.NewMonotonicClock(server, 0.5)
	fmt.Printf("t=100: %.0f\n", mono.Read(100))
	server.Set(100, 90) // the time service corrects the clock backward
	fmt.Printf("t=100 after set-back: %.0f\n", mono.Read(100))
	fmt.Printf("t=110 (half speed):   %.0f\n", mono.Read(110))
	fmt.Printf("t=120 (caught up):    %.0f\n", mono.Read(120))
	// Output:
	// t=100: 100
	// t=100 after set-back: 100
	// t=110 (half speed):   105
	// t=120 (caught up):    110
}

// IntersectReadings works directly on absolute time.Time readings.
func ExampleIntersectReadings() {
	// See TestIntersectReadings for the time.Time form; the seconds-based
	// equivalent:
	a := disttime.FromEstimate(0, 0.100)    // now +/- 100ms
	b := disttime.FromEstimate(0.05, 0.100) // 50ms ahead +/- 100ms
	common, ok := a.Intersect(b)
	fmt.Printf("ok=%v midpoint=%.3f halfwidth=%.3f\n", ok, common.Midpoint(), common.HalfWidth())
	// Output: ok=true midpoint=0.025 halfwidth=0.075
}
