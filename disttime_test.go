package disttime_test

import (
	"math"
	"testing"
	"time"

	"disttime"
)

func TestMarzulloFacade(t *testing.T) {
	best := disttime.Marzullo([]disttime.Interval{
		disttime.FromEstimate(10.000, 0.005),
		disttime.FromEstimate(10.003, 0.004),
		disttime.FromEstimate(99.0, 0.001),
	})
	if best.Count != 2 {
		t.Fatalf("Count = %d, want 2", best.Count)
	}
	if !best.Interval.Contains(10.001) {
		t.Errorf("best interval %v excludes the overlap", best.Interval)
	}
}

func TestIntersectReadings(t *testing.T) {
	base := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	readings := []disttime.TimeReading{
		{C: base, E: 100 * time.Millisecond},
		{C: base.Add(50 * time.Millisecond), E: 100 * time.Millisecond},
	}
	c, e, ok := disttime.IntersectReadings(readings)
	if !ok {
		t.Fatal("consistent readings reported inconsistent")
	}
	// Common interval: [base-50ms, base+100ms] -> midpoint base+25ms,
	// half-width 75ms.
	if got := c.Sub(base); got != 25*time.Millisecond {
		t.Errorf("midpoint offset = %v, want 25ms", got)
	}
	if e != 75*time.Millisecond {
		t.Errorf("error = %v, want 75ms", e)
	}
}

func TestIntersectReadingsInconsistent(t *testing.T) {
	base := time.Now()
	readings := []disttime.TimeReading{
		{C: base, E: time.Millisecond},
		{C: base.Add(time.Hour), E: time.Millisecond},
	}
	if _, _, ok := disttime.IntersectReadings(readings); ok {
		t.Error("inconsistent readings reported consistent")
	}
}

func TestIntersectReadingsEmpty(t *testing.T) {
	if _, _, ok := disttime.IntersectReadings(nil); ok {
		t.Error("empty readings reported consistent")
	}
}

// TestEndToEndSimulationFacade drives a complete simulated service through
// the public API only.
func TestEndToEndSimulationFacade(t *testing.T) {
	specs := make([]disttime.ServerSpec, 5)
	for i := range specs {
		drift := float64(i-2) * 1e-5
		specs[i] = disttime.ServerSpec{
			Delta:        math.Abs(drift)*1.2 + 1e-6,
			Drift:        drift,
			InitialError: 0.05,
			SyncEvery:    10,
		}
	}
	sim, err := disttime.NewSimulation(disttime.SimulationConfig{
		Seed:     1,
		Delay:    disttime.UniformDelay{Max: 0.01},
		Topology: disttime.FullMesh,
		Fn:       disttime.IM{},
		Servers:  specs,
	})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := sim.RunSampled(300, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if !s.AllCorrect {
			t.Fatalf("correctness lost at t=%v", s.T)
		}
	}
}

// TestEndToEndUDPFacade runs the real UDP path through the public API.
func TestEndToEndUDPFacade(t *testing.T) {
	src, err := disttime.NewSystemClock(5*time.Millisecond, 100)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for i := 0; i < 3; i++ {
		srv, err := disttime.NewUDPServer("127.0.0.1:0", uint64(i), src)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr().String())
	}
	dc, err := disttime.NewDisciplinedClock(100)
	if err != nil {
		t.Fatal(err)
	}
	client := disttime.NewUDPClient(2*time.Second, dc)
	ms, err := client.QueryMany(addrs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := disttime.SyncIM(dc, ms); err != nil {
		t.Fatal(err)
	}
	now, e, synced := dc.Now()
	if !synced {
		t.Fatal("clock not synchronized")
	}
	if d := now.Sub(time.Now()); math.Abs(d.Seconds()) > e.Seconds()+0.1 {
		t.Errorf("clock off by %v with bound %v", d, e)
	}
}

func TestSelectFacade(t *testing.T) {
	sel, err := disttime.Select([]disttime.SelectionReading{
		{ID: "a", Interval: disttime.FromEstimate(5, 1)},
		{ID: "b", Interval: disttime.FromEstimate(5.5, 1)},
		{ID: "liar", Interval: disttime.FromEstimate(50, 1)},
	}, disttime.SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Falsetickers) != 1 {
		t.Errorf("falsetickers = %v", sel.Falsetickers)
	}
}

func TestTraceFacade(t *testing.T) {
	specs := make([]disttime.ServerSpec, 3)
	for i := range specs {
		specs[i] = disttime.ServerSpec{
			Delta:        1e-4,
			Drift:        float64(i-1) * 5e-5,
			InitialError: 0.05,
			SyncEvery:    10,
		}
	}
	sim, err := disttime.NewSimulation(disttime.SimulationConfig{
		Seed:    3,
		Delay:   disttime.UniformDelay{Max: 0.01},
		Fn:      disttime.IM{},
		Servers: specs,
	})
	if err != nil {
		t.Fatal(err)
	}
	log := disttime.NewTraceLog(1000)
	disttime.AttachTrace(sim, log)
	sim.Run(100)
	if log.Count(disttime.TraceSync) == 0 {
		t.Error("no sync events traced through the facade")
	}
}

func TestSinusoidAndSlewFacade(t *testing.T) {
	osc := disttime.NewSinusoidClock(0, 0, 1e-4, 3600, 0)
	if got := osc.Read(3600); math.Abs(got-3600) > 1e-6 {
		t.Errorf("sinusoid over a period = %v", got)
	}
	slew := disttime.NewSlewingClock(disttime.NewDriftingClock(0, 0, 0), 0.1)
	slew.Read(0)
	slew.Set(0, 10)
	if slew.PendingCorrection() != 10 {
		t.Errorf("pending = %v", slew.PendingCorrection())
	}
}

func TestSelectRFCFacade(t *testing.T) {
	sel, err := disttime.SelectRFC([]disttime.SelectionReading{
		{ID: "a", Interval: disttime.FromEstimate(5, 1)},
		{ID: "b", Interval: disttime.FromEstimate(5.2, 1)},
		{ID: "liar", Interval: disttime.FromEstimate(50, 1)},
	}, disttime.SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Falsetickers) != 1 {
		t.Errorf("falsetickers = %v", sel.Falsetickers)
	}
}

func TestPeerFacade(t *testing.T) {
	src, err := disttime.NewSystemClock(5*time.Millisecond, 100)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := disttime.NewUDPServer("127.0.0.1:0", 9, src)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	reports := make(chan disttime.SyncReport, 4)
	peer, err := disttime.NewPeer(disttime.PeerConfig{
		Addr: "127.0.0.1:0", ID: 1, DriftPPM: 100,
		Peers:    []string{ref.Addr().String()},
		Interval: time.Minute, Timeout: 2 * time.Second,
		OnSync: func(r disttime.SyncReport) { reports <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	select {
	case r := <-reports:
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer never synced")
	}
}

func TestMembershipFacade(t *testing.T) {
	// The simulated substrate: a leave/rejoin cycle produces join and
	// status-change events, and no live server is ever evicted.
	specs := make([]disttime.ServerSpec, 4)
	for i := range specs {
		specs[i] = disttime.ServerSpec{
			Delta: 2e-4, InitialError: 0.05, SyncEvery: 10,
		}
	}
	sim, err := disttime.NewSimulation(disttime.SimulationConfig{
		Seed:    11,
		Servers: specs,
		Members: &disttime.MemberConfig{GossipEvery: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	rejoins, leaves := 0, 0
	sim.AddMemberChange(func(ev disttime.MemberEvent) {
		if ev.From == disttime.MemberLeft && ev.To == disttime.MemberAlive {
			rejoins++
		}
		if ev.To == disttime.MemberLeft {
			leaves++
		}
		if ev.FalseEviction {
			t.Errorf("false eviction: %v", ev)
		}
	})
	sim.LeaveAt(60, 1)
	sim.RejoinAt(120, 1)
	sim.Run(300)
	if leaves == 0 {
		t.Error("voluntary departure produced no Left observations")
	}
	if rejoins == 0 {
		t.Error("rejoin produced no left->alive observations")
	}

	// The UDP substrate: Seeds alone make a roster-backed peer whose
	// membership view is typed through the facade.
	p, err := disttime.NewPeer(disttime.PeerConfig{
		Addr: "127.0.0.1:0", ID: 1, DriftPPM: 100,
		Seeds:      []string{"127.0.0.1:9"},
		Membership: disttime.MembershipConfig{Gossip: time.Hour},
		Interval:   time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var members []disttime.UDPMember = p.Members()
	if len(members) < 2 {
		t.Fatalf("roster-backed peer knows %d members, want self + seed", len(members))
	}
	var st disttime.MemberStatus = members[0].Status
	if st != disttime.MemberAlive {
		t.Errorf("first member status = %v, want alive", st)
	}
}

func TestConsonanceFacade(t *testing.T) {
	specs := []disttime.ServerSpec{
		{Delta: 1e-5, Drift: 0.5e-5, InitialError: 0.05, SyncEvery: 30},
		{Delta: 1e-5, Drift: -0.5e-5, InitialError: 0.05, SyncEvery: 30},
		{Delta: 1e-6, Drift: 5e-5, InitialError: 0.05}, // invalid bound, never resets
	}
	sim, err := disttime.NewSimulation(disttime.SimulationConfig{
		Seed:    9,
		Delay:   disttime.UniformDelay{Max: 0.002},
		Fn:      disttime.MM{},
		Servers: specs,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(1800)
	var report disttime.ConsonanceReport = sim.Consonance()
	if got := report.Suspects(2); len(got) != 1 || got[0] != 2 {
		t.Errorf("Suspects = %v, want [2]", got)
	}
}
