package wire

import (
	"errors"
	"math"
	"testing"
)

func sampleEntries() []MemberEntry {
	return []MemberEntry{
		{Addr: "127.0.0.1:9000", Gen: 42, Seq: 7, Status: 1, C: 1.7220096e9, E: 0.002, Delta: 5e-5},
		{Addr: "127.0.0.1:9001", Gen: 1, Seq: 0, Status: 2, C: 1.7220095e9, E: math.Inf(1), Delta: 1e-4},
		{Addr: "10.0.0.3:123", Gen: 9, Seq: 3, Status: 4, C: 1.72200961e9, E: 0.5, Delta: 0},
	}
}

// TestAdvertiseRoundTrip checks the advertise codec is the identity on
// valid rosters, +Inf error bounds included.
func TestAdvertiseRoundTrip(t *testing.T) {
	in := sampleEntries()
	buf, err := AppendAdvertise(nil, 77, in)
	if err != nil {
		t.Fatal(err)
	}
	reqID, out, err := ParseAdvertise(buf)
	if err != nil {
		t.Fatal(err)
	}
	if reqID != 77 {
		t.Fatalf("reqID = %d, want 77", reqID)
	}
	if len(out) != len(in) {
		t.Fatalf("entry count %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("entry %d changed: in %+v out %+v", i, in[i], out[i])
		}
	}
}

// TestAdvertiseVersionGate pins the compatibility contract: advertise
// messages carry version 2, so a version-1-only parser (requests,
// responses) rejects them with ErrBadVersion — and a doctored version-1
// advertise is equally rejected by ParseAdvertise.
func TestAdvertiseVersionGate(t *testing.T) {
	buf, err := AppendAdvertise(nil, 1, sampleEntries()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if buf[4] != VersionMembership {
		t.Fatalf("advertise header version = %d, want %d", buf[4], VersionMembership)
	}
	if _, err := ParseRequest(buf); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("v1 request parser accepted an advertise: %v", err)
	}
	if _, err := ParseResponse(buf); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("v1 response parser accepted an advertise: %v", err)
	}
	// Downgrade the header to version 1: the advertise parser must reject.
	buf[4] = Version
	if _, _, err := ParseAdvertise(buf); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("ParseAdvertise accepted version 1: %v", err)
	}
}

// TestPeekType dispatches without a full parse.
func TestPeekType(t *testing.T) {
	req := AppendRequest(nil, Request{ReqID: 5})
	if typ, ok := PeekType(req); !ok || typ != TypeRequest {
		t.Fatalf("PeekType(request) = %d, %v", typ, ok)
	}
	adv, err := AppendAdvertise(nil, 1, sampleEntries()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if typ, ok := PeekType(adv); !ok || typ != TypeAdvertise {
		t.Fatalf("PeekType(advertise) = %d, %v", typ, ok)
	}
	if _, ok := PeekType([]byte("not a protocol datagram")); ok {
		t.Fatal("PeekType accepted junk")
	}
	if _, ok := PeekType(req[:8]); ok {
		t.Fatal("PeekType accepted a short datagram")
	}
}

// TestAdvertiseRejectsMalformed covers the validation matrix.
func TestAdvertiseRejectsMalformed(t *testing.T) {
	good := sampleEntries()
	bad := []struct {
		name    string
		entries []MemberEntry
	}{
		{"empty roster", nil},
		{"empty address", []MemberEntry{{Addr: "", Status: 1}}},
		{"status zero", []MemberEntry{{Addr: "a:1", Status: 0}}},
		{"status out of range", []MemberEntry{{Addr: "a:1", Status: 5}}},
		{"NaN clock", []MemberEntry{{Addr: "a:1", Status: 1, C: math.NaN()}}},
		{"infinite clock", []MemberEntry{{Addr: "a:1", Status: 1, C: math.Inf(1)}}},
		{"negative error", []MemberEntry{{Addr: "a:1", Status: 1, E: -1}}},
		{"NaN error", []MemberEntry{{Addr: "a:1", Status: 1, E: math.NaN()}}},
		{"drift one", []MemberEntry{{Addr: "a:1", Status: 1, Delta: 1}}},
		{"negative drift", []MemberEntry{{Addr: "a:1", Status: 1, Delta: -0.1}}},
	}
	for _, tc := range bad {
		if _, err := AppendAdvertise(nil, 0, tc.entries); err == nil {
			t.Errorf("%s: AppendAdvertise accepted it", tc.name)
		}
	}
	buf, err := AppendAdvertise(nil, 0, good)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every byte must error, never panic or misparse.
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := ParseAdvertise(buf[:cut]); err == nil {
			t.Fatalf("ParseAdvertise accepted a %d-byte truncation", cut)
		}
	}
	// Trailing bytes are rejected.
	if _, _, err := ParseAdvertise(append(append([]byte{}, buf...), 0)); err == nil {
		t.Fatal("ParseAdvertise accepted trailing bytes")
	}
}
