// Package wire defines the binary protocol of the real (UDP) time
// service: a fixed-size request and a fixed-size response carrying the
// <C, E> pair of rule MM-1 in nanoseconds. The format is versioned,
// validated on decode, and deliberately tiny — a time service must not
// add serialization latency to the delays it is trying to bound.
//
// Layout (big endian):
//
//	common header (16 bytes):
//	  magic    uint32  "DTTP"
//	  version  uint8   1
//	  type     uint8   1 = request, 2 = response
//	  flags    uint8   response: bit 0 = server unsynchronized
//	  reserved uint8   must be zero
//	  reqID    uint64  echoed by the response
//
//	response body (24 bytes):
//	  serverID uint64
//	  clock    int64   server clock, Unix nanoseconds
//	  maxError uint64  maximum error E, nanoseconds
//
//	advertise body (version 2, variable):
//	  count    uint8   number of roster entries (1..MaxAdvertiseEntries)
//	  entries  count × { addrLen u8, addr, gen u64, seq u64, status u8,
//	                     clock f64 bits, maxError f64 bits, delta f64 bits }
//
//	HLC request body (version 3, 16 bytes):
//	  ts       hlc.Timestamp (wall i64, logical u32, node u32)
//
//	HLC response body (version 3, 40 bytes):
//	  serverID uint64
//	  clock    int64   server clock, Unix nanoseconds
//	  maxError uint64  maximum error E, nanoseconds
//	  ts       hlc.Timestamp (wall i64, logical u32, node u32)
//
// Requests and responses are version 1 and never change size, so every
// deployed client keeps working. The advertise (membership heartbeat)
// message requires version 2: a version-1-only endpoint rejects it with
// ErrBadVersion and drops the datagram — the deliberate compatibility
// gate that lets roster-backed peers mix with pre-membership servers.
// Version 3 adds the HLC request/response pair: the same exchange as
// version 1 with a hybrid logical clock timestamp piggybacked in each
// direction, so every RPC doubles as an hlc.Update. v1/v2-only
// endpoints reject the new types with ErrBadVersion; v3 servers keep
// answering v1 requests, so mixed fleets interoperate.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"disttime/internal/hlc"
)

// Protocol constants.
const (
	Magic   uint32 = 0x44545450 // "DTTP"
	Version uint8  = 1
	// VersionMembership is the protocol revision that introduced the
	// advertise message. Requests and responses remain at Version.
	VersionMembership uint8 = 2
	// VersionHLC is the protocol revision that introduced the HLC
	// request/response pair piggybacking hybrid logical clock timestamps.
	VersionHLC uint8 = 3

	// RequestSize and ResponseSize are the exact wire sizes.
	RequestSize  = 16
	ResponseSize = 40

	// RequestHLCSize and ResponseHLCSize are the exact wire sizes of the
	// version-3 messages: the version-1 layouts plus one hlc.Timestamp.
	RequestHLCSize  = RequestSize + hlc.TimestampSize
	ResponseHLCSize = ResponseSize + hlc.TimestampSize

	// MaxAdvertiseEntries caps the roster entries one advertise message
	// may carry, bounding the datagram size.
	MaxAdvertiseEntries = 64
	// MaxAdvertiseAddr caps the byte length of an advertised address.
	MaxAdvertiseAddr = 255
)

// Message types.
const (
	TypeRequest  uint8 = 1
	TypeResponse uint8 = 2
	// TypeAdvertise is a membership heartbeat: a digest of the sender's
	// roster, entries carrying each member's advertised <C, E> quality.
	// Requires VersionMembership.
	TypeAdvertise uint8 = 3
	// TypeRequestHLC and TypeResponseHLC are the version-3 time exchange:
	// the version-1 request/response with an hlc.Timestamp piggybacked in
	// each direction. Require VersionHLC.
	TypeRequestHLC  uint8 = 4
	TypeResponseHLC uint8 = 5
)

// Response flag bits.
const (
	// FlagUnsynchronized marks a response from a server that cannot
	// currently bound its error; clients must ignore its reading.
	FlagUnsynchronized uint8 = 1 << 0
)

// Decode errors.
var (
	ErrShort      = errors.New("wire: message too short")
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadType    = errors.New("wire: unexpected message type")
	ErrBadField   = errors.New("wire: invalid field")
)

// Request is a time request.
type Request struct {
	// ReqID correlates the response; clients should use unique values.
	ReqID uint64
}

// Response is a server's answer: its reading at receipt of the request.
type Response struct {
	// ReqID echoes the request.
	ReqID uint64
	// ServerID identifies the responding server.
	ServerID uint64
	// Clock is the server's clock at the moment it processed the request.
	Clock time.Time
	// MaxError is the server's maximum error E at that moment.
	MaxError time.Duration
	// Unsynchronized is set when the server cannot bound its error; the
	// Clock and MaxError fields are then advisory only.
	Unsynchronized bool
}

//lint:noalloc
func putHeader(buf []byte, version, typ, flags uint8, reqID uint64) {
	binary.BigEndian.PutUint32(buf[0:4], Magic)
	buf[4] = version
	buf[5] = typ
	buf[6] = flags
	buf[7] = 0
	binary.BigEndian.PutUint64(buf[8:16], reqID)
}

// parseHeader validates the common header. The required version is a
// property of the message type: requests and responses are version 1,
// advertisements version 2 — so a v1-only implementation rejects
// advertise datagrams with ErrBadVersion rather than misparsing them.
//
//lint:noalloc
func parseHeader(buf []byte, wantType, wantVersion uint8) (flags uint8, reqID uint64, err error) {
	if len(buf) < RequestSize {
		return 0, 0, fmt.Errorf("%w: %d bytes", ErrShort, len(buf))
	}
	if got := binary.BigEndian.Uint32(buf[0:4]); got != Magic {
		return 0, 0, fmt.Errorf("%w: %#x", ErrBadMagic, got)
	}
	if buf[4] != wantVersion {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadVersion, buf[4])
	}
	if buf[5] != wantType {
		return 0, 0, fmt.Errorf("%w: got %d, want %d", ErrBadType, buf[5], wantType)
	}
	if buf[7] != 0 {
		return 0, 0, fmt.Errorf("%w: nonzero reserved byte", ErrBadField)
	}
	return buf[6], binary.BigEndian.Uint64(buf[8:16]), nil
}

// PeekType returns the message type of a datagram that carries a
// plausible protocol header (length and magic check out), letting a
// receiver dispatch before committing to a full parse. ok is false for
// datagrams that are not protocol messages at all.
//
//lint:noalloc
func PeekType(buf []byte) (typ uint8, ok bool) {
	if len(buf) < RequestSize || binary.BigEndian.Uint32(buf[0:4]) != Magic {
		return 0, false
	}
	return buf[5], true
}

// AppendRequest appends the encoded request to dst and returns the
// extended slice.
//
//lint:noalloc BenchmarkWireRoundTrip
func AppendRequest(dst []byte, r Request) []byte {
	var buf [RequestSize]byte
	putHeader(buf[:], Version, TypeRequest, 0, r.ReqID)
	return append(dst, buf[:]...)
}

// ParseRequest decodes a request.
//
//lint:noalloc BenchmarkWireRoundTrip
func ParseRequest(buf []byte) (Request, error) {
	flags, reqID, err := parseHeader(buf, TypeRequest, Version)
	if err != nil {
		return Request{}, err
	}
	if flags != 0 {
		return Request{}, fmt.Errorf("%w: request flags %#x", ErrBadField, flags)
	}
	return Request{ReqID: reqID}, nil
}

// AppendResponse appends the encoded response to dst and returns the
// extended slice. A negative MaxError is rejected.
//
//lint:noalloc BenchmarkWireRoundTrip
func AppendResponse(dst []byte, r Response) ([]byte, error) {
	if r.MaxError < 0 {
		return nil, fmt.Errorf("%w: negative max error %v", ErrBadField, r.MaxError)
	}
	var buf [ResponseSize]byte
	var flags uint8
	if r.Unsynchronized {
		flags |= FlagUnsynchronized
	}
	putHeader(buf[:], Version, TypeResponse, flags, r.ReqID)
	binary.BigEndian.PutUint64(buf[16:24], r.ServerID)
	binary.BigEndian.PutUint64(buf[24:32], uint64(r.Clock.UnixNano()))
	binary.BigEndian.PutUint64(buf[32:40], uint64(r.MaxError))
	return append(dst, buf[:]...), nil
}

// ParseResponse decodes a response.
//
//lint:noalloc BenchmarkWireRoundTrip
func ParseResponse(buf []byte) (Response, error) {
	flags, reqID, err := parseHeader(buf, TypeResponse, Version)
	if err != nil {
		return Response{}, err
	}
	if len(buf) < ResponseSize {
		return Response{}, fmt.Errorf("%w: %d bytes", ErrShort, len(buf))
	}
	if flags&^FlagUnsynchronized != 0 {
		return Response{}, fmt.Errorf("%w: unknown flags %#x", ErrBadField, flags)
	}
	maxErr := binary.BigEndian.Uint64(buf[32:40])
	if maxErr > math.MaxInt64 {
		return Response{}, fmt.Errorf("%w: max error overflows", ErrBadField)
	}
	return Response{
		ReqID:          reqID,
		ServerID:       binary.BigEndian.Uint64(buf[16:24]),
		Clock:          time.Unix(0, int64(binary.BigEndian.Uint64(buf[24:32]))),
		MaxError:       time.Duration(maxErr),
		Unsynchronized: flags&FlagUnsynchronized != 0,
	}, nil
}

// RequestHLC is a version-3 time request: the version-1 exchange with
// the client's hybrid logical clock timestamp piggybacked, so the
// server's clock observes the client's causal past.
type RequestHLC struct {
	// ReqID correlates the response; clients should use unique values.
	ReqID uint64
	// TS is the client's HLC timestamp at send time.
	TS hlc.Timestamp
}

// ResponseHLC is a version-3 response: the version-1 reading plus the
// server's hybrid logical clock timestamp, issued after folding the
// request's timestamp in — receiving it completes one HLC send/receive
// round trip.
type ResponseHLC struct {
	Response
	// TS is the server's HLC timestamp at reply time.
	TS hlc.Timestamp
}

// AppendRequestHLC appends the encoded version-3 request to dst and
// returns the extended slice.
//
//lint:noalloc BenchmarkWireRoundTripHLC
func AppendRequestHLC(dst []byte, r RequestHLC) []byte {
	var buf [RequestHLCSize]byte
	putHeader(buf[:], VersionHLC, TypeRequestHLC, 0, r.ReqID)
	hlc.PutTimestamp(buf[RequestSize:], r.TS)
	return append(dst, buf[:]...)
}

// ParseRequestHLC decodes a version-3 request.
//
//lint:noalloc BenchmarkWireRoundTripHLC
func ParseRequestHLC(buf []byte) (RequestHLC, error) {
	flags, reqID, err := parseHeader(buf, TypeRequestHLC, VersionHLC)
	if err != nil {
		return RequestHLC{}, err
	}
	if flags != 0 {
		return RequestHLC{}, fmt.Errorf("%w: request flags %#x", ErrBadField, flags)
	}
	if len(buf) < RequestHLCSize {
		return RequestHLC{}, fmt.Errorf("%w: %d bytes", ErrShort, len(buf))
	}
	ts, err := hlc.ParseTimestamp(buf[RequestSize:])
	if err != nil {
		return RequestHLC{}, fmt.Errorf("%w: %v", ErrBadField, err)
	}
	return RequestHLC{ReqID: reqID, TS: ts}, nil
}

// AppendResponseHLC appends the encoded version-3 response to dst and
// returns the extended slice. A negative MaxError is rejected.
//
//lint:noalloc BenchmarkWireRoundTripHLC
func AppendResponseHLC(dst []byte, r ResponseHLC) ([]byte, error) {
	if r.MaxError < 0 {
		return nil, fmt.Errorf("%w: negative max error %v", ErrBadField, r.MaxError)
	}
	var buf [ResponseHLCSize]byte
	var flags uint8
	if r.Unsynchronized {
		flags |= FlagUnsynchronized
	}
	putHeader(buf[:], VersionHLC, TypeResponseHLC, flags, r.ReqID)
	binary.BigEndian.PutUint64(buf[16:24], r.ServerID)
	binary.BigEndian.PutUint64(buf[24:32], uint64(r.Clock.UnixNano()))
	binary.BigEndian.PutUint64(buf[32:40], uint64(r.MaxError))
	hlc.PutTimestamp(buf[ResponseSize:], r.TS)
	return append(dst, buf[:]...), nil
}

// ParseResponseHLC decodes a version-3 response.
//
//lint:noalloc BenchmarkWireRoundTripHLC
func ParseResponseHLC(buf []byte) (ResponseHLC, error) {
	flags, reqID, err := parseHeader(buf, TypeResponseHLC, VersionHLC)
	if err != nil {
		return ResponseHLC{}, err
	}
	if len(buf) < ResponseHLCSize {
		return ResponseHLC{}, fmt.Errorf("%w: %d bytes", ErrShort, len(buf))
	}
	if flags&^FlagUnsynchronized != 0 {
		return ResponseHLC{}, fmt.Errorf("%w: unknown flags %#x", ErrBadField, flags)
	}
	maxErr := binary.BigEndian.Uint64(buf[32:40])
	if maxErr > math.MaxInt64 {
		return ResponseHLC{}, fmt.Errorf("%w: max error overflows", ErrBadField)
	}
	ts, err := hlc.ParseTimestamp(buf[ResponseSize:])
	if err != nil {
		return ResponseHLC{}, fmt.Errorf("%w: %v", ErrBadField, err)
	}
	return ResponseHLC{
		Response: Response{
			ReqID:          reqID,
			ServerID:       binary.BigEndian.Uint64(buf[16:24]),
			Clock:          time.Unix(0, int64(binary.BigEndian.Uint64(buf[24:32]))),
			MaxError:       time.Duration(maxErr),
			Unsynchronized: flags&FlagUnsynchronized != 0,
		},
		TS: ts,
	}, nil
}

// MemberEntry is one roster row of an advertise message — the wire form
// of a membership entry. Quantities mirror the in-memory roster: C and E
// are the member's advertised <C, E> reading in Unix seconds (E may be
// +Inf for a member of unknown quality, e.g. one not yet synchronized),
// Delta its claimed drift bound as a fraction.
type MemberEntry struct {
	// Addr is the member's serving address ("host:port"); the roster key.
	Addr string
	// Gen is the member's incarnation number.
	Gen uint64
	// Seq is the within-generation heartbeat sequence.
	Seq uint64
	// Status is the lifecycle state (member.Status values 1..4).
	Status uint8
	// C and E are the advertised reading: clock value and maximum error,
	// in seconds.
	C, E float64
	// Delta is the member's claimed drift bound, in [0, 1).
	Delta float64
}

// memberEntryFixed is the per-entry wire size excluding the address
// bytes: addrLen u8, gen u64, seq u64, status u8, C/E/delta f64 bits.
const memberEntryFixed = 1 + 8 + 8 + 1 + 3*8

// validateMemberEntry rejects entries the roster could not merge.
func validateMemberEntry(e MemberEntry) error {
	if len(e.Addr) == 0 || len(e.Addr) > MaxAdvertiseAddr {
		return fmt.Errorf("%w: address length %d", ErrBadField, len(e.Addr))
	}
	if e.Status < 1 || e.Status > 4 {
		return fmt.Errorf("%w: status %d", ErrBadField, e.Status)
	}
	if math.IsNaN(e.C) || math.IsInf(e.C, 0) {
		return fmt.Errorf("%w: non-finite clock %v", ErrBadField, e.C)
	}
	if math.IsNaN(e.E) || e.E < 0 {
		return fmt.Errorf("%w: invalid max error %v", ErrBadField, e.E)
	}
	if math.IsNaN(e.Delta) || e.Delta < 0 || e.Delta >= 1 {
		return fmt.Errorf("%w: drift bound %v outside [0,1)", ErrBadField, e.Delta)
	}
	return nil
}

// AppendAdvertise appends an encoded advertise message carrying the
// given roster entries and returns the extended slice. The reqID is a
// free-form sender sequence echoed nowhere; it aids packet-level
// debugging. Entries are validated; at least one (the sender's own) and
// at most MaxAdvertiseEntries are required.
func AppendAdvertise(dst []byte, reqID uint64, entries []MemberEntry) ([]byte, error) {
	if len(entries) == 0 || len(entries) > MaxAdvertiseEntries {
		return nil, fmt.Errorf("%w: %d advertise entries", ErrBadField, len(entries))
	}
	var hdr [RequestSize + 1]byte
	putHeader(hdr[:], VersionMembership, TypeAdvertise, 0, reqID)
	hdr[RequestSize] = uint8(len(entries))
	dst = append(dst, hdr[:]...)
	var num [8]byte
	for _, e := range entries {
		if err := validateMemberEntry(e); err != nil {
			return nil, fmt.Errorf("advertise entry %q: %w", e.Addr, err)
		}
		dst = append(dst, uint8(len(e.Addr)))
		dst = append(dst, e.Addr...)
		binary.BigEndian.PutUint64(num[:], e.Gen)
		dst = append(dst, num[:]...)
		binary.BigEndian.PutUint64(num[:], e.Seq)
		dst = append(dst, num[:]...)
		dst = append(dst, e.Status)
		binary.BigEndian.PutUint64(num[:], math.Float64bits(e.C))
		dst = append(dst, num[:]...)
		binary.BigEndian.PutUint64(num[:], math.Float64bits(e.E))
		dst = append(dst, num[:]...)
		binary.BigEndian.PutUint64(num[:], math.Float64bits(e.Delta))
		dst = append(dst, num[:]...)
	}
	return dst, nil
}

// ParseAdvertise decodes an advertise message: header, entry count, and
// every entry, each validated. It returns the sender's reqID and the
// entries (the first is the sender's own row, per the digest convention).
func ParseAdvertise(buf []byte) (reqID uint64, entries []MemberEntry, err error) {
	flags, reqID, err := parseHeader(buf, TypeAdvertise, VersionMembership)
	if err != nil {
		return 0, nil, err
	}
	if flags != 0 {
		return 0, nil, fmt.Errorf("%w: advertise flags %#x", ErrBadField, flags)
	}
	rest := buf[RequestSize:]
	if len(rest) < 1 {
		return 0, nil, fmt.Errorf("%w: missing entry count", ErrShort)
	}
	count := int(rest[0])
	rest = rest[1:]
	if count == 0 || count > MaxAdvertiseEntries {
		return 0, nil, fmt.Errorf("%w: %d advertise entries", ErrBadField, count)
	}
	entries = make([]MemberEntry, 0, count)
	for i := 0; i < count; i++ {
		if len(rest) < memberEntryFixed {
			return 0, nil, fmt.Errorf("%w: entry %d truncated", ErrShort, i)
		}
		addrLen := int(rest[0])
		if addrLen == 0 {
			return 0, nil, fmt.Errorf("%w: entry %d empty address", ErrBadField, i)
		}
		if len(rest) < memberEntryFixed+addrLen {
			return 0, nil, fmt.Errorf("%w: entry %d truncated", ErrShort, i)
		}
		rest = rest[1:]
		e := MemberEntry{Addr: string(rest[:addrLen])}
		rest = rest[addrLen:]
		e.Gen = binary.BigEndian.Uint64(rest[0:8])
		e.Seq = binary.BigEndian.Uint64(rest[8:16])
		e.Status = rest[16]
		e.C = math.Float64frombits(binary.BigEndian.Uint64(rest[17:25]))
		e.E = math.Float64frombits(binary.BigEndian.Uint64(rest[25:33]))
		e.Delta = math.Float64frombits(binary.BigEndian.Uint64(rest[33:41]))
		rest = rest[41:]
		if err := validateMemberEntry(e); err != nil {
			return 0, nil, fmt.Errorf("advertise entry %d: %w", i, err)
		}
		entries = append(entries, e)
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrBadField, len(rest))
	}
	return reqID, entries, nil
}
