// Package wire defines the binary protocol of the real (UDP) time
// service: a fixed-size request and a fixed-size response carrying the
// <C, E> pair of rule MM-1 in nanoseconds. The format is versioned,
// validated on decode, and deliberately tiny — a time service must not
// add serialization latency to the delays it is trying to bound.
//
// Layout (big endian):
//
//	common header (16 bytes):
//	  magic    uint32  "DTTP"
//	  version  uint8   1
//	  type     uint8   1 = request, 2 = response
//	  flags    uint8   response: bit 0 = server unsynchronized
//	  reserved uint8   must be zero
//	  reqID    uint64  echoed by the response
//
//	response body (24 bytes):
//	  serverID uint64
//	  clock    int64   server clock, Unix nanoseconds
//	  maxError uint64  maximum error E, nanoseconds
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Protocol constants.
const (
	Magic   uint32 = 0x44545450 // "DTTP"
	Version uint8  = 1

	// RequestSize and ResponseSize are the exact wire sizes.
	RequestSize  = 16
	ResponseSize = 40
)

// Message types.
const (
	TypeRequest  uint8 = 1
	TypeResponse uint8 = 2
)

// Response flag bits.
const (
	// FlagUnsynchronized marks a response from a server that cannot
	// currently bound its error; clients must ignore its reading.
	FlagUnsynchronized uint8 = 1 << 0
)

// Decode errors.
var (
	ErrShort      = errors.New("wire: message too short")
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadType    = errors.New("wire: unexpected message type")
	ErrBadField   = errors.New("wire: invalid field")
)

// Request is a time request.
type Request struct {
	// ReqID correlates the response; clients should use unique values.
	ReqID uint64
}

// Response is a server's answer: its reading at receipt of the request.
type Response struct {
	// ReqID echoes the request.
	ReqID uint64
	// ServerID identifies the responding server.
	ServerID uint64
	// Clock is the server's clock at the moment it processed the request.
	Clock time.Time
	// MaxError is the server's maximum error E at that moment.
	MaxError time.Duration
	// Unsynchronized is set when the server cannot bound its error; the
	// Clock and MaxError fields are then advisory only.
	Unsynchronized bool
}

func putHeader(buf []byte, typ, flags uint8, reqID uint64) {
	binary.BigEndian.PutUint32(buf[0:4], Magic)
	buf[4] = Version
	buf[5] = typ
	buf[6] = flags
	buf[7] = 0
	binary.BigEndian.PutUint64(buf[8:16], reqID)
}

func parseHeader(buf []byte, wantType uint8) (flags uint8, reqID uint64, err error) {
	if len(buf) < RequestSize {
		return 0, 0, fmt.Errorf("%w: %d bytes", ErrShort, len(buf))
	}
	if got := binary.BigEndian.Uint32(buf[0:4]); got != Magic {
		return 0, 0, fmt.Errorf("%w: %#x", ErrBadMagic, got)
	}
	if buf[4] != Version {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadVersion, buf[4])
	}
	if buf[5] != wantType {
		return 0, 0, fmt.Errorf("%w: got %d, want %d", ErrBadType, buf[5], wantType)
	}
	if buf[7] != 0 {
		return 0, 0, fmt.Errorf("%w: nonzero reserved byte", ErrBadField)
	}
	return buf[6], binary.BigEndian.Uint64(buf[8:16]), nil
}

// AppendRequest appends the encoded request to dst and returns the
// extended slice.
func AppendRequest(dst []byte, r Request) []byte {
	var buf [RequestSize]byte
	putHeader(buf[:], TypeRequest, 0, r.ReqID)
	return append(dst, buf[:]...)
}

// ParseRequest decodes a request.
func ParseRequest(buf []byte) (Request, error) {
	flags, reqID, err := parseHeader(buf, TypeRequest)
	if err != nil {
		return Request{}, err
	}
	if flags != 0 {
		return Request{}, fmt.Errorf("%w: request flags %#x", ErrBadField, flags)
	}
	return Request{ReqID: reqID}, nil
}

// AppendResponse appends the encoded response to dst and returns the
// extended slice. A negative MaxError is rejected.
func AppendResponse(dst []byte, r Response) ([]byte, error) {
	if r.MaxError < 0 {
		return nil, fmt.Errorf("%w: negative max error %v", ErrBadField, r.MaxError)
	}
	var buf [ResponseSize]byte
	var flags uint8
	if r.Unsynchronized {
		flags |= FlagUnsynchronized
	}
	putHeader(buf[:], TypeResponse, flags, r.ReqID)
	binary.BigEndian.PutUint64(buf[16:24], r.ServerID)
	binary.BigEndian.PutUint64(buf[24:32], uint64(r.Clock.UnixNano()))
	binary.BigEndian.PutUint64(buf[32:40], uint64(r.MaxError))
	return append(dst, buf[:]...), nil
}

// ParseResponse decodes a response.
func ParseResponse(buf []byte) (Response, error) {
	flags, reqID, err := parseHeader(buf, TypeResponse)
	if err != nil {
		return Response{}, err
	}
	if len(buf) < ResponseSize {
		return Response{}, fmt.Errorf("%w: %d bytes", ErrShort, len(buf))
	}
	if flags&^FlagUnsynchronized != 0 {
		return Response{}, fmt.Errorf("%w: unknown flags %#x", ErrBadField, flags)
	}
	maxErr := binary.BigEndian.Uint64(buf[32:40])
	if maxErr > math.MaxInt64 {
		return Response{}, fmt.Errorf("%w: max error overflows", ErrBadField)
	}
	return Response{
		ReqID:          reqID,
		ServerID:       binary.BigEndian.Uint64(buf[16:24]),
		Clock:          time.Unix(0, int64(binary.BigEndian.Uint64(buf[24:32]))),
		MaxError:       time.Duration(maxErr),
		Unsynchronized: flags&FlagUnsynchronized != 0,
	}, nil
}
