package wire

import (
	"testing"
	"time"
)

// FuzzParseRequest checks the request decoder never panics and that any
// buffer it accepts round-trips exactly.
func FuzzParseRequest(f *testing.F) {
	f.Add(AppendRequest(nil, Request{ReqID: 1}))
	f.Add([]byte{})
	f.Add([]byte("garbage that is long enough to reach the header parser"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			return
		}
		re := AppendRequest(nil, req)
		back, err := ParseRequest(re)
		if err != nil {
			t.Fatalf("re-encoded request failed to parse: %v", err)
		}
		if back != req {
			t.Fatalf("round trip changed request: %+v vs %+v", back, req)
		}
	})
}

// FuzzParseRequestHLC checks the v3 request decoder never panics and
// that any buffer it accepts round-trips byte-exactly — the v3 layout is
// fixed-size with a single canonical form, so encode∘decode is the
// identity on accepted prefixes.
func FuzzParseRequestHLC(f *testing.F) {
	f.Add(AppendRequestHLC(nil, RequestHLC{ReqID: 1}))
	f.Add([]byte{})
	f.Add(make([]byte, RequestHLCSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequestHLC(data)
		if err != nil {
			return
		}
		re := AppendRequestHLC(nil, req)
		for i, b := range re {
			if data[i] != b {
				t.Fatalf("accepted %x but re-encodes as %x", data[:RequestHLCSize], re)
			}
		}
	})
}

// FuzzParseResponse checks the response decoder never panics and that any
// buffer it accepts round-trips exactly.
func FuzzParseResponse(f *testing.F) {
	seed, err := AppendResponse(nil, Response{
		ReqID: 7, ServerID: 8, Clock: time.Unix(9, 10), MaxError: 11,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, ResponseSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := ParseResponse(data)
		if err != nil {
			return
		}
		re, err := AppendResponse(nil, resp)
		if err != nil {
			t.Fatalf("accepted response failed to re-encode: %v", err)
		}
		back, err := ParseResponse(re)
		if err != nil {
			t.Fatalf("re-encoded response failed to parse: %v", err)
		}
		if back.ReqID != resp.ReqID || back.ServerID != resp.ServerID ||
			!back.Clock.Equal(resp.Clock) || back.MaxError != resp.MaxError ||
			back.Unsynchronized != resp.Unsynchronized {
			t.Fatalf("round trip changed response: %+v vs %+v", back, resp)
		}
	})
}
