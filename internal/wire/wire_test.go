package wire

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestRequestRoundTrip(t *testing.T) {
	buf := AppendRequest(nil, Request{ReqID: 0xdeadbeefcafe})
	if len(buf) != RequestSize {
		t.Fatalf("encoded size = %d, want %d", len(buf), RequestSize)
	}
	got, err := ParseRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ReqID != 0xdeadbeefcafe {
		t.Errorf("ReqID = %#x", got.ReqID)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	now := time.Unix(1234567890, 987654321)
	in := Response{
		ReqID:          42,
		ServerID:       7,
		Clock:          now,
		MaxError:       250 * time.Millisecond,
		Unsynchronized: true,
	}
	buf, err := AppendResponse(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != ResponseSize {
		t.Fatalf("encoded size = %d, want %d", len(buf), ResponseSize)
	}
	got, err := ParseResponse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ReqID != in.ReqID || got.ServerID != in.ServerID ||
		!got.Clock.Equal(in.Clock) || got.MaxError != in.MaxError ||
		got.Unsynchronized != in.Unsynchronized {
		t.Errorf("round trip mismatch: %+v vs %+v", got, in)
	}
}

func TestAppendResponseRejectsNegativeError(t *testing.T) {
	_, err := AppendResponse(nil, Response{MaxError: -1})
	if !errors.Is(err, ErrBadField) {
		t.Errorf("error = %v, want ErrBadField", err)
	}
}

func TestParseRequestErrors(t *testing.T) {
	valid := AppendRequest(nil, Request{ReqID: 1})
	tests := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{name: "short", mutate: func(b []byte) []byte { return b[:10] }, want: ErrShort},
		{name: "empty", mutate: func([]byte) []byte { return nil }, want: ErrShort},
		{
			name:   "bad magic",
			mutate: func(b []byte) []byte { b[0] = 'X'; return b },
			want:   ErrBadMagic,
		},
		{
			name:   "bad version",
			mutate: func(b []byte) []byte { b[4] = 99; return b },
			want:   ErrBadVersion,
		},
		{
			name:   "wrong type",
			mutate: func(b []byte) []byte { b[5] = TypeResponse; return b },
			want:   ErrBadType,
		},
		{
			name:   "reserved set",
			mutate: func(b []byte) []byte { b[7] = 1; return b },
			want:   ErrBadField,
		},
		{
			name:   "request flags set",
			mutate: func(b []byte) []byte { b[6] = 1; return b },
			want:   ErrBadField,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			buf := append([]byte(nil), valid...)
			if _, err := ParseRequest(tt.mutate(buf)); !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestParseResponseErrors(t *testing.T) {
	valid, err := AppendResponse(nil, Response{ReqID: 1, Clock: time.Unix(1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{name: "short body", mutate: func(b []byte) []byte { return b[:20] }, want: ErrShort},
		{
			name:   "unknown flag",
			mutate: func(b []byte) []byte { b[6] = 0x80; return b },
			want:   ErrBadField,
		},
		{
			name:   "type mismatch",
			mutate: func(b []byte) []byte { b[5] = TypeRequest; return b },
			want:   ErrBadType,
		},
		{
			name: "max error overflow",
			mutate: func(b []byte) []byte {
				for i := 32; i < 40; i++ {
					b[i] = 0xff
				}
				return b
			},
			want: ErrBadField,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			buf := append([]byte(nil), valid...)
			if _, err := ParseResponse(tt.mutate(buf)); !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}
}

// TestResponseRoundTripProperty fuzzes the codec over arbitrary field
// values.
func TestResponseRoundTripProperty(t *testing.T) {
	f := func(reqID, serverID uint64, unixNano int64, maxErrRaw int64, unsync bool) bool {
		maxErr := time.Duration(maxErrRaw)
		if maxErr < 0 {
			maxErr = -maxErr
		}
		if maxErr < 0 { // MinInt64 negation overflow
			maxErr = 0
		}
		in := Response{
			ReqID:          reqID,
			ServerID:       serverID,
			Clock:          time.Unix(0, unixNano),
			MaxError:       maxErr,
			Unsynchronized: unsync,
		}
		buf, err := AppendResponse(nil, in)
		if err != nil {
			return false
		}
		got, err := ParseResponse(buf)
		if err != nil {
			return false
		}
		return got.ReqID == in.ReqID && got.ServerID == in.ServerID &&
			got.Clock.Equal(in.Clock) && got.MaxError == in.MaxError &&
			got.Unsynchronized == in.Unsynchronized
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAppendReusesDst(t *testing.T) {
	dst := make([]byte, 0, RequestSize)
	out := AppendRequest(dst, Request{ReqID: 5})
	if &out[0] != &dst[:1][0] {
		t.Error("AppendRequest reallocated despite sufficient capacity")
	}
}

func BenchmarkAppendParseResponse(b *testing.B) {
	r := Response{ReqID: 1, ServerID: 2, Clock: time.Unix(3, 4), MaxError: 5}
	buf := make([]byte, 0, ResponseSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		buf, err = AppendResponse(buf, r)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ParseResponse(buf); err != nil {
			b.Fatal(err)
		}
	}
}
