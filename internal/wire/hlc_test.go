package wire

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"disttime/internal/hlc"
)

func TestRequestHLCRoundTrip(t *testing.T) {
	in := RequestHLC{
		ReqID: 0xdeadbeefcafe,
		TS:    hlc.Timestamp{Wall: 123456789012345, Logical: 9, Node: 4},
	}
	buf := AppendRequestHLC(nil, in)
	if len(buf) != RequestHLCSize {
		t.Fatalf("encoded size = %d, want %d", len(buf), RequestHLCSize)
	}
	got, err := ParseRequestHLC(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != in {
		t.Errorf("round trip mismatch: %+v vs %+v", got, in)
	}
}

func TestResponseHLCRoundTrip(t *testing.T) {
	in := ResponseHLC{
		Response: Response{
			ReqID:          42,
			ServerID:       7,
			Clock:          time.Unix(1234567890, 987654321),
			MaxError:       250 * time.Millisecond,
			Unsynchronized: true,
		},
		TS: hlc.Timestamp{Wall: 987654321098, Logical: 2, Node: 1},
	}
	buf, err := AppendResponseHLC(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != ResponseHLCSize {
		t.Fatalf("encoded size = %d, want %d", len(buf), ResponseHLCSize)
	}
	got, err := ParseResponseHLC(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ReqID != in.ReqID || got.ServerID != in.ServerID ||
		!got.Clock.Equal(in.Clock) || got.MaxError != in.MaxError ||
		got.Unsynchronized != in.Unsynchronized || got.TS != in.TS {
		t.Errorf("round trip mismatch: %+v vs %+v", got, in)
	}
}

// TestHLCBackCompat pins the deliberate compatibility gate: a version-1
// endpoint fed a version-3 datagram must reject it with ErrBadVersion
// (not misparse it), and a version-3 parser must likewise reject the
// version-1 layouts — exactly how the v2 advertise message gates.
func TestHLCBackCompat(t *testing.T) {
	reqV3 := AppendRequestHLC(nil, RequestHLC{ReqID: 1, TS: hlc.Timestamp{Wall: 5}})
	respV3, err := AppendResponseHLC(nil, ResponseHLC{
		Response: Response{ReqID: 1, Clock: time.Unix(1, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	reqV1 := AppendRequest(nil, Request{ReqID: 1})
	respV1, err := AppendResponse(nil, Response{ReqID: 1, Clock: time.Unix(1, 0)})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := ParseRequest(reqV3); !errors.Is(err, ErrBadVersion) {
		t.Errorf("v1 ParseRequest(v3 request) = %v, want ErrBadVersion", err)
	}
	if _, err := ParseResponse(respV3); !errors.Is(err, ErrBadVersion) {
		t.Errorf("v1 ParseResponse(v3 response) = %v, want ErrBadVersion", err)
	}
	if _, _, err := ParseAdvertise(reqV3); !errors.Is(err, ErrBadVersion) {
		t.Errorf("v2 ParseAdvertise(v3 request) = %v, want ErrBadVersion", err)
	}
	if _, err := ParseRequestHLC(reqV1); !errors.Is(err, ErrBadVersion) {
		t.Errorf("v3 ParseRequestHLC(v1 request) = %v, want ErrBadVersion", err)
	}
	if _, err := ParseResponseHLC(respV1); !errors.Is(err, ErrBadVersion) {
		t.Errorf("v3 ParseResponseHLC(v1 response) = %v, want ErrBadVersion", err)
	}
}

// TestPeekTypeDispatchesHLC pins the serve-loop dispatch path: PeekType
// distinguishes the v3 types from v1/v2 so a server can route before
// committing to a parse.
func TestPeekTypeDispatchesHLC(t *testing.T) {
	reqV3 := AppendRequestHLC(nil, RequestHLC{ReqID: 1})
	if typ, ok := PeekType(reqV3); !ok || typ != TypeRequestHLC {
		t.Errorf("PeekType(v3 request) = %d, %v; want %d, true", typ, ok, TypeRequestHLC)
	}
	respV3, err := AppendResponseHLC(nil, ResponseHLC{
		Response: Response{Clock: time.Unix(1, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if typ, ok := PeekType(respV3); !ok || typ != TypeResponseHLC {
		t.Errorf("PeekType(v3 response) = %d, %v; want %d, true", typ, ok, TypeResponseHLC)
	}
	reqV1 := AppendRequest(nil, Request{ReqID: 1})
	if typ, ok := PeekType(reqV1); !ok || typ != TypeRequest {
		t.Errorf("PeekType(v1 request) = %d, %v; want %d, true", typ, ok, TypeRequest)
	}
}

func TestParseRequestHLCErrors(t *testing.T) {
	valid := AppendRequestHLC(nil, RequestHLC{ReqID: 1})
	tests := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{name: "short header", mutate: func(b []byte) []byte { return b[:10] }, want: ErrShort},
		{name: "short body", mutate: func(b []byte) []byte { return b[:RequestSize+4] }, want: ErrShort},
		{
			name:   "bad magic",
			mutate: func(b []byte) []byte { b[0] = 'X'; return b },
			want:   ErrBadMagic,
		},
		{
			name:   "wrong type",
			mutate: func(b []byte) []byte { b[5] = TypeResponseHLC; return b },
			want:   ErrBadType,
		},
		{
			name:   "flags set",
			mutate: func(b []byte) []byte { b[6] = 1; return b },
			want:   ErrBadField,
		},
		{
			name: "negative wall",
			mutate: func(b []byte) []byte {
				b[RequestSize] = 0x80 // wall sign bit
				return b
			},
			want: ErrBadField,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			buf := append([]byte(nil), valid...)
			if _, err := ParseRequestHLC(tt.mutate(buf)); !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestParseResponseHLCErrors(t *testing.T) {
	valid, err := AppendResponseHLC(nil, ResponseHLC{
		Response: Response{ReqID: 1, Clock: time.Unix(1, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{name: "short body", mutate: func(b []byte) []byte { return b[:ResponseSize] }, want: ErrShort},
		{
			name:   "unknown flag",
			mutate: func(b []byte) []byte { b[6] = 0x80; return b },
			want:   ErrBadField,
		},
		{
			name: "max error overflow",
			mutate: func(b []byte) []byte {
				for i := 32; i < 40; i++ {
					b[i] = 0xff
				}
				return b
			},
			want: ErrBadField,
		},
		{
			name: "negative wall",
			mutate: func(b []byte) []byte {
				b[ResponseSize] = 0x80
				return b
			},
			want: ErrBadField,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			buf := append([]byte(nil), valid...)
			if _, err := ParseResponseHLC(tt.mutate(buf)); !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestAppendResponseHLCRejectsNegativeError(t *testing.T) {
	_, err := AppendResponseHLC(nil, ResponseHLC{Response: Response{MaxError: -1}})
	if !errors.Is(err, ErrBadField) {
		t.Errorf("error = %v, want ErrBadField", err)
	}
}

// TestResponseHLCRoundTripProperty fuzzes the v3 response codec over
// arbitrary field values.
func TestResponseHLCRoundTripProperty(t *testing.T) {
	f := func(reqID, serverID uint64, unixNano int64, maxErrRaw int64, unsync bool, wall int64, logical, node uint32) bool {
		maxErr := time.Duration(maxErrRaw)
		if maxErr < 0 {
			maxErr = -maxErr
		}
		if maxErr < 0 { // MinInt64 negation overflow
			maxErr = 0
		}
		if wall < 0 {
			wall = -wall
		}
		if wall < 0 {
			wall = 0
		}
		in := ResponseHLC{
			Response: Response{
				ReqID:          reqID,
				ServerID:       serverID,
				Clock:          time.Unix(0, unixNano),
				MaxError:       maxErr,
				Unsynchronized: unsync,
			},
			TS: hlc.Timestamp{Wall: wall, Logical: logical, Node: node},
		}
		buf, err := AppendResponseHLC(nil, in)
		if err != nil {
			return false
		}
		got, err := ParseResponseHLC(buf)
		if err != nil {
			return false
		}
		return got.ReqID == in.ReqID && got.ServerID == in.ServerID &&
			got.Clock.Equal(in.Clock) && got.MaxError == in.MaxError &&
			got.Unsynchronized == in.Unsynchronized && got.TS == in.TS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
