package scale

import (
	"math"
	"testing"

	"disttime/internal/par"
)

// testConfig is a small stratified service: 8 regions so the determinism
// matrix can exercise up to 8 shards.
func testConfig(scenario Scenario, shards int, seed uint64) Config {
	cfg := Config{
		Topo:         Topology{Regions: 8, Clusters: 2, Members: 4},
		Shards:       shards,
		Seed:         seed,
		Tau:          30,
		Delta:        1e-4,
		DriftMax:     0.99e-4,
		InitialError: 0.05,
		Member:       Band{Min: 0.0002, Max: 0.002},
		Uplink:       Band{Min: 0.002, Max: 0.01},
		Backbone:     Band{Min: 0.02, Max: 0.08},
		Rule:         RuleIM,
		Scenario:     scenario,
	}
	switch scenario {
	case Chaos:
		cfg.FalsetickerFrac = 0.1
		cfg.Loss = 0.05
		cfg.DelayFactor = 4
		cfg.DelayFrom = 120
		cfg.DelayUntil = 240
	case Churn:
		cfg.LeaveProb = 0.05
	}
	return cfg
}

func runFingerprint(t *testing.T, cfg Config, until float64) string {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	e.Run(until)
	if e.Steps() == 0 {
		t.Fatal("engine executed no events")
	}
	return e.Fingerprint()
}

// TestDeterminismMatrix is the cross-kernel determinism test: for plain,
// chaos, and churn scenarios, seeded runs must be byte-identical across
// shards 1, 2, 4, and 8 — and shards=1 (single heap, unbounded window)
// IS the sequential kernel, so each row also checks sharded-vs-sequential
// equality. Run under -race with a real worker budget this doubles as
// the kernel's concurrency regression test.
func TestDeterminismMatrix(t *testing.T) {
	prev := par.SetLimit(4)
	defer par.SetLimit(prev)
	for _, scenario := range []Scenario{Plain, Chaos, Churn} {
		name := map[Scenario]string{Plain: "plain", Chaos: "chaos", Churn: "churn"}[scenario]
		t.Run(name, func(t *testing.T) {
			sequential := runFingerprint(t, testConfig(scenario, 1, 42), 600)
			for _, shards := range []int{2, 4, 8} {
				got := runFingerprint(t, testConfig(scenario, shards, 42), 600)
				if got != sequential {
					t.Fatalf("%s shards=%d: fingerprint %s, sequential %s",
						name, shards, got, sequential)
				}
			}
		})
	}
}

// TestDeterminismSeedSensitivity checks the fingerprint actually depends
// on the seed.
func TestDeterminismSeedSensitivity(t *testing.T) {
	a := runFingerprint(t, testConfig(Plain, 2, 1), 300)
	b := runFingerprint(t, testConfig(Plain, 2, 2), 300)
	if a == b {
		t.Fatalf("different seeds produced identical fingerprint %s", a)
	}
}

// TestCorrectnessHonestRun checks Theorem 1 at scale: in a fault-free run
// with valid drift bounds, every node's true offset stays inside its
// reported error at every sample.
func TestCorrectnessHonestRun(t *testing.T) {
	cfg := testConfig(Plain, 4, 7)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, ts := range []float64{60, 300, 900, 1800} {
		e.Run(ts)
		for i := 0; i < e.Nodes(); i++ {
			off := math.Abs(e.read(int32(i), ts) - ts)
			bound := e.errAt(int32(i), ts)
			if off > bound {
				t.Fatalf("t=%v node %d: |C-t| = %v exceeds E = %v", ts, i, off, bound)
			}
		}
	}
	if e.Resets() == 0 {
		t.Fatal("no clock resets in an IM run")
	}
}

// TestSyncBeatsNoSync checks the protocol does something: with
// synchronization the mean reported error stays far below the unsynced
// drift accumulation (InitialError + t*Delta).
func TestSyncBeatsNoSync(t *testing.T) {
	cfg := testConfig(Plain, 2, 11)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const until = 3600
	e.Run(until)
	unsynced := cfg.InitialError + until*cfg.Delta
	if got := e.MeanError(until); got > unsynced/2 {
		t.Fatalf("mean error %v after %vs, want well under unsynced %v", got, until, unsynced)
	}
	if got := e.MeanAbsOffset(until); got > cfg.InitialError {
		t.Fatalf("mean |C-t| = %v grew beyond the initial error %v", got, cfg.InitialError)
	}
}

// TestMMRule checks algorithm MM runs and resets clocks too.
func TestMMRule(t *testing.T) {
	cfg := testConfig(Plain, 2, 13)
	cfg.Rule = RuleMM
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run(1200)
	if e.Resets() == 0 {
		t.Fatal("no clock resets in an MM run")
	}
	// MM determinism across shard counts.
	one := runFingerprint(t, withRule(testConfig(Plain, 1, 13), RuleMM), 600)
	four := runFingerprint(t, withRule(testConfig(Plain, 4, 13), RuleMM), 600)
	if one != four {
		t.Fatalf("MM fingerprints diverge: %s vs %s", one, four)
	}
}

func withRule(cfg Config, r Rule) Config { cfg.Rule = r; return cfg }

// TestChurnTakesNodesDown checks churn actually removes nodes for a
// while and the service still resets clocks.
func TestChurnTakesNodesDown(t *testing.T) {
	cfg := testConfig(Churn, 2, 17)
	cfg.LeaveProb = 0.3
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run(95) // a few rounds in, some nodes should be down
	downNow := 0
	for i := range e.down {
		if e.down[i] {
			downNow++
		}
	}
	if downNow == 0 {
		t.Fatal("no node down under LeaveProb=0.3")
	}
	e.Run(1200)
	if e.Resets() == 0 {
		t.Fatal("churn run performed no resets")
	}
}

// TestChaosCountsInconsistencies checks falsetickers are detected as
// inconsistent observations.
func TestChaosCountsInconsistencies(t *testing.T) {
	cfg := testConfig(Chaos, 2, 19)
	cfg.FalsetickerFrac = 0.25
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run(1800)
	if e.Inconsistencies() == 0 {
		t.Fatal("no inconsistencies observed with 25% falsetickers")
	}
}

// TestSkewGradient checks the stratified skew sampler: all three tiers
// populated, and the hierarchy keeps every tier's skew bounded.
func TestSkewGradient(t *testing.T) {
	cfg := testConfig(Plain, 4, 23)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const until = 1800
	e.Run(until)
	sk := e.Skew(until)
	for name, v := range map[string]float64{"hub": sk.Hub, "gateway": sk.Gateway, "member": sk.Member} {
		if v <= 0 || v > cfg.InitialError {
			t.Fatalf("%s skew = %v, want in (0, %v]", name, v, cfg.InitialError)
		}
	}
}

// TestMeshTopology checks the 1x1xN degenerate hierarchy (the theorems'
// full mesh) shards by node blocks and stays deterministic.
func TestMeshTopology(t *testing.T) {
	mesh := func(shards int) Config {
		return Config{
			Topo: Topology{Regions: 1, Clusters: 1, Members: 16},
			Shards: shards, Seed: 5, Tau: 60,
			Delta: 1e-4, DriftMax: 0.99e-4, InitialError: 0.05,
			Member: Band{Min: 0.0001, Max: 0.0005},
			Rule:   RuleIM,
		}
	}
	one := runFingerprint(t, mesh(1), 1200)
	four := runFingerprint(t, mesh(4), 1200)
	if one != four {
		t.Fatalf("mesh fingerprints diverge: %s vs %s", one, four)
	}
	e, err := New(mesh(4))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Shards() != 4 {
		t.Fatalf("mesh Shards() = %d, want 4", e.Shards())
	}
}

// TestKSampling checks sampled-peer rounds (K > 0) work and stay
// deterministic across shard counts.
func TestKSampling(t *testing.T) {
	with := func(shards int) Config {
		cfg := testConfig(Plain, shards, 29)
		cfg.K = 2
		return cfg
	}
	one := runFingerprint(t, with(1), 600)
	eight := runFingerprint(t, with(8), 600)
	if one != eight {
		t.Fatalf("K-sampled fingerprints diverge: %s vs %s", one, eight)
	}
}

// TestConfigValidation covers New's rejection paths.
func TestConfigValidation(t *testing.T) {
	base := testConfig(Plain, 1, 1)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"one member", func(c *Config) { c.Topo.Members = 1 }},
		{"zero tau", func(c *Config) { c.Tau = 0 }},
		{"negative delta", func(c *Config) { c.Delta = -1 }},
		{"loss 1", func(c *Config) { c.Loss = 1 }},
		{"shrinking delay factor", func(c *Config) { c.DelayFactor = 0.5 }},
		{"zero backbone min sharded", func(c *Config) { c.Shards = 4; c.Backbone.Min = 0 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("%s: config accepted", tc.name)
		}
	}
}
