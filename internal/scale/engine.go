// Package scale runs the paper's time-service protocol at planet scale on
// the sharded simulation kernel. Where internal/service builds real
// Server objects, a message network, and per-reply bookkeeping — the
// right fidelity for hundreds of servers — this engine specializes the
// same three rules into flat per-node arrays so that runs of 10^5 servers
// finish in seconds:
//
//   - MM-1: a node answers a request with <C_j(t), E_j(t)> where
//     E_j(t) = epsilon_j + (C_j(t) - r_j) * delta.
//   - IM-2: a requester transforms each reply into the offset interval
//     [C_j - E_j - C_i, C_j + E_j + (1+delta) xi - C_i], intersects
//     (including its own interval), and resets to the midpoint. The
//     intersection is maintained incrementally as replies arrive, aged by
//     the local clock's progress exactly as core.Server's Age machinery
//     ages a batched reply.
//   - MM-2: alternatively, a reply whose transit-charged error is at most
//     the requester's own causes an immediate adopt.
//
// The topology is the stratified hierarchy of simnet.BuildHierarchy:
// regions of clusters of full-mesh members, uplinks from cluster gateways
// to region hubs, and a hub-to-hub backbone. Sharded by region, only
// backbone messages cross shards, so the backbone's minimum delay is the
// kernel lookahead. Every stochastic choice draws from the choosing
// node's own stream, so results are byte-identical for every shard count
// (see internal/sim/shard).
//
// Chaos (falsetickers, loss, delay windows) and churn (leave/rejoin) are
// deterministic per-node functions of the same streams, giving the
// sharded kernel the same adversarial scenarios the chaos harness runs
// against the sequential service.
package scale

import (
	"fmt"
	"math"
	"math/rand/v2"

	"disttime/internal/obs"
	"disttime/internal/sim/shard"
)

// Rule selects the synchronization function.
type Rule int

const (
	// RuleIM is algorithm IM (intersect intervals, adopt the midpoint).
	RuleIM Rule = iota
	// RuleMM is algorithm MM (adopt a neighbor with smaller charged error).
	RuleMM
)

// Scenario selects the run's failure regime.
type Scenario int

const (
	// Plain is fault-free operation.
	Plain Scenario = iota
	// Chaos enables falsetickers, message loss, and a delay-spike window.
	Chaos
	// Churn makes nodes leave and rejoin the service.
	Churn
)

// Topology shapes the stratified hierarchy. Members is a full mesh per
// cluster; member 0 of each cluster is its gateway; cluster 0's gateway
// is the region hub. A 1x1xN topology is the paper's full mesh.
type Topology struct {
	Regions  int
	Clusters int // per region
	Members  int // per cluster
}

// Nodes returns the total node count.
func (t Topology) Nodes() int { return t.Regions * t.Clusters * t.Members }

// Band is a uniform delay band [Min, Max] in seconds.
type Band struct {
	Min float64
	Max float64
}

func (b Band) sample(u float64) float64 { return b.Min + u*(b.Max-b.Min) }

// Config configures an engine.
type Config struct {
	// Topo is the hierarchy shape. Required; Members >= 2.
	Topo Topology
	// Shards is the kernel partition count; clamped to the number of
	// partitionable units (regions; clusters in a single region; nodes in
	// a single mesh). Never changes results.
	Shards int
	// Seed roots every per-node stream.
	Seed uint64
	// Tau is the synchronization period in seconds. Required > 0.
	Tau float64
	// K is how many cluster peers each node samples per round; 0 means
	// all cluster peers (the full-mesh protocol of the theorems).
	K int
	// Delta is the common claimed drift bound.
	Delta float64
	// DriftMax bounds the actual drift rates, drawn i.i.d. uniform in
	// [-DriftMax, DriftMax] (Theorem 8's setting when < Delta).
	DriftMax float64
	// InitialError is every node's starting inherited error; initial
	// clock offsets are drawn uniform within it, so the claim is honest.
	InitialError float64
	// Member, Uplink, and Backbone are the three tiers' delay bands.
	// Positive minima are what make partitions safely shardable.
	Member, Uplink, Backbone Band
	// Rule selects IM or MM.
	Rule Rule
	// Scenario selects Plain, Chaos, or Churn.
	Scenario Scenario

	// FalsetickerFrac is the fraction of nodes (Chaos) whose true drift
	// violates the claimed bound.
	FalsetickerFrac float64
	// FalsetickerBoost multiplies Delta for a falseticker's true rate
	// (default 6).
	FalsetickerBoost float64
	// Loss is the per-message drop probability (Chaos).
	Loss float64
	// DelayFactor >= 1 stretches all delays during [DelayFrom,
	// DelayUntil) (Chaos). Zero means no spike.
	DelayFactor          float64
	DelayFrom, DelayUntil float64

	// LeaveProb is the per-round probability a node goes down (Churn).
	LeaveProb float64
	// DownFor is how long a departed node stays down (default 3*Tau).
	DownFor float64
}

// Event kinds.
const (
	kSync uint16 = iota + 1 // periodic round start on a node
	kRequest                // time request delivery
	kReply                  // time reply delivery; A = C_j, B = E_j
	kClose                  // round close: apply IM's intersection
	kRejoin                 // churn: node comes back up
)

// Engine is a running scale simulation. All per-node state lives in flat
// arrays indexed by node id; an event's handler touches only its own
// node's entries, which is what makes windowed parallel execution safe.
type Engine struct {
	cfg Config
	k   *shard.Kernel
	n   int

	// Clock and rule MM-1 bookkeeping. C_i(t) = off + (1+rate)*t.
	off, rate     []float64
	eps, resetRef []float64

	// Per-round IM state: the running offset intersection [a, b] relative
	// to the requester's clock reading lastC, and the replies used.
	a, b, lastC []float64
	reqC        []float64
	used        []int32
	round       []uint32

	down    []bool
	resets  []uint32
	incons  []uint32

	obsResets *obs.Counter
	obsIncons *obs.Counter
}

// New builds an engine at virtual time zero with every node's first round
// scheduled at a deterministic phase within the first period.
func New(cfg Config) (*Engine, error) {
	t := cfg.Topo
	if t.Regions <= 0 || t.Clusters <= 0 || t.Members < 2 {
		return nil, fmt.Errorf("scale: topology %dx%dx%d needs positive tiers and >= 2 members",
			t.Regions, t.Clusters, t.Members)
	}
	if !(cfg.Tau > 0) {
		return nil, fmt.Errorf("scale: non-positive tau %v", cfg.Tau)
	}
	if cfg.Delta < 0 || cfg.DriftMax < 0 || cfg.InitialError < 0 {
		return nil, fmt.Errorf("scale: negative delta/drift/error")
	}
	if cfg.Loss < 0 || cfg.Loss >= 1 || cfg.FalsetickerFrac < 0 || cfg.FalsetickerFrac > 1 ||
		cfg.LeaveProb < 0 || cfg.LeaveProb >= 1 {
		return nil, fmt.Errorf("scale: probability out of range")
	}
	if cfg.DelayFactor < 0 || (cfg.DelayFactor > 0 && cfg.DelayFactor < 1) {
		return nil, fmt.Errorf("scale: delay factor %v would shrink delays below the lookahead", cfg.DelayFactor)
	}
	if cfg.FalsetickerBoost <= 0 {
		cfg.FalsetickerBoost = 6
	}
	if cfg.DownFor <= 0 {
		cfg.DownFor = 3 * cfg.Tau
	}
	n := t.Nodes()
	e := &Engine{
		cfg: cfg, n: n,
		off: make([]float64, n), rate: make([]float64, n),
		eps: make([]float64, n), resetRef: make([]float64, n),
		a: make([]float64, n), b: make([]float64, n), lastC: make([]float64, n),
		reqC: make([]float64, n), used: make([]int32, n), round: make([]uint32, n),
		down: make([]bool, n), resets: make([]uint32, n), incons: make([]uint32, n),
	}

	shards, shardOf, lookahead, err := e.partition(cfg)
	if err != nil {
		return nil, err
	}
	e.k, err = shard.New(shard.Config{
		Nodes: n, Shards: shards, Seed: cfg.Seed,
		Lookahead: lookahead, ShardOf: shardOf, Handler: e,
	})
	if err != nil {
		return nil, err
	}

	// Node state init is sequential and shard-independent: one dedicated
	// stream, consumed in node order.
	init := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xa5a5a5a5a5a5a5a5))
	for i := 0; i < n; i++ {
		r := (2*init.Float64() - 1) * cfg.DriftMax
		if cfg.Scenario == Chaos && init.Float64() < cfg.FalsetickerFrac {
			boosted := cfg.Delta * cfg.FalsetickerBoost
			if r < 0 {
				r = -boosted
			} else {
				r = boosted
			}
		}
		e.rate[i] = r
		// Inherited error is "however the clock was first set": drawn per
		// node in (0.2, 1] of InitialError, with the true offset inside
		// it, so every initial claim is honest and errors are
		// heterogeneous (without which rule MM-2's adopt-if-smaller has
		// nothing to adopt).
		e0 := cfg.InitialError * (0.2 + 0.8*init.Float64())
		e.off[i] = (2*init.Float64() - 1) * e0
		e.eps[i] = e0
		e.resetRef[i] = e.off[i] // clock value at t=0
		phase := cfg.Tau * init.Float64()
		e.k.Seed(int32(i), phase, kSync, 0, 0, 0)
	}
	return e, nil
}

// partition picks the shard count, node-to-shard map, and lookahead for
// the topology: regions are the partition unit when there are several
// (backbone-only cross traffic), clusters within a single region (uplink
// cross traffic), and plain node blocks for a single full mesh.
func (e *Engine) partition(cfg Config) (int, func(int32) int32, float64, error) {
	t := cfg.Topo
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	var units int
	var unitOf func(int32) int
	var min float64
	switch {
	case t.Regions > 1:
		units, min = t.Regions, cfg.Backbone.Min
		per := t.Clusters * t.Members
		unitOf = func(node int32) int { return int(node) / per }
	case t.Clusters > 1:
		units, min = t.Clusters, cfg.Uplink.Min
		unitOf = func(node int32) int { return int(node) / t.Members }
	default:
		units, min = t.Members, cfg.Member.Min
		unitOf = func(node int32) int { return int(node) }
	}
	if shards > units {
		shards = units
	}
	if shards > 1 && !(min > 0) {
		return 0, nil, 0, fmt.Errorf("scale: %d shards need a positive minimum cross-shard delay", shards)
	}
	s := shards
	shardOf := func(node int32) int32 { return int32(unitOf(node) * s / units) }
	return shards, shardOf, min, nil
}

// Close releases the kernel's worker pool.
func (e *Engine) Close() { e.k.Close() }

// Observe registers the kernel's window/merge metrics plus the engine's
// reset and inconsistency counters in reg.
func (e *Engine) Observe(reg *obs.Registry) {
	e.k.Observe(reg)
	e.obsResets = reg.Counter("scale_resets_total")
	e.obsIncons = reg.Counter("scale_inconsistent_total")
}

// Shards returns the kernel's effective shard count.
func (e *Engine) Shards() int { return e.k.Shards() }

// Steps returns the total events executed.
func (e *Engine) Steps() uint64 { return e.k.Steps() }

// Nodes returns the node count.
func (e *Engine) Nodes() int { return e.n }

// Run advances the simulation to virtual time until.
func (e *Engine) Run(until float64) { e.k.Run(until) }

// --- topology arithmetic (ids are (region, cluster, member) in row-major
// order, so every role is a pure function of the id) ---

func (e *Engine) clusterBase(i int32) int32 { return i - i%int32(e.cfg.Topo.Members) }
func (e *Engine) isGateway(i int32) bool    { return i%int32(e.cfg.Topo.Members) == 0 }
func (e *Engine) isHub(i int32) bool {
	per := int32(e.cfg.Topo.Clusters * e.cfg.Topo.Members)
	return i%per == 0
}
func (e *Engine) hubOf(i int32) int32 {
	per := int32(e.cfg.Topo.Clusters * e.cfg.Topo.Members)
	return i - i%per
}

// delay draws the one-way delay from src's stream for a message to dst,
// applying the chaos delay window.
func (e *Engine) delay(p *shard.Proc, src, dst int32, now float64) float64 {
	var band Band
	switch {
	case e.clusterBase(src) == e.clusterBase(dst):
		band = e.cfg.Member
	case e.hubOf(src) == e.hubOf(dst):
		band = e.cfg.Uplink
	default:
		band = e.cfg.Backbone
	}
	d := band.sample(p.Float64(src))
	if e.cfg.Scenario == Chaos && e.cfg.DelayFactor > 1 &&
		now >= e.cfg.DelayFrom && now < e.cfg.DelayUntil {
		d *= e.cfg.DelayFactor
	}
	return d
}

// lost draws the chaos loss gate from the sender's stream. The draw is
// unconditional under Chaos so stream positions do not depend on payload.
func (e *Engine) lost(p *shard.Proc, src int32) bool {
	if e.cfg.Scenario != Chaos || e.cfg.Loss <= 0 {
		return false
	}
	return p.Float64(src) < e.cfg.Loss
}

// --- rule MM-1 primitives ---

func (e *Engine) read(i int32, t float64) float64 {
	return e.off[i] + (1+e.rate[i])*t
}

func (e *Engine) errAt(i int32, t float64) float64 {
	el := e.read(i, t) - e.resetRef[i]
	if el < 0 {
		el = 0
	}
	return e.eps[i] + el*e.cfg.Delta
}

func (e *Engine) setClock(i int32, t, c, err float64) {
	e.off[i] = c - (1+e.rate[i])*t
	e.eps[i] = err
	e.resetRef[i] = c
	e.resets[i]++
	e.obsResets.Inc()
}

// Event dispatches one kernel event. Requests and replies carry the
// round in Tag; replies carry the responder's reading in (A, B).
func (e *Engine) Event(p *shard.Proc, ev shard.Ev) {
	switch ev.Kind {
	case kSync:
		e.sync(p, ev.Node)
	case kRequest:
		e.request(p, ev.Node, ev.From, ev.Tag)
	case kReply:
		e.reply(p, ev.Node, ev.From, ev.Tag, ev.A, ev.B)
	case kClose:
		e.close(p, ev.Node, ev.Tag)
	case kRejoin:
		e.down[ev.Node] = false
	default:
		panic(fmt.Sprintf("scale: unknown event kind %d", ev.Kind))
	}
}

// sync starts node i's round: churn decision, then the request broadcast
// to its sampled cluster peers plus its role links (gateway -> hub,
// hub -> other hubs), then the close timer and the next round's timer.
func (e *Engine) sync(p *shard.Proc, i int32) {
	t := p.Now()
	p.After(i, e.cfg.Tau, kSync, 0, 0, 0)
	if e.cfg.Scenario == Churn {
		// Unconditional draw: stream position must not depend on state.
		leave := p.Float64(i) < e.cfg.LeaveProb
		if !e.down[i] && leave {
			e.down[i] = true
			p.After(i, e.cfg.DownFor, kRejoin, 0, 0, 0)
		}
	}
	if e.down[i] {
		return
	}

	ci := e.read(i, t)
	ei := e.errAt(i, t)
	e.round[i]++
	tag := e.round[i]
	e.reqC[i] = ci
	e.a[i], e.b[i] = -ei, ei // rule IM-2 intersects the own interval too
	e.lastC[i] = ci
	e.used[i] = 0

	m := int32(e.cfg.Topo.Members)
	base := e.clusterBase(i)
	if k := int32(e.cfg.K); k <= 0 || k >= m-1 {
		for j := base; j < base+m; j++ {
			if j != i {
				e.ask(p, i, j, tag, t)
			}
		}
	} else {
		for q := int32(0); q < k; q++ {
			j := base + int32(p.Uint64(i)%uint64(m))
			if j == i {
				j = base + (j-base+1)%m
			}
			e.ask(p, i, j, tag, t)
		}
	}
	if e.isHub(i) {
		per := int32(e.cfg.Topo.Clusters * e.cfg.Topo.Members)
		for r := int32(0); r < int32(e.cfg.Topo.Regions); r++ {
			if hub := r * per; hub != i {
				e.ask(p, i, hub, tag, t)
			}
		}
	} else if e.isGateway(i) {
		e.ask(p, i, e.hubOf(i), tag, t)
	}
	p.After(i, e.cfg.Tau/2, kClose, tag, 0, 0)
}

// ask sends one time request from i to j.
func (e *Engine) ask(p *shard.Proc, i, j int32, tag uint32, t float64) {
	d := e.delay(p, i, j, t)
	if e.lost(p, i) {
		return
	}
	p.Send(i, j, d, kRequest, tag, 0, 0)
}

// request answers a time request at node j per rule MM-1.
func (e *Engine) request(p *shard.Proc, j, from int32, tag uint32) {
	if e.down[j] {
		return
	}
	t := p.Now()
	d := e.delay(p, j, from, t)
	if e.lost(p, j) {
		return
	}
	p.Send(j, from, d, kReply, tag, e.read(j, t), e.errAt(j, t))
}

// reply processes a reply <cj, ej> arriving at node i: the transit charge
// (1+delta)*xi on the leading edge, the consistency check of rule MM-2,
// and then either MM's adopt-if-smaller or IM's incremental intersection.
func (e *Engine) reply(p *shard.Proc, i, from int32, tag uint32, cj, ej float64) {
	if e.down[i] || tag != e.round[i] {
		return
	}
	t := p.Now()
	ci := e.read(i, t)
	rtt := ci - e.reqC[i]
	if rtt < 0 {
		rtt = 0
	}
	trail := ej
	lead := ej + (1+e.cfg.Delta)*rtt
	lo := cj - trail - ci
	hi := cj + lead - ci
	ei := e.errAt(i, t)
	if lo > ei || hi < -ei {
		// Disjoint from the own interval: at least one of the two servers
		// is incorrect; the reply is ignored (MM-2's rule, IM's
		// DropInconsistent pre-filter).
		e.incons[i]++
		e.obsIncons.Inc()
		return
	}
	switch e.cfg.Rule {
	case RuleMM:
		if lead <= ei {
			e.setClock(i, t, cj, lead)
		}
	case RuleIM:
		// Age the running intersection by the local clock's progress
		// since the last contribution (core.Server's Age machinery,
		// applied incrementally): offsets keep their reference at the
		// current reading, widening by delta per elapsed clock-second.
		dc := ci - e.lastC[i]
		if dc < 0 {
			dc = 0
		}
		e.a[i] -= e.cfg.Delta * dc
		e.b[i] += e.cfg.Delta * dc
		e.lastC[i] = ci
		if lo > e.a[i] {
			e.a[i] = lo
		}
		if hi < e.b[i] {
			e.b[i] = hi
		}
		e.used[i]++
	}
}

// close ends node i's round: under IM a non-empty intersection resets the
// clock to its midpoint with the half-width as the inherited error
// (rule IM-2); an empty one marks the service inconsistent.
func (e *Engine) close(p *shard.Proc, i int32, tag uint32) {
	if e.down[i] || tag != e.round[i] || e.cfg.Rule != RuleIM || e.used[i] == 0 {
		return
	}
	t := p.Now()
	ci := e.read(i, t)
	dc := ci - e.lastC[i]
	if dc < 0 {
		dc = 0
	}
	aa := e.a[i] - e.cfg.Delta*dc
	bb := e.b[i] + e.cfg.Delta*dc
	if bb < aa {
		e.incons[i]++
		e.obsIncons.Inc()
		return
	}
	e.setClock(i, t, ci+(aa+bb)/2, (bb-aa)/2)
}

// --- sampling ---

// MeanError returns the mean reported maximum error E_i(t) over all
// nodes at virtual time t (which must be the engine's current time).
func (e *Engine) MeanError(t float64) float64 {
	var sum float64
	for i := 0; i < e.n; i++ {
		sum += e.errAt(int32(i), t)
	}
	return sum / float64(e.n)
}

// MeanAbsOffset returns the mean |C_i(t) - t| over all nodes.
func (e *Engine) MeanAbsOffset(t float64) float64 {
	var sum float64
	for i := 0; i < e.n; i++ {
		sum += math.Abs(e.read(int32(i), t) - t)
	}
	return sum / float64(e.n)
}

// TierSkew is the mean true offset |C - t| per hierarchy tier — the
// skew-vs-distance gradient of a stratified service: hubs sit on the
// backbone, gateways one uplink away, members one cluster hop further.
type TierSkew struct {
	Hub, Gateway, Member float64
}

// Skew returns the per-tier mean |C_i(t) - t|.
func (e *Engine) Skew(t float64) TierSkew {
	var sums [3]float64
	var counts [3]int
	for i := 0; i < e.n; i++ {
		id := int32(i)
		tier := 2
		if e.isHub(id) {
			tier = 0
		} else if e.isGateway(id) {
			tier = 1
		}
		sums[tier] += math.Abs(e.read(id, t) - t)
		counts[tier]++
	}
	out := TierSkew{}
	if counts[0] > 0 {
		out.Hub = sums[0] / float64(counts[0])
	}
	if counts[1] > 0 {
		out.Gateway = sums[1] / float64(counts[1])
	}
	if counts[2] > 0 {
		out.Member = sums[2] / float64(counts[2])
	}
	return out
}

// ErrorByTier returns the per-tier mean reported error E_i(t). Unlike
// the true skew — noisy when a tier holds few nodes — the reported
// error is pinned by the delay bound xi of the links each tier
// synchronizes over (Theorems 2 and 8), so its gradient across tiers is
// a stable property of the topology, not of the seed.
func (e *Engine) ErrorByTier(t float64) TierSkew {
	var sums [3]float64
	var counts [3]int
	for i := 0; i < e.n; i++ {
		id := int32(i)
		tier := 2
		if e.isHub(id) {
			tier = 0
		} else if e.isGateway(id) {
			tier = 1
		}
		sums[tier] += e.errAt(id, t)
		counts[tier]++
	}
	out := TierSkew{}
	if counts[0] > 0 {
		out.Hub = sums[0] / float64(counts[0])
	}
	if counts[1] > 0 {
		out.Gateway = sums[1] / float64(counts[1])
	}
	if counts[2] > 0 {
		out.Member = sums[2] / float64(counts[2])
	}
	return out
}

// Resets returns the total clock resets across all nodes.
func (e *Engine) Resets() uint64 {
	var n uint64
	for _, r := range e.resets {
		n += uint64(r)
	}
	return n
}

// Inconsistencies returns the total inconsistent observations.
func (e *Engine) Inconsistencies() uint64 {
	var n uint64
	for _, r := range e.incons {
		n += uint64(r)
	}
	return n
}

// Fingerprint folds every node's full state into one digest. Two runs
// with equal fingerprints walked through byte-identical final states —
// the determinism matrix test compares these across shard counts.
func (e *Engine) Fingerprint() string {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	for i := 0; i < e.n; i++ {
		mix(math.Float64bits(e.off[i]))
		mix(math.Float64bits(e.eps[i]))
		mix(math.Float64bits(e.resetRef[i]))
		mix(math.Float64bits(e.a[i]))
		mix(math.Float64bits(e.b[i]))
		mix(uint64(e.round[i]))
		mix(uint64(e.used[i]))
		mix(uint64(e.resets[i]))
		mix(uint64(e.incons[i]))
		if e.down[i] {
			mix(1)
		}
	}
	return fmt.Sprintf("%016x", h)
}

