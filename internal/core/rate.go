package core

import (
	"math"

	"disttime/internal/interval"
)

// This file implements the Section 5 machinery: when a service becomes
// inconsistent "the rates of the servers must be examined in order to
// determine how to recover". Two clocks are consonant at t0 if their rate
// of separation is within the sum of their claimed maximum drift rates:
//
//	| d/dt (C_i(t) - C_j(t)) | <= delta_i + delta_j
//
// A rate interval plays the role the time interval plays in algorithms MM
// and IM; intersecting the rate constraints contributed by a set of
// neighbors bounds the local clock's own true drift and exposes invalid
// claimed bounds.

// RateSample is one observation of a neighbor's clock against the local
// clock: the local reading when the reply arrived, the remote reading it
// carried, and the measured round trip.
type RateSample struct {
	// Local is C_i at the arrival of the reply.
	Local float64
	// Remote is C_j carried by the reply.
	Remote float64
	// RTT is the round trip measured on the local clock (xi^i_j), which
	// bounds how stale the remote reading is.
	RTT float64
}

// RateEstimate bounds a neighbor's rate of separation
// d(C_j - C_i)/dC_i over an observation span.
type RateEstimate struct {
	// Rate is the estimated separation rate (dimensionless; 0 means the
	// clocks run at the same speed).
	Rate float64
	// Err is the half-width of the rate interval: the estimate's
	// uncertainty from message-delay ambiguity.
	Err float64
	// Span is the local clock time separating the two samples used.
	Span float64
	// Valid is false until two samples with positive span exist.
	Valid bool
}

// Interval returns the rate interval [Rate-Err, Rate+Err].
func (e RateEstimate) Interval() interval.Interval {
	return interval.FromEstimate(e.Rate, e.Err)
}

// ConsonantWith reports whether the estimate is compatible with both
// clocks honoring their claimed bounds deltaI and deltaJ: some rate in the
// estimate's interval must satisfy |rate| <= deltaI + deltaJ.
func (e RateEstimate) ConsonantWith(deltaI, deltaJ float64) bool {
	if !e.Valid {
		return true // no evidence of dissonance
	}
	bound := deltaI + deltaJ
	return interval.Consistent(e.Interval(), interval.Interval{Lo: -bound, Hi: bound})
}

// RateTracker estimates separation rates per neighbor from the first and
// most recent samples since the last reset. Estimates are only meaningful
// between clock resets — a reset is a discontinuity in C, not a rate — so
// the tracker must be Reset whenever either clock involved is set.
type RateTracker struct {
	first map[int]RateSample
	last  map[int]RateSample
}

// NewRateTracker returns an empty tracker.
func NewRateTracker() *RateTracker {
	return &RateTracker{
		first: make(map[int]RateSample),
		last:  make(map[int]RateSample),
	}
}

// Observe records a sample for the given neighbor. Samples must be
// observed in increasing Local order.
func (rt *RateTracker) Observe(from int, s RateSample) {
	if _, ok := rt.first[from]; !ok {
		rt.first[from] = s
		return
	}
	rt.last[from] = s
}

// Reset forgets the samples for one neighbor (call when that neighbor's
// clock reset).
func (rt *RateTracker) Reset(from int) {
	delete(rt.first, from)
	delete(rt.last, from)
}

// ResetAll forgets every sample (call when the local clock reset).
func (rt *RateTracker) ResetAll() {
	rt.first = make(map[int]RateSample)
	rt.last = make(map[int]RateSample)
}

// ShiftLocal translates every stored sample's local reading by d. When
// the local clock is reset by a jump of d (same oscillator, new value),
// the local timeline merely shifts; shifting the samples keeps the rate
// estimates continuous across the reset instead of discarding them —
// the bookkeeping that makes Section 5's rate maintenance practical in a
// service whose servers reset every round.
func (rt *RateTracker) ShiftLocal(d float64) {
	for k, s := range rt.first {
		s.Local += d
		rt.first[k] = s
	}
	for k, s := range rt.last {
		s.Local += d
		rt.last[k] = s
	}
}

// Estimate returns the current rate estimate for a neighbor.
//
// With samples (l1, r1) and (l2, r2) the separation rate is
// ((r2-r1) - (l2-l1)) / (l2-l1); each remote reading is stale by an
// unknown share of its round trip, so the offset uncertainty per sample is
// its RTT and the rate uncertainty is (RTT1 + RTT2) / span.
func (rt *RateTracker) Estimate(from int) RateEstimate {
	a, okA := rt.first[from]
	b, okB := rt.last[from]
	if !okA || !okB {
		return RateEstimate{}
	}
	span := b.Local - a.Local
	if span <= 0 {
		return RateEstimate{}
	}
	return RateEstimate{
		Rate:  ((b.Remote - a.Remote) - span) / span,
		Err:   (a.RTT + b.RTT) / span,
		Span:  span,
		Valid: true,
	}
}

// OwnDriftConstraint converts a neighbor's rate estimate into a bound on
// the local clock's own drift. If the neighbor honors |drift_j| <= deltaJ
// and the observed separation rate is Rate±Err, the local drift offset
// must lie in
//
//	[-deltaJ - Rate - Err,  deltaJ - Rate + Err].
func OwnDriftConstraint(e RateEstimate, deltaJ float64) interval.Interval {
	return interval.Interval{
		Lo: -deltaJ - e.Rate - e.Err,
		Hi: deltaJ - e.Rate + e.Err,
	}
}

// EstimateOwnDrift applies the intersection function to rates: it
// intersects the drift constraints contributed by each valid neighbor
// estimate (paired with that neighbor's claimed bound). The boolean result
// is false when the constraints are mutually inconsistent, which proves at
// least one claimed bound invalid; the zero-value interval accompanies it.
// With no valid estimates it returns the vacuous constraint (-1, 1).
func EstimateOwnDrift(estimates []RateEstimate, deltas []float64) (interval.Interval, bool) {
	out := interval.Interval{Lo: -1, Hi: 1}
	for i, e := range estimates {
		if !e.Valid {
			continue
		}
		deltaJ := 0.0
		if i < len(deltas) {
			deltaJ = deltas[i]
		}
		var ok bool
		if out, ok = out.Intersect(OwnDriftConstraint(e, deltaJ)); !ok {
			return interval.Interval{}, false
		}
	}
	return out, true
}

// SuspectInvalidBound reports whether the local server's own claimed bound
// delta is impossible given the intersected drift constraint: the
// constraint interval lies entirely outside [-delta, delta].
func SuspectInvalidBound(constraint interval.Interval, delta float64) bool {
	return !interval.Consistent(constraint, interval.Interval{Lo: -delta, Hi: delta})
}

// DissonantPairs returns the pairs (i, j), i < j, whose rate estimate is
// not consonant with the claimed bounds. estimates[i][j] must hold the
// estimate of j's clock against i's; entries may be zero-valued
// (invalid). A non-empty result proves that at least one server of each
// listed pair holds an invalid drift bound.
func DissonantPairs(estimates [][]RateEstimate, deltas []float64) [][2]int {
	var out [][2]int
	for i := range estimates {
		for j := range estimates[i] {
			if j <= i {
				continue
			}
			if !estimates[i][j].ConsonantWith(deltas[i], deltas[j]) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// MaxSeparationRate returns the largest absolute separation rate among
// valid estimates, a scalar summary used by experiments.
func MaxSeparationRate(estimates []RateEstimate) float64 {
	max := 0.0
	for _, e := range estimates {
		if e.Valid {
			max = math.Max(max, math.Abs(e.Rate))
		}
	}
	return max
}
