// Package core implements the paper's primary contribution: the time-server
// state machine and the two synchronization functions of Marzullo & Owicki,
// "Maintaining the Time in a Distributed System" (Stanford CSL TR 83-247,
// PODC 1983).
//
// A time server S_i maintains (rule MM-1) a clock C_i, the clock value r_i
// at its last reset, an inherited error epsilon_i, and a claimed bound
// delta_i on its drift rate. When asked the time at real time t it answers
// with the pair
//
//	<C_i(t), E_i(t)>,   E_i(t) = epsilon_i + (C_i(t) - r_i) * delta_i
//
// denoting the interval [C_i - E_i, C_i + E_i] that contains the correct
// time while delta_i is a valid bound (Theorem 1).
//
// Two synchronization functions update the clock from a set of replies:
//
//   - Algorithm MM (Section 3) adopts the neighbor whose reply, charged
//     with transit error, has a smaller maximum error than the server's own
//     (rule MM-2). The service's long-term error growth tracks its most
//     accurate clock (Theorems 2-4), but synchronization is loose
//     (Theorem 3).
//   - Algorithm IM (Section 4) intersects every reply interval with the
//     server's own and adopts the midpoint of the intersection (rule IM-2).
//     The derived interval is at least as small as the smallest input
//     (Theorem 6), asynchronism is tight (Theorem 7), and with many servers
//     the expected error growth vanishes (Theorem 8).
//
// The package also implements the Section 3 recovery heuristic (reset from
// a third server upon inconsistency), the Section 5 consonance machinery
// (rate intervals), and the baseline synchronization functions the paper
// compares against (Lamport's maximum, the median, and the mean).
package core

import (
	"fmt"
	"math"

	"disttime/internal/clock"
	"disttime/internal/interval"
)

// Reading is a time server's answer to a time request: the pair <C, E> of
// rule MM-1.
type Reading struct {
	// C is the server's clock value.
	C float64
	// E is the server's maximum error at the moment of reading.
	E float64
	// Delta is the server's claimed maximum drift rate. Exchanging the
	// claimed bounds is what lets neighbors check consonance (Section 5):
	// two clocks separating faster than Delta_i + Delta_j prove a bound
	// invalid.
	Delta float64
}

// Interval returns the real-time interval [C-E, C+E] the reading denotes.
func (r Reading) Interval() interval.Interval { return interval.FromEstimate(r.C, r.E) }

// Reply is a remote server's reading as observed by a requester, together
// with the round-trip delay the requester measured on its own clock (the
// paper's xi^i_j). Replies are the input to every synchronization function.
type Reply struct {
	// From identifies the responding server.
	From int
	// C and E are the responder's reading.
	C float64
	E float64
	// RTT is the round-trip delay measured on the requester's clock
	// between sending the request and receiving this reply (xi^i_j).
	RTT float64
	// Age is the local clock time elapsed between this reply's arrival
	// and the synchronization pass that consumes it. The paper's rules
	// apply each reply at its arrival (Age = 0); a service that collects
	// a batch before synchronizing sets Age so the reply can be
	// translated to the sync instant: the remote estimate advances with
	// the local clock and accrues delta*Age of extra drift allowance.
	Age float64
	// Delta is the responder's claimed drift bound, used for consonance
	// checks (zero when the responder does not advertise one).
	Delta float64
}

// Server is one time server's synchronization state.
type Server struct {
	id    int
	clk   clock.Clock
	delta float64

	epsilon  float64 // inherited error (epsilon_i)
	resetRef float64 // clock value at last reset (r_i)

	resets       int
	inconsistent int
}

// Config configures a new server.
type Config struct {
	// ID is the server's identity, echoed in its replies.
	ID int
	// Clock is the underlying hardware clock. Required.
	Clock clock.Clock
	// Delta is the claimed upper bound on the clock's drift rate. The
	// algorithms preserve correctness only when it is valid (Theorems 1
	// and 5); the recovery experiments deliberately violate it. Must be
	// non-negative.
	Delta float64
	// InitialError is the error the server starts with (the error
	// inherited from however the clock was first set).
	InitialError float64
}

// NewServer returns a server whose bookkeeping starts at real time t.
func NewServer(t float64, cfg Config) (*Server, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("core: server %d: nil clock", cfg.ID)
	}
	if cfg.Delta < 0 {
		return nil, fmt.Errorf("core: server %d: negative delta %v", cfg.ID, cfg.Delta)
	}
	if cfg.InitialError < 0 {
		return nil, fmt.Errorf("core: server %d: negative initial error %v", cfg.ID, cfg.InitialError)
	}
	return &Server{
		id:       cfg.ID,
		clk:      cfg.Clock,
		delta:    cfg.Delta,
		epsilon:  cfg.InitialError,
		resetRef: cfg.Clock.Read(t),
	}, nil
}

// ID returns the server's identity.
func (s *Server) ID() int { return s.id }

// Delta returns the claimed drift bound.
func (s *Server) Delta() float64 { return s.delta }

// Epsilon returns the currently inherited error.
func (s *Server) Epsilon() float64 { return s.epsilon }

// Clock returns the underlying clock.
func (s *Server) Clock() clock.Clock { return s.clk }

// Resets returns how many times the server has reset its clock.
func (s *Server) Resets() int { return s.resets }

// Inconsistencies returns how many replies the server has found
// inconsistent with its own interval.
func (s *Server) Inconsistencies() int { return s.inconsistent }

// Read returns the server's clock value at real time t.
func (s *Server) Read(t float64) float64 { return s.clk.Read(t) }

// pendingCorrector is implemented by clocks (e.g. clock.Slewing) whose
// displayed value deliberately lags a scheduled correction; the remainder
// must be charged to the server's reported error or rule MM-1's interval
// would lie.
type pendingCorrector interface {
	PendingCorrection() float64
}

// ErrorAt returns the server's maximum error at real time t per rule MM-1:
// the inherited error plus deterioration delta per clock-second since the
// last reset. If a fault moved the clock behind its reset reference the
// deterioration term is clamped at zero; error never shrinks by drift. A
// slewing clock's unabsorbed correction is added in full.
func (s *Server) ErrorAt(t float64) float64 {
	elapsed := s.clk.Read(t) - s.resetRef
	if elapsed < 0 {
		elapsed = 0
	}
	e := s.epsilon + elapsed*s.delta
	if p, ok := s.clk.(pendingCorrector); ok {
		e += math.Abs(p.PendingCorrection())
	}
	return e
}

// Reading answers a time request at real time t (rule MM-1).
func (s *Server) Reading(t float64) Reading {
	return Reading{C: s.clk.Read(t), E: s.ErrorAt(t), Delta: s.delta}
}

// Interval returns the server's current time interval [C-E, C+E].
func (s *Server) Interval(t float64) interval.Interval {
	return s.Reading(t).Interval()
}

// effective translates a reply to the sync instant. It returns the remote
// clock estimate advanced by the local clock time since arrival, the
// trailing-edge error, and the leading-edge error:
//
//	c     = C_j + Age
//	trail = E_j + delta_i*Age
//	lead  = E_j + (1+delta_i)*xi^i_j + delta_i*Age
//
// With Age = 0 these are exactly the paper's quantities: the transit
// charge (1+delta_i)*xi^i_j on the leading edge (rule IM-2's transform,
// and MM-2's error adjustment) and the raw reading on the trailing edge.
func (s *Server) effective(r Reply) (c, trail, lead float64) {
	age := r.Age
	if age < 0 {
		age = 0
	}
	drift := s.delta * age
	c = r.C + age
	trail = r.E + drift
	lead = r.E + (1+s.delta)*r.RTT + drift
	return c, trail, lead
}

// transitError is the error charged when adopting a reply's clock: the
// leading-edge error (E_j + (1+delta_i)*xi^i_j for a fresh reply).
func (s *Server) transitError(r Reply) float64 {
	_, _, lead := s.effective(r)
	return lead
}

// replyInterval is the reply's interval as the requester must treat it at
// the sync instant: [c - trail, c + lead].
func (s *Server) replyInterval(r Reply) interval.Interval {
	c, trail, lead := s.effective(r)
	return interval.Interval{Lo: c - trail, Hi: c + lead}
}

// ConsistentWith reports whether the reply is consistent with the server's
// own interval at real time t, after transit adjustment. Inconsistent
// replies are ignored by rule MM-2 ("any reply that is inconsistent with
// S_i is ignored") and signal that at least one of the two servers is
// incorrect.
func (s *Server) ConsistentWith(t float64, r Reply) bool {
	return interval.Consistent(s.Interval(t), s.replyInterval(r))
}

// SetClock resets the server's clock and bookkeeping to value with
// inherited error err at real time t. This is the primitive every
// synchronization rule reduces to; it is exported for the recovery policy
// and for constructing experiment states.
func (s *Server) SetClock(t, value, err float64) {
	s.clk.Set(t, value)
	// A stuck clock may refuse the set (Section 1.1); bookkeeping must
	// follow the clock's actual value or the error accounting would lie.
	actual := s.clk.Read(t)
	s.epsilon = err
	s.resetRef = actual
	s.resets++
}

// RaiseDelta increases the server's claimed drift bound to newDelta at
// real time t, repairing the bookkeeping: deterioration since the last
// reset was charged at the old (invalid) bound, so the difference is
// added to the inherited error. If the clock value adopted at the last
// reset was correct, the repaired interval is correct again — this is how
// a server whose bound is exposed as invalid (Section 5) rejoins the
// service as an honest, if poor, citizen. Lowering the bound is refused:
// a smaller claim can never be justified by observation alone.
func (s *Server) RaiseDelta(t, newDelta float64) error {
	if newDelta < s.delta {
		return fmt.Errorf("core: server %d: cannot lower delta %v -> %v", s.id, s.delta, newDelta)
	}
	elapsed := s.clk.Read(t) - s.resetRef
	if elapsed < 0 {
		elapsed = 0
	}
	s.epsilon += elapsed * (newDelta - s.delta)
	s.delta = newDelta
	return nil
}

// Adopt resets the server from an arbitrary reply, unconditionally, with
// the usual transit charge (epsilon <- E_j + (1+delta_i) xi^i_j,
// C_i <- C_j, r_i <- C_j). It is the primitive of the Section 3 recovery
// heuristic: a server that finds itself inconsistent with a neighbor
// "resets to the value of any third server".
func (s *Server) Adopt(t float64, r Reply) {
	c, _, lead := s.effective(r)
	s.SetClock(t, c, lead)
}

// noteInconsistent counts an ignored, inconsistent reply.
func (s *Server) noteInconsistent() { s.inconsistent++ }
