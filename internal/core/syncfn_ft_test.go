package core

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestTrimmedMeanDiscardsExtremes(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 30)
	res := TrimmedMean{F: 1}.Sync(s, 0, []Reply{
		{From: 2, C: 80, E: 1}, // low extreme, discarded
		{From: 3, C: 99, E: 2},
		{From: 4, C: 101, E: 2},
		{From: 5, C: 120, E: 1}, // high extreme, discarded
	})
	if !res.Reset {
		t.Fatal("no reset")
	}
	// Kept: 99, 100 (self), 101 -> mean 100.
	if got := s.Read(0); got != 100 {
		t.Errorf("clock = %v, want 100", got)
	}
	if res.Accepted != 3 {
		t.Errorf("Accepted = %d, want 3", res.Accepted)
	}
}

func TestTrimmedMeanTooFewCandidates(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 10)
	res := TrimmedMean{F: 2}.Sync(s, 0, []Reply{
		{From: 2, C: 101, E: 1},
		{From: 3, C: 99, E: 1},
	})
	if res.Reset {
		t.Error("reset with fewer than 2F+1 candidates")
	}
	if got := s.Read(0); got != 100 {
		t.Errorf("clock moved: %v", got)
	}
}

func TestTrimmedMeanNegativeFClamped(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 10)
	res := TrimmedMean{F: -3}.Sync(s, 0, []Reply{{From: 2, C: 102, E: 1}})
	if !res.Reset {
		t.Fatal("no reset")
	}
	if got := s.Read(0); got != 101 {
		t.Errorf("clock = %v, want plain mean 101", got)
	}
}

func TestTrimmedMeanIgnoresInconsistent(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 1)
	res := TrimmedMean{F: 0}.Sync(s, 0, []Reply{{From: 2, C: 500, E: 0.1}})
	if res.Reset || len(res.Inconsistent) != 1 {
		t.Errorf("result = %+v", res)
	}
}

func TestTrimmedMeanName(t *testing.T) {
	if (TrimmedMean{}).Name() != "trimmed-mean" {
		t.Error("bad name")
	}
	if (SelectIM{}).Name() != "select-IM" {
		t.Error("bad name")
	}
}

func TestSelectIMSurvivesFalseticker(t *testing.T) {
	// Plain IM refuses to act when one reply is wildly inconsistent;
	// SelectIM finds the majority region and resets.
	mkServer := func() *Server { return newServer(t, 1, 0, 100, 0, 3) }
	replies := []Reply{
		{From: 2, C: 101, E: 2},
		{From: 3, C: 99, E: 2},
		{From: 4, C: 500, E: 0.1}, // falseticker
	}

	plain := mkServer()
	if res := (IM{}).Sync(plain, 0, replies); res.Reset {
		t.Fatal("plain IM unexpectedly reset through a falseticker")
	}

	sel := mkServer()
	res := SelectIM{}.Sync(sel, 0, replies)
	if !res.Reset {
		t.Fatal("SelectIM did not reset")
	}
	if len(res.Inconsistent) != 1 || res.Inconsistent[0] != 2 {
		t.Errorf("Inconsistent = %v, want [2]", res.Inconsistent)
	}
	// Result is the intersection of self [97,103] with the survivors
	// [99,103] and [97,101]: [99,101].
	if got := sel.Read(0); math.Abs(got-100) > 1e-12 {
		t.Errorf("clock = %v, want 100", got)
	}
	if got := sel.Epsilon(); math.Abs(got-1) > 1e-12 {
		t.Errorf("epsilon = %v, want 1", got)
	}
}

func TestSelectIMNoMajority(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 1)
	res := SelectIM{}.Sync(s, 0, []Reply{
		{From: 2, C: 300, E: 1},
		{From: 3, C: 500, E: 1},
		{From: 4, C: 700, E: 1},
	})
	if res.Reset {
		t.Error("reset without a majority")
	}
	if len(res.Inconsistent) != 3 {
		t.Errorf("Inconsistent = %v", res.Inconsistent)
	}
}

func TestSelectIMExcludeSelf(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 0.1) // tight but wrong self interval
	res := SelectIM{ExcludeSelf: true}.Sync(s, 0, []Reply{
		{From: 2, C: 110, E: 1},
		{From: 3, C: 110.5, E: 1},
		{From: 4, C: 109.5, E: 1},
	})
	if !res.Reset {
		t.Fatal("no reset")
	}
	if got := s.Read(0); math.Abs(got-110) > 0.6 {
		t.Errorf("clock = %v, want ~110", got)
	}
}

func TestSelectIMEmptyReplies(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 1)
	res := SelectIM{ExcludeSelf: true}.Sync(s, 0, nil)
	if res.Reset {
		t.Error("reset with nothing to select from")
	}
	// With self only, a single interval is its own majority of one.
	res = SelectIM{}.Sync(s, 0, nil)
	if !res.Reset {
		t.Error("self-only majority should reset (no-op value)")
	}
	if got := s.Read(0); got != 100 {
		t.Errorf("clock = %v", got)
	}
}

// TestSelectIMCorrectWithHonestMajority: with any minority of
// falsetickers, SelectIM keeps the server correct.
func TestSelectIMCorrectWithHonestMajority(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 400; trial++ {
		truth := 1000.0
		ownErr := 0.5 + rng.Float64()
		s := newServer(t, 0, truth, truth+(rng.Float64()*2-1)*ownErr, 0, ownErr)
		var replies []Reply
		honest := 4 + rng.IntN(4)
		faulty := rng.IntN((honest + 1) / 2) // strict minority incl. self
		for j := 0; j < honest; j++ {
			e := 0.3 + rng.Float64()
			replies = append(replies, Reply{From: j + 1, C: truth + (rng.Float64()*2-1)*e, E: e})
		}
		for j := 0; j < faulty; j++ {
			replies = append(replies, Reply{From: 100 + j, C: truth + 50 + rng.Float64()*100, E: 0.2})
		}
		res := SelectIM{}.Sync(s, truth, replies)
		if !res.Reset {
			t.Fatalf("trial %d: no reset with honest majority", trial)
		}
		if !s.Interval(truth).Contains(truth) {
			t.Fatalf("trial %d: correctness lost: %v", trial, s.Interval(truth))
		}
	}
}

func TestIMFloorError(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 5)
	res := IM{FloorError: 0.7}.Sync(s, 0, []Reply{
		{From: 2, C: 100.1, E: 0.1, RTT: 0},
	})
	if !res.Reset {
		t.Fatal("no reset")
	}
	if got := s.Epsilon(); got != 0.7 {
		t.Errorf("epsilon = %v, want floored 0.7", got)
	}
	// A wider derived interval is untouched by the floor.
	s2 := newServer(t, 1, 0, 100, 0, 5)
	IM{FloorError: 0.7}.Sync(s2, 0, []Reply{{From: 2, C: 100, E: 3, RTT: 0}})
	if got := s2.Epsilon(); got != 3 {
		t.Errorf("epsilon = %v, want unfloored 3", got)
	}
}

func TestSelectIMFloorError(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 5)
	res := SelectIM{FloorError: 0.9}.Sync(s, 0, []Reply{
		{From: 2, C: 100, E: 0.05, RTT: 0},
		{From: 3, C: 100.02, E: 0.05, RTT: 0},
	})
	if !res.Reset {
		t.Fatal("no reset")
	}
	if got := s.Epsilon(); got != 0.9 {
		t.Errorf("epsilon = %v, want floored 0.9", got)
	}
}

// TestIMFloorErrorMitigatesFigure3: the Figure 3 configuration poisons
// plain IM; a floor at the poisoning magnitude keeps the derived interval
// covering the correct time.
func TestIMFloorErrorMitigatesFigure3(t *testing.T) {
	const truth = 100.0
	replies := []Reply{
		{From: 1, C: 96, E: 6},
		{From: 2, C: 95, E: 4},   // incorrect: [91, 99]
		{From: 3, C: 99.5, E: 2}, // correct, smallest E
	}
	poisoned := newServer(t, 0, 0, 97, 0, 8)
	IM{}.Sync(poisoned, 0, replies)
	if poisoned.Interval(0).Contains(truth) {
		t.Fatal("expected plain IM to be poisoned (Figure 3)")
	}
	floored := newServer(t, 0, 0, 97, 0, 8)
	IM{FloorError: 2}.Sync(floored, 0, replies)
	if !floored.Interval(0).Contains(truth) {
		t.Errorf("floored IM interval %v still excludes the correct time", floored.Interval(0))
	}
}
