package core

import (
	"math/rand/v2"
	"testing"
)

// This file checks the two theorem bounds the chaos monitor also
// asserts at runtime, but here directly against the rules over
// table-driven families of randomized reply sets: rule MM-2 never
// increases the maximum error, and an IM reset lands within every input
// interval's pairwise bound.

// replyFamily is one shape of randomized reply set.
type replyFamily struct {
	name string
	gen  func(rng *rand.Rand, truth float64) []Reply
}

// honestReply draws one honest reply around truth with the given error
// and round-trip bounds: the remote read its clock up to rtt ago, and
// that reading was within e of the time then.
func honestReply(rng *rand.Rand, truth float64, from int, maxE, maxRTT, maxAge float64) Reply {
	e := 0.001 + rng.Float64()*maxE
	rtt := rng.Float64() * maxRTT
	age := rng.Float64() * maxAge
	readAt := truth - age - rng.Float64()*rtt
	return Reply{From: from, C: readAt + (rng.Float64()*2-1)*e, E: e, RTT: rtt, Age: age}
}

// replyFamilies are the table-driven shapes: tighter and looser than the
// server, fresh and stale, singletons and crowds, plus a liar mix.
func replyFamilies() []replyFamily {
	many := func(maxE, maxRTT, maxAge float64, lo, hi int) func(*rand.Rand, float64) []Reply {
		return func(rng *rand.Rand, truth float64) []Reply {
			n := lo + rng.IntN(hi-lo+1)
			out := make([]Reply, 0, n)
			for j := 0; j < n; j++ {
				out = append(out, honestReply(rng, truth, j+1, maxE, maxRTT, maxAge))
			}
			return out
		}
	}
	return []replyFamily{
		{"tight-fresh", many(0.02, 0.01, 0, 1, 5)},
		{"loose-fresh", many(3, 0.2, 0, 1, 5)},
		{"tight-stale", many(0.02, 0.01, 2, 2, 6)},
		{"single", many(1, 0.1, 0.5, 1, 1)},
		{"crowd", many(1, 0.1, 1, 8, 16)},
		{"liars", func(rng *rand.Rand, truth float64) []Reply {
			out := many(0.5, 0.05, 0.5, 2, 5)(rng, truth)
			for j := range out {
				if rng.IntN(3) == 0 { // a falseticker's answer: confident and wrong
					out[j].C += (rng.Float64()*2 - 1) * 50
					out[j].E = 0.001 + rng.Float64()*0.01
				}
			}
			return out
		}},
	}
}

// ownServer draws the local server for a trial.
func ownServer(t *testing.T, rng *rand.Rand, truth float64) *Server {
	t.Helper()
	ownErr := 0.01 + rng.Float64()*2
	return newServer(t, 0, truth, truth+(rng.Float64()*2-1)*ownErr,
		rng.Float64()*1e-4, ownErr)
}

// TestPropertyMMErrorNonIncrease: rule MM-2 adopts a reply only when the
// transit-charged error beats the server's own, so a pass never leaves
// the maximum error larger than it found it — for every reply family,
// honest or lying (Theorem 2's premise).
func TestPropertyMMErrorNonIncrease(t *testing.T) {
	const tol = 1e-9
	for _, fam := range replyFamilies() {
		rng := rand.New(rand.NewPCG(31, 32))
		for trial := 0; trial < 400; trial++ {
			truth := 500 + rng.Float64()*1000
			s := ownServer(t, rng, truth)
			before := s.ErrorAt(truth)
			res := MM{}.Sync(s, truth, fam.gen(rng, truth))
			after := s.ErrorAt(truth)
			if after > before+tol {
				t.Fatalf("%s trial %d: MM grew error %.9g -> %.9g", fam.name, trial, before, after)
			}
			if res.Reset && !(after < before) {
				t.Fatalf("%s trial %d: MM reset without strict improvement %.9g -> %.9g",
					fam.name, trial, before, after)
			}
		}
	}
}

// TestPropertyIMMidpointWithinPairwiseBounds: when an IM pass resets, the
// adopted clock value is the intersection midpoint, so it must lie within
// the server's own prior interval and within every used reply's
// transit-adjusted interval — |mid - c_j| <= e_j pairwise, which is what
// makes the result consistent with each input (Theorem 6).
func TestPropertyIMMidpointWithinPairwiseBounds(t *testing.T) {
	const tol = 1e-9
	for _, fam := range replyFamilies() {
		rng := rand.New(rand.NewPCG(33, 34))
		resets := 0
		for trial := 0; trial < 400; trial++ {
			truth := 500 + rng.Float64()*1000
			s := ownServer(t, rng, truth)
			own := s.Interval(truth)
			replies := fam.gen(rng, truth)
			bounds := make([]struct{ lo, hi float64 }, len(replies))
			for j, r := range replies {
				iv := s.replyInterval(r)
				bounds[j].lo, bounds[j].hi = iv.Lo, iv.Hi
			}
			res := IM{}.Sync(s, truth, replies)
			if !res.Reset {
				continue
			}
			resets++
			mid := s.Read(truth)
			if mid < own.Lo-tol || mid > own.Hi+tol {
				t.Fatalf("%s trial %d: midpoint %.9g outside own prior interval %v",
					fam.name, trial, mid, own)
			}
			for j := range replies {
				if mid < bounds[j].lo-tol || mid > bounds[j].hi+tol {
					t.Fatalf("%s trial %d: midpoint %.9g outside reply %d's interval [%.9g, %.9g]",
						fam.name, trial, mid, j, bounds[j].lo, bounds[j].hi)
				}
			}
			// The adopted interval is the intersection, so it is no wider
			// than any input.
			adopted := s.Interval(truth)
			if adopted.Hi-adopted.Lo > own.Hi-own.Lo+tol {
				t.Fatalf("%s trial %d: adopted interval wider than own prior", fam.name, trial)
			}
		}
		if resets == 0 {
			t.Fatalf("%s: no trial reset; the property was never exercised", fam.name)
		}
	}
}
