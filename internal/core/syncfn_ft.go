package core

import (
	"sort"

	"disttime/internal/interval"
)

// This file extends the paper's synchronization functions toward failing
// clocks, the direction the paper defers to [Marzullo 83]: a trimmed
// fault-tolerant mean in the style of [Lamport 82], and the
// majority-intersection function (Marzullo's algorithm as a
// synchronization function) that tolerates falsetickers where plain rule
// IM-2 reports inconsistency and refuses to act.

// TrimmedMean is the fault-tolerant averaging function of [Lamport 82]:
// the F lowest and F highest clock values among self and the consistent
// replies are discarded and the clock is set to the mean of the rest. It
// tolerates up to F arbitrary clock values.
type TrimmedMean struct {
	// F is how many extreme values to discard from each end. With fewer
	// than 2F+1 candidates the pass is a no-op.
	F int
}

// Name returns "trimmed-mean".
func (TrimmedMean) Name() string { return "trimmed-mean" }

// Sync adopts the trimmed mean of self and consistent replies.
func (tm TrimmedMean) Sync(s *Server, t float64, replies []Reply) Result {
	var res Result
	type cand struct {
		c   float64
		err float64
		own bool
	}
	cands := []cand{{c: s.Read(t), err: s.ErrorAt(t), own: true}}
	for i, r := range replies {
		if !s.ConsistentWith(t, r) {
			s.noteInconsistent()
			res.Inconsistent = append(res.Inconsistent, i)
			continue
		}
		c, _, lead := s.effective(r)
		cands = append(cands, cand{c: c, err: lead})
	}
	f := tm.F
	if f < 0 {
		f = 0
	}
	if len(cands) < 2*f+1 || len(cands) < 2 {
		return res
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].c < cands[j].c })
	kept := cands[f : len(cands)-f]
	var sumC, sumE float64
	for _, k := range kept {
		sumC += k.c
		sumE += k.err
	}
	s.SetClock(t, sumC/float64(len(kept)), sumE/float64(len(kept)))
	res.Reset = true
	res.Accepted = len(kept)
	return res
}

// SelectIM is the intersection function hardened against falsetickers:
// instead of requiring every interval to intersect (rule IM-2, which
// refuses to act on an inconsistent service), it finds the region covered
// by the largest number of intervals — Marzullo's algorithm — and, when
// that agreement reaches a majority, resets to its midpoint. This is the
// [Marzullo 83] extension running inside the service loop, and the shape
// NTP's clock selection later took.
type SelectIM struct {
	// MinSurvivors is the required agreement; zero means a strict
	// majority of the considered intervals (replies plus self).
	MinSurvivors int
	// ExcludeSelf drops the server's own interval from consideration.
	ExcludeSelf bool
	// FloorError clamps the derived error from below, as in IM.
	FloorError float64
}

// Name returns "select-IM".
func (SelectIM) Name() string { return "select-IM" }

// Sync finds the majority intersection and adopts its midpoint.
func (f SelectIM) Sync(s *Server, t float64, replies []Reply) Result {
	var res Result
	ci := s.Read(t)
	var ivs []interval.Interval
	if !f.ExcludeSelf {
		ei := s.ErrorAt(t)
		ivs = append(ivs, interval.FromEstimate(ci, ei))
	}
	for _, r := range replies {
		c, trail, lead := s.effective(r)
		ivs = append(ivs, interval.Interval{Lo: c - trail, Hi: c + lead})
	}
	if len(ivs) == 0 {
		return res
	}
	need := f.MinSurvivors
	if need <= 0 {
		need = len(ivs)/2 + 1
	}
	best := interval.Marzullo(ivs)
	if best.Count < need {
		// No sufficient agreement: the service is too inconsistent to
		// act. Flag every reply so the recovery policy can run.
		s.noteInconsistent()
		res.Inconsistent = inconsistentIndices(len(replies))
		return res
	}
	// Tighten to the full common region of the agreeing intervals and
	// classify the replies outside it.
	var member []interval.Interval
	for _, iv := range ivs {
		if interval.Consistent(iv, best.Interval) {
			member = append(member, iv)
		}
	}
	common, ok := interval.IntersectAll(member)
	if !ok {
		common = best.Interval
	}
	selfIdx := 0
	if f.ExcludeSelf {
		selfIdx = -1 // replies start at ivs[0]
	}
	for i := range replies {
		if !interval.Consistent(ivs[i+1+selfIdx], best.Interval) {
			s.noteInconsistent()
			res.Inconsistent = append(res.Inconsistent, i)
		}
	}
	eps := common.HalfWidth()
	if f.FloorError > eps {
		eps = f.FloorError
	}
	s.SetClock(t, common.Midpoint(), eps)
	res.Reset = true
	res.Accepted = best.Count
	return res
}

// ByzIM is the Byzantine-tolerant intersection function: it adopts the
// agreement envelope — the span of every point covered by at least
// len(ivs)-F of the considered intervals (MarzulloSpan) — rather than a
// refined intersection. With at most F two-faced or otherwise arbitrary
// servers among the repliers, real time is covered by every correct
// interval, hence by at least len(ivs)-F intervals, hence lies inside the
// span no matter what the liars report to this particular peer. SelectIM
// does not have this property: a single liar whose interval overlaps one
// flank of the honest cluster drags the max-overlap window (and its
// tightened intersection) off real time, which is exactly the violation
// the chaos tier's BuggyIM plants. The price of soundness is width: the
// span never excludes a liar's overlap, so the adopted error bound is
// wider than SelectIM's. An empty envelope means more than F of the
// collected intervals lie (or the budget was misconfigured); ByzIM then
// refuses to act and flags every reply — rule IM-2's shape — so the
// recovery policy can take over.
type ByzIM struct {
	// F is the fault budget: how many of the considered intervals may be
	// arbitrary. Containment of real time holds whenever the actual
	// number of faulty repliers is at most F; n >= 3F+1 additionally
	// keeps the adopted width within the honest cluster's spread. F <= 0
	// means floor((len(ivs)-1)/3), the largest budget a fully collected
	// round of the classical n >= 3f+1 resilience bound supports.
	F int
	// FloorError clamps the derived error from below, as in IM.
	FloorError float64
}

// Name returns "byz-IM".
func (ByzIM) Name() string { return "byz-IM" }

// Sync adopts the midpoint of the coverage-(len-F) agreement envelope.
func (f ByzIM) Sync(s *Server, t float64, replies []Reply) Result {
	var res Result
	ci := s.Read(t)
	ei := s.ErrorAt(t)
	ivs := []interval.Interval{interval.FromEstimate(ci, ei)}
	for _, r := range replies {
		c, trail, lead := s.effective(r)
		ivs = append(ivs, interval.Interval{Lo: c - trail, Hi: c + lead})
	}
	budget := f.F
	if budget <= 0 {
		budget = (len(ivs) - 1) / 3
	}
	need := len(ivs) - budget
	if need < 1 {
		need = 1
	}
	span, ok := interval.MarzulloSpan(ivs, need)
	if !ok {
		// No point is covered by len-F intervals: more than F of what was
		// collected is lying, which the budget does not cover. Refuse to
		// act and flag the replies so recovery can run.
		s.noteInconsistent()
		res.Inconsistent = inconsistentIndices(len(replies))
		return res
	}
	eps := span.HalfWidth()
	if f.FloorError > eps {
		eps = f.FloorError
	}
	s.SetClock(t, span.Midpoint(), eps)
	res.Reset = true
	res.Accepted = len(ivs)
	return res
}
