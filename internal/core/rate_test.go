package core

import (
	"math"
	"testing"

	"disttime/internal/interval"
)

func TestRateTrackerEstimate(t *testing.T) {
	rt := NewRateTracker()
	// Remote runs 1e-4 fast against the local clock.
	rt.Observe(2, RateSample{Local: 0, Remote: 0, RTT: 0.1})
	rt.Observe(2, RateSample{Local: 1000, Remote: 1000.1, RTT: 0.1})
	e := rt.Estimate(2)
	if !e.Valid {
		t.Fatal("estimate invalid")
	}
	if math.Abs(e.Rate-1e-4) > 1e-12 {
		t.Errorf("Rate = %v, want 1e-4", e.Rate)
	}
	if math.Abs(e.Err-0.2/1000) > 1e-12 {
		t.Errorf("Err = %v, want 2e-4", e.Err)
	}
	if e.Span != 1000 {
		t.Errorf("Span = %v", e.Span)
	}
	iv := e.Interval()
	if !iv.Contains(1e-4) {
		t.Errorf("rate interval %v excludes true rate", iv)
	}
}

func TestRateTrackerKeepsFirstAndLatest(t *testing.T) {
	rt := NewRateTracker()
	rt.Observe(1, RateSample{Local: 0, Remote: 0, RTT: 0})
	rt.Observe(1, RateSample{Local: 10, Remote: 10.5, RTT: 0})
	rt.Observe(1, RateSample{Local: 100, Remote: 101, RTT: 0})
	e := rt.Estimate(1)
	if e.Span != 100 {
		t.Errorf("Span = %v, want first-to-latest 100", e.Span)
	}
	if math.Abs(e.Rate-0.01) > 1e-12 {
		t.Errorf("Rate = %v, want 0.01", e.Rate)
	}
}

func TestRateTrackerInvalidCases(t *testing.T) {
	rt := NewRateTracker()
	if rt.Estimate(9).Valid {
		t.Error("estimate with no samples should be invalid")
	}
	rt.Observe(1, RateSample{Local: 5, Remote: 5})
	if rt.Estimate(1).Valid {
		t.Error("estimate with one sample should be invalid")
	}
	// Zero span.
	rt.Observe(1, RateSample{Local: 5, Remote: 6})
	if rt.Estimate(1).Valid {
		t.Error("estimate with zero span should be invalid")
	}
}

func TestRateTrackerReset(t *testing.T) {
	rt := NewRateTracker()
	rt.Observe(1, RateSample{Local: 0, Remote: 0})
	rt.Observe(1, RateSample{Local: 10, Remote: 10})
	rt.Observe(2, RateSample{Local: 0, Remote: 0})
	rt.Observe(2, RateSample{Local: 10, Remote: 10})
	rt.Reset(1)
	if rt.Estimate(1).Valid {
		t.Error("Reset(1) did not clear neighbor 1")
	}
	if !rt.Estimate(2).Valid {
		t.Error("Reset(1) cleared neighbor 2")
	}
	rt.ResetAll()
	if rt.Estimate(2).Valid {
		t.Error("ResetAll did not clear")
	}
}

func TestConsonantWith(t *testing.T) {
	tests := []struct {
		name   string
		e      RateEstimate
		di, dj float64
		want   bool
	}{
		{
			name: "well within",
			e:    RateEstimate{Rate: 1e-5, Err: 0, Valid: true},
			di:   1e-5, dj: 1e-5, want: true,
		},
		{
			name: "dissonant",
			e:    RateEstimate{Rate: 5e-5, Err: 1e-6, Valid: true},
			di:   1e-5, dj: 1e-5, want: false,
		},
		{
			name: "uncertainty saves it",
			e:    RateEstimate{Rate: 5e-5, Err: 4e-5, Valid: true},
			di:   1e-5, dj: 1e-5, want: true,
		},
		{
			name: "invalid estimate is not evidence",
			e:    RateEstimate{Rate: 1, Err: 0},
			di:   1e-5, dj: 1e-5, want: true,
		},
		{
			name: "negative dissonant",
			e:    RateEstimate{Rate: -5e-5, Err: 0, Valid: true},
			di:   1e-5, dj: 1e-5, want: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.e.ConsonantWith(tt.di, tt.dj); got != tt.want {
				t.Errorf("ConsonantWith = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestOwnDriftConstraint(t *testing.T) {
	// Observed: neighbor separates at +2e-5 +/- 1e-5; neighbor claims
	// delta_j = 1e-5. Own drift must lie in [-1e-5-2e-5-1e-5, 1e-5-2e-5+1e-5]
	// = [-4e-5, 0].
	e := RateEstimate{Rate: 2e-5, Err: 1e-5, Valid: true}
	iv := OwnDriftConstraint(e, 1e-5)
	if math.Abs(iv.Lo-(-4e-5)) > 1e-18 || math.Abs(iv.Hi-0) > 1e-18 {
		t.Errorf("constraint = %v, want [-4e-5, 0]", iv)
	}
}

func TestEstimateOwnDrift(t *testing.T) {
	// Two neighbors: their constraints intersect to a tight bound on the
	// local drift.
	estimates := []RateEstimate{
		{Rate: 2e-5, Err: 0, Valid: true},  // constraint [-3e-5, -1e-5]
		{Rate: -1e-5, Err: 0, Valid: true}, // constraint [0, 2e-5]... deltas below
	}
	deltas := []float64{1e-5, 1e-5}
	// First: [-1e-5-2e-5, 1e-5-2e-5] = [-3e-5, -1e-5].
	// Second: [-1e-5+1e-5, 1e-5+1e-5] = [0, 2e-5]. Disjoint -> inconsistent.
	if _, ok := EstimateOwnDrift(estimates, deltas); ok {
		t.Fatal("disjoint constraints should report inconsistency")
	}

	estimates[1] = RateEstimate{Rate: 1e-5, Err: 1e-5, Valid: true}
	// Second becomes [-1e-5-1e-5-1e-5, 1e-5-1e-5+1e-5] = [-3e-5, 1e-5].
	iv, ok := EstimateOwnDrift(estimates, deltas)
	if !ok {
		t.Fatal("constraints should intersect")
	}
	want := interval.Interval{Lo: -3e-5, Hi: -1e-5}
	if math.Abs(iv.Lo-want.Lo) > 1e-18 || math.Abs(iv.Hi-want.Hi) > 1e-18 {
		t.Errorf("drift interval = %v, want %v", iv, want)
	}
}

func TestEstimateOwnDriftSkipsInvalid(t *testing.T) {
	iv, ok := EstimateOwnDrift([]RateEstimate{{Rate: 99, Err: 0}}, []float64{1e-5})
	if !ok {
		t.Fatal("invalid estimates must be skipped")
	}
	if iv.Lo != -1 || iv.Hi != 1 {
		t.Errorf("vacuous constraint = %v", iv)
	}
}

func TestEstimateOwnDriftMissingDelta(t *testing.T) {
	// An estimate beyond the deltas slice uses delta 0.
	iv, ok := EstimateOwnDrift([]RateEstimate{{Rate: 1e-5, Err: 0, Valid: true}}, nil)
	if !ok {
		t.Fatal("should be consistent")
	}
	if math.Abs(iv.Lo-(-1e-5)) > 1e-18 || math.Abs(iv.Hi-(-1e-5)) > 1e-18 {
		t.Errorf("constraint = %v, want the point -1e-5", iv)
	}
}

func TestSuspectInvalidBound(t *testing.T) {
	tests := []struct {
		name       string
		constraint interval.Interval
		delta      float64
		want       bool
	}{
		{name: "inside", constraint: interval.Interval{Lo: -1e-6, Hi: 1e-6}, delta: 1e-5, want: false},
		{name: "touching", constraint: interval.Interval{Lo: 1e-5, Hi: 2e-5}, delta: 1e-5, want: false},
		{name: "outside", constraint: interval.Interval{Lo: 2e-5, Hi: 3e-5}, delta: 1e-5, want: true},
		{name: "outside negative", constraint: interval.Interval{Lo: -3e-5, Hi: -2e-5}, delta: 1e-5, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SuspectInvalidBound(tt.constraint, tt.delta); got != tt.want {
				t.Errorf("SuspectInvalidBound = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDissonantPairs(t *testing.T) {
	// Three servers; server 2 drifts far beyond every claimed bound.
	est := make([][]RateEstimate, 3)
	for i := range est {
		est[i] = make([]RateEstimate, 3)
	}
	est[0][1] = RateEstimate{Rate: 1e-6, Err: 0, Valid: true}
	est[0][2] = RateEstimate{Rate: 1e-3, Err: 0, Valid: true}
	est[1][2] = RateEstimate{Rate: 1e-3, Err: 0, Valid: true}
	deltas := []float64{1e-5, 1e-5, 1e-5}
	pairs := DissonantPairs(est, deltas)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v, want 2 pairs involving server 2", pairs)
	}
	for _, p := range pairs {
		if p[1] != 2 {
			t.Errorf("unexpected pair %v", p)
		}
	}
}

func TestMaxSeparationRate(t *testing.T) {
	estimates := []RateEstimate{
		{Rate: 1e-5, Valid: true},
		{Rate: -3e-5, Valid: true},
		{Rate: 99, Valid: false},
	}
	if got := MaxSeparationRate(estimates); got != 3e-5 {
		t.Errorf("MaxSeparationRate = %v, want 3e-5", got)
	}
	if got := MaxSeparationRate(nil); got != 0 {
		t.Errorf("MaxSeparationRate(nil) = %v", got)
	}
}

// TestRateTrackerDetectsFaultyDriftBound reproduces the Section 5 use
// case end-to-end at the rate level: a clock claiming one second a day but
// actually four percent fast is exposed by consonance checking.
func TestRateTrackerDetectsFaultyDriftBound(t *testing.T) {
	const (
		claimed = 1.0 / 86400 // one second a day
		actual  = 0.04        // four percent fast
	)
	rt := NewRateTracker()
	// Local clock perfect; the faulty neighbor's clock runs at 1.04.
	for _, local := range []float64{0, 600} {
		rt.Observe(1, RateSample{Local: local, Remote: local * (1 + actual), RTT: 0.05})
	}
	e := rt.Estimate(1)
	if !e.Valid {
		t.Fatal("no estimate")
	}
	if e.ConsonantWith(claimed, claimed) {
		t.Error("faulty bound not detected: estimate consonant")
	}
	// And the drift constraint it induces on the local clock is absurd,
	// flagging an invalid bound somewhere.
	constraint := OwnDriftConstraint(e, claimed)
	if !SuspectInvalidBound(constraint, claimed) {
		t.Error("local bound not suspected despite absurd constraint")
	}
}

func TestShiftLocalKeepsEstimateContinuous(t *testing.T) {
	rt := NewRateTracker()
	// Remote runs 1e-4 fast; local clock resets by +5 mid-observation.
	rt.Observe(1, RateSample{Local: 0, Remote: 0, RTT: 0})
	rt.Observe(1, RateSample{Local: 100, Remote: 100.01, RTT: 0})
	// Local clock jumps +5: translate the stored timeline.
	rt.ShiftLocal(5)
	// Post-jump samples arrive on the shifted timeline.
	rt.Observe(1, RateSample{Local: 205, Remote: 200.02, RTT: 0})
	e := rt.Estimate(1)
	if !e.Valid {
		t.Fatal("estimate invalid after shift")
	}
	// Span on the shifted timeline: first sample moved to Local=5, last
	// at 205 -> span 200; remote advanced 200.02 over local 200.
	if math.Abs(e.Rate-1e-4) > 1e-9 {
		t.Errorf("Rate = %v, want 1e-4 despite the local reset", e.Rate)
	}
	if e.Span != 200 {
		t.Errorf("Span = %v, want 200", e.Span)
	}
}

func TestShiftLocalEmptyTracker(t *testing.T) {
	rt := NewRateTracker()
	rt.ShiftLocal(10) // no panic on empty maps
	if rt.Estimate(1).Valid {
		t.Error("phantom estimate")
	}
}
