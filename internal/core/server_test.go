package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"disttime/internal/clock"
)

// newServer builds a server over a perfect clock reading value at real
// time t, with the given claimed drift bound and inherited error.
func newServer(t *testing.T, id int, at, value, delta, initialErr float64) *Server {
	t.Helper()
	s, err := NewServer(at, Config{
		ID:           id,
		Clock:        clock.NewDrifting(at, value, 0),
		Delta:        delta,
		InitialError: initialErr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewServerValidation(t *testing.T) {
	clk := clock.Perfect(0, 0)
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{name: "ok", cfg: Config{Clock: clk, Delta: 1e-5}},
		{name: "nil clock", cfg: Config{Delta: 1e-5}, wantErr: true},
		{name: "negative delta", cfg: Config{Clock: clk, Delta: -1}, wantErr: true},
		{name: "negative error", cfg: Config{Clock: clk, InitialError: -1}, wantErr: true},
		{name: "zero delta ok", cfg: Config{Clock: clk}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewServer(0, tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewServer error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestReadingRuleMM1(t *testing.T) {
	// E_i(t) = epsilon_i + (C_i(t) - r_i) * delta_i.
	at := 0.0
	s, err := NewServer(at, Config{
		ID:           1,
		Clock:        clock.NewDrifting(0, 0, 0.01),
		Delta:        0.02,
		InitialError: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Reading(10)
	wantC := 10.1 // 10 * 1.01
	wantE := 0.5 + wantC*0.02
	if math.Abs(r.C-wantC) > 1e-12 {
		t.Errorf("C = %v, want %v", r.C, wantC)
	}
	if math.Abs(r.E-wantE) > 1e-12 {
		t.Errorf("E = %v, want %v", r.E, wantE)
	}
	iv := r.Interval()
	if math.Abs(iv.Midpoint()-wantC) > 1e-12 || math.Abs(iv.HalfWidth()-wantE) > 1e-12 {
		t.Errorf("Interval() = %v", iv)
	}
}

func TestErrorGrowsLinearly(t *testing.T) {
	// Lemma 1: without resets, E_i(t0+dt) = E_i(t0) + delta_i*dt (to first
	// order in delta).
	s := newServer(t, 1, 0, 0, 1e-4, 0.1)
	e0 := s.ErrorAt(100)
	e1 := s.ErrorAt(200)
	if got, want := e1-e0, 100*1e-4; math.Abs(got-want) > 1e-9 {
		t.Errorf("error growth = %v, want %v", got, want)
	}
}

func TestErrorClampedWhenClockBehindReset(t *testing.T) {
	// If a fault yanks the clock behind its reset reference the drift term
	// must clamp at zero rather than shrink the error.
	s := newServer(t, 1, 0, 100, 1e-3, 0.5)
	s.Clock().Set(1, 50) // fault: direct set, bypassing the server
	if got := s.ErrorAt(1); got != 0.5 {
		t.Errorf("ErrorAt = %v, want clamped 0.5", got)
	}
}

func TestAccessors(t *testing.T) {
	s := newServer(t, 7, 0, 0, 1e-5, 0.25)
	if s.ID() != 7 {
		t.Errorf("ID() = %d", s.ID())
	}
	if s.Delta() != 1e-5 {
		t.Errorf("Delta() = %v", s.Delta())
	}
	if s.Epsilon() != 0.25 {
		t.Errorf("Epsilon() = %v", s.Epsilon())
	}
	if s.Clock() == nil {
		t.Error("Clock() = nil")
	}
	if s.Resets() != 0 || s.Inconsistencies() != 0 {
		t.Errorf("fresh server counters: %d resets, %d inconsistencies",
			s.Resets(), s.Inconsistencies())
	}
}

func TestSetClock(t *testing.T) {
	s := newServer(t, 1, 0, 0, 1e-4, 1.0)
	s.SetClock(10, 500, 0.2)
	if got := s.Read(10); got != 500 {
		t.Errorf("Read after SetClock = %v", got)
	}
	if s.Epsilon() != 0.2 {
		t.Errorf("Epsilon = %v", s.Epsilon())
	}
	if s.Resets() != 1 {
		t.Errorf("Resets = %d", s.Resets())
	}
	// Error restarts from the new epsilon.
	if got, want := s.ErrorAt(20), 0.2+10*1e-4; math.Abs(got-want) > 1e-9 {
		t.Errorf("ErrorAt(20) = %v, want %v", got, want)
	}
}

func TestSetClockStuckClockBookkeeping(t *testing.T) {
	// A stuck clock refuses the set; bookkeeping must track the clock's
	// actual value so the reported interval is not silently wrong.
	inner := clock.NewDrifting(0, 0, 0)
	stuck := clock.NewStuck(inner, 0)
	s, err := NewServer(0, Config{Clock: stuck, Delta: 1e-4, InitialError: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.SetClock(10, 999, 0.1)
	if got := s.Read(10); got != 10 {
		t.Errorf("stuck clock moved: %v", got)
	}
	// resetRef must equal the actual clock value (10), so error grows from
	// 0.1 without a spurious (999-10) deterioration charge.
	if got := s.ErrorAt(10); got != 0.1 {
		t.Errorf("ErrorAt right after refused set = %v, want 0.1", got)
	}
}

func TestConsistentWith(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 2) // interval [98, 102]
	tests := []struct {
		name  string
		reply Reply
		want  bool
	}{
		{name: "overlapping", reply: Reply{C: 103, E: 2}, want: true},
		{name: "disjoint", reply: Reply{C: 110, E: 2}, want: false},
		{name: "rtt extends leading edge", reply: Reply{C: 95, E: 2, RTT: 1}, want: true},
		// [93, 98]: touches own trailing edge.
		{name: "touching", reply: Reply{C: 95.5, E: 2.5}, want: true},
		{name: "far behind", reply: Reply{C: 80, E: 2, RTT: 1}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.ConsistentWith(0, tt.reply); got != tt.want {
				t.Errorf("ConsistentWith(%+v) = %v, want %v", tt.reply, got, tt.want)
			}
		})
	}
}

func TestAdopt(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0.01, 5)
	s.Adopt(0, Reply{From: 2, C: 200, E: 1, RTT: 2})
	if got := s.Read(0); got != 200 {
		t.Errorf("Read after Adopt = %v", got)
	}
	want := 1 + 1.01*2 // E_j + (1+delta)*RTT
	if math.Abs(s.Epsilon()-want) > 1e-12 {
		t.Errorf("Epsilon = %v, want %v", s.Epsilon(), want)
	}
}

func TestMMAcceptsSmallerError(t *testing.T) {
	// Rule MM-2: reset iff E_j + (1+delta_i)*xi <= E_i.
	s := newServer(t, 1, 0, 100, 0.01, 5) // E_i = 5 at t=0
	res := MM{}.Sync(s, 0, []Reply{{From: 2, C: 101, E: 1, RTT: 0.5}})
	if !res.Reset || res.Accepted != 1 {
		t.Fatalf("result = %+v, want reset", res)
	}
	if got := s.Read(0); got != 101 {
		t.Errorf("clock = %v, want adopted 101", got)
	}
	want := 1 + 1.01*0.5
	if math.Abs(s.Epsilon()-want) > 1e-12 {
		t.Errorf("epsilon = %v, want %v", s.Epsilon(), want)
	}
	if s.Resets() != 1 {
		t.Errorf("Resets = %d", s.Resets())
	}
}

func TestMMRejectsLargerError(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0.01, 1) // E_i = 1
	res := MM{}.Sync(s, 0, []Reply{{From: 2, C: 101, E: 2, RTT: 0.5}})
	if res.Reset || res.Accepted != 0 {
		t.Fatalf("result = %+v, want no reset", res)
	}
	if got := s.Read(0); got != 100 {
		t.Errorf("clock moved to %v", got)
	}
}

func TestMMIgnoresInconsistentReply(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0.01, 1) // [99, 101]
	// Tiny error but wildly different clock: inconsistent, must be ignored
	// even though its error is smaller.
	res := MM{}.Sync(s, 0, []Reply{{From: 2, C: 200, E: 0.1, RTT: 0}})
	if res.Reset {
		t.Fatal("reset from inconsistent reply")
	}
	if len(res.Inconsistent) != 1 || res.Inconsistent[0] != 0 {
		t.Errorf("Inconsistent = %v", res.Inconsistent)
	}
	if s.Inconsistencies() != 1 {
		t.Errorf("Inconsistencies = %d", s.Inconsistencies())
	}
}

func TestMMAppliesRepliesInOrder(t *testing.T) {
	// Two acceptable replies: both apply in order; the final state comes
	// from the second (whose adjusted error must beat the error inherited
	// from the first).
	s := newServer(t, 1, 0, 100, 0, 10)
	res := MM{}.Sync(s, 0, []Reply{
		{From: 2, C: 101, E: 4, RTT: 0},
		{From: 3, C: 99, E: 1, RTT: 0},
	})
	if res.Accepted != 2 {
		t.Fatalf("Accepted = %d, want 2", res.Accepted)
	}
	if got := s.Read(0); got != 99 {
		t.Errorf("clock = %v, want 99", got)
	}
	if s.Epsilon() != 1 {
		t.Errorf("epsilon = %v, want 1", s.Epsilon())
	}
}

func TestMMSelfReplyIsNoOp(t *testing.T) {
	// Theorem 2's device: a server answering its own request with zero
	// delay satisfies MM-2 but changes nothing observable.
	s := newServer(t, 1, 0, 100, 0.01, 5)
	self := Reply{From: 1, C: s.Read(0), E: s.ErrorAt(0), RTT: 0}
	res := MM{}.Sync(s, 0, []Reply{self})
	if !res.Reset {
		t.Fatal("self reply should satisfy MM-2")
	}
	if got := s.Read(0); got != 100 {
		t.Errorf("clock = %v", got)
	}
	if s.Epsilon() != 5 {
		t.Errorf("epsilon = %v", s.Epsilon())
	}
}

func TestIMIntersection(t *testing.T) {
	// Hand-computed intersection: own [95, 105]; replies [99, 107] and
	// [96, 100] (zero RTT). a = max(-5, -1, -4) = -1, b = min(5, 7, 0) = 0.
	// New C = 100 + (-1+0)/2 = 99.5, epsilon = 0.5.
	s := newServer(t, 1, 0, 100, 0, 5)
	res := IM{}.Sync(s, 0, []Reply{
		{From: 2, C: 103, E: 4, RTT: 0},
		{From: 3, C: 98, E: 2, RTT: 0},
	})
	if !res.Reset || res.Accepted != 2 {
		t.Fatalf("result = %+v", res)
	}
	if got := s.Read(0); math.Abs(got-99.5) > 1e-12 {
		t.Errorf("clock = %v, want 99.5", got)
	}
	if math.Abs(s.Epsilon()-0.5) > 1e-12 {
		t.Errorf("epsilon = %v, want 0.5", s.Epsilon())
	}
}

func TestIMRTTExtendsLeadingEdge(t *testing.T) {
	// Rule IM-2: L_j = C_j + E_j + (1+delta_i)*xi - C_i.
	s := newServer(t, 1, 0, 100, 0.5, 10)
	res := IM{}.Sync(s, 0, []Reply{{From: 2, C: 100, E: 1, RTT: 2}})
	if !res.Reset {
		t.Fatal("no reset")
	}
	// T = -1, L = 1 + 1.5*2 = 4; self [-10, 10]; [a,b] = [-1, 4].
	if got, want := s.Read(0), 101.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("clock = %v, want %v", got, want)
	}
	if got, want := s.Epsilon(), 2.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("epsilon = %v, want %v", got, want)
	}
}

func TestIMInconsistentServiceNoReset(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 1) // [99, 101]
	res := IM{}.Sync(s, 0, []Reply{{From: 2, C: 200, E: 1, RTT: 0}})
	if res.Reset {
		t.Fatal("reset despite empty intersection")
	}
	if len(res.Inconsistent) == 0 {
		t.Error("inconsistency not reported")
	}
	if s.Inconsistencies() == 0 {
		t.Error("inconsistency not counted")
	}
}

func TestIMDropInconsistent(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 2) // [98, 102]
	res := IM{DropInconsistent: true}.Sync(s, 0, []Reply{
		{From: 2, C: 200, E: 1, RTT: 0}, // falseticker, dropped
		{From: 3, C: 101, E: 1, RTT: 0}, // [100, 102]
	})
	if !res.Reset {
		t.Fatal("no reset after dropping falseticker")
	}
	if len(res.Inconsistent) != 1 || res.Inconsistent[0] != 0 {
		t.Errorf("Inconsistent = %v", res.Inconsistent)
	}
	if got := s.Read(0); math.Abs(got-101) > 1e-12 {
		t.Errorf("clock = %v, want 101", got)
	}
}

func TestIMExcludeSelf(t *testing.T) {
	// Without the self interval, a single reply is adopted wholesale.
	s := newServer(t, 1, 0, 100, 0, 1)
	res := IM{ExcludeSelf: true}.Sync(s, 0, []Reply{{From: 2, C: 150, E: 3, RTT: 0}})
	if !res.Reset {
		t.Fatal("no reset")
	}
	if got := s.Read(0); math.Abs(got-150) > 1e-12 {
		t.Errorf("clock = %v, want 150", got)
	}
	if math.Abs(s.Epsilon()-3) > 1e-12 {
		t.Errorf("epsilon = %v, want 3", s.Epsilon())
	}
}

func TestIMNoRepliesNoReset(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 1)
	res := IM{}.Sync(s, 0, nil)
	if res.Reset {
		t.Error("reset with no replies")
	}
	resNoSelf := IM{ExcludeSelf: true}.Sync(s, 0, nil)
	if resNoSelf.Reset {
		t.Error("reset with no replies and no self")
	}
}

// TestIMTheorem6 confirms the derived interval is never wider than the
// smallest input interval (Theorem 6) on randomized consistent inputs.
func TestIMTheorem6(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 500; trial++ {
		truth := 1000 + rng.Float64()*100
		ownErr := 0.5 + rng.Float64()*5
		ownC := truth + (rng.Float64()*2-1)*ownErr
		s := newServer(t, 1, 0, ownC, 0, ownErr)
		smallest := 2 * ownErr
		var replies []Reply
		for j := 0; j < 1+rng.IntN(6); j++ {
			e := 0.5 + rng.Float64()*5
			c := truth + (rng.Float64()*2-1)*e
			replies = append(replies, Reply{From: 2 + j, C: c, E: e})
			if w := 2 * e; w < smallest {
				smallest = w
			}
		}
		res := IM{}.Sync(s, 0, replies)
		if !res.Reset {
			t.Fatalf("trial %d: correct inputs must intersect", trial)
		}
		if got := 2 * s.Epsilon(); got > smallest+1e-9 {
			t.Fatalf("trial %d: derived width %v > smallest input %v", trial, got, smallest)
		}
		// Correctness is preserved (Theorem 5, zero transit case).
		if !s.Interval(0).Contains(truth) {
			t.Fatalf("trial %d: lost the correct time", trial)
		}
	}
}

func TestFigure3IMFailure(t *testing.T) {
	// Figure 3: a consistent state where MM recovers correctness and IM
	// does not. Correct time 100. S1 [90,102] correct; S2 [91,99]
	// incorrect; S3 [97.5,101.5] correct with the smallest error. The full
	// intersection is S2^S3 = [97.5,99], which excludes the correct time.
	const truth = 100.0
	replies := []Reply{
		{From: 1, C: 96, E: 6},
		{From: 2, C: 95, E: 4},
		{From: 3, C: 99.5, E: 2},
	}

	// A fourth observer with a wide correct interval syncs from these.
	mmServer := newServer(t, 0, 0, 97, 0, 8)
	imServer := newServer(t, 0, 0, 97, 0, 8)

	if res := (MM{}).Sync(mmServer, 0, replies); !res.Reset {
		t.Fatal("MM did not reset")
	}
	if got := mmServer.Read(0); got != 99.5 {
		t.Errorf("MM chose %v, want S3's 99.5", got)
	}
	if !mmServer.Interval(0).Contains(truth) {
		t.Error("MM result incorrect")
	}

	if res := (IM{}).Sync(imServer, 0, replies); !res.Reset {
		t.Fatal("IM did not reset")
	}
	iv := imServer.Interval(0)
	if iv.Contains(truth) {
		t.Errorf("IM result %v unexpectedly correct; figure requires failure", iv)
	}
	if math.Abs(iv.Lo-97.5) > 1e-12 || math.Abs(iv.Hi-99) > 1e-12 {
		t.Errorf("IM interval = %v, want the S2^S3 region [97.5, 99]", iv)
	}
}

func TestLamportMax(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 5)
	res := LamportMax{}.Sync(s, 0, []Reply{
		{From: 2, C: 99, E: 1, RTT: 0},
		{From: 3, C: 103, E: 2, RTT: 1},
	})
	if !res.Reset || res.Accepted != 1 {
		t.Fatalf("result = %+v", res)
	}
	if got := s.Read(0); got != 103 {
		t.Errorf("clock = %v, want max 103", got)
	}
	if got, want := s.Epsilon(), 3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("epsilon = %v, want %v", got, want)
	}
}

func TestLamportMaxKeepsOwnLargerClock(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 5)
	res := LamportMax{}.Sync(s, 0, []Reply{{From: 2, C: 98, E: 1}})
	if res.Reset {
		t.Error("reset although own clock is the maximum")
	}
	if got := s.Read(0); got != 100 {
		t.Errorf("clock = %v", got)
	}
}

func TestLamportMaxIgnoresInconsistent(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 1)
	res := LamportMax{}.Sync(s, 0, []Reply{{From: 2, C: 500, E: 0.5}})
	if res.Reset || len(res.Inconsistent) != 1 {
		t.Errorf("result = %+v", res)
	}
}

func TestMedian(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 10)
	res := Median{}.Sync(s, 0, []Reply{
		{From: 2, C: 96, E: 1},
		{From: 3, C: 98, E: 2},
		{From: 4, C: 104, E: 3},
	})
	// Candidates sorted: 96, 98, 100(self), 104 -> median (lower) = 98.
	if !res.Reset {
		t.Fatal("no reset")
	}
	if got := s.Read(0); got != 98 {
		t.Errorf("clock = %v, want median 98", got)
	}
	if got := s.Epsilon(); got != 2 {
		t.Errorf("epsilon = %v, want 2", got)
	}
}

func TestMedianSelfIsMedianNoOp(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 10)
	res := Median{}.Sync(s, 0, []Reply{
		{From: 2, C: 90, E: 1},
		{From: 3, C: 110, E: 1},
	})
	if res.Reset {
		t.Error("reset although self is the median")
	}
	if got := s.Read(0); got != 100 {
		t.Errorf("clock = %v", got)
	}
}

func TestMean(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 6)
	res := Mean{}.Sync(s, 0, []Reply{
		{From: 2, C: 97, E: 3},
		{From: 3, C: 103, E: 3},
	})
	if !res.Reset || res.Accepted != 2 {
		t.Fatalf("result = %+v", res)
	}
	if got := s.Read(0); got != 100 {
		t.Errorf("clock = %v, want mean 100", got)
	}
	if got := s.Epsilon(); got != 4 {
		t.Errorf("epsilon = %v, want mean error 4", got)
	}
}

func TestMeanNoConsistentRepliesNoOp(t *testing.T) {
	s := newServer(t, 1, 0, 100, 0, 1)
	res := Mean{}.Sync(s, 0, []Reply{{From: 2, C: 500, E: 1}})
	if res.Reset {
		t.Error("reset with no consistent replies")
	}
}

func TestSyncFuncNames(t *testing.T) {
	tests := []struct {
		fn   SyncFunc
		want string
	}{
		{MM{}, "MM"},
		{IM{}, "IM"},
		{LamportMax{}, "max"},
		{Median{}, "median"},
		{Mean{}, "mean"},
	}
	for _, tt := range tests {
		if got := tt.fn.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

// TestTheorem1CorrectnessPreservedOneStep: starting from correct states
// and honest replies (with the remote reading taken sigma seconds before
// receipt, RTT measured on the requester's drifting clock), a sync step
// under MM or IM keeps the requester correct.
func TestTheorem1CorrectnessPreservedOneStep(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, fn := range []SyncFunc{MM{}, IM{}, IM{ExcludeSelf: true}} {
		for trial := 0; trial < 400; trial++ {
			const delta = 1e-3
			drift := (rng.Float64()*2 - 1) * delta
			truth0 := 1000.0
			ownErr := 0.01 + rng.Float64()
			ownC := truth0 + (rng.Float64()*2-1)*ownErr
			s, err := NewServer(truth0, Config{
				ID:           0,
				Clock:        clock.NewDrifting(truth0, ownC, drift),
				Delta:        delta,
				InitialError: ownErr,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Build honest replies: request sent at truth0, reply read at
			// truth0+sigma, received at truth0+sigma+rho. The batch is
			// synchronized after the last arrival, so each reply carries
			// its local-clock Age.
			type pending struct {
				reply  Reply
				recvAt float64
			}
			var collected []pending
			recvT := truth0
			for j := 0; j < 1+rng.IntN(5); j++ {
				sigma := rng.Float64() * 0.05
				rho := rng.Float64() * 0.05
				replyErr := 0.01 + rng.Float64()
				readAt := truth0 + sigma
				replyC := readAt + (rng.Float64()*2-1)*replyErr
				arrive := truth0 + sigma + rho
				if arrive > recvT {
					recvT = arrive
				}
				// RTT as measured on the requester's clock.
				rtt := s.Read(arrive) - s.Read(truth0)
				collected = append(collected, pending{
					reply:  Reply{From: j + 1, C: replyC, E: replyErr, RTT: rtt},
					recvAt: arrive,
				})
			}
			var replies []Reply
			for _, p := range collected {
				p.reply.Age = s.Read(recvT) - s.Read(p.recvAt)
				replies = append(replies, p.reply)
			}
			fn.Sync(s, recvT, replies)
			if !s.Interval(recvT).Contains(recvT) {
				t.Fatalf("%s trial %d: correctness lost: interval %v, truth %v",
					fn.Name(), trial, s.Interval(recvT), recvT)
			}
		}
	}
}

// TestLemma3MinErrorNeverDecreases: the minimum error in a service running
// MM never decreases across a sync step.
func TestLemma3MinErrorNeverDecreases(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 300; trial++ {
		truth := 100.0
		var servers []*Server
		for j := 0; j < 4; j++ {
			e := 0.1 + rng.Float64()
			c := truth + (rng.Float64()*2-1)*e
			servers = append(servers, newServer(t, j, truth, c, 1e-4, e))
		}
		minBefore := math.Inf(1)
		for _, s := range servers {
			minBefore = math.Min(minBefore, s.ErrorAt(truth))
		}
		// Each server syncs against the others with honest zero-delay
		// replies.
		for i, s := range servers {
			var replies []Reply
			for j, o := range servers {
				if j == i {
					continue
				}
				r := o.Reading(truth)
				replies = append(replies, Reply{From: j, C: r.C, E: r.E, RTT: 0})
			}
			MM{}.Sync(s, truth, replies)
		}
		minAfter := math.Inf(1)
		for _, s := range servers {
			minAfter = math.Min(minAfter, s.ErrorAt(truth))
		}
		if minAfter < minBefore-1e-12 {
			t.Fatalf("trial %d: min error decreased %v -> %v", trial, minBefore, minAfter)
		}
	}
}

func TestErrorAtChargesPendingSlew(t *testing.T) {
	// A server over a slewing clock must report the unabsorbed correction
	// as part of its maximum error, or its interval would exclude the
	// correct time while the slew catches up.
	slew := clock.NewSlewing(clock.NewDrifting(0, 5, 0), 0.01)
	s, err := NewServer(0, Config{Clock: slew, Delta: 0, InitialError: 6})
	if err != nil {
		t.Fatal(err)
	}
	// True time 0; clock reads 5; interval [5-6, 5+6] contains 0. Sync
	// wants the clock at 0 with inherited error 0.5.
	s.SetClock(0, 0, 0.5)
	// The slewing clock still reads ~5; pending correction is -5.
	if got := s.Read(0); math.Abs(got-5) > 1e-9 {
		t.Fatalf("slewing clock stepped: %v", got)
	}
	e := s.ErrorAt(0)
	if e < 5.5-1e-9 {
		t.Errorf("ErrorAt = %v, must cover pending correction 5 plus epsilon 0.5", e)
	}
	if !s.Interval(0).Contains(0) {
		t.Error("interval excludes the correct time during slew")
	}
	// As the correction absorbs, the reported error shrinks toward the
	// inherited epsilon.
	s.Read(400) // absorb 0.01 * 400 = 4
	if e := s.ErrorAt(400); e > 0.5+1.0+1e-6 {
		t.Errorf("ErrorAt(400) = %v, want about pending 1 + epsilon 0.5", e)
	}
}

func TestReadingCarriesClaimedDelta(t *testing.T) {
	s := newServer(t, 1, 0, 100, 3e-5, 0.5)
	r := s.Reading(0)
	if r.Delta != 3e-5 {
		t.Errorf("Reading.Delta = %v, want the claimed bound 3e-5", r.Delta)
	}
}

func TestRaiseDeltaRepairsBookkeeping(t *testing.T) {
	// A clock drifting at 4e-2 claiming 1e-5: after 100 s its interval
	// has lost the correct time. Raising the bound to the real drift
	// (plus margin) must restore correctness by charging the
	// under-accounted deterioration to the inherited error.
	s, err := NewServer(0, Config{
		ID:           1,
		Clock:        clock.NewDrifting(0, 0, 0.04),
		Delta:        1e-5,
		InitialError: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Interval(100).Contains(100) {
		t.Fatal("interval should have lost the correct time (offset 4 > E ~0.5)")
	}
	if err := s.RaiseDelta(100, 0.05); err != nil {
		t.Fatal(err)
	}
	if s.Delta() != 0.05 {
		t.Errorf("Delta = %v", s.Delta())
	}
	if !s.Interval(100).Contains(100) {
		t.Errorf("interval %v still excludes the correct time after repair", s.Interval(100))
	}
	// Error now grows at the new bound.
	e0 := s.ErrorAt(100)
	if got, want := s.ErrorAt(200)-e0, 0.05*(100*1.04); math.Abs(got-want) > 1e-6 {
		t.Errorf("post-repair growth = %v, want %v", got, want)
	}
}

func TestRaiseDeltaRefusesLowering(t *testing.T) {
	s := newServer(t, 1, 0, 0, 1e-4, 0.5)
	if err := s.RaiseDelta(0, 1e-5); err == nil {
		t.Error("lowering delta accepted")
	}
	if s.Delta() != 1e-4 {
		t.Errorf("Delta changed to %v", s.Delta())
	}
}

func TestRaiseDeltaNoopAtSameValue(t *testing.T) {
	s := newServer(t, 1, 0, 0, 1e-4, 0.5)
	e0 := s.ErrorAt(10)
	if err := s.RaiseDelta(10, 1e-4); err != nil {
		t.Fatal(err)
	}
	if got := s.ErrorAt(10); got != e0 {
		t.Errorf("error changed on no-op raise: %v -> %v", e0, got)
	}
}
