package core

import (
	"math"
	"sort"
)

// SyncFunc is a synchronization function F in the paper's Section 1.2
// characterization: each server periodically computes
//
//	C_i(t) <- F(C_i1(t), C_i2(t), ..., C_ik(t))
//
// over the replies it collected. Implementations mutate the server's clock
// and error bookkeeping; the service layer supplies replies in arrival
// order (increasing RTT for a simultaneous broadcast, as in the Theorem 2
// analysis).
type SyncFunc interface {
	// Name identifies the function in experiment output.
	Name() string
	// Sync processes the replies collected at real time t.
	Sync(s *Server, t float64, replies []Reply) Result
}

// Result reports what a synchronization pass did.
type Result struct {
	// Reset is true when the server's clock was set.
	Reset bool
	// Accepted counts replies that triggered or contributed to a reset.
	Accepted int
	// Inconsistent lists indices of replies found inconsistent with the
	// server's interval. Non-empty means at least one of the two servers
	// involved is incorrect and the Section 3 recovery policy should run.
	Inconsistent []int
}

// MM is algorithm MM: minimization of the maximum error. Rule MM-2 is
// applied to each reply in arrival order: a consistent reply whose
// transit-charged error E_j + (1+delta_i) xi^i_j is at most the server's
// current error causes a reset to that neighbor's clock.
type MM struct{}

// Name returns "MM".
func (MM) Name() string { return "MM" }

// Sync applies rule MM-2 to each reply in order.
func (MM) Sync(s *Server, t float64, replies []Reply) Result {
	var res Result
	for i, r := range replies {
		if !s.ConsistentWith(t, r) {
			s.noteInconsistent()
			res.Inconsistent = append(res.Inconsistent, i)
			continue
		}
		c, _, lead := s.effective(r)
		if lead <= s.ErrorAt(t) {
			s.SetClock(t, c, lead)
			res.Reset = true
			res.Accepted++
		}
	}
	return res
}

// IM is algorithm IM: intersection of the time intervals. Rule IM-2
// transforms each reply <C_j, E_j> into the offset interval
//
//	[T_j, L_j] = [C_j - E_j - C_i,  C_j + E_j + (1+delta_i) xi^i_j - C_i]
//
// and intersects them all into [a, b]. If the intersection is non-empty the
// service is consistent and the server resets to its midpoint:
// epsilon <- (b-a)/2, C_i <- C_i + (a+b)/2.
type IM struct {
	// ExcludeSelf drops the server's own interval from the intersection.
	// The paper's rule IM-2 intersects replies only, but its Theorem 5
	// proof notes the result is the intersection with the server's own
	// (still correct) interval; including self is both safer and the
	// default.
	ExcludeSelf bool
	// DropInconsistent pre-filters replies that are individually
	// inconsistent with the server's own interval instead of failing the
	// whole pass, mirroring MM-2's "any reply that is inconsistent with
	// S_i is ignored". The remaining replies must still mutually
	// intersect for a reset to happen.
	DropInconsistent bool
	// FloorError, when positive, is the smallest inherited error a reset
	// may leave: the derived interval's half-width is clamped up to it.
	// This is NTP's minimum-dispersion hedge against the Figure 3 hazard
	// — a tight consistent-but-wrong interval (a neighbor drifting just
	// beyond its claimed bound) cannot force the server's error below
	// the floor, so small poisonings stay inside the reported interval.
	FloorError float64
}

// Name returns "IM".
func (IM) Name() string { return "IM" }

// Sync applies rule IM-2 over the reply set.
func (f IM) Sync(s *Server, t float64, replies []Reply) Result {
	var res Result
	ci := s.Read(t)
	a, b := math.Inf(-1), math.Inf(1)
	if !f.ExcludeSelf {
		ei := s.ErrorAt(t)
		a, b = -ei, ei
	}
	used := 0
	for i, r := range replies {
		if f.DropInconsistent && !s.ConsistentWith(t, r) {
			s.noteInconsistent()
			res.Inconsistent = append(res.Inconsistent, i)
			continue
		}
		c, trail, lead := s.effective(r)
		lo := c - trail - ci
		hi := c + lead - ci
		a = math.Max(a, lo)
		b = math.Min(b, hi)
		used++
	}
	if used == 0 || b < a || math.IsInf(a, -1) {
		// Empty intersection: the time service is inconsistent (or there
		// was nothing to intersect). No reset.
		if b < a && len(res.Inconsistent) == 0 {
			s.noteInconsistent()
			res.Inconsistent = inconsistentIndices(len(replies))
		}
		return res
	}
	eps := (b - a) / 2
	if f.FloorError > eps {
		eps = f.FloorError
	}
	s.SetClock(t, ci+(a+b)/2, eps)
	res.Reset = true
	res.Accepted = used
	return res
}

func inconsistentIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// LamportMax is the baseline of [Lamport 78]: the synchronization function
// is the maximum of the clocks, which preserves local monotonicity. The
// server adopts the largest consistent reply clock that exceeds its own;
// error bookkeeping follows the adopted server as in MM.
type LamportMax struct{}

// Name returns "max".
func (LamportMax) Name() string { return "max" }

// Sync adopts the maximum clock value among self and consistent replies.
func (LamportMax) Sync(s *Server, t float64, replies []Reply) Result {
	var res Result
	bestC := s.Read(t)
	bestIdx := -1
	for i, r := range replies {
		if !s.ConsistentWith(t, r) {
			s.noteInconsistent()
			res.Inconsistent = append(res.Inconsistent, i)
			continue
		}
		if c, _, _ := s.effective(r); c > bestC {
			bestC = c
			bestIdx = i
		}
	}
	if bestIdx >= 0 {
		c, _, lead := s.effective(replies[bestIdx])
		s.SetClock(t, c, lead)
		res.Reset = true
		res.Accepted = 1
	}
	return res
}

// Median is the baseline of [Lamport 82]: the synchronization function is
// the median clock value of self and the consistent replies. The adopted
// error is the transit-charged error of the median element (the server's
// own error if self is the median).
type Median struct{}

// Name returns "median".
func (Median) Name() string { return "median" }

// Sync adopts the median clock value.
func (Median) Sync(s *Server, t float64, replies []Reply) Result {
	var res Result
	type cand struct {
		c   float64
		err float64
		own bool
	}
	cands := []cand{{c: s.Read(t), err: s.ErrorAt(t), own: true}}
	for i, r := range replies {
		if !s.ConsistentWith(t, r) {
			s.noteInconsistent()
			res.Inconsistent = append(res.Inconsistent, i)
			continue
		}
		c, _, lead := s.effective(r)
		cands = append(cands, cand{c: c, err: lead})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].c < cands[j].c })
	med := cands[(len(cands)-1)/2]
	if med.own {
		return res
	}
	s.SetClock(t, med.c, med.err)
	res.Reset = true
	res.Accepted = 1
	return res
}

// Mean is the baseline mean-of-clocks function mentioned with [Lamport 82].
// The server sets its clock to the average of its own and every consistent
// reply clock; the inherited error is the average of the corresponding
// transit-charged errors (a heuristic: averaging has no principled
// worst-case bound, which is part of why the paper's interval formulation
// is interesting).
type Mean struct{}

// Name returns "mean".
func (Mean) Name() string { return "mean" }

// Sync adopts the mean clock value of self and consistent replies.
func (Mean) Sync(s *Server, t float64, replies []Reply) Result {
	var res Result
	sumC := s.Read(t)
	sumE := s.ErrorAt(t)
	n := 1
	for i, r := range replies {
		if !s.ConsistentWith(t, r) {
			s.noteInconsistent()
			res.Inconsistent = append(res.Inconsistent, i)
			continue
		}
		c, _, lead := s.effective(r)
		sumC += c
		sumE += lead
		n++
	}
	if n == 1 {
		return res
	}
	s.SetClock(t, sumC/float64(n), sumE/float64(n))
	res.Reset = true
	res.Accepted = n - 1
	return res
}
