package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"disttime/internal/interval"
)

// This file checks algebraic invariants of the synchronization functions
// over randomized inputs — the properties the paper's proofs rely on,
// independent of any particular scenario.

// honestScenario builds a correct server and honest zero-age replies
// around a known true time.
func honestScenario(t *testing.T, rng *rand.Rand) (s *Server, truth float64, replies []Reply) {
	t.Helper()
	truth = 500 + rng.Float64()*1000
	ownErr := 0.01 + rng.Float64()*2
	s = newServer(t, 0, truth, truth+(rng.Float64()*2-1)*ownErr, rng.Float64()*1e-4, ownErr)
	n := 1 + rng.IntN(6)
	for j := 0; j < n; j++ {
		e := 0.01 + rng.Float64()*2
		rtt := rng.Float64() * 0.1
		// The remote read its clock up to rtt ago; its reading was correct
		// then: C in [truth-rtt-e, truth+e] guarantees the transit-adjusted
		// interval contains truth.
		readAt := truth - rng.Float64()*rtt
		c := readAt + (rng.Float64()*2-1)*e
		replies = append(replies, Reply{From: j + 1, C: c, E: e, RTT: rtt})
	}
	return s, truth, replies
}

// TestPropertyAllFunctionsPreserveCorrectness: every synchronization
// function keeps an honest server correct on honest inputs (Theorems 1
// and 5, extended to the baselines that carry interval bookkeeping).
func TestPropertyAllFunctionsPreserveCorrectness(t *testing.T) {
	fns := []SyncFunc{
		MM{}, IM{}, IM{DropInconsistent: true}, IM{ExcludeSelf: true},
		LamportMax{}, Median{}, Mean{}, TrimmedMean{F: 1}, SelectIM{},
	}
	rng := rand.New(rand.NewPCG(21, 22))
	for _, fn := range fns {
		for trial := 0; trial < 300; trial++ {
			s, truth, replies := honestScenario(t, rng)
			fn.Sync(s, truth, replies)
			if !s.Interval(truth).Contains(truth) {
				t.Fatalf("%s trial %d: correctness lost: interval %v, truth %v",
					fn.Name(), trial, s.Interval(truth), truth)
			}
		}
	}
}

// TestPropertyEpsilonNeverNegative: no pass may leave a negative
// inherited error.
func TestPropertyEpsilonNeverNegative(t *testing.T) {
	fns := []SyncFunc{MM{}, IM{}, LamportMax{}, Median{}, Mean{}, TrimmedMean{F: 1}, SelectIM{}}
	rng := rand.New(rand.NewPCG(23, 24))
	for _, fn := range fns {
		for trial := 0; trial < 200; trial++ {
			s, truth, replies := honestScenario(t, rng)
			fn.Sync(s, truth, replies)
			if s.Epsilon() < 0 {
				t.Fatalf("%s trial %d: negative epsilon %v", fn.Name(), trial, s.Epsilon())
			}
		}
	}
}

// TestPropertyIMResultSubsetOfInputs: the interval IM derives is a subset
// of the server's own prior interval and of every reply's transit-adjusted
// interval (the definition of intersection, and the heart of Theorem 6).
func TestPropertyIMResultSubsetOfInputs(t *testing.T) {
	rng := rand.New(rand.NewPCG(25, 26))
	for trial := 0; trial < 500; trial++ {
		s, truth, replies := honestScenario(t, rng)
		own := s.Interval(truth)
		var inputs []interval.Interval
		inputs = append(inputs, own)
		for _, r := range replies {
			inputs = append(inputs, s.replyInterval(r))
		}
		res := IM{}.Sync(s, truth, replies)
		if !res.Reset {
			continue
		}
		got := s.Interval(truth)
		for k, in := range inputs {
			if !in.ContainsInterval(got) {
				// Floating error tolerance.
				grown := in.Grow(1e-9)
				if !grown.ContainsInterval(got) {
					t.Fatalf("trial %d: IM result %v not inside input %d %v", trial, got, k, in)
				}
			}
		}
	}
}

// TestPropertyMMNeverIncreasesError: an MM pass can only keep or shrink
// the server's error at the sync instant (the accepted reply's adjusted
// error is at most the current error, by rule MM-2's predicate).
func TestPropertyMMNeverIncreasesError(t *testing.T) {
	rng := rand.New(rand.NewPCG(27, 28))
	for trial := 0; trial < 500; trial++ {
		s, truth, replies := honestScenario(t, rng)
		before := s.ErrorAt(truth)
		MM{}.Sync(s, truth, replies)
		after := s.ErrorAt(truth)
		if after > before+1e-9 {
			t.Fatalf("trial %d: MM increased error %v -> %v", trial, before, after)
		}
	}
}

// TestPropertyIMNeverWidensOwnInterval: with the self interval included,
// an IM pass can only keep or shrink the server's error.
func TestPropertyIMNeverWidensOwnInterval(t *testing.T) {
	rng := rand.New(rand.NewPCG(29, 30))
	for trial := 0; trial < 500; trial++ {
		s, truth, replies := honestScenario(t, rng)
		before := s.ErrorAt(truth)
		IM{}.Sync(s, truth, replies)
		if after := s.ErrorAt(truth); after > before+1e-9 {
			t.Fatalf("trial %d: IM widened error %v -> %v", trial, before, after)
		}
	}
}

// TestPropertyResultBookkeeping: Reset implies progress was recorded, and
// inconsistent indices are valid and sorted.
func TestPropertyResultBookkeeping(t *testing.T) {
	fns := []SyncFunc{MM{}, IM{}, IM{DropInconsistent: true}, LamportMax{}, Median{}, Mean{}, TrimmedMean{F: 1}, SelectIM{}}
	rng := rand.New(rand.NewPCG(31, 32))
	for _, fn := range fns {
		for trial := 0; trial < 200; trial++ {
			s, truth, replies := honestScenario(t, rng)
			// Sometimes poison one reply to exercise the inconsistent path.
			if rng.IntN(3) == 0 && len(replies) > 0 {
				replies[rng.IntN(len(replies))].C += 1e6
			}
			res := fn.Sync(s, truth, replies)
			if res.Reset && res.Accepted == 0 {
				t.Fatalf("%s trial %d: reset without accepted replies", fn.Name(), trial)
			}
			prev := -1
			for _, idx := range res.Inconsistent {
				if idx < 0 || idx >= len(replies) {
					t.Fatalf("%s trial %d: inconsistent index %d out of range", fn.Name(), trial, idx)
				}
				if idx <= prev {
					t.Fatalf("%s trial %d: inconsistent indices not increasing: %v",
						fn.Name(), trial, res.Inconsistent)
				}
				prev = idx
			}
		}
	}
}

// TestPropertyAgeTranslationConsistency: translating a reply by Age and
// syncing is equivalent (to first order in delta) to syncing the fresh
// reply at its arrival and letting the clock drift: both leave the server
// correct.
func TestPropertyAgeTranslationConsistency(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	for trial := 0; trial < 400; trial++ {
		truth := 1000.0
		e := 0.05 + rng.Float64()
		rtt := rng.Float64() * 0.05
		age := rng.Float64() * 5
		readAt := truth - rng.Float64()*rtt - age
		c := readAt + (rng.Float64()*2-1)*e

		s := newServer(t, 0, truth, truth+0.1, 1e-4, 3.0)
		reply := Reply{From: 1, C: c, E: e, RTT: rtt, Age: age}
		res := IM{}.Sync(s, truth, []Reply{reply})
		if !res.Reset {
			continue
		}
		if !s.Interval(truth).Contains(truth) {
			t.Fatalf("trial %d: aged reply broke correctness (age %v)", trial, age)
		}
	}
}

// TestPropertyMMIMAgreeOnSingleDominantReply: with one reply strictly
// better than the server's own state and fully contained in it, MM adopts
// it and IM derives an interval inside it; both end up near the reply.
func TestPropertyMMIMAgreeOnSingleDominantReply(t *testing.T) {
	rng := rand.New(rand.NewPCG(35, 36))
	for trial := 0; trial < 300; trial++ {
		truth := 100.0
		mm := newServer(t, 0, truth, truth+0.5, 0, 5)
		im := newServer(t, 0, truth, truth+0.5, 0, 5)
		reply := Reply{From: 1, C: truth + (rng.Float64()*2-1)*0.1, E: 0.2, RTT: 0}
		if !(MM{}).Sync(mm, truth, []Reply{reply}).Reset {
			t.Fatal("MM rejected dominant reply")
		}
		if !(IM{}).Sync(im, truth, []Reply{reply}).Reset {
			t.Fatal("IM rejected dominant reply")
		}
		if d := math.Abs(mm.Read(truth) - im.Read(truth)); d > 0.2+1e-9 {
			t.Fatalf("trial %d: MM and IM diverge by %v on a dominant reply", trial, d)
		}
	}
}
