package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("requests_total") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("queue_depth")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %v, want -1", got)
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var lh *LogHistogram
	var tr *Tracer
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(1)
	lh.Observe(1)
	tr.Emit(SyncSpan{})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || lh.Count() != 0 || tr.Spans() != 0 {
		t.Fatal("nil metric handles must be inert")
	}
	if tr.Err() != nil {
		t.Fatal("nil tracer must report no error")
	}
}

func TestHistogramZeroObservations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("empty", []float64{1, 2, 3})
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("empty histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	if bk := h.Buckets(); len(bk) != 0 {
		t.Fatalf("empty histogram has buckets: %v", bk)
	}
	lh := r.LogHistogram("empty_log")
	if lh.Count() != 0 || len(lh.Buckets()) != 0 {
		t.Fatal("empty log histogram must have no buckets")
	}
	if q := lh.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	// Snapshot of empty histograms is still well-formed.
	snap := r.Snapshot()
	if len(snap.Histograms) != 2 {
		t.Fatalf("snapshot has %d histograms, want 2", len(snap.Histograms))
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	// A value exactly on a bound lands in that bound's bucket (le
	// semantics); just above it lands in the next.
	h.Observe(1) // -> le=1
	h.Observe(math.Nextafter(1, 2))
	h.Observe(2)  // -> le=2 (with the previous one)
	h.Observe(4)  // -> le=4
	h.Observe(-5) // below everything -> le=1
	bk := h.Buckets()
	want := []Bucket{{1, 2}, {2, 2}, {4, 1}}
	if len(bk) != len(want) {
		t.Fatalf("buckets = %v, want %v", bk, want)
	}
	for i := range want {
		if bk[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, bk[i], want[i])
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(1e9)
	h.Observe(math.Inf(1))
	bk := h.Buckets()
	if len(bk) != 1 || !math.IsInf(bk[0].UpperBound, 1) || bk[0].Count != 2 {
		t.Fatalf("overflow buckets = %v", bk)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds must panic")
		}
	}()
	NewRegistry().Histogram("bad", []float64{1, 1})
}

func TestLogHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.LogHistogram("rtt")
	// The floor bucket catches zero, negatives, and NaN.
	h.Observe(0)
	h.Observe(-3)
	h.Observe(math.NaN())
	if h.ZeroCount() != 3 {
		t.Fatalf("zero count = %d, want 3", h.ZeroCount())
	}
	// Every positive observation lands in a bucket whose bound brackets
	// it with constant relative resolution.
	for _, v := range []float64{1e-9, 1e-3, 0.5, 1, 7, 1e6} {
		i := logIndex(v)
		ub := logUpperBound(i)
		if v > ub {
			t.Fatalf("value %v above its bucket bound %v", v, ub)
		}
		if i > 0 {
			lb := logUpperBound(i - 1)
			if v < lb && logIndex(v) != 0 {
				t.Fatalf("value %v below its bucket floor %v", v, lb)
			}
		}
		h.Observe(v)
	}
	// Out-of-range values clamp, not vanish.
	h.Observe(1e-300)
	h.Observe(1e300)
	if got := int(h.Count()); got != 11 {
		t.Fatalf("count = %d, want 11", got)
	}
	// Quantile upper-bounds the true quantile within the covered range:
	// 1e300 clamps into the last bucket, so q=1 reports that bucket's
	// bound (the histogram's range ceiling), not the raw observation.
	if q, want := h.Quantile(1), logUpperBound(logNumBuckets-1); q != want {
		t.Fatalf("q1 = %v, want last-bucket bound %v (clamped range)", q, want)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("q0 = %v, want 0 (floor bucket occupied)", q)
	}
}

func TestLogHistogramBoundsMonotone(t *testing.T) {
	prev := 0.0
	for i := 0; i < logNumBuckets; i++ {
		ub := logUpperBound(i)
		if ub <= prev {
			t.Fatalf("bucket %d bound %v not above previous %v", i, ub, prev)
		}
		prev = ub
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Register in scrambled order; snapshots must sort.
		r.Counter("z_total").Add(7)
		r.Counter("a_total").Add(3)
		r.Gauge("m_gauge").Set(1.25)
		h := r.Histogram("f_hist", []float64{0.1, 1, 10})
		lh := r.LogHistogram("d_hist")
		for i := 0; i < 100; i++ {
			h.Observe(float64(i) * 0.07)
			lh.Observe(float64(i) * 1e-3)
		}
		return r
	}
	var buf1, buf2 bytes.Buffer
	if err := build().WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", buf1.String(), buf2.String())
	}
	// Names must appear sorted in the JSON stream.
	s := buf1.String()
	if strings.Index(s, `"a_total"`) > strings.Index(s, `"z_total"`) {
		t.Fatal("counter names not sorted in snapshot")
	}
	if strings.Index(s, `"d_hist"`) > strings.Index(s, `"f_hist"`) {
		t.Fatal("histogram names not sorted in snapshot")
	}

	var p1, p2 bytes.Buffer
	if err := build().WritePrometheus(&p1); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&p2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1.Bytes(), p2.Bytes()) {
		t.Fatal("prometheus expositions differ between identical registries")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total").Add(3)
	r.Gauge("depth").Set(2.5)
	h := r.Histogram("lat", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE reqs_total counter\nreqs_total 3\n",
		"# TYPE depth gauge\ndepth 2.5\n",
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="2"} 1`, // cumulative: nothing landed in (1,2]
		`lat_bucket{le="+Inf"} 2`,
		"lat_sum 5.5",
		"lat_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestTracerJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(SyncSpan{
		T: 12.5, Node: 3, Rule: "IM-2", Replies: 4, Accepted: 3,
		Rejected: []int{1}, Reset: true,
		BeforeC: 12.4, BeforeE: 0.2, AfterC: 12.5, AfterE: 0.05,
	})
	tr.Emit(SyncSpan{T: 13, Node: 0, Rule: "MM-2"})
	if tr.Spans() != 2 {
		t.Fatalf("spans = %d, want 2", tr.Spans())
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	want := `{"span":"sync_round","t":12.5,"node":3,"rule":"IM-2","replies":4,` +
		`"accepted":3,"rejected":[1],"reset":true,"recovered":false,` +
		`"before":{"c":12.4,"e":0.2},"after":{"c":12.5,"e":0.05}}`
	if lines[0] != want {
		t.Fatalf("span line:\n got %s\nwant %s", lines[0], want)
	}
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errWrite }

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "write refused" }

func TestTracerWriteError(t *testing.T) {
	tr := NewTracer(failWriter{})
	tr.Emit(SyncSpan{})
	tr.Emit(SyncSpan{})
	if tr.Err() == nil {
		t.Fatal("tracer swallowed the write error")
	}
	if tr.Spans() != 2 {
		t.Fatalf("spans = %d, want 2 (emits keep counting after an error)", tr.Spans())
	}
}

// TestConcurrentUpdatesRaceClean exercises every metric kind from many
// goroutines; run with -race this is the registry's race certificate.
func TestConcurrentUpdatesRaceClean(t *testing.T) {
	r := NewRegistry()
	var tr bytes.Buffer
	tracer := NewTracer(&tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("c_total")
			gg := r.Gauge("g")
			h := r.Histogram("h", []float64{1, 10, 100})
			lh := r.LogHistogram("lh")
			for i := 0; i < 1000; i++ {
				c.Inc()
				gg.Set(float64(i))
				h.Observe(float64(i % 200))
				lh.Observe(float64(i%97) * 1e-3)
				if i%100 == 0 {
					tracer.Emit(SyncSpan{T: float64(i), Node: g})
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.LogHistogram("lh").Count(); got != 8000 {
		t.Fatalf("log histogram count = %d, want 8000", got)
	}
	if tracer.Spans() != 80 {
		t.Fatalf("spans = %d, want 80", tracer.Spans())
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestHotPathAllocationFree verifies PR 1's discipline: steady-state
// metric updates perform zero allocations.
func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 2, 3})
	lh := r.LogHistogram("lh")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(2)
		h.Observe(1.5)
		lh.Observe(0.25)
	})
	if allocs != 0 {
		t.Fatalf("metric updates allocate %v per run, want 0", allocs)
	}
}
