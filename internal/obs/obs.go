// Package obs is the repository's dependency-free observability layer:
// a metrics registry (counters, gauges, fixed-bucket and HDR-style
// log-bucket histograms) plus structured synchronization-round spans.
//
// The paper's evaluation (Section 4, Figures 5-7) is entirely empirical:
// distributions of error bounds, adjustment magnitudes, and round
// outcomes measured across a running service. This package is how the
// reproduction produces those measurements first-class — the simulator,
// the chaos harness, and the real UDP path all report through the same
// registry, and a seeded simulated run serializes to byte-identical
// snapshots and span logs every time.
//
// Two disciplines govern the design:
//
//   - Hot-path updates are allocation-free (PR 1's rule). Metric handles
//     are resolved once at wiring time; Inc/Add/Set/Observe touch only
//     atomics on preallocated arrays. No map lookups, no boxing, no
//     closures per event.
//
//   - Snapshots are deterministic. Metric enumeration is sorted by name,
//     bucket enumeration by index, floats render through strconv's
//     shortest round-trip form — so under a fixed seed two runs emit
//     identical bytes (the mapiter lint analyzer enforces the sorted-keys
//     idiom in this package).
//
// Updates are race-clean: every mutation is a single atomic operation,
// so concurrent real-network callers (the UDP client and server) share a
// registry safely. The float64 sums kept by histograms are CAS loops;
// under concurrency their accumulation order — and hence the exact sum —
// is scheduling-dependent, which is fine for the real-network path and
// irrelevant for the single-threaded simulator, where determinism is the
// contract.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//lint:noalloc
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
//
//lint:noalloc
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
//
//lint:noalloc
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
//
//lint:noalloc
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value.
//
//lint:noalloc
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry holds named metrics. Metrics are created on first use and
// live for the registry's lifetime; handles returned by the getters are
// stable and safe to cache (the intended hot-path idiom). All methods
// are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	logs     map[string]*LogHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		logs:     make(map[string]*LogHistogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named fixed-bucket histogram, creating it with
// the given bucket upper bounds if needed. The bounds must be strictly
// increasing; an existing histogram's bounds win (the argument is then
// ignored), matching Prometheus client semantics for repeated
// registration.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// LogHistogram returns the named HDR-style log-bucket histogram,
// creating it if needed.
func (r *Registry) LogHistogram(name string) *LogHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.logs[name]
	if h == nil {
		h = newLogHistogram()
		r.logs[name] = h
	}
	return h
}

// sortedNames returns m's keys in sorted order. Callers pass a registry
// map while holding r.mu — taking the map by value (rather than reading
// the field here) keeps every access to the guarded fields at the locked
// call sites, where the guardedby analyzer can see the lock.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// validateBounds panics on non-increasing histogram bounds; histograms
// are wired at startup, so a bad boundary list is a programming error,
// not a runtime condition.
func validateBounds(bounds []float64) {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
}
