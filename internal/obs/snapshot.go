package obs

import (
	"encoding/json"
	"io"
	"math"
	"strconv"
)

// CounterSnapshot is one counter's value at snapshot time.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnapshot is one gauge's value at snapshot time.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramSnapshot is one histogram's state at snapshot time. Kind is
// "fixed" or "log"; Buckets holds only the non-empty buckets, in
// increasing bound order (non-cumulative counts).
type HistogramSnapshot struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"`
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a full, deterministic picture of a registry: every metric
// sorted by name, every bucket by bound. Equal registry states produce
// equal snapshots, and equal snapshots marshal to equal bytes.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current state. The enumeration is
// sorted (names, then bucket bounds), so a snapshot of a deterministic
// run is itself deterministic.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	s.Counters = make([]CounterSnapshot, 0, len(r.counters))
	for _, name := range sortedNames(r.counters) {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: r.counters[name].Value()})
	}
	s.Gauges = make([]GaugeSnapshot, 0, len(r.gauges))
	for _, name := range sortedNames(r.gauges) {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: r.gauges[name].Value()})
	}
	s.Histograms = make([]HistogramSnapshot, 0, len(r.hists)+len(r.logs))
	// Fixed and log histograms share one sorted namespace; fixed names
	// sort first only if they compare first.
	var hists []namedHist
	for _, name := range sortedNames(r.hists) {
		h := r.hists[name]
		hists = append(hists, namedHist{name, HistogramSnapshot{
			Name: name, Kind: "fixed", Count: h.Count(), Sum: h.Sum(), Buckets: h.Buckets(),
		}})
	}
	for _, name := range sortedNames(r.logs) {
		h := r.logs[name]
		hists = append(hists, namedHist{name, HistogramSnapshot{
			Name: name, Kind: "log", Count: h.Count(), Sum: h.Sum(), Buckets: h.Buckets(),
		}})
	}
	// Merge the two already-sorted runs by name.
	sortNamedHists(hists)
	for _, nh := range hists {
		s.Histograms = append(s.Histograms, nh.snap)
	}
	return s
}

// namedHist pairs a histogram snapshot with its sort key.
type namedHist struct {
	name string
	snap HistogramSnapshot
}

// sortNamedHists orders histogram snapshots by name (insertion sort; the
// input is two concatenated sorted runs, so this is near-linear).
func sortNamedHists(hists []namedHist) {
	for i := 1; i < len(hists); i++ {
		for j := i; j > 0 && hists[j].name < hists[j-1].name; j-- {
			hists[j], hists[j-1] = hists[j-1], hists[j]
		}
	}
}

// WriteJSON writes the snapshot as indented JSON with a trailing
// newline. The bytes are a pure function of the registry state.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative _bucket/_sum/_count families. Output is
// sorted by metric name, so it is deterministic too.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var buf []byte
	for _, name := range sortedNames(r.counters) {
		buf = append(buf, "# TYPE "...)
		buf = append(buf, name...)
		buf = append(buf, " counter\n"...)
		buf = append(buf, name...)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, r.counters[name].Value(), 10)
		buf = append(buf, '\n')
	}
	for _, name := range sortedNames(r.gauges) {
		buf = append(buf, "# TYPE "...)
		buf = append(buf, name...)
		buf = append(buf, " gauge\n"...)
		buf = append(buf, name...)
		buf = append(buf, ' ')
		buf = appendFloat(buf, r.gauges[name].Value())
		buf = append(buf, '\n')
	}
	for _, name := range sortedNames(r.hists) {
		buf = appendPromHistogram(buf, name, r.hists[name].cumulative(),
			r.hists[name].Sum(), r.hists[name].Count())
	}
	for _, name := range sortedNames(r.logs) {
		h := r.logs[name]
		// Log histograms expose only their non-empty buckets,
		// cumulated; the +Inf bucket is the total count.
		var cum uint64
		sparse := h.Buckets()
		cumBuckets := make([]Bucket, 0, len(sparse)+1)
		for _, b := range sparse {
			cum += b.Count
			cumBuckets = append(cumBuckets, Bucket{UpperBound: b.UpperBound, Count: cum})
		}
		cumBuckets = append(cumBuckets, Bucket{UpperBound: math.Inf(1), Count: h.Count()})
		buf = appendPromHistogram(buf, name, cumBuckets, h.Sum(), h.Count())
	}
	_, err := w.Write(buf)
	return err
}

// appendPromHistogram renders one cumulative histogram family.
func appendPromHistogram(buf []byte, name string, cum []Bucket, sum float64, count uint64) []byte {
	buf = append(buf, "# TYPE "...)
	buf = append(buf, name...)
	buf = append(buf, " histogram\n"...)
	for _, b := range cum {
		buf = append(buf, name...)
		buf = append(buf, `_bucket{le="`...)
		if math.IsInf(b.UpperBound, 1) {
			buf = append(buf, "+Inf"...)
		} else {
			buf = appendFloat(buf, b.UpperBound)
		}
		buf = append(buf, `"} `...)
		buf = strconv.AppendUint(buf, b.Count, 10)
		buf = append(buf, '\n')
	}
	buf = append(buf, name...)
	buf = append(buf, "_sum "...)
	buf = appendFloat(buf, sum)
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_count "...)
	buf = strconv.AppendUint(buf, count, 10)
	buf = append(buf, '\n')
	return buf
}

// appendFloat renders v in the shortest form that round-trips, the
// deterministic float encoding used throughout the package.
func appendFloat(buf []byte, v float64) []byte {
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}
