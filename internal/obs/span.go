package obs

import (
	"io"
	"strconv"
	"sync"
)

// SyncSpan is the structured record of one synchronization round: which
// server ran which rule at what virtual time, how many replies it
// consumed, which replies it rejected as inconsistent, whether it
// adopted a new clock value, and the clock/error bounds bracketing the
// pass. One span serializes to one JSONL line; under a seeded simulated
// run the whole span log is byte-identical across invocations.
//
// The event vocabulary follows the paper's rules: a span *is* the round
// (start through completion); Accepted counts adopt events (replies that
// triggered or fed a reset under MM-2/IM-2), Rejected lists reject
// events (reply indices found inconsistent, the rule's "any reply that
// is inconsistent with S_i is ignored"), Reset records whether the clock
// was actually set, and Recovered whether the Section 3 heuristic ran.
type SyncSpan struct {
	// T is the virtual time at which the round completed.
	T float64
	// Node is the synchronizing server's ID.
	Node int
	// Rule names the synchronization rule that fired: "MM-2", "IM-2", or
	// the function's own name for non-paper baselines.
	Rule string
	// Replies is how many replies the round handed to the rule.
	Replies int
	// Accepted counts replies that triggered or contributed to a reset.
	Accepted int
	// Rejected lists the indices of replies found inconsistent.
	Rejected []int
	// Reset reports whether the pass set the clock.
	Reset bool
	// Recovered reports whether Section 3 recovery adopted a third
	// server during the pass.
	Recovered bool
	// BeforeC/BeforeE and AfterC/AfterE are the server's clock value and
	// maximum error immediately before and after the pass: the paper's
	// <C, E> pair bracketing the round.
	BeforeC, BeforeE float64
	AfterC, AfterE   float64
}

// Tracer serializes spans to an io.Writer as JSONL, one span per line.
// Encoding is hand-rolled onto a reused buffer (no encoding/json
// reflection, no allocation in steady state) with floats in strconv's
// shortest round-trip form, so a deterministic run yields deterministic
// bytes. Emit is safe for concurrent use; the write of each line is
// atomic with respect to other Emits.
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer
	buf   []byte
	spans uint64
	err   error
}

// NewTracer returns a tracer writing JSONL to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w}
}

// Spans returns how many spans have been emitted.
func (t *Tracer) Spans() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans
}

// Err returns the first write error encountered, if any. Emit keeps
// accepting spans after an error (and dropping them), so instrumented
// code does not need per-span error handling.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Emit serializes one span. A nil tracer discards the span, so call
// sites need no nil checks.
func (t *Tracer) Emit(s SyncSpan) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buf[:0]
	b = append(b, `{"span":"sync_round","t":`...)
	b = appendFloat(b, s.T)
	b = append(b, `,"node":`...)
	b = strconv.AppendInt(b, int64(s.Node), 10)
	b = append(b, `,"rule":`...)
	b = strconv.AppendQuote(b, s.Rule)
	b = append(b, `,"replies":`...)
	b = strconv.AppendInt(b, int64(s.Replies), 10)
	b = append(b, `,"accepted":`...)
	b = strconv.AppendInt(b, int64(s.Accepted), 10)
	b = append(b, `,"rejected":[`...)
	for i, idx := range s.Rejected {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(idx), 10)
	}
	b = append(b, `],"reset":`...)
	b = strconv.AppendBool(b, s.Reset)
	b = append(b, `,"recovered":`...)
	b = strconv.AppendBool(b, s.Recovered)
	b = append(b, `,"before":{"c":`...)
	b = appendFloat(b, s.BeforeC)
	b = append(b, `,"e":`...)
	b = appendFloat(b, s.BeforeE)
	b = append(b, `},"after":{"c":`...)
	b = appendFloat(b, s.AfterC)
	b = append(b, `,"e":`...)
	b = appendFloat(b, s.AfterE)
	b = append(b, "}}\n"...)
	t.buf = b
	t.spans++
	if t.err == nil {
		if _, err := t.w.Write(b); err != nil {
			t.err = err
		}
	}
}
