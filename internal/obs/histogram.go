package obs

import (
	"math"
	"strconv"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram: bucket i counts observations v
// with v <= bounds[i] (and v > bounds[i-1]); observations above the last
// bound land in the overflow bucket. Observe is allocation-free: one
// binary search over the preallocated bounds plus three atomic updates.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is overflow
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	validateBounds(bounds)
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		bounds:  b,
		buckets: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one value.
//
//lint:noalloc
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bucket is one histogram bucket in a snapshot: the count of
// observations at or below UpperBound (non-cumulative; Inf marks the
// overflow bucket).
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// MarshalJSON encodes the bucket with the overflow bound rendered as the
// string "+Inf" (JSON numbers cannot carry infinities) and finite bounds
// in strconv's shortest round-trip form, keeping snapshots deterministic.
func (b Bucket) MarshalJSON() ([]byte, error) {
	out := []byte(`{"le":`)
	if math.IsInf(b.UpperBound, 1) {
		out = append(out, `"+Inf"`...)
	} else {
		out = strconv.AppendFloat(out, b.UpperBound, 'g', -1, 64)
	}
	out = append(out, `,"count":`...)
	out = strconv.AppendUint(out, b.Count, 10)
	out = append(out, '}')
	return out, nil
}

// Buckets returns the non-empty buckets in increasing bound order.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	var out []Bucket
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		out = append(out, Bucket{UpperBound: ub, Count: n})
	}
	return out
}

// cumulative returns every bucket (including empty ones) with cumulative
// counts, for Prometheus text exposition.
func (h *Histogram) cumulative() []Bucket {
	out := make([]Bucket, len(h.buckets))
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		out[i] = Bucket{UpperBound: ub, Count: cum}
	}
	return out
}

// LogHistogram is an HDR-style log-bucket histogram for positive values
// spanning many orders of magnitude (delays, RTTs, error bounds): each
// power-of-two octave is split into logSubBuckets linear sub-buckets, so
// relative resolution is constant (~1/logSubBuckets) across the range.
// Zero and negative observations land in a dedicated floor bucket;
// values beyond the covered range clamp into the first or last bucket.
type LogHistogram struct {
	zero    atomic.Uint64
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Log-bucket geometry: exponents cover 2^-30 (~1 ns in seconds) through
// 2^33 (~272 years in seconds), 8 sub-buckets per octave.
const (
	logMinExp     = -30
	logMaxExp     = 33
	logSubBuckets = 8
	logNumBuckets = (logMaxExp - logMinExp + 1) * logSubBuckets
)

func newLogHistogram() *LogHistogram {
	return &LogHistogram{buckets: make([]atomic.Uint64, logNumBuckets)}
}

// logIndex maps a positive value to its bucket index, clamping into the
// covered range.
//
//lint:noalloc
func logIndex(v float64) int {
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	if exp < logMinExp {
		return 0
	}
	if exp > logMaxExp {
		return logNumBuckets - 1
	}
	sub := int((frac - 0.5) * 2 * logSubBuckets)
	if sub >= logSubBuckets {
		sub = logSubBuckets - 1
	}
	return (exp-logMinExp)*logSubBuckets + sub
}

// logUpperBound returns the upper bound of bucket i: the smallest value
// that would land in bucket i+1.
func logUpperBound(i int) float64 {
	exp := logMinExp + i/logSubBuckets
	sub := i % logSubBuckets
	return math.Ldexp(0.5+(float64(sub)+1)/(2*logSubBuckets), exp)
}

// Observe records one value.
//
//lint:noalloc
func (h *LogHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v <= 0 || math.IsNaN(v) {
		h.zero.Add(1)
	} else {
		h.buckets[logIndex(v)].Add(1)
	}
	h.count.Add(1)
	if !math.IsNaN(v) {
		addFloat(&h.sumBits, v)
	}
}

// Count returns the number of observations (including the floor bucket).
func (h *LogHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *LogHistogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// ZeroCount returns the floor-bucket count (observations <= 0 or NaN).
func (h *LogHistogram) ZeroCount() uint64 {
	if h == nil {
		return 0
	}
	return h.zero.Load()
}

// Buckets returns the non-empty log buckets in increasing bound order
// (the floor bucket, when non-empty, appears first with UpperBound 0).
func (h *LogHistogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	var out []Bucket
	if z := h.zero.Load(); z > 0 {
		out = append(out, Bucket{UpperBound: 0, Count: z})
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			out = append(out, Bucket{UpperBound: logUpperBound(i), Count: n})
		}
	}
	return out
}

// Quantile returns an upper bound on the q-quantile of the observed
// distribution (q in [0, 1]): the upper bound of the bucket where the
// cumulative count crosses q*count. It returns 0 when nothing has been
// observed.
func (h *LogHistogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	cum := h.zero.Load()
	if cum >= rank {
		return 0
	}
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return logUpperBound(i)
		}
	}
	return logUpperBound(logNumBuckets - 1)
}

// addFloat CAS-accumulates v into the float64 bits stored in bits.
//
//lint:noalloc
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}
