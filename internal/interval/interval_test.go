package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNew(t *testing.T) {
	tests := []struct {
		name    string
		lo, hi  float64
		wantErr bool
	}{
		{name: "ordered", lo: 1, hi: 2},
		{name: "point", lo: 3, hi: 3},
		{name: "negative range", lo: -5, hi: -1},
		{name: "inverted", lo: 2, hi: 1, wantErr: true},
		{name: "inverted tiny", lo: 1.0000001, hi: 1, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			iv, err := New(tt.lo, tt.hi)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New(%v, %v) error = %v, wantErr %v", tt.lo, tt.hi, err, tt.wantErr)
			}
			if err == nil && (iv.Lo != tt.lo || iv.Hi != tt.hi) {
				t.Errorf("New(%v, %v) = %v", tt.lo, tt.hi, iv)
			}
		})
	}
}

func TestFromEstimate(t *testing.T) {
	tests := []struct {
		name   string
		c, e   float64
		wantLo float64
		wantHi float64
	}{
		{name: "centered", c: 10, e: 2, wantLo: 8, wantHi: 12},
		{name: "zero error", c: 5, e: 0, wantLo: 5, wantHi: 5},
		{name: "negative error clamped", c: 5, e: -1, wantLo: 5, wantHi: 5},
		{name: "negative center", c: -3, e: 1, wantLo: -4, wantHi: -2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			iv := FromEstimate(tt.c, tt.e)
			if iv.Lo != tt.wantLo || iv.Hi != tt.wantHi {
				t.Errorf("FromEstimate(%v, %v) = %v, want [%v, %v]", tt.c, tt.e, iv, tt.wantLo, tt.wantHi)
			}
		})
	}
}

func TestMidpointHalfWidth(t *testing.T) {
	tests := []struct {
		name     string
		iv       Interval
		wantMid  float64
		wantHalf float64
	}{
		{name: "unit", iv: Interval{Lo: 0, Hi: 1}, wantMid: 0.5, wantHalf: 0.5},
		{name: "point", iv: Interval{Lo: 7, Hi: 7}, wantMid: 7, wantHalf: 0},
		{name: "wide", iv: Interval{Lo: -10, Hi: 30}, wantMid: 10, wantHalf: 20},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.iv.Midpoint(); got != tt.wantMid {
				t.Errorf("Midpoint() = %v, want %v", got, tt.wantMid)
			}
			if got := tt.iv.HalfWidth(); got != tt.wantHalf {
				t.Errorf("HalfWidth() = %v, want %v", got, tt.wantHalf)
			}
			if got := tt.iv.Width(); got != 2*tt.wantHalf {
				t.Errorf("Width() = %v, want %v", got, 2*tt.wantHalf)
			}
		})
	}
}

func TestMidpointLargeMagnitude(t *testing.T) {
	// Midpoint must not overflow for edges near ±MaxFloat64.
	iv := Interval{Lo: math.MaxFloat64 * 0.9, Hi: math.MaxFloat64}
	mid := iv.Midpoint()
	if math.IsInf(mid, 0) || mid < iv.Lo || mid > iv.Hi {
		t.Errorf("Midpoint() = %v not within %v", mid, iv)
	}
}

func TestContains(t *testing.T) {
	iv := Interval{Lo: 1, Hi: 3}
	tests := []struct {
		t    float64
		want bool
	}{
		{0.999, false}, {1, true}, {2, true}, {3, true}, {3.001, false},
	}
	for _, tt := range tests {
		if got := iv.Contains(tt.t); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestContainsInterval(t *testing.T) {
	outer := Interval{Lo: 0, Hi: 10}
	tests := []struct {
		name  string
		inner Interval
		want  bool
	}{
		{name: "proper subset", inner: Interval{Lo: 2, Hi: 3}, want: true},
		{name: "equal", inner: outer, want: true},
		{name: "left overhang", inner: Interval{Lo: -1, Hi: 3}, want: false},
		{name: "right overhang", inner: Interval{Lo: 5, Hi: 11}, want: false},
		{name: "disjoint", inner: Interval{Lo: 20, Hi: 21}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := outer.ContainsInterval(tt.inner); got != tt.want {
				t.Errorf("ContainsInterval(%v) = %v, want %v", tt.inner, got, tt.want)
			}
		})
	}
}

func TestShiftGrow(t *testing.T) {
	iv := Interval{Lo: 1, Hi: 2}
	if got := iv.Shift(3); got != (Interval{Lo: 4, Hi: 5}) {
		t.Errorf("Shift(3) = %v", got)
	}
	if got := iv.Grow(0.5); got != (Interval{Lo: 0.5, Hi: 2.5}) {
		t.Errorf("Grow(0.5) = %v", got)
	}
	if got := iv.Grow(-1); got.Valid() {
		t.Errorf("Grow(-1) = %v, want inverted", got)
	}
}

func TestIntersect(t *testing.T) {
	tests := []struct {
		name   string
		a, b   Interval
		want   Interval
		wantOK bool
	}{
		{
			name: "overlap", a: Interval{Lo: 0, Hi: 2}, b: Interval{Lo: 1, Hi: 3},
			want: Interval{Lo: 1, Hi: 2}, wantOK: true,
		},
		{
			name: "nested", a: Interval{Lo: 0, Hi: 10}, b: Interval{Lo: 2, Hi: 3},
			want: Interval{Lo: 2, Hi: 3}, wantOK: true,
		},
		{
			name: "touching", a: Interval{Lo: 0, Hi: 1}, b: Interval{Lo: 1, Hi: 2},
			want: Interval{Lo: 1, Hi: 1}, wantOK: true,
		},
		{
			name: "disjoint", a: Interval{Lo: 0, Hi: 1}, b: Interval{Lo: 2, Hi: 3},
			wantOK: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := tt.a.Intersect(tt.b)
			if ok != tt.wantOK {
				t.Fatalf("Intersect ok = %v, want %v", ok, tt.wantOK)
			}
			if ok && got != tt.want {
				t.Errorf("Intersect = %v, want %v", got, tt.want)
			}
			// Commutativity.
			rev, revOK := tt.b.Intersect(tt.a)
			if revOK != ok || (ok && rev != got) {
				t.Errorf("Intersect not commutative: %v/%v vs %v/%v", got, ok, rev, revOK)
			}
		})
	}
}

func TestConsistent(t *testing.T) {
	// The paper's example: 3:01 +/- 0:02 vs 3:06 +/- 0:02 must be
	// inconsistent (in seconds: 181 +/- 2 vs 186 +/- 2).
	a := FromEstimate(181, 2)
	b := FromEstimate(186, 2)
	if Consistent(a, b) {
		t.Errorf("paper example: %v and %v should be inconsistent", a, b)
	}
	// 3:01 +/- 0:03 vs 3:06 +/- 0:02 are consistent (touching).
	c := FromEstimate(181, 3)
	if !Consistent(c, b) {
		t.Errorf("%v and %v should be consistent", c, b)
	}
}

// TestConsistentMatchesPaperPredicate checks that interval overlap equals
// the paper's algebraic predicate |Ci - Cj| <= Ei + Ej.
func TestConsistentMatchesPaperPredicate(t *testing.T) {
	f := func(ci, cj float64, ei, ej float64) bool {
		ci, cj = clampFinite(ci, 1e6), clampFinite(cj, 1e6)
		ei, ej = math.Abs(clampFinite(ei, 1e6)), math.Abs(clampFinite(ej, 1e6))
		got := Consistent(FromEstimate(ci, ei), FromEstimate(cj, ej))
		want := math.Abs(ci-cj) <= ei+ej
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntersectAll(t *testing.T) {
	tests := []struct {
		name   string
		ivs    []Interval
		want   Interval
		wantOK bool
	}{
		{name: "empty", wantOK: false},
		{
			name: "single", ivs: []Interval{{Lo: 1, Hi: 2}},
			want: Interval{Lo: 1, Hi: 2}, wantOK: true,
		},
		{
			name: "chain",
			ivs:  []Interval{{Lo: 0, Hi: 10}, {Lo: 2, Hi: 8}, {Lo: 4, Hi: 12}},
			want: Interval{Lo: 4, Hi: 8}, wantOK: true,
		},
		{
			name:   "inconsistent",
			ivs:    []Interval{{Lo: 0, Hi: 1}, {Lo: 2, Hi: 3}},
			wantOK: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := IntersectAll(tt.ivs)
			if ok != tt.wantOK {
				t.Fatalf("IntersectAll ok = %v, want %v", ok, tt.wantOK)
			}
			if ok && got != tt.want {
				t.Errorf("IntersectAll = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestTheorem6Minimality verifies Theorem 6: the intersection of the
// intervals of a consistent service is at least as small as the smallest
// interval.
func TestTheorem6Minimality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(6)
		correct := rng.Float64() * 100
		ivs := make([]Interval, n)
		smallest := math.Inf(1)
		for i := range ivs {
			e := rng.Float64()*5 + 1e-9
			c := correct + (rng.Float64()*2-1)*e // correct time within interval
			ivs[i] = FromEstimate(c, e)
			smallest = math.Min(smallest, ivs[i].Width())
		}
		common, ok := IntersectAll(ivs)
		if !ok {
			t.Fatalf("trial %d: correct service must be consistent", trial)
		}
		if common.Width() > smallest+1e-12 {
			t.Fatalf("trial %d: intersection width %v exceeds smallest interval %v",
				trial, common.Width(), smallest)
		}
		if !common.Contains(correct) {
			t.Fatalf("trial %d: intersection %v lost the correct time %v", trial, common, correct)
		}
	}
}

// bruteBestCount computes, by sampling candidate points at every edge, the
// maximum number of intervals sharing a common point.
func bruteBestCount(ivs []Interval) int {
	best := 0
	for _, iv := range ivs {
		for _, p := range []float64{iv.Lo, iv.Hi} {
			n := 0
			for _, other := range ivs {
				if other.Valid() && other.Contains(p) {
					n++
				}
			}
			if n > best {
				best = n
			}
		}
	}
	return best
}

func TestMarzullo(t *testing.T) {
	tests := []struct {
		name      string
		ivs       []Interval
		wantCount int
		want      Interval
	}{
		{name: "empty", wantCount: 0},
		{
			name:      "single",
			ivs:       []Interval{{Lo: 1, Hi: 3}},
			wantCount: 1, want: Interval{Lo: 1, Hi: 3},
		},
		{
			name: "classic NTP example",
			// 8-12, 11-13, 14-15: best is [11,12] with 2 sources.
			ivs:       []Interval{{Lo: 8, Hi: 12}, {Lo: 11, Hi: 13}, {Lo: 14, Hi: 15}},
			wantCount: 2, want: Interval{Lo: 11, Hi: 12},
		},
		{
			name:      "all intersect",
			ivs:       []Interval{{Lo: 0, Hi: 10}, {Lo: 5, Hi: 15}, {Lo: 8, Hi: 9}},
			wantCount: 3, want: Interval{Lo: 8, Hi: 9},
		},
		{
			name:      "one falseticker",
			ivs:       []Interval{{Lo: 0, Hi: 2}, {Lo: 1, Hi: 3}, {Lo: 100, Hi: 101}},
			wantCount: 2, want: Interval{Lo: 1, Hi: 2},
		},
		{
			name:      "inverted ignored",
			ivs:       []Interval{{Lo: 5, Hi: 1}, {Lo: 0, Hi: 2}},
			wantCount: 1, want: Interval{Lo: 0, Hi: 2},
		},
		{
			name:      "touching counts as intersecting",
			ivs:       []Interval{{Lo: 0, Hi: 1}, {Lo: 1, Hi: 2}},
			wantCount: 2, want: Interval{Lo: 1, Hi: 1},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Marzullo(tt.ivs)
			if got.Count != tt.wantCount {
				t.Fatalf("Marzullo count = %d, want %d", got.Count, tt.wantCount)
			}
			if tt.wantCount > 0 && got.Interval != tt.want {
				t.Errorf("Marzullo interval = %v, want %v", got.Interval, tt.want)
			}
		})
	}
}

// TestMarzulloAgainstBruteForce cross-checks the sweep against an O(n^2)
// point-sampling oracle on random inputs.
func TestMarzulloAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 1000; trial++ {
		n := 1 + rng.Intn(12)
		ivs := make([]Interval, n)
		for i := range ivs {
			c := float64(rng.Intn(40))
			e := float64(rng.Intn(10)) / 2
			ivs[i] = FromEstimate(c, e)
		}
		got := Marzullo(ivs)
		want := bruteBestCount(ivs)
		if got.Count != want {
			t.Fatalf("trial %d: Marzullo count = %d, brute force = %d, input %v",
				trial, got.Count, want, ivs)
		}
		// The returned interval must actually be covered by Count sources.
		mid := got.Interval.Midpoint()
		n = 0
		for _, iv := range ivs {
			if iv.Contains(mid) {
				n++
			}
		}
		if n < got.Count {
			t.Fatalf("trial %d: midpoint %v covered by %d < %d sources", trial, mid, n, got.Count)
		}
	}
}

func TestMarzulloAtLeast(t *testing.T) {
	ivs := []Interval{{Lo: 0, Hi: 4}, {Lo: 1, Hi: 5}, {Lo: 2, Hi: 6}, {Lo: 90, Hi: 91}}
	tests := []struct {
		m      int
		want   Interval
		wantOK bool
	}{
		{m: 0, wantOK: false},
		{m: -1, wantOK: false},
		{m: 1, want: Interval{Lo: 0, Hi: 6}, wantOK: true}, // leftmost maximal depth>=1 region
		{m: 2, want: Interval{Lo: 1, Hi: 5}, wantOK: true},
		{m: 3, want: Interval{Lo: 2, Hi: 4}, wantOK: true},
		{m: 4, wantOK: false},
	}
	for _, tt := range tests {
		got, ok := MarzulloAtLeast(ivs, tt.m)
		if ok != tt.wantOK {
			t.Fatalf("MarzulloAtLeast(m=%d) ok = %v, want %v", tt.m, ok, tt.wantOK)
		}
		if ok && got != tt.want {
			t.Errorf("MarzulloAtLeast(m=%d) = %v, want %v", tt.m, got, tt.want)
		}
	}
}

// TestMarzulloAtLeastConsistentWithMarzullo: for the best count k returned
// by Marzullo, MarzulloAtLeast(ivs, k) must succeed and contain the best
// interval, and MarzulloAtLeast(ivs, k+1) must fail.
func TestMarzulloAtLeastConsistentWithMarzullo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(10)
		ivs := make([]Interval, n)
		for i := range ivs {
			ivs[i] = FromEstimate(float64(rng.Intn(30)), float64(rng.Intn(8))/2)
		}
		best := Marzullo(ivs)
		got, ok := MarzulloAtLeast(ivs, best.Count)
		if !ok {
			t.Fatalf("trial %d: MarzulloAtLeast(%d) failed but Marzullo found count %d",
				trial, best.Count, best.Count)
		}
		if !got.ContainsInterval(best.Interval) && !best.Interval.ContainsInterval(got) {
			// The leftmost depth>=k region must at least overlap the best
			// depth-k region when k is the max depth.
			if !Consistent(got, best.Interval) {
				t.Fatalf("trial %d: regions disagree: %v vs %v", trial, got, best.Interval)
			}
		}
		if _, ok := MarzulloAtLeast(ivs, best.Count+1); ok {
			t.Fatalf("trial %d: MarzulloAtLeast(%d) succeeded beyond max depth %d",
				trial, best.Count+1, best.Count)
		}
	}
}

func TestConsistencyGroupsFigure4(t *testing.T) {
	// A six-server inconsistent service in the spirit of Figure 4: three
	// mutually-consistent subsets whose union is inconsistent.
	ivs := []Interval{
		{Lo: 0, Hi: 4},   // S1
		{Lo: 1, Hi: 5},   // S2: consistent with S1
		{Lo: 4.5, Hi: 8}, // S3: consistent with S2, not S1
		{Lo: 7, Hi: 11},  // S4: consistent with S3
		{Lo: 10, Hi: 14}, // S5: consistent with S4
		{Lo: 13, Hi: 17}, // S6: consistent with S5
	}
	if _, ok := IntersectAll(ivs); ok {
		t.Fatal("service should be inconsistent overall")
	}
	groups := ConsistencyGroups(ivs)
	if len(groups) < 3 {
		t.Fatalf("got %d groups, want >= 3: %+v", len(groups), groups)
	}
	for _, g := range groups {
		if len(g.Members) == 0 {
			t.Fatalf("empty group: %+v", g)
		}
		if !g.Intersection.Valid() {
			t.Fatalf("group intersection invalid: %+v", g)
		}
		// Every pair in the group must be mutually consistent.
		for i := 0; i < len(g.Members); i++ {
			for j := i + 1; j < len(g.Members); j++ {
				if !Consistent(ivs[g.Members[i]], ivs[g.Members[j]]) {
					t.Errorf("group %v members %d,%d not consistent", g.Members, i, j)
				}
			}
		}
	}
}

func TestConsistencyGroupsSingleGroup(t *testing.T) {
	ivs := []Interval{{Lo: 0, Hi: 10}, {Lo: 2, Hi: 12}, {Lo: 4, Hi: 14}}
	groups := ConsistencyGroups(ivs)
	if len(groups) != 1 {
		t.Fatalf("consistent service: got %d groups, want 1: %+v", len(groups), groups)
	}
	if len(groups[0].Members) != 3 {
		t.Errorf("group members = %v, want all three", groups[0].Members)
	}
	want := Interval{Lo: 4, Hi: 10}
	if groups[0].Intersection != want {
		t.Errorf("intersection = %v, want %v", groups[0].Intersection, want)
	}
}

func TestConsistencyGroupsEdgeCases(t *testing.T) {
	if groups := ConsistencyGroups(nil); groups != nil {
		t.Errorf("ConsistencyGroups(nil) = %v, want nil", groups)
	}
	if groups := ConsistencyGroups([]Interval{{Lo: 2, Hi: 1}}); groups != nil {
		t.Errorf("all-inverted input: got %v, want nil", groups)
	}
	groups := ConsistencyGroups([]Interval{{Lo: 1, Hi: 2}})
	if len(groups) != 1 || len(groups[0].Members) != 1 || groups[0].Members[0] != 0 {
		t.Errorf("single interval: got %+v", groups)
	}
}

// TestConsistencyGroupsProperties checks soundness (mutual consistency
// within a group), maximality (no interval outside a group is consistent
// with every member), and coverage (every valid interval appears in some
// group) on random inputs.
func TestConsistencyGroupsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(10)
		ivs := make([]Interval, n)
		for i := range ivs {
			ivs[i] = FromEstimate(float64(rng.Intn(20)), float64(rng.Intn(6))/2)
		}
		groups := ConsistencyGroups(ivs)

		seen := make(map[int]bool)
		for _, g := range groups {
			inGroup := make(map[int]bool, len(g.Members))
			for _, m := range g.Members {
				seen[m] = true
				inGroup[m] = true
			}
			// Soundness.
			for i := 0; i < len(g.Members); i++ {
				for j := i + 1; j < len(g.Members); j++ {
					if !Consistent(ivs[g.Members[i]], ivs[g.Members[j]]) {
						t.Fatalf("trial %d: unsound group %v", trial, g.Members)
					}
				}
			}
			// Maximality.
			for k := range ivs {
				if inGroup[k] {
					continue
				}
				all := true
				for _, m := range g.Members {
					if !Consistent(ivs[k], ivs[m]) {
						all = false
						break
					}
				}
				if all {
					t.Fatalf("trial %d: group %v not maximal, %d consistent with all members",
						trial, g.Members, k)
				}
			}
		}
		// Coverage.
		for i := range ivs {
			if !seen[i] {
				t.Fatalf("trial %d: interval %d in no group", trial, i)
			}
		}
	}
}

func TestConsonant(t *testing.T) {
	tests := []struct {
		name         string
		rate, di, dj float64
		want         bool
	}{
		{name: "within", rate: 1e-5, di: 1e-5, dj: 1e-5, want: true},
		{name: "at bound", rate: 2e-5, di: 1e-5, dj: 1e-5, want: true},
		{name: "beyond", rate: 3e-5, di: 1e-5, dj: 1e-5, want: false},
		{name: "negative within", rate: -1.5e-5, di: 1e-5, dj: 1e-5, want: true},
		{name: "negative beyond", rate: -2.5e-5, di: 1e-5, dj: 1e-5, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Consonant(tt.rate, tt.di, tt.dj); got != tt.want {
				t.Errorf("Consonant(%v, %v, %v) = %v, want %v", tt.rate, tt.di, tt.dj, got, tt.want)
			}
		})
	}
}

func TestString(t *testing.T) {
	s := Interval{Lo: 1, Hi: 3}.String()
	if s == "" {
		t.Error("String() empty")
	}
}

// clampFinite maps arbitrary quick-generated floats into a sane finite
// range so the property holds without float-overflow artifacts.
func clampFinite(v, bound float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, bound)
}

// TestIntersectProperties: intersection is idempotent, commutative, and a
// subset of both operands.
func TestIntersectProperties(t *testing.T) {
	f := func(a0, a1, b0, b1 float64) bool {
		a := Interval{Lo: math.Min(clampFinite(a0, 1e6), clampFinite(a1, 1e6)),
			Hi: math.Max(clampFinite(a0, 1e6), clampFinite(a1, 1e6))}
		b := Interval{Lo: math.Min(clampFinite(b0, 1e6), clampFinite(b1, 1e6)),
			Hi: math.Max(clampFinite(b0, 1e6), clampFinite(b1, 1e6))}

		self, ok := a.Intersect(a)
		if !ok || self != a {
			return false
		}
		ab, okAB := a.Intersect(b)
		ba, okBA := b.Intersect(a)
		if okAB != okBA || (okAB && ab != ba) {
			return false
		}
		if okAB && (!a.ContainsInterval(ab) || !b.ContainsInterval(ab)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIntersectPair(b *testing.B) {
	x := Interval{Lo: 0, Hi: 10}
	y := Interval{Lo: 5, Hi: 15}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Intersect(y)
	}
}

func BenchmarkMarzullo(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	ivs := make([]Interval, 64)
	for i := range ivs {
		ivs[i] = FromEstimate(rng.Float64()*100, rng.Float64()*10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Marzullo(ivs)
	}
}

func TestMarzulloSpan(t *testing.T) {
	ivs := []Interval{{Lo: 0, Hi: 4}, {Lo: 1, Hi: 5}, {Lo: 2, Hi: 6}, {Lo: 90, Hi: 91}}
	tests := []struct {
		m      int
		want   Interval
		wantOK bool
	}{
		{m: 0, wantOK: false},
		{m: -1, wantOK: false},
		// The span reaches across the coverage gap between the cluster
		// and the outlier — that is the difference from MarzulloAtLeast,
		// which stops at the leftmost maximal region.
		{m: 1, want: Interval{Lo: 0, Hi: 91}, wantOK: true},
		{m: 2, want: Interval{Lo: 1, Hi: 5}, wantOK: true},
		{m: 3, want: Interval{Lo: 2, Hi: 4}, wantOK: true},
		{m: 4, wantOK: false},
	}
	for _, tt := range tests {
		got, ok := MarzulloSpan(ivs, tt.m)
		if ok != tt.wantOK {
			t.Fatalf("MarzulloSpan(m=%d) ok = %v, want %v", tt.m, ok, tt.wantOK)
		}
		if ok && got != tt.want {
			t.Errorf("MarzulloSpan(m=%d) = %v, want %v", tt.m, got, tt.want)
		}
	}
	if _, ok := MarzulloSpan(nil, 1); ok {
		t.Error("MarzulloSpan(nil, 1) succeeded, want no coverage")
	}
}

// TestMarzulloSpanByzantineSoundness is the envelope property ByzIM
// adoption rests on: with at most f arbitrary liars among n sources and
// m = n - f, every point covered by all correct intervals — in
// particular the true time they were built around — lies inside the
// span, wherever the liars place their endpoints.
func TestMarzulloSpanByzantineSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		n := 4 + rng.Intn(7)
		f := rng.Intn(n / 3)
		truth := float64(rng.Intn(100))
		ivs := make([]Interval, n)
		for i := range ivs {
			if i < f {
				// Liar: arbitrary interval, may or may not cover truth.
				lo := float64(rng.Intn(200)) - 50
				ivs[i] = Interval{Lo: lo, Hi: lo + float64(rng.Intn(20))}
			} else {
				// Correct: contains truth by construction.
				e := 0.5 + float64(rng.Intn(10))
				ivs[i] = Interval{Lo: truth - e, Hi: truth + e}
			}
		}
		span, ok := MarzulloSpan(ivs, n-f)
		if !ok {
			t.Fatalf("trial %d: no span at m=%d with %d correct sources", trial, n-f, n-f)
		}
		if !span.Contains(truth) {
			t.Fatalf("trial %d: span %v excludes truth %v (n=%d f=%d ivs=%v)",
				trial, span, truth, n, f, ivs)
		}
	}
}

// TestMarzulloSpanContainsAtLeast: the span at coverage m must contain
// the leftmost maximal region at the same coverage.
func TestMarzulloSpanContainsAtLeast(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(10)
		ivs := make([]Interval, n)
		for i := range ivs {
			ivs[i] = FromEstimate(float64(rng.Intn(30)), float64(rng.Intn(8))/2)
		}
		m := 1 + rng.Intn(n)
		left, okL := MarzulloAtLeast(ivs, m)
		span, okS := MarzulloSpan(ivs, m)
		if okL != okS {
			t.Fatalf("trial %d: MarzulloAtLeast ok=%v but MarzulloSpan ok=%v at m=%d", trial, okL, okS, m)
		}
		if okL && !span.ContainsInterval(left) {
			t.Fatalf("trial %d: span %v does not contain leftmost region %v at m=%d", trial, span, left, m)
		}
	}
}
