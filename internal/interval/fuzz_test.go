package interval

import (
	"testing"
)

// FuzzIntersectMofN drives MarzulloAtLeast with byte-derived interval
// sets and checks it against the O(n^2) naive reference from the
// differential tests. Endpoints are decoded onto a coarse quarter-unit
// grid so shared endpoints — the tie-breaking cases where a sweep can go
// wrong — occur constantly, and inverted intervals are decoded too so
// the skip path stays covered.
func FuzzIntersectMofN(f *testing.F) {
	// Seeds: empty, a singleton, nested pairs, a chain with shared
	// endpoints, and an inverted interval mixed with valid ones.
	f.Add(uint8(1), []byte{})
	f.Add(uint8(1), []byte{10, 20})
	f.Add(uint8(2), []byte{10, 30, 15, 25, 20, 40})
	f.Add(uint8(3), []byte{0, 10, 10, 20, 10, 10, 5, 15})
	f.Add(uint8(2), []byte{30, 10, 0, 20, 5, 25})
	f.Add(uint8(5), []byte{1, 2, 2, 3, 3, 4, 4, 5, 0, 9})

	f.Fuzz(func(t *testing.T, mRaw uint8, data []byte) {
		ivs := decodeIntervals(data)
		if len(ivs) > 64 {
			ivs = ivs[:64]
		}
		m := int(mRaw%16) + 1
		got, gotOK := MarzulloAtLeast(ivs, m)
		want, wantOK := naiveAtLeast(ivs, m)
		if gotOK != wantOK {
			t.Fatalf("MarzulloAtLeast(%v, %d): ok=%v, naive ok=%v", ivs, m, gotOK, wantOK)
		}
		if !gotOK {
			return
		}
		if !SameEdge(got.Lo, want.Lo) || !SameEdge(got.Hi, want.Hi) {
			t.Fatalf("MarzulloAtLeast(%v, %d) = %v, naive = %v", ivs, m, got, want)
		}
		// Cross-checks against independent facts: the result is a real
		// interval, every point of it (we probe the endpoints and midpoint)
		// is covered by at least m sources, and for m = 1 the result starts
		// at the leftmost valid lower edge.
		if !got.Valid() {
			t.Fatalf("MarzulloAtLeast(%v, %d) returned inverted %v", ivs, m, got)
		}
		for _, p := range []float64{got.Lo, (got.Lo + got.Hi) / 2, got.Hi} {
			if coverage(ivs, p) < m {
				t.Fatalf("MarzulloAtLeast(%v, %d) = %v: point %v covered only %d times",
					ivs, m, got, p, coverage(ivs, p))
			}
		}
	})
}

// decodeIntervals maps fuzz bytes onto intervals with quarter-unit grid
// endpoints in [-16, 47.75]: two bytes per interval, no validity
// filtering (inverted intervals are part of the contract under test).
func decodeIntervals(data []byte) []Interval {
	var ivs []Interval
	for i := 0; i+1 < len(data); i += 2 {
		lo := float64(int(data[i])-64) / 4
		hi := float64(int(data[i+1])-64) / 4
		ivs = append(ivs, Interval{Lo: lo, Hi: hi})
	}
	return ivs
}
