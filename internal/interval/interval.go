// Package interval implements the interval algebra underlying the time
// service of Marzullo & Owicki, "Maintaining the Time in a Distributed
// System" (Stanford CSL TR 83-247, PODC 1983).
//
// A time server answers a request with a pair <C, E>: its clock value C and
// a bound E on its maximum error. The pair denotes the real-time interval
// [C-E, C+E], which is guaranteed to contain the correct time while the
// server's drift bound is valid. This package provides:
//
//   - the Interval type and its algebra (intersection, consistency),
//   - N-way intersection (the basis of algorithm IM),
//   - the fault-tolerant "best intersection" sweep — Marzullo's algorithm —
//     which finds the interval contained in the largest number of source
//     intervals (the [Marzullo 83] extension used by NTP),
//   - consistency-group decomposition of an inconsistent service (Figure 4).
//
// All times are float64 seconds on the real-time axis. The package is pure:
// no goroutines, no allocation beyond returned slices.
package interval

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInverted is returned when an interval's lower edge exceeds its upper
// edge.
var ErrInverted = errors.New("interval: lower edge exceeds upper edge")

// Interval is a closed interval [Lo, Hi] on the real-time axis, in seconds.
// In the paper's vocabulary Lo is the trailing edge (C-E) and Hi the leading
// edge (C+E).
type Interval struct {
	Lo float64
	Hi float64
}

// New returns the interval [lo, hi]. It returns ErrInverted if lo > hi.
func New(lo, hi float64) (Interval, error) {
	if lo > hi {
		return Interval{}, fmt.Errorf("%w: [%v, %v]", ErrInverted, lo, hi)
	}
	return Interval{Lo: lo, Hi: hi}, nil
}

// FromEstimate returns the interval [c-e, c+e] for a clock reading c with
// maximum error e. A negative error is treated as zero.
func FromEstimate(c, e float64) Interval {
	if e < 0 {
		e = 0
	}
	return Interval{Lo: c - e, Hi: c + e}
}

// Midpoint returns the center of the interval, the clock value C of the
// equivalent <C, E> pair.
func (iv Interval) Midpoint() float64 { return iv.Lo + (iv.Hi-iv.Lo)/2 }

// HalfWidth returns the maximum error E of the equivalent <C, E> pair.
func (iv Interval) HalfWidth() float64 { return (iv.Hi - iv.Lo) / 2 }

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Valid reports whether Lo <= Hi.
func (iv Interval) Valid() bool { return iv.Lo <= iv.Hi }

// Contains reports whether t lies within the closed interval.
func (iv Interval) Contains(t float64) bool { return iv.Lo <= t && t <= iv.Hi }

// ContainsInterval reports whether other is a subset of iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// Shift returns the interval translated by d.
func (iv Interval) Shift(d float64) Interval {
	return Interval{Lo: iv.Lo + d, Hi: iv.Hi + d}
}

// Grow returns the interval with each edge moved outward by e (inward for
// negative e; the result may be inverted).
func (iv Interval) Grow(e float64) Interval {
	return Interval{Lo: iv.Lo - e, Hi: iv.Hi + e}
}

// Intersect returns the intersection of two intervals, per equation 12 of
// the paper:
//
//	[max(Ci-Ei, Cj-Ej) .. min(Ci+Ei, Cj+Ej)]
//
// The boolean result is false when the intervals are disjoint (the servers
// are inconsistent); the returned interval is then inverted and should not
// be used as a time estimate.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	out := Interval{Lo: math.Max(iv.Lo, other.Lo), Hi: math.Min(iv.Hi, other.Hi)}
	return out, out.Lo <= out.Hi
}

// Consistent reports whether two server intervals mutually admit a correct
// time, i.e. whether they overlap. For <Ci, Ei> and <Cj, Ej> this is the
// paper's consistency predicate |Ci - Cj| <= Ei + Ej.
func Consistent(a, b Interval) bool {
	return a.Lo <= b.Hi && b.Lo <= a.Hi
}

// String renders the interval as the pair <C, E> followed by its edges.
func (iv Interval) String() string {
	return fmt.Sprintf("<C=%.6g, E=%.6g>[%.6g, %.6g]", iv.Midpoint(), iv.HalfWidth(), iv.Lo, iv.Hi)
}

// IntersectAll returns the intersection of all intervals and whether it is
// non-empty. An empty input yields (zero Interval, false): with no evidence
// there is no defined estimate. A service whose intervals have a non-empty
// common intersection is consistent in the paper's sense.
func IntersectAll(ivs []Interval) (Interval, bool) {
	if len(ivs) == 0 {
		return Interval{}, false
	}
	out := ivs[0]
	for _, iv := range ivs[1:] {
		var ok bool
		if out, ok = out.Intersect(iv); !ok {
			return out, false
		}
	}
	return out, true
}

// edge is one endpoint of an interval for the sweep algorithms.
type edge struct {
	at    float64
	delta int // +1 for a lower edge, -1 for an upper edge
	idx   int // index of the source interval
}

// sortEdges orders sweep endpoints by position; at equal positions lower
// edges come first so that intervals sharing only a single point still count
// as intersecting (intervals are closed).
func sortEdges(edges []edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta > edges[j].delta
	})
}

// Best is the result of Marzullo's fault-tolerant intersection sweep.
type Best struct {
	// Interval is the leftmost maximal region covered by Count sources.
	Interval Interval
	// Count is the largest number of source intervals sharing a common
	// point.
	Count int
}

// Marzullo computes the interval contained in the largest number of source
// intervals — the fault-tolerant intersection of [Marzullo 83] adopted by
// NTP for clock selection. With k of n intervals correct, any point covered
// by more than n-k intervals is covered by at least one correct interval.
//
// It runs in O(n log n). For an empty input it returns a zero Best.
// Inverted inputs are ignored.
func Marzullo(ivs []Interval) Best {
	edges := make([]edge, 0, 2*len(ivs))
	for i, iv := range ivs {
		if !iv.Valid() {
			continue
		}
		edges = append(edges, edge{at: iv.Lo, delta: +1, idx: i}, edge{at: iv.Hi, delta: -1, idx: i})
	}
	if len(edges) == 0 {
		return Best{}
	}
	sortEdges(edges)

	var best Best
	depth := 0
	for i, e := range edges {
		depth += e.delta
		if e.delta > 0 && depth > best.Count {
			best.Count = depth
			best.Interval = Interval{Lo: e.at, Hi: edges[i+1].at}
		}
	}
	return best
}

// MarzulloAtLeast returns the leftmost maximal interval covered by at least
// m source intervals, and whether one exists. m must be positive.
func MarzulloAtLeast(ivs []Interval, m int) (Interval, bool) {
	if m <= 0 {
		return Interval{}, false
	}
	edges := make([]edge, 0, 2*len(ivs))
	for i, iv := range ivs {
		if !iv.Valid() {
			continue
		}
		edges = append(edges, edge{at: iv.Lo, delta: +1, idx: i}, edge{at: iv.Hi, delta: -1, idx: i})
	}
	sortEdges(edges)

	depth := 0
	start := math.NaN()
	for i, e := range edges {
		depth += e.delta
		if e.delta > 0 && depth == m && math.IsNaN(start) {
			start = e.at
		}
		if e.delta < 0 && depth == m-1 && !math.IsNaN(start) {
			return Interval{Lo: start, Hi: edges[i].at}, true
		}
	}
	return Interval{}, false
}

// Group is one maximal set of mutually consistent intervals, together with
// their common intersection. It corresponds to one shaded region of the
// paper's Figure 4.
type Group struct {
	// Members are indices into the input slice, in increasing order.
	Members []int
	// Intersection is the region shared by every member.
	Intersection Interval
}

// ConsistencyGroups decomposes a (possibly inconsistent) set of server
// intervals into its maximal mutually-consistent subsets: the maximal
// cliques of the interval-overlap graph. A consistent service yields a
// single group containing every interval; the paper's Figure 4 service
// yields three overlapping groups. Because the overlap graph of intervals
// is an interval graph, the maximal cliques are exactly the distinct
// maximal active sets of a sweep over sorted endpoints, found in
// O(n log n + output).
//
// Inverted inputs are skipped and appear in no group.
func ConsistencyGroups(ivs []Interval) []Group {
	edges := make([]edge, 0, 2*len(ivs))
	for i, iv := range ivs {
		if !iv.Valid() {
			continue
		}
		edges = append(edges, edge{at: iv.Lo, delta: +1, idx: i}, edge{at: iv.Hi, delta: -1, idx: i})
	}
	if len(edges) == 0 {
		return nil
	}
	sortEdges(edges)

	var groups []Group
	active := make(map[int]bool)
	lastWasOpen := false
	for _, e := range edges {
		if e.delta > 0 {
			active[e.idx] = true
			lastWasOpen = true
			continue
		}
		if lastWasOpen {
			// A close immediately after an open: the active set is a
			// maximal clique.
			members := make([]int, 0, len(active))
			for idx := range active {
				members = append(members, idx)
			}
			sort.Ints(members)
			member := make([]Interval, len(members))
			for i, idx := range members {
				member[i] = ivs[idx]
			}
			common, _ := IntersectAll(member)
			groups = append(groups, Group{Members: members, Intersection: common})
		}
		delete(active, e.idx)
		lastWasOpen = false
	}
	return groups
}

// Consonant reports whether two clocks' rate intervals are consistent in
// the sense of Section 5: the observed rate of separation lies within the
// sum of the claimed drift bounds. rate is d(Ci - Cj)/dt and deltaI, deltaJ
// are the claimed maximum drift rates.
func Consonant(rate, deltaI, deltaJ float64) bool {
	return math.Abs(rate) <= deltaI+deltaJ
}
