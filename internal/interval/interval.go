// Package interval implements the interval algebra underlying the time
// service of Marzullo & Owicki, "Maintaining the Time in a Distributed
// System" (Stanford CSL TR 83-247, PODC 1983).
//
// A time server answers a request with a pair <C, E>: its clock value C and
// a bound E on its maximum error. The pair denotes the real-time interval
// [C-E, C+E], which is guaranteed to contain the correct time while the
// server's drift bound is valid. This package provides:
//
//   - the Interval type and its algebra (intersection, consistency),
//   - N-way intersection (the basis of algorithm IM),
//   - the fault-tolerant "best intersection" sweep — Marzullo's algorithm —
//     which finds the interval contained in the largest number of source
//     intervals (the [Marzullo 83] extension used by NTP),
//   - consistency-group decomposition of an inconsistent service (Figure 4).
//
// All times are float64 seconds on the real-time axis. The package is pure:
// no goroutines, no allocation beyond returned slices. The sweep algorithms
// run through a reusable Sweeper whose scratch buffers make the package-level
// entry points allocation-free in steady state (a sync.Pool recycles
// sweepers across calls and goroutines).
package interval

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
)

// ErrInverted is returned when an interval's lower edge exceeds its upper
// edge.
var ErrInverted = errors.New("interval: lower edge exceeds upper edge")

// Interval is a closed interval [Lo, Hi] on the real-time axis, in seconds.
// In the paper's vocabulary Lo is the trailing edge (C-E) and Hi the leading
// edge (C+E).
type Interval struct {
	Lo float64
	Hi float64
}

// New returns the interval [lo, hi]. It returns ErrInverted if lo > hi.
func New(lo, hi float64) (Interval, error) {
	if lo > hi {
		return Interval{}, fmt.Errorf("%w: [%v, %v]", ErrInverted, lo, hi)
	}
	return Interval{Lo: lo, Hi: hi}, nil
}

// FromEstimate returns the interval [c-e, c+e] for a clock reading c with
// maximum error e. A negative error is treated as zero.
func FromEstimate(c, e float64) Interval {
	if e < 0 {
		e = 0
	}
	return Interval{Lo: c - e, Hi: c + e}
}

// Midpoint returns the center of the interval, the clock value C of the
// equivalent <C, E> pair.
func (iv Interval) Midpoint() float64 { return iv.Lo + (iv.Hi-iv.Lo)/2 }

// HalfWidth returns the maximum error E of the equivalent <C, E> pair.
func (iv Interval) HalfWidth() float64 { return (iv.Hi - iv.Lo) / 2 }

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Valid reports whether Lo <= Hi.
func (iv Interval) Valid() bool { return iv.Lo <= iv.Hi }

// Contains reports whether t lies within the closed interval.
func (iv Interval) Contains(t float64) bool { return iv.Lo <= t && t <= iv.Hi }

// ContainsInterval reports whether other is a subset of iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// Shift returns the interval translated by d.
func (iv Interval) Shift(d float64) Interval {
	return Interval{Lo: iv.Lo + d, Hi: iv.Hi + d}
}

// Grow returns the interval with each edge moved outward by e (inward for
// negative e; the result may be inverted).
func (iv Interval) Grow(e float64) Interval {
	return Interval{Lo: iv.Lo - e, Hi: iv.Hi + e}
}

// Intersect returns the intersection of two intervals, per equation 12 of
// the paper:
//
//	[max(Ci-Ei, Cj-Ej) .. min(Ci+Ei, Cj+Ej)]
//
// The boolean result is false when the intervals are disjoint (the servers
// are inconsistent); the returned interval is then inverted and should not
// be used as a time estimate.
//
//lint:noalloc
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	out := Interval{Lo: math.Max(iv.Lo, other.Lo), Hi: math.Min(iv.Hi, other.Hi)}
	return out, out.Lo <= out.Hi
}

// Consistent reports whether two server intervals mutually admit a correct
// time, i.e. whether they overlap. For <Ci, Ei> and <Cj, Ej> this is the
// paper's consistency predicate |Ci - Cj| <= Ei + Ej.
func Consistent(a, b Interval) bool {
	return a.Lo <= b.Hi && b.Lo <= a.Hi
}

// String renders the interval as the pair <C, E> followed by its edges.
func (iv Interval) String() string {
	return fmt.Sprintf("<C=%.6g, E=%.6g>[%.6g, %.6g]", iv.Midpoint(), iv.HalfWidth(), iv.Lo, iv.Hi)
}

// IntersectAll returns the intersection of all intervals and whether it is
// non-empty. An empty input yields (zero Interval, false): with no evidence
// there is no defined estimate. A service whose intervals have a non-empty
// common intersection is consistent in the paper's sense.
//
//lint:noalloc
func IntersectAll(ivs []Interval) (Interval, bool) {
	if len(ivs) == 0 {
		return Interval{}, false
	}
	out := ivs[0]
	for _, iv := range ivs[1:] {
		var ok bool
		if out, ok = out.Intersect(iv); !ok {
			return out, false
		}
	}
	return out, true
}

// edge is one endpoint of an interval for the sweep algorithms.
type edge struct {
	at    float64
	delta int32 // +1 for a lower edge, -1 for an upper edge
	idx   int32 // index of the source interval
}

// edgeSlice is a concrete sort.Interface over sweep endpoints: ordered by
// position; at equal positions lower edges come first so that intervals
// sharing only a single point still count as intersecting (intervals are
// closed). A concrete named type (sorted through a pointer) avoids both the
// sort.Slice closure and the interface-boxing allocation of sort.Sort on a
// bare slice value.
type edgeSlice []edge

func (s edgeSlice) Len() int { return len(s) }

func (s edgeSlice) Less(i, j int) bool {
	if s[i].at != s[j].at {
		return s[i].at < s[j].at
	}
	return s[i].delta > s[j].delta
}

func (s edgeSlice) Swap(i, j int) { s[i], s[j] = s[j], s[i] }

// Best is the result of Marzullo's fault-tolerant intersection sweep.
type Best struct {
	// Interval is the leftmost maximal region covered by Count sources.
	Interval Interval
	// Count is the largest number of source intervals sharing a common
	// point.
	Count int
}

// Sweeper runs the endpoint-sweep algorithms (Marzullo's fault-tolerant
// intersection, the at-least-m variant, and consistency-group
// decomposition) using reusable scratch buffers: the edge list and the
// active-set bitset survive across calls, so a warmed Sweeper performs no
// allocation beyond what a result itself requires (Marzullo and
// MarzulloAtLeast allocate nothing; ConsistencyGroups allocates only the
// returned groups).
//
// A Sweeper is not safe for concurrent use; the package-level functions
// draw sweepers from a pool and remain safe to call from parallel
// experiment trials.
type Sweeper struct {
	edges  edgeSlice
	active []uint64 // bitset of open interval indices (ConsistencyGroups)
}

// NewSweeper returns a Sweeper with capacity for n source intervals. The
// buffers grow on demand, so n is only a hint.
func NewSweeper(n int) *Sweeper {
	return &Sweeper{
		edges:  make(edgeSlice, 0, 2*n),
		active: make([]uint64, (n+63)/64),
	}
}

// load fills the scratch edge list from the valid members of ivs and sorts
// it. It reports the number of edges loaded.
//
//lint:noalloc
func (sw *Sweeper) load(ivs []Interval) int {
	edges := sw.edges[:0]
	for i, iv := range ivs {
		if !iv.Valid() {
			continue
		}
		edges = append(edges,
			edge{at: iv.Lo, delta: +1, idx: int32(i)},
			edge{at: iv.Hi, delta: -1, idx: int32(i)})
	}
	sw.edges = edges
	// Sorting through the pointer keeps the interface conversion
	// allocation-free (*edgeSlice is already heap-addressable).
	sort.Sort(&sw.edges)
	return len(edges)
}

// Marzullo is the Sweeper form of the package-level Marzullo.
//
//lint:noalloc BenchmarkMarzulloSweep,BenchmarkMarzulloSweep1000
func (sw *Sweeper) Marzullo(ivs []Interval) Best {
	if sw.load(ivs) == 0 {
		return Best{}
	}
	var best Best
	depth := 0
	for i, e := range sw.edges {
		depth += int(e.delta)
		if e.delta > 0 && depth > best.Count {
			best.Count = depth
			best.Interval = Interval{Lo: e.at, Hi: sw.edges[i+1].at}
		}
	}
	return best
}

// MarzulloAtLeast is the Sweeper form of the package-level MarzulloAtLeast.
//
//lint:noalloc
func (sw *Sweeper) MarzulloAtLeast(ivs []Interval, m int) (Interval, bool) {
	if m <= 0 {
		return Interval{}, false
	}
	sw.load(ivs)
	depth := 0
	start := math.NaN()
	for i, e := range sw.edges {
		depth += int(e.delta)
		if e.delta > 0 && depth == m && math.IsNaN(start) {
			start = e.at
		}
		if e.delta < 0 && depth == m-1 && !math.IsNaN(start) {
			return Interval{Lo: start, Hi: sw.edges[i].at}, true
		}
	}
	return Interval{}, false
}

// MarzulloSpan is the Sweeper form of the package-level MarzulloSpan.
//
//lint:noalloc
func (sw *Sweeper) MarzulloSpan(ivs []Interval, m int) (Interval, bool) {
	if m <= 0 {
		return Interval{}, false
	}
	sw.load(ivs)
	depth := 0
	start := math.NaN()
	end := math.NaN()
	for _, e := range sw.edges {
		depth += int(e.delta)
		if e.delta > 0 && depth == m && math.IsNaN(start) {
			start = e.at
		}
		if e.delta < 0 && depth == m-1 {
			end = e.at
		}
	}
	if math.IsNaN(start) {
		return Interval{}, false
	}
	return Interval{Lo: start, Hi: end}, true
}

// sweeperPool recycles Sweepers behind the package-level entry points, so
// Marzullo and MarzulloAtLeast are allocation-free in steady state and safe
// under concurrent experiment trials.
var sweeperPool = sync.Pool{New: func() any { return NewSweeper(16) }}

// Marzullo computes the interval contained in the largest number of source
// intervals — the fault-tolerant intersection of [Marzullo 83] adopted by
// NTP for clock selection. With k of n intervals correct, any point covered
// by more than n-k intervals is covered by at least one correct interval.
//
// It runs in O(n log n). For an empty input it returns a zero Best.
// Inverted inputs are ignored.
//
//lint:noalloc BenchmarkMarzulloSweep,BenchmarkMarzulloSweep1000
func Marzullo(ivs []Interval) Best {
	sw := sweeperPool.Get().(*Sweeper)
	best := sw.Marzullo(ivs)
	sweeperPool.Put(sw)
	return best
}

// MarzulloAtLeast returns the leftmost maximal interval covered by at least
// m source intervals, and whether one exists. m must be positive.
//
//lint:noalloc
func MarzulloAtLeast(ivs []Interval, m int) (Interval, bool) {
	sw := sweeperPool.Get().(*Sweeper)
	iv, ok := sw.MarzulloAtLeast(ivs, m)
	sweeperPool.Put(sw)
	return iv, ok
}

// MarzulloSpan returns the envelope of agreement at coverage m: the span
// from the first point covered by at least m source intervals to the last
// such point, and whether any point reaches that coverage. Unlike
// MarzulloAtLeast — which returns only the leftmost maximal region — the
// span includes every point of sufficient coverage, so it is the sound
// basis for Byzantine-tolerant adoption: with at most f arbitrary liars
// among the sources and m chosen so that the correct sources alone reach
// m, real time is covered by all correct intervals and therefore lies
// inside the span, wherever the liars place their endpoints. m must be
// positive.
//
//lint:noalloc
func MarzulloSpan(ivs []Interval, m int) (Interval, bool) {
	sw := sweeperPool.Get().(*Sweeper)
	iv, ok := sw.MarzulloSpan(ivs, m)
	sweeperPool.Put(sw)
	return iv, ok
}

// Group is one maximal set of mutually consistent intervals, together with
// their common intersection. It corresponds to one shaded region of the
// paper's Figure 4.
type Group struct {
	// Members are indices into the input slice, in increasing order.
	Members []int
	// Intersection is the region shared by every member.
	Intersection Interval
}

// ConsistencyGroups decomposes a (possibly inconsistent) set of server
// intervals into its maximal mutually-consistent subsets: the maximal
// cliques of the interval-overlap graph. A consistent service yields a
// single group containing every interval; the paper's Figure 4 service
// yields three overlapping groups. Because the overlap graph of intervals
// is an interval graph, the maximal cliques are exactly the distinct
// maximal active sets of a sweep over sorted endpoints, found in
// O(n log n + output).
//
// Inverted inputs are skipped and appear in no group.
func ConsistencyGroups(ivs []Interval) []Group {
	sw := sweeperPool.Get().(*Sweeper)
	groups := sw.ConsistencyGroups(ivs)
	sweeperPool.Put(sw)
	return groups
}

// ConsistencyGroups is the Sweeper form of the package-level
// ConsistencyGroups. Only the returned groups are allocated; the sweep's
// active set lives in a reused bitset, and each clique's common
// intersection falls out of the sweep itself (its lower edge is the most
// recent open, its upper edge the close that ended the clique), so no
// per-group re-intersection is needed.
func (sw *Sweeper) ConsistencyGroups(ivs []Interval) []Group {
	if sw.load(ivs) == 0 {
		return nil
	}
	words := (len(ivs) + 63) / 64
	if cap(sw.active) < words {
		sw.active = make([]uint64, words)
	}
	active := sw.active[:words]
	for i := range active {
		active[i] = 0
	}

	var groups []Group
	activeCount := 0
	lastOpenAt := 0.0
	lastWasOpen := false
	for _, e := range sw.edges {
		if e.delta > 0 {
			active[e.idx>>6] |= 1 << (uint(e.idx) & 63)
			activeCount++
			lastOpenAt = e.at
			lastWasOpen = true
			continue
		}
		if lastWasOpen {
			// A close immediately after an open: the active set is a
			// maximal clique. Members come out of the bitset in increasing
			// index order; the clique's common intersection is [last open,
			// this close] — the maximum lower edge and minimum upper edge
			// of the active intervals.
			members := make([]int, 0, activeCount)
			for w, word := range active {
				for word != 0 {
					members = append(members, w<<6+bits.TrailingZeros64(word))
					word &= word - 1
				}
			}
			groups = append(groups, Group{
				Members:      members,
				Intersection: Interval{Lo: lastOpenAt, Hi: e.at},
			})
		}
		active[e.idx>>6] &^= 1 << (uint(e.idx) & 63)
		activeCount--
		lastWasOpen = false
	}
	return groups
}

// SameEdge reports whether two interval endpoints (or any two float64
// time values) are exactly the same value. It exists as the approved
// exact-equality helper for the floateq analyzer: computed endpoints
// rarely share bit patterns, so ordinary code must not compare them with
// ==, but sentinel tests ("did this value change at all?") and tie-breaks
// on genuinely identical values are legitimate — routing them through
// SameEdge makes the intent machine-checkable. NaN is never the same as
// anything, including itself.
func SameEdge(a, b float64) bool { return a == b }

// Consonant reports whether two clocks' rate intervals are consistent in
// the sense of Section 5: the observed rate of separation lies within the
// sum of the claimed drift bounds. rate is d(Ci - Cj)/dt and deltaI, deltaJ
// are the claimed maximum drift rates.
func Consonant(rate, deltaI, deltaJ float64) bool {
	return math.Abs(rate) <= deltaI+deltaJ
}
