package interval

// Differential tests: the Sweeper-based sweep algorithms against naive
// O(n^2) references that recompute coverage from scratch at every
// candidate point. Random interval sets are drawn on a coarse grid so
// shared endpoints (the tie-breaking cases: open-meets-close at a point,
// several intervals opening at once) occur constantly, and inverted
// intervals are mixed in to exercise the skip path.

import (
	"math/rand/v2"
	"testing"
)

// coverage counts the intervals containing p (closed endpoints).
func coverage(ivs []Interval, p float64) int {
	n := 0
	for _, iv := range ivs {
		if iv.Valid() && iv.Lo <= p && p <= iv.Hi {
			n++
		}
	}
	return n
}

// naiveBest recomputes Marzullo's result by brute force: the maximum
// coverage over all lower edges, the leftmost lower edge attaining it, and
// the nearest edge bounding the region on the right.
func naiveBest(ivs []Interval) Best {
	var best Best
	for _, iv := range ivs {
		if !iv.Valid() {
			continue
		}
		if c := coverage(ivs, iv.Lo); c > best.Count {
			best.Count = c
		}
	}
	if best.Count == 0 {
		return Best{}
	}
	lo := 0.0
	found := false
	for _, iv := range ivs {
		if !iv.Valid() || coverage(ivs, iv.Lo) != best.Count {
			continue
		}
		if !found || iv.Lo < lo {
			lo = iv.Lo
			found = true
		}
	}
	// The sweep pairs the opening edge with the next edge in sorted order:
	// the nearest close at or after lo, or the nearest open strictly
	// after lo, whichever comes first.
	hi := lo
	first := true
	for _, iv := range ivs {
		if !iv.Valid() {
			continue
		}
		if iv.Hi >= lo && (first || iv.Hi < hi) {
			hi = iv.Hi
			first = false
		}
		if iv.Lo > lo && (first || iv.Lo < hi) {
			hi = iv.Lo
			first = false
		}
	}
	return Best{Interval: Interval{Lo: lo, Hi: hi}, Count: best.Count}
}

// naiveAtLeast recomputes MarzulloAtLeast by brute force.
func naiveAtLeast(ivs []Interval, m int) (Interval, bool) {
	if m <= 0 {
		return Interval{}, false
	}
	// start: leftmost lower edge whose coverage reaches m.
	start := 0.0
	found := false
	for _, iv := range ivs {
		if !iv.Valid() || coverage(ivs, iv.Lo) < m {
			continue
		}
		if !found || iv.Lo < start {
			start = iv.Lo
			found = true
		}
	}
	if !found {
		return Interval{}, false
	}
	// end: first upper edge at or after start where the sweep's depth
	// crosses from >= m to m-1: coverage there reaches m and removing the
	// closes at that position drops it below m.
	end := 0.0
	haveEnd := false
	for _, iv := range ivs {
		if !iv.Valid() || iv.Hi < start {
			continue
		}
		q := iv.Hi
		c := coverage(ivs, q)
		closes := 0
		for _, jv := range ivs {
			if jv.Valid() && jv.Hi == q {
				closes++
			}
		}
		if c >= m && c-closes <= m-1 {
			if !haveEnd || q < end {
				end = q
				haveEnd = true
			}
		}
	}
	if !haveEnd {
		// Cannot happen for valid inputs: total coverage drains to zero.
		return Interval{}, false
	}
	return Interval{Lo: start, Hi: end}, true
}

// naiveGroups enumerates maximal cliques by brute force: the active set at
// every endpoint, filtered to those not strictly contained in another.
func naiveGroups(ivs []Interval) [][]int {
	var points []float64
	for _, iv := range ivs {
		if iv.Valid() {
			points = append(points, iv.Lo, iv.Hi)
		}
	}
	var sets [][]int
	for _, p := range points {
		var set []int
		for i, iv := range ivs {
			if iv.Valid() && iv.Lo <= p && p <= iv.Hi {
				set = append(set, i)
			}
		}
		if len(set) > 0 {
			sets = append(sets, set)
		}
	}
	subset := func(a, b []int) bool { // a ⊆ b; both sorted
		j := 0
		for _, x := range a {
			for j < len(b) && b[j] < x {
				j++
			}
			if j >= len(b) || b[j] != x {
				return false
			}
		}
		return true
	}
	var maximal [][]int
	for i, s := range sets {
		keep := true
		for j, t := range sets {
			if i == j {
				continue
			}
			if len(s) < len(t) && subset(s, t) {
				keep = false
				break
			}
			if len(s) == len(t) && j < i && subset(s, t) {
				keep = false // duplicate: keep the first occurrence only
				break
			}
		}
		if keep {
			dup := false
			for _, m := range maximal {
				if len(m) == len(s) && subset(s, m) {
					dup = true
					break
				}
			}
			if !dup {
				maximal = append(maximal, s)
			}
		}
	}
	return maximal
}

// randomIntervals draws n intervals on a coarse grid (so ties are common);
// a fraction are inverted.
func randomIntervals(rng *rand.Rand, n int) []Interval {
	ivs := make([]Interval, n)
	for i := range ivs {
		lo := float64(rng.IntN(40)) / 4
		width := float64(rng.IntN(20)) / 4
		if rng.IntN(10) == 0 {
			ivs[i] = Interval{Lo: lo, Hi: lo - width - 0.25} // inverted
		} else {
			ivs[i] = Interval{Lo: lo, Hi: lo + width} // width 0 allowed
		}
	}
	return ivs
}

func TestMarzulloDifferential(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	sw := NewSweeper(8)
	for trial := 0; trial < 3000; trial++ {
		n := 1 + rng.IntN(12)
		ivs := randomIntervals(rng, n)
		want := naiveBest(ivs)
		for variant, got := range map[string]Best{
			"package": Marzullo(ivs),
			"sweeper": sw.Marzullo(ivs),
		} {
			if got != want {
				t.Fatalf("trial %d (%s): Marzullo(%v) = %+v, naive %+v",
					trial, variant, ivs, got, want)
			}
		}
	}
}

func TestMarzulloAtLeastDifferential(t *testing.T) {
	rng := rand.New(rand.NewPCG(44, 45))
	sw := NewSweeper(8)
	for trial := 0; trial < 3000; trial++ {
		n := 1 + rng.IntN(12)
		ivs := randomIntervals(rng, n)
		m := 1 + rng.IntN(n+1) // sometimes unattainable
		wantIv, wantOK := naiveAtLeast(ivs, m)
		gotIv, gotOK := MarzulloAtLeast(ivs, m)
		if gotOK != wantOK || (gotOK && gotIv != wantIv) {
			t.Fatalf("trial %d: MarzulloAtLeast(%v, %d) = %v,%v; naive %v,%v",
				trial, ivs, m, gotIv, gotOK, wantIv, wantOK)
		}
		swIv, swOK := sw.MarzulloAtLeast(ivs, m)
		if swOK != wantOK || (swOK && swIv != wantIv) {
			t.Fatalf("trial %d: Sweeper.MarzulloAtLeast(%v, %d) = %v,%v; naive %v,%v",
				trial, ivs, m, swIv, swOK, wantIv, wantOK)
		}
		// Consistency with Marzullo at the maximal count.
		if best := Marzullo(ivs); best.Count > 0 {
			iv, ok := MarzulloAtLeast(ivs, best.Count)
			if !ok || iv != best.Interval {
				t.Fatalf("trial %d: MarzulloAtLeast at max count %d = %v,%v; Marzullo %+v",
					trial, best.Count, iv, ok, best)
			}
		}
	}
}

func TestConsistencyGroupsDifferential(t *testing.T) {
	rng := rand.New(rand.NewPCG(46, 47))
	sw := NewSweeper(8)
	for trial := 0; trial < 1500; trial++ {
		n := 1 + rng.IntN(10)
		ivs := randomIntervals(rng, n)
		want := naiveGroups(ivs)
		for variant, groups := range map[string][]Group{
			"package": ConsistencyGroups(ivs),
			"sweeper": sw.ConsistencyGroups(ivs),
		} {
			if len(groups) != len(want) {
				t.Fatalf("trial %d (%s): %d groups, naive %d\nivs=%v\ngot=%v\nwant=%v",
					trial, variant, len(groups), len(want), ivs, groups, want)
			}
			for _, g := range groups {
				// Each group must match one naive maximal clique...
				matched := false
				for _, m := range want {
					if equalInts(g.Members, m) {
						matched = true
						break
					}
				}
				if !matched {
					t.Fatalf("trial %d (%s): group %v not among naive cliques %v (ivs=%v)",
						trial, variant, g.Members, want, ivs)
				}
				// ...and carry the exact common intersection of its members.
				member := make([]Interval, len(g.Members))
				for i, idx := range g.Members {
					member[i] = ivs[idx]
				}
				common, ok := IntersectAll(member)
				if !ok || common != g.Intersection {
					t.Fatalf("trial %d (%s): group %v intersection %v, want %v (ok=%v)",
						trial, variant, g.Members, g.Intersection, common, ok)
				}
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzMarzulloDifferential drives the differential comparison from fuzzed
// bytes: each pair of bytes becomes one interval on a small grid.
func FuzzMarzulloDifferential(f *testing.F) {
	f.Add([]byte{0x10, 0x22, 0x30, 0x14})
	f.Add([]byte{0x00, 0x00, 0xff, 0x01})
	f.Add([]byte{0x42})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		if len(data) > 40 {
			data = data[:40]
		}
		var ivs []Interval
		for i := 0; i+1 < len(data); i += 2 {
			lo := float64(data[i]%32) / 2
			w := float64(int(data[i+1]%16) - 2) // negative w => inverted
			ivs = append(ivs, Interval{Lo: lo, Hi: lo + w/2})
		}
		if got, want := Marzullo(ivs), naiveBest(ivs); got != want {
			t.Fatalf("Marzullo(%v) = %+v, naive %+v", ivs, got, want)
		}
		m := 1 + int(data[0]%8)
		gotIv, gotOK := MarzulloAtLeast(ivs, m)
		wantIv, wantOK := naiveAtLeast(ivs, m)
		if gotOK != wantOK || (gotOK && gotIv != wantIv) {
			t.Fatalf("MarzulloAtLeast(%v, %d) = %v,%v; naive %v,%v",
				ivs, m, gotIv, gotOK, wantIv, wantOK)
		}
	})
}
