// Package ntp implements fault-tolerant clock selection on top of the
// interval algebra — the extension of the paper's algorithms to failing
// clocks that [Marzullo 83] develops and that NTP later adopted for its
// clock-selection phase.
//
// Given n candidate readings, of which up to f may be falsetickers
// (intervals that do not contain the correct time because their server's
// drift bound is invalid or its clock has failed), any point covered by at
// least n-f intervals is covered by at least one truechimer. Selection
// finds the largest m > n/2 such that some point is covered by m intervals,
// keeps the servers whose intervals cover that region (the survivors), and
// discards the rest as falsetickers. A clustering pass then prunes outlier
// survivors, and a combining pass produces the final offset estimate.
package ntp

import (
	"errors"
	"fmt"
	"math"

	"disttime/internal/interval"
)

// ErrNoMajority is returned when no point is covered by a majority of the
// candidate intervals: the service is too inconsistent to select from.
var ErrNoMajority = errors.New("ntp: no majority intersection")

// Reading is one candidate clock source, expressed as the interval known
// to contain the correct value (for a remote server: the transit-adjusted
// offset or absolute interval) and the round trip that produced it.
type Reading struct {
	// ID names the source, for reporting.
	ID string
	// Interval contains the correct value if the source is a truechimer.
	Interval interval.Interval
	// RTT is the measurement's round trip; lower RTT means a tighter,
	// more trustworthy reading. Used as the clustering tiebreaker.
	RTT float64
}

// Selection is the outcome of the select/cluster passes.
type Selection struct {
	// Interval is the region shared by all survivors.
	Interval interval.Interval
	// Survivors and Falsetickers partition the input indices.
	Survivors    []int
	Falsetickers []int
	// ToleratedFaults is f, the number of falsetickers the chosen
	// majority can tolerate (n - m).
	ToleratedFaults int
}

// Options tunes Select.
type Options struct {
	// MinSurvivors is the smallest acceptable survivor count; defaults to
	// a strict majority of the inputs.
	MinSurvivors int
}

// Select runs the intersection algorithm over the candidate readings. It
// finds the largest m such that at least m intervals share a common point,
// requires m to be at least the majority (or Options.MinSurvivors), and
// classifies every reading by whether its interval intersects the selected
// region.
func Select(readings []Reading, opts Options) (Selection, error) {
	n := len(readings)
	if n == 0 {
		return Selection{}, errors.New("ntp: no readings")
	}
	minSurvivors := opts.MinSurvivors
	if minSurvivors <= 0 {
		minSurvivors = n/2 + 1
	}
	ivs := make([]interval.Interval, n)
	for i, r := range readings {
		if !r.Interval.Valid() {
			return Selection{}, fmt.Errorf("ntp: reading %d (%s) has an inverted interval", i, r.ID)
		}
		ivs[i] = r.Interval
	}
	best := interval.Marzullo(ivs)
	if best.Count < minSurvivors {
		return Selection{}, fmt.Errorf("%w: best agreement %d of %d, need %d",
			ErrNoMajority, best.Count, n, minSurvivors)
	}
	out := Selection{Interval: best.Interval, ToleratedFaults: n - best.Count}
	for i, iv := range ivs {
		if interval.Consistent(iv, best.Interval) {
			out.Survivors = append(out.Survivors, i)
		} else {
			out.Falsetickers = append(out.Falsetickers, i)
		}
	}
	// Tighten to the true common region of the survivors.
	member := make([]interval.Interval, len(out.Survivors))
	for i, idx := range out.Survivors {
		member[i] = ivs[idx]
	}
	if common, ok := interval.IntersectAll(member); ok {
		out.Interval = common
	}
	return out, nil
}

// Cluster prunes survivors down to at most keep members by repeatedly
// discarding the survivor whose midpoint is farthest from the mean
// midpoint of the others (ties broken toward higher RTT). It never prunes
// below two survivors. The returned slice preserves input order.
func Cluster(readings []Reading, survivors []int, keep int) []int {
	if keep < 2 {
		keep = 2
	}
	current := append([]int(nil), survivors...)
	for len(current) > keep {
		worst, worstScore := -1, -1.0
		for k, idx := range current {
			mean, count := 0.0, 0
			for j, other := range current {
				if j == k {
					continue
				}
				mean += readings[other].Interval.Midpoint()
				count++
			}
			mean /= float64(count)
			score := math.Abs(readings[idx].Interval.Midpoint() - mean)
			if score > worstScore || (interval.SameEdge(score, worstScore) && worst >= 0 &&
				readings[idx].RTT > readings[current[worst]].RTT) {
				worst, worstScore = k, score
			}
		}
		current = append(current[:worst], current[worst+1:]...)
	}
	return current
}

// Combine produces the final estimate from the chosen survivors: the
// midpoint of each survivor interval, weighted by the inverse of its
// width plus RTT (tighter, faster measurements dominate), together with a
// conservative error equal to the widest distance from the combined value
// to any survivor edge.
func Combine(readings []Reading, survivors []int) (value, maxErr float64, err error) {
	if len(survivors) == 0 {
		return 0, 0, errors.New("ntp: no survivors to combine")
	}
	var sum, weightSum float64
	for _, idx := range survivors {
		r := readings[idx]
		w := 1.0 / (r.Interval.Width() + r.RTT + 1e-12)
		sum += w * r.Interval.Midpoint()
		weightSum += w
	}
	value = sum / weightSum
	for _, idx := range survivors {
		iv := readings[idx].Interval
		if d := math.Max(math.Abs(value-iv.Lo), math.Abs(iv.Hi-value)); d > maxErr {
			maxErr = d
		}
	}
	return value, maxErr, nil
}
