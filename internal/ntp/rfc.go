package ntp

import (
	"fmt"
	"sort"

	"disttime/internal/interval"
)

// SelectRFC implements the RFC 5905 refinement of the intersection
// algorithm (clock_select): like Select it searches for the smallest
// number of assumed falsetickers `allow` such that n-allow intervals
// share a region, but it additionally requires that at most `allow`
// interval *midpoints* fall outside the candidate region. The midpoint
// condition rejects configurations where wide intervals barely graze a
// region their centers disagree with — NTP's hedge against exactly the
// Figure 3 hazard (a derived region pinned by edges of mutually
// suspicious sources).
//
// It returns ErrNoMajority when no allow below half the sources
// satisfies both conditions.
func SelectRFC(readings []Reading, opts Options) (Selection, error) {
	n := len(readings)
	if n == 0 {
		return Selection{}, fmt.Errorf("ntp: no readings")
	}
	type edge struct {
		at  float64
		typ int // +1 lower, -1 upper
	}
	edges := make([]edge, 0, 2*n)
	mids := make([]float64, 0, n)
	for i, r := range readings {
		if !r.Interval.Valid() {
			return Selection{}, fmt.Errorf("ntp: reading %d (%s) has an inverted interval", i, r.ID)
		}
		edges = append(edges,
			edge{at: r.Interval.Lo, typ: +1},
			edge{at: r.Interval.Hi, typ: -1})
		mids = append(mids, r.Interval.Midpoint())
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at < edges[j].at {
			return true
		}
		if edges[i].at > edges[j].at {
			return false
		}
		return edges[i].typ > edges[j].typ
	})

	// The low/high span construction is only sound with a strict
	// majority: any two majority subsets intersect, so the leftmost and
	// rightmost majority-covered points bound one contiguous region. A
	// smaller MinSurvivors would let the span straddle disjoint clusters,
	// so it is clamped to the majority.
	minSurvivors := opts.MinSurvivors
	if minSurvivors < n/2+1 {
		minSurvivors = n/2 + 1
	}

	for allow := 0; n-allow >= minSurvivors; allow++ {
		m := n - allow

		// Leftmost point covered by at least m intervals.
		low, okLow := 0.0, false
		depth := 0
		for _, e := range edges {
			depth += e.typ
			if e.typ > 0 && depth >= m {
				low, okLow = e.at, true
				break
			}
		}
		// Rightmost point covered by at least m intervals.
		high, okHigh := 0.0, false
		depth = 0
		for i := len(edges) - 1; i >= 0; i-- {
			depth -= edges[i].typ
			if edges[i].typ < 0 && depth >= m {
				high, okHigh = edges[i].at, true
				break
			}
		}
		if !okLow || !okHigh || low > high {
			continue
		}
		outside := 0
		for _, mid := range mids {
			if mid < low || mid > high {
				outside++
			}
		}
		if outside > allow {
			continue
		}

		region := interval.Interval{Lo: low, Hi: high}
		out := Selection{Interval: region, ToleratedFaults: allow}
		for i, r := range readings {
			if interval.Consistent(r.Interval, region) &&
				mids[i] >= low && mids[i] <= high {
				out.Survivors = append(out.Survivors, i)
			} else {
				out.Falsetickers = append(out.Falsetickers, i)
			}
		}
		if len(out.Survivors) < minSurvivors {
			continue
		}
		return out, nil
	}
	return Selection{}, fmt.Errorf("%w: no region satisfies both edge and midpoint majorities of %d",
		ErrNoMajority, n)
}
