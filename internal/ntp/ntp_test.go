package ntp

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"disttime/internal/interval"
)

func reading(id string, c, e, rtt float64) Reading {
	return Reading{ID: id, Interval: interval.FromEstimate(c, e), RTT: rtt}
}

func TestSelectAllAgree(t *testing.T) {
	readings := []Reading{
		reading("a", 10, 2, 0.01),
		reading("b", 11, 2, 0.02),
		reading("c", 9.5, 2, 0.03),
	}
	sel, err := Select(readings, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Survivors) != 3 || len(sel.Falsetickers) != 0 {
		t.Fatalf("selection = %+v", sel)
	}
	if sel.ToleratedFaults != 0 {
		t.Errorf("ToleratedFaults = %d", sel.ToleratedFaults)
	}
	// The tightened interval is the true intersection: [9, 11.5].
	if math.Abs(sel.Interval.Lo-9) > 1e-12 || math.Abs(sel.Interval.Hi-11.5) > 1e-12 {
		t.Errorf("interval = %v", sel.Interval)
	}
}

func TestSelectRejectsFalseticker(t *testing.T) {
	readings := []Reading{
		reading("good1", 10, 1, 0.01),
		reading("good2", 10.5, 1, 0.01),
		reading("liar", 100, 1, 0.01),
	}
	sel, err := Select(readings, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Survivors) != 2 {
		t.Fatalf("survivors = %v", sel.Survivors)
	}
	if len(sel.Falsetickers) != 1 || sel.Falsetickers[0] != 2 {
		t.Fatalf("falsetickers = %v", sel.Falsetickers)
	}
	if sel.ToleratedFaults != 1 {
		t.Errorf("ToleratedFaults = %d", sel.ToleratedFaults)
	}
}

func TestSelectNoMajority(t *testing.T) {
	readings := []Reading{
		reading("a", 0, 1, 0),
		reading("b", 100, 1, 0),
		reading("c", 200, 1, 0),
		reading("d", 300, 1, 0),
	}
	_, err := Select(readings, Options{})
	if !errors.Is(err, ErrNoMajority) {
		t.Fatalf("error = %v, want ErrNoMajority", err)
	}
}

func TestSelectEmptyAndInvalid(t *testing.T) {
	if _, err := Select(nil, Options{}); err == nil {
		t.Error("empty input should error")
	}
	bad := []Reading{{ID: "x", Interval: interval.Interval{Lo: 2, Hi: 1}}}
	if _, err := Select(bad, Options{}); err == nil {
		t.Error("inverted interval should error")
	}
}

func TestSelectMinSurvivorsOption(t *testing.T) {
	readings := []Reading{
		reading("a", 10, 1, 0),
		reading("b", 10.5, 1, 0),
		reading("c", 50, 1, 0),
		reading("d", 51, 1, 0),
	}
	// Default majority (3) fails: best agreement is 2.
	if _, err := Select(readings, Options{}); !errors.Is(err, ErrNoMajority) {
		t.Fatalf("error = %v, want ErrNoMajority", err)
	}
	// Relaxed to 2, the leftmost pair wins.
	sel, err := Select(readings, Options{MinSurvivors: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Survivors) != 2 || sel.Survivors[0] != 0 || sel.Survivors[1] != 1 {
		t.Fatalf("survivors = %v", sel.Survivors)
	}
}

// TestSelectToleratesFMinority: with n = 10 and f < n/2 falsetickers, the
// correct readings always survive and no falseticker does.
func TestSelectToleratesFMinority(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for f := 0; f <= 4; f++ {
		for trial := 0; trial < 100; trial++ {
			const n = 10
			truth := 1000.0
			var readings []Reading
			for i := 0; i < n-f; i++ {
				e := 0.5 + rng.Float64()
				c := truth + (rng.Float64()*2-1)*e
				readings = append(readings, reading("good", c, e, rng.Float64()*0.01))
			}
			for i := 0; i < f; i++ {
				// Falsetickers are far off and tight, the dangerous kind.
				c := truth + 100 + rng.Float64()*100
				readings = append(readings, reading("bad", c, 0.1, rng.Float64()*0.01))
			}
			sel, err := Select(readings, Options{})
			if err != nil {
				t.Fatalf("f=%d trial %d: %v", f, trial, err)
			}
			if !sel.Interval.Contains(truth) {
				t.Fatalf("f=%d trial %d: selected interval %v excludes truth",
					f, trial, sel.Interval)
			}
			for _, idx := range sel.Survivors {
				if readings[idx].ID == "bad" {
					t.Fatalf("f=%d trial %d: falseticker survived", f, trial)
				}
			}
		}
	}
}

func TestCluster(t *testing.T) {
	readings := []Reading{
		reading("a", 10, 1, 0.01),
		reading("b", 10.2, 1, 0.01),
		reading("c", 10.1, 1, 0.01),
		reading("outlier", 14, 5, 0.01), // consistent but far midpoint
	}
	survivors := []int{0, 1, 2, 3}
	kept := Cluster(readings, survivors, 3)
	if len(kept) != 3 {
		t.Fatalf("kept = %v", kept)
	}
	for _, idx := range kept {
		if readings[idx].ID == "outlier" {
			t.Error("outlier survived clustering")
		}
	}
}

func TestClusterNeverBelowTwo(t *testing.T) {
	readings := []Reading{
		reading("a", 10, 1, 0),
		reading("b", 20, 1, 0),
	}
	kept := Cluster(readings, []int{0, 1}, 1)
	if len(kept) != 2 {
		t.Errorf("kept = %v, want both", kept)
	}
}

func TestClusterKeepAll(t *testing.T) {
	readings := []Reading{
		reading("a", 10, 1, 0),
		reading("b", 11, 1, 0),
	}
	kept := Cluster(readings, []int{0, 1}, 5)
	if len(kept) != 2 {
		t.Errorf("kept = %v", kept)
	}
}

func TestCombine(t *testing.T) {
	readings := []Reading{
		reading("tight", 10, 0.1, 0.001),
		reading("loose", 12, 5, 0.1),
	}
	value, maxErr, err := Combine(readings, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// The tight reading dominates.
	if math.Abs(value-10) > 0.5 {
		t.Errorf("value = %v, want near 10", value)
	}
	// The error covers the farthest survivor edge (loose Hi = 17).
	if maxErr < 17-value-1e-9 {
		t.Errorf("maxErr = %v too small", maxErr)
	}
}

func TestCombineNoSurvivors(t *testing.T) {
	if _, _, err := Combine(nil, nil); err == nil {
		t.Error("expected error")
	}
}

// TestEndToEndSelection: the full select -> cluster -> combine pipeline
// recovers the correct time with a third of the sources lying.
func TestEndToEndSelection(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 200; trial++ {
		truth := 500.0
		var readings []Reading
		for i := 0; i < 6; i++ {
			e := 0.2 + rng.Float64()*0.5
			readings = append(readings, reading("good", truth+(rng.Float64()*2-1)*e, e, rng.Float64()*0.01))
		}
		for i := 0; i < 3; i++ {
			readings = append(readings, reading("bad", truth-50-rng.Float64()*20, 0.5, rng.Float64()*0.01))
		}
		sel, err := Select(readings, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		kept := Cluster(readings, sel.Survivors, 4)
		value, maxErr, err := Combine(readings, kept)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(value-truth) > maxErr {
			t.Fatalf("trial %d: combined %v +/- %v misses truth", trial, value, maxErr)
		}
	}
}
