package ntp

import (
	"errors"
	"math/rand/v2"
	"testing"

	"disttime/internal/interval"
)

func TestSelectRFCAgreesOnCleanInput(t *testing.T) {
	readings := []Reading{
		reading("a", 10, 2, 0.01),
		reading("b", 11, 2, 0.02),
		reading("c", 9.5, 2, 0.03),
	}
	sel, err := SelectRFC(readings, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Survivors) != 3 || sel.ToleratedFaults != 0 {
		t.Fatalf("selection = %+v", sel)
	}
	if !sel.Interval.Contains(10) {
		t.Errorf("interval %v", sel.Interval)
	}
}

func TestSelectRFCRejectsFalseticker(t *testing.T) {
	readings := []Reading{
		reading("good1", 10, 1, 0.01),
		reading("good2", 10.5, 1, 0.01),
		reading("liar", 100, 1, 0.01),
	}
	sel, err := SelectRFC(readings, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Falsetickers) != 1 || sel.Falsetickers[0] != 2 {
		t.Fatalf("falsetickers = %v", sel.Falsetickers)
	}
}

// TestSelectRFCMidpointConditionBites: a configuration where plain edge
// counting (Select) accepts a sliver grazed by every interval, but the
// midpoints disagree with it, so the RFC variant refuses.
func TestSelectRFCMidpointConditionBites(t *testing.T) {
	readings := []Reading{
		{ID: "tightL1", Interval: interval.Interval{Lo: 0, Hi: 2}},     // mid 1
		{ID: "tightL2", Interval: interval.Interval{Lo: 0.5, Hi: 2.5}}, // mid 1.5
		{ID: "wideR1", Interval: interval.Interval{Lo: 1.9, Hi: 10}},   // mid ~6
		{ID: "wideR2", Interval: interval.Interval{Lo: 1.95, Hi: 12}},  // mid ~7
	}
	// Plain selection: all four share [1.95, 2].
	plain, err := Select(readings, Options{})
	if err != nil {
		t.Fatalf("plain Select: %v", err)
	}
	if len(plain.Survivors) != 4 {
		t.Fatalf("plain survivors = %v", plain.Survivors)
	}
	// RFC: allow=0 fails the midpoint condition (two midpoints below the
	// region); allow=1 widens the region but four midpoints sit outside.
	if _, err := SelectRFC(readings, Options{}); !errors.Is(err, ErrNoMajority) {
		t.Fatalf("SelectRFC error = %v, want ErrNoMajority", err)
	}
}

func TestSelectRFCEmptyAndInvalid(t *testing.T) {
	if _, err := SelectRFC(nil, Options{}); err == nil {
		t.Error("empty input accepted")
	}
	bad := []Reading{{ID: "x", Interval: interval.Interval{Lo: 2, Hi: 1}}}
	if _, err := SelectRFC(bad, Options{}); err == nil {
		t.Error("inverted interval accepted")
	}
}

func TestSelectRFCNoMajority(t *testing.T) {
	readings := []Reading{
		reading("a", 0, 1, 0),
		reading("b", 100, 1, 0),
		reading("c", 200, 1, 0),
	}
	if _, err := SelectRFC(readings, Options{}); !errors.Is(err, ErrNoMajority) {
		t.Fatalf("error = %v", err)
	}
}

// TestSelectRFCCorrectWithHonestMajority mirrors the Select property in
// the guarantee's actual form: SelectRFC may refuse when honest midpoints
// spread wider than the common region (that conservatism is the point of
// the midpoint condition), but whenever it succeeds the region contains
// the truth and no falseticker survives.
func TestSelectRFCCorrectWithHonestMajority(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	for f := 0; f <= 4; f++ {
		succeeded := 0
		const trials = 100
		for trial := 0; trial < trials; trial++ {
			const n = 10
			truth := 1000.0
			var readings []Reading
			for i := 0; i < n-f; i++ {
				e := 0.5 + rng.Float64()
				// Centers concentrated relative to widths, the regime NTP
				// operates in (root distance dominates offset spread).
				c := truth + (rng.Float64()*2-1)*e*0.3
				readings = append(readings, reading("good", c, e, 0))
			}
			for i := 0; i < f; i++ {
				c := truth + 100 + rng.Float64()*100
				readings = append(readings, reading("bad", c, 0.1, 0))
			}
			sel, err := SelectRFC(readings, Options{})
			if err != nil {
				if !errors.Is(err, ErrNoMajority) {
					t.Fatalf("f=%d trial %d: %v", f, trial, err)
				}
				continue
			}
			succeeded++
			if !sel.Interval.Contains(truth) {
				t.Fatalf("f=%d trial %d: region %v excludes truth", f, trial, sel.Interval)
			}
			for _, idx := range sel.Survivors {
				if readings[idx].ID == "bad" {
					t.Fatalf("f=%d trial %d: falseticker survived", f, trial)
				}
			}
		}
		if succeeded < trials*8/10 {
			t.Errorf("f=%d: only %d/%d selections succeeded in the concentrated regime", f, succeeded, trials)
		}
	}
}

// TestSelectRFCRegionCoversSelectRegion: whenever both succeed with the
// same tolerated-fault count, the RFC region (edges of the m-coverage
// span) contains the plain best intersection.
func TestSelectRFCRegionCoversSelectRegion(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 44))
	for trial := 0; trial < 300; trial++ {
		truth := 100.0
		var readings []Reading
		for i := 0; i < 5; i++ {
			e := 0.5 + rng.Float64()
			readings = append(readings, reading("good", truth+(rng.Float64()*2-1)*e, e, 0))
		}
		plain, errP := Select(readings, Options{})
		if errP != nil {
			t.Fatalf("trial %d: %v", trial, errP)
		}
		rfc, errR := SelectRFC(readings, Options{})
		if errors.Is(errR, ErrNoMajority) {
			continue // legitimate RFC conservatism
		}
		if errR != nil {
			t.Fatalf("trial %d: %v", trial, errR)
		}
		if rfc.ToleratedFaults == plain.ToleratedFaults {
			if !interval.Consistent(rfc.Interval, plain.Interval) {
				t.Fatalf("trial %d: regions disjoint: %v vs %v", trial, rfc.Interval, plain.Interval)
			}
		}
	}
}

func TestSelectRFCMinSurvivorsOption(t *testing.T) {
	readings := []Reading{
		reading("a", 10, 1, 0),
		reading("b", 10.2, 1, 0),
		reading("c", 50, 1, 0),
		reading("d", 51, 1, 0),
	}
	if _, err := SelectRFC(readings, Options{}); !errors.Is(err, ErrNoMajority) {
		t.Fatalf("default majority should fail: %v", err)
	}
	// Unlike Select, the RFC construction is only sound with a strict
	// majority, so a sub-majority MinSurvivors is clamped and still fails
	// (the span would otherwise straddle the two disjoint clusters).
	if _, err := SelectRFC(readings, Options{MinSurvivors: 2}); !errors.Is(err, ErrNoMajority) {
		t.Fatalf("sub-majority MinSurvivors not clamped: %v", err)
	}
	// Raising MinSurvivors above the majority is honored.
	tight := []Reading{
		reading("a", 10, 1, 0),
		reading("b", 10.2, 1, 0),
		reading("c", 10.4, 1, 0),
		reading("d", 50, 1, 0),
	}
	if _, err := SelectRFC(tight, Options{MinSurvivors: 4}); !errors.Is(err, ErrNoMajority) {
		t.Fatalf("MinSurvivors=4 with 3 agreeing should fail: %v", err)
	}
	sel, err := SelectRFC(tight, Options{MinSurvivors: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Survivors) != 3 {
		t.Fatalf("survivors = %v", sel.Survivors)
	}
}
