package udptime

import (
	"math"
	"testing"
	"time"
)

func TestNewPeerValidation(t *testing.T) {
	if _, err := NewPeer(PeerConfig{Addr: "127.0.0.1:0"}); err == nil {
		t.Error("peer with no peers accepted")
	}
	if _, err := NewPeer(PeerConfig{
		Addr: "127.0.0.1:0", Peers: []string{"x"}, DriftPPM: -1,
	}); err == nil {
		t.Error("negative drift accepted")
	}
	if _, err := NewPeer(PeerConfig{
		Addr: "not an address", Peers: []string{"x"},
	}); err == nil {
		t.Error("bad address accepted")
	}
}

func TestPeerAnswersUnsynchronizedBeforeFirstSync(t *testing.T) {
	// A peer whose only upstream is silent never synchronizes; its
	// answers must carry the Unsynchronized flag so clients ignore them.
	silent, err := NewServer("127.0.0.1:0", 9, shiftedClock{synced: false})
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()

	peer, err := NewPeer(PeerConfig{
		Addr:     "127.0.0.1:0",
		ID:       1,
		DriftPPM: 100,
		Peers:    []string{silent.Addr().String()},
		Interval: time.Minute,
		Timeout:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	client := NewClient(2*time.Second, nil)
	m, err := client.Query(peer.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Unsynchronized {
		t.Error("unsynced peer answered as synchronized")
	}
}

func TestPeersConvergeOnReference(t *testing.T) {
	// A reference server plus two peers that track it: after a round,
	// both peers answer with intervals containing the reference time.
	ref := startServer(t, 100, shiftedClock{err: 5 * time.Millisecond, synced: true})

	mkPeer := func(id uint64) *Peer {
		reports := make(chan SyncReport, 4)
		peer, err := NewPeer(PeerConfig{
			Addr:     "127.0.0.1:0",
			ID:       id,
			DriftPPM: 100,
			Peers:    []string{ref.Addr().String()},
			Interval: 50 * time.Millisecond,
			Timeout:  time.Second,
			OnSync:   func(r SyncReport) { reports <- r },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { peer.Close() })
		select {
		case r := <-reports:
			if r.Err != nil {
				t.Fatalf("peer %d first round: %v", id, r.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("peer %d never synced", id)
		}
		return peer
	}
	p1 := mkPeer(1)
	p2 := mkPeer(2)

	client := NewClient(2*time.Second, nil)
	for _, p := range []*Peer{p1, p2} {
		m, err := client.Query(p.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if m.Unsynchronized {
			t.Errorf("peer %d still unsynchronized", m.ServerID)
		}
		// The peer's clock tracks the (unshifted) reference.
		if iv := m.OffsetInterval(); !iv.Contains(0) {
			t.Errorf("peer %d offset interval %v excludes 0", m.ServerID, iv)
		}
	}

	// The two peers' clocks agree with each other.
	n1, _, _ := p1.Clock().Now()
	n2, _, _ := p2.Clock().Now()
	if d := n1.Sub(n2); math.Abs(d.Seconds()) > 0.2 {
		t.Errorf("peers disagree by %v", d)
	}
	if p1.Rounds() == 0 || p1.LastReport().When.IsZero() {
		t.Error("peer accounting empty")
	}
}

func TestPeerMeshSyncsFromEachOther(t *testing.T) {
	// One reference plus a peer; a second peer knows only the first peer,
	// not the reference — transitive synchronization through the mesh.
	ref := startServer(t, 100, shiftedClock{err: 5 * time.Millisecond, synced: true})

	first := make(chan SyncReport, 4)
	p1, err := NewPeer(PeerConfig{
		Addr: "127.0.0.1:0", ID: 1, DriftPPM: 100,
		Peers:    []string{ref.Addr().String()},
		Interval: 50 * time.Millisecond, Timeout: time.Second,
		OnSync: func(r SyncReport) { first <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	select {
	case r := <-first:
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("p1 never synced")
	}

	second := make(chan SyncReport, 16)
	p2, err := NewPeer(PeerConfig{
		Addr: "127.0.0.1:0", ID: 2, DriftPPM: 100,
		Peers:    []string{p1.Addr().String()},
		Interval: 50 * time.Millisecond, Timeout: time.Second,
		OnSync: func(r SyncReport) { second <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()

	deadline := time.After(5 * time.Second)
	for {
		select {
		case r := <-second:
			if r.Err == nil {
				// Synced through p1. The chained error bound must cover
				// the actual offset from the reference timeline.
				now, e, synced := p2.Clock().Now()
				if !synced {
					t.Fatal("p2 reports unsynced after a good round")
				}
				off := now.Sub(time.Now())
				if math.Abs(off.Seconds()) > e.Seconds()+0.1 {
					t.Errorf("p2 off by %v with bound %v", off, e)
				}
				return
			}
			// p1 may have been mid-first-round; retry until deadline.
		case <-deadline:
			t.Fatal("p2 never completed a successful round")
		}
	}
}

func TestNewPeerUsesSuppliedClock(t *testing.T) {
	ref := startServer(t, 100, shiftedClock{err: 5 * time.Millisecond, synced: true})
	dc, err := NewDisciplinedClock(100)
	if err != nil {
		t.Fatal(err)
	}
	reports := make(chan SyncReport, 4)
	peer, err := NewPeer(PeerConfig{
		Addr: "127.0.0.1:0", ID: 1, Clock: dc,
		Peers:    []string{ref.Addr().String()},
		Interval: time.Minute, Timeout: time.Second,
		OnSync: func(r SyncReport) { reports <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	if peer.Clock() != dc {
		t.Fatal("peer did not adopt the supplied clock")
	}
	select {
	case r := <-reports:
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no round")
	}
	if _, _, synced := dc.Now(); !synced {
		t.Error("supplied clock not disciplined")
	}
}
