package udptime

import (
	"errors"
	"net"
	"time"

	"disttime/internal/member"
	"disttime/internal/obs"
	"disttime/internal/wire"
)

// Peer is a complete time-service member over UDP: it answers rule MM-1
// readings from a disciplined local clock while a background syncer keeps
// that clock disciplined against its peers — the composition every server
// of the paper's service runs. Until its first successful round the peer
// answers with the Unsynchronized flag set, and clients ignore it.
//
// With Seeds configured the peer is roster-backed: it learns the cluster
// through membership gossip (version-2 advertise datagrams), runs a
// drift-aware failure detector over heartbeat freshness, and re-resolves
// its poll targets every sync round to the live members with the
// smallest advertised maximum error.
type Peer struct {
	clock      *DisciplinedClock
	server     *Server
	syncer     *Syncer
	membership *membership
}

// PeerConfig configures a Peer.
type PeerConfig struct {
	// Addr is the UDP address to serve on (e.g. "127.0.0.1:0"). With
	// Seeds, serve on a concrete host so the advertised address is
	// reachable by the other members.
	Addr string
	// ID is the peer's server identity.
	ID uint64
	// DriftPPM is the claimed drift bound of the local oscillator.
	// Ignored when Clock is supplied.
	DriftPPM float64
	// Clock, when non-nil, is the disciplined clock to serve and steer;
	// otherwise the peer creates one from DriftPPM.
	Clock *DisciplinedClock
	// Peers are the other members to synchronize against. May be empty
	// when Seeds are given (the roster then supplies the poll targets);
	// at least one of Peers and Seeds is required.
	Peers []string
	// Seeds are bootstrap member addresses: configuring any enables
	// dynamic membership. The peer announces itself to the seeds,
	// learns the full roster through gossip, and polls the best-ranked
	// live members instead of a static list. Peers, when also set, act
	// as a static fallback while the roster is still empty.
	Seeds []string
	// Membership tunes gossip and failure detection (zero value: 1 s
	// gossip, 3 misses, 500 ms delay bound). Ignored without Seeds.
	Membership MembershipConfig
	// Interval is the sync period (the paper's tau); defaults to 64 s.
	Interval time.Duration
	// Timeout bounds each query; defaults to one second.
	Timeout time.Duration
	// Selection enables falseticker rejection.
	Selection bool
	// Burst is the per-server queries per round (min-RTT kept).
	Burst int
	// Metrics, when non-nil, receives the peer's observability: the
	// syncer's round counters and histograms plus, with Seeds, the
	// membership gauges (alive/known members) and gossip counters.
	Metrics *obs.Registry
	// OnSync observes each synchronization round.
	OnSync func(SyncReport)
}

// NewPeer starts a peer: a server answering on Addr and a syncer
// disciplining its clock against Peers, the roster, or both.
func NewPeer(cfg PeerConfig) (*Peer, error) {
	if len(cfg.Peers) == 0 && len(cfg.Seeds) == 0 {
		return nil, errors.New("udptime: peer needs at least one peer address")
	}
	dc := cfg.Clock
	if dc == nil {
		var err error
		if dc, err = NewDisciplinedClock(cfg.DriftPPM); err != nil {
			return nil, err
		}
	}
	var m *membership
	var opts []ServerOption
	if len(cfg.Seeds) > 0 {
		m = newMembership(dc, dc.DriftPPM(), cfg.Membership, cfg.Metrics)
		opts = append(opts, advertiseOption{handler: func(_ *net.UDPAddr, entries []wire.MemberEntry) {
			m.handleAdvertise(entries)
		}})
	}
	server, err := NewServer(cfg.Addr, cfg.ID, dc, opts...)
	if err != nil {
		return nil, err
	}
	if m != nil {
		if err := m.bind(server.conn, cfg.ID, cfg.Seeds); err != nil {
			server.Close()
			return nil, err
		}
	}
	scfg := SyncerConfig{
		Servers:   cfg.Peers,
		Interval:  cfg.Interval,
		Timeout:   cfg.Timeout,
		Selection: cfg.Selection,
		Burst:     cfg.Burst,
		Metrics:   cfg.Metrics,
		OnSync:    cfg.OnSync,
	}
	if m != nil {
		scfg.Targets = m.Targets
	}
	syncer, err := NewSyncer(dc, scfg)
	if err != nil {
		if m != nil {
			m.close()
		}
		server.Close()
		return nil, err
	}
	return &Peer{clock: dc, server: server, syncer: syncer, membership: m}, nil
}

// Clock returns the peer's disciplined clock.
func (p *Peer) Clock() *DisciplinedClock { return p.clock }

// Addr returns the peer's serving address.
func (p *Peer) Addr() *net.UDPAddr { return p.server.Addr() }

// Requests returns how many requests the peer has answered.
func (p *Peer) Requests() uint64 { return p.server.Requests() }

// Rounds returns how many synchronization rounds have completed.
func (p *Peer) Rounds() int { return p.syncer.Rounds() }

// LastReport returns the most recent synchronization round's report.
func (p *Peer) LastReport() SyncReport { return p.syncer.LastReport() }

// Members returns the peer's roster in increasing address order, or nil
// without dynamic membership.
func (p *Peer) Members() []member.Entry[string] {
	if p.membership == nil {
		return nil
	}
	return p.membership.Members()
}

// Evictions returns how many members this peer's failure detector has
// evicted (zero without dynamic membership).
func (p *Peer) Evictions() uint64 {
	if p.membership == nil {
		return 0
	}
	return p.membership.Evictions()
}

// EvictAfter returns the failure detector's eviction deadline: the
// local-clock silence after which a member is evicted. Zero without
// dynamic membership. Tests and operators use it to size "the member
// should be gone by now" waits.
func (p *Peer) EvictAfter() time.Duration {
	if p.membership == nil {
		return 0
	}
	secs := p.membership.det.Config().EvictAfter()
	return time.Duration(secs * float64(time.Second))
}

// Close stops the syncer, announces a voluntary departure to the
// roster (with Seeds), and shuts the server down, waiting for all.
func (p *Peer) Close() error {
	p.syncer.Stop()
	if p.membership != nil {
		p.membership.close()
	}
	return p.server.Close()
}
