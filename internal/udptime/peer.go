package udptime

import (
	"errors"
	"net"
	"time"
)

// Peer is a complete time-service member over UDP: it answers rule MM-1
// readings from a disciplined local clock while a background syncer keeps
// that clock disciplined against its peers — the composition every server
// of the paper's service runs. Until its first successful round the peer
// answers with the Unsynchronized flag set, and clients ignore it.
type Peer struct {
	clock  *DisciplinedClock
	server *Server
	syncer *Syncer
}

// PeerConfig configures a Peer.
type PeerConfig struct {
	// Addr is the UDP address to serve on (e.g. "127.0.0.1:0").
	Addr string
	// ID is the peer's server identity.
	ID uint64
	// DriftPPM is the claimed drift bound of the local oscillator.
	// Ignored when Clock is supplied.
	DriftPPM float64
	// Clock, when non-nil, is the disciplined clock to serve and steer;
	// otherwise the peer creates one from DriftPPM.
	Clock *DisciplinedClock
	// Peers are the other members to synchronize against. Required.
	Peers []string
	// Interval is the sync period (the paper's tau); defaults to 64 s.
	Interval time.Duration
	// Timeout bounds each query; defaults to one second.
	Timeout time.Duration
	// Selection enables falseticker rejection.
	Selection bool
	// Burst is the per-server queries per round (min-RTT kept).
	Burst int
	// OnSync observes each synchronization round.
	OnSync func(SyncReport)
}

// NewPeer starts a peer: a server answering on Addr and a syncer
// disciplining its clock against Peers.
func NewPeer(cfg PeerConfig) (*Peer, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("udptime: peer needs at least one peer address")
	}
	dc := cfg.Clock
	if dc == nil {
		var err error
		if dc, err = NewDisciplinedClock(cfg.DriftPPM); err != nil {
			return nil, err
		}
	}
	server, err := NewServer(cfg.Addr, cfg.ID, dc)
	if err != nil {
		return nil, err
	}
	syncer, err := NewSyncer(dc, SyncerConfig{
		Servers:   cfg.Peers,
		Interval:  cfg.Interval,
		Timeout:   cfg.Timeout,
		Selection: cfg.Selection,
		Burst:     cfg.Burst,
		OnSync:    cfg.OnSync,
	})
	if err != nil {
		server.Close()
		return nil, err
	}
	return &Peer{clock: dc, server: server, syncer: syncer}, nil
}

// Clock returns the peer's disciplined clock.
func (p *Peer) Clock() *DisciplinedClock { return p.clock }

// Addr returns the peer's serving address.
func (p *Peer) Addr() *net.UDPAddr { return p.server.Addr() }

// Requests returns how many requests the peer has answered.
func (p *Peer) Requests() uint64 { return p.server.Requests() }

// Rounds returns how many synchronization rounds have completed.
func (p *Peer) Rounds() int { return p.syncer.Rounds() }

// LastReport returns the most recent synchronization round's report.
func (p *Peer) LastReport() SyncReport { return p.syncer.LastReport() }

// Close stops the syncer and the server, waiting for both.
func (p *Peer) Close() error {
	p.syncer.Stop()
	return p.server.Close()
}
