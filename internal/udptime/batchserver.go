package udptime

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"disttime/internal/obs"
	"disttime/internal/wire"
)

// BatchConfig configures a BatchServer.
type BatchConfig struct {
	// Shards is the number of handler shards, each bound to its own
	// SO_REUSEPORT listener on the serving port; the kernel hashes
	// incoming datagrams across them. Zero means one shard. More than
	// one shard requires SO_REUSEPORT support (Linux and the BSDs).
	Shards int
	// Batch is the number of datagrams moved per recvmmsg/sendmmsg
	// vector on the Linux fast path (zero means 32, capped at 512). The
	// portable fallback ignores it and runs per-packet.
	Batch int
	// Tick is the cached-response refresh interval (zero means one
	// millisecond). A negative Tick disables the cache entirely: every
	// reply reads the clock source directly, trading the lock-free
	// reply path for exact parity with the per-packet server — the mode
	// the differential serving tests pin the wire format with.
	Tick time.Duration
	// DriftPPM is the drift bound charged into the per-tick widening of
	// the cached error. Zero defaults to the source's own bound when it
	// exposes one (DisciplinedClock and SystemClock both do).
	DriftPPM float64
	// Logger receives malformed-datagram diagnostics (default silent).
	Logger *log.Logger
	// Registry resolves the server's metrics (nil leaves them inert).
	Registry *obs.Registry
}

// driftReporter is implemented by clock sources that know their own
// drift bound.
type driftReporter interface {
	DriftPPM() float64
}

// BatchServer is the batched, sharded UDP time server: N shards, each
// bound to its own SO_REUSEPORT listener, each draining datagrams in
// recvmmsg-sized batches and answering from a per-tick cached <C, E>
// reading, so replies under load touch neither the clock lock nor a
// per-packet syscall. It answers exactly the same wire protocol as the
// per-packet Server — the differential serving tests assert the two
// produce byte-identical responses.
type BatchServer struct {
	resp  *responder
	cache *TickCache

	conns []batchIO
	dones []chan struct{}
	addr  *net.UDPAddr

	logger      *log.Logger
	obsBatches  *obs.Counter
	obsSendErrs *obs.Counter

	closeOnce sync.Once
	closeErr  error
}

// NewBatchServer starts a batched sharded server on addr answering with
// readings from src, identifying itself as id. The server runs until
// Close. A bind failure on any shard (for example a busy port) tears
// down the shards already bound and returns the listener's error.
func NewBatchServer(addr string, id uint64, src ClockSource, cfg BatchConfig) (*BatchServer, error) {
	if src == nil {
		return nil, errors.New("udptime: nil clock source")
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	batch := clampBatch(cfg.Batch)
	drift := cfg.DriftPPM
	if drift <= 0 {
		if dr, ok := src.(driftReporter); ok {
			drift = dr.DriftPPM()
		}
	}

	s := &BatchServer{logger: cfg.Logger}
	serveSrc := src
	if cfg.Tick >= 0 {
		s.cache = NewTickCache(src, cfg.Tick, drift)
		serveSrc = s.cache
	}
	s.resp = &responder{id: id, src: serveSrc}
	if cfg.Registry != nil {
		s.resp.obsRequests = cfg.Registry.Counter("udptime_server_requests_total")
		s.resp.obsMalformed = cfg.Registry.Counter("udptime_server_malformed_total")
		s.obsBatches = cfg.Registry.Counter("udptime_server_batches_total")
		s.obsSendErrs = cfg.Registry.Counter("udptime_server_send_errors_total")
		cfg.Registry.Gauge("udptime_server_shards").Set(float64(shards))
	}

	bindTo := addr
	for i := 0; i < shards; i++ {
		conn, err := listenUDP(bindTo, shards > 1)
		if err != nil {
			s.teardown()
			return nil, fmt.Errorf("udptime: bind shard %d of %d on %q: %w", i, shards, bindTo, err)
		}
		_ = conn.SetReadBuffer(1 << 20)
		_ = conn.SetWriteBuffer(1 << 20)
		// Replies are always exactly ResponseSize, so same-peer runs can
		// leave as GSO super-datagrams where the kernel supports it.
		bc, err := newBatchConn(conn, batch, false, wire.ResponseSize)
		if err != nil {
			conn.Close()
			s.teardown()
			return nil, fmt.Errorf("udptime: shard %d raw conn: %w", i, err)
		}
		s.conns = append(s.conns, bc)
		if i == 0 {
			s.addr = bc.LocalAddr()
			// Later shards must join the concrete port shard 0 got,
			// even when addr asked for :0.
			bindTo = s.addr.String()
		}
	}
	s.dones = make([]chan struct{}, shards)
	for i := range s.conns {
		s.dones[i] = make(chan struct{})
		go s.shardLoop(i)
	}
	return s, nil
}

// teardown releases partially constructed state (no shard loops yet).
func (s *BatchServer) teardown() {
	for _, c := range s.conns {
		_ = c.Close()
	}
	if s.cache != nil {
		s.cache.Stop()
	}
}

// Addr returns the server's bound address.
func (s *BatchServer) Addr() *net.UDPAddr { return s.addr }

// Shards returns the number of handler shards.
func (s *BatchServer) Shards() int { return len(s.conns) }

// Requests returns how many well-formed requests the server has
// answered across all shards.
func (s *BatchServer) Requests() uint64 { return s.resp.served.Load() }

// MalformedDatagrams returns how many datagrams failed to parse.
func (s *BatchServer) MalformedDatagrams() uint64 { return s.resp.malformed.Load() }

// Close stops every shard and the tick cache and waits for the shard
// loops to drain, including batches in flight. It is idempotent and
// safe to call from several goroutines at once; every call returns the
// same result.
func (s *BatchServer) Close() error {
	s.closeOnce.Do(func() {
		var first error
		for _, c := range s.conns {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
		for _, d := range s.dones {
			<-d
		}
		if s.cache != nil {
			s.cache.Stop()
		}
		s.closeErr = first
	})
	return s.closeErr
}

// shardLoop drains one listener: receive a batch, answer every
// well-formed request from the cached reading, send the replies.
func (s *BatchServer) shardLoop(i int) {
	defer close(s.dones[i])
	bc := s.conns[i]
	bt := bc.Batch()
	for {
		n, err := bc.Recv()
		if err != nil {
			if isClosedErr(err) {
				return
			}
			// Transient receive failure (spurious ICMP, truncation):
			// count it and keep serving.
			s.resp.malformed.Add(1)
			s.resp.obsMalformed.Inc()
			continue
		}
		s.obsBatches.Inc()
		if s.resp.respond(bt, n) == 0 {
			s.logMalformed(bt, n)
			continue
		}
		s.logMalformed(bt, n)
		if err := bc.Send(n); err != nil {
			if isClosedErr(err) {
				return
			}
			s.obsSendErrs.Inc()
		}
	}
}

// logMalformed reports unanswered slots when a logger is configured;
// kept off the annotated fast path because diagnostics may allocate.
func (s *BatchServer) logMalformed(bt *ioBatch, n int) {
	if s.logger == nil {
		return
	}
	for i := 0; i < n; i++ {
		if len(bt.send[i]) == 0 {
			s.logger.Printf("udptime: batch shard dropped %d-byte malformed datagram", len(bt.recv[i]))
		}
	}
}

// isClosedErr reports whether err means the connection was shut down.
func isClosedErr(err error) bool {
	return errors.Is(err, net.ErrClosed)
}
