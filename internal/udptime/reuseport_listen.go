//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package udptime

import (
	"context"
	"fmt"
	"net"
	"syscall"
)

// listenReusePort binds a UDP listener with SO_REUSEPORT set before
// bind, so N shard listeners can share one port and the kernel hashes
// incoming datagrams across them (the standard fan-in idiom for
// multi-queue UDP serving).
func listenReusePort(addr string) (*net.UDPConn, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var optErr error
			err := c.Control(func(fd uintptr) {
				optErr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			})
			if err != nil {
				return err
			}
			return optErr
		},
	}
	pc, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, err
	}
	conn, ok := pc.(*net.UDPConn)
	if !ok {
		pc.Close()
		return nil, fmt.Errorf("udptime: reuseport listener is %T, not *net.UDPConn", pc)
	}
	return conn, nil
}
