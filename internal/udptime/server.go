package udptime

import (
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/netip"
	"sync"
	"sync/atomic"

	"disttime/internal/hlc"
	"disttime/internal/obs"
	"disttime/internal/wire"
)

// dgramPool recycles full-size datagram scratch buffers across server
// loops and client queries, so short-lived readers (clients issue one
// query per sync round) stop allocating a fresh buffer each time.
var dgramPool = sync.Pool{
	New: func() any { return new([maxDatagram]byte) },
}

// Server is a UDP time server: it answers each wire.Request with the
// reading of its ClockSource at the moment the request was processed
// (rule MM-1). With WithHealthListener it also serves /healthz,
// Prometheus-style /metrics, and pprof over HTTP.
type Server struct {
	id     uint64
	src    ClockSource
	conn   *net.UDPConn
	done   chan struct{}
	logger *log.Logger

	// hlc is the server's hybrid logical clock, always on: every
	// version-3 exchange folds the client's timestamp in and stamps the
	// reply, so RPCs double as hlc.Update edges.
	hlc *hlc.Clock

	requests atomic.Uint64
	errsSeen atomic.Uint64

	// advertise, when non-nil, receives parsed membership heartbeats
	// (wire.TypeAdvertise datagrams); without it they count as malformed,
	// which is exactly how a pre-membership server treats them.
	advertise func(from *net.UDPAddr, entries []wire.MemberEntry)

	// Observability (see health.go). The obs handles are nil without a
	// registry; obs methods are nil-safe, so the serve loop bumps them
	// unconditionally.
	reg          *obs.Registry
	obsRequests  *obs.Counter
	obsMalformed *obs.Counter
	obsSendErrs  *obs.Counter
	healthAddr   string
	healthLn     net.Listener
	health       *http.Server
}

// ServerOption configures a Server.
type ServerOption interface {
	applyServer(*Server)
}

type serverLoggerOption struct{ logger *log.Logger }

func (o serverLoggerOption) applyServer(s *Server) { s.logger = o.logger }

// advertiseOption installs the membership dispatch: version-2 advertise
// datagrams are handed to the handler instead of the request parser.
// Internal — membership is enabled through PeerConfig.Seeds, not as a
// standalone server option.
type advertiseOption struct {
	handler func(from *net.UDPAddr, entries []wire.MemberEntry)
}

func (o advertiseOption) applyServer(s *Server) { s.advertise = o.handler }

// WithServerLogger routes malformed-datagram diagnostics to logger
// (default: silent).
func WithServerLogger(logger *log.Logger) ServerOption {
	return serverLoggerOption{logger: logger}
}

// NewServer starts a time server listening on addr (e.g. "127.0.0.1:0")
// answering with readings from src, identifying itself as id. The server
// runs until Close.
func NewServer(addr string, id uint64, src ClockSource, opts ...ServerOption) (*Server, error) {
	if src == nil {
		return nil, errors.New("udptime: nil clock source")
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udptime: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("udptime: listen %q: %w", addr, err)
	}
	s := &Server{id: id, src: src, conn: conn, done: make(chan struct{}), hlc: hlc.New(uint32(id))}
	for _, o := range opts {
		o.applyServer(s)
	}
	if err := s.startHealth(); err != nil {
		conn.Close()
		return nil, err
	}
	go s.serve()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() *net.UDPAddr {
	addr, _ := s.conn.LocalAddr().(*net.UDPAddr)
	return addr
}

// Requests returns how many well-formed requests the server has answered.
func (s *Server) Requests() uint64 { return s.requests.Load() }

// HLC returns the server's hybrid logical clock.
func (s *Server) HLC() *hlc.Clock { return s.hlc }

// MalformedDatagrams returns how many datagrams failed to parse.
func (s *Server) MalformedDatagrams() uint64 { return s.errsSeen.Load() }

// Close stops the server (and its health listener, if any) and waits
// for its loop to exit.
func (s *Server) Close() error {
	s.closeHealth()
	err := s.conn.Close()
	<-s.done
	return err
}

func (s *Server) serve() {
	defer close(s.done)
	bufp := dgramPool.Get().(*[maxDatagram]byte)
	buf := bufp[:]
	defer dgramPool.Put(bufp)
	out := make([]byte, 0, wire.ResponseHLCSize)
	for {
		// ReadFromUDPAddrPort keeps the receive path allocation-free: the
		// peer address comes back as a value, not the *net.UDPAddr (plus
		// IP slice) that ReadFromUDP heap-allocates per datagram.
		n, peer, err := s.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.errsSeen.Add(1)
			continue
		}
		typ, ok := wire.PeekType(buf[:n])
		if ok && typ == wire.TypeAdvertise && s.advertise != nil {
			s.handleAdvertise(buf[:n], peer)
			continue
		}
		if ok && typ == wire.TypeRequestHLC {
			out = s.respondHLC(buf[:n], out)
		} else {
			out = s.respondOne(buf[:n], out)
		}
		if len(out) == 0 {
			if s.logger != nil {
				s.logger.Printf("udptime: bad request from %v (%d bytes)", peer, n)
			}
			continue
		}
		if _, err := s.conn.WriteToUDPAddrPort(out, peer); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.errsSeen.Add(1)
			s.obsSendErrs.Inc()
			continue
		}
		s.requests.Add(1)
		s.obsRequests.Inc()
	}
}

// respondOne is the per-datagram fast path: parse the request, read the
// clock, encode the reply into out's backing array. An empty result
// means the datagram was malformed (already counted). Shares its
// allocation audit with the batched path — the transform is the same.
//
//lint:noalloc BenchmarkServeBatch
func (s *Server) respondOne(in, out []byte) []byte {
	req, err := wire.ParseRequest(in)
	if err != nil {
		s.errsSeen.Add(1)
		s.obsMalformed.Inc()
		return out[:0]
	}
	c, maxErr, synced := s.src.Now()
	res, err := wire.AppendResponse(out[:0], wire.Response{
		ReqID:          req.ReqID,
		ServerID:       s.id,
		Clock:          c,
		MaxError:       maxErr,
		Unsynchronized: !synced,
	})
	if err != nil {
		s.errsSeen.Add(1)
		return out[:0]
	}
	return res
}

// respondHLC is the version-3 fast path: parse the request, fold the
// client's timestamp into the server's hybrid logical clock, and answer
// with the reading plus the receive event's timestamp. The HLC wall is
// the reading's latest bound C+E, so the stamped physical component
// never trails true time while the clock is contained.
//
//lint:noalloc BenchmarkServeBatch
func (s *Server) respondHLC(in, out []byte) []byte {
	req, err := wire.ParseRequestHLC(in)
	if err != nil {
		s.errsSeen.Add(1)
		s.obsMalformed.Inc()
		return out[:0]
	}
	c, maxErr, synced := s.src.Now()
	ts := s.hlc.Update(c.Add(maxErr).UnixNano(), req.TS)
	res, err := wire.AppendResponseHLC(out[:0], wire.ResponseHLC{
		Response: wire.Response{
			ReqID:          req.ReqID,
			ServerID:       s.id,
			Clock:          c,
			MaxError:       maxErr,
			Unsynchronized: !synced,
		},
		TS: ts,
	})
	if err != nil {
		s.errsSeen.Add(1)
		return out[:0]
	}
	return res
}

// handleAdvertise dispatches a membership heartbeat; the *net.UDPAddr
// conversion allocates, which is fine on this rare, unannotated path.
func (s *Server) handleAdvertise(pkt []byte, peer netip.AddrPort) {
	_, entries, err := wire.ParseAdvertise(pkt)
	if err != nil {
		s.errsSeen.Add(1)
		s.obsMalformed.Inc()
		if s.logger != nil {
			s.logger.Printf("udptime: bad advertise from %v: %v", peer, err)
		}
		return
	}
	s.advertise(net.UDPAddrFromAddrPort(peer), entries)
}
