//go:build linux && (amd64 || arm64)

package udptime

import (
	"bytes"
	"errors"
	"net"
	"os"
	"syscall"
	"time"
	"unsafe"
)

// The Linux batch fast path: one recvmmsg system call drains up to a
// full batch of datagrams, one sendmmsg call answers them — the syscall
// cost per datagram falls by the batch factor, which is the entire win
// on a serving path whose per-packet work is a 16-byte parse and a
// 40-byte encode. The raw syscalls integrate with the runtime poller
// through syscall.RawConn: the callbacks return false on EAGAIN so the
// goroutine parks in the netpoller instead of spinning, and deadlines
// and Close behave exactly as they do for the stdlib read path.
//
// Restricted to amd64/arm64, where syscall.Msghdr's layout (64-bit
// Iovlen, 4-byte Namelen padding) matches the struct literals below;
// every other platform takes the per-packet fallback in
// batch_portable.go.

// msgDontwait is MSG_DONTWAIT: the callbacks must never block inside
// the raw-access critical section.
const msgDontwait = 0x40

// sockaddrStorage is the size of struct sockaddr_storage: enough for
// any address family the socket can hand back.
const sockaddrStorage = 128

// UDP generalized segmentation offload. Batching system calls with
// sendmmsg amortizes only the syscall entry: on the loopback (and on
// most NICs) each datagram still traverses the full IP send path
// inline. Because every message of this protocol has a fixed size
// (requests 16 bytes, responses 40), a whole run of them to one peer
// can instead be handed to the kernel as a single UDP_SEGMENT
// super-datagram — one stack traversal that the kernel splits back
// into wire-identical individual datagrams at the device layer. That
// is where the batched path's throughput multiple over per-packet
// serving comes from.
const (
	solUDP     = 17  // SOL_UDP
	udpSegment = 103 // UDP_SEGMENT (Linux 4.18+)
	maxGSOSegs = 64  // UDP_MAX_SEGMENTS floor across supported kernels
)

// errOversizedSegment reports a send slot longer than the socket's GSO
// segment size — a programming error, since GSO sockets carry only
// fixed-size protocol messages.
var errOversizedSegment = errors.New("udptime: datagram exceeds GSO segment size")

// trySetGSO arms UDP_SEGMENT on the socket; false when the kernel (or
// address family) does not support it, in which case the caller keeps
// plain per-datagram sendmmsg.
func trySetGSO(rc syscall.RawConn, seg int) bool {
	var serr error
	cerr := rc.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), solUDP, udpSegment, seg)
	})
	return cerr == nil && serr == nil
}

// mmsghdr mirrors the kernel's struct mmsghdr: a msghdr plus the
// per-message byte count recvmmsg/sendmmsg fill in.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// mmsgConn is a batchIO over recvmmsg/sendmmsg. All vectors — buffers,
// iovecs, message headers, sockaddr storage — are laid out once at
// construction; Recv and Send only rewrite pointers and lengths.
type mmsgConn struct {
	conn      *net.UDPConn
	rc        syscall.RawConn
	bt        ioBatch
	connected bool
	segSize   int // GSO segment size; 0 = per-datagram sends

	rbufs  [][]byte // full-length receive backing arrays
	rnames [][]byte // per-slot sockaddr storage
	riovs  []syscall.Iovec
	rhdrs  []mmsghdr
	siovs  []syscall.Iovec
	shdrs  []mmsghdr

	// Results ferried out of the raw-access callbacks, which are built
	// once here so the hot path never allocates a closure.
	recvN   int
	recvErr syscall.Errno
	sendOff int
	sendCnt int
	sendErr syscall.Errno
	readFn  func(fd uintptr) bool
	writeFn func(fd uintptr) bool
}

// newBatchConn wraps conn for batch I/O. gsoSeg, when nonzero, is the
// fixed wire size of every datagram this connection will send; if the
// kernel supports UDP_SEGMENT the connection coalesces same-peer runs
// of sends into GSO super-datagrams of that segment size.
func newBatchConn(conn *net.UDPConn, size int, connected bool, gsoSeg int) (batchIO, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	c := &mmsgConn{conn: conn, rc: rc, connected: connected}
	if gsoSeg > 0 && trySetGSO(rc, gsoSeg) {
		c.segSize = gsoSeg
	}
	c.bt, c.rbufs = newIOBatch(size)
	c.rnames = make([][]byte, size)
	for i := range c.rnames {
		c.rnames[i] = make([]byte, sockaddrStorage)
	}
	c.riovs = make([]syscall.Iovec, size)
	c.rhdrs = make([]mmsghdr, size)
	c.siovs = make([]syscall.Iovec, size)
	c.shdrs = make([]mmsghdr, size)

	c.readFn = func(fd uintptr) bool {
		for {
			n, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&c.rhdrs[0])), uintptr(len(c.rhdrs)),
				msgDontwait, 0, 0)
			if errno == syscall.EINTR {
				continue
			}
			if errno == syscall.EAGAIN {
				return false // park in the netpoller until readable
			}
			c.recvN, c.recvErr = int(n), errno
			return true
		}
	}
	c.writeFn = func(fd uintptr) bool {
		for c.sendOff < c.sendCnt {
			n, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&c.shdrs[c.sendOff])), uintptr(c.sendCnt-c.sendOff),
				msgDontwait, 0, 0)
			if errno == syscall.EINTR {
				continue
			}
			if errno == syscall.EAGAIN {
				return false // wait for writability, resume at sendOff
			}
			if errno != 0 {
				c.sendErr = errno
				return true
			}
			c.sendOff += int(n)
		}
		return true
	}
	return c, nil
}

func (c *mmsgConn) Batch() *ioBatch { return &c.bt }
func (c *mmsgConn) LocalAddr() *net.UDPAddr {
	addr, _ := c.conn.LocalAddr().(*net.UDPAddr)
	return addr
}
func (c *mmsgConn) Close() error { return c.conn.Close() }

func (c *mmsgConn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// Recv fills the receive slots from one recvmmsg call (at least one
// datagram, up to the batch size — the kernel returns whatever is
// queued, so batching degrades gracefully to per-packet under light
// load).
func (c *mmsgConn) Recv() (int, error) {
	for i := range c.rhdrs {
		c.riovs[i] = syscall.Iovec{Base: &c.rbufs[i][0]}
		c.riovs[i].SetLen(maxDatagram)
		h := &c.rhdrs[i]
		h.hdr = syscall.Msghdr{Iov: &c.riovs[i], Iovlen: 1}
		if !c.connected {
			h.hdr.Name = &c.rnames[i][0]
			h.hdr.Namelen = sockaddrStorage
		}
		h.n = 0
	}
	if err := c.rc.Read(c.readFn); err != nil {
		return 0, err
	}
	if c.recvErr != 0 {
		return 0, os.NewSyscallError("recvmmsg", c.recvErr)
	}
	n := c.recvN
	for i := 0; i < n; i++ {
		c.bt.recv[i] = c.rbufs[i][:c.rhdrs[i].n]
	}
	return n, nil
}

// Send transmits the prepared reply slots with as few sendmmsg calls as
// the kernel allows. On an unconnected socket each reply is addressed
// to the sockaddr its request arrived from; a connected socket sends to
// its dialed peer. With GSO armed, consecutive same-peer slots coalesce
// into scatter-gather super-datagrams. Partial sends resume where they
// left off.
func (c *mmsgConn) Send(n int) error {
	var cnt int
	var err error
	if c.segSize > 0 {
		cnt, err = c.packGSO(n)
		if err != nil {
			return err
		}
	} else {
		cnt = c.packPerDatagram(n)
	}
	if cnt == 0 {
		return nil
	}
	c.sendOff, c.sendCnt, c.sendErr = 0, cnt, 0
	if err := c.rc.Write(c.writeFn); err != nil {
		return err
	}
	if c.sendErr != 0 {
		return os.NewSyscallError("sendmmsg", c.sendErr)
	}
	return nil
}

// packPerDatagram fills shdrs with one message per non-empty slot and
// returns the message count.
func (c *mmsgConn) packPerDatagram(n int) int {
	cnt := 0
	for i := 0; i < n; i++ {
		if len(c.bt.send[i]) == 0 {
			continue
		}
		c.siovs[cnt] = syscall.Iovec{Base: &c.bt.send[i][0]}
		c.siovs[cnt].SetLen(len(c.bt.send[i]))
		h := &c.shdrs[cnt]
		h.hdr = syscall.Msghdr{Iov: &c.siovs[cnt], Iovlen: 1}
		if !c.connected {
			h.hdr.Name = &c.rnames[i][0]
			h.hdr.Namelen = c.rhdrs[i].hdr.Namelen
		}
		h.n = 0
		cnt++
	}
	return cnt
}

// packGSO fills shdrs with one message per run of consecutive non-empty
// slots addressed to the same peer, each message a scatter-gather list
// of up to maxGSOSegs fixed-size segments the kernel splits back into
// individual wire datagrams. A slot shorter than the segment size may
// only close a run (GSO requires equal segments except the last); a
// longer one is a protocol violation and fails the send.
func (c *mmsgConn) packGSO(n int) (int, error) {
	cnt, iov := 0, 0
	for i := 0; i < n; {
		if len(c.bt.send[i]) == 0 {
			i++
			continue
		}
		first := i
		start := iov
		segs := 0
		for i < n {
			b := c.bt.send[i]
			if len(b) == 0 {
				i++
				continue
			}
			if len(b) > c.segSize {
				return 0, errOversizedSegment
			}
			if segs > 0 && !c.samePeer(first, i) {
				break
			}
			c.siovs[iov] = syscall.Iovec{Base: &b[0]}
			c.siovs[iov].SetLen(len(b))
			iov++
			segs++
			i++
			if len(b) < c.segSize || segs == maxGSOSegs {
				break
			}
		}
		h := &c.shdrs[cnt]
		h.hdr = syscall.Msghdr{Iov: &c.siovs[start], Iovlen: uint64(segs)}
		if !c.connected {
			h.hdr.Name = &c.rnames[first][0]
			h.hdr.Namelen = c.rhdrs[first].hdr.Namelen
		}
		h.n = 0
		cnt++
	}
	return cnt, nil
}

// samePeer reports whether receive slots a and b carried the same
// source address; always true on a connected socket (no names).
func (c *mmsgConn) samePeer(a, b int) bool {
	if c.connected {
		return true
	}
	la, lb := c.rhdrs[a].hdr.Namelen, c.rhdrs[b].hdr.Namelen
	return la == lb && bytes.Equal(c.rnames[a][:la], c.rnames[b][:lb])
}
