//go:build linux && arm64

package udptime

import "syscall"

const (
	sysRecvmmsg = syscall.SYS_RECVMMSG
	sysSendmmsg = syscall.SYS_SENDMMSG
)
