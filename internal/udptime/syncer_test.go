package udptime

import (
	"math"
	"testing"
	"time"
)

func TestSyncerValidation(t *testing.T) {
	dc, err := NewDisciplinedClock(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSyncer(nil, SyncerConfig{Servers: []string{"x"}}); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewSyncer(dc, SyncerConfig{}); err == nil {
		t.Error("no servers accepted")
	}
}

func TestSyncerDisciplinesClock(t *testing.T) {
	var addrs []string
	for i := 0; i < 3; i++ {
		srv := startServer(t, uint64(i), shiftedClock{
			offset: 2 * time.Second, err: 10 * time.Millisecond, synced: true,
		})
		addrs = append(addrs, srv.Addr().String())
	}
	dc, err := NewDisciplinedClock(100)
	if err != nil {
		t.Fatal(err)
	}
	reports := make(chan SyncReport, 16)
	syncer, err := NewSyncer(dc, SyncerConfig{
		Servers:  addrs,
		Interval: 50 * time.Millisecond,
		Timeout:  time.Second,
		OnSync:   func(r SyncReport) { reports <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer syncer.Stop()

	// Wait for at least two rounds.
	for i := 0; i < 2; i++ {
		select {
		case r := <-reports:
			if r.Err != nil {
				t.Fatalf("round %d failed: %v", i, r.Err)
			}
			if r.Measurements != 3 || r.Survivors != 3 {
				t.Errorf("round %d: %+v", i, r)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("syncer produced no report")
		}
	}

	now, e, synced := dc.Now()
	if !synced {
		t.Fatal("clock not synchronized")
	}
	offset := now.Sub(time.Now())
	if math.Abs((offset - 2*time.Second).Seconds()) > 0.2 {
		t.Errorf("offset = %v, want ~2s", offset)
	}
	if e > time.Second {
		t.Errorf("error bound = %v", e)
	}
	if syncer.Rounds() < 2 {
		t.Errorf("Rounds = %d", syncer.Rounds())
	}
	if syncer.LastReport().When.IsZero() {
		t.Error("LastReport empty")
	}
}

func TestSyncerStopHalts(t *testing.T) {
	srv := startServer(t, 1, shiftedClock{err: time.Millisecond, synced: true})
	dc, err := NewDisciplinedClock(100)
	if err != nil {
		t.Fatal(err)
	}
	syncer, err := NewSyncer(dc, SyncerConfig{
		Servers:  []string{srv.Addr().String()},
		Interval: 20 * time.Millisecond,
		Timeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let a round or two complete, then stop.
	deadline := time.Now().Add(2 * time.Second)
	for syncer.Rounds() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	syncer.Stop()
	after := syncer.Rounds()
	time.Sleep(100 * time.Millisecond)
	if got := syncer.Rounds(); got != after {
		t.Errorf("rounds continued after Stop: %d -> %d", after, got)
	}
}

func TestSyncerSelectionRejectsFalseticker(t *testing.T) {
	good1 := startServer(t, 1, shiftedClock{err: 10 * time.Millisecond, synced: true})
	good2 := startServer(t, 2, shiftedClock{err: 10 * time.Millisecond, synced: true})
	liar := startServer(t, 3, shiftedClock{offset: time.Hour, err: time.Millisecond, synced: true})

	dc, err := NewDisciplinedClock(100)
	if err != nil {
		t.Fatal(err)
	}
	reports := make(chan SyncReport, 16)
	syncer, err := NewSyncer(dc, SyncerConfig{
		Servers:   []string{good1.Addr().String(), good2.Addr().String(), liar.Addr().String()},
		Interval:  time.Minute, // first immediate round is enough
		Timeout:   time.Second,
		Selection: true,
		OnSync:    func(r SyncReport) { reports <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer syncer.Stop()

	select {
	case r := <-reports:
		if r.Err != nil {
			t.Fatalf("round failed: %v", r.Err)
		}
		if r.Falsetickers != 1 {
			t.Errorf("falsetickers = %d, want 1", r.Falsetickers)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no report")
	}
	now, _, _ := dc.Now()
	if d := now.Sub(time.Now()); math.Abs(d.Seconds()) > 0.5 {
		t.Errorf("clock steered by falseticker: %v", d)
	}
}

func TestSyncerReportsFailureWithoutTouchingClock(t *testing.T) {
	// Two irreconcilable servers: plain intersection must fail and leave
	// the clock unsynchronized.
	a := startServer(t, 1, shiftedClock{err: time.Millisecond, synced: true})
	b := startServer(t, 2, shiftedClock{offset: time.Hour, err: time.Millisecond, synced: true})
	dc, err := NewDisciplinedClock(100)
	if err != nil {
		t.Fatal(err)
	}
	reports := make(chan SyncReport, 16)
	syncer, err := NewSyncer(dc, SyncerConfig{
		Servers:  []string{a.Addr().String(), b.Addr().String()},
		Interval: time.Minute,
		Timeout:  time.Second,
		OnSync:   func(r SyncReport) { reports <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer syncer.Stop()

	select {
	case r := <-reports:
		if r.Err == nil {
			t.Fatal("inconsistent servers did not fail the round")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no report")
	}
	if _, _, synced := dc.Now(); synced {
		t.Error("clock synchronized from an inconsistent round")
	}
	if dc.Sets() != 0 {
		t.Error("clock touched despite failure")
	}
}

func TestSyncerBurst(t *testing.T) {
	srv := startServer(t, 1, shiftedClock{err: 5 * time.Millisecond, synced: true})
	dc, err := NewDisciplinedClock(100)
	if err != nil {
		t.Fatal(err)
	}
	reports := make(chan SyncReport, 4)
	syncer, err := NewSyncer(dc, SyncerConfig{
		Servers:  []string{srv.Addr().String()},
		Interval: time.Minute,
		Timeout:  time.Second,
		Burst:    4,
		OnSync:   func(r SyncReport) { reports <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer syncer.Stop()
	select {
	case r := <-reports:
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Measurements != 1 {
			t.Errorf("measurements = %d, want 1 (best of burst)", r.Measurements)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no report")
	}
	if got := srv.Requests(); got != 4 {
		t.Errorf("server answered %d requests, want burst of 4", got)
	}
}
