package udptime

import (
	"bytes"
	"encoding/binary"
	"math/rand/v2"
	"net"
	"testing"
	"time"

	"disttime/internal/wire"
)

// fixedSource is a deterministic clock: every read returns the same
// <C, E, synced> triple, which is what makes byte-identity across two
// server implementations assertable at all.
type fixedSource struct {
	c      time.Time
	e      time.Duration
	synced bool
}

func (f fixedSource) Now() (time.Time, time.Duration, bool) { return f.c, f.e, f.synced }

// diffDatagram is one corpus element: the raw bytes and, for well-formed
// requests, the reqID a reply will echo.
type diffDatagram struct {
	raw   []byte
	reqID uint64 // nonzero only for datagrams that must be answered
}

// diffCorpus builds a randomized datagram corpus cycling through ten
// kinds: valid version-1 requests plus nine malformed or non-request
// shapes (truncations, bad magic/version/type, nonzero reserved byte,
// flagged requests, version-2 advertise both valid and truncated, stray
// responses, and raw garbage). Only the valid requests may be answered.
func diffCorpus(t *testing.T, rng *rand.Rand, n int) []diffDatagram {
	t.Helper()
	corpus := make([]diffDatagram, 0, n)
	for i := 0; i < n; i++ {
		// Request IDs stay clear of zero so reqID==0 can mean "no reply".
		id := rng.Uint64() | 1
		valid := wire.AppendRequest(nil, wire.Request{ReqID: id})
		var d diffDatagram
		switch i % 10 {
		case 0: // well-formed request
			d = diffDatagram{raw: valid, reqID: id}
		case 1: // truncated request
			d.raw = valid[:rng.IntN(wire.RequestSize)]
		case 2: // bad magic
			d.raw = bytes.Clone(valid)
			d.raw[rng.IntN(4)] ^= 1 + byte(rng.IntN(255))
		case 3: // bad version
			d.raw = bytes.Clone(valid)
			for d.raw[4] == wire.Version {
				d.raw[4] = byte(rng.IntN(256))
			}
		case 4: // stray response sent as a query
			resp, err := wire.AppendResponse(nil, wire.Response{
				ReqID:    id,
				ServerID: rng.Uint64(),
				Clock:    time.Unix(0, int64(rng.Uint64N(1<<62))),
				MaxError: time.Duration(rng.Uint64N(1 << 30)),
			})
			if err != nil {
				t.Fatal(err)
			}
			d.raw = resp
		case 5: // nonzero reserved byte
			d.raw = bytes.Clone(valid)
			d.raw[7] = 1 + byte(rng.IntN(255))
		case 6: // request with flags set
			d.raw = bytes.Clone(valid)
			d.raw[6] = 1 + byte(rng.IntN(255))
		case 7: // valid version-2 advertise (both servers are pre-membership)
			adv, err := wire.AppendAdvertise(nil, id, []wire.MemberEntry{{
				Addr:   "10.0.0.1:3123",
				Gen:    1,
				Seq:    uint64(i),
				Status: 1 + uint8(rng.IntN(4)),
				C:      float64(rng.IntN(1 << 30)),
				E:      rng.Float64(),
				Delta:  rng.Float64() / 1e3,
			}})
			if err != nil {
				t.Fatal(err)
			}
			d.raw = adv
		case 8: // truncated advertise
			adv, err := wire.AppendAdvertise(nil, id, []wire.MemberEntry{{
				Addr: "10.0.0.2:3123", Gen: 2, Seq: uint64(i), Status: 2,
				C: 1e9, E: 0.25, Delta: 1e-4,
			}})
			if err != nil {
				t.Fatal(err)
			}
			d.raw = adv[:wire.RequestSize+1+rng.IntN(len(adv)-wire.RequestSize-1)]
		case 9: // raw garbage
			d.raw = make([]byte, 1+rng.IntN(64))
			for j := range d.raw {
				d.raw[j] = byte(rng.IntN(256))
			}
			if len(d.raw) >= 4 {
				d.raw[0] = 0 // never a plausible magic
			}
		}
		corpus = append(corpus, d)
	}
	return corpus
}

// sendCorpusCollect fires every corpus datagram at addr from one
// connected socket and collects the replies until want distinct request
// IDs have answered (or the deadline passes), returning raw reply bytes
// keyed by echoed reqID.
func sendCorpusCollect(t *testing.T, addr string, corpus []diffDatagram, want int) map[uint64][]byte {
	t.Helper()
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i, d := range corpus {
		if len(d.raw) == 0 {
			continue // zero-length write is a no-op datagram; skip
		}
		if _, err := conn.Write(d.raw); err != nil {
			t.Fatal(err)
		}
		// Pace the blast: the per-packet server drains one datagram per
		// loop, and an unpaced 300-datagram burst overflows its default
		// receive buffer (the kernel charges skb truesize, not payload).
		if i%24 == 23 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	got := make(map[uint64][]byte, want)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, maxDatagram)
	for len(got) < want {
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("after %d/%d replies: %v", len(got), want, err)
		}
		if n < wire.RequestSize {
			t.Fatalf("short reply: %d bytes", n)
		}
		id := binary.BigEndian.Uint64(buf[8:16])
		if prev, dup := got[id]; dup {
			t.Fatalf("duplicate reply for reqID %d (prev %x)", id, prev)
		}
		got[id] = bytes.Clone(buf[:n])
	}
	return got
}

// waitCounter polls get until it returns want or the deadline passes.
func waitCounter(t *testing.T, name string, get func() uint64, want uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := get(); got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: got %d, want %d", name, get(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDifferentialServing is the serving-path equivalence proof: the
// legacy per-packet server and the batched sharded server, run over the
// same deterministic clock, must answer an adversarial corpus with
// byte-identical responses and identical served/malformed accounting.
// The batched server runs with the tick cache disabled (negative Tick),
// which is its exact-parity mode.
func TestDifferentialServing(t *testing.T) {
	src := fixedSource{
		c:      time.Unix(0, 1_700_000_000_123_456_789),
		e:      250 * time.Microsecond,
		synced: true,
	}
	const serverID = 42

	legacy, err := NewServer("127.0.0.1:0", serverID, src)
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	batched, err := NewBatchServer("127.0.0.1:0", serverID, src,
		BatchConfig{Shards: 2, Batch: 8, Tick: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()

	rng := rand.New(rand.NewPCG(0xd1ff, 0x5e4e))
	const n = 300
	corpus := diffCorpus(t, rng, n)
	var wantReplies, wantMalformed uint64
	for _, d := range corpus {
		if d.reqID != 0 {
			wantReplies++
		} else if len(d.raw) > 0 {
			wantMalformed++
		}
	}

	fromLegacy := sendCorpusCollect(t, legacy.Addr().String(), corpus, int(wantReplies))
	fromBatched := sendCorpusCollect(t, batched.Addr().String(), corpus, int(wantReplies))

	for _, d := range corpus {
		if d.reqID == 0 {
			if _, ok := fromLegacy[d.reqID]; ok {
				t.Fatalf("legacy answered a malformed datagram")
			}
			continue
		}
		l, okL := fromLegacy[d.reqID]
		b, okB := fromBatched[d.reqID]
		if !okL || !okB {
			t.Fatalf("reqID %d: legacy answered %v, batched answered %v", d.reqID, okL, okB)
		}
		if !bytes.Equal(l, b) {
			t.Fatalf("reqID %d: responses differ\nlegacy:  %x\nbatched: %x", d.reqID, l, b)
		}
	}

	waitCounter(t, "legacy requests", legacy.Requests, wantReplies)
	waitCounter(t, "batched requests", batched.Requests, wantReplies)
	waitCounter(t, "legacy malformed", legacy.MalformedDatagrams, wantMalformed)
	waitCounter(t, "batched malformed", batched.MalformedDatagrams, wantMalformed)
}

// TestDifferentialTickWidening pins the cached mode's only permitted
// divergence: with the tick cache on, the batched server's reply must
// carry the legacy server's exact clock value and error plus exactly
// one tick's widening — nothing else about the reply may change.
func TestDifferentialTickWidening(t *testing.T) {
	src := fixedSource{
		c:      time.Unix(0, 1_700_000_000_987_654_321),
		e:      300 * time.Microsecond,
		synced: true,
	}
	const serverID, tick = 7, 50 * time.Millisecond

	legacy, err := NewServer("127.0.0.1:0", serverID, src)
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	batched, err := NewBatchServer("127.0.0.1:0", serverID, src,
		BatchConfig{Shards: 1, Tick: tick})
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()

	query := func(addr string, id uint64) wire.Response {
		raddr, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			t.Fatal(err)
		}
		conn, err := net.DialUDP("udp", nil, raddr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write(wire.AppendRequest(nil, wire.Request{ReqID: id})); err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, maxDatagram)
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := wire.ParseResponse(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	l := query(legacy.Addr().String(), 11)
	b := query(batched.Addr().String(), 11)
	// fixedSource reports no drift bound, so the widening is exactly the
	// tick itself.
	widen := tickWiden(tick, 0)
	if !b.Clock.Equal(l.Clock) {
		t.Fatalf("cached clock %v differs from legacy %v", b.Clock, l.Clock)
	}
	if want := l.MaxError + widen; b.MaxError != want {
		t.Fatalf("cached max error %v, want legacy %v + widen %v = %v",
			b.MaxError, l.MaxError, widen, want)
	}
	if b.ServerID != l.ServerID || b.Unsynchronized != l.Unsynchronized {
		t.Fatalf("identity fields diverged: %+v vs %+v", b, l)
	}
}
