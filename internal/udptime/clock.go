// Package udptime is the real-network realization of the paper's time
// service: a UDP server answering rule MM-1 readings over the wire
// protocol, a client that measures round trips and builds transit-adjusted
// offset intervals (rule IM-2's transform), and a disciplined software
// clock that the intersection algorithm keeps synchronized.
//
// The simulation packages prove the algorithms against the paper's
// theorems; this package carries the same core logic onto an actual
// network path so the library is usable as a time service, not only as a
// simulator.
package udptime

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// ClockSource yields clock readings with an error bound: the <C, E> pair
// of rule MM-1, plus whether the source considers itself synchronized.
// Implementations must be safe for concurrent use.
type ClockSource interface {
	Now() (c time.Time, maxErr time.Duration, synchronized bool)
}

// SystemClock reads the operating-system clock, reporting an error that
// starts at InitialError and deteriorates at DriftPPM microseconds per
// second since creation — the rule MM-1 bookkeeping applied to a clock the
// process cannot reset.
type SystemClock struct {
	start      time.Time
	initialErr time.Duration
	driftPPM   float64
}

var _ ClockSource = (*SystemClock)(nil)

// NewSystemClock returns a system clock source. initialErr is the error
// the OS clock is trusted to at creation (e.g. from NTP statistics);
// driftPPM is the claimed drift bound in parts per million.
func NewSystemClock(initialErr time.Duration, driftPPM float64) (*SystemClock, error) {
	if initialErr < 0 {
		return nil, fmt.Errorf("udptime: negative initial error %v", initialErr)
	}
	if driftPPM < 0 {
		return nil, fmt.Errorf("udptime: negative drift %v ppm", driftPPM)
	}
	return &SystemClock{start: time.Now(), initialErr: initialErr, driftPPM: driftPPM}, nil
}

// Now implements ClockSource.
func (c *SystemClock) Now() (time.Time, time.Duration, bool) {
	now := time.Now()
	elapsed := now.Sub(c.start)
	deterioration := time.Duration(float64(elapsed) * c.driftPPM / 1e6)
	return now, c.initialErr + deterioration, true
}

// DriftPPM returns the drift bound the OS clock is trusted to, in parts
// per million.
func (c *SystemClock) DriftPPM() float64 { return c.driftPPM }

// DisciplinedClock is a settable software clock: a value anchored to the
// process's monotonic clock, with rule MM-1 error bookkeeping (inherited
// error plus DriftPPM deterioration since the last set). Until the first
// Set it reports the system time, unsynchronized, with no error bound.
type DisciplinedClock struct {
	mu        sync.Mutex
	driftPPM  float64
	anchor    time.Time // monotonic anchor (a time.Now() result)
	value     time.Time // clock value at the anchor
	epsilon   time.Duration
	synced    bool
	setsCount int
}

var _ ClockSource = (*DisciplinedClock)(nil)

// NewDisciplinedClock returns an unsynchronized disciplined clock whose
// underlying oscillator (the OS monotonic clock) is trusted to driftPPM.
func NewDisciplinedClock(driftPPM float64) (*DisciplinedClock, error) {
	if driftPPM < 0 {
		return nil, fmt.Errorf("udptime: negative drift %v ppm", driftPPM)
	}
	now := time.Now()
	return &DisciplinedClock{driftPPM: driftPPM, anchor: now, value: now}, nil
}

// Now implements ClockSource. The error deteriorates at DriftPPM since the
// last Set.
func (c *DisciplinedClock) Now() (time.Time, time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	elapsed := time.Since(c.anchor)
	deterioration := time.Duration(float64(elapsed) * c.driftPPM / 1e6)
	return c.value.Add(elapsed), c.epsilon + deterioration, c.synced
}

// Set disciplines the clock: from now on it reads value (advancing with
// the monotonic clock) with inherited error maxErr.
func (c *DisciplinedClock) Set(value time.Time, maxErr time.Duration) error {
	if maxErr < 0 {
		return fmt.Errorf("udptime: negative max error %v", maxErr)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.anchor = time.Now()
	c.value = value
	c.epsilon = maxErr
	c.synced = true
	c.setsCount++
	return nil
}

// Adjust shifts the clock by offset and replaces the inherited error —
// the natural form when synchronizing from offset intervals.
func (c *DisciplinedClock) Adjust(offset time.Duration, maxErr time.Duration) error {
	if maxErr < 0 {
		return fmt.Errorf("udptime: negative max error %v", maxErr)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	current := c.value.Add(now.Sub(c.anchor))
	c.anchor = now
	c.value = current.Add(offset)
	c.epsilon = maxErr
	c.synced = true
	c.setsCount++
	return nil
}

// WaitUntilAfter blocks until the clock's earliest possible reading
// C − E is strictly after t: the commit-wait primitive. While the clock
// is contained (true time inside [C−E, C+E]), returning implies true
// time has passed t — the fact the external-consistency argument of
// DESIGN.md §18 rests on.
//
// The wait computes how far C − E must still travel and sleeps that
// distance charged by the drift bound, (1 + driftPPM·1e-6) — the same
// staleness charge TickCache applies per tick — then re-checks, because
// a concurrent Set or Adjust may have moved C backward or widened E.
// An unsynchronized clock cannot bound C − E, so waiting on one fails
// immediately rather than committing on an advisory reading.
func (c *DisciplinedClock) WaitUntilAfter(t time.Time) error {
	for {
		now, maxErr, synced := c.Now()
		if !synced {
			return fmt.Errorf("udptime: commit-wait on unsynchronized clock")
		}
		earliest := now.Add(-maxErr)
		if earliest.After(t) {
			return nil
		}
		need := t.Sub(earliest) + time.Nanosecond
		sleep := time.Duration(math.Ceil(float64(need) * (1 + c.DriftPPM()/1e6)))
		time.Sleep(sleep)
	}
}

// DriftPPM returns the drift bound the clock's oscillator is trusted
// to, in parts per million — the paper's delta for this clock, used by
// the syncer to default the IM-2 transform's transit charge.
func (c *DisciplinedClock) DriftPPM() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.driftPPM
}

// Sets returns how many times the clock has been disciplined.
func (c *DisciplinedClock) Sets() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.setsCount
}
