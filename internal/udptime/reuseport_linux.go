//go:build linux

package udptime

// soReusePort is SO_REUSEPORT, which the syscall package predates on
// Linux (the option arrived in 3.9, after the package's API freeze).
const soReusePort = 0xf
