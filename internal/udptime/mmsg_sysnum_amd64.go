//go:build linux && amd64

package udptime

import "syscall"

// The stdlib syscall table on linux/amd64 predates sendmmsg, so its
// number is defined locally; Linux syscall numbers are ABI-frozen.
const (
	sysRecvmmsg = syscall.SYS_RECVMMSG
	sysSendmmsg = 307
)
