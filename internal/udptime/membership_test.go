package udptime

import (
	"net"
	"testing"
	"time"

	"disttime/internal/member"
	"disttime/internal/obs"
)

// fastMembership is the test-speed gossip/detector configuration:
// deadlines in the hundreds of milliseconds so the eviction and
// re-admission waits stay bounded.
func fastMembership() MembershipConfig {
	return MembershipConfig{
		Gossip:     50 * time.Millisecond,
		Misses:     3,
		DelayBound: 150 * time.Millisecond,
	}
}

// reserveAddrs binds n loopback UDP sockets to learn n free ports, then
// releases them so the peers under test can claim the addresses. The
// tiny reuse race is acceptable in a test environment.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	conns := make([]*net.UDPConn, n)
	for i := 0; i < n; i++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = conn
		addrs[i] = conn.LocalAddr().String()
	}
	for _, conn := range conns {
		conn.Close()
	}
	return addrs
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// status returns the roster status p records for addr (zero when
// unknown).
func status(p *Peer, addr string) member.Status {
	for _, e := range p.Members() {
		if e.ID == addr {
			return e.Status
		}
	}
	return 0
}

// aliveView counts the Alive members in p's roster.
func aliveView(p *Peer) int {
	n := 0
	for _, e := range p.Members() {
		if e.Status == member.Alive {
			n++
		}
	}
	return n
}

// TestClusterConvergeEvictReadmit is the acceptance integration test
// over real UDP sockets: five peers started with only seed addresses
// converge to the full roster through gossip, evict a killed peer
// within the detector bound, and re-admit it after a restart as a
// fresh incarnation.
func TestClusterConvergeEvictReadmit(t *testing.T) {
	const n = 5
	addrs := reserveAddrs(t, n)
	reg := obs.NewRegistry()
	peers := make([]*Peer, n)
	for i := 0; i < n; i++ {
		// A star of seed knowledge: everyone seeds to peer 0, peer 0 to
		// peer 1. Gossip must spread the rest.
		seed := addrs[0]
		if i == 0 {
			seed = addrs[1]
		}
		cfg := PeerConfig{
			Addr:       addrs[i],
			ID:         uint64(i + 1),
			DriftPPM:   100,
			Seeds:      []string{seed},
			Membership: fastMembership(),
			Interval:   100 * time.Millisecond,
			Timeout:    200 * time.Millisecond,
		}
		if i == 0 {
			cfg.Metrics = reg
		}
		p, err := NewPeer(cfg)
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		peers[i] = p
		defer func() { p.Close() }()
	}

	// Convergence: every peer's roster reaches n Alive members (itself
	// included) starting from a single seed address each.
	waitFor(t, 10*time.Second, "full roster convergence", func() bool {
		for _, p := range peers {
			if aliveView(p) < n {
				return false
			}
		}
		return true
	})

	// The roster-driven syncer should complete rounds against learned
	// members, not just the seed.
	waitFor(t, 5*time.Second, "roster-driven sync rounds", func() bool {
		for _, p := range peers {
			if p.Rounds() == 0 {
				return false
			}
		}
		return true
	})

	// Membership metrics follow the roster.
	snap := reg.Snapshot()
	foundAlive := false
	for _, g := range snap.Gauges {
		if g.Name == "udptime_member_alive_servers" {
			foundAlive = true
			if g.Value < n {
				t.Errorf("udptime_member_alive_servers = %v, want >= %d", g.Value, n)
			}
		}
	}
	if !foundAlive {
		t.Error("udptime_member_alive_servers gauge not registered")
	}

	// Kill peer 2 abruptly: stop its loops and socket without the
	// voluntary-departure farewell, so the survivors must detect the
	// silence. Eviction must land within the detector bound (plus
	// scheduling slack).
	victim := peers[2]
	bound := victim.EvictAfter()
	if bound <= 0 {
		t.Fatal("EvictAfter returned no bound for a roster-backed peer")
	}
	victim.syncer.Stop()
	victim.membership.halt()
	victim.server.Close()
	peers[2] = nil

	waitFor(t, 3*bound+3*time.Second, "eviction of the killed peer", func() bool {
		for i, p := range peers {
			if i == 2 {
				continue
			}
			if status(p, addrs[2]) != member.Evicted {
				return false
			}
		}
		return true
	})

	// No survivor may have evicted a live peer. A survivor's local
	// detector evicts at most the killed peer; survivors that learned
	// the verdict through gossip before their own deadline fired count
	// zero — so each counter is 0 or 1 and at least one fired.
	var totalEvictions uint64
	for i, p := range peers {
		if i == 2 {
			continue
		}
		ev := p.Evictions()
		totalEvictions += ev
		if ev > 1 {
			t.Errorf("peer %d evicted %d members, want at most 1 (the killed peer)", i, ev)
		}
		for j, addr := range addrs {
			if j == 2 {
				continue
			}
			if st := status(p, addr); st != member.Alive {
				t.Errorf("peer %d sees live peer %d as %v", i, j, st)
			}
		}
	}
	if totalEvictions == 0 {
		t.Error("no survivor's local detector evicted the killed peer")
	}

	// Restart the victim at the same address: its wall-clock incarnation
	// number supersedes the eviction, and every survivor re-admits it.
	reborn, err := NewPeer(PeerConfig{
		Addr:       addrs[2],
		ID:         3,
		DriftPPM:   100,
		Seeds:      []string{addrs[0]},
		Membership: fastMembership(),
		Interval:   100 * time.Millisecond,
		Timeout:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer reborn.Close()
	peers[2] = reborn

	waitFor(t, 10*time.Second, "re-admission of the restarted peer", func() bool {
		for _, p := range peers {
			if aliveView(p) < n {
				return false
			}
		}
		return true
	})
}

// TestClusterVoluntaryLeave checks the graceful path: Close announces a
// departure, so the survivors record Left — no detector deadline, no
// eviction.
func TestClusterVoluntaryLeave(t *testing.T) {
	addrs := reserveAddrs(t, 3)
	peers := make([]*Peer, 3)
	for i := range peers {
		seed := addrs[0]
		if i == 0 {
			seed = addrs[1]
		}
		p, err := NewPeer(PeerConfig{
			Addr:       addrs[i],
			ID:         uint64(i + 1),
			DriftPPM:   100,
			Seeds:      []string{seed},
			Membership: fastMembership(),
			Interval:   100 * time.Millisecond,
			Timeout:    200 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		peers[i] = p
		defer func() { p.Close() }()
	}
	waitFor(t, 10*time.Second, "roster convergence", func() bool {
		for _, p := range peers {
			if aliveView(p) < 3 {
				return false
			}
		}
		return true
	})
	peers[2].Close()
	waitFor(t, 5*time.Second, "departure to be recorded as Left", func() bool {
		return status(peers[0], addrs[2]) == member.Left &&
			status(peers[1], addrs[2]) == member.Left
	})
	if ev := peers[0].Evictions() + peers[1].Evictions(); ev != 0 {
		t.Errorf("voluntary departure caused %d evictions", ev)
	}
}

// TestPeerConfigValidation is the regression matrix for the relaxed
// validation: empty Peers is now legal when Seeds are given, while the
// fully-empty configuration still fails with the original error.
func TestPeerConfigValidation(t *testing.T) {
	// The original "Required" path: neither Peers nor Seeds.
	_, err := NewPeer(PeerConfig{Addr: "127.0.0.1:0", DriftPPM: 100})
	if err == nil {
		t.Fatal("NewPeer accepted a config with neither Peers nor Seeds")
	}
	if got, want := err.Error(), "udptime: peer needs at least one peer address"; got != want {
		t.Fatalf("error = %q, want the original %q", got, want)
	}

	// Seeds without Peers: legal; the roster supplies poll targets. The
	// seed does not have to be reachable at construction time.
	p, err := NewPeer(PeerConfig{
		Addr:       "127.0.0.1:0",
		DriftPPM:   100,
		Seeds:      []string{"127.0.0.1:9"},
		Membership: fastMembership(),
		Interval:   time.Hour,
	})
	if err != nil {
		t.Fatalf("NewPeer rejected a seeds-only config: %v", err)
	}
	if p.Members() == nil {
		t.Error("roster-backed peer reports no members")
	}
	p.Close()

	// Peers without Seeds: the pre-membership configuration still works
	// and stays membership-free.
	p, err = NewPeer(PeerConfig{
		Addr:     "127.0.0.1:0",
		DriftPPM: 100,
		Peers:    []string{"127.0.0.1:9"},
		Interval: time.Hour,
	})
	if err != nil {
		t.Fatalf("NewPeer rejected a static config: %v", err)
	}
	if p.Members() != nil || p.EvictAfter() != 0 {
		t.Error("static peer unexpectedly grew a roster")
	}
	p.Close()
}

// TestSyncerDynamicTargets checks the Targets hook: a syncer with no
// static servers polls whatever the hook returns each round.
func TestSyncerDynamicTargets(t *testing.T) {
	src, err := NewSystemClock(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", 7, src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if _, err := NewSyncer(mustClock(t), SyncerConfig{}); err == nil {
		t.Fatal("NewSyncer accepted neither Servers nor Targets")
	}

	dc := mustClock(t)
	s, err := NewSyncer(dc, SyncerConfig{
		Targets:  func() []string { return []string{srv.Addr().String()} },
		Interval: 50 * time.Millisecond,
		Timeout:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	waitFor(t, 5*time.Second, "a successful dynamic-target round", func() bool {
		r := s.LastReport()
		return s.Rounds() > 0 && r.Err == nil && r.Measurements == 1
	})
	if _, _, synced := dc.Now(); !synced {
		t.Error("clock not disciplined through dynamic targets")
	}
}

func mustClock(t *testing.T) *DisciplinedClock {
	t.Helper()
	dc, err := NewDisciplinedClock(100)
	if err != nil {
		t.Fatal(err)
	}
	return dc
}
