package udptime

import (
	"net"
	"time"
)

// maxDatagram is the largest datagram any path of the service handles;
// requests and responses are tiny, advertise messages bounded, so 2 KiB
// leaves generous headroom while keeping batch buffers cache-friendly.
const maxDatagram = 2048

// Batch I/O size limits. A batch is one recvmmsg/sendmmsg vector on the
// Linux fast path; the portable fallback degrades to per-packet I/O but
// keeps the same slot discipline so the serving code is identical.
const (
	defaultBatch = 32
	maxBatch     = 512
)

// ioBatch is one reusable set of message slots shared between a batch
// connection and its handler. After Recv fills recv[0:n], the handler
// prepares send[i] for each slot it wants answered (len 0 = no reply)
// and calls Send(n). All slices alias buffers retained by the
// connection for its lifetime: the steady-state serving path allocates
// nothing per batch.
type ioBatch struct {
	// recv[i] is the i-th received datagram, valid until the next Recv.
	recv [][]byte
	// send[i] is the i-th reply buffer: capacity maxDatagram, re-sliced
	// by the handler. Empty means "no reply for this slot".
	send [][]byte
}

// batchIO is the batched datagram transport behind the serving and load
// paths. Implementations are single-goroutine on the Recv/Send side
// (each shard owns its connection) but Close may race with both.
//
// Two modes exist: an unconnected (server) socket replies to the peer
// each slot's datagram arrived from, and a connected (client) socket
// sends to its dialed peer. On a connected socket Send may be called
// without a prior Recv (the load generator's opening window); on an
// unconnected socket every Send slot echoes the matching Recv slot's
// source address.
type batchIO interface {
	// Batch returns the connection's reusable slot set.
	Batch() *ioBatch
	// Recv blocks until at least one datagram arrives and fills
	// Batch().recv[0:n]. It honors SetReadDeadline.
	Recv() (n int, err error)
	// Send transmits Batch().send[i] for i < n, skipping empty slots.
	Send(n int) error
	LocalAddr() *net.UDPAddr
	SetReadDeadline(t time.Time) error
	Close() error
}

// newIOBatch allocates the slot set: full-length receive backing arrays
// and zero-length, full-capacity send buffers.
func newIOBatch(size int) (bt ioBatch, rbufs [][]byte) {
	rbufs = make([][]byte, size)
	bt.recv = make([][]byte, size)
	bt.send = make([][]byte, size)
	for i := range rbufs {
		rbufs[i] = make([]byte, maxDatagram)
		bt.send[i] = make([]byte, maxDatagram)[:0]
	}
	return bt, rbufs
}

// clampBatch normalizes a configured batch size.
func clampBatch(n int) int {
	switch {
	case n <= 0:
		return defaultBatch
	case n > maxBatch:
		return maxBatch
	default:
		return n
	}
}

// listenUDP binds a UDP listener on addr. With reuse set the socket is
// opened with SO_REUSEPORT before bind so several shard listeners can
// share one port, letting the kernel spread datagrams across them; on
// platforms without SO_REUSEPORT that mode returns an error and the
// caller must run a single shard.
func listenUDP(addr string, reuse bool) (*net.UDPConn, error) {
	if !reuse {
		udpAddr, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, err
		}
		return net.ListenUDP("udp", udpAddr)
	}
	return listenReusePort(addr)
}
