//go:build darwin || freebsd || netbsd || openbsd || dragonfly

package udptime

// soReusePort is SO_REUSEPORT on the BSD-derived platforms.
const soReusePort = 0x200
