//go:build !(linux && (amd64 || arm64))

package udptime

import (
	"net"
	"net/netip"
	"time"
)

// The portable batch fallback: plain per-packet reads and writes behind
// the same slot discipline as the Linux fast path, so the serving and
// load-generation code is identical on every platform. Recv returns one
// datagram per call (the stdlib offers no way to drain a socket without
// extra syscalls); Send walks the prepared slots one write at a time.
// netip.AddrPort keeps the per-packet path allocation-free — the value
// type carries the peer address without the *net.UDPAddr heap churn of
// ReadFromUDP.

type packetBatchConn struct {
	conn      *net.UDPConn
	bt        ioBatch
	rbufs     [][]byte
	peers     []netip.AddrPort
	connected bool
}

// newBatchConn wraps conn for slot-based I/O; the GSO segment hint is
// meaningless without the Linux fast path and is ignored.
func newBatchConn(conn *net.UDPConn, size int, connected bool, _ int) (batchIO, error) {
	c := &packetBatchConn{conn: conn, connected: connected}
	c.bt, c.rbufs = newIOBatch(size)
	c.peers = make([]netip.AddrPort, size)
	return c, nil
}

func (c *packetBatchConn) Batch() *ioBatch { return &c.bt }

func (c *packetBatchConn) LocalAddr() *net.UDPAddr {
	addr, _ := c.conn.LocalAddr().(*net.UDPAddr)
	return addr
}

func (c *packetBatchConn) Close() error { return c.conn.Close() }

func (c *packetBatchConn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

func (c *packetBatchConn) Recv() (int, error) {
	if c.connected {
		n, err := c.conn.Read(c.rbufs[0])
		if err != nil {
			return 0, err
		}
		c.bt.recv[0] = c.rbufs[0][:n]
		return 1, nil
	}
	n, peer, err := c.conn.ReadFromUDPAddrPort(c.rbufs[0])
	if err != nil {
		return 0, err
	}
	c.peers[0] = peer
	c.bt.recv[0] = c.rbufs[0][:n]
	return 1, nil
}

func (c *packetBatchConn) Send(n int) error {
	for i := 0; i < n; i++ {
		if len(c.bt.send[i]) == 0 {
			continue
		}
		var err error
		if c.connected {
			_, err = c.conn.Write(c.bt.send[i])
		} else {
			_, err = c.conn.WriteToUDPAddrPort(c.bt.send[i], c.peers[i])
		}
		if err != nil {
			return err
		}
	}
	return nil
}
