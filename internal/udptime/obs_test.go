package udptime

import (
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"disttime/internal/obs"
)

// sec converts a float second count to a Duration.
func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// TestOffsetIntervalContainsTrueOffset is the rule IM-2 transform
// property test: for every (C, E, xi, delta) case, the extreme true
// offsets the transform must account for lie inside the returned
// interval. The server's reading C was taken at some instant during the
// round trip; by the receive instant the server's timeline has advanced
// by up to the full round trip as measured by a local clock that itself
// drifts at up to delta — so the true offset can be as large as
// (C - local) + E + (1+delta)*xi. The old code dropped the delta term,
// so for large xi*delta its interval excluded that extreme.
func TestOffsetIntervalContainsTrueOffset(t *testing.T) {
	const tol = 1e-9
	cases := []struct {
		name                string
		c, e, xi, delta     float64
		oldCodeExcludedHigh bool // delta*xi above float tolerance
	}{
		{"zero-delta", 0.5, 0.01, 0.002, 0, false},
		{"lan-rtt", 0.5, 0.01, 0.002, 100e-6, false},
		{"satellite-rtt", -3.25, 0.05, 1.5, 100e-6, true},
		{"large-sim-rtt", 12.0, 0.001, 10.0, 1e-4, true},
		{"huge-drift", 0.0, 0.02, 4.0, 0.01, true},
		{"negative-offset", -100.0, 0.5, 8.0, 5e-4, true},
	}
	t0 := time.Unix(1_700_000_000, 0)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := Measurement{
				C:         t0.Add(sec(tc.c)),
				E:         sec(tc.e),
				RTT:       sec(tc.xi),
				LocalRecv: t0,
				Delta:     tc.delta,
			}
			iv := m.OffsetInterval()
			// Extreme low: server read at the receive edge, error fully
			// negative.
			low := tc.c - tc.e
			// Extreme high: server read at the send edge, error fully
			// positive, local clock slow by delta during the exchange.
			high := tc.c + tc.e + (1+tc.delta)*tc.xi
			for _, off := range []float64{low, tc.c, high} {
				if !iv.Grow(tol).Contains(off) {
					t.Errorf("interval [%.9g, %.9g] excludes true offset %.9g", iv.Lo, iv.Hi, off)
				}
			}
			// Document the regression the fix closes: the old transform's
			// upper edge (no delta charge) excluded the high extreme.
			oldHi := tc.c + tc.e + tc.xi
			if tc.oldCodeExcludedHigh && high <= oldHi+tol {
				t.Errorf("case should separate old and new transforms: high %.9g vs old hi %.9g", high, oldHi)
			}
			if !tc.oldCodeExcludedHigh && high > oldHi+1e-6 {
				t.Errorf("case unexpectedly separates transforms: high %.9g vs old hi %.9g", high, oldHi)
			}
		})
	}
}

// TestClientStampsDelta checks that a queried measurement carries the
// client's configured drift bound, end to end over loopback.
func TestClientStampsDelta(t *testing.T) {
	srv := startServer(t, 7, shiftedClock{err: time.Millisecond, synced: true})
	client := NewClient(2*time.Second, nil, WithSyncOptions(SyncOptions{Delta: 2.5e-4}))
	m, err := client.Query(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if m.Delta != 2.5e-4 {
		t.Errorf("measurement delta = %v, want 2.5e-4", m.Delta)
	}
	iv := m.OffsetInterval()
	plain := Measurement{C: m.C, E: m.E, RTT: m.RTT, LocalRecv: m.LocalRecv}
	if iv.Hi <= plain.OffsetInterval().Hi {
		t.Errorf("delta charge did not widen the upper edge: %v vs %v", iv.Hi, plain.OffsetInterval().Hi)
	}
}

// TestSplitmix64KnownVectors pins the fallback seeder to the reference
// splitmix64 sequence for seed 0 (the published test vectors), so the
// derivation cannot silently regress to a weaker mix.
func TestSplitmix64KnownVectors(t *testing.T) {
	state := uint64(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	for i, w := range want {
		if got := splitmix64(&state); got != w {
			t.Fatalf("splitmix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

// TestFallbackPCGSeedWordsIndependent checks the entropy-failure path:
// the two PCG seed words must not be related by the old fixed-xor
// pattern, and equal seeds must reproduce the stream (so the fallback is
// still a deterministic function of the clock reading it consumes).
func TestFallbackPCGSeedWordsIndependent(t *testing.T) {
	seed := uint64(0x123456789abcdef)
	a := rand.New(fallbackPCG(seed))
	b := rand.New(fallbackPCG(seed))
	for i := 0; i < 8; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal seeds produced different streams")
		}
	}
	// The derived words differ from the old (seed, seed^const) scheme:
	// a generator seeded the old way diverges immediately.
	old := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	fresh := rand.New(fallbackPCG(seed))
	same := 0
	for i := 0; i < 8; i++ {
		if old.Uint64() == fresh.Uint64() {
			same++
		}
	}
	if same == 8 {
		t.Fatal("fallback still seeds with the fixed-xor scheme")
	}
	// Nearby seeds (consecutive UnixNano readings) yield unrelated
	// streams.
	c, d := rand.New(fallbackPCG(seed)), rand.New(fallbackPCG(seed+1))
	if c.Uint64() == d.Uint64() {
		t.Error("adjacent seeds produced identical first outputs")
	}
}

// TestNewReqIDRNGEntropyPath covers the normal constructor path: two
// independently seeded generators must disagree (crypto entropy), and
// IDs within one generator must be distinct.
func TestNewReqIDRNGEntropyPath(t *testing.T) {
	a, b := newReqIDRNG(), newReqIDRNG()
	if a.Uint64() == b.Uint64() {
		t.Error("two entropy-seeded generators produced identical first IDs")
	}
	seen := make(map[uint64]bool)
	for i := 0; i < 64; i++ {
		id := a.Uint64()
		if seen[id] {
			t.Fatalf("duplicate request ID %#x", id)
		}
		seen[id] = true
	}
}

// TestConcurrentQueriesRaceClean hammers one client from many
// goroutines while the configuration is mutated concurrently — the race
// the unsynchronized Timeout field made possible. Run under -race (the
// Makefile's race target includes this package).
func TestConcurrentQueriesRaceClean(t *testing.T) {
	srv := startServer(t, 3, shiftedClock{err: time.Millisecond, synced: true})
	addr := srv.Addr().String()
	reg := obs.NewRegistry()
	client := NewClient(2*time.Second, nil, WithClientObservability(reg))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := client.Query(addr); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	// Concurrent reconfiguration: the old code read Timeout/LocalClock
	// without the mutex.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			client.SetTimeout(time.Duration(1+i%3) * time.Second)
			client.SetSyncOptions(SyncOptions{Delta: float64(i) * 1e-6})
			client.SetLocalClock(nil)
			client.Observe(reg)
		}
	}()
	wg.Wait()
	if got := reg.Counter("udptime_client_queries_total").Value(); got != 40 {
		t.Errorf("queries counter = %d, want 40", got)
	}
	if got := reg.LogHistogram("udptime_client_rtt_seconds").Count(); got == 0 {
		t.Error("RTT histogram recorded nothing")
	}
}

// TestHealthListener exercises the server's HTTP side: /healthz,
// Prometheus /metrics fed by the shared registry, and the pprof index.
func TestHealthListener(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := NewServer("127.0.0.1:0", 11, shiftedClock{err: time.Millisecond, synced: true},
		WithServerObservability(reg), WithHealthListener("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.HealthAddr() == nil {
		t.Fatal("health listener not bound")
	}
	base := "http://" + srv.HealthAddr().String()

	client := NewClient(2*time.Second, nil, WithClientObservability(reg))
	if _, err := client.Query(srv.Addr().String()); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if !strings.Contains(body, fmt.Sprintf(`"server_id":%d`, 11)) {
		t.Errorf("/healthz missing server id: %q", body)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Errorf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"udptime_server_requests_total 1",
		"udptime_client_queries_total 1",
		"# TYPE udptime_client_rtt_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", code)
	}
}

// TestHealthListenerWithoutRegistry checks that WithHealthListener alone
// still serves the server's own counters from a private registry.
func TestHealthListenerWithoutRegistry(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 5, shiftedClock{synced: true},
		WithHealthListener("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.HealthAddr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "udptime_server_requests_total") {
		t.Errorf("/metrics missing server counters:\n%s", body)
	}
}

// TestSyncerMetrics checks the syncer's observability wiring: rounds and
// the applied error-bound histogram appear in the registry, and the
// measurement deltas default from the disciplined clock's drift bound.
func TestSyncerMetrics(t *testing.T) {
	srv := startServer(t, 1, shiftedClock{err: 2 * time.Millisecond, synced: true})
	dc, err := NewDisciplinedClock(250) // 250 ppm
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	reports := make(chan SyncReport, 1)
	s, err := NewSyncer(dc, SyncerConfig{
		Servers:  []string{srv.Addr().String()},
		Interval: time.Hour, // only the immediate first round
		Timeout:  2 * time.Second,
		Metrics:  reg,
		OnSync:   func(r SyncReport) { reports <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	select {
	case r := <-reports:
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first round did not complete")
	}
	if got := reg.Counter("udptime_sync_rounds_total").Value(); got != 1 {
		t.Errorf("rounds counter = %d, want 1", got)
	}
	if got := reg.LogHistogram("udptime_sync_error_bound_seconds").Count(); got != 1 {
		t.Errorf("error-bound histogram count = %d, want 1", got)
	}
	if got := reg.Counter("udptime_client_queries_total").Value(); got == 0 {
		t.Error("syncer's client not observed")
	}
	// The syncer defaulted the IM-2 delta from the clock's drift bound.
	want := 250.0 / 1e6
	_, _, opts, _, _ := s.client.config()
	if opts.Delta != want {
		t.Errorf("client delta = %v, want %v (clock DriftPPM/1e6)", opts.Delta, want)
	}
}
