package udptime

import (
	"testing"
	"time"

	"disttime/internal/obs"
)

// TestRunLoadLoopback drives the load generator against a live batched
// server on the loopback and checks the contract the udp-smoke target
// relies on: zero errors, every reply accounted, and monotone
// non-decreasing histogram/counter state across successive runs into
// the same registry.
func TestRunLoadLoopback(t *testing.T) {
	src, err := NewSystemClock(time.Millisecond, 50)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewBatchServer("127.0.0.1:0", 5, src, BatchConfig{Shards: 2, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := obs.NewRegistry()
	hist := reg.LogHistogram("timeload_latency_seconds")
	replies := reg.Counter("timeload_replies_total")

	var prevCount, prevReplies uint64
	for round := 0; round < 3; round++ {
		res, err := RunLoad(LoadConfig{
			Addr:     srv.Addr().String(),
			Conns:    2,
			Window:   16,
			Batch:    16,
			Duration: 80 * time.Millisecond,
			Registry: reg,
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.Errors != 0 {
			t.Fatalf("round %d: %d errors", round, res.Errors)
		}
		if res.Received == 0 {
			t.Fatalf("round %d: no replies", round)
		}
		if res.Received > res.Sent {
			t.Fatalf("round %d: received %d > sent %d", round, res.Received, res.Sent)
		}
		if res.QPS <= 0 {
			t.Fatalf("round %d: non-positive QPS %v", round, res.QPS)
		}
		// Percentiles come from a histogram of nonnegative samples and
		// must be ordered.
		if res.P50 < 0 || res.P50 > res.P90 || res.P90 > res.P99 || res.P99 > res.P999 {
			t.Fatalf("round %d: percentiles out of order: %v %v %v %v",
				round, res.P50, res.P90, res.P99, res.P999)
		}

		// The registry accumulates across runs: counts never decrease and
		// grow by exactly this run's replies.
		count, total := hist.Count()+hist.ZeroCount(), replies.Value()
		if count < prevCount || total < prevReplies {
			t.Fatalf("round %d: histogram/counter went backwards: %d < %d or %d < %d",
				round, count, prevCount, total, prevReplies)
		}
		if got := total - prevReplies; got != res.Received {
			t.Fatalf("round %d: reply counter advanced %d, result says %d", round, got, res.Received)
		}
		if got := count - prevCount; got != res.Received {
			t.Fatalf("round %d: histogram observed %d samples, result says %d replies", round, got, res.Received)
		}
		prevCount, prevReplies = count, total
	}
}

// TestRunLoadFixedWork checks MaxRequests mode: the run issues exactly
// the requested number (the benchmark mode's invariant) and completes
// cleanly well before the safety duration.
func TestRunLoadFixedWork(t *testing.T) {
	src, err := NewSystemClock(time.Millisecond, 50)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewBatchServer("127.0.0.1:0", 6, src, BatchConfig{Shards: 1, Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const want = 5000
	res, err := RunLoad(LoadConfig{
		Addr:        srv.Addr().String(),
		Conns:       2,
		Window:      32,
		MaxRequests: want,
		Timeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != want {
		t.Fatalf("sent %d requests, want exactly %d", res.Sent, want)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Received != want && res.Received+res.Timeouts < want {
		t.Fatalf("received %d + timeouts %d < sent %d", res.Received, res.Timeouts, want)
	}
}

// TestRunLoadRejectsEmptyAddr pins the config validation path.
func TestRunLoadRejectsEmptyAddr(t *testing.T) {
	if _, err := RunLoad(LoadConfig{}); err == nil {
		t.Fatal("empty address must be rejected")
	}
}

// TestRunLoadWindowLimit pins the slot-aliasing boundary. Reply routing
// embeds the window slot in the request ID's low bits, so MaxWindow is a
// wire-format constant: a window of exactly MaxWindow gives every
// in-flight slot a distinct bit pattern and must run clean against a
// live server, while MaxWindow+1 must be rejected up front — silently
// clamping (the old behavior) would change the measured concurrency,
// and honoring it would let one slot's reply complete another's.
func TestRunLoadWindowLimit(t *testing.T) {
	src, err := NewSystemClock(time.Millisecond, 50)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewBatchServer("127.0.0.1:0", 5, src, BatchConfig{Shards: 2, Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	res, err := RunLoad(LoadConfig{
		Addr:     srv.Addr().String(),
		Conns:    1,
		Window:   MaxWindow,
		Batch:    32,
		Duration: 100 * time.Millisecond,
		Timeout:  2 * time.Second,
	})
	if err != nil {
		t.Fatalf("window at the limit: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("window at the limit: %d errors", res.Errors)
	}
	if res.Received == 0 {
		t.Fatal("window at the limit: no replies")
	}

	if _, err := RunLoad(LoadConfig{Addr: srv.Addr().String(), Window: MaxWindow + 1}); err == nil {
		t.Fatalf("window %d must be rejected, not clamped", MaxWindow+1)
	}
}
