package udptime

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"disttime/internal/wire"
)

// TestBatchServerConcurrentClose hammers Close from many goroutines
// while a load run still has batches in flight: every Close must return
// the same result, the shard loops must drain, and nothing may hang or
// race (this test is part of the -race pass over RACE_PKGS).
func TestBatchServerConcurrentClose(t *testing.T) {
	src, err := NewSystemClock(time.Millisecond, 50)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewBatchServer("127.0.0.1:0", 3, src, BatchConfig{Shards: 4, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}

	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		// The run outlives the Close below, so the shards are torn down
		// mid-traffic; the load side tolerates the resulting timeouts.
		_, _ = RunLoad(LoadConfig{
			Addr:     srv.Addr().String(),
			Conns:    2,
			Window:   32,
			Duration: 300 * time.Millisecond,
			Timeout:  100 * time.Millisecond,
		})
	}()
	time.Sleep(50 * time.Millisecond) // let traffic build

	const closers = 8
	results := make([]error, closers)
	var wg sync.WaitGroup
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = srv.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range results {
		if !errors.Is(err, results[0]) {
			t.Fatalf("closer %d returned %v, closer 0 returned %v", i, err, results[0])
		}
	}
	<-loadDone
}

// TestBatchServerDoubleClose pins Close idempotence on an idle server.
func TestBatchServerDoubleClose(t *testing.T) {
	src, err := NewSystemClock(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewBatchServer("127.0.0.1:0", 1, src, BatchConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	first := srv.Close()
	second := srv.Close()
	if !errors.Is(second, first) {
		t.Fatalf("second Close returned %v, first returned %v", second, first)
	}
}

// TestBatchServerBindBusyPort proves a bind failure surfaces as a clean
// constructor error — no hang, no leaked shard — both for a plain bind
// and for the SO_REUSEPORT path against a socket that was bound without
// the option.
func TestBatchServerBindBusyPort(t *testing.T) {
	squatter, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer squatter.Close()
	addr := squatter.LocalAddr().String()
	src, err := NewSystemClock(0, 50)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 4} {
		done := make(chan error, 1)
		go func() {
			srv, err := NewBatchServer(addr, 1, src, BatchConfig{Shards: shards})
			if err == nil {
				srv.Close()
			}
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Fatalf("shards=%d: bind on busy %s succeeded, want error", shards, addr)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("shards=%d: NewBatchServer hung on busy port", shards)
		}
	}
}

// TestBatchServerServesAfterPartialTraffic is a plain end-to-end check
// of the multi-shard path: requests answered, counters advancing, Close
// after traffic clean.
func TestBatchServerServes(t *testing.T) {
	src, err := NewSystemClock(time.Millisecond, 50)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewBatchServer("127.0.0.1:0", 9, src, BatchConfig{Shards: 2, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.Shards(); got != 2 {
		t.Fatalf("Shards() = %d, want 2", got)
	}
	res, err := RunLoad(LoadConfig{
		Addr:     srv.Addr().String(),
		Conns:    1,
		Window:   8,
		Duration: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Received == 0 {
		t.Fatal("no replies received")
	}
	if srv.Requests() < res.Received {
		t.Fatalf("server counted %d requests, client received %d", srv.Requests(), res.Received)
	}
}

// queryOne sends a single request and returns the parsed reply.
func queryOne(t *testing.T, addr string, id uint64) wire.Response {
	t.Helper()
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(wire.AppendRequest(nil, wire.Request{ReqID: id})); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, maxDatagram)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ParseResponse(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestBatchServerDirectRead pins the Tick < 0 parity mode's defining
// behavior: with the cache disabled every reply reads the source at
// serve time, so a source update is visible in the very next reply with
// no per-tick widening and no frozen-snapshot staleness — including an
// error bound that narrows, which a cached reading can never do within
// a tick.
func TestBatchServerDirectRead(t *testing.T) {
	src := &steppedSource{}
	c0 := time.Unix(0, 1_650_000_000_000_000_000)
	src.set(c0, 100*time.Microsecond, true)
	srv, err := NewBatchServer("127.0.0.1:0", 3, src, BatchConfig{Shards: 1, Tick: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp := queryOne(t, srv.Addr().String(), 21)
	if !resp.Clock.Equal(c0) || resp.MaxError != 100*time.Microsecond || resp.Unsynchronized {
		t.Fatalf("first reply <%v, %v, unsync=%v>, want exact fresh reading <%v, %v, unsync=false>",
			resp.Clock, resp.MaxError, resp.Unsynchronized, c0, 100*time.Microsecond)
	}

	c1 := c0.Add(time.Hour)
	src.set(c1, 75*time.Microsecond, false)
	resp = queryOne(t, srv.Addr().String(), 22)
	if !resp.Clock.Equal(c1) || resp.MaxError != 75*time.Microsecond || !resp.Unsynchronized {
		t.Fatalf("second reply <%v, %v, unsync=%v>, want immediate narrowed reading <%v, %v, unsync=true>",
			resp.Clock, resp.MaxError, resp.Unsynchronized, c1, 75*time.Microsecond)
	}
}
