package udptime

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// TickCache serves a clock reading refreshed once per tick instead of
// once per request, so the reply path of a loaded server never touches
// the disciplined clock's lock: under a million requests per second a
// per-request src.Now() would serialize every shard behind one mutex,
// while the cache costs one atomic pointer load per reply.
//
// The cache stores the reading frozen: every Now within a tick returns
// the identical <C, E, synced> triple (replies within a tick are
// byte-identical on the wire). Freezing C makes the reading stale by up
// to the refresh interval, so E is widened once per refresh by
//
//	widen = ceil((1 + driftPPM·1e-6) · tick)
//
// — the true time can advance past the frozen C by at most the
// snapshot's age times (1+delta) on the server's own error scale, so
// the widened interval still contains it. This is the staleness bound
// of DESIGN.md §16: within a tick E is constant (it never decreases),
// and at each tick boundary the cached reading equals a fresh read of
// the source plus exactly the one-tick widening. The bound assumes the
// refresher honors its cadence; a late refresh stretches the true
// staleness beyond one tick, which Lateness exposes for monitoring.
type TickCache struct {
	src   ClockSource
	tick  time.Duration
	widen time.Duration

	cur      atomic.Pointer[tickReading]
	lateNano atomic.Int64 // worst observed refresh lateness beyond one tick

	stop     chan struct{}
	done     chan struct{}
	started  bool // a refresher goroutine owns done
	stopOnce sync.Once
}

// tickReading is one frozen snapshot; e carries the widening already.
type tickReading struct {
	c      time.Time
	e      time.Duration
	synced bool
}

var _ ClockSource = (*TickCache)(nil)

// tickWiden returns the per-tick error widening for a clock trusted to
// driftPPM: the staleness charge (1+delta)·tick, rounded up a
// nanosecond so truncation never thins the bound.
func tickWiden(tick time.Duration, driftPPM float64) time.Duration {
	if tick <= 0 {
		return 0
	}
	return time.Duration(math.Ceil(float64(tick) * (1 + driftPPM/1e6)))
}

// NewTickCache returns a started cache over src refreshing every tick
// (default one millisecond when tick <= 0). driftPPM is the drift bound
// of the clock behind src, charged into the per-tick widening. Stop
// releases the refresher.
func NewTickCache(src ClockSource, tick time.Duration, driftPPM float64) *TickCache {
	tc := newTickCacheStopped(src, tick, driftPPM)
	tc.started = true
	go tc.run()
	return tc
}

// newTickCacheStopped builds the cache, takes the first snapshot, and
// does not start the refresher — the bench hook and the property tests
// drive refresh by hand for deterministic, allocation-accounted runs.
func newTickCacheStopped(src ClockSource, tick time.Duration, driftPPM float64) *TickCache {
	if tick <= 0 {
		tick = time.Millisecond
	}
	tc := &TickCache{
		src:   src,
		tick:  tick,
		widen: tickWiden(tick, driftPPM),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	tc.refresh()
	return tc
}

// Now implements ClockSource from the frozen snapshot: one atomic load,
// no locks, no clock reads.
//
//lint:noalloc BenchmarkServeBatch
func (tc *TickCache) Now() (time.Time, time.Duration, bool) {
	r := tc.cur.Load()
	return r.c, r.e, r.synced
}

// Tick returns the refresh interval.
func (tc *TickCache) Tick() time.Duration { return tc.tick }

// Widen returns the per-tick error widening applied to every snapshot.
func (tc *TickCache) Widen() time.Duration { return tc.widen }

// Lateness returns the worst observed gap between consecutive refreshes
// beyond the nominal tick — the amount by which the documented
// staleness bound has been stretched by scheduling delay.
func (tc *TickCache) Lateness() time.Duration {
	return time.Duration(tc.lateNano.Load())
}

// Stop halts the refresher; idempotent and safe to call concurrently.
// The last snapshot remains readable.
func (tc *TickCache) Stop() {
	tc.stopOnce.Do(func() {
		close(tc.stop)
		if tc.started {
			<-tc.done
		}
	})
}

// refresh takes a fresh reading of the source and publishes it widened.
// Publication is one atomic pointer swap of an immutable snapshot, so a
// reply served exactly at a tick boundary observes either the complete
// old triple or the complete new one — never a mix of the two, and in
// both cases an error bound no narrower than a fresh read of the source
// at the instant that snapshot was taken (the widening only adds).
func (tc *TickCache) refresh() {
	c, e, synced := tc.src.Now()
	if e < 0 {
		e = 0
	}
	tc.cur.Store(&tickReading{c: c, e: e + tc.widen, synced: synced})
}

func (tc *TickCache) run() {
	defer close(tc.done)
	ticker := time.NewTicker(tc.tick)
	defer ticker.Stop()
	last := time.Now()
	for {
		select {
		case <-tc.stop:
			return
		case now := <-ticker.C:
			if late := now.Sub(last) - tc.tick; late > tc.Lateness() {
				tc.lateNano.Store(int64(late))
			}
			last = now
			tc.refresh()
		}
	}
}
