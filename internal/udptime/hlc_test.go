package udptime

import (
	"math/rand/v2"
	"testing"
	"time"

	"disttime/internal/hlc"
)

func TestWaitUntilAfterUnsynchronized(t *testing.T) {
	dc, err := NewDisciplinedClock(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.WaitUntilAfter(time.Now()); err == nil {
		t.Fatal("WaitUntilAfter on unsynchronized clock succeeded")
	}
}

func TestWaitUntilAfter(t *testing.T) {
	dc, err := NewDisciplinedClock(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.Set(time.Now(), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	now, maxErr, _ := dc.Now()
	target := now.Add(maxErr) // the latest bound: a commit-wait of ~2E
	start := time.Now()
	if err := dc.WaitUntilAfter(target); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < maxErr {
		t.Errorf("wait returned after %v, want at least E = %v", elapsed, maxErr)
	}
	c, e, _ := dc.Now()
	if earliest := c.Add(-e); !earliest.After(target) {
		t.Errorf("after wait C-E = %v, not after target %v", earliest, target)
	}
}

func TestWaitUntilAfterPastTargetReturnsImmediately(t *testing.T) {
	dc, err := NewDisciplinedClock(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.Set(time.Now(), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := dc.WaitUntilAfter(start.Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("wait on a past target took %v", elapsed)
	}
}

// TestQueryHLC drives one version-3 exchange end to end: the client's
// timestamp reaches the server, the server's reply timestamp dominates
// it, and the client folds the reply back into its own clock.
func TestQueryHLC(t *testing.T) {
	src, err := NewSystemClock(time.Millisecond, 100)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", 7, src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	clock := hlc.New(99)
	c := NewClient(time.Second, nil, WithHLC(clock))
	before := clock.Last()
	m, err := c.Query(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if m.TS.IsZero() {
		t.Fatal("v3 measurement carries no timestamp")
	}
	if m.TS.Node != 7 {
		t.Errorf("server timestamp node = %d, want 7", m.TS.Node)
	}
	if !before.Before(m.TS) {
		t.Errorf("server timestamp %v does not dominate client send %v", m.TS, before)
	}
	if after := clock.Last(); !m.TS.Before(after) {
		t.Errorf("client clock %v did not advance past server timestamp %v", after, m.TS)
	}
	if srv.Requests() != 1 {
		t.Errorf("server answered %d requests, want 1", srv.Requests())
	}
}

// TestQueryHLCAgainstV1Measurement pins that a client without WithHLC
// still speaks version 1 to the same server (mixed fleets interoperate)
// and gets a zero TS.
func TestQueryWithoutHLCStaysV1(t *testing.T) {
	src, err := NewSystemClock(time.Millisecond, 100)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", 7, src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(time.Second, nil)
	m, err := c.Query(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if !m.TS.IsZero() {
		t.Errorf("v1 measurement carries timestamp %v", m.TS)
	}
}

// TestExternalConsistencyReal runs the commit-wait workload on the real
// substrate: three servers with deliberately skewed but contained
// disciplined clocks, one HLC client per server, transactions performed
// strictly one after another across servers. Because each transaction
// commit-waits until its own C − E passes its stamped timestamp, and
// every clock is contained, a transaction completing in real time before
// the next starts must carry the smaller timestamp — with no message
// exchanged between consecutive transactions, physical time alone
// carries the order.
func TestExternalConsistencyReal(t *testing.T) {
	if testing.Short() {
		t.Skip("commit-waits are real sleeps")
	}
	const (
		servers = 3
		txns    = 51
		maxErr  = 500 * time.Microsecond
	)
	rng := rand.New(rand.NewPCG(42, 99))

	clocks := make([]*DisciplinedClock, servers)
	hlcs := make([]*hlc.Clock, servers)
	clients := make([]*Client, servers)
	for i := range clocks {
		dc, err := NewDisciplinedClock(100)
		if err != nil {
			t.Fatal(err)
		}
		// A skew inside the claimed bound: the clock is wrong by offset
		// but |offset| <= maxErr, so containment holds throughout.
		offset := time.Duration(rng.Int64N(int64(maxErr))) - maxErr/2
		if err := dc.Set(time.Now().Add(offset), maxErr); err != nil {
			t.Fatal(err)
		}
		clocks[i] = dc
		hlcs[i] = hlc.New(uint32(i))
		clients[i] = NewClient(time.Second, dc, WithHLC(hlcs[i]))
	}

	var last hlc.Timestamp
	for i := 0; i < txns; i++ {
		s := rng.IntN(servers)
		ts := hlcs[s].Now(hlcWall(clocks[s]))
		if err := clocks[s].WaitUntilAfter(time.Unix(0, ts.Wall)); err != nil {
			t.Fatal(err)
		}
		// Committed: this transaction completed in real time before the
		// next starts, so its timestamp must be the smaller one.
		if !last.Before(ts) {
			t.Fatalf("txn %d on server %d: timestamp %v does not exceed previous commit %v",
				i, s, ts, last)
		}
		last = ts
	}
}
