package udptime

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"disttime/internal/interval"
	"disttime/internal/obs"
)

// Syncer is the client-side daemon: it periodically queries a set of time
// servers and disciplines a local clock, using either the plain
// intersection (rule IM-2) or fault-tolerant selection. It owns one
// background goroutine; Stop signals it and waits for it to exit.
type Syncer struct {
	cfg     SyncerConfig
	dc      *DisciplinedClock
	client  *Client
	metrics syncerMetrics

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	mu     sync.Mutex
	last   SyncReport
	rounds int
}

// SyncerConfig configures a Syncer.
type SyncerConfig struct {
	// Servers are the time-server addresses to poll. Required unless
	// Targets is set.
	Servers []string
	// Targets, when non-nil, supplies the addresses to poll, consulted
	// afresh at the start of every round — the hook roster-backed peers
	// use to re-resolve their poll set as membership changes. When it
	// returns an empty slice the round falls back to Servers; if both
	// are empty the round fails (and the clock keeps deteriorating per
	// its drift bound, as with any other round failure).
	Targets func() []string
	// Interval is the polling period (the paper's tau). Defaults to 64 s.
	Interval time.Duration
	// Timeout bounds each per-server query. Defaults to one second.
	Timeout time.Duration
	// Selection enables falseticker rejection (SyncSelect) instead of
	// the plain intersection (SyncIM).
	Selection bool
	// KeepSurvivors caps the cluster size under Selection. Defaults to
	// 10.
	KeepSurvivors int
	// Burst is how many back-to-back queries to send per server each
	// round, keeping the minimum-RTT measurement (the [Mills 81]-lineage
	// delay filter). Defaults to 1 (no burst).
	Burst int
	// SyncOptions configures the IM-2 transform the client applies to
	// every measurement. When Delta is unset (<= 0), it defaults to the
	// disciplined clock's own drift bound (DriftPPM / 1e6), so the
	// transit charge (1+delta)*xi matches the oscillator being steered.
	SyncOptions SyncOptions
	// Metrics, when non-nil, receives the syncer's observability: round
	// and failure counters, applied error-bound and offset histograms,
	// plus the underlying client's query counters and RTT histogram.
	Metrics *obs.Registry
	// OnSync, when non-nil, observes every completed round. It is called
	// from the syncer's goroutine; it must not block for long.
	OnSync func(SyncReport)
}

// SyncReport describes one synchronization round.
type SyncReport struct {
	// When is the wall time the round completed.
	When time.Time
	// Measurements is how many servers answered.
	Measurements int
	// Applied is the offset interval applied to the clock, valid only
	// when Err is nil.
	Applied interval.Interval
	// Survivors and Falsetickers describe the selection outcome (under
	// Selection; otherwise Survivors == Measurements).
	Survivors    int
	Falsetickers int
	// Err is the round's failure, if any. The clock is untouched on
	// failure and keeps deteriorating per its drift bound.
	Err error
}

// NewSyncer starts a syncer disciplining dc. The first round runs
// immediately; subsequent rounds run every Interval until Stop.
func NewSyncer(dc *DisciplinedClock, cfg SyncerConfig) (*Syncer, error) {
	if dc == nil {
		return nil, errors.New("udptime: nil disciplined clock")
	}
	if len(cfg.Servers) == 0 && cfg.Targets == nil {
		return nil, errors.New("udptime: syncer needs at least one server")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 64 * time.Second
	}
	if cfg.KeepSurvivors <= 0 {
		cfg.KeepSurvivors = 10
	}
	if cfg.SyncOptions.Delta <= 0 {
		cfg.SyncOptions.Delta = dc.DriftPPM() / 1e6
	}
	clientOpts := []ClientOption{WithSyncOptions(cfg.SyncOptions)}
	if cfg.Metrics != nil {
		clientOpts = append(clientOpts, WithClientObservability(cfg.Metrics))
	}
	s := &Syncer{
		cfg:     cfg,
		dc:      dc,
		client:  NewClient(cfg.Timeout, dc, clientOpts...),
		metrics: newSyncerMetrics(cfg.Metrics),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go s.run()
	return s, nil
}

// syncerMetrics is the syncer's resolved metric-handle set; the zero
// value is inert (all obs methods are nil-safe).
type syncerMetrics struct {
	rounds   *obs.Counter      // udptime_sync_rounds_total
	failures *obs.Counter      // udptime_sync_failures_total
	errBound *obs.LogHistogram // udptime_sync_error_bound_seconds
	offset   *obs.LogHistogram // udptime_sync_offset_seconds
}

func newSyncerMetrics(reg *obs.Registry) syncerMetrics {
	if reg == nil {
		return syncerMetrics{}
	}
	return syncerMetrics{
		rounds:   reg.Counter("udptime_sync_rounds_total"),
		failures: reg.Counter("udptime_sync_failures_total"),
		errBound: reg.LogHistogram("udptime_sync_error_bound_seconds"),
		offset:   reg.LogHistogram("udptime_sync_offset_seconds"),
	}
}

// Stop halts the syncer and waits for its goroutine to exit. It is
// idempotent.
func (s *Syncer) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// LastReport returns the most recent round's report (zero value before
// the first round completes).
func (s *Syncer) LastReport() SyncReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Rounds returns how many rounds have completed (including failed ones).
func (s *Syncer) Rounds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rounds
}

func (s *Syncer) run() {
	defer close(s.done)
	ticker := time.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	s.round()
	for {
		select {
		case <-ticker.C:
			s.round()
		case <-s.stop:
			return
		}
	}
}

// targets resolves this round's poll set: the dynamic hook when it
// yields addresses, the static server list otherwise.
func (s *Syncer) targets() []string {
	if s.cfg.Targets != nil {
		if t := s.cfg.Targets(); len(t) > 0 {
			return t
		}
	}
	return s.cfg.Servers
}

func (s *Syncer) round() {
	var (
		ms   []Measurement
		qerr error
	)
	servers := s.targets()
	if s.cfg.Burst > 1 {
		ms, qerr = s.client.QueryManyBurst(servers, s.cfg.Burst)
	} else {
		ms, qerr = s.client.QueryMany(servers)
	}
	report := SyncReport{When: time.Now(), Measurements: len(ms)}
	switch {
	case len(servers) == 0:
		report.Err = errors.New("udptime: no poll targets")
	case len(ms) == 0:
		report.Err = fmt.Errorf("udptime: no servers answered: %w", qerr)
	case s.cfg.Selection:
		sel, err := SyncSelect(s.dc, ms, s.cfg.KeepSurvivors)
		if err != nil {
			report.Err = err
			break
		}
		report.Applied = sel.Interval
		report.Survivors = len(sel.Survivors)
		report.Falsetickers = len(sel.Falsetickers)
	default:
		applied, err := SyncIM(s.dc, ms)
		if err != nil {
			report.Err = err
			break
		}
		report.Applied = applied
		report.Survivors = len(ms)
	}
	s.metrics.rounds.Inc()
	if report.Err != nil {
		s.metrics.failures.Inc()
	} else {
		s.metrics.errBound.Observe(report.Applied.HalfWidth())
		s.metrics.offset.Observe(math.Abs(report.Applied.Midpoint()))
	}
	if s.cfg.OnSync != nil {
		s.cfg.OnSync(report)
	}
	s.mu.Lock()
	s.last = report
	s.rounds++
	s.mu.Unlock()
}
