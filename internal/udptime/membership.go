package udptime

import (
	"fmt"
	"math"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"disttime/internal/member"
	"disttime/internal/obs"
	"disttime/internal/wire"
)

// This file is the real-network realization of the internal/member
// subsystem: a roster keyed by serving address, fed by version-2
// advertise datagrams, with the drift-aware failure detector running on
// the process's monotonic clock. A roster-backed peer starts from seed
// addresses only, learns the rest of the cluster through anti-entropy
// gossip, and re-resolves its poll targets from the roster every sync
// round — the paper's "adopt the neighbor with smaller maximum error"
// applied to topology, over UDP.

// MembershipConfig tunes a roster-backed peer's gossip and detector.
// The zero value picks the defaults.
type MembershipConfig struct {
	// Gossip is the heartbeat/advertise period. Defaults to one second.
	Gossip time.Duration
	// Misses is how many consecutive heartbeats a member may stay silent
	// before suspicion; defaults to 3.
	Misses int
	// DigestMax caps the roster entries per advertise datagram; defaults
	// to 8 (and is clamped to wire.MaxAdvertiseEntries).
	DigestMax int
	// Fanout is how many members each gossip tick addresses; defaults
	// to 2 (plus the exploration slot).
	Fanout int
	// K is how many quality-ranked live members a sync round polls;
	// defaults to 3 (plus the exploration slot).
	K int
	// DelayBound is the one-way network delay bound the detector charges
	// (the paper's xi). Defaults to 500 ms.
	DelayBound time.Duration
}

// withDefaults fills the zero fields.
func (c MembershipConfig) withDefaults() MembershipConfig {
	if c.Gossip <= 0 {
		c.Gossip = time.Second
	}
	if c.Misses <= 0 {
		c.Misses = 3
	}
	if c.DigestMax <= 0 {
		c.DigestMax = 8
	}
	if c.DigestMax > wire.MaxAdvertiseEntries {
		c.DigestMax = wire.MaxAdvertiseEntries
	}
	if c.Fanout <= 0 {
		c.Fanout = 2
	}
	if c.K <= 0 {
		c.K = 3
	}
	if c.DelayBound <= 0 {
		c.DelayBound = 500 * time.Millisecond
	}
	return c
}

// membershipMetrics is the resolved metric-handle set; the zero value is
// inert (obs methods are nil-safe).
type membershipMetrics struct {
	msgs      *obs.Counter   // udptime_member_gossip_messages_total
	entries   *obs.Histogram // udptime_member_gossip_entries
	alive     *obs.Gauge     // udptime_member_alive_servers
	known     *obs.Gauge     // udptime_member_known_servers
	evictions *obs.Counter   // udptime_member_evictions_total
}

func newMembershipMetrics(reg *obs.Registry) membershipMetrics {
	if reg == nil {
		return membershipMetrics{}
	}
	return membershipMetrics{
		msgs:      reg.Counter("udptime_member_gossip_messages_total"),
		entries:   reg.Histogram("udptime_member_gossip_entries", []float64{1, 2, 4, 8, 16, 32}),
		alive:     reg.Gauge("udptime_member_alive_servers"),
		known:     reg.Gauge("udptime_member_known_servers"),
		evictions: reg.Counter("udptime_member_evictions_total"),
	}
}

// membership runs one peer's roster: the gossip loop, the failure
// detector, and the advertise dispatch from the peer's server socket.
// All roster state is guarded by mu; sends go out on the server's own
// connection so every datagram's source address is the serving address.
type membership struct {
	cfg     MembershipConfig
	clock   ClockSource
	delta   float64   // claimed drift bound of the local oscillator (fraction)
	start   time.Time // origin of the detector's monotonic local clock
	metrics membershipMetrics

	mu        sync.Mutex
	conn      *net.UDPConn // the server's socket; nil until bind
	self      string
	roster    *member.Roster[string]
	det       *member.Detector[string]
	rng       *rand.Rand
	resolved  map[string]*net.UDPAddr
	seq       uint64 // advertise datagram sequence (debugging aid)
	evictions uint64

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// newMembership prepares a membership manager; bind activates it once
// the server socket exists.
func newMembership(clock ClockSource, deltaPPM float64, cfg MembershipConfig, reg *obs.Registry) *membership {
	return &membership{
		cfg:      cfg.withDefaults(),
		clock:    clock,
		delta:    deltaPPM / 1e6,
		start:    time.Now(),
		metrics:  newMembershipMetrics(reg),
		resolved: make(map[string]*net.UDPAddr),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// localNow is the detector's local clock: seconds of the process
// monotonic clock, drifting by at most the oscillator's claimed bound.
func (m *membership) localNow() float64 { return time.Since(m.start).Seconds() }

// reading returns the local clock's <C, E> in seconds; an
// unsynchronized clock advertises infinite error, so quality ranking
// places it last until its first successful round.
func (m *membership) reading() (c, e float64) {
	now, maxErr, synced := m.clock.Now()
	c = float64(now.UnixNano()) / 1e9
	e = maxErr.Seconds()
	if !synced {
		e = math.Inf(1)
	}
	return c, e
}

// bind activates the manager on the server's socket: the roster owner is
// the serving address, the incarnation number is drawn from the wall
// clock so a restarted peer at the same address supersedes every trace
// of its previous life, and the seeds join as generation-zero entries of
// unknown (infinite) quality — superseded by their first real
// advertisement, and never detector-tracked until actually heard.
func (m *membership) bind(conn *net.UDPConn, id uint64, seeds []string) error {
	self := conn.LocalAddr().String()
	det, err := member.NewDetector[string](member.DetectorConfig{
		Period:      m.cfg.Gossip.Seconds(),
		Misses:      m.cfg.Misses,
		LocalDelta:  m.delta,
		RemoteDelta: m.delta,
		Xi:          m.cfg.DelayBound.Seconds(),
	})
	if err != nil {
		return fmt.Errorf("udptime: membership detector: %w", err)
	}
	m.mu.Lock()
	m.conn = conn
	m.self = self
	m.det = det
	m.rng = rand.New(rand.NewPCG(id, uint64(time.Now().UnixNano())))
	m.roster = member.New(self, uint64(time.Now().UnixNano()), m.delta)
	c, e := m.reading()
	m.roster.Advertise(c, e)
	for _, seed := range seeds {
		if seed == self {
			continue
		}
		m.roster.Upsert(member.Entry[string]{ID: seed, Status: member.Alive, E: math.Inf(1)})
	}
	m.mu.Unlock()
	go m.run()
	return nil
}

func (m *membership) run() {
	defer close(m.done)
	ticker := time.NewTicker(m.cfg.Gossip)
	defer ticker.Stop()
	m.tick()
	for {
		select {
		case <-ticker.C:
			m.tick()
		case <-m.stop:
			return
		}
	}
}

// tick is one gossip round: refresh the owner's advertisement, turn
// silence into verdicts, and push a roster digest to the selected
// members.
func (m *membership) tick() {
	m.mu.Lock()
	now := m.localNow()
	c, e := m.reading()
	m.roster.Advertise(c, e)
	for _, v := range m.det.Check(now) {
		if _, changed := m.roster.Accuse(v.ID, v.Status); changed && v.Status == member.Evicted {
			m.det.Forget(v.ID)
			m.evictions++
			m.metrics.evictions.Inc()
		}
	}
	targets := member.Select(m.roster, member.SelectConfig[string]{
		K:       m.cfg.Fanout,
		Explore: m.rng.IntN,
	})
	payload, sent := m.encodeDigest()
	m.metrics.alive.Set(float64(m.roster.AliveCount()))
	m.metrics.known.Set(float64(m.roster.Len()))
	// The handles are resolved once at construction; copy them out so the
	// sends below need no lock.
	metrics := m.metrics
	m.mu.Unlock()
	if payload == nil {
		return
	}
	for _, addr := range targets {
		if m.send(addr, payload) {
			metrics.msgs.Inc()
			metrics.entries.Observe(float64(sent))
		}
	}
}

// encodeDigest renders the roster digest as one advertise datagram.
// Callers hold mu.
func (m *membership) encodeDigest() (payload []byte, entries int) {
	//lint:ignore guardedby the only caller, gossipOnce, holds m.mu across this call (documented above)
	digest := m.roster.Digest(make([]member.Entry[string], 0, m.cfg.DigestMax), m.cfg.DigestMax)
	out := make([]wire.MemberEntry, 0, len(digest))
	for _, e := range digest {
		out = append(out, wire.MemberEntry{
			Addr: e.ID, Gen: e.Gen, Seq: e.Seq, Status: uint8(e.Status),
			C: e.C, E: e.E, Delta: e.Delta,
		})
	}
	m.seq++
	payload, err := wire.AppendAdvertise(nil, m.seq, out)
	if err != nil {
		// Roster entries are validated on the way in; encoding them back
		// cannot fail.
		return nil, 0
	}
	return payload, len(out)
}

// send resolves addr (cached) and writes one datagram from the server's
// socket.
func (m *membership) send(addr string, payload []byte) bool {
	m.mu.Lock()
	udp, ok := m.resolved[addr]
	conn := m.conn
	m.mu.Unlock()
	if conn == nil {
		return false
	}
	if !ok {
		var err error
		udp, err = net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return false
		}
		m.mu.Lock()
		m.resolved[addr] = udp
		m.mu.Unlock()
	}
	_, err := conn.WriteToUDP(payload, udp)
	return err == nil
}

// handleAdvertise merges one incoming digest: the sender's own row
// (first, per the digest convention) is direct freshness evidence; any
// entry strictly fresher than what the roster knew is indirect evidence
// that its member advertised recently. A fresher claim about this very
// peer — someone suspected or evicted us — triggers an immediate rejoin
// with a bumped incarnation.
func (m *membership) handleAdvertise(entries []wire.MemberEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.roster == nil {
		return // datagram raced the bind; gossip repeats
	}
	now := m.localNow()
	for i, we := range entries {
		e := member.Entry[string]{
			ID: we.Addr, Gen: we.Gen, Seq: we.Seq, Status: member.Status(we.Status),
			C: we.C, E: we.E, Delta: we.Delta,
		}
		if i == 0 && e.ID != m.self && e.Status == member.Alive {
			m.det.Observe(e.ID, now)
		}
		ch, changed := m.roster.Upsert(e)
		if !changed {
			continue
		}
		if e.ID == m.self {
			if st := m.roster.Self().Status; st == member.Suspect || st == member.Evicted {
				rc, re := m.reading()
				m.roster.Rejoin(rc, re)
			}
			continue
		}
		switch ch.To {
		case member.Alive:
			m.det.Observe(e.ID, now)
		case member.Left, member.Evicted:
			m.det.Forget(e.ID)
		}
	}
	m.metrics.alive.Set(float64(m.roster.AliveCount()))
	m.metrics.known.Set(float64(m.roster.Len()))
}

// Targets returns the addresses a sync round should poll: the K live
// members with the smallest advertised maximum error plus the seeded
// exploration slot. Wired into SyncerConfig.Targets, so the poll set
// follows the roster as members join, leave, and are evicted.
func (m *membership) Targets() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.roster == nil {
		return nil
	}
	return member.Select(m.roster, member.SelectConfig[string]{
		K:       m.cfg.K,
		Explore: m.rng.IntN,
	})
}

// Members returns the roster in increasing address order.
func (m *membership) Members() []member.Entry[string] {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.roster == nil {
		return nil
	}
	return m.roster.Members()
}

// Evictions returns how many members this peer's detector has evicted.
func (m *membership) Evictions() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evictions
}

// halt stops the gossip loop without any announcement — the controlled
// equivalent of a crash, used by tests that exercise the failure
// detector. Idempotent.
func (m *membership) halt() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// close stops the gossip loop and announces a voluntary departure with
// one farewell digest, so the survivors record Left instead of waiting
// out an eviction.
func (m *membership) close() {
	m.halt()
	m.mu.Lock()
	if m.roster == nil {
		m.mu.Unlock()
		return
	}
	m.roster.Leave()
	targets := member.Select(m.roster, member.SelectConfig[string]{K: m.cfg.Fanout})
	payload, _ := m.encodeDigest()
	m.mu.Unlock()
	if payload == nil {
		return
	}
	for _, addr := range targets {
		m.send(addr, payload)
	}
}
