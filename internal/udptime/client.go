package udptime

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"disttime/internal/interval"
	"disttime/internal/ntp"
	"disttime/internal/wire"
)

// Measurement is one completed request/response exchange, interpreted
// against the local clock.
type Measurement struct {
	// Addr is the queried server address.
	Addr string
	// ServerID is the responder's identity.
	ServerID uint64
	// C and E are the server's reading.
	C time.Time
	E time.Duration
	// RTT is the round trip measured on the local clock (the paper's
	// xi^i_j).
	RTT time.Duration
	// LocalRecv is the local clock's value when the response arrived.
	LocalRecv time.Time
	// Unsynchronized marks a reading from a server that cannot bound its
	// error.
	Unsynchronized bool
}

// OffsetInterval returns the interval, in seconds, known to contain the
// true offset between the server's timeline and the local clock: rule
// IM-2's transform [C - E - local, C + E + xi - local]. (The drift term
// (1+delta) xi is applied by the caller's delta via SyncOptions; over a
// single RTT it is below nanosecond resolution for realistic delta.)
func (m Measurement) OffsetInterval() interval.Interval {
	lo := m.C.Sub(m.LocalRecv) - m.E
	hi := m.C.Sub(m.LocalRecv) + m.E + m.RTT
	return interval.Interval{Lo: lo.Seconds(), Hi: hi.Seconds()}
}

// Client queries time servers.
type Client struct {
	// Timeout bounds each query; defaults to one second.
	Timeout time.Duration
	// LocalClock supplies local readings for offset computation. Defaults
	// to the system clock. To discipline a DisciplinedClock, set this to
	// it so offsets are measured against the clock being steered.
	LocalClock ClockSource

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient returns a client with the given per-query timeout (zero means
// one second) measuring against local (nil means the system clock).
func NewClient(timeout time.Duration, local ClockSource) *Client {
	return &Client{
		Timeout:    timeout,
		LocalClock: local,
		rng:        newReqIDRNG(),
	}
}

// newReqIDRNG seeds the request-ID generator from the OS entropy source,
// falling back to the wall clock (this is the real-network package, where
// reading it is legitimate). Request IDs should be unpredictable to
// off-path spoofers, and seeding from an explicit source — rather than
// the process-global math/rand generator — keeps the simulated paths'
// byte-determinism guarantee intact: nothing outside this constructor
// consumes shared randomness.
func newReqIDRNG() *rand.Rand {
	var b [16]byte
	if _, err := crand.Read(b[:]); err == nil {
		return rand.New(rand.NewPCG(
			binary.LittleEndian.Uint64(b[:8]),
			binary.LittleEndian.Uint64(b[8:])))
	}
	now := uint64(time.Now().UnixNano())
	return rand.New(rand.NewPCG(now, now^0x9e3779b97f4a7c15))
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return time.Second
}

func (c *Client) localNow() time.Time {
	if c.LocalClock != nil {
		now, _, _ := c.LocalClock.Now()
		return now
	}
	return time.Now()
}

func (c *Client) nextReqID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = newReqIDRNG()
	}
	return c.rng.Uint64()
}

// Query sends one time request to addr and returns the measurement.
func (c *Client) Query(addr string) (Measurement, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return Measurement{}, fmt.Errorf("udptime: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return Measurement{}, fmt.Errorf("udptime: dial %q: %w", addr, err)
	}
	defer conn.Close()

	reqID := c.nextReqID()
	out := wire.AppendRequest(make([]byte, 0, wire.RequestSize), wire.Request{ReqID: reqID})

	deadline := time.Now().Add(c.timeout())
	if err := conn.SetDeadline(deadline); err != nil {
		return Measurement{}, fmt.Errorf("udptime: deadline: %w", err)
	}

	sentLocal := c.localNow()
	sentMono := time.Now()
	if _, err := conn.Write(out); err != nil {
		return Measurement{}, fmt.Errorf("udptime: send to %q: %w", addr, err)
	}

	buf := make([]byte, 512)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return Measurement{}, fmt.Errorf("udptime: read from %q: %w", addr, err)
		}
		resp, err := wire.ParseResponse(buf[:n])
		if err != nil || resp.ReqID != reqID {
			continue // stray or malformed datagram; keep waiting
		}
		rtt := time.Since(sentMono)
		return Measurement{
			Addr:           addr,
			ServerID:       resp.ServerID,
			C:              resp.Clock,
			E:              resp.MaxError,
			RTT:            rtt,
			LocalRecv:      sentLocal.Add(rtt),
			Unsynchronized: resp.Unsynchronized,
		}, nil
	}
}

// QueryMany queries every address concurrently. It returns the successful
// measurements and, when any query failed, a joined error describing the
// failures. Unsynchronized responses are returned but flagged.
func (c *Client) QueryMany(addrs []string) ([]Measurement, error) {
	type result struct {
		m   Measurement
		err error
	}
	results := make([]result, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := c.Query(addr)
			results[i] = result{m: m, err: err}
		}()
	}
	wg.Wait()

	var ms []Measurement
	var errs []error
	for _, r := range results {
		if r.err != nil {
			errs = append(errs, r.err)
			continue
		}
		ms = append(ms, r.m)
	}
	return ms, errors.Join(errs...)
}

// Sync errors.
var (
	ErrNoMeasurements = errors.New("udptime: no usable measurements")
	ErrInconsistent   = errors.New("udptime: measurements mutually inconsistent")
)

// SyncIM disciplines dc with the intersection algorithm (rule IM-2): the
// offset intervals of all synchronized measurements, intersected with the
// clock's own current interval when it is synchronized, yield the new
// offset and inherited error. It returns the applied offset interval.
func SyncIM(dc *DisciplinedClock, ms []Measurement) (interval.Interval, error) {
	ivs := usableOffsets(ms)
	if len(ivs) == 0 {
		return interval.Interval{}, ErrNoMeasurements
	}
	if _, e, synced := dc.Now(); synced {
		ivs = append(ivs, interval.FromEstimate(0, e.Seconds()))
	}
	common, ok := interval.IntersectAll(ivs)
	if !ok {
		return interval.Interval{}, ErrInconsistent
	}
	if err := applyOffset(dc, common); err != nil {
		return interval.Interval{}, err
	}
	return common, nil
}

// SyncSelect disciplines dc with falseticker rejection: ntp.Select over
// the measurements' offset intervals, clustering to at most keep
// survivors, then the intersection of the survivors. Use it when some
// servers may hold invalid drift bounds (the Section 5 failure mode).
func SyncSelect(dc *DisciplinedClock, ms []Measurement, keep int) (ntp.Selection, error) {
	usable := make([]Measurement, 0, len(ms))
	for _, m := range ms {
		if !m.Unsynchronized {
			usable = append(usable, m)
		}
	}
	if len(usable) == 0 {
		return ntp.Selection{}, ErrNoMeasurements
	}
	readings := make([]ntp.Reading, len(usable))
	for i, m := range usable {
		readings[i] = ntp.Reading{
			ID:       m.Addr,
			Interval: m.OffsetInterval(),
			RTT:      m.RTT.Seconds(),
		}
	}
	sel, err := ntp.Select(readings, ntp.Options{})
	if err != nil {
		return ntp.Selection{}, err
	}
	survivors := ntp.Cluster(readings, sel.Survivors, keep)
	member := make([]interval.Interval, len(survivors))
	for i, idx := range survivors {
		member[i] = readings[idx].Interval
	}
	common, ok := interval.IntersectAll(member)
	if !ok {
		return ntp.Selection{}, ErrInconsistent
	}
	if err := applyOffset(dc, common); err != nil {
		return ntp.Selection{}, err
	}
	sel.Survivors = survivors
	sel.Interval = common
	return sel, nil
}

func usableOffsets(ms []Measurement) []interval.Interval {
	var ivs []interval.Interval
	for _, m := range ms {
		if m.Unsynchronized {
			continue
		}
		ivs = append(ivs, m.OffsetInterval())
	}
	return ivs
}

func applyOffset(dc *DisciplinedClock, common interval.Interval) error {
	offset := time.Duration(common.Midpoint() * float64(time.Second))
	maxErr := time.Duration(common.HalfWidth() * float64(time.Second))
	return dc.Adjust(offset, maxErr)
}

// QueryBurst queries addr up to k times back-to-back and returns the
// measurement with the smallest round trip. A delay spike can only widen
// an offset interval (the requester charges the whole round trip to the
// leading edge), so the fastest exchange of a burst carries the tightest
// honest interval — the measurement filter of the [Mills 81] lineage the
// paper cites for clock measurement. Individual attempts may fail; an
// error is returned only when every attempt does.
func (c *Client) QueryBurst(addr string, k int) (Measurement, error) {
	if k < 1 {
		k = 1
	}
	var (
		best    Measurement
		haveOne bool
		errs    []error
	)
	for i := 0; i < k; i++ {
		m, err := c.Query(addr)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if !haveOne || m.RTT < best.RTT {
			best = m
			haveOne = true
		}
	}
	if !haveOne {
		return Measurement{}, fmt.Errorf("udptime: burst to %q failed: %w", addr, errors.Join(errs...))
	}
	return best, nil
}

// QueryManyBurst queries every address concurrently, each with a burst of
// k attempts, keeping the minimum-RTT measurement per server.
func (c *Client) QueryManyBurst(addrs []string, k int) ([]Measurement, error) {
	type result struct {
		m   Measurement
		err error
	}
	results := make([]result, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := c.QueryBurst(addr, k)
			results[i] = result{m: m, err: err}
		}()
	}
	wg.Wait()

	var ms []Measurement
	var errs []error
	for _, r := range results {
		if r.err != nil {
			errs = append(errs, r.err)
			continue
		}
		ms = append(ms, r.m)
	}
	return ms, errors.Join(errs...)
}
