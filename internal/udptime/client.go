package udptime

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"disttime/internal/hlc"
	"disttime/internal/interval"
	"disttime/internal/ntp"
	"disttime/internal/obs"
	"disttime/internal/wire"
)

// SyncOptions carries the client-side parameters of rule IM-2's
// transform.
type SyncOptions struct {
	// Delta is the local clock's drift-rate bound, dimensionless (the
	// paper's delta_i; e.g. 100e-6 for a 100 ppm oscillator). It charges
	// the transit term (1+Delta)*xi of the offset-interval transform:
	// during the xi seconds the exchange was in flight, the local clock
	// itself may have drifted by up to Delta*xi. Zero claims a perfect
	// local oscillator.
	Delta float64
}

// Measurement is one completed request/response exchange, interpreted
// against the local clock.
type Measurement struct {
	// Addr is the queried server address.
	Addr string
	// ServerID is the responder's identity.
	ServerID uint64
	// C and E are the server's reading.
	C time.Time
	E time.Duration
	// RTT is the round trip measured on the local clock (the paper's
	// xi^i_j).
	RTT time.Duration
	// LocalRecv is the local clock's value when the response arrived.
	LocalRecv time.Time
	// Delta is the local drift-rate bound in force when the measurement
	// was taken (stamped from the client's SyncOptions), so the
	// measurement carries everything rule IM-2's transform needs.
	Delta float64
	// Unsynchronized marks a reading from a server that cannot bound its
	// error.
	Unsynchronized bool
	// TS is the server's hybrid logical clock timestamp, piggybacked on
	// version-3 exchanges; zero on version-1 queries (client without
	// WithHLC).
	TS hlc.Timestamp
}

// OffsetInterval returns the interval, in seconds, known to contain the
// true offset between the server's timeline and the local clock: rule
// IM-2's transform [C - E - local, C + E + (1+delta)*xi - local]. The
// server's reading was taken at some point during the round trip, so by
// arrival it can lag the measured receive instant by up to the full
// round trip plus the local clock's own drift over it — dropping the
// (1+delta) factor shrinks the upper edge by delta*xi and can exclude
// the true offset whenever xi is large.
func (m Measurement) OffsetInterval() interval.Interval {
	base := m.C.Sub(m.LocalRecv).Seconds()
	e := m.E.Seconds()
	xi := m.RTT.Seconds()
	return interval.Interval{Lo: base - e, Hi: base + e + (1+m.Delta)*xi}
}

// clientMetrics is the resolved metric-handle set of an observed client.
// The zero value (all handles nil) is fully inert: every obs method is
// nil-safe, so Query bumps unconditionally.
type clientMetrics struct {
	queries  *obs.Counter      // udptime_client_queries_total
	errors   *obs.Counter      // udptime_client_query_errors_total
	timeouts *obs.Counter      // udptime_client_timeouts_total
	strays   *obs.Counter      // udptime_client_stray_datagrams_total
	rtt      *obs.LogHistogram // udptime_client_rtt_seconds
}

// Client queries time servers. It is safe for concurrent use: all
// mutable state — the request-ID generator, the timeout, the local clock
// source, the sync options, and the metric handles — is guarded by one
// mutex, and Query reads a consistent snapshot of the configuration at
// its start.
type Client struct {
	mu         sync.Mutex
	timeoutDur time.Duration
	local      ClockSource
	opts       SyncOptions
	metrics    clientMetrics
	rng        *rand.Rand
	hclock     *hlc.Clock
}

// ClientOption configures a Client.
type ClientOption interface {
	applyClient(*Client)
}

type clientSyncOptions struct{ o SyncOptions }

func (c clientSyncOptions) applyClient(cl *Client) {
	//lint:ignore guardedby options are applied inside NewClient before the client is published, so no other goroutine can observe the write
	cl.opts = c.o
}

// WithSyncOptions sets the IM-2 transform parameters (notably the local
// drift bound Delta) applied to every measurement the client takes.
func WithSyncOptions(o SyncOptions) ClientOption { return clientSyncOptions{o: o} }

type clientHLCOption struct{ c *hlc.Clock }

func (o clientHLCOption) applyClient(cl *Client) {
	//lint:ignore guardedby options are applied inside NewClient before the client is published, so no other goroutine can observe the write
	cl.hclock = o.c
}

// WithHLC attaches a hybrid logical clock: every query switches to the
// version-3 exchange, piggybacking the client's timestamp on the request
// and folding the server's reply timestamp back in via Update, so each
// RPC is a happens-before edge. Servers predating VersionHLC reject the
// request (the client's query then times out), so enable it only against
// a v3 fleet.
func WithHLC(c *hlc.Clock) ClientOption { return clientHLCOption{c: c} }

type clientObsOption struct{ reg *obs.Registry }

func (c clientObsOption) applyClient(cl *Client) { cl.resolveMetrics(c.reg) }

// WithClientObservability resolves the client's metrics in reg: query,
// error, timeout, and stray-datagram counters plus a round-trip-time
// log histogram.
func WithClientObservability(reg *obs.Registry) ClientOption { return clientObsOption{reg: reg} }

// NewClient returns a client with the given per-query timeout (zero means
// one second) measuring against local (nil means the system clock).
func NewClient(timeout time.Duration, local ClockSource, opts ...ClientOption) *Client {
	c := &Client{
		timeoutDur: timeout,
		local:      local,
		rng:        newReqIDRNG(),
	}
	for _, o := range opts {
		o.applyClient(c)
	}
	return c
}

// SetTimeout replaces the per-query timeout (zero restores the default
// one second). Safe to call concurrently with queries in flight; only
// queries started afterwards observe the new value.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeoutDur = d
}

// SetLocalClock replaces the clock source used for offset computation
// (nil restores the system clock).
func (c *Client) SetLocalClock(src ClockSource) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.local = src
}

// SetSyncOptions replaces the IM-2 transform parameters.
func (c *Client) SetSyncOptions(o SyncOptions) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opts = o
}

// Observe resolves the client's metrics in reg (see
// WithClientObservability). A nil registry detaches the handles.
func (c *Client) Observe(reg *obs.Registry) { c.resolveMetrics(reg) }

func (c *Client) resolveMetrics(reg *obs.Registry) {
	var m clientMetrics
	if reg != nil {
		m = clientMetrics{
			queries:  reg.Counter("udptime_client_queries_total"),
			errors:   reg.Counter("udptime_client_query_errors_total"),
			timeouts: reg.Counter("udptime_client_timeouts_total"),
			strays:   reg.Counter("udptime_client_stray_datagrams_total"),
			rtt:      reg.LogHistogram("udptime_client_rtt_seconds"),
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = m
}

// config returns a consistent snapshot of the client's configuration.
func (c *Client) config() (time.Duration, ClockSource, SyncOptions, clientMetrics, *hlc.Clock) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.timeoutDur
	if d <= 0 {
		d = time.Second
	}
	return d, c.local, c.opts, c.metrics, c.hclock
}

// hlcWall returns the HLC physical component for a send or receive on
// src's timeline: the reading's latest bound C+E in nanoseconds (the
// system clock with no bound when src is nil).
func hlcWall(src ClockSource) int64 {
	if src != nil {
		now, maxErr, _ := src.Now()
		return now.Add(maxErr).UnixNano()
	}
	return time.Now().UnixNano()
}

// newReqIDRNG seeds the request-ID generator from the OS entropy source,
// falling back to the wall clock (this is the real-network package, where
// reading it is legitimate). Request IDs should be unpredictable to
// off-path spoofers, and seeding from an explicit source — rather than
// the process-global math/rand generator — keeps the simulated paths'
// byte-determinism guarantee intact: nothing outside this constructor
// consumes shared randomness.
func newReqIDRNG() *rand.Rand {
	var b [16]byte
	if _, err := crand.Read(b[:]); err == nil {
		return rand.New(rand.NewPCG(
			binary.LittleEndian.Uint64(b[:8]),
			binary.LittleEndian.Uint64(b[8:])))
	}
	return rand.New(fallbackPCG(uint64(time.Now().UnixNano())))
}

// fallbackPCG derives the two PCG seed words from a single seed by
// running splitmix64 twice. The previous fallback used (seed, seed^K)
// with a fixed constant K, which ties the words together by a known
// relation an off-path spoofer could exploit; splitmix64's finalizer
// makes the two words independent-looking functions of the seed (this is
// the seeding recommended by the xoshiro/PCG authors for expanding one
// word of entropy into a full seed state).
func fallbackPCG(seed uint64) *rand.PCG {
	s1 := splitmix64(&seed)
	s2 := splitmix64(&seed)
	return rand.NewPCG(s1, s2)
}

// splitmix64 advances the state by the golden-ratio increment and
// returns the finalizer mix of the new state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func localNow(src ClockSource) time.Time {
	if src != nil {
		now, _, _ := src.Now()
		return now
	}
	return time.Now()
}

func (c *Client) nextReqID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = newReqIDRNG()
	}
	return c.rng.Uint64()
}

// Query sends one time request to addr and returns the measurement.
// With WithHLC the exchange is version 3: the request carries the
// client's timestamp, the response's timestamp is folded back in.
func (c *Client) Query(addr string) (Measurement, error) {
	timeout, local, opts, mtr, hclock := c.config()
	mtr.queries.Inc()
	m, err := c.query(addr, timeout, local, opts, mtr, hclock)
	if err != nil {
		mtr.errors.Inc()
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			mtr.timeouts.Inc()
		}
		return Measurement{}, err
	}
	mtr.rtt.Observe(m.RTT.Seconds())
	return m, nil
}

func (c *Client) query(addr string, timeout time.Duration, local ClockSource, opts SyncOptions, mtr clientMetrics, hclock *hlc.Clock) (Measurement, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return Measurement{}, fmt.Errorf("udptime: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return Measurement{}, fmt.Errorf("udptime: dial %q: %w", addr, err)
	}
	defer conn.Close()

	reqID := c.nextReqID()
	var out []byte
	if hclock != nil {
		out = wire.AppendRequestHLC(make([]byte, 0, wire.RequestHLCSize), wire.RequestHLC{
			ReqID: reqID,
			TS:    hclock.Now(hlcWall(local)),
		})
	} else {
		out = wire.AppendRequest(make([]byte, 0, wire.RequestSize), wire.Request{ReqID: reqID})
	}

	deadline := time.Now().Add(timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return Measurement{}, fmt.Errorf("udptime: deadline: %w", err)
	}

	sentLocal := localNow(local)
	sentMono := time.Now()
	if _, err := conn.Write(out); err != nil {
		return Measurement{}, fmt.Errorf("udptime: send to %q: %w", addr, err)
	}

	bufp := dgramPool.Get().(*[maxDatagram]byte)
	buf := bufp[:]
	defer dgramPool.Put(bufp)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return Measurement{}, fmt.Errorf("udptime: read from %q: %w", addr, err)
		}
		var resp wire.Response
		var ts hlc.Timestamp
		if hclock != nil {
			r, err := wire.ParseResponseHLC(buf[:n])
			if err != nil || r.ReqID != reqID {
				mtr.strays.Inc() // stray, short, or malformed datagram
				continue         // keep waiting for ours
			}
			resp, ts = r.Response, r.TS
			hclock.Update(hlcWall(local), ts)
		} else {
			r, err := wire.ParseResponse(buf[:n])
			if err != nil || r.ReqID != reqID {
				mtr.strays.Inc() // stray, short, or malformed datagram
				continue         // keep waiting for ours
			}
			resp = r
		}
		rtt := time.Since(sentMono)
		return Measurement{
			Addr:           addr,
			ServerID:       resp.ServerID,
			C:              resp.Clock,
			E:              resp.MaxError,
			RTT:            rtt,
			LocalRecv:      sentLocal.Add(rtt),
			Delta:          opts.Delta,
			Unsynchronized: resp.Unsynchronized,
			TS:             ts,
		}, nil
	}
}

// QueryMany queries every address concurrently. It returns the successful
// measurements and, when any query failed, a joined error describing the
// failures. Unsynchronized responses are returned but flagged.
func (c *Client) QueryMany(addrs []string) ([]Measurement, error) {
	type result struct {
		m   Measurement
		err error
	}
	results := make([]result, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := c.Query(addr)
			results[i] = result{m: m, err: err}
		}()
	}
	wg.Wait()

	var ms []Measurement
	var errs []error
	for _, r := range results {
		if r.err != nil {
			errs = append(errs, r.err)
			continue
		}
		ms = append(ms, r.m)
	}
	return ms, errors.Join(errs...)
}

// Sync errors.
var (
	ErrNoMeasurements = errors.New("udptime: no usable measurements")
	ErrInconsistent   = errors.New("udptime: measurements mutually inconsistent")
)

// SyncIM disciplines dc with the intersection algorithm (rule IM-2): the
// offset intervals of all synchronized measurements, intersected with the
// clock's own current interval when it is synchronized, yield the new
// offset and inherited error. It returns the applied offset interval.
func SyncIM(dc *DisciplinedClock, ms []Measurement) (interval.Interval, error) {
	ivs := usableOffsets(ms)
	if len(ivs) == 0 {
		return interval.Interval{}, ErrNoMeasurements
	}
	if _, e, synced := dc.Now(); synced {
		ivs = append(ivs, interval.FromEstimate(0, e.Seconds()))
	}
	common, ok := interval.IntersectAll(ivs)
	if !ok {
		return interval.Interval{}, ErrInconsistent
	}
	if err := applyOffset(dc, common); err != nil {
		return interval.Interval{}, err
	}
	return common, nil
}

// SyncSelect disciplines dc with falseticker rejection: ntp.Select over
// the measurements' offset intervals, clustering to at most keep
// survivors, then the intersection of the survivors. Use it when some
// servers may hold invalid drift bounds (the Section 5 failure mode).
func SyncSelect(dc *DisciplinedClock, ms []Measurement, keep int) (ntp.Selection, error) {
	usable := make([]Measurement, 0, len(ms))
	for _, m := range ms {
		if !m.Unsynchronized {
			usable = append(usable, m)
		}
	}
	if len(usable) == 0 {
		return ntp.Selection{}, ErrNoMeasurements
	}
	readings := make([]ntp.Reading, len(usable))
	for i, m := range usable {
		readings[i] = ntp.Reading{
			ID:       m.Addr,
			Interval: m.OffsetInterval(),
			RTT:      m.RTT.Seconds(),
		}
	}
	sel, err := ntp.Select(readings, ntp.Options{})
	if err != nil {
		return ntp.Selection{}, err
	}
	survivors := ntp.Cluster(readings, sel.Survivors, keep)
	member := make([]interval.Interval, len(survivors))
	for i, idx := range survivors {
		member[i] = readings[idx].Interval
	}
	common, ok := interval.IntersectAll(member)
	if !ok {
		return ntp.Selection{}, ErrInconsistent
	}
	if err := applyOffset(dc, common); err != nil {
		return ntp.Selection{}, err
	}
	sel.Survivors = survivors
	sel.Interval = common
	return sel, nil
}

func usableOffsets(ms []Measurement) []interval.Interval {
	var ivs []interval.Interval
	for _, m := range ms {
		if m.Unsynchronized {
			continue
		}
		ivs = append(ivs, m.OffsetInterval())
	}
	return ivs
}

func applyOffset(dc *DisciplinedClock, common interval.Interval) error {
	offset := time.Duration(common.Midpoint() * float64(time.Second))
	maxErr := time.Duration(common.HalfWidth() * float64(time.Second))
	return dc.Adjust(offset, maxErr)
}

// QueryBurst queries addr up to k times back-to-back and returns the
// measurement with the smallest round trip. A delay spike can only widen
// an offset interval (the requester charges the whole round trip to the
// leading edge), so the fastest exchange of a burst carries the tightest
// honest interval — the measurement filter of the [Mills 81] lineage the
// paper cites for clock measurement. Individual attempts may fail; an
// error is returned only when every attempt does.
func (c *Client) QueryBurst(addr string, k int) (Measurement, error) {
	if k < 1 {
		k = 1
	}
	var (
		best    Measurement
		haveOne bool
		errs    []error
	)
	for i := 0; i < k; i++ {
		m, err := c.Query(addr)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if !haveOne || m.RTT < best.RTT {
			best = m
			haveOne = true
		}
	}
	if !haveOne {
		return Measurement{}, fmt.Errorf("udptime: burst to %q failed: %w", addr, errors.Join(errs...))
	}
	return best, nil
}

// QueryManyBurst queries every address concurrently, each with a burst of
// k attempts, keeping the minimum-RTT measurement per server.
func (c *Client) QueryManyBurst(addrs []string, k int) ([]Measurement, error) {
	type result struct {
		m   Measurement
		err error
	}
	results := make([]result, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := c.QueryBurst(addr, k)
			results[i] = result{m: m, err: err}
		}()
	}
	wg.Wait()

	var ms []Measurement
	var errs []error
	for _, r := range results {
		if r.err != nil {
			errs = append(errs, r.err)
			continue
		}
		ms = append(ms, r.m)
	}
	return ms, errors.Join(errs...)
}
