package udptime

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"disttime/internal/obs"
	"disttime/internal/wire"
)

// LoadConfig configures a closed-loop load run against a live server.
type LoadConfig struct {
	// Addr is the server address ("host:port").
	Addr string
	// Conns is the number of concurrent client sockets (default 1).
	Conns int
	// Window is the number of in-flight requests per connection — the
	// closed-loop concurrency (default 32). A new request is issued only
	// when an outstanding one completes. Values above MaxWindow are
	// rejected: the window slot rides in the request ID's low bits, and a
	// wider window would alias two in-flight slots onto one bit pattern
	// and misattribute their replies.
	Window int
	// Batch is the I/O batch size per connection (default 32).
	Batch int
	// Rate caps the total request rate across all connections, in
	// requests per second; zero means unlimited (pure closed loop).
	Rate float64
	// Duration bounds the run (default one second when MaxRequests is
	// also zero).
	Duration time.Duration
	// MaxRequests, when nonzero, stops the run after that many requests
	// have been issued in total — the fixed-work mode the benchmarks
	// use so ns/op is comparable across serving paths.
	MaxRequests uint64
	// Timeout is the stall timeout: a window with no reply for this
	// long is declared timed out and re-armed (default one second).
	Timeout time.Duration
	// Registry resolves the run's metrics: request/reply/timeout/stray
	// counters and the timeload_latency_seconds HDR histogram the
	// percentiles are computed from. Nil uses a private registry.
	Registry *obs.Registry
}

// LoadResult summarizes a load run.
type LoadResult struct {
	Sent     uint64
	Received uint64
	Timeouts uint64
	Strays   uint64
	Errors   uint64
	Elapsed  time.Duration
	// QPS is completed requests per second of elapsed wall time.
	QPS float64
	// Latency percentiles (upper bounds from the HDR histogram).
	P50, P90, P99, P999 time.Duration
}

// MaxWindow is the largest per-connection Window RunLoad accepts. Reply
// routing embeds the window slot in the request ID's low ten bits
// (slotMask in runConn), so this is a wire-format constant, not a tuning
// default: a window of MaxWindow+1 would give two slots the same low
// bits and a reply for one would complete (and time) the other.
const MaxWindow = 1024

// loadGen is the shared state of one RunLoad invocation.
type loadGen struct {
	cfg    LoadConfig
	raddr  *net.UDPAddr
	end    time.Time
	budget atomic.Uint64 // requests issued, bounded by cfg.MaxRequests

	sent, received, timeouts, strays, errs atomic.Uint64

	latency *obs.LogHistogram
	reqs    *obs.Counter
	replies *obs.Counter
	tmo     *obs.Counter
	stray   *obs.Counter
}

// RunLoad drives a closed-loop load run: Conns sockets each keep Window
// requests in flight, batching sends and receives, until Duration
// elapses or MaxRequests have been issued. Latencies are recorded into
// the registry's timeload_latency_seconds histogram; the returned
// result carries throughput and the p50/p90/p99/p999 upper bounds.
func RunLoad(cfg LoadConfig) (LoadResult, error) {
	if cfg.Addr == "" {
		return LoadResult{}, errors.New("udptime: load: empty server address")
	}
	raddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return LoadResult{}, fmt.Errorf("udptime: load: resolve %q: %w", cfg.Addr, err)
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.Window > MaxWindow {
		// Refuse rather than clamp: a silently narrowed window changes the
		// measured concurrency, which is the one knob a load run is about.
		return LoadResult{}, fmt.Errorf("udptime: load: window %d exceeds MaxWindow %d (slot bits in the request ID)",
			cfg.Window, MaxWindow)
	}
	cfg.Batch = clampBatch(cfg.Batch)
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	if cfg.Duration <= 0 {
		if cfg.MaxRequests > 0 {
			cfg.Duration = 30 * time.Second // safety bound in fixed-work mode
		} else {
			cfg.Duration = time.Second
		}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	g := &loadGen{
		cfg:     cfg,
		raddr:   raddr,
		latency: reg.LogHistogram("timeload_latency_seconds"),
		reqs:    reg.Counter("timeload_requests_total"),
		replies: reg.Counter("timeload_replies_total"),
		tmo:     reg.Counter("timeload_timeouts_total"),
		stray:   reg.Counter("timeload_strays_total"),
	}

	start := time.Now()
	g.end = start.Add(cfg.Duration)
	var wg sync.WaitGroup
	connErrs := make([]error, cfg.Conns)
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			connErrs[i] = g.runConn()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := LoadResult{
		Sent:     g.sent.Load(),
		Received: g.received.Load(),
		Timeouts: g.timeouts.Load(),
		Strays:   g.strays.Load(),
		Errors:   g.errs.Load(),
		Elapsed:  elapsed,
		P50:      secondsToDuration(g.latency.Quantile(0.50)),
		P90:      secondsToDuration(g.latency.Quantile(0.90)),
		P99:      secondsToDuration(g.latency.Quantile(0.99)),
		P999:     secondsToDuration(g.latency.Quantile(0.999)),
	}
	if elapsed > 0 {
		res.QPS = float64(res.Received) / elapsed.Seconds()
	}
	return res, errors.Join(connErrs...)
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// reserve claims up to want requests from the global budget, returning
// how many may actually be issued.
func (g *loadGen) reserve(want int) int {
	if g.cfg.MaxRequests == 0 {
		return want
	}
	got := g.budget.Add(uint64(want))
	if got <= g.cfg.MaxRequests {
		return want
	}
	over := got - g.cfg.MaxRequests
	if over >= uint64(want) {
		return 0
	}
	return want - int(over)
}

// runConn is one connection's closed loop.
func (g *loadGen) runConn() error {
	conn, err := net.DialUDP("udp", nil, g.raddr)
	if err != nil {
		g.errs.Add(1)
		return fmt.Errorf("udptime: load: dial %v: %w", g.raddr, err)
	}
	_ = conn.SetReadBuffer(1 << 20)
	_ = conn.SetWriteBuffer(1 << 20)
	// Requests are always exactly RequestSize; a connected socket has a
	// single peer, so whole windows can leave as GSO super-datagrams.
	bc, err := newBatchConn(conn, g.cfg.Batch, true, wire.RequestSize)
	if err != nil {
		conn.Close()
		g.errs.Add(1)
		return fmt.Errorf("udptime: load: raw conn: %w", err)
	}
	defer bc.Close()
	bt := bc.Batch()

	w := g.cfg.Window
	rng := newReqIDRNG()
	ids := make([]uint64, w)
	sentAt := make([]time.Time, w)
	inflight := make([]bool, w)
	free := make([]int, w) // stack of free window slots
	for i := range free {
		free[i] = w - 1 - i
	}
	nFree, nInflight := w, 0

	// slotMask embeds the window slot in the request ID's low bits so a
	// reply resolves its slot without a map lookup; the remaining 54
	// random bits still defeat off-path spoofing. RunLoad rejects
	// Window > MaxWindow, so slots fit the mask exactly.
	const slotMask = MaxWindow - 1

	perConnRate := g.cfg.Rate / float64(g.cfg.Conns)
	var issued float64
	connStart := time.Now()

	launch := func() error {
		for nFree > 0 {
			want := nFree
			if want > g.cfg.Batch {
				want = g.cfg.Batch
			}
			if perConnRate > 0 {
				allowance := perConnRate*time.Since(connStart).Seconds() - issued
				if allowance < 1 {
					break
				}
				if float64(want) > allowance {
					want = int(allowance)
				}
			}
			want = g.reserve(want)
			if want == 0 {
				break
			}
			for j := 0; j < want; j++ {
				slot := free[nFree-1]
				nFree--
				nInflight++
				id := (rng.Uint64() &^ uint64(slotMask)) | uint64(slot)
				ids[slot] = id
				inflight[slot] = true
				sentAt[slot] = time.Now()
				bt.send[j] = wire.AppendRequest(bt.send[j][:0], wire.Request{ReqID: id})
			}
			if err := bc.Send(want); err != nil {
				return err
			}
			g.sent.Add(uint64(want))
			g.reqs.Add(uint64(want))
			issued += float64(want)
		}
		return nil
	}

	for {
		if err := launch(); err != nil {
			if isClosedErr(err) {
				return nil
			}
			g.errs.Add(1)
			return err
		}
		if nInflight == 0 {
			// Nothing outstanding: done, or pacing/budget idle.
			if time.Now().After(g.end) || (g.cfg.MaxRequests > 0 && g.budget.Load() >= g.cfg.MaxRequests) {
				return nil
			}
			if perConnRate > 0 {
				time.Sleep(time.Duration(float64(time.Second) / perConnRate))
			}
			continue
		}
		deadline := time.Now().Add(g.cfg.Timeout)
		if hard := g.end.Add(g.cfg.Timeout); deadline.After(hard) {
			deadline = hard
		}
		_ = bc.SetReadDeadline(deadline)
		n, err := bc.Recv()
		if err != nil {
			if isClosedErr(err) {
				return nil
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				// Declare the whole outstanding window lost and re-arm;
				// late replies will be counted as strays.
				g.timeouts.Add(uint64(nInflight))
				g.tmo.Add(uint64(nInflight))
				for slot := range inflight {
					if inflight[slot] {
						inflight[slot] = false
						free[nFree] = slot
						nFree++
						nInflight--
					}
				}
				if time.Now().After(g.end) {
					return nil
				}
				continue
			}
			g.errs.Add(1)
			return fmt.Errorf("udptime: load: recv: %w", err)
		}
		completed := 0
		for i := 0; i < n; i++ {
			resp, err := wire.ParseResponse(bt.recv[i])
			if err != nil {
				g.strays.Add(1)
				g.stray.Inc()
				continue
			}
			slot := int(resp.ReqID & slotMask)
			if slot >= w || !inflight[slot] || ids[slot] != resp.ReqID {
				g.strays.Add(1)
				g.stray.Inc()
				continue
			}
			g.latency.Observe(time.Since(sentAt[slot]).Seconds())
			inflight[slot] = false
			free[nFree] = slot
			nFree++
			nInflight--
			completed++
		}
		if completed > 0 {
			g.received.Add(uint64(completed))
			g.replies.Add(uint64(completed))
		}
		if time.Now().After(g.end) && nInflight == 0 {
			return nil
		}
		if time.Now().After(g.end) {
			// Stop launching; drain the remaining window briefly.
			nFree = 0
		}
	}
}
