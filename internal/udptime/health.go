package udptime

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"disttime/internal/obs"
)

// serverObsOption attaches a metrics registry to a Server.
type serverObsOption struct{ reg *obs.Registry }

func (o serverObsOption) applyServer(s *Server) {
	s.reg = o.reg
	if o.reg != nil {
		s.obsRequests = o.reg.Counter("udptime_server_requests_total")
		s.obsMalformed = o.reg.Counter("udptime_server_malformed_total")
		s.obsSendErrs = o.reg.Counter("udptime_server_send_errors_total")
	}
}

// WithServerObservability resolves the server's request, malformed-
// datagram, and send-error counters in reg, and makes reg the registry
// the health listener's /metrics endpoint exposes. The registry may be
// shared with clients and syncers in the same process.
func WithServerObservability(reg *obs.Registry) ServerOption {
	return serverObsOption{reg: reg}
}

// serverHealthOption arms a health listener on a Server.
type serverHealthOption struct{ addr string }

func (o serverHealthOption) applyServer(s *Server) { s.healthAddr = o.addr }

// WithHealthListener starts an HTTP health listener on addr (e.g.
// "127.0.0.1:0") alongside the UDP service:
//
//	/healthz       liveness plus request counters, as JSON
//	/metrics       Prometheus text exposition of the server's registry
//	/debug/pprof/  the standard profiling endpoints
//
// The handlers are registered on a private mux — nothing touches
// http.DefaultServeMux, so embedding applications keep control of their
// own handler space. The listener shuts down with Close. Without
// WithServerObservability the server creates a private registry so
// /metrics still reports its own counters.
func WithHealthListener(addr string) ServerOption {
	return serverHealthOption{addr: addr}
}

// startHealth binds and serves the health listener. Called from
// NewServer after options are applied.
func (s *Server) startHealth() error {
	if s.healthAddr == "" {
		return nil
	}
	if s.reg == nil {
		serverObsOption{reg: obs.NewRegistry()}.applyServer(s)
	}
	ln, err := net.Listen("tcp", s.healthAddr)
	if err != nil {
		return fmt.Errorf("udptime: health listen %q: %w", s.healthAddr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.healthLn = ln
	s.health = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.health.Serve(ln) }()
	return nil
}

// HealthAddr returns the health listener's bound address, or nil when no
// health listener was configured.
func (s *Server) HealthAddr() net.Addr {
	if s.healthLn == nil {
		return nil
	}
	return s.healthLn.Addr()
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","server_id":%d,"requests":%d,"malformed":%d}`+"\n",
		s.id, s.requests.Load(), s.errsSeen.Load())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// closeHealth tears the health listener down; nil-safe.
func (s *Server) closeHealth() {
	if s.health != nil {
		_ = s.health.Close()
	}
}
