package udptime

import (
	"sync/atomic"

	"disttime/internal/obs"
	"disttime/internal/wire"
)

// responder is the allocation-free request→response transform at the
// core of the batched serving path: parse a request slot, read the
// (cached) clock, encode the reply into the slot's retained send
// buffer. One responder is shared by all shards of a BatchServer; its
// counters are atomic and bumped once per batch, not once per packet.
type responder struct {
	id  uint64
	src ClockSource

	served    atomic.Uint64
	malformed atomic.Uint64

	obsRequests  *obs.Counter
	obsMalformed *obs.Counter
}

// respond fills bt.send[i] for every well-formed request in
// bt.recv[0:n] and returns how many replies it prepared. Malformed
// datagrams (including advertise messages — the batched path is
// deliberately pre-membership, exactly like a legacy server without an
// advertise handler) leave their slot empty and are counted.
//
//lint:noalloc BenchmarkServeBatch
func (r *responder) respond(bt *ioBatch, n int) int {
	served := 0
	var bad uint64
	for i := 0; i < n; i++ {
		bt.send[i] = bt.send[i][:0]
		req, err := wire.ParseRequest(bt.recv[i])
		if err != nil {
			bad++
			continue
		}
		c, maxErr, synced := r.src.Now()
		out, err := wire.AppendResponse(bt.send[i], wire.Response{
			ReqID:          req.ReqID,
			ServerID:       r.id,
			Clock:          c,
			MaxError:       maxErr,
			Unsynchronized: !synced,
		})
		if err != nil {
			bad++
			continue
		}
		bt.send[i] = out
		served++
	}
	if served > 0 {
		r.served.Add(uint64(served))
		r.obsRequests.Add(uint64(served))
	}
	if bad > 0 {
		r.malformed.Add(bad)
		r.obsMalformed.Add(bad)
	}
	return served
}

// NewServeBatchBench builds a detached batch pipeline — tick cache over
// a fixed reading, responder, one preassembled batch of well-formed
// requests — and returns a pump that pushes the whole batch through the
// fast path once, returning the number of replies prepared. It exists
// for the repo-level BenchmarkServeBatch, which pins the pipeline at
// zero allocations per batch; the cache is not auto-refreshed so the
// measurement sees only the serving path.
func NewServeBatchBench(batch int) func() int {
	batch = clampBatch(batch)
	src, err := NewSystemClock(0, 50)
	if err != nil {
		panic(err)
	}
	tc := newTickCacheStopped(src, 0, 50)
	r := &responder{id: 1, src: tc}
	bt, rbufs := newIOBatch(batch)
	for i := range rbufs {
		req := wire.AppendRequest(rbufs[i][:0], wire.Request{ReqID: uint64(i) + 1})
		bt.recv[i] = req
	}
	return func() int { return r.respond(&bt, batch) }
}
