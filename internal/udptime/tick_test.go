package udptime

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"
)

// steppedSource is a hand-driven clock for deterministic cache tests:
// each call to set publishes a new reading.
type steppedSource struct {
	mu     sync.Mutex
	c      time.Time
	e      time.Duration
	synced bool
}

func (s *steppedSource) set(c time.Time, e time.Duration, synced bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c, s.e, s.synced = c, e, synced
}

func (s *steppedSource) Now() (time.Time, time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c, s.e, s.synced
}

// TestTickCacheProperty drives a stopped cache through randomized
// refresh rounds and checks the two properties DESIGN.md §16 claims:
//
//  1. at each tick boundary the cached reading equals a fresh read of
//     the source plus exactly one tick's widening, and
//  2. within a tick the reading is frozen — E never decreases (or
//     changes at all) between refreshes.
func TestTickCacheProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x71c4, 0xcafe))
	const tick = 10 * time.Millisecond
	const driftPPM = 100.0
	widen := tickWiden(tick, driftPPM)
	if widen <= tick {
		t.Fatalf("widening %v must exceed the tick %v for a positive drift bound", widen, tick)
	}

	src := &steppedSource{}
	base := time.Unix(0, 1_700_000_000_000_000_000)
	src.set(base, time.Millisecond, true)
	tc := newTickCacheStopped(src, tick, driftPPM)
	defer tc.Stop()
	if got := tc.Widen(); got != widen {
		t.Fatalf("Widen() = %v, want %v", got, widen)
	}

	for round := 0; round < 200; round++ {
		// A random fresh reading, sometimes unsynchronized, sometimes
		// with a negative error (a broken source the cache must clamp).
		c := base.Add(time.Duration(rng.Int64N(int64(time.Hour))))
		e := time.Duration(rng.Int64N(int64(time.Second)))
		if rng.IntN(20) == 0 {
			e = -e
		}
		synced := rng.IntN(10) != 0
		src.set(c, e, synced)
		tc.refresh()

		wantE := e
		if wantE < 0 {
			wantE = 0
		}
		wantE += widen

		// Property 1: boundary reading = fresh read + exactly one widening.
		gotC, gotE, gotSynced := tc.Now()
		if !gotC.Equal(c) || gotE != wantE || gotSynced != synced {
			t.Fatalf("round %d: cached <%v, %v, %v>, want <%v, %v, %v>",
				round, gotC, gotE, gotSynced, c, wantE, synced)
		}

		// Property 2: the reading is frozen between refreshes — repeated
		// reads are identical, so E cannot decrease within a tick even as
		// the source moves underneath.
		src.set(c.Add(time.Minute), e/2+time.Millisecond, !synced)
		for i := 0; i < 5; i++ {
			c2, e2, s2 := tc.Now()
			if !c2.Equal(gotC) || e2 != gotE || s2 != gotSynced {
				t.Fatalf("round %d read %d: reading moved within a tick: <%v, %v, %v> -> <%v, %v, %v>",
					round, i, gotC, gotE, gotSynced, c2, e2, s2)
			}
		}
	}
}

// TestTickCacheLive sanity-checks the running refresher: the cached
// reading tracks a live SystemClock (staying within a generous staleness
// bound), and Stop is idempotent and leaves the last reading readable.
func TestTickCacheLive(t *testing.T) {
	src, err := NewSystemClock(time.Millisecond, 50)
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTickCache(src, time.Millisecond, 50)
	time.Sleep(20 * time.Millisecond)
	c, e, synced := tc.Now()
	fresh, freshE, _ := src.Now()
	if age := fresh.Sub(c); age < 0 || age > 250*time.Millisecond {
		t.Fatalf("cached clock is %v old, want within (0, 250ms]", age)
	}
	if e < freshE {
		// The widened cached error can only exceed a fresh error taken
		// later within the same tick by construction; a smaller value
		// means the widening went missing.
		t.Fatalf("cached error %v below fresh error %v", e, freshE)
	}
	if !synced {
		t.Fatal("system clock source must report synchronized")
	}
	tc.Stop()
	tc.Stop() // idempotent
	if c2, _, _ := tc.Now(); c2.IsZero() {
		t.Fatal("last reading must remain readable after Stop")
	}
}
