package udptime

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// steppedSource is a hand-driven clock for deterministic cache tests:
// each call to set publishes a new reading.
type steppedSource struct {
	mu     sync.Mutex
	c      time.Time
	e      time.Duration
	synced bool
}

func (s *steppedSource) set(c time.Time, e time.Duration, synced bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c, s.e, s.synced = c, e, synced
}

func (s *steppedSource) Now() (time.Time, time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c, s.e, s.synced
}

// TestTickCacheProperty drives a stopped cache through randomized
// refresh rounds and checks the two properties DESIGN.md §16 claims:
//
//  1. at each tick boundary the cached reading equals a fresh read of
//     the source plus exactly one tick's widening, and
//  2. within a tick the reading is frozen — E never decreases (or
//     changes at all) between refreshes.
func TestTickCacheProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x71c4, 0xcafe))
	const tick = 10 * time.Millisecond
	const driftPPM = 100.0
	widen := tickWiden(tick, driftPPM)
	if widen <= tick {
		t.Fatalf("widening %v must exceed the tick %v for a positive drift bound", widen, tick)
	}

	src := &steppedSource{}
	base := time.Unix(0, 1_700_000_000_000_000_000)
	src.set(base, time.Millisecond, true)
	tc := newTickCacheStopped(src, tick, driftPPM)
	defer tc.Stop()
	if got := tc.Widen(); got != widen {
		t.Fatalf("Widen() = %v, want %v", got, widen)
	}

	for round := 0; round < 200; round++ {
		// A random fresh reading, sometimes unsynchronized, sometimes
		// with a negative error (a broken source the cache must clamp).
		c := base.Add(time.Duration(rng.Int64N(int64(time.Hour))))
		e := time.Duration(rng.Int64N(int64(time.Second)))
		if rng.IntN(20) == 0 {
			e = -e
		}
		synced := rng.IntN(10) != 0
		src.set(c, e, synced)
		tc.refresh()

		wantE := e
		if wantE < 0 {
			wantE = 0
		}
		wantE += widen

		// Property 1: boundary reading = fresh read + exactly one widening.
		gotC, gotE, gotSynced := tc.Now()
		if !gotC.Equal(c) || gotE != wantE || gotSynced != synced {
			t.Fatalf("round %d: cached <%v, %v, %v>, want <%v, %v, %v>",
				round, gotC, gotE, gotSynced, c, wantE, synced)
		}
		// Corollary the serving path depends on: the boundary reply is
		// never narrower than a fresh read — widening only adds, and the
		// negative-error clamp can only raise the bound further.
		if _, freshE, _ := src.Now(); gotE < freshE {
			t.Fatalf("round %d: cached error %v narrower than fresh %v", round, gotE, freshE)
		}

		// Property 2: the reading is frozen between refreshes — repeated
		// reads are identical, so E cannot decrease within a tick even as
		// the source moves underneath.
		src.set(c.Add(time.Minute), e/2+time.Millisecond, !synced)
		for i := 0; i < 5; i++ {
			c2, e2, s2 := tc.Now()
			if !c2.Equal(gotC) || e2 != gotE || s2 != gotSynced {
				t.Fatalf("round %d read %d: reading moved within a tick: <%v, %v, %v> -> <%v, %v, %v>",
					round, i, gotC, gotE, gotSynced, c2, e2, s2)
			}
		}
	}
}

// TestTickCacheBoundaryConcurrent pins the tick-boundary race: readers
// hammer Now while refreshes publish new snapshots underneath them. A
// reply served exactly at a boundary must carry either the old widened
// reading or the new one, whole — never a torn <C, E, synced> mix of
// the two, never an E narrower than the fresh source error behind the
// snapshot, and never a snapshot older than one already observed. The
// round index rides in C, so every observed triple is checkable against
// the pre-published table. This test is part of the -race pass.
func TestTickCacheBoundaryConcurrent(t *testing.T) {
	const tick = 5 * time.Millisecond
	const driftPPM = 200.0
	const rounds = 400
	widen := tickWiden(tick, driftPPM)

	// Pre-publish every round's reading so readers can verify without
	// coordinating with the writer.
	type snap struct {
		e      time.Duration // widened error the cache must serve
		fresh  time.Duration // the source's own (un-widened) error
		synced bool
	}
	rng := rand.New(rand.NewPCG(0xb0a2, 0x17))
	base := time.Unix(0, 1_600_000_000_000_000_000)
	cs := make([]time.Time, rounds)
	es := make([]time.Duration, rounds)
	syncs := make([]bool, rounds)
	table := make(map[int64]snap, rounds)
	for i := range cs {
		cs[i] = base.Add(time.Duration(i) * time.Second)
		es[i] = time.Duration(rng.Int64N(int64(time.Second)))
		syncs[i] = rng.IntN(4) != 0
		table[cs[i].UnixNano()] = snap{e: es[i] + widen, fresh: es[i], synced: syncs[i]}
	}

	src := &steppedSource{}
	src.set(cs[0], es[0], syncs[0])
	tc := newTickCacheStopped(src, tick, driftPPM)
	defer tc.Stop()

	const readers = 4
	var stop atomic.Bool
	errs := make([]error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			last := int64(-1)
			for !stop.Load() {
				c, e, synced := tc.Now()
				want, ok := table[c.UnixNano()]
				if !ok {
					errs[r] = fmt.Errorf("reader %d: unknown snapshot clock %v", r, c)
					return
				}
				if e != want.e || synced != want.synced {
					errs[r] = fmt.Errorf("reader %d: torn snapshot <%v, %v, %v>, want <%v, %v, %v>",
						r, c, e, synced, c, want.e, want.synced)
					return
				}
				if e < want.fresh {
					errs[r] = fmt.Errorf("reader %d: error %v narrower than fresh %v", r, e, want.fresh)
					return
				}
				round := int64(c.Sub(base) / time.Second)
				if round < last {
					errs[r] = fmt.Errorf("reader %d: snapshot went backward, round %d after %d", r, round, last)
					return
				}
				last = round
			}
		}(r)
	}
	for i := 1; i < rounds; i++ {
		src.set(cs[i], es[i], syncs[i])
		tc.refresh()
	}
	stop.Store(true)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestTickCacheLive sanity-checks the running refresher: the cached
// reading tracks a live SystemClock (staying within a generous staleness
// bound), and Stop is idempotent and leaves the last reading readable.
func TestTickCacheLive(t *testing.T) {
	src, err := NewSystemClock(time.Millisecond, 50)
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTickCache(src, time.Millisecond, 50)
	time.Sleep(20 * time.Millisecond)
	c, e, synced := tc.Now()
	fresh, freshE, _ := src.Now()
	if age := fresh.Sub(c); age < 0 || age > 250*time.Millisecond {
		t.Fatalf("cached clock is %v old, want within (0, 250ms]", age)
	}
	if e < freshE {
		// The widened cached error can only exceed a fresh error taken
		// later within the same tick by construction; a smaller value
		// means the widening went missing.
		t.Fatalf("cached error %v below fresh error %v", e, freshE)
	}
	if !synced {
		t.Fatal("system clock source must report synchronized")
	}
	tc.Stop()
	tc.Stop() // idempotent
	if c2, _, _ := tc.Now(); c2.IsZero() {
		t.Fatal("last reading must remain readable after Stop")
	}
}
