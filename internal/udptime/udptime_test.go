package udptime

import (
	"errors"
	"math"
	"net"
	"runtime"
	"testing"
	"time"

	"disttime/internal/wire"
)

// shiftedClock is a test ClockSource reading the system clock displaced by
// a fixed offset.
type shiftedClock struct {
	offset time.Duration
	err    time.Duration
	synced bool
}

func (s shiftedClock) Now() (time.Time, time.Duration, bool) {
	return time.Now().Add(s.offset), s.err, s.synced
}

func startServer(t *testing.T, id uint64, src ClockSource) *Server {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", id, src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestSystemClockValidation(t *testing.T) {
	if _, err := NewSystemClock(-1, 0); err == nil {
		t.Error("negative initial error accepted")
	}
	if _, err := NewSystemClock(0, -1); err == nil {
		t.Error("negative drift accepted")
	}
}

func TestSystemClockErrorGrows(t *testing.T) {
	c, err := NewSystemClock(10*time.Millisecond, 1e6) // absurd ppm for fast test
	if err != nil {
		t.Fatal(err)
	}
	_, e0, synced := c.Now()
	if !synced {
		t.Error("system clock should be synchronized")
	}
	time.Sleep(20 * time.Millisecond)
	_, e1, _ := c.Now()
	if e1 <= e0 {
		t.Errorf("error did not grow: %v -> %v", e0, e1)
	}
}

func TestDisciplinedClockLifecycle(t *testing.T) {
	dc, err := NewDisciplinedClock(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, synced := dc.Now(); synced {
		t.Error("fresh disciplined clock claims synchronization")
	}
	target := time.Now().Add(5 * time.Second)
	if err := dc.Set(target, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	now, e, synced := dc.Now()
	if !synced {
		t.Error("not synchronized after Set")
	}
	if e < 50*time.Millisecond {
		t.Errorf("error %v below inherited", e)
	}
	if d := now.Sub(target); d < 0 || d > time.Second {
		t.Errorf("clock value off by %v", d)
	}
	if dc.Sets() != 1 {
		t.Errorf("Sets = %d", dc.Sets())
	}
	if err := dc.Set(target, -1); err == nil {
		t.Error("negative error accepted")
	}
}

func TestDisciplinedClockAdjust(t *testing.T) {
	dc, err := NewDisciplinedClock(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.Adjust(2*time.Second, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	now, _, _ := dc.Now()
	if d := now.Sub(time.Now()); d < 1900*time.Millisecond || d > 2100*time.Millisecond {
		t.Errorf("offset after Adjust = %v, want ~2s", d)
	}
	if err := dc.Adjust(0, -1); err == nil {
		t.Error("negative error accepted")
	}
}

func TestDisciplinedClockValidation(t *testing.T) {
	if _, err := NewDisciplinedClock(-5); err == nil {
		t.Error("negative drift accepted")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", 1, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewServer("%%%bad", 1, shiftedClock{synced: true}); err == nil {
		t.Error("bad address accepted")
	}
}

func TestQueryRoundTrip(t *testing.T) {
	srv := startServer(t, 42, shiftedClock{err: 25 * time.Millisecond, synced: true})
	client := NewClient(2*time.Second, nil)
	m, err := client.Query(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if m.ServerID != 42 {
		t.Errorf("ServerID = %d", m.ServerID)
	}
	if m.E != 25*time.Millisecond {
		t.Errorf("E = %v", m.E)
	}
	if m.RTT <= 0 || m.RTT > time.Second {
		t.Errorf("RTT = %v", m.RTT)
	}
	if m.Unsynchronized {
		t.Error("server flagged unsynchronized")
	}
	// Offset interval must contain ~zero (same machine, same clock).
	iv := m.OffsetInterval()
	if !iv.Contains(0) {
		t.Errorf("offset interval %v excludes 0", iv)
	}
	if srv.Requests() != 1 {
		t.Errorf("Requests = %d", srv.Requests())
	}
}

func TestQueryUnsynchronizedServer(t *testing.T) {
	srv := startServer(t, 1, shiftedClock{synced: false})
	client := NewClient(2*time.Second, nil)
	m, err := client.Query(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Unsynchronized {
		t.Error("unsynchronized flag lost")
	}
}

func TestQueryTimeout(t *testing.T) {
	// A bound but silent socket: the query must time out.
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	client := NewClient(100*time.Millisecond, nil)
	if _, err := client.Query(conn.LocalAddr().String()); err == nil {
		t.Error("query to silent socket succeeded")
	}
}

func TestQueryBadAddress(t *testing.T) {
	client := NewClient(time.Second, nil)
	if _, err := client.Query("this is not an address"); err == nil {
		t.Error("bad address accepted")
	}
}

func TestServerIgnoresMalformedDatagrams(t *testing.T) {
	srv := startServer(t, 1, shiftedClock{synced: true})
	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("garbage")); err != nil {
		t.Fatal(err)
	}
	// A valid query afterwards still works.
	client := NewClient(2*time.Second, nil)
	if _, err := client.Query(srv.Addr().String()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.MalformedDatagrams() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.MalformedDatagrams() == 0 {
		t.Error("malformed datagram not counted")
	}
}

func TestServerIgnoresResponseTypeDatagram(t *testing.T) {
	srv := startServer(t, 1, shiftedClock{synced: true})
	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf, err := wire.AppendResponse(nil, wire.Response{Clock: time.Now()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.MalformedDatagrams() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Requests() != 0 {
		t.Error("response-typed datagram answered")
	}
}

func TestQueryMany(t *testing.T) {
	srv1 := startServer(t, 1, shiftedClock{err: time.Millisecond, synced: true})
	srv2 := startServer(t, 2, shiftedClock{err: time.Millisecond, synced: true})
	client := NewClient(2*time.Second, nil)
	ms, err := client.QueryMany([]string{srv1.Addr().String(), srv2.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d measurements", len(ms))
	}
}

func TestQueryManyPartialFailure(t *testing.T) {
	srv := startServer(t, 1, shiftedClock{err: time.Millisecond, synced: true})
	silent, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	client := NewClient(100*time.Millisecond, nil)
	ms, err := client.QueryMany([]string{srv.Addr().String(), silent.LocalAddr().String()})
	if err == nil {
		t.Error("expected a joined error for the silent server")
	}
	if len(ms) != 1 {
		t.Fatalf("got %d measurements, want 1", len(ms))
	}
}

func TestSyncIMDisciplinesClock(t *testing.T) {
	const shift = 3 * time.Second
	var servers []*Server
	for i := 0; i < 3; i++ {
		servers = append(servers, startServer(t, uint64(i),
			shiftedClock{offset: shift, err: 10 * time.Millisecond, synced: true}))
	}
	dc, err := NewDisciplinedClock(100)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(2*time.Second, dc)
	var addrs []string
	for _, s := range servers {
		addrs = append(addrs, s.Addr().String())
	}
	ms, err := client.QueryMany(addrs)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := SyncIM(dc, ms)
	if err != nil {
		t.Fatal(err)
	}
	if applied.Width() <= 0 {
		t.Errorf("applied interval %v has no width", applied)
	}
	now, e, synced := dc.Now()
	if !synced {
		t.Fatal("clock not synchronized after SyncIM")
	}
	offset := now.Sub(time.Now())
	if math.Abs((offset - shift).Seconds()) > 0.2 {
		t.Errorf("disciplined offset = %v, want ~%v", offset, shift)
	}
	if e <= 0 || e > time.Second {
		t.Errorf("inherited error = %v", e)
	}
}

func TestSyncIMInconsistent(t *testing.T) {
	a := startServer(t, 1, shiftedClock{offset: 0, err: time.Millisecond, synced: true})
	b := startServer(t, 2, shiftedClock{offset: time.Hour, err: time.Millisecond, synced: true})
	dc, err := NewDisciplinedClock(100)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(2*time.Second, dc)
	ms, err := client.QueryMany([]string{a.Addr().String(), b.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SyncIM(dc, ms); !errors.Is(err, ErrInconsistent) {
		t.Errorf("error = %v, want ErrInconsistent", err)
	}
}

func TestSyncIMSkipsUnsynchronized(t *testing.T) {
	srv := startServer(t, 1, shiftedClock{synced: false})
	dc, err := NewDisciplinedClock(100)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(2*time.Second, dc)
	m, err := client.Query(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SyncIM(dc, []Measurement{m}); !errors.Is(err, ErrNoMeasurements) {
		t.Errorf("error = %v, want ErrNoMeasurements", err)
	}
}

func TestSyncSelectRejectsFalseticker(t *testing.T) {
	good1 := startServer(t, 1, shiftedClock{err: 10 * time.Millisecond, synced: true})
	good2 := startServer(t, 2, shiftedClock{err: 10 * time.Millisecond, synced: true})
	liar := startServer(t, 3, shiftedClock{offset: time.Hour, err: time.Millisecond, synced: true})

	dc, err := NewDisciplinedClock(100)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(2*time.Second, dc)
	ms, err := client.QueryMany([]string{
		good1.Addr().String(), good2.Addr().String(), liar.Addr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := SyncSelect(dc, ms, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Falsetickers) != 1 {
		t.Fatalf("falsetickers = %v", sel.Falsetickers)
	}
	now, _, _ := dc.Now()
	if d := now.Sub(time.Now()); math.Abs(d.Seconds()) > 0.5 {
		t.Errorf("clock steered by falseticker: offset %v", d)
	}
}

func TestSyncSelectAllUnsynchronized(t *testing.T) {
	srv := startServer(t, 1, shiftedClock{synced: false})
	dc, err := NewDisciplinedClock(100)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(2*time.Second, dc)
	m, err := client.Query(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SyncSelect(dc, []Measurement{m}, 4); !errors.Is(err, ErrNoMeasurements) {
		t.Errorf("error = %v, want ErrNoMeasurements", err)
	}
}

func TestRepeatedSyncKeepsClockCorrect(t *testing.T) {
	// Integration: discipline a clock repeatedly against three servers and
	// verify the reported interval always contains the reference time.
	var addrs []string
	for i := 0; i < 3; i++ {
		srv := startServer(t, uint64(i), shiftedClock{err: 5 * time.Millisecond, synced: true})
		addrs = append(addrs, srv.Addr().String())
	}
	dc, err := NewDisciplinedClock(100)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(2*time.Second, dc)
	for round := 0; round < 5; round++ {
		ms, err := client.QueryMany(addrs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := SyncIM(dc, ms); err != nil {
			t.Fatal(err)
		}
		now, e, _ := dc.Now()
		truth := time.Now()
		if d := now.Sub(truth); time.Duration(math.Abs(float64(d))) > e+50*time.Millisecond {
			t.Fatalf("round %d: clock off by %v with error bound %v", round, d, e)
		}
	}
}

func TestServerCloseStopsGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	var servers []*Server
	for i := 0; i < 5; i++ {
		srv, err := NewServer("127.0.0.1:0", uint64(i), shiftedClock{synced: true})
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
	}
	for _, srv := range servers {
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Close waits for the serve loop, so the goroutine count returns to
	// baseline (allow slack for runtime helpers).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before+2 {
		t.Errorf("goroutines leaked: %d -> %d", before, got)
	}
}

func TestSyncerStopJoinsGoroutine(t *testing.T) {
	srv := startServer(t, 1, shiftedClock{err: time.Millisecond, synced: true})
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		dc, err := NewDisciplinedClock(100)
		if err != nil {
			t.Fatal(err)
		}
		syncer, err := NewSyncer(dc, SyncerConfig{
			Servers:  []string{srv.Addr().String()},
			Interval: 10 * time.Millisecond,
			Timeout:  time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		syncer.Stop()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before+2 {
		t.Errorf("goroutines leaked: %d -> %d", before, got)
	}
}

func TestClientDefaults(t *testing.T) {
	c := NewClient(0, nil)
	if got, _, _, _, _ := c.config(); got != time.Second {
		t.Errorf("default timeout = %v", got)
	}
	// A zero-value client (not built by NewClient) lazily seeds its PRNG.
	var zero Client
	if a, b := zero.nextReqID(), zero.nextReqID(); a == b {
		t.Error("req IDs not distinct")
	}
	if got := localNow(nil); got.IsZero() {
		t.Error("localNow returned zero time")
	}
}

func TestQueryManyEmpty(t *testing.T) {
	c := NewClient(time.Second, nil)
	ms, err := c.QueryMany(nil)
	if err != nil || len(ms) != 0 {
		t.Errorf("QueryMany(nil) = %v, %v", ms, err)
	}
}

func TestQueryBurstPicksMinRTT(t *testing.T) {
	srv := startServer(t, 1, shiftedClock{err: time.Millisecond, synced: true})
	client := NewClient(2*time.Second, nil)
	m, err := client.QueryBurst(srv.Addr().String(), 5)
	if err != nil {
		t.Fatal(err)
	}
	// The burst winner's RTT is no worse than a fresh single query's
	// typical RTT; mainly: it is a valid measurement.
	if m.RTT <= 0 {
		t.Errorf("RTT = %v", m.RTT)
	}
	if got := srv.Requests(); got != 5 {
		t.Errorf("server answered %d requests, want 5", got)
	}
}

func TestQueryBurstAllFail(t *testing.T) {
	silent, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	client := NewClient(50*time.Millisecond, nil)
	if _, err := client.QueryBurst(silent.LocalAddr().String(), 3); err == nil {
		t.Error("all-failed burst succeeded")
	}
}

func TestQueryBurstKClamped(t *testing.T) {
	srv := startServer(t, 1, shiftedClock{err: time.Millisecond, synced: true})
	client := NewClient(2*time.Second, nil)
	if _, err := client.QueryBurst(srv.Addr().String(), 0); err != nil {
		t.Fatal(err)
	}
	if got := srv.Requests(); got != 1 {
		t.Errorf("k=0 sent %d requests, want clamped 1", got)
	}
}

func TestQueryManyBurst(t *testing.T) {
	a := startServer(t, 1, shiftedClock{err: time.Millisecond, synced: true})
	b := startServer(t, 2, shiftedClock{err: time.Millisecond, synced: true})
	client := NewClient(2*time.Second, nil)
	ms, err := client.QueryManyBurst([]string{a.Addr().String(), b.Addr().String()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d measurements", len(ms))
	}
	if a.Requests() != 3 || b.Requests() != 3 {
		t.Errorf("requests = %d/%d, want 3/3", a.Requests(), b.Requests())
	}
}
