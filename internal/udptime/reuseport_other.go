//go:build !linux && !darwin && !freebsd && !netbsd && !openbsd && !dragonfly

package udptime

import (
	"errors"
	"net"
)

// errNoReusePort reports that this platform cannot share one UDP port
// across shard listeners; callers must fall back to a single shard.
var errNoReusePort = errors.New("udptime: SO_REUSEPORT not supported on this platform")

func listenReusePort(addr string) (*net.UDPConn, error) {
	return nil, errNoReusePort
}
