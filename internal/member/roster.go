package member

import (
	"cmp"
	"sort"
)

// Change describes one roster transition produced by a merge or a local
// accusation, for timelines and metrics.
type Change[ID cmp.Ordered] struct {
	// ID is the member whose row changed.
	ID ID
	// From is the previous status (zero when the member was unknown).
	From Status
	// To is the new status.
	To Status
	// Gen is the generation the new observation carries.
	Gen uint64
	// Joined reports that the member was previously unknown.
	Joined bool
}

// Roster is one server's membership view: a set of entries merged under
// the Supersedes precedence, with deterministic sorted iteration and a
// version counter that bumps on every material change. The zero value
// is unusable; construct with New.
//
// A Roster is not safe for concurrent use; the simulated substrate is
// single-threaded and the UDP substrate guards it with its own mutex.
type Roster[ID cmp.Ordered] struct {
	self    ID
	entries map[ID]Entry[ID]
	order   []ID // sorted cache of entry IDs, rebuilt on add/remove
	version uint64
}

// New returns a roster whose only member is self, alive at generation
// gen with sequence zero.
func New[ID cmp.Ordered](self ID, gen uint64, delta float64) *Roster[ID] {
	r := &Roster[ID]{
		self:    self,
		entries: make(map[ID]Entry[ID]),
	}
	r.entries[self] = Entry[ID]{ID: self, Gen: gen, Status: Alive, Delta: delta}
	r.rebuildOrder()
	return r
}

// SelfID returns the roster owner's ID.
func (r *Roster[ID]) SelfID() ID { return r.self }

// Self returns the owner's current entry.
func (r *Roster[ID]) Self() Entry[ID] { return r.entries[r.self] }

// Version returns a counter that bumps on every material change; equal
// versions imply an unchanged roster, so pollers can skip work.
func (r *Roster[ID]) Version() uint64 { return r.version }

// Len returns the number of known members, including the owner and
// departed ones.
func (r *Roster[ID]) Len() int { return len(r.entries) }

// AliveCount returns how many known members are currently Alive.
func (r *Roster[ID]) AliveCount() int {
	n := 0
	for _, id := range r.order {
		if r.entries[id].Status == Alive {
			n++
		}
	}
	return n
}

// Get returns the entry for id.
func (r *Roster[ID]) Get(id ID) (Entry[ID], bool) {
	e, ok := r.entries[id]
	return e, ok
}

// rebuildOrder refreshes the sorted iteration cache. Iterating the
// sorted cache — never the map — is what keeps every roster consumer
// (gossip digests, selection, timelines) byte-deterministic.
func (r *Roster[ID]) rebuildOrder() {
	ids := r.order[:0]
	for id := range r.entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	r.order = ids
}

// AppendMembers appends every entry in increasing ID order to dst and
// returns the extended slice (allocation-free when dst has capacity).
func (r *Roster[ID]) AppendMembers(dst []Entry[ID]) []Entry[ID] {
	for _, id := range r.order {
		dst = append(dst, r.entries[id])
	}
	return dst
}

// Members returns every entry in increasing ID order.
func (r *Roster[ID]) Members() []Entry[ID] {
	return r.AppendMembers(make([]Entry[ID], 0, len(r.entries)))
}

// Advertise bumps the owner's heartbeat sequence, refreshes its
// advertised <C, E> quality, marks it Alive, and returns the new self
// entry — the payload of the next outgoing gossip message.
func (r *Roster[ID]) Advertise(c, e float64) Entry[ID] {
	s := r.entries[r.self]
	s.Seq++
	s.Status = Alive
	s.C, s.E = c, e
	r.entries[r.self] = s
	r.version++
	return s
}

// Leave marks the owner as voluntarily departed at a fresh sequence and
// returns the entry to announce. The departure supersedes any
// in-flight advertisement of the same generation.
func (r *Roster[ID]) Leave() Entry[ID] {
	s := r.entries[r.self]
	s.Seq++
	s.Status = Left
	r.entries[r.self] = s
	r.version++
	return s
}

// Rejoin starts the owner's next incarnation: the generation bumps (so
// the fresh advertisement supersedes every observation from the
// previous life, including an eviction), the sequence resets, and the
// advertised quality is refreshed.
func (r *Roster[ID]) Rejoin(c, e float64) Entry[ID] {
	s := r.entries[r.self]
	s.Gen++
	s.Seq = 0
	s.Status = Alive
	s.C, s.E = c, e
	r.entries[r.self] = s
	r.version++
	return s
}

// Upsert merges one observed entry under the Supersedes precedence.
// It reports the transition (valid only when changed is true). Stale
// observations — including stale observations about the owner itself —
// are ignored; a fresher claim about the owner (e.g. an eviction
// accusation that won) is adopted like any other entry, and the owner
// notices via the returned change and can Rejoin.
func (r *Roster[ID]) Upsert(e Entry[ID]) (ch Change[ID], changed bool) {
	old, known := r.entries[e.ID]
	if known && !e.Supersedes(old) {
		return Change[ID]{}, false
	}
	r.entries[e.ID] = e
	if !known {
		r.rebuildOrder()
	}
	r.version++
	return Change[ID]{ID: e.ID, From: old.Status, To: e.Status, Gen: e.Gen, Joined: !known}, true
}

// Accuse records a local failure-detector verdict about id at the
// member's currently-known (Gen, Seq): Suspect or Evicted. The
// accusation loses to any newer advertisement, so a member that was
// merely slow reinstates itself the moment it is heard again.
func (r *Roster[ID]) Accuse(id ID, verdict Status) (ch Change[ID], changed bool) {
	old, known := r.entries[id]
	if !known || id == r.self {
		return Change[ID]{}, false
	}
	if verdict <= old.Status || old.Status == Left {
		// Already at or past the verdict, or voluntarily gone.
		return Change[ID]{}, false
	}
	e := old
	e.Status = verdict
	r.entries[id] = e
	r.version++
	return Change[ID]{ID: id, From: old.Status, To: verdict, Gen: e.Gen}, true
}

// Digest appends up to max entries of the roster to dst for an outgoing
// gossip message: the owner's entry first, then the remaining members
// in a rotation that advances with the owner's heartbeat sequence, so
// successive digests cover the whole roster even when max is small.
func (r *Roster[ID]) Digest(dst []Entry[ID], max int) []Entry[ID] {
	if max <= 0 {
		return dst
	}
	self := r.entries[r.self]
	dst = append(dst, self)
	if len(r.order) <= 1 || max == 1 {
		return dst
	}
	// Rotate the start point by the heartbeat sequence.
	start := int(self.Seq % uint64(len(r.order)))
	for k := 0; k < len(r.order) && len(dst) < max; k++ {
		id := r.order[(start+k)%len(r.order)]
		if id == r.self {
			continue
		}
		dst = append(dst, r.entries[id])
	}
	return dst
}
