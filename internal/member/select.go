package member

import (
	"cmp"
	"sort"
)

// Selection policy: each synchronization round a server polls the K
// live members with the smallest advertised maximum error — the
// paper's MM idea ("adopt the neighbor with smaller maximum error")
// lifted from reply processing to topology — plus one seeded-random
// exploration slot drawn from the members *not* currently preferred
// (suspects, evictees awaiting rejoin, and live members ranked below
// K). The exploration slot is what re-discovers a recovering server:
// its advertised error is huge right after a restart, so quality
// ranking alone would never poll it again, and without being polled it
// can never advertise a better bound.

// SelectConfig tunes Select.
type SelectConfig[ID cmp.Ordered] struct {
	// K is how many quality-ranked live members to pick; defaults to 3.
	K int
	// Explore, when non-nil, supplies the exploration draw: called with
	// the number of unpreferred candidates n > 0, it must return an
	// index in [0, n). Inject a seeded rand.IntN for determinism; nil
	// disables exploration.
	Explore func(n int) int
	// Eligible, when non-nil, filters candidates before ranking: only
	// members it accepts are considered at all. The simulated substrate
	// injects link reachability here (selecting an unreachable member
	// wastes both the poll slot and the exploration draw); nil accepts
	// every member.
	Eligible func(id ID) bool
}

// Select returns the IDs to poll this round from the roster's view:
// up to K live members ranked by advertised E (ties broken by ID), plus
// at most one exploration pick from the remaining known members. The
// owner itself and voluntarily-departed members are never selected.
// The result is in ranked order with the exploration pick last.
func Select[ID cmp.Ordered](r *Roster[ID], cfg SelectConfig[ID]) []ID {
	if cfg.K <= 0 {
		cfg.K = 3
	}
	ranked := make([]Entry[ID], 0, r.Len())
	var rest []ID
	for _, e := range r.Members() {
		if e.ID == r.SelfID() || e.Status == Left {
			continue
		}
		if cfg.Eligible != nil && !cfg.Eligible(e.ID) {
			continue
		}
		if e.Status == Alive {
			ranked = append(ranked, e)
		} else {
			rest = append(rest, e.ID)
		}
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].E < ranked[j].E {
			return true
		}
		if ranked[j].E < ranked[i].E {
			return false
		}
		return ranked[i].ID < ranked[j].ID
	})
	out := make([]ID, 0, cfg.K+1)
	for i := 0; i < len(ranked) && i < cfg.K; i++ {
		out = append(out, ranked[i].ID)
	}
	// Unpreferred pool: suspects and evictees first (rest), then live
	// members ranked below K.
	for i := cfg.K; i < len(ranked); i++ {
		rest = append(rest, ranked[i].ID)
	}
	if cfg.Explore != nil && len(rest) > 0 {
		out = append(out, rest[cfg.Explore(len(rest))])
	}
	return out
}
