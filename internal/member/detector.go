package member

import (
	"cmp"
	"fmt"
	"math"
	"sort"
)

// DetectorConfig sizes the drift-aware failure detector.
//
// Every quantity is measured on the observer's local clock, which may
// run fast or slow by up to LocalDelta; the heartbeat sender paces its
// advertisements on its own clock, wrong by up to RemoteDelta. The
// detector's deadline must absorb both drifts plus one network delay
// bound, or a perfectly correct pair of servers could evict each other
// purely through the bookkeeping the paper's rule MM-1 already allows.
type DetectorConfig struct {
	// Period is the heartbeat interval, in the sender's clock seconds.
	Period float64
	// Misses is how many consecutive heartbeats may go missing before
	// suspicion; defaults to 3.
	Misses int
	// LocalDelta is the observer's own claimed drift bound (the paper's
	// delta_i): its clock accrues up to (1+LocalDelta) local seconds
	// per real second, so deadlines measured on it must be widened by
	// the same factor.
	LocalDelta float64
	// RemoteDelta bounds the sender's drift: its heartbeat period,
	// paced on its clock, stretches to at most Period/(1-RemoteDelta)
	// real seconds.
	RemoteDelta float64
	// Xi is the one-way network delay bound: consecutive heartbeats'
	// arrival spacing can stretch by one full delay bound (the previous
	// one arrived instantly, the next maximally late).
	Xi float64
}

// withDefaults fills the zero fields.
func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Misses <= 0 {
		c.Misses = 3
	}
	return c
}

// Validate rejects configurations whose deadline formula is meaningless.
// The dangerous case is RemoteDelta >= 1: the sender's heartbeat period
// Period/(1-RemoteDelta) then divides by zero or goes negative, and a
// silently computed SuspectAfter would be negative or infinite —
// immediately mass-evicting every member or never suspecting anyone,
// depending on sign. NaN drift or delay bounds are rejected for the same
// reason.
func (c DetectorConfig) Validate() error {
	c = c.withDefaults()
	if !(c.Period > 0) {
		return fmt.Errorf("member: non-positive heartbeat period %v", c.Period)
	}
	if math.IsNaN(c.LocalDelta) || math.IsNaN(c.RemoteDelta) ||
		c.LocalDelta < 0 || c.RemoteDelta < 0 || c.RemoteDelta >= 1 {
		return fmt.Errorf("member: drift bounds (local %v, remote %v) outside [0,1)",
			c.LocalDelta, c.RemoteDelta)
	}
	if math.IsNaN(c.Xi) || c.Xi < 0 {
		return fmt.Errorf("member: negative delay bound %v", c.Xi)
	}
	return nil
}

// SuspectAfter returns the local-clock silence, in seconds, after which
// a member is suspected:
//
//	(Misses * Period/(1-RemoteDelta) + Xi) * (1+LocalDelta)
//
// Derivation: between two heartbeats the sender's clock advances
// Period, which is at most Period/(1-RemoteDelta) real seconds, and
// network jitter can separate consecutive arrivals by one extra delay
// bound — so up to Misses*Period/(1-RemoteDelta) + Xi real seconds of
// silence are innocent. Over that whole real-time span the observer's
// clock accrues up to a factor (1+LocalDelta) more local seconds, so
// the Xi term is widened by the observer's drift too (dropping that
// factor would let a fast local clock falsely suspect a correct
// sender). A correct sender therefore shows fresh within this deadline
// with certainty — suspicion of a correct, connected member is
// impossible by construction, which is the property the package's
// tests assert at exactly the claimed drift bounds.
//
// A configuration Validate rejects yields +Inf: a degenerate deadline
// must fail safe (never suspect anyone) rather than return a negative or
// NaN span that would instantly evict every correct member. Callers that
// want the error instead of the clamp run Validate first, as NewDetector
// does.
func (c DetectorConfig) SuspectAfter() float64 {
	if c.Validate() != nil {
		return math.Inf(1)
	}
	c = c.withDefaults()
	return (float64(c.Misses)*c.Period/(1-c.RemoteDelta) + c.Xi) * (1 + c.LocalDelta)
}

// EvictAfter returns the local-clock silence after which a suspect is
// evicted: twice the suspicion deadline. A stopped server is thus
// evicted within a bounded, computable window — the detector's
// completeness bound, also property-tested.
func (c DetectorConfig) EvictAfter() float64 { return 2 * c.SuspectAfter() }

// FailureDetector is the behavioural contract shared by the
// drift-widened deadline Detector and the phi-accrual PhiDetector, so
// the service can select either implementation per configuration:
// record freshness evidence, drop departed members, report last contact,
// and turn silence into edge-triggered Suspect/Evicted verdicts on the
// observer's local clock.
type FailureDetector[ID cmp.Ordered] interface {
	// Observe records direct evidence of id's liveness at localNow.
	Observe(id ID, localNow float64)
	// Forget drops id's timing state.
	Forget(id ID)
	// LastHeard returns when id was last observed on the local clock.
	LastHeard(id ID) (float64, bool)
	// Check returns the members whose verdict escalated since the last
	// check, in increasing ID order.
	Check(localNow float64) []Verdict[ID]
}

// Verdict is one failure-detector decision.
type Verdict[ID cmp.Ordered] struct {
	// ID is the member judged.
	ID ID
	// Status is Suspect or Evicted.
	Status Status
	// Silence is the local-clock seconds since the member was last
	// heard, at the moment of the verdict.
	Silence float64
}

// Detector tracks per-member freshness on the observer's local clock
// and turns silence into Suspect/Evicted verdicts under the
// drift-widened deadlines. It is deliberately separate from the
// Roster: the detector holds timing state, the roster holds membership
// state, and the caller applies verdicts to the roster via Accuse.
type Detector[ID cmp.Ordered] struct {
	cfg   DetectorConfig
	heard map[ID]float64 // local-clock time of last direct freshness
	stage map[ID]Status  // last verdict issued (Alive when fresh)
}

// NewDetector returns a detector with the given deadline configuration.
func NewDetector[ID cmp.Ordered](cfg DetectorConfig) (*Detector[ID], error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector[ID]{
		cfg:   cfg,
		heard: make(map[ID]float64),
		stage: make(map[ID]Status),
	}, nil
}

// Config returns the detector's deadline configuration.
func (d *Detector[ID]) Config() DetectorConfig { return d.cfg }

// Observe records direct evidence of id's liveness at localNow (a
// heartbeat, a gossip message from it, or a protocol reply). Fresh
// evidence clears any standing suspicion.
func (d *Detector[ID]) Observe(id ID, localNow float64) {
	d.heard[id] = localNow
	d.stage[id] = Alive
}

// Forget drops id's timing state (after a voluntary departure or an
// applied eviction, so the next incarnation starts fresh).
func (d *Detector[ID]) Forget(id ID) {
	delete(d.heard, id)
	delete(d.stage, id)
}

// LastHeard returns when id was last observed on the local clock.
func (d *Detector[ID]) LastHeard(id ID) (float64, bool) {
	t, ok := d.heard[id]
	return t, ok
}

// Check compares every tracked member's silence against the deadlines
// at local-clock time localNow and returns the members whose verdict
// escalated since the last check, in increasing ID order (deterministic
// for gossip and timelines). A member silent past SuspectAfter yields
// one Suspect verdict; past EvictAfter, one Evicted verdict. Verdicts
// are edge-triggered: a member already suspected is not re-reported
// until it escalates or is observed again.
func (d *Detector[ID]) Check(localNow float64) []Verdict[ID] {
	suspectAt := d.cfg.SuspectAfter()
	evictAt := d.cfg.EvictAfter()
	ids := make([]ID, 0, len(d.heard))
	for id := range d.heard {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []Verdict[ID]
	for _, id := range ids {
		silence := localNow - d.heard[id]
		var want Status
		switch {
		case silence > evictAt:
			want = Evicted
		case silence > suspectAt:
			want = Suspect
		default:
			continue
		}
		if d.stage[id] >= want {
			continue
		}
		d.stage[id] = want
		out = append(out, Verdict[ID]{ID: id, Status: want, Silence: silence})
	}
	return out
}
