package member

import (
	"math"
	"testing"
)

// TestPhiConfigDefaults pins the documented zero-value fills.
func TestPhiConfigDefaults(t *testing.T) {
	c := PhiConfig{Period: 2}.withDefaults()
	if c.SuspectPhi != 8 || c.EvictPhi != 16 || c.Window != 32 || c.MinStdDev != 0.2 {
		t.Fatalf("defaults = %+v, want suspect 8, evict 16, window 32, minstddev 0.2", c)
	}
	// Explicit values survive.
	c = PhiConfig{Period: 1, SuspectPhi: 3, EvictPhi: 5, Window: 8, MinStdDev: 0.5}.withDefaults()
	if c.SuspectPhi != 3 || c.EvictPhi != 5 || c.Window != 8 || c.MinStdDev != 0.5 {
		t.Fatalf("explicit config rewritten: %+v", c)
	}
}

// TestPhiConfigValidate is the degenerate-config table: every config
// the phi formula cannot score must be rejected, and the constructor
// must surface the same rejection.
func TestPhiConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  PhiConfig
		ok   bool
	}{
		{"valid", PhiConfig{Period: 1}, true},
		{"valid explicit", PhiConfig{Period: 0.5, SuspectPhi: 4, EvictPhi: 9, Window: 4}, true},
		{"zero period", PhiConfig{}, false},
		{"negative period", PhiConfig{Period: -1}, false},
		{"NaN period", PhiConfig{Period: math.NaN()}, false},
		{"inverted thresholds", PhiConfig{Period: 1, SuspectPhi: 9, EvictPhi: 4}, false},
		{"NaN threshold", PhiConfig{Period: 1, SuspectPhi: math.NaN(), EvictPhi: 2}, false},
		{"window below 2", PhiConfig{Period: 1, Window: 1}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
		_, err = NewPhiDetector[int](tc.cfg)
		if (err == nil) != tc.ok {
			t.Errorf("%s: NewPhiDetector = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestArrivalHistory drives the sliding window through the wraparound
// and checks the running moments against direct computation.
func TestArrivalHistory(t *testing.T) {
	var h arrivalHistory
	const window = 4
	feed := []float64{1, 2, 3, 4, 5, 6} // last four: 3,4,5,6
	for i, v := range feed {
		h.add(v, window)
		wantN := i + 1
		if wantN > window {
			wantN = window
		}
		if h.count() != wantN {
			t.Fatalf("after %d adds: count %d, want %d", i+1, h.count(), wantN)
		}
	}
	mean, stddev := h.stats()
	if mean != 4.5 {
		t.Fatalf("mean = %v, want 4.5 over the retained window", mean)
	}
	// Direct: variance of {3,4,5,6} = 1.25.
	if want := math.Sqrt(1.25); math.Abs(stddev-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", stddev, want)
	}
	// A constant stream must not go negative under cancellation.
	var c arrivalHistory
	for i := 0; i < 10; i++ {
		c.add(0.125, window)
	}
	if _, sd := c.stats(); sd != 0 {
		t.Fatalf("constant stream stddev = %v, want 0", sd)
	}
}

// TestPhiFunction pins the logistic approximation's shape: zero for
// deep-negative arguments, monotone increasing, ~0.3 at y=0 (phi of an
// exactly-on-time silence is log10(2)), and the overflow-safe asymptote
// v/ln10 for large y.
func TestPhiFunction(t *testing.T) {
	if got := phi(-40); got != 0 {
		t.Fatalf("phi(-40) = %v, want 0", got)
	}
	if got, want := phi(0), math.Log10(2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("phi(0) = %v, want log10(2) = %v", got, want)
	}
	prev := 0.0
	for y := -5.0; y <= 50; y += 0.5 {
		p := phi(y)
		if p < prev {
			t.Fatalf("phi not monotone: phi(%v) = %v < %v", y, p, prev)
		}
		prev = p
	}
	// Large-argument branch: phi = v/ln10 exactly.
	y := 10.0
	v := y * (1.5976 + 0.070566*y*y)
	if got, want := phi(y), v/math.Ln10; got != want {
		t.Fatalf("phi(%v) = %v, want asymptotic %v", y, got, want)
	}
}

// TestPhiDetectorLifecycle walks one member through the full evidence
// flow: untracked, fresh, bootstrap scoring, learned scoring,
// edge-triggered Suspect then Evicted verdicts, and Forget.
func TestPhiDetectorLifecycle(t *testing.T) {
	// MinStdDev 1 keeps the phi ramp gentle enough that half-second
	// checks observe the Suspect stage before the Evicted stage.
	d, err := NewPhiDetector[int](PhiConfig{Period: 1, SuspectPhi: 1, EvictPhi: 3, Window: 4, MinStdDev: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Config().EvictPhi; got != 3 {
		t.Fatalf("Config().EvictPhi = %v, want 3", got)
	}
	if p := d.Phi(7, 100); p != 0 {
		t.Fatalf("untracked member phi = %v, want 0", p)
	}

	d.Observe(7, 10)
	if last, ok := d.LastHeard(7); !ok || last != 10 {
		t.Fatalf("LastHeard = %v, %v; want 10, true", last, ok)
	}
	if p := d.Phi(7, 10); p != 0 {
		t.Fatalf("fresh member phi = %v, want 0", p)
	}
	// Bootstrap estimate (mean Period, deviation Period/4): one period
	// of silence scores phi(0), far past it accrues.
	if p := d.Phi(7, 11); math.Abs(p-math.Log10(2)) > 1e-12 {
		t.Fatalf("bootstrap phi at one period = %v, want log10(2)", p)
	}
	if p := d.Phi(7, 20); p < 3 {
		t.Fatalf("ten periods of silence scored phi = %v, want accrual past evict", p)
	}

	// Regular heartbeats at the period keep phi at zero and learn the
	// inter-arrival distribution.
	for now := 11.0; now <= 15; now++ {
		d.Observe(7, now)
	}
	if p := d.Phi(7, 15.5); p >= 1 {
		t.Fatalf("half a period of silence on a learned stream: phi = %v, want < 1", p)
	}

	// Silence escalates: Suspect fires once, then Evicted once, each
	// edge-triggered (no repeats while the stage holds).
	var suspectAt, evictAt float64
	for now := 15.5; now < 40; now += 0.5 {
		for _, v := range d.Check(now) {
			switch v.Status {
			case Suspect:
				if suspectAt != 0 {
					t.Fatalf("duplicate Suspect verdict at %v (first at %v)", now, suspectAt)
				}
				suspectAt = now
			case Evicted:
				if evictAt != 0 {
					t.Fatalf("duplicate Evicted verdict at %v (first at %v)", now, evictAt)
				}
				evictAt = now
				if v.Silence <= 0 {
					t.Fatalf("eviction verdict carries silence %v, want > 0", v.Silence)
				}
			}
		}
	}
	if suspectAt == 0 || evictAt == 0 || evictAt <= suspectAt {
		t.Fatalf("suspect at %v, evict at %v; want 0 < suspect < evict", suspectAt, evictAt)
	}

	// Fresh evidence resets the stage: the member is suspectable again.
	d.Observe(7, 40)
	if vs := d.Check(40); len(vs) != 0 {
		t.Fatalf("verdicts immediately after fresh evidence: %v", vs)
	}

	d.Forget(7)
	if _, ok := d.LastHeard(7); ok {
		t.Fatal("LastHeard after Forget, want untracked")
	}
	if p := d.Phi(7, 100); p != 0 {
		t.Fatalf("forgotten member phi = %v, want 0", p)
	}
}

// TestPhiDetectorCheckOrder pins deterministic verdict order: members
// escalating in the same check come out in increasing ID order.
func TestPhiDetectorCheckOrder(t *testing.T) {
	d, err := NewPhiDetector[int](PhiConfig{Period: 1, SuspectPhi: 1, EvictPhi: 100, MinStdDev: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{9, 2, 5} {
		d.Observe(id, 0)
	}
	vs := d.Check(4)
	if len(vs) != 3 {
		t.Fatalf("got %d verdicts, want 3", len(vs))
	}
	for i, want := range []int{2, 5, 9} {
		if vs[i].ID != want || vs[i].Status != Suspect {
			t.Fatalf("verdict %d = %+v, want ID %d Suspect", i, vs[i], want)
		}
	}
}

// TestPhiDetectorSatisfiesInterface pins that both detectors stay
// swappable behind the shared contract.
func TestPhiDetectorSatisfiesInterface(t *testing.T) {
	var _ FailureDetector[int] = &PhiDetector[int]{}
	var _ FailureDetector[int] = &Detector[int]{}
}
