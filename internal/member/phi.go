package member

import (
	"cmp"
	"fmt"
	"math"
	"sort"
)

// This file implements the phi-accrual failure detector of Hayashibara
// et al. (the Akka/Cassandra detector): instead of a hard drift-widened
// deadline, each member's inter-arrival history is summarized by its
// mean and standard deviation, and the current silence is scored as
//
//	phi = -log10( P(next arrival is still ahead) )
//
// under a normal model of inter-arrival times. phi = 1 means roughly a
// 10% chance the member is still alive and merely slow, phi = 2 roughly
// 1%, and so on — suspicion accrues continuously instead of flipping at
// a cliff. The normal CDF is evaluated through the logistic
// approximation the Akka implementation uses,
//
//	P(X <= y) ~= 1 / (1 + exp(-y*(1.5976 + 0.070566*y^2)))
//
// which is monotone and accurate to a few 1e-4 over the range that
// matters. Against the repo's deadline Detector the trade is: the
// deadline detector is provably safe at the claimed drift bounds but
// deaf to observed behaviour, while phi adapts to the arrival pattern a
// particular link actually shows (so a jittery link earns a wider
// deadline without configuration) at the price of a probabilistic, not
// absolute, safety claim. The chaos tier records the two detectors'
// false-eviction counts side by side under the same churn campaigns.

// PhiConfig sizes the phi-accrual suspicion detector.
type PhiConfig struct {
	// Period is the expected heartbeat interval in local-clock seconds;
	// it bootstraps the inter-arrival estimate before history
	// accumulates (first estimate: mean Period, deviation Period/4).
	Period float64
	// SuspectPhi is the phi threshold at which a member becomes
	// Suspect; defaults to 8 (odds of a false suspicion about 1e-8 per
	// check under the model).
	SuspectPhi float64
	// EvictPhi is the phi threshold at which a suspect is evicted;
	// defaults to 2*SuspectPhi.
	EvictPhi float64
	// Window is how many recent inter-arrival samples are kept per
	// member; defaults to 32.
	Window int
	// MinStdDev floors the estimated deviation so a perfectly regular
	// arrival stream (zero variance) does not turn the very first late
	// heartbeat into phi = +Inf; defaults to Period/10.
	MinStdDev float64
}

// withDefaults fills the zero fields.
func (c PhiConfig) withDefaults() PhiConfig {
	if c.SuspectPhi <= 0 {
		c.SuspectPhi = 8
	}
	if c.EvictPhi <= 0 {
		c.EvictPhi = 2 * c.SuspectPhi
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.MinStdDev <= 0 {
		c.MinStdDev = c.Period / 10
	}
	return c
}

// Validate rejects configurations the phi formula cannot score.
func (c PhiConfig) Validate() error {
	c = c.withDefaults()
	if math.IsNaN(c.Period) || !(c.Period > 0) {
		return fmt.Errorf("member: non-positive phi heartbeat period %v", c.Period)
	}
	if math.IsNaN(c.SuspectPhi) || math.IsNaN(c.EvictPhi) || c.EvictPhi < c.SuspectPhi {
		return fmt.Errorf("member: phi thresholds (suspect %v, evict %v) not ordered",
			c.SuspectPhi, c.EvictPhi)
	}
	if c.Window < 2 {
		return fmt.Errorf("member: phi window %d below 2", c.Window)
	}
	return nil
}

// arrivalHistory is one member's sliding window of inter-arrival
// samples with running first and second moments, so mean and deviation
// are O(1) per query.
type arrivalHistory struct {
	samples []float64
	next    int
	filled  bool
	sum     float64
	sumSq   float64
}

func (h *arrivalHistory) add(v float64, window int) {
	if h.samples == nil {
		h.samples = make([]float64, window)
	}
	if h.filled {
		old := h.samples[h.next]
		h.sum -= old
		h.sumSq -= old * old
	}
	h.samples[h.next] = v
	h.sum += v
	h.sumSq += v * v
	h.next++
	if h.next == len(h.samples) {
		h.next = 0
		h.filled = true
	}
}

func (h *arrivalHistory) count() int {
	if h.filled {
		return len(h.samples)
	}
	return h.next
}

// stats returns the window's mean and standard deviation.
func (h *arrivalHistory) stats() (mean, stddev float64) {
	n := float64(h.count())
	mean = h.sum / n
	// Clamp the variance at zero: cancellation in sumSq - n*mean^2 can
	// go fractionally negative for a constant stream.
	variance := h.sumSq/n - mean*mean
	if variance > 0 {
		stddev = math.Sqrt(variance)
	}
	return mean, stddev
}

// PhiDetector scores per-member silence by accrued suspicion level phi
// over a learned inter-arrival distribution. It satisfies
// FailureDetector beside the deadline Detector: same Observe/Forget
// evidence flow, same edge-triggered Suspect/Evicted verdicts, so the
// service can swap one for the other per configuration.
type PhiDetector[ID cmp.Ordered] struct {
	cfg   PhiConfig
	heard map[ID]float64 // local-clock time of last direct freshness
	hist  map[ID]*arrivalHistory
	stage map[ID]Status // last verdict issued (Alive when fresh)
}

// NewPhiDetector returns a phi-accrual detector with the given
// thresholds.
func NewPhiDetector[ID cmp.Ordered](cfg PhiConfig) (*PhiDetector[ID], error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &PhiDetector[ID]{
		cfg:   cfg,
		heard: make(map[ID]float64),
		hist:  make(map[ID]*arrivalHistory),
		stage: make(map[ID]Status),
	}, nil
}

// Config returns the detector's threshold configuration.
func (d *PhiDetector[ID]) Config() PhiConfig { return d.cfg }

// Observe records direct evidence of id's liveness at localNow, feeding
// the inter-arrival window. Fresh evidence clears standing suspicion.
func (d *PhiDetector[ID]) Observe(id ID, localNow float64) {
	if last, ok := d.heard[id]; ok {
		if dt := localNow - last; dt > 0 {
			h := d.hist[id]
			if h == nil {
				h = &arrivalHistory{}
				d.hist[id] = h
			}
			h.add(dt, d.cfg.Window)
		}
	}
	d.heard[id] = localNow
	d.stage[id] = Alive
}

// Forget drops id's timing state and history.
func (d *PhiDetector[ID]) Forget(id ID) {
	delete(d.heard, id)
	delete(d.hist, id)
	delete(d.stage, id)
}

// LastHeard returns when id was last observed on the local clock.
func (d *PhiDetector[ID]) LastHeard(id ID) (float64, bool) {
	t, ok := d.heard[id]
	return t, ok
}

// Phi returns id's current suspicion level at local-clock time
// localNow: 0 when the member is untracked or fresh, +Inf only in the
// limit of overwhelming silence. With fewer than two recorded
// inter-arrivals the bootstrap estimate (mean Period, deviation
// Period/4) scores the silence, so a member is suspectable from its
// very first missed heartbeats.
func (d *PhiDetector[ID]) Phi(id ID, localNow float64) float64 {
	last, ok := d.heard[id]
	if !ok {
		return 0
	}
	elapsed := localNow - last
	if elapsed <= 0 {
		return 0
	}
	mean := d.cfg.Period
	stddev := d.cfg.Period / 4
	if h := d.hist[id]; h != nil && h.count() >= 2 {
		mean, stddev = h.stats()
	}
	if stddev < d.cfg.MinStdDev {
		stddev = d.cfg.MinStdDev
	}
	return phi((elapsed - mean) / stddev)
}

// phi maps a normalized silence y = (elapsed - mean)/stddev to the
// accrued suspicion -log10(1 - CDF(y)) via the logistic approximation
// of the normal CDF. Writing q = 1 - CDF(y) = 1/(1+exp(v)) with
// v = y*(1.5976 + 0.070566*y^2) gives phi = log10(1 + exp(v)), which is
// evaluated in its asymptotic form for large v so the exponential never
// overflows.
func phi(y float64) float64 {
	v := y * (1.5976 + 0.070566*y*y)
	if v > 35 {
		return v / math.Ln10
	}
	p := math.Log10(1 + math.Exp(v))
	if p < 0 {
		return 0
	}
	return p
}

// Check scores every tracked member at local-clock time localNow and
// returns the members whose verdict escalated since the last check, in
// increasing ID order. phi >= SuspectPhi yields one Suspect verdict,
// phi >= EvictPhi one Evicted verdict; verdicts are edge-triggered like
// the deadline detector's.
func (d *PhiDetector[ID]) Check(localNow float64) []Verdict[ID] {
	ids := make([]ID, 0, len(d.heard))
	for id := range d.heard {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []Verdict[ID]
	for _, id := range ids {
		p := d.Phi(id, localNow)
		var want Status
		switch {
		case p >= d.cfg.EvictPhi:
			want = Evicted
		case p >= d.cfg.SuspectPhi:
			want = Suspect
		default:
			continue
		}
		if d.stage[id] >= want {
			continue
		}
		d.stage[id] = want
		out = append(out, Verdict[ID]{ID: id, Status: want, Silence: localNow - d.heard[id]})
	}
	return out
}
