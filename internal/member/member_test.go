package member

import (
	"math/rand/v2"
	"reflect"
	"testing"
)

func TestSupersedesPrecedence(t *testing.T) {
	base := Entry[int]{ID: 1, Gen: 2, Seq: 5, Status: Alive}
	cases := []struct {
		name string
		a    Entry[int]
		want bool
	}{
		{"higher gen wins", Entry[int]{ID: 1, Gen: 3, Seq: 0, Status: Alive}, true},
		{"lower gen loses", Entry[int]{ID: 1, Gen: 1, Seq: 99, Status: Evicted}, false},
		{"higher seq wins", Entry[int]{ID: 1, Gen: 2, Seq: 6, Status: Alive}, true},
		{"lower seq loses", Entry[int]{ID: 1, Gen: 2, Seq: 4, Status: Evicted}, false},
		{"same gen/seq worse status wins", Entry[int]{ID: 1, Gen: 2, Seq: 5, Status: Suspect}, true},
		{"identical does not supersede", base, false},
	}
	for _, tc := range cases {
		if got := tc.a.Supersedes(base); got != tc.want {
			t.Errorf("%s: Supersedes = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestSupersedesStrictOrder: merging is commutative — for any pair, at
// most one direction supersedes, so gossip converges independent of
// delivery order.
func TestSupersedesStrictOrder(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 1000; i++ {
		a := Entry[int]{ID: 1, Gen: uint64(rng.IntN(3)), Seq: uint64(rng.IntN(3)),
			Status: Status(1 + rng.IntN(4))}
		b := Entry[int]{ID: 1, Gen: uint64(rng.IntN(3)), Seq: uint64(rng.IntN(3)),
			Status: Status(1 + rng.IntN(4))}
		if a.Supersedes(b) && b.Supersedes(a) {
			t.Fatalf("both directions supersede: %+v vs %+v", a, b)
		}
		if a.Supersedes(a) {
			t.Fatalf("entry supersedes itself: %+v", a)
		}
	}
}

func TestRosterLifecycle(t *testing.T) {
	r := New(0, 1, 1e-4)
	if r.Len() != 1 || r.AliveCount() != 1 {
		t.Fatalf("fresh roster: len %d alive %d", r.Len(), r.AliveCount())
	}
	v0 := r.Version()

	// A new member joins via gossip.
	ch, changed := r.Upsert(Entry[int]{ID: 2, Gen: 1, Seq: 1, Status: Alive, E: 0.5})
	if !changed || !ch.Joined || ch.To != Alive {
		t.Fatalf("join: %+v changed=%v", ch, changed)
	}
	if r.Version() == v0 {
		t.Fatal("version did not bump on join")
	}

	// Stale observation is ignored.
	if _, changed := r.Upsert(Entry[int]{ID: 2, Gen: 1, Seq: 0, Status: Evicted}); changed {
		t.Fatal("stale observation merged")
	}

	// A fresher heartbeat refreshes quality.
	if _, changed := r.Upsert(Entry[int]{ID: 2, Gen: 1, Seq: 2, Status: Alive, E: 0.1}); !changed {
		t.Fatal("fresh heartbeat ignored")
	}
	if e, _ := r.Get(2); e.E != 0.1 {
		t.Fatalf("quality not refreshed: %+v", e)
	}

	// Accusation at the known (gen, seq) sticks...
	ch, changed = r.Accuse(2, Suspect)
	if !changed || ch.From != Alive || ch.To != Suspect {
		t.Fatalf("accuse: %+v changed=%v", ch, changed)
	}
	// ...is idempotent...
	if _, changed := r.Accuse(2, Suspect); changed {
		t.Fatal("re-accusation changed the roster")
	}
	// ...escalates...
	if ch, changed = r.Accuse(2, Evicted); !changed || ch.To != Evicted {
		t.Fatalf("escalation: %+v changed=%v", ch, changed)
	}
	// ...and loses to the member's next heartbeat.
	if _, changed := r.Upsert(Entry[int]{ID: 2, Gen: 1, Seq: 3, Status: Alive}); !changed {
		t.Fatal("reinstating heartbeat lost to accusation")
	}
	if e, _ := r.Get(2); e.Status != Alive {
		t.Fatalf("member not reinstated: %+v", e)
	}

	// The owner can never be accused locally.
	if _, changed := r.Accuse(0, Evicted); changed {
		t.Fatal("owner accused itself")
	}

	// Voluntary departure cannot be overridden by an accusation.
	r.Upsert(Entry[int]{ID: 2, Gen: 1, Seq: 4, Status: Left})
	if _, changed := r.Accuse(2, Evicted); changed {
		t.Fatal("accusation overrode a voluntary departure")
	}
}

func TestRosterSelfTransitions(t *testing.T) {
	r := New("a", 7, 1e-4)
	adv := r.Advertise(100, 0.05)
	if adv.Seq != 1 || adv.Status != Alive || adv.C != 100 || adv.E != 0.05 {
		t.Fatalf("advertise: %+v", adv)
	}
	left := r.Leave()
	if left.Seq != 2 || left.Status != Left {
		t.Fatalf("leave: %+v", left)
	}
	if !left.Supersedes(adv) {
		t.Fatal("leave does not supersede the preceding advertisement")
	}
	re := r.Rejoin(200, 0.9)
	if re.Gen != 8 || re.Seq != 0 || re.Status != Alive {
		t.Fatalf("rejoin: %+v", re)
	}
	if !re.Supersedes(left) {
		t.Fatal("rejoin does not supersede the departure")
	}
	// A remote eviction of the previous incarnation loses to the rejoin.
	evict := Entry[string]{ID: "a", Gen: 7, Seq: 9, Status: Evicted}
	if evict.Supersedes(re) {
		t.Fatal("stale eviction supersedes the new incarnation")
	}
}

func TestRosterMembersSorted(t *testing.T) {
	r := New(5, 1, 0)
	for _, id := range []int{9, 3, 7, 1} {
		r.Upsert(Entry[int]{ID: id, Gen: 1, Seq: 1, Status: Alive})
	}
	var got []int
	for _, e := range r.Members() {
		got = append(got, e.ID)
	}
	want := []int{1, 3, 5, 7, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Members order %v, want %v", got, want)
	}
}

func TestDigestRotationCoversRoster(t *testing.T) {
	r := New(0, 1, 0)
	for id := 1; id <= 9; id++ {
		r.Upsert(Entry[int]{ID: id, Gen: 1, Seq: 1, Status: Alive})
	}
	seen := map[int]bool{}
	for round := 0; round < 12; round++ {
		r.Advertise(0, 0)
		d := r.Digest(nil, 4)
		if len(d) != 4 {
			t.Fatalf("digest size %d, want 4", len(d))
		}
		if d[0].ID != 0 {
			t.Fatalf("digest does not lead with self: %+v", d[0])
		}
		for _, e := range d[1:] {
			seen[e.ID] = true
		}
	}
	for id := 1; id <= 9; id++ {
		if !seen[id] {
			t.Fatalf("rotation never gossiped member %d (seen %v)", id, seen)
		}
	}
	// Degenerate sizes.
	if d := r.Digest(nil, 0); d != nil {
		t.Fatalf("max=0 digest non-empty: %v", d)
	}
	if d := r.Digest(nil, 1); len(d) != 1 || d[0].ID != 0 {
		t.Fatalf("max=1 digest: %v", d)
	}
}

func TestDetectorConfigValidation(t *testing.T) {
	bad := []DetectorConfig{
		{Period: 0},
		{Period: 1, LocalDelta: -0.1},
		{Period: 1, RemoteDelta: 1},
		{Period: 1, Xi: -1},
	}
	for _, cfg := range bad {
		if _, err := NewDetector[int](cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := NewDetector[int](DetectorConfig{Period: 1}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestDetectorNoFalseSuspicionAtClaimedDrift is the failure-detector
// soundness property: a correct server whose clock drifts at exactly
// the claimed bound — observed on a local clock that itself drifts at
// exactly its claimed bound, across a network that uses its full delay
// bound adversarially — is never suspected, for randomized parameter
// draws.
func TestDetectorNoFalseSuspicionAtClaimedDrift(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 99))
	for trial := 0; trial < 300; trial++ {
		period := 0.5 + rng.Float64()*63.5
		localDelta := rng.Float64() * 1e-2
		remoteDelta := rng.Float64() * 1e-2
		xi := rng.Float64() * 0.2
		misses := 1 + rng.IntN(4)
		cfg := DetectorConfig{
			Period: period, Misses: misses,
			LocalDelta: localDelta, RemoteDelta: remoteDelta, Xi: xi,
		}
		d, err := NewDetector[int](cfg)
		if err != nil {
			t.Fatal(err)
		}
		// The sender's clock runs slow at exactly (1-remoteDelta): its
		// heartbeats land every period/(1-remoteDelta) real seconds.
		// The observer's clock runs fast at exactly (1+localDelta).
		// Adversarial jitter: the first arrival is instant, every
		// later one maximally delayed by xi (in real seconds; charging
		// the full xi on the local clock is strictly worse than
		// reality, and the deadline still must hold).
		realStep := period / (1 - remoteDelta)
		arrivalLocal := func(k int) float64 {
			real := float64(k) * realStep
			if k > 0 {
				real += xi // worst-case jitter vs. heartbeat 0
			}
			return real * (1 + localDelta)
		}
		d.Observe(1, arrivalLocal(0))
		for k := 1; k < 8; k++ {
			// Check just before the k-th heartbeat lands (a hair under
			// the exact arrival instant: at k == misses the silence
			// equals the deadline to within float rounding, and the
			// deadline is exclusive).
			if v := d.Check(arrivalLocal(k) - 1e-6); len(v) > 0 && k <= misses {
				t.Fatalf("trial %d: correct server suspected after %d periods: %+v (cfg %+v)",
					trial, k, v, cfg)
			}
			d.Observe(1, arrivalLocal(k))
		}
		// After the catch-up observation there must be no standing verdict.
		if v := d.Check(arrivalLocal(7) + 0.001); len(v) != 0 {
			t.Fatalf("trial %d: verdict after fresh observation: %+v", trial, v)
		}
	}
}

// TestDetectorEvictsStoppedClockWithinBound is the completeness
// property: a server that stops heartbeating (stopped clock, dead
// process) is suspected once its silence exceeds SuspectAfter and
// evicted once it exceeds EvictAfter — and not a check earlier.
func TestDetectorEvictsStoppedClockWithinBound(t *testing.T) {
	cfg := DetectorConfig{Period: 10, Misses: 3, LocalDelta: 1e-4, RemoteDelta: 1e-4, Xi: 0.1}
	d, err := NewDetector[int](cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Observe(7, 100)
	suspectAt := 100 + cfg.SuspectAfter()
	evictAt := 100 + cfg.EvictAfter()

	if v := d.Check(suspectAt - 1e-9); len(v) != 0 {
		t.Fatalf("suspected before the bound: %+v", v)
	}
	v := d.Check(suspectAt + 0.01)
	if len(v) != 1 || v[0].ID != 7 || v[0].Status != Suspect {
		t.Fatalf("want one Suspect verdict, got %+v", v)
	}
	// Edge-triggered: no re-report while still only suspect.
	if v := d.Check(suspectAt + 1); len(v) != 0 {
		t.Fatalf("suspect re-reported: %+v", v)
	}
	v = d.Check(evictAt + 0.01)
	if len(v) != 1 || v[0].Status != Evicted {
		t.Fatalf("want one Evicted verdict, got %+v", v)
	}
	if v[0].Silence <= 0 {
		t.Fatalf("verdict silence %v not positive", v[0].Silence)
	}
	// Still edge-triggered at the terminal stage.
	if v := d.Check(evictAt + 100); len(v) != 0 {
		t.Fatalf("eviction re-reported: %+v", v)
	}
	// Forget clears state; the next incarnation starts fresh.
	d.Forget(7)
	if _, ok := d.LastHeard(7); ok {
		t.Fatal("Forget kept timing state")
	}
}

// TestDetectorSilentPastSuspectStraightToEvict: a long scheduling gap
// can carry a member past both deadlines between checks; the detector
// must then report the eviction (not silently skip it because the
// suspect stage was never observed).
func TestDetectorSkipsToEviction(t *testing.T) {
	cfg := DetectorConfig{Period: 1, Misses: 1}
	d, err := NewDetector[int](cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Observe(3, 0)
	v := d.Check(1000)
	if len(v) != 1 || v[0].Status != Evicted {
		t.Fatalf("want straight-to-Evicted, got %+v", v)
	}
}

// TestDetectorVerdictOrderDeterministic: verdicts come out in ID order
// regardless of observation order.
func TestDetectorVerdictOrderDeterministic(t *testing.T) {
	cfg := DetectorConfig{Period: 1, Misses: 1}
	d, _ := NewDetector[int](cfg)
	for _, id := range []int{5, 1, 9, 3} {
		d.Observe(id, 0)
	}
	v := d.Check(100)
	var got []int
	for _, verdict := range v {
		got = append(got, verdict.ID)
	}
	if want := []int{1, 3, 5, 9}; !reflect.DeepEqual(got, want) {
		t.Fatalf("verdict order %v, want %v", got, want)
	}
}

func TestSelectRanksByAdvertisedError(t *testing.T) {
	r := New(0, 1, 0)
	r.Upsert(Entry[int]{ID: 1, Gen: 1, Seq: 1, Status: Alive, E: 0.3})
	r.Upsert(Entry[int]{ID: 2, Gen: 1, Seq: 1, Status: Alive, E: 0.1})
	r.Upsert(Entry[int]{ID: 3, Gen: 1, Seq: 1, Status: Alive, E: 0.2})
	r.Upsert(Entry[int]{ID: 4, Gen: 1, Seq: 1, Status: Alive, E: 0.1}) // ties with 2, higher ID
	got := Select(r, SelectConfig[int]{K: 3})
	if want := []int{2, 4, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Select = %v, want %v", got, want)
	}
}

func TestSelectExploresUnpreferred(t *testing.T) {
	r := New(0, 1, 0)
	r.Upsert(Entry[int]{ID: 1, Gen: 1, Seq: 1, Status: Alive, E: 0.1})
	r.Upsert(Entry[int]{ID: 2, Gen: 1, Seq: 1, Status: Alive, E: 0.2})
	r.Upsert(Entry[int]{ID: 3, Gen: 1, Seq: 1, Status: Evicted, E: 0.05})
	r.Upsert(Entry[int]{ID: 4, Gen: 1, Seq: 1, Status: Left, E: 0.01})

	// Without exploration: only the live members, never Left/Evicted.
	got := Select(r, SelectConfig[int]{K: 3})
	if want := []int{1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Select = %v, want %v", got, want)
	}

	// With exploration: the evicted (recovering) member is reachable;
	// the departed one never is.
	rng := rand.New(rand.NewPCG(3, 3))
	explored := map[int]bool{}
	for i := 0; i < 50; i++ {
		ids := Select(r, SelectConfig[int]{K: 1, Explore: rng.IntN})
		if len(ids) != 2 || ids[0] != 1 {
			t.Fatalf("Select = %v, want rank pick 1 plus exploration", ids)
		}
		explored[ids[1]] = true
	}
	if !explored[3] {
		t.Fatal("exploration never picked the evicted member")
	}
	if !explored[2] {
		t.Fatal("exploration never picked the below-K live member")
	}
	if explored[4] {
		t.Fatal("exploration picked a voluntarily-departed member")
	}
	if explored[0] {
		t.Fatal("exploration picked the owner")
	}
}

func TestSelectDefaultsAndEmpty(t *testing.T) {
	r := New(0, 1, 0)
	if got := Select(r, SelectConfig[int]{}); len(got) != 0 {
		t.Fatalf("empty roster selected %v", got)
	}
	for id := 1; id <= 5; id++ {
		r.Upsert(Entry[int]{ID: id, Gen: 1, Seq: 1, Status: Alive, E: float64(id)})
	}
	if got := Select(r, SelectConfig[int]{}); len(got) != 3 { // default K
		t.Fatalf("default K selected %v", got)
	}
	// Exploration with everything preferred: no extra pick.
	r2 := New(0, 1, 0)
	r2.Upsert(Entry[int]{ID: 1, Gen: 1, Seq: 1, Status: Alive})
	got := Select(r2, SelectConfig[int]{K: 3, Explore: func(int) int { return 0 }})
	if want := []int{1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Select = %v, want %v", got, want)
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		Alive: "alive", Suspect: "suspect", Left: "left", Evicted: "evicted",
		Status(0): "none", Status(99): "status(99)",
	} {
		if got := st.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", st, got, want)
		}
	}
}

// TestGossipConvergenceOrderIndependent: merging the same set of
// observations in any order converges every roster to the same state.
func TestGossipConvergenceOrderIndependent(t *testing.T) {
	// A pile of observations about three members, including conflicts.
	obs := []Entry[int]{
		{ID: 1, Gen: 1, Seq: 1, Status: Alive, E: 0.5},
		{ID: 1, Gen: 1, Seq: 3, Status: Alive, E: 0.2},
		{ID: 1, Gen: 1, Seq: 3, Status: Suspect, E: 0.2},
		{ID: 2, Gen: 1, Seq: 9, Status: Left},
		{ID: 2, Gen: 2, Seq: 0, Status: Alive, E: 1.0},
		{ID: 3, Gen: 1, Seq: 4, Status: Evicted},
		{ID: 3, Gen: 1, Seq: 5, Status: Alive, E: 0.7},
	}
	rng := rand.New(rand.NewPCG(7, 8))
	var want []Entry[int]
	for trial := 0; trial < 64; trial++ {
		perm := rng.Perm(len(obs))
		r := New(0, 1, 0)
		for _, idx := range perm {
			r.Upsert(obs[idx])
		}
		got := r.Members()
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("order-dependent convergence:\n got %+v\nwant %+v", got, want)
		}
	}
	// And the converged state is the per-member maximum.
	r := New(0, 1, 0)
	for _, e := range obs {
		r.Upsert(e)
	}
	if e, _ := r.Get(1); e.Seq != 3 || e.Status != Suspect {
		t.Fatalf("member 1 converged to %+v", e)
	}
	if e, _ := r.Get(2); e.Gen != 2 || e.Status != Alive {
		t.Fatalf("member 2 converged to %+v", e)
	}
	if e, _ := r.Get(3); e.Seq != 5 || e.Status != Alive {
		t.Fatalf("member 3 converged to %+v", e)
	}
}
