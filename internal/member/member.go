// Package member is the dynamic-membership subsystem of the time
// service: a roster of known servers with join/leave/evict epochs, a
// drift-aware failure detector, anti-entropy gossip of roster entries
// carrying each server's advertised <C, E> quality, and a peer-selection
// policy that ranks live servers by advertised maximum error.
//
// The paper's service ran on the Xerox Research Internet — hundreds of
// time servers that crash, restart, and move — yet its theorems are
// stated over a fixed set. This package supplies the topology-level
// counterpart of the paper's core selection idea: algorithm MM adopts
// the neighbor with the smaller maximum error, so a server should also
// *choose which neighbors to poll* by advertised error bound rather
// than by a hard-coded roster. Dynamic-topology synchronization is the
// regime of Kuhn et al. (optimal gradient clock synchronization in
// dynamic networks); rejoin-after-fault stabilization follows the
// self-stabilizing treatments in PAPERS.md.
//
// The package is pure and deterministic: it never reads the wall clock
// (callers feed local-clock timestamps in seconds), never draws from a
// shared random generator (exploration indices come from injected
// sources), and iterates rosters in sorted ID order — so the simulated
// substrate keeps its byte-determinism guarantee and the real UDP
// substrate reuses the identical state machine.
package member

import (
	"cmp"
	"fmt"
)

// Status is a member's lifecycle state in a roster.
type Status uint8

// The membership states, ordered by precedence: when two observations
// of the same member carry the same generation and sequence, the higher
// status wins the merge (an accusation beats the advertisement it was
// based on; a voluntary departure beats an accusation it raced with).
const (
	// Alive is a member believed to be serving and heartbeating.
	Alive Status = iota + 1
	// Suspect is a member whose heartbeats have gone quiet for longer
	// than the drift-widened deadline but not yet the eviction bound.
	Suspect
	// Left is a member that announced a voluntary departure.
	Left
	// Evicted is a member removed by the failure detector: silent for
	// longer than the eviction bound.
	Evicted
)

// statusNames maps states to their timeline tokens.
var statusNames = [...]string{"none", "alive", "suspect", "left", "evicted"}

// String returns the status token used in membership timelines.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Entry is one roster row: everything a server advertises about itself
// (or an observer records about it) in gossip.
type Entry[ID cmp.Ordered] struct {
	// ID identifies the member: a server index in the simulated
	// substrate, a UDP address in the real one.
	ID ID
	// Gen is the member's incarnation: it bumps on every (re)join, so a
	// restarted server's fresh advertisement supersedes any stale state
	// — including its own eviction — left from the previous life.
	Gen uint64
	// Seq is the within-generation heartbeat sequence, bumped on every
	// self-advertisement. A newer Seq at the same Gen supersedes older
	// observations, which is how a falsely-suspected server reinstates
	// itself simply by being heard again.
	Seq uint64
	// Status is the lifecycle state as of (Gen, Seq).
	Status Status
	// C and E are the member's advertised reading — the <C, E> pair of
	// rule MM-1 at the moment of the advertisement. Selection ranks
	// live members by E: the paper's "neighbor with smaller maximum
	// error", applied to topology.
	C float64
	E float64
	// Delta is the member's claimed drift bound, advertised so
	// observers can widen heartbeat deadlines for this member's clock
	// as well as their own.
	Delta float64
}

// Supersedes reports whether observation a carries strictly newer
// information about the same member than observation b: a later
// generation always wins; within a generation a later sequence wins;
// at the same (Gen, Seq) the higher-precedence status wins. The
// relation is a strict partial order, so merging is commutative and
// idempotent — gossip converges regardless of delivery order.
func (a Entry[ID]) Supersedes(b Entry[ID]) bool {
	if a.Gen != b.Gen {
		return a.Gen > b.Gen
	}
	if a.Seq != b.Seq {
		return a.Seq > b.Seq
	}
	return a.Status > b.Status
}
