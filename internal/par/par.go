// Package par is a small deterministic fan-out helper for the experiment
// harness. Every experiment trial in this repository is a pure function of
// its seed, so trials and independent experiments can run on parallel
// workers while their results are merged in fixed input order — the output
// is byte-identical to a sequential run, just earlier.
//
// The package maintains one global worker budget (default GOMAXPROCS).
// Map hands items to spare workers when the budget allows and otherwise
// runs them inline on the calling goroutine. Running inline when the
// budget is exhausted makes nested fan-outs (experiments that themselves
// fan out trials) deadlock-free by construction, and makes SetLimit(1)
// exactly the sequential code path: no goroutines at all.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// spare is the global budget of extra workers (beyond the calling
// goroutine). A Map with budget b may therefore run on up to b+1 cores.
var spare atomic.Int64

func init() {
	spare.Store(int64(runtime.GOMAXPROCS(0) - 1))
}

// limit mirrors the value last passed to SetLimit (or the default), for
// Limit's benefit; the live budget is the atomic spare counter.
var limit atomic.Int64

func init() {
	limit.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetLimit sets the total worker budget (calling goroutine included) to n
// and returns the previous limit. n < 1 is treated as 1 — fully
// sequential, inline execution. SetLimit must not be called while a Map is
// in flight; the experiment drivers call it once up front.
func SetLimit(n int) int {
	if n < 1 {
		n = 1
	}
	prev := int(limit.Swap(int64(n)))
	spare.Store(int64(n - 1))
	return prev
}

// Limit returns the current total worker budget.
func Limit() int { return int(limit.Load()) }

// acquire claims one spare worker slot, reporting whether one was free.
func acquire() bool {
	for {
		v := spare.Load()
		if v <= 0 {
			return false
		}
		if spare.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// release returns a spare worker slot.
func release() { spare.Add(1) }

// Map runs fn(0..n-1) and returns the results indexed by input position.
// Items are handed to spare workers while the global budget allows and run
// inline otherwise; because each result lands at its input index, the
// returned slice is identical to a sequential run regardless of worker
// count or completion order.
func Map[T any](n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if i < n-1 && acquire() {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer release()
				out[i] = fn(i)
			}(i)
		} else {
			// Inline: either the budget is exhausted or this is the last
			// item (the caller may as well do it instead of waiting).
			out[i] = fn(i)
		}
	}
	wg.Wait()
	return out
}

// ForEach runs fn(0..n-1) for side effects with the same scheduling and
// determinism properties as Map.
func ForEach(n int, fn func(i int)) {
	Map(n, func(i int) struct{} {
		fn(i)
		return struct{}{}
	})
}
