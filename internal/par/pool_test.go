package par

import (
	"sync/atomic"
	"testing"
)

// TestPoolRunsEveryShare checks each Run calls fn exactly once per share,
// at every budget level from fully inline to fully parallel.
func TestPoolRunsEveryShare(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		prev := SetLimit(workers)
		p := NewPool(4)
		var hits [4]atomic.Int64
		for round := 0; round < 50; round++ {
			p.Run(func(i int) { hits[i].Add(1) })
		}
		p.Close()
		SetLimit(prev)
		for i := range hits {
			if got := hits[i].Load(); got != 50 {
				t.Fatalf("limit %d: share %d ran %d times, want 50", workers, i, got)
			}
		}
	}
}

// TestPoolBarrier checks Run does not return before every share finished:
// each share bumps a counter, and the value observed right after Run must
// be complete.
func TestPoolBarrier(t *testing.T) {
	prev := SetLimit(8)
	defer SetLimit(prev)
	p := NewPool(8)
	defer p.Close()
	var n atomic.Int64
	for round := 1; round <= 100; round++ {
		p.Run(func(i int) { n.Add(1) })
		if got := n.Load(); got != int64(round*8) {
			t.Fatalf("round %d: %d shares done after Run, want %d", round, got, round*8)
		}
	}
}

// TestPoolBudget checks the pool claims spare workers from the global
// budget and returns them on Close.
func TestPoolBudget(t *testing.T) {
	prev := SetLimit(4) // 3 spare
	defer SetLimit(prev)
	p := NewPool(8)
	if p.Workers() != 3 {
		t.Fatalf("Workers() = %d with 3 spare slots, want 3", p.Workers())
	}
	if acquire() {
		release()
		t.Fatal("budget not exhausted while pool holds it")
	}
	p.Close()
	if !acquire() {
		t.Fatal("budget not returned by Close")
	}
	release()
	p.Close() // idempotent
}

// TestPoolInline checks a single-slot budget yields a goroutine-free pool
// that still runs every share.
func TestPoolInline(t *testing.T) {
	prev := SetLimit(1)
	defer SetLimit(prev)
	p := NewPool(4)
	defer p.Close()
	if p.Workers() != 0 {
		t.Fatalf("Workers() = %d under SetLimit(1), want 0", p.Workers())
	}
	order := make([]int, 0, 4)
	p.Run(func(i int) { order = append(order, i) })
	if len(order) != 4 {
		t.Fatalf("inline Run hit %d shares, want 4", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("inline Run order %v, want ascending", order)
		}
	}
}

// TestPoolMinShares checks NewPool clamps share counts below one.
func TestPoolMinShares(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Shares() != 1 {
		t.Fatalf("Shares() = %d, want 1", p.Shares())
	}
	ran := false
	p.Run(func(int) { ran = true })
	if !ran {
		t.Fatal("share did not run")
	}
}
