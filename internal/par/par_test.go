package par

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrder checks that results land at their input index regardless of
// completion order.
func TestMapOrder(t *testing.T) {
	defer SetLimit(SetLimit(8))
	out := Map(100, func(i int) int {
		if i%7 == 0 {
			time.Sleep(time.Millisecond) // scramble completion order
		}
		return i * i
	})
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestMapSequentialLimit checks that SetLimit(1) runs every item inline on
// the calling goroutine, in order.
func TestMapSequentialLimit(t *testing.T) {
	defer SetLimit(SetLimit(1))
	var order []int
	Map(10, func(i int) struct{} {
		order = append(order, i) // safe: inline implies single goroutine
		return struct{}{}
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("inline execution out of order: %v", order)
		}
	}
}

// TestMapRespectsLimit checks that concurrency never exceeds the budget.
func TestMapRespectsLimit(t *testing.T) {
	const workers = 3
	defer SetLimit(SetLimit(workers))
	var running, peak atomic.Int64
	Map(64, func(i int) struct{} {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		running.Add(-1)
		return struct{}{}
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent items, budget %d", p, workers)
	}
}

// TestNestedMapNoDeadlock checks that a Map inside a Map completes even
// when the outer Map has consumed the whole budget: inner items simply run
// inline.
func TestNestedMapNoDeadlock(t *testing.T) {
	defer SetLimit(SetLimit(2))
	done := make(chan struct{})
	go func() {
		defer close(done)
		outer := Map(4, func(i int) int {
			inner := Map(4, func(j int) int { return i*10 + j })
			sum := 0
			for _, v := range inner {
				sum += v
			}
			return sum
		})
		for i, v := range outer {
			want := 4*10*i + 6
			if v != want {
				t.Errorf("outer[%d] = %d, want %d", i, v, want)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("nested Map deadlocked")
	}
}

// TestMapEmpty checks the degenerate sizes.
func TestMapEmpty(t *testing.T) {
	if out := Map(0, func(int) int { return 1 }); out != nil {
		t.Fatalf("Map(0) = %v, want nil", out)
	}
	if out := Map(-3, func(int) int { return 1 }); out != nil {
		t.Fatalf("Map(-3) = %v, want nil", out)
	}
	if out := Map(1, func(i int) int { return 42 }); len(out) != 1 || out[0] != 42 {
		t.Fatalf("Map(1) = %v", out)
	}
}

// TestForEach checks the side-effect form.
func TestForEach(t *testing.T) {
	defer SetLimit(SetLimit(4))
	var sum atomic.Int64
	ForEach(100, func(i int) { sum.Add(int64(i)) })
	if got := sum.Load(); got != 4950 {
		t.Fatalf("sum = %d, want 4950", got)
	}
}

// TestSetLimitFloor checks that the budget never drops below 1.
func TestSetLimitFloor(t *testing.T) {
	prev := SetLimit(0)
	defer SetLimit(prev)
	if Limit() != 1 {
		t.Fatalf("Limit() = %d after SetLimit(0), want 1", Limit())
	}
	out := Map(3, func(i int) int { return i })
	if len(out) != 3 {
		t.Fatalf("Map under floor limit returned %v", out)
	}
}
