package par

import "sync"

// Pool is a fixed set of workers for barrier-synchronized fan-out: the
// epoch loop of the sharded simulation kernel calls Run once per epoch,
// and every worker must finish its share before the epoch's cross-shard
// merge may begin. A Pool draws its workers from the same global budget
// as Map — creating a Pool of n shares claims up to n-1 spare slots for
// the Pool's lifetime — so nested experiment fan-outs and shard pools
// honor one SetLimit together.
//
// Shares that exceed the granted workers run inline on the caller, and a
// Pool granted zero spare workers degenerates to a plain loop: on a
// single-core budget, Run(f) is exactly `for i := range n { f(i) }` with
// no goroutines, channels, or atomics on the path. That degenerate form
// matters: the sharded kernel's determinism contract says worker count
// never changes output, so the Pool must be free to collapse without
// changing any observable behavior.
type Pool struct {
	n       int           // shares per Run
	workers int           // goroutines actually spawned (<= n-1)
	fn      func(int)     // current Run's body
	start   chan struct{} // broadcast: new Run available (recreated per Run)
	done    sync.WaitGroup
	quit    chan struct{}
	runMu   sync.Mutex // guards fn/start handoff between Runs
	starts  []chan int // per-worker share handoff
}

// NewPool returns a pool that fans each Run out over n shares. It claims
// up to n-1 spare workers from the global budget (fewer when the budget
// is short; zero makes every Run inline). Close releases them.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{n: n, quit: make(chan struct{})}
	for i := 0; i < n-1; i++ {
		if !acquire() {
			break
		}
		p.workers++
	}
	p.starts = make([]chan int, p.workers)
	for w := 0; w < p.workers; w++ {
		p.starts[w] = make(chan int)
		go p.work(p.starts[w])
	}
	return p
}

// work is one worker's loop: receive a share index, run it, mark done.
func (p *Pool) work(starts chan int) {
	for {
		select {
		case <-p.quit:
			return
		case i := <-starts:
			p.fn(i)
			p.done.Done()
		}
	}
}

// Run executes fn(0..n-1), one call per share, and returns when all have
// finished (the barrier). The first workers shares go to the pool's
// goroutines; the caller runs the rest inline. Run must not be called
// concurrently with itself.
func (p *Pool) Run(fn func(i int)) {
	if p.workers == 0 {
		for i := 0; i < p.n; i++ {
			fn(i)
		}
		return
	}
	p.runMu.Lock()
	defer p.runMu.Unlock()
	p.fn = fn
	p.done.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.starts[w] <- w
	}
	for i := p.workers; i < p.n; i++ {
		fn(i)
	}
	p.done.Wait()
}

// Shares returns the number of shares each Run fans out over.
func (p *Pool) Shares() int { return p.n }

// Workers returns the number of dedicated worker goroutines the pool was
// granted (zero means Run executes entirely inline).
func (p *Pool) Workers() int { return p.workers }

// Close stops the workers and returns their slots to the global budget.
// The pool must be idle. Close is idempotent.
func (p *Pool) Close() {
	select {
	case <-p.quit:
		return // already closed
	default:
	}
	close(p.quit)
	for i := 0; i < p.workers; i++ {
		release()
	}
	p.workers = 0
}
