package clock

// This file implements the clock failure modes of Section 1.1: "A clock may
// fail in many ways, such as by stopping, racing ahead, or refusing to
// change its value when reset." Each failure is a wrapper that can be armed
// at a chosen real time, so experiments can run a healthy prefix before the
// fault.

// Stopped wraps a clock that freezes at a given real time: after FailAt the
// value no longer advances. Set still moves the frozen value (the hardware
// register is writable; the oscillator is dead).
type Stopped struct {
	inner  Clock
	failAt float64

	frozen    bool
	frozenVal float64
}

var _ Clock = (*Stopped)(nil)

// NewStopped wraps inner with a stop failure at real time failAt.
func NewStopped(inner Clock, failAt float64) *Stopped {
	return &Stopped{inner: inner, failAt: failAt}
}

// Read returns the wrapped clock's value before the failure and the frozen
// value afterwards.
func (c *Stopped) Read(t float64) float64 {
	if t >= c.failAt {
		if !c.frozen {
			c.frozen = true
			c.frozenVal = c.inner.Read(c.failAt)
		}
		return c.frozenVal
	}
	return c.inner.Read(t)
}

// Set writes through before the failure and overwrites the frozen value
// afterwards.
func (c *Stopped) Set(t, value float64) {
	if t >= c.failAt {
		if !c.frozen {
			c.frozen = true
		}
		c.frozenVal = value
		return
	}
	c.inner.Set(t, value)
}

// Racing wraps a clock that races ahead from a given real time: after
// FailAt every real second advances the clock by Factor seconds. The
// paper's Section 3 recovery experiment used a clock about four percent
// fast (roughly an hour a day) whose claimed bound was one second a day.
type Racing struct {
	inner  Clock
	failAt float64
	factor float64

	failed bool
	baseT  float64 // real time the race began or of last Set after failure
	baseV  float64 // clock value then
}

var (
	_ Clock = (*Racing)(nil)
	_ Rated = (*Racing)(nil)
)

// NewRacing wraps inner so that from real time failAt onward the clock
// advances factor clock-seconds per real second.
func NewRacing(inner Clock, failAt, factor float64) *Racing {
	return &Racing{inner: inner, failAt: failAt, factor: factor}
}

// Read returns the racing value after the failure.
func (c *Racing) Read(t float64) float64 {
	if t < c.failAt {
		return c.inner.Read(t)
	}
	c.arm()
	return c.baseV + (t-c.baseT)*c.factor
}

// Set resets the clock; the race continues from the new value.
func (c *Racing) Set(t, value float64) {
	if t < c.failAt {
		c.inner.Set(t, value)
		return
	}
	c.arm()
	c.baseT, c.baseV = t, value
}

// ActualRate returns the racing rate once failed, else the inner rate (or
// 1 if the inner clock is not Rated).
func (c *Racing) ActualRate() float64 {
	if c.failed {
		return c.factor
	}
	if r, ok := c.inner.(Rated); ok {
		return r.ActualRate()
	}
	return 1
}

func (c *Racing) arm() {
	if c.failed {
		return
	}
	c.failed = true
	c.baseT = c.failAt
	c.baseV = c.inner.Read(c.failAt)
}

// Stuck wraps a clock that refuses to change its value when reset: Set
// calls at or after FailAt are silently ignored, while the clock keeps
// running on its own oscillator.
type Stuck struct {
	inner  Clock
	failAt float64
}

var _ Clock = (*Stuck)(nil)

// NewStuck wraps inner so Set calls from real time failAt onward are
// dropped.
func NewStuck(inner Clock, failAt float64) *Stuck {
	return &Stuck{inner: inner, failAt: failAt}
}

// Read passes through to the wrapped clock.
func (c *Stuck) Read(t float64) float64 { return c.inner.Read(t) }

// Set writes through only before the failure time.
func (c *Stuck) Set(t, value float64) {
	if t >= c.failAt {
		return
	}
	c.inner.Set(t, value)
}
