package clock

// Monotonic derives a locally monotonic clock from a nonmonotonic one,
// implementing the technique of Section 1.1: the synchronization algorithms
// may freely set a server's clock backward, and "a monotonic clock may be
// implemented based on a nonmonotonic clock by temporarily running the
// monotonic clock more slowly when the nonmonotonic clock is set
// backwards."
//
// While the monotonic view is ahead of the underlying clock (because the
// underlying clock was set backward), the view advances at CatchupRate
// clock-seconds per underlying clock-second until the underlying clock
// catches up; thereafter it tracks the underlying clock exactly.
type Monotonic struct {
	inner       Clock
	catchupRate float64

	started   bool
	lastInner float64
	mono      float64
}

// NewMonotonic wraps inner. catchupRate must lie in (0, 1); it is the rate
// at which the monotonic view advances, relative to the underlying clock,
// while waiting for the underlying clock to catch up. A rate of 0.5 halves
// apparent time until synchronization with the underlying clock is
// restored.
func NewMonotonic(inner Clock, catchupRate float64) *Monotonic {
	if catchupRate <= 0 || catchupRate >= 1 {
		catchupRate = 0.5
	}
	return &Monotonic{inner: inner, catchupRate: catchupRate}
}

// Read returns the monotonic clock value at real time t. Successive reads
// never decrease, whatever happens to the underlying clock.
func (c *Monotonic) Read(t float64) float64 {
	innerNow := c.inner.Read(t)
	if !c.started {
		c.started = true
		c.lastInner = innerNow
		c.mono = innerNow
		return c.mono
	}
	delta := innerNow - c.lastInner
	gap := c.mono - c.lastInner
	c.lastInner = innerNow
	if delta < 0 {
		// The underlying clock was set backward between reads; the
		// monotonic view holds still and waits for it.
		return c.mono
	}
	if gap > 0 {
		// Catching up: the view advances at catchupRate while it is ahead,
		// so the gap shrinks by (1-catchupRate) per underlying second. If
		// the underlying clock closes the gap within this interval, the
		// view locks back onto it.
		if (1-c.catchupRate)*delta >= gap {
			c.mono = innerNow
		} else {
			c.mono += c.catchupRate * delta
		}
		return c.mono
	}
	c.mono = innerNow
	return c.mono
}

// Offset returns how far the monotonic view is ahead of the underlying
// clock as of the last Read; zero when fully caught up.
func (c *Monotonic) Offset() float64 {
	if !c.started {
		return 0
	}
	return c.mono - c.lastInner
}
