package clock

import (
	"math"
	"testing"
)

func TestSlewingPassThrough(t *testing.T) {
	c := NewSlewing(NewDrifting(0, 0, 0), 0.01)
	for _, at := range []float64{0, 10, 100} {
		if got := c.Read(at); got != at {
			t.Errorf("Read(%v) = %v", at, got)
		}
	}
	if got := c.PendingCorrection(); got != 0 {
		t.Errorf("PendingCorrection = %v", got)
	}
}

func TestSlewingAbsorbsForwardCorrection(t *testing.T) {
	c := NewSlewing(NewDrifting(0, 0, 0), 0.01)
	c.Read(0)
	c.Set(0, 1) // one second ahead, absorbed at 10 ms/s
	if got := c.Read(0); got != 0 {
		t.Errorf("correction applied instantly: %v", got)
	}
	// After 50 s: absorbed 0.5 s.
	if got, want := c.Read(50), 50.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("Read(50) = %v, want %v", got, want)
	}
	if got := c.PendingCorrection(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("PendingCorrection = %v, want 0.5", got)
	}
	// After 100 s: fully absorbed; no overshoot afterwards.
	if got, want := c.Read(100), 101.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Read(100) = %v, want %v", got, want)
	}
	if got, want := c.Read(200), 201.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Read(200) = %v, want %v (overshoot?)", got, want)
	}
	if got := c.PendingCorrection(); got != 0 {
		t.Errorf("PendingCorrection after absorption = %v", got)
	}
}

func TestSlewingBackwardCorrectionIsMonotonic(t *testing.T) {
	c := NewSlewing(NewDrifting(0, 0, 0), 0.5)
	c.Read(0)
	c.Set(0, -10) // huge backward correction
	prev := math.Inf(-1)
	for at := 0.0; at <= 40; at += 0.5 {
		v := c.Read(at)
		if v < prev {
			t.Fatalf("slewed clock went backward at t=%v: %v < %v", at, v, prev)
		}
		prev = v
	}
	// Fully absorbed: -10 at 0.5/s needs 20 s of clock progress.
	if got, want := c.Read(41), 31.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Read(41) = %v, want %v", got, want)
	}
}

func TestSlewingAccumulatesCorrections(t *testing.T) {
	c := NewSlewing(NewDrifting(0, 0, 0), 0.01)
	c.Read(0)
	c.Set(0, 1)
	c.Set(0, 3) // relative to current reading (still 0): total pending 3
	if got := c.PendingCorrection(); math.Abs(got-3) > 1e-9 {
		t.Errorf("PendingCorrection = %v, want 3", got)
	}
}

func TestSlewingStep(t *testing.T) {
	c := NewSlewing(NewDrifting(0, 0, 0), 0.01)
	c.Read(0)
	c.Step(0, 500)
	if got := c.Read(0); got != 500 {
		t.Errorf("Step not immediate: %v", got)
	}
	if got := c.PendingCorrection(); got != 0 {
		t.Errorf("Step left pending correction %v", got)
	}
}

func TestSlewingBadRateDefaults(t *testing.T) {
	for _, rate := range []float64{-1, 0, 1.5} {
		c := NewSlewing(NewDrifting(0, 0, 0), rate)
		if c.rate != 0.0005 {
			t.Errorf("rate %v not defaulted: %v", rate, c.rate)
		}
	}
}

func TestSlewingWithDriftingOscillator(t *testing.T) {
	// The oscillator drifts 1%; corrections are absorbed relative to the
	// oscillator's own progress.
	c := NewSlewing(NewDrifting(0, 0, 0.01), 0.1)
	c.Read(0)
	c.Set(0, 2.02) // reading is 0, correction +2.02
	// After 2 real seconds the oscillator advanced 2.02; absorption is
	// 0.1*2.02 = 0.202.
	if got, want := c.Read(2), 2.02+0.202; math.Abs(got-want) > 1e-9 {
		t.Errorf("Read(2) = %v, want %v", got, want)
	}
}
