package clock

import "math"

// Sinusoid is a clock whose rate offset varies sinusoidally:
//
//	dC/dt = 1 + A sin(2 pi t / P + phase)
//
// the classic model of a crystal oscillator breathing with a daily
// temperature cycle. The amplitude A is a valid drift bound
// (|1 - dC/dt| <= A always), so a server claiming delta = A satisfies the
// paper's assumptions while its instantaneous rate wanders — the "usually
// stable" clocks of Section 1.1. Unlike a constant-drift clock, its
// offset oscillates rather than accumulates, which exercises the
// algorithms' behavior when drift self-cancels over a period.
type Sinusoid struct {
	amp    float64
	period float64
	phase  float64

	t0 float64 // real time of last reset
	v0 float64 // clock value at t0
}

var (
	_ Clock = (*Sinusoid)(nil)
	_ Rated = (*Sinusoid)(nil)
)

// NewSinusoid returns a sinusoidal-rate clock reading value at real time
// t. amp is the rate amplitude (and a valid claimed bound); period is the
// modulation period in seconds (e.g. 86400 for a daily thermal cycle);
// phase is the phase at real time zero, in radians. Non-positive periods
// default to one day; negative amplitudes are clamped to zero.
func NewSinusoid(t, value, amp, period, phase float64) *Sinusoid {
	if period <= 0 {
		period = 86400
	}
	if amp < 0 {
		amp = 0
	}
	return &Sinusoid{amp: amp, period: period, phase: phase, t0: t, v0: value}
}

// Read integrates the rate in closed form:
//
//	C(t) = v0 + (t-t0) - A P/(2 pi) [cos(w t + phase) - cos(w t0 + phase)]
//
// with w = 2 pi / P.
func (c *Sinusoid) Read(t float64) float64 {
	w := 2 * math.Pi / c.period
	integral := -(c.amp / w) * (math.Cos(w*t+c.phase) - math.Cos(w*c.t0+c.phase))
	return c.v0 + (t - c.t0) + integral
}

// Set resets the clock value; the oscillator's modulation continues
// unchanged.
func (c *Sinusoid) Set(t, value float64) {
	c.t0 = t
	c.v0 = value
}

// ActualRate returns dC/dt at real time tracked by the last reset
// reference; since the rate depends only on absolute time, it takes no
// argument beyond the stored phase and is reported for the last reset
// time. Use RateAt for an arbitrary instant.
func (c *Sinusoid) ActualRate() float64 { return c.RateAt(c.t0) }

// RateAt returns dC/dt at real time t.
func (c *Sinusoid) RateAt(t float64) float64 {
	return 1 + c.amp*math.Sin(2*math.Pi*t/c.period+c.phase)
}

// Amplitude returns the rate amplitude, a valid claimed drift bound.
func (c *Sinusoid) Amplitude() float64 { return c.amp }
