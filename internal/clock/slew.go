package clock

import "math"

// Slewing wraps a clock so that resets are absorbed gradually instead of
// stepping the value: a correction is amortized at no more than Rate
// clock-seconds of adjustment per clock-second. This is how deployed time
// daemons discipline an operating-system clock (adjtime), and for
// backward corrections with Rate < 1 it yields a locally monotonic clock
// — the deployed form of the Section 1.1 technique.
//
// Note the trade-off against rule MM-1's bookkeeping: while a correction
// is pending, the clock's reported value deliberately lags the
// synchronized value by the unabsorbed remainder, so a server using a
// Slewing clock must fold PendingCorrection into its maximum error.
type Slewing struct {
	inner Clock
	rate  float64

	started   bool
	lastInner float64
	applied   float64 // offset currently added to the inner clock
	pending   float64 // correction not yet absorbed
}

var _ Clock = (*Slewing)(nil)

// NewSlewing wraps inner with an adjustment rate in (0, 1], e.g. 0.0005
// for the classic 500 ppm slew. Rates outside the range default to 0.0005.
func NewSlewing(inner Clock, rate float64) *Slewing {
	if rate <= 0 || rate > 1 {
		rate = 0.0005
	}
	return &Slewing{inner: inner, rate: rate}
}

// Read returns the slewed clock value at real time t, absorbing pending
// correction in proportion to the underlying clock's progress since the
// previous read.
func (c *Slewing) Read(t float64) float64 {
	innerNow := c.inner.Read(t)
	if !c.started {
		c.started = true
		c.lastInner = innerNow
		return innerNow + c.applied
	}
	dInner := innerNow - c.lastInner
	c.lastInner = innerNow
	// The final absorption step subtracts exactly the remaining pending
	// amount (absorb == c.pending bit-for-bit), so pending reaches
	// exactly 0 and the sentinel compare below is provably safe.
	//lint:ignore floateq pending is driven to exactly 0 when a correction fully absorbs
	if dInner > 0 && c.pending != 0 {
		absorb := math.Min(math.Abs(c.pending), c.rate*dInner)
		if c.pending < 0 {
			absorb = -absorb
		}
		c.applied += absorb
		c.pending -= absorb
	}
	return innerNow + c.applied
}

// Set schedules a correction: the difference between value and the
// current reading becomes the pending adjustment, absorbed gradually
// rather than applied at once (a later Set replaces, not stacks on, an
// unabsorbed correction). The underlying oscillator is never stepped.
func (c *Slewing) Set(t, value float64) {
	current := c.Read(t)
	c.pending = value - current
}

// PendingCorrection returns the correction not yet absorbed. A time
// server must add its magnitude to the error it reports.
func (c *Slewing) PendingCorrection() float64 { return c.pending }

// Step applies a correction immediately, bypassing the slew (for the
// initial synchronization, where stepping is conventional).
func (c *Slewing) Step(t, value float64) {
	current := c.Read(t)
	c.applied += value - current
}
