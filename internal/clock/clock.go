// Package clock provides the clock models of the paper's Section 2: clocks
// are functions C(t) mapping real time to clock time, continuous between
// resets, with a bounded drift rate |1 - dC/dt| <= delta. The package also
// implements the failure modes enumerated in Section 1.1 (a clock "may fail
// in many ways, such as by stopping, racing ahead, or refusing to change its
// value when reset") and the monotonic-clock wrapper sketched there.
//
// All clocks are driven by an externally supplied real time t (float64
// seconds); they perform no I/O and spawn no goroutines, which keeps
// simulations deterministic. Reads must be issued with non-decreasing t;
// models that integrate a time-varying rate enforce this.
package clock

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Clock is a settable clock: a mapping from real time to clock time that a
// time server may read and reset. Implementations are not safe for
// concurrent use; in simulations all access is serialized by the event
// loop.
type Clock interface {
	// Read returns the clock's value at real time t. Real time must not
	// decrease across calls to Read or Set.
	Read(t float64) float64
	// Set resets the clock to value at real time t. A clock that refuses
	// to change (the paper's stuck failure) may ignore the call.
	Set(t, value float64)
}

// Rated is implemented by clocks that can report the actual instantaneous
// rate dC/dt at the last read. It is used by tests and experiments to
// verify drift-bound invariants; the synchronization algorithms never use
// it (a server only knows its claimed bound).
type Rated interface {
	// ActualRate returns dC/dt at the most recent Read or Set.
	ActualRate() float64
}

// Drifting is a clock that advances at a constant rate 1+drift between
// resets. It is the paper's basic model: correct bookkeeping requires only
// |drift| <= delta for the claimed bound delta.
type Drifting struct {
	t0    float64 // real time of last reset (or creation)
	v0    float64 // clock value at t0
	drift float64 // rate offset: dC/dt = 1 + drift
}

var (
	_ Clock = (*Drifting)(nil)
	_ Rated = (*Drifting)(nil)
)

// NewDrifting returns a clock that reads value at real time t and then
// advances at rate 1+drift.
func NewDrifting(t, value, drift float64) *Drifting {
	return &Drifting{t0: t, v0: value, drift: drift}
}

// Read returns v0 + (t-t0)*(1+drift).
func (c *Drifting) Read(t float64) float64 {
	return c.v0 + (t-c.t0)*(1+c.drift)
}

// Set resets the clock value; the drift rate is a property of the
// underlying oscillator and survives resets.
func (c *Drifting) Set(t, value float64) {
	c.t0 = t
	c.v0 = value
}

// ActualRate returns 1+drift.
func (c *Drifting) ActualRate() float64 { return 1 + c.drift }

// Drift returns the constant rate offset.
func (c *Drifting) Drift() float64 { return c.drift }

// SetDrift changes the oscillator's rate offset from real time t onward,
// preserving continuity of the clock value.
func (c *Drifting) SetDrift(t, drift float64) {
	v := c.Read(t)
	c.t0, c.v0, c.drift = t, v, drift
}

// RandomWalk is a clock whose instantaneous rate offset performs a bounded
// random walk within [-maxDrift, +maxDrift], resampled every step seconds
// of real time. It models the paper's "usually stable" oscillators and the
// i.i.d. per-interval drift variable alpha of Theorem 8. The walk reflects
// at the bounds, so |1 - dC/dt| <= maxDrift always holds and maxDrift is a
// valid claimed bound.
type RandomWalk struct {
	rng      *rand.Rand
	maxDrift float64
	step     float64 // resample period, real seconds
	sigma    float64 // per-step rate perturbation scale

	lastT float64 // real time up to which value is integrated
	value float64 // clock value at lastT
	rate  float64 // current rate offset
}

var (
	_ Clock = (*RandomWalk)(nil)
	_ Rated = (*RandomWalk)(nil)
)

// RandomWalkConfig configures a RandomWalk clock.
type RandomWalkConfig struct {
	// MaxDrift bounds |1 - dC/dt|. Must be non-negative.
	MaxDrift float64
	// Step is the real-time resampling period in seconds. Defaults to 60.
	Step float64
	// Sigma is the standard scale of per-step rate perturbations as a
	// fraction of MaxDrift. Defaults to 0.25.
	Sigma float64
	// InitialDrift is the starting rate offset, clamped to
	// [-MaxDrift, MaxDrift].
	InitialDrift float64
	// Seed seeds the walk's private PRNG.
	Seed uint64
}

// NewRandomWalk returns a random-walk clock reading value at real time t.
func NewRandomWalk(t, value float64, cfg RandomWalkConfig) *RandomWalk {
	if cfg.Step <= 0 {
		cfg.Step = 60
	}
	if cfg.Sigma <= 0 {
		cfg.Sigma = 0.25
	}
	if cfg.MaxDrift < 0 {
		cfg.MaxDrift = 0
	}
	drift := math.Max(-cfg.MaxDrift, math.Min(cfg.MaxDrift, cfg.InitialDrift))
	return &RandomWalk{
		rng:      rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
		maxDrift: cfg.MaxDrift,
		step:     cfg.Step,
		sigma:    cfg.Sigma * cfg.MaxDrift,
		lastT:    t,
		value:    value,
		rate:     drift,
	}
}

// Read integrates the walk forward to real time t and returns the clock
// value. It panics if t precedes the previous Read or Set: a backwards
// read would require un-integrating the walk.
func (c *RandomWalk) Read(t float64) float64 {
	c.advance(t)
	return c.value
}

// Set resets the clock value at real time t; the walk's rate state is
// unaffected.
func (c *RandomWalk) Set(t, value float64) {
	c.advance(t)
	c.value = value
}

// ActualRate returns the current instantaneous rate dC/dt.
func (c *RandomWalk) ActualRate() float64 { return 1 + c.rate }

// MaxDrift returns the walk's bound on |1 - dC/dt|.
func (c *RandomWalk) MaxDrift() float64 { return c.maxDrift }

func (c *RandomWalk) advance(t float64) {
	if t < c.lastT {
		panic(fmt.Sprintf("clock: RandomWalk read backwards: %v < %v", t, c.lastT))
	}
	for t-c.lastT >= c.step {
		c.value += c.step * (1 + c.rate)
		c.lastT += c.step
		c.resample()
	}
	if dt := t - c.lastT; dt > 0 {
		c.value += dt * (1 + c.rate)
		c.lastT = t
	}
}

// resample perturbs the rate and reflects it into [-maxDrift, maxDrift].
func (c *RandomWalk) resample() {
	if c.maxDrift <= 0 {
		return
	}
	r := c.rate + c.rng.NormFloat64()*c.sigma
	for r > c.maxDrift || r < -c.maxDrift {
		if r > c.maxDrift {
			r = 2*c.maxDrift - r
		}
		if r < -c.maxDrift {
			r = -2*c.maxDrift - r
		}
	}
	c.rate = r
}

// Perfect returns a drift-free clock reading value at real time t. A
// perfect clock initialized with value == t is the paper's standard.
func Perfect(t, value float64) *Drifting { return NewDrifting(t, value, 0) }
