package clock

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDriftingRead(t *testing.T) {
	tests := []struct {
		name  string
		drift float64
		t0    float64
		v0    float64
		at    float64
		want  float64
	}{
		{name: "perfect", drift: 0, t0: 0, v0: 0, at: 100, want: 100},
		{name: "fast", drift: 0.01, t0: 0, v0: 0, at: 100, want: 101},
		{name: "slow", drift: -0.01, t0: 0, v0: 0, at: 100, want: 99},
		{name: "offset start", drift: 0, t0: 10, v0: 50, at: 20, want: 60},
		{name: "hour a day fast", drift: 1.0 / 24, t0: 0, v0: 0, at: 86400, want: 86400 + 3600},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := NewDrifting(tt.t0, tt.v0, tt.drift)
			if got := c.Read(tt.at); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("Read(%v) = %v, want %v", tt.at, got, tt.want)
			}
		})
	}
}

func TestDriftingSet(t *testing.T) {
	c := NewDrifting(0, 0, 0.1)
	c.Set(10, 1000)
	if got := c.Read(10); got != 1000 {
		t.Errorf("Read right after Set = %v, want 1000", got)
	}
	// Drift survives the reset.
	if got, want := c.Read(20), 1000+10*1.1; math.Abs(got-want) > 1e-9 {
		t.Errorf("Read(20) = %v, want %v", got, want)
	}
	if got := c.ActualRate(); got != 1.1 {
		t.Errorf("ActualRate() = %v, want 1.1", got)
	}
	if got := c.Drift(); got != 0.1 {
		t.Errorf("Drift() = %v, want 0.1", got)
	}
}

func TestDriftingSetDriftContinuity(t *testing.T) {
	c := NewDrifting(0, 0, 0.5)
	before := c.Read(10)
	c.SetDrift(10, -0.5)
	after := c.Read(10)
	if math.Abs(before-after) > 1e-9 {
		t.Errorf("SetDrift broke continuity: %v vs %v", before, after)
	}
	if got, want := c.Read(12), before+2*0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("Read after SetDrift = %v, want %v", got, want)
	}
}

// TestDriftingBoundInvariant: for any drift d with |d| <= delta, the clock
// satisfies the paper's integrated drift relation
// C(t0) + dt - delta*dt <= C(t0+dt) <= C(t0) + dt + delta*dt.
func TestDriftingBoundInvariant(t *testing.T) {
	f := func(driftSeed, dtSeed float64) bool {
		delta := 1e-4
		drift := math.Mod(math.Abs(driftSeed), 2*delta) - delta // in [-delta, delta)
		dt := math.Mod(math.Abs(dtSeed), 1e6)
		if math.IsNaN(drift) || math.IsNaN(dt) {
			return true
		}
		c := NewDrifting(0, 0, drift)
		v := c.Read(dt)
		lo := dt - delta*dt - 1e-9
		hi := dt + delta*dt + 1e-9
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPerfect(t *testing.T) {
	c := Perfect(0, 0)
	for _, at := range []float64{0, 1, 1e6} {
		if got := c.Read(at); got != at {
			t.Errorf("Perfect.Read(%v) = %v", at, got)
		}
	}
}

func TestRandomWalkRespectsBound(t *testing.T) {
	const maxDrift = 5e-5
	c := NewRandomWalk(0, 0, RandomWalkConfig{MaxDrift: maxDrift, Step: 10, Seed: 42})
	prevT, prevV := 0.0, 0.0
	for i := 1; i <= 2000; i++ {
		tt := float64(i) * 7.3
		v := c.Read(tt)
		dt := tt - prevT
		dv := v - prevV
		// Average rate over the step must stay within the bound.
		rate := dv / dt
		if rate < 1-maxDrift-1e-12 || rate > 1+maxDrift+1e-12 {
			t.Fatalf("step %d: average rate %v outside 1±%v", i, rate, maxDrift)
		}
		prevT, prevV = tt, v
	}
	// Instantaneous rate bound.
	if r := c.ActualRate(); math.Abs(r-1) > maxDrift+1e-12 {
		t.Errorf("ActualRate() = %v outside bound", r)
	}
	if c.MaxDrift() != maxDrift {
		t.Errorf("MaxDrift() = %v", c.MaxDrift())
	}
}

func TestRandomWalkDeterminism(t *testing.T) {
	cfg := RandomWalkConfig{MaxDrift: 1e-4, Step: 5, Seed: 7}
	a := NewRandomWalk(0, 0, cfg)
	b := NewRandomWalk(0, 0, cfg)
	for i := 1; i <= 500; i++ {
		tt := float64(i) * 3.1
		if va, vb := a.Read(tt), b.Read(tt); va != vb {
			t.Fatalf("same seed diverged at %v: %v vs %v", tt, va, vb)
		}
	}
}

func TestRandomWalkSet(t *testing.T) {
	c := NewRandomWalk(0, 0, RandomWalkConfig{MaxDrift: 1e-4, Seed: 1})
	c.Read(100)
	c.Set(100, 5000)
	if got := c.Read(100); got != 5000 {
		t.Errorf("Read after Set = %v, want 5000", got)
	}
	if got := c.Read(101); got < 5000 {
		t.Errorf("clock went backward after Set: %v", got)
	}
}

func TestRandomWalkBackwardsReadPanics(t *testing.T) {
	c := NewRandomWalk(0, 0, RandomWalkConfig{MaxDrift: 1e-4, Seed: 1})
	c.Read(100)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on backwards read")
		}
	}()
	c.Read(99)
}

func TestRandomWalkZeroDrift(t *testing.T) {
	c := NewRandomWalk(0, 0, RandomWalkConfig{MaxDrift: 0, Seed: 3})
	if got := c.Read(1000); got != 1000 {
		t.Errorf("zero-drift walk Read(1000) = %v", got)
	}
}

func TestRandomWalkConfigDefaults(t *testing.T) {
	c := NewRandomWalk(0, 0, RandomWalkConfig{MaxDrift: -1, Seed: 1})
	if c.MaxDrift() != 0 {
		t.Errorf("negative MaxDrift not clamped: %v", c.MaxDrift())
	}
	c2 := NewRandomWalk(0, 0, RandomWalkConfig{MaxDrift: 1e-4, InitialDrift: 1, Seed: 1})
	if r := c2.ActualRate(); math.Abs(r-1) > 1e-4 {
		t.Errorf("InitialDrift not clamped: rate %v", r)
	}
}

func TestStopped(t *testing.T) {
	inner := NewDrifting(0, 0, 0)
	c := NewStopped(inner, 100)
	if got := c.Read(50); got != 50 {
		t.Errorf("pre-failure Read(50) = %v", got)
	}
	if got := c.Read(150); got != 100 {
		t.Errorf("post-failure Read(150) = %v, want frozen 100", got)
	}
	if got := c.Read(1e6); got != 100 {
		t.Errorf("value advanced after stop: %v", got)
	}
	c.Set(200, 500)
	if got := c.Read(300); got != 500 {
		t.Errorf("Set after stop: Read = %v, want 500 (still frozen)", got)
	}
}

func TestStoppedSetBeforeFailure(t *testing.T) {
	c := NewStopped(NewDrifting(0, 0, 0), 100)
	c.Set(10, 1000)
	if got := c.Read(20); got != 1010 {
		t.Errorf("Read(20) = %v, want 1010", got)
	}
	// Freezes at value as of failAt.
	if got := c.Read(200); got != 1090 {
		t.Errorf("frozen value = %v, want 1090", got)
	}
}

func TestRacing(t *testing.T) {
	inner := NewDrifting(0, 0, 0)
	c := NewRacing(inner, 100, 2.0)
	if got := c.Read(50); got != 50 {
		t.Errorf("pre-failure Read(50) = %v", got)
	}
	// After failAt the clock gains 2 seconds per second.
	if got := c.Read(110); got != 120 {
		t.Errorf("Read(110) = %v, want 120", got)
	}
	if got := c.ActualRate(); got != 2.0 {
		t.Errorf("ActualRate = %v, want 2", got)
	}
	// Reset during the race: race continues from the new value.
	c.Set(110, 0)
	if got := c.Read(115); got != 10 {
		t.Errorf("Read(115) after reset = %v, want 10", got)
	}
}

func TestRacingPreFailureRate(t *testing.T) {
	inner := NewDrifting(0, 0, 0.25)
	c := NewRacing(inner, 1000, 2.0)
	if got := c.ActualRate(); got != 1.25 {
		t.Errorf("pre-failure ActualRate = %v, want 1.25", got)
	}
	c.Set(10, 0)
	if got := c.Read(14); math.Abs(got-5) > 1e-9 {
		t.Errorf("pre-failure Set/Read = %v, want 5", got)
	}
}

func TestRacingFourPercentADay(t *testing.T) {
	// The paper's recovery experiment: a clock "about four percent fast"
	// (an hour a day). Racing factor 25/24 gains one hour per day.
	c := NewRacing(NewDrifting(0, 0, 0), 0, 25.0/24)
	gain := c.Read(86400) - 86400
	if math.Abs(gain-3600) > 1e-6 {
		t.Errorf("one-day gain = %v s, want 3600", gain)
	}
}

func TestStuck(t *testing.T) {
	inner := NewDrifting(0, 0, 0)
	c := NewStuck(inner, 100)
	c.Set(50, 1000)
	if got := c.Read(60); got != 1010 {
		t.Errorf("pre-failure set ignored: Read = %v", got)
	}
	c.Set(150, 0)
	if got := c.Read(150); got != 1100 {
		t.Errorf("post-failure Set not ignored: Read = %v, want 1100", got)
	}
}

func TestMonotonicTracksInner(t *testing.T) {
	inner := NewDrifting(0, 0, 0)
	m := NewMonotonic(inner, 0.5)
	for _, at := range []float64{0, 1, 5, 100} {
		if got := m.Read(at); got != at {
			t.Errorf("Read(%v) = %v", at, got)
		}
	}
	if got := m.Offset(); got != 0 {
		t.Errorf("Offset = %v, want 0", got)
	}
}

func TestMonotonicBackwardSet(t *testing.T) {
	inner := NewDrifting(0, 0, 0)
	m := NewMonotonic(inner, 0.5)
	m.Read(100) // mono = 100
	inner.Set(100, 90)

	// Immediately after the backward set the monotonic view holds at 100.
	if got := m.Read(100); got != 100 {
		t.Errorf("Read after backward set = %v, want 100", got)
	}
	// While catching up, mono advances at half the clock rate.
	if got := m.Read(110); got != 105 {
		t.Errorf("Read(110) = %v, want 105", got)
	}
	if off := m.Offset(); math.Abs(off-5) > 1e-9 {
		t.Errorf("Offset = %v, want 5", off)
	}
	// Inner reaches mono at t=120 (inner=110, mono=110).
	if got := m.Read(120); got != 110 {
		t.Errorf("Read(120) = %v, want 110", got)
	}
	// Fully caught up: tracks inner exactly again.
	if got := m.Read(130); got != 120 {
		t.Errorf("Read(130) = %v, want 120", got)
	}
	if off := m.Offset(); off != 0 {
		t.Errorf("Offset after catch-up = %v", off)
	}
}

func TestMonotonicForwardSet(t *testing.T) {
	inner := NewDrifting(0, 0, 0)
	m := NewMonotonic(inner, 0.5)
	m.Read(100)
	inner.Set(100, 500)
	if got := m.Read(100); got != 500 {
		t.Errorf("forward set not followed: %v", got)
	}
}

func TestMonotonicNeverDecreases(t *testing.T) {
	inner := NewDrifting(0, 0, 0.01)
	m := NewMonotonic(inner, 0.5)
	prev := math.Inf(-1)
	for i := 0; i < 1000; i++ {
		at := float64(i)
		if i%37 == 0 {
			// Adversarial backward jumps.
			inner.Set(at, inner.Read(at)-5)
		}
		if i%113 == 0 {
			inner.Set(at, inner.Read(at)+3)
		}
		v := m.Read(at)
		if v < prev {
			t.Fatalf("monotonic clock decreased at t=%v: %v < %v", at, v, prev)
		}
		prev = v
	}
}

func TestMonotonicBadCatchupRateDefaults(t *testing.T) {
	for _, rate := range []float64{-1, 0, 1, 2} {
		m := NewMonotonic(NewDrifting(0, 0, 0), rate)
		if m.catchupRate != 0.5 {
			t.Errorf("catchupRate %v not defaulted: %v", rate, m.catchupRate)
		}
	}
}

func TestMonotonicOffsetBeforeFirstRead(t *testing.T) {
	m := NewMonotonic(NewDrifting(0, 0, 0), 0.5)
	if got := m.Offset(); got != 0 {
		t.Errorf("Offset before first read = %v", got)
	}
}
