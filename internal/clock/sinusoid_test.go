package clock

import (
	"math"
	"testing"
)

func TestSinusoidReadClosedForm(t *testing.T) {
	// Compare the closed form against numeric integration of the rate.
	c := NewSinusoid(0, 0, 5e-5, 3600, 0.7)
	integrated := 0.0
	const dt = 0.01
	for step := 0; step < 100000; step++ {
		tt := float64(step) * dt
		integrated += c.RateAt(tt+dt/2) * dt
	}
	at := 1000.0
	got := c.Read(at)
	// Numeric integral up to t=1000 is the first 100000 steps.
	if math.Abs(got-integrated) > 1e-6 {
		t.Errorf("Read(%v) = %v, numeric integral = %v", at, got, integrated)
	}
}

func TestSinusoidDriftBoundInvariant(t *testing.T) {
	// |C(t0+d) - C(t0) - d| <= amp*d for all windows: amp is a valid
	// claimed bound.
	const amp = 1e-4
	c := NewSinusoid(0, 0, amp, 600, 1.2)
	prevT, prevV := 0.0, c.Read(0)
	for step := 1; step <= 5000; step++ {
		tt := float64(step) * 1.7
		v := c.Read(tt)
		d := tt - prevT
		if dev := math.Abs((v - prevV) - d); dev > amp*d+1e-12 {
			t.Fatalf("window ending %v: deviation %v exceeds amp*d %v", tt, dev, amp*d)
		}
		prevT, prevV = tt, v
	}
}

func TestSinusoidSelfCancelsOverPeriod(t *testing.T) {
	// Over a full period the oscillating drift integrates to ~zero.
	c := NewSinusoid(0, 0, 1e-3, 100, 0)
	if got := c.Read(100); math.Abs(got-100) > 1e-9 {
		t.Errorf("Read(period) = %v, want 100 (self-cancelling)", got)
	}
	// Half a period accumulates the maximum offset 2*A*P/(2 pi).
	want := 50 + 2*1e-3*100/(2*math.Pi)
	if got := c.Read(50); math.Abs(got-want) > 1e-9 {
		t.Errorf("Read(half period) = %v, want %v", got, want)
	}
}

func TestSinusoidSet(t *testing.T) {
	c := NewSinusoid(0, 0, 1e-4, 3600, 0)
	c.Read(500)
	c.Set(500, 1000)
	if got := c.Read(500); got != 1000 {
		t.Errorf("Read after Set = %v", got)
	}
	// Modulation phase continues from absolute time, not from the reset.
	rate := c.RateAt(500)
	want := 1 + 1e-4*math.Sin(2*math.Pi*500/3600)
	if math.Abs(rate-want) > 1e-12 {
		t.Errorf("RateAt(500) = %v, want %v", rate, want)
	}
}

func TestSinusoidDefaults(t *testing.T) {
	c := NewSinusoid(0, 0, -1, 0, 0)
	if c.Amplitude() != 0 {
		t.Errorf("negative amplitude not clamped: %v", c.Amplitude())
	}
	if c.period != 86400 {
		t.Errorf("period not defaulted: %v", c.period)
	}
	if got := c.ActualRate(); got != 1 {
		t.Errorf("zero-amplitude rate = %v", got)
	}
}

func TestSinusoidServerCorrectness(t *testing.T) {
	// A server over a sinusoidal clock claiming delta = amplitude stays
	// correct without ever synchronizing.
	const amp = 5e-5
	c := NewSinusoid(0, 0, amp, 3600, 0.3)
	for _, tt := range []float64{0, 100, 1800, 3600, 86400} {
		v := c.Read(tt)
		e := 0.01 + amp*tt // initial error + worst-case deterioration
		if math.Abs(v-tt) > e {
			t.Fatalf("t=%v: offset %v exceeds claimed-bound error %v", tt, v-tt, e)
		}
	}
}
