package chaos

import (
	"math"

	"disttime/internal/core"
	"disttime/internal/obs"
)

// Verdict is the outcome of one campaign.
type Verdict struct {
	// OK reports that no invariant was violated.
	OK bool
	// Violations lists what the monitor recorded (capped; the first entry
	// is the earliest violation and drives shrinking).
	Violations []Violation
	// Steps is the number of simulator events executed, a cheap
	// determinism fingerprint: identical campaigns must report identical
	// step counts.
	Steps uint64
}

// First returns the earliest violation, if any.
func (v Verdict) First() (Violation, bool) {
	if len(v.Violations) == 0 {
		return Violation{}, false
	}
	return v.Violations[0], true
}

// Run executes the campaign with the always-on invariant monitor and
// returns the verdict. Equal campaigns always return equal verdicts.
func Run(c Campaign) (Verdict, error) { return run(c, nil, nil) }

// RunObserved executes the campaign like Run while feeding the
// observability registry: per-campaign invariant-check and
// fault-activation counters, plus the service, simulator, and network
// metrics of an observed run. Observation is passive — RunObserved
// returns exactly the verdict (including the Steps determinism
// fingerprint) that Run would.
func RunObserved(c Campaign, reg *obs.Registry) (Verdict, error) { return run(c, nil, reg) }

// RunInjected executes the campaign with fn replacing the campaign's
// synchronization function on every server. It exists so the harness can
// test itself: injecting a deliberately broken rule (see BuggyMM) must
// produce violations, or the monitor is asleep.
func RunInjected(c Campaign, fn core.SyncFunc) (Verdict, error) { return run(c, fn, nil) }

func run(c Campaign, override core.SyncFunc, reg *obs.Registry) (Verdict, error) {
	if err := c.Validate(); err != nil {
		return Verdict{}, err
	}
	svc, err := c.build(override)
	if err != nil {
		return Verdict{}, err
	}
	sink := newObsSink(reg)
	sink.campaigns.Inc()
	if reg != nil {
		svc.Observe(reg, nil)
	}
	m := newMonitor(svc, c, sink)
	eng := &engine{svc: svc, sink: sink}
	if err := eng.install(c); err != nil {
		return Verdict{}, err
	}
	svc.Run(c.Dur)
	v := Verdict{
		OK:         len(m.violations) == 0,
		Violations: m.violations,
		Steps:      svc.Sim.Steps(),
	}
	if !v.OK {
		sink.failed.Inc()
	}
	return v, nil
}

// BuggyMM is rule MM-2 with the transit-error term deliberately omitted:
// an adopted reply is charged only its own error E_j, not the
// (1+delta_i)*xi^i_j the rule requires, so every adoption silently
// inherits up to one transit delay of unaccounted offset. It is the
// canonical planted bug for harness self-tests — the containment monitor
// must catch it within a few rounds even with an empty fault schedule —
// and the model for writing new planted bugs when extending the corpus.
type BuggyMM struct{}

// Name reports "MM" so the monitor applies the MM invariants to it.
func (BuggyMM) Name() string { return "MM" }

// Sync applies the broken rule.
func (BuggyMM) Sync(s *core.Server, t float64, replies []core.Reply) core.Result {
	var res core.Result
	for i, r := range replies {
		if !s.ConsistentWith(t, r) {
			res.Inconsistent = append(res.Inconsistent, i)
			continue
		}
		age := math.Max(0, r.Age)
		c := r.C + age
		lead := r.E + s.Delta()*age // BUG: no (1+delta)*RTT transit charge
		if lead <= s.ErrorAt(t) {
			s.SetClock(t, c, lead)
			res.Reset = true
			res.Accepted++
		}
	}
	return res
}
