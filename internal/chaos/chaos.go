package chaos

import (
	"math"

	"disttime/internal/core"
	"disttime/internal/interval"
	"disttime/internal/obs"
	"disttime/internal/txn"
)

// Verdict is the outcome of one campaign.
type Verdict struct {
	// OK reports that no invariant was violated.
	OK bool
	// Violations lists what the monitor recorded (capped; the first entry
	// is the earliest violation and drives shrinking).
	Violations []Violation
	// Steps is the number of simulator events executed, a cheap
	// determinism fingerprint: identical campaigns must report identical
	// step counts.
	Steps uint64
	// MinSlack is the tightest containment margin the monitor asserted:
	// the minimum over all containment checks of how deep true time sat
	// inside the checked interval (+Inf when nothing was asserted,
	// negative when containment was violated). The adversarial search
	// hill-climbs on this margin: a schedule that shrinks it is closer to
	// a violation even while every check still passes.
	MinSlack float64
}

// First returns the earliest violation, if any.
func (v Verdict) First() (Violation, bool) {
	if len(v.Violations) == 0 {
		return Violation{}, false
	}
	return v.Violations[0], true
}

// Run executes the campaign with the always-on invariant monitor and
// returns the verdict. Equal campaigns always return equal verdicts.
func Run(c Campaign) (Verdict, error) { return run(c, nil, nil, nil) }

// RunObserved executes the campaign like Run while feeding the
// observability registry: per-campaign invariant-check and
// fault-activation counters, plus the service, simulator, and network
// metrics of an observed run. Observation is passive — RunObserved
// returns exactly the verdict (including the Steps determinism
// fingerprint) that Run would.
func RunObserved(c Campaign, reg *obs.Registry) (Verdict, error) { return run(c, nil, nil, reg) }

// RunInjected executes the campaign with fn replacing the campaign's
// synchronization function on every server. It exists so the harness can
// test itself: injecting a deliberately broken rule (see BuggyMM) must
// produce violations, or the monitor is asleep.
func RunInjected(c Campaign, fn core.SyncFunc) (Verdict, error) { return run(c, fn, nil, nil) }

// RunInjectedWaiter executes the campaign with the transaction workload
// enabled and waiter replacing its commit policy. It is the workload's
// counterpart to RunInjected: injecting txn.BuggyCommitWait must
// produce txn-external-consistency violations, or the checker is
// asleep. The campaign runs with Txn forced on so the injected policy
// has transactions to decide.
func RunInjectedWaiter(c Campaign, waiter txn.Waiter) (Verdict, error) {
	c.Txn = true
	return run(c, nil, waiter, nil)
}

// txnRate is the per-client transaction rate (transactions per virtual
// second) for campaign workloads: slow enough that the workload's
// events stay a small fraction of the protocol's, fast enough that
// every campaign commits hundreds of transactions.
const txnRate = 0.5

func run(c Campaign, override core.SyncFunc, waiter txn.Waiter, reg *obs.Registry) (Verdict, error) {
	if err := c.Validate(); err != nil {
		return Verdict{}, err
	}
	svc, err := c.build(override)
	if err != nil {
		return Verdict{}, err
	}
	sink := newObsSink(reg)
	sink.campaigns.Inc()
	if reg != nil {
		svc.Observe(reg, nil)
	}
	m := newMonitor(svc, c, sink)
	eng := &engine{svc: svc, sink: sink}
	if err := eng.install(c); err != nil {
		return Verdict{}, err
	}
	if c.Txn {
		// One client per server; violations land in the verdict under the
		// txn-external-consistency invariant, gated on the monitor's taint
		// state so faulted clocks (whose containment the theorems no
		// longer promise) cannot raise false alarms.
		_, err := txn.Attach(svc, txn.Config{
			Clients: c.N,
			Rate:    txnRate,
			Waiter:  waiter,
			Trusted: m.Trusted,
			OnViolation: func(v txn.Violation) {
				m.report(v.T, v.Client, "txn-external-consistency", v.Detail)
			},
		})
		if err != nil {
			return Verdict{}, err
		}
	}
	svc.Run(c.Dur)
	v := Verdict{
		OK:         len(m.violations) == 0,
		Violations: m.violations,
		Steps:      svc.Sim.Steps(),
		MinSlack:   m.MinSlack(),
	}
	if !v.OK {
		sink.failed.Inc()
	}
	return v, nil
}

// BuggyMM is rule MM-2 with the transit-error term deliberately omitted:
// an adopted reply is charged only its own error E_j, not the
// (1+delta_i)*xi^i_j the rule requires, so every adoption silently
// inherits up to one transit delay of unaccounted offset. It is the
// canonical planted bug for harness self-tests — the containment monitor
// must catch it within a few rounds even with an empty fault schedule —
// and the model for writing new planted bugs when extending the corpus.
type BuggyMM struct{}

// Name reports "MM" so the monitor applies the MM invariants to it.
func (BuggyMM) Name() string { return "MM" }

// Sync applies the broken rule.
func (BuggyMM) Sync(s *core.Server, t float64, replies []core.Reply) core.Result {
	var res core.Result
	for i, r := range replies {
		if !s.ConsistentWith(t, r) {
			res.Inconsistent = append(res.Inconsistent, i)
			continue
		}
		age := math.Max(0, r.Age)
		c := r.C + age
		lead := r.E + s.Delta()*age // BUG: no (1+delta)*RTT transit charge
		if lead <= s.ErrorAt(t) {
			s.SetClock(t, c, lead)
			res.Reset = true
			res.Accepted++
		}
	}
	return res
}

// BuggyIM is a Byzantine-tolerant intersection function done wrong: it
// adopts Marzullo's maximum-overlap window, tightened to the full
// intersection of its member intervals, with NO coverage floor — the
// seductive "just take the best agreement" reading of [Marzullo 83] that
// accepts an agreement of f >= n/3 lying replies. Against honest peers it
// behaves like selectIM and passes every invariant. Against a single
// two-faced liar whose per-peer offset overlaps one flank of the honest
// cluster, the refined window hangs off the honest side: the tightened
// intersection excludes real time and the very next containment check
// fires. It is the planted bug proving the byz-containment invariant is
// awake, and the negative image of core.ByzIM's envelope argument.
type BuggyIM struct{}

// Name reports "byz-IM" so the run is observed like the real thing; the
// monitor's regime is keyed on the campaign's FnName, not this label.
func (BuggyIM) Name() string { return "byz-IM" }

// Sync adopts the tightened maximum-overlap window unconditionally.
func (BuggyIM) Sync(s *core.Server, t float64, replies []core.Reply) core.Result {
	var res core.Result
	ivs := []interval.Interval{s.Interval(t)}
	for _, r := range replies {
		// The honest interval construction (core.Server.effective): age the
		// reply by the collection delay, charge drift on the age and one
		// transit on the lead. The construction is correct — the bug is
		// purely in what the function does with the intervals.
		age := math.Max(0, r.Age)
		drift := s.Delta() * age
		c := r.C + age
		ivs = append(ivs, interval.Interval{
			Lo: c - (r.E + drift),
			Hi: c + (r.E + (1+s.Delta())*r.RTT + drift),
		})
	}
	best := interval.Marzullo(ivs)
	var member []interval.Interval
	for _, iv := range ivs {
		if interval.Consistent(iv, best.Interval) {
			member = append(member, iv)
		}
	}
	common, ok := interval.IntersectAll(member)
	if !ok {
		common = best.Interval
	}
	// BUG: no check that best.Count clears len(ivs)-F — any agreement,
	// however thin or however much of it is lies, is adopted.
	s.SetClock(t, common.Midpoint(), common.HalfWidth())
	res.Reset = true
	res.Accepted = best.Count
	return res
}
