package chaos

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGeneratedCampaignsPass runs a spread of generated campaigns against
// the real synchronization rules. The theorems say the monitored
// invariants hold under every schedule the generator can produce, so any
// failure here is either a real protocol bug or a monitor bug — both
// worth failing loudly over.
func TestGeneratedCampaignsPass(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		c := Generate(seed)
		v, err := Run(c)
		if err != nil {
			t.Fatalf("seed %d: %v\ncampaign: %s", seed, err, c)
		}
		if !v.OK {
			first, _ := v.First()
			t.Errorf("seed %d: %v\ncampaign: %s", seed, first, c)
		}
	}
}

// TestRunDeterministic re-runs the same campaign and demands an identical
// verdict, step count included. This is the determinism contract shrinking
// and corpus replay both lean on.
func TestRunDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		c := Generate(seed)
		a, err := Run(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Run(c)
		if err != nil {
			t.Fatalf("seed %d re-run: %v", seed, err)
		}
		if a.Steps != b.Steps || a.OK != b.OK || len(a.Violations) != len(b.Violations) {
			t.Fatalf("seed %d: verdicts diverge: %+v vs %+v", seed, a, b)
		}
		for i := range a.Violations {
			if a.Violations[i] != b.Violations[i] {
				t.Fatalf("seed %d: violation %d diverges: %v vs %v",
					seed, i, a.Violations[i], b.Violations[i])
			}
		}
	}
}

// TestEncodeRoundTrip checks String∘Parse is the identity on generated
// campaigns, faults and all.
func TestEncodeRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		c := Generate(seed)
		line := c.String()
		got, err := Parse(line)
		if err != nil {
			t.Fatalf("seed %d: Parse(%q): %v", seed, line, err)
		}
		if got.String() != line {
			t.Fatalf("seed %d: round trip changed the line:\n in: %s\nout: %s", seed, line, got.String())
		}
	}
}

// TestParseRejectsMalformed exercises the codec's error paths.
func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"v2 seed=1",
		"v1 seed=1 n=3 topo=mesh fn=MM rec=0 dur=300 sync=30", // missing faults
		"v1 seed=1 seed=2 n=3 topo=mesh fn=MM rec=0 dur=300 sync=30 faults=-",
		"v1 seed=1 n=3 topo=mesh fn=MM rec=2 dur=300 sync=30 faults=-",
		"v1 seed=1 n=3 topo=mesh fn=MM rec=0 dur=300 sync=30 faults=zap:1@50",
		"v1 seed=1 n=3 topo=mesh fn=MM rec=0 dur=300 sync=30 faults=stop@50",        // missing target
		"v1 seed=1 n=3 topo=mesh fn=MM rec=0 dur=300 sync=30 faults=loss@50*0.5",    // missing window
		"v1 seed=1 n=3 topo=mesh fn=MM rec=0 dur=300 sync=30 faults=part@50+60",     // missing groups
		"v1 seed=1 n=3 topo=mesh fn=MM rec=0 dur=300 sync=30 faults=stop:9@50",      // target out of range
		"v1 seed=1 n=3 topo=mesh fn=MM rec=0 dur=300 sync=30 faults=crash:1@290+60", // window overruns
		"v1 seed=1 n=3 topo=bus fn=MM rec=0 dur=300 sync=30 faults=-",
		"v1 seed=1 n=3 topo=mesh fn=XX rec=0 dur=300 sync=30 faults=-",
	}
	for _, line := range bad {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q) accepted a malformed line", line)
		}
	}
}

// TestHarnessCatchesBuggyMM is the self-test the whole harness exists
// for: a deliberately broken MM rule (transit-error term dropped) must be
// caught by the monitor, and shrinking must cut the reproducer down to at
// most three faults while preserving the violated invariant.
func TestHarnessCatchesBuggyMM(t *testing.T) {
	buggy := func(c Campaign) (Verdict, error) { return RunInjected(c, BuggyMM{}) }
	caught := 0
	for seed := uint64(1); seed <= 60 && caught < 3; seed++ {
		c := Generate(seed)
		if c.FnName != "MM" {
			continue
		}
		v, err := buggy(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v.OK {
			continue
		}
		caught++
		first, _ := v.First()
		res, err := Shrink(c, buggy, 0)
		if err != nil {
			t.Fatalf("seed %d: shrink: %v", seed, err)
		}
		if res.Verdict.OK {
			t.Fatalf("seed %d: shrink returned a passing campaign", seed)
		}
		got, _ := res.Verdict.First()
		if got.Invariant != first.Invariant {
			t.Errorf("seed %d: shrink changed the invariant %q -> %q", seed, first.Invariant, got.Invariant)
		}
		if len(res.Campaign.Faults) > 3 {
			t.Errorf("seed %d: shrunk reproducer still has %d faults: %s",
				seed, len(res.Campaign.Faults), res.Campaign)
		}
		if res.Campaign.Dur > c.Dur {
			t.Errorf("seed %d: shrink grew the duration %g -> %g", seed, c.Dur, res.Campaign.Dur)
		}
		// The minimized reproducer must replay to the same verdict.
		again, err := buggy(res.Campaign)
		if err != nil {
			t.Fatalf("seed %d: replay: %v", seed, err)
		}
		if again.Steps != res.Verdict.Steps || again.OK {
			t.Errorf("seed %d: minimized reproducer does not replay identically", seed)
		}
	}
	if caught == 0 {
		t.Fatal("no seed produced an MM campaign that BuggyMM fails; the monitor is asleep")
	}
}

// TestShrinkKeepsPassingCampaign checks Shrink is the identity on
// campaigns that do not fail.
func TestShrinkKeepsPassingCampaign(t *testing.T) {
	c := Generate(1)
	res, err := Shrink(c, Run, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.OK || res.Runs != 1 || res.Campaign.String() != c.String() {
		t.Fatalf("Shrink altered a passing campaign: %+v", res)
	}
}

// TestCorpusReplays replays every committed reproducer and checks its
// expectation line. Corpus files carry `# expect: ok` (must pass under
// the real rules) or `# expect: <invariant>` comments; the remaining
// non-comment line is the reproducer itself.
func TestCorpusReplays(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("corpus", "*.repro"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files found")
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		expect, line := "", ""
		for _, l := range strings.Split(string(data), "\n") {
			l = strings.TrimSpace(l)
			switch {
			case strings.HasPrefix(l, "# expect:"):
				expect = strings.TrimSpace(strings.TrimPrefix(l, "# expect:"))
			case l == "" || strings.HasPrefix(l, "#"):
			default:
				line = l
			}
		}
		if expect == "" || line == "" {
			t.Errorf("%s: missing expectation or reproducer line", path)
			continue
		}
		c, err := Parse(line)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		a, err := Run(c)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		b, err := Run(c)
		if err != nil || a.Steps != b.Steps || a.OK != b.OK {
			t.Errorf("%s: replay is not deterministic", path)
		}
		switch expect {
		case "ok":
			if !a.OK {
				first, _ := a.First()
				t.Errorf("%s: expected ok, got %v", path, first)
			}
		default:
			first, ok := a.First()
			if !ok || first.Invariant != expect {
				t.Errorf("%s: expected first violation %q, got %+v", path, expect, a.Violations)
			}
		}
	}
}
