package chaos

import (
	"math"
)

// Runner executes a campaign and returns its verdict. Shrink is
// parameterized over it so harness self-tests can shrink campaigns run
// with an injected bug (RunInjected) exactly like production campaigns.
type Runner func(Campaign) (Verdict, error)

// ShrinkResult reports what shrinking achieved.
type ShrinkResult struct {
	// Campaign is the minimized reproducer.
	Campaign Campaign
	// Verdict is the minimized campaign's verdict (still failing with the
	// same first invariant as the original).
	Verdict Verdict
	// Runs is how many campaign executions the search spent.
	Runs int
}

// Shrink minimizes a failing campaign to a smaller reproducer that still
// violates the same invariant as the original's first violation. The
// search is greedy and deterministic:
//
//  1. truncate the schedule to just past the first violation,
//  2. drop faults one at a time, to a fixpoint,
//  3. halve windowed faults' durations while the failure persists,
//  4. bisect the campaign duration to the shortest failing grid point.
//
// Every candidate is a full deterministic re-run, so the result replays
// identically. budget caps the number of re-runs (<= 0 means the default
// of 200). If the input campaign does not fail under run, it is returned
// unchanged.
func Shrink(c Campaign, run Runner, budget int) (ShrinkResult, error) {
	if budget <= 0 {
		budget = 200
	}
	orig, err := run(c)
	if err != nil {
		return ShrinkResult{}, err
	}
	res := ShrinkResult{Campaign: c, Verdict: orig, Runs: 1}
	first, failing := orig.First()
	if !failing {
		return res, nil
	}
	want := first.Invariant

	// fails re-runs a candidate and accepts it when it violates the same
	// invariant first. Errors (malformed candidates) reject the candidate.
	fails := func(cand Campaign) (Verdict, bool) {
		if res.Runs >= budget {
			return Verdict{}, false
		}
		res.Runs++
		v, err := run(cand)
		if err != nil || v.OK {
			return v, false
		}
		f, _ := v.First()
		return v, f.Invariant == want
	}
	accept := func(cand Campaign, v Verdict) {
		res.Campaign, res.Verdict = cand, v
	}

	// 1. Truncate to just past the first violation.
	if f, ok := res.Verdict.First(); ok {
		if end := gridUp(f.T + 2*c.Sync); end < res.Campaign.Dur {
			cand := truncated(res.Campaign, end)
			if v, ok := fails(cand); ok {
				accept(cand, v)
			}
		}
	}

	// 2. Drop faults one at a time, to a fixpoint.
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(res.Campaign.Faults); i++ {
			cand := res.Campaign
			cand.Faults = dropFault(res.Campaign.Faults, i)
			if v, ok := fails(cand); ok {
				accept(cand, v)
				changed = true
				i--
			}
		}
	}

	// 3. Halve windowed faults' durations (floor: one 5 s grid step).
	for i := range res.Campaign.Faults {
		for res.Campaign.Faults[i].Kind.windowed() && res.Campaign.Faults[i].Dur >= 10 {
			cand := res.Campaign
			cand.Faults = append([]Fault(nil), res.Campaign.Faults...)
			half := math.Max(5, grid(cand.Faults[i].Dur/2))
			if half >= cand.Faults[i].Dur {
				break
			}
			cand.Faults[i].Dur = half
			v, ok := fails(cand)
			if !ok {
				break
			}
			accept(cand, v)
		}
	}

	// 4. Bisect the overall duration down to the shortest failing length.
	lo, hi := 0.0, res.Campaign.Dur
	for hi-lo > 10 && res.Runs < budget {
		mid := gridUp((lo + hi) / 2)
		if mid <= lo || mid >= hi {
			break
		}
		cand := truncated(res.Campaign, mid)
		if v, ok := fails(cand); ok {
			accept(cand, v)
			hi = mid
		} else {
			lo = mid
		}
	}
	return res, nil
}

// gridUp snaps x up to the 10-second bisection grid.
func gridUp(x float64) float64 { return math.Ceil(x/10) * 10 }

// dropFault returns faults without element i.
func dropFault(faults []Fault, i int) []Fault {
	out := make([]Fault, 0, len(faults)-1)
	out = append(out, faults[:i]...)
	return append(out, faults[i+1:]...)
}

// truncated shortens the campaign to end, dropping faults that start at
// or after the new end and clipping windows that overhang it.
func truncated(c Campaign, end float64) Campaign {
	out := c
	out.Dur = end
	out.Faults = nil
	for _, f := range c.Faults {
		if f.At >= end {
			continue
		}
		if f.Kind.windowed() && f.At+f.Dur > end {
			f.Dur = end - f.At
		}
		out.Faults = append(out.Faults, f)
	}
	return out
}
