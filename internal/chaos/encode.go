package chaos

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is the reproducer-line codec. A campaign serializes to one
// self-contained line,
//
//	v1 seed=7 n=5 topo=mesh fn=IM rec=1 dur=600 sync=30 \
//	  faults=stop:2@120;loss@250+60*0.8;part@300+80=0.1|2.3.4
//
// and parses back to an identical Campaign, so a failing schedule can be
// mailed around, committed under corpus/, and replayed with
// `timesim -chaos -replay`. Numbers round-trip through shortest-decimal
// formatting, so String∘Parse is the identity on generated campaigns.
//
// Fault grammar (one token per fault, ';'-joined):
//
//	stop:<srv>@<at>            stick:<srv>@<at>
//	race:<srv>@<at>*<rate>     false:<srv>@<at>*<jump>
//	loss@<at>+<dur>*<p>        delay@<at>+<dur>*<mult>
//	part@<at>+<dur>=<g>|<g>    crash:<srv>@<at>+<dur>
//	churn:<srv>@<at>+<dur>
//	twoface:<srv>@<at>+<dur>=<p0>,<p1>,...
//	equiv:<srv>@<at>+<dur>=<p0>,<p1>,...
//
// where a partition group <g> is '.'-joined server indices and a
// twoface/equiv offset list is ','-joined per-destination skews (one per
// server, the liar's own slot zero). An empty schedule is written as
// `faults=-`. The optional `mem=1` field enables dynamic membership,
// the optional `phi=1` field (requires mem=1) selects the phi-accrual
// failure detector, and the optional `txn=1` field enables the
// commit-wait transaction workload; all are omitted when unset, so
// older reproducer lines parse (and re-encode) unchanged.

// fmtF renders a float with the shortest decimal that round-trips.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// String encodes the campaign as a one-line reproducer.
func (c Campaign) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v1 seed=%d n=%d topo=%s fn=%s rec=%d",
		c.Seed, c.N, c.Topo, c.FnName, boolBit(c.Recovery))
	if c.Mem {
		b.WriteString(" mem=1")
	}
	if c.Phi {
		b.WriteString(" phi=1")
	}
	if c.Txn {
		b.WriteString(" txn=1")
	}
	fmt.Fprintf(&b, " dur=%s sync=%s faults=", fmtF(c.Dur), fmtF(c.Sync))
	if len(c.Faults) == 0 {
		b.WriteString("-")
		return b.String()
	}
	for i, f := range c.Faults {
		if i > 0 {
			b.WriteString(";")
		}
		b.WriteString(encodeFault(f))
	}
	return b.String()
}

func boolBit(v bool) int {
	if v {
		return 1
	}
	return 0
}

// encodeFault renders one fault token.
func encodeFault(f Fault) string {
	switch f.Kind {
	case StopClock, StickClock:
		return fmt.Sprintf("%s:%d@%s", f.Kind, f.Target, fmtF(f.At))
	case RaceClock, Falseticker:
		return fmt.Sprintf("%s:%d@%s*%s", f.Kind, f.Target, fmtF(f.At), fmtF(f.Param))
	case LossBurst, DelaySpike:
		return fmt.Sprintf("%s@%s+%s*%s", f.Kind, fmtF(f.At), fmtF(f.Dur), fmtF(f.Param))
	case Crash, Churn:
		return fmt.Sprintf("%s:%d@%s+%s", f.Kind, f.Target, fmtF(f.At), fmtF(f.Dur))
	case Partition:
		groups := make([]string, len(f.Groups))
		for g, members := range f.Groups {
			parts := make([]string, len(members))
			for i, idx := range members {
				parts[i] = strconv.Itoa(idx)
			}
			groups[g] = strings.Join(parts, ".")
		}
		return fmt.Sprintf("%s@%s+%s=%s", f.Kind, fmtF(f.At), fmtF(f.Dur), strings.Join(groups, "|"))
	case TwoFaced, Equivocate:
		offs := make([]string, len(f.Peers))
		for i, off := range f.Peers {
			offs[i] = fmtF(off)
		}
		return fmt.Sprintf("%s:%d@%s+%s=%s", f.Kind, f.Target, fmtF(f.At), fmtF(f.Dur),
			strings.Join(offs, ","))
	}
	return fmt.Sprintf("?%d", f.Kind)
}

// Parse decodes a reproducer line produced by Campaign.String. The parsed
// campaign is validated.
func Parse(line string) (Campaign, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 || fields[0] != "v1" {
		return Campaign{}, fmt.Errorf("chaos: reproducer must start with %q", "v1")
	}
	var c Campaign
	seen := make(map[string]bool)
	for _, field := range fields[1:] {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Campaign{}, fmt.Errorf("chaos: malformed field %q", field)
		}
		if seen[key] {
			return Campaign{}, fmt.Errorf("chaos: duplicate field %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "seed":
			c.Seed, err = strconv.ParseUint(val, 10, 64)
		case "n":
			c.N, err = strconv.Atoi(val)
		case "topo":
			c.Topo = val
		case "fn":
			c.FnName = val
		case "rec":
			c.Recovery = val == "1"
			if val != "0" && val != "1" {
				err = fmt.Errorf("want 0 or 1, got %q", val)
			}
		case "mem":
			c.Mem = val == "1"
			if val != "0" && val != "1" {
				err = fmt.Errorf("want 0 or 1, got %q", val)
			}
		case "phi":
			c.Phi = val == "1"
			if val != "0" && val != "1" {
				err = fmt.Errorf("want 0 or 1, got %q", val)
			}
		case "txn":
			c.Txn = val == "1"
			if val != "0" && val != "1" {
				err = fmt.Errorf("want 0 or 1, got %q", val)
			}
		case "dur":
			c.Dur, err = strconv.ParseFloat(val, 64)
		case "sync":
			c.Sync, err = strconv.ParseFloat(val, 64)
		case "faults":
			c.Faults, err = parseFaults(val)
		default:
			err = fmt.Errorf("unknown field")
		}
		if err != nil {
			return Campaign{}, fmt.Errorf("chaos: field %q: %w", key, err)
		}
	}
	for _, req := range []string{"seed", "n", "topo", "fn", "dur", "sync", "faults"} {
		if !seen[req] {
			return Campaign{}, fmt.Errorf("chaos: missing field %q", req)
		}
	}
	if err := c.Validate(); err != nil {
		return Campaign{}, err
	}
	return c, nil
}

// parseFaults decodes the ';'-joined fault tokens.
func parseFaults(s string) ([]Fault, error) {
	if s == "-" {
		return nil, nil
	}
	var out []Fault
	for _, tok := range strings.Split(s, ";") {
		f, err := parseFault(tok)
		if err != nil {
			return nil, fmt.Errorf("fault %q: %w", tok, err)
		}
		out = append(out, f)
	}
	return out, nil
}

// kindsByName is the inverse of kindNames.
var kindsByName = map[string]FaultKind{
	"stop":    StopClock,
	"race":    RaceClock,
	"stick":   StickClock,
	"false":   Falseticker,
	"loss":    LossBurst,
	"delay":   DelaySpike,
	"part":    Partition,
	"crash":   Crash,
	"churn":   Churn,
	"twoface": TwoFaced,
	"equiv":   Equivocate,
}

// parseFault decodes one fault token per the grammar above.
func parseFault(tok string) (Fault, error) {
	head, rest, ok := strings.Cut(tok, "@")
	if !ok {
		return Fault{}, fmt.Errorf("missing '@'")
	}
	var f Fault
	name, target, targeted := strings.Cut(head, ":")
	kind, known := kindsByName[name]
	if !known {
		return Fault{}, fmt.Errorf("unknown kind %q", name)
	}
	f.Kind = kind
	if kind.targeted() != targeted {
		return Fault{}, fmt.Errorf("kind %q target mismatch", name)
	}
	if targeted {
		t, err := strconv.Atoi(target)
		if err != nil {
			return Fault{}, fmt.Errorf("target: %w", err)
		}
		f.Target = t
	}
	// rest is one of: <at>, <at>*<param>, <at>+<dur>, <at>+<dur>*<param>,
	// <at>+<dur>=<groups>, <at>+<dur>=<offsets>. The '=' suffix is cut
	// first so group and offset payloads never collide with the '*' and
	// '+' cuts below.
	var groupSpec string
	if kind == Partition {
		rest, groupSpec, ok = strings.Cut(rest, "=")
		if !ok {
			return Fault{}, fmt.Errorf("partition missing '='")
		}
	}
	var peerSpec string
	if kind.isLyingFault() {
		rest, peerSpec, ok = strings.Cut(rest, "=")
		if !ok {
			return Fault{}, fmt.Errorf("%s missing '=' offset list", name)
		}
	}
	var paramSpec string
	hasParam := false
	if i := strings.IndexByte(rest, '*'); i >= 0 {
		rest, paramSpec, hasParam = rest[:i], rest[i+1:], true
	}
	atSpec, durSpec, hasDur := strings.Cut(rest, "+")
	if hasDur != f.Kind.windowed() {
		return Fault{}, fmt.Errorf("kind %q duration mismatch", name)
	}
	var err error
	if f.At, err = strconv.ParseFloat(atSpec, 64); err != nil {
		return Fault{}, fmt.Errorf("start time: %w", err)
	}
	if hasDur {
		if f.Dur, err = strconv.ParseFloat(durSpec, 64); err != nil {
			return Fault{}, fmt.Errorf("duration: %w", err)
		}
	}
	wantParam := kind == RaceClock || kind == Falseticker || kind == LossBurst || kind == DelaySpike
	if hasParam != wantParam {
		return Fault{}, fmt.Errorf("kind %q parameter mismatch", name)
	}
	if hasParam {
		if f.Param, err = strconv.ParseFloat(paramSpec, 64); err != nil {
			return Fault{}, fmt.Errorf("parameter: %w", err)
		}
	}
	if kind == Partition {
		for _, g := range strings.Split(groupSpec, "|") {
			var members []int
			if g != "" {
				for _, part := range strings.Split(g, ".") {
					idx, err := strconv.Atoi(part)
					if err != nil {
						return Fault{}, fmt.Errorf("group member: %w", err)
					}
					members = append(members, idx)
				}
			}
			f.Groups = append(f.Groups, members)
		}
	}
	if kind.isLyingFault() {
		for _, part := range strings.Split(peerSpec, ",") {
			off, err := strconv.ParseFloat(part, 64)
			if err != nil {
				return Fault{}, fmt.Errorf("peer offset: %w", err)
			}
			f.Peers = append(f.Peers, off)
		}
	}
	return f, nil
}
