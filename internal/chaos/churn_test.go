package chaos

import (
	"strings"
	"testing"
)

// churnCampaign builds a deterministic membership campaign with one
// churn fault, varying the rule and target with the seed.
func churnCampaign(seed uint64) Campaign {
	fns := []string{"MM", "IM", "IMdrop", "selectIM"}
	n := 3 + int(seed%4)
	c := Campaign{
		Seed:   seed,
		N:      n,
		Topo:   "mesh",
		FnName: fns[seed%4],
		Dur:    300,
		Sync:   30,
		Mem:    true,
		Faults: []Fault{
			{Kind: Churn, Target: int(seed) % n, At: 60, Dur: 60},
			{Kind: Churn, Target: int(seed+1) % n, At: 150, Dur: 45},
		},
	}
	return c
}

// TestChurnCampaignsPass is the acceptance sweep for membership: fifty
// seeded campaigns with churn faults (and dynamic membership enabled)
// must violate no invariant under any of the real synchronization
// rules — containment for untainted servers holds across membership
// changes.
func TestChurnCampaignsPass(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		c := churnCampaign(seed)
		v, err := Run(c)
		if err != nil {
			t.Fatalf("seed %d: %v\ncampaign: %s", seed, err, c)
		}
		if !v.OK {
			first, _ := v.First()
			t.Errorf("seed %d: %v\ncampaign: %s", seed, first, c)
		}
	}
}

// TestChurnDeterministic re-runs churn campaigns and demands identical
// verdicts, step count included: membership (gossip, detection,
// roster-driven selection) must not break the byte-determinism
// contract.
func TestChurnDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		c := churnCampaign(seed)
		a, err := Run(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Run(c)
		if err != nil {
			t.Fatalf("seed %d re-run: %v", seed, err)
		}
		if a.Steps != b.Steps || a.OK != b.OK {
			t.Fatalf("seed %d: verdicts diverge: %+v vs %+v", seed, a, b)
		}
	}
}

// TestChurnCodecRoundTrip checks the reproducer grammar for churn
// faults and the optional mem field.
func TestChurnCodecRoundTrip(t *testing.T) {
	c := churnCampaign(3)
	line := c.String()
	if !strings.Contains(line, "mem=1") || !strings.Contains(line, "churn:") {
		t.Fatalf("encoded line misses membership fields: %s", line)
	}
	got, err := Parse(line)
	if err != nil {
		t.Fatalf("Parse(%q): %v", line, err)
	}
	if !got.Mem || got.String() != line {
		t.Fatalf("round trip changed the campaign:\n in: %s\nout: %s", line, got.String())
	}

	// A pre-membership line (no mem field) still parses, defaults to
	// Mem=false, and re-encodes unchanged — committed corpus lines stay
	// valid byte-for-byte.
	old := "v1 seed=34 n=3 topo=mesh fn=MM rec=0 dur=60 sync=30 faults=crash:1@30+30"
	oc, err := Parse(old)
	if err != nil {
		t.Fatalf("Parse(%q): %v", old, err)
	}
	if oc.Mem || oc.String() != old {
		t.Fatalf("legacy line did not round-trip: %s", oc.String())
	}

	// Malformed churn tokens are rejected.
	bad := []string{
		"v1 seed=1 n=3 topo=mesh fn=MM rec=0 mem=1 dur=300 sync=30 faults=churn:1@50",    // missing window
		"v1 seed=1 n=3 topo=mesh fn=MM rec=0 mem=1 dur=300 sync=30 faults=churn@50+60",   // missing target
		"v1 seed=1 n=3 topo=mesh fn=MM rec=0 mem=1 dur=300 sync=30 faults=churn:9@50+60", // target out of range
		"v1 seed=1 n=3 topo=mesh fn=MM rec=0 mem=2 dur=300 sync=30 faults=-",             // bad mem bit
	}
	for _, line := range bad {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q) accepted a malformed line", line)
		}
	}
}

// TestChurnBuggyMMCaught pins the corpus/buggy-mm-churn.repro campaign:
// under the planted BuggyMM rule the membership campaign must violate
// containment (the monitor sees through roster-driven polling), while
// the committed corpus expectation asserts it passes under real MM.
func TestChurnBuggyMMCaught(t *testing.T) {
	line := "v1 seed=2 n=3 topo=mesh fn=MM rec=0 mem=1 dur=90 sync=30 faults=churn:1@30+30"
	c, err := Parse(line)
	if err != nil {
		t.Fatal(err)
	}
	v, err := RunInjected(c, BuggyMM{})
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("BuggyMM slipped past the monitor on the churn corpus campaign")
	}
	first, _ := v.First()
	if first.Invariant != "containment" {
		t.Fatalf("expected a containment violation, got %+v", first)
	}
}

// TestChurnWithoutMembershipDegrades checks the documented fallback: a
// churn fault on a membership-less campaign behaves like crash/restart
// and still passes every invariant.
func TestChurnWithoutMembershipDegrades(t *testing.T) {
	c := churnCampaign(5)
	c.Mem = false
	v, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		first, _ := v.First()
		t.Fatalf("membership-less churn campaign violated %v", first)
	}
}
