package chaos

import (
	"disttime/internal/obs"
)

// obsSink holds the chaos harness's resolved metric handles. All fields
// are nil when no registry is attached; the obs metric methods are
// nil-safe, so the engine and monitor bump them unconditionally. A sink
// never schedules simulator events or draws randomness, so an observed
// campaign executes exactly the trajectory of an unobserved one — the
// Verdict.Steps determinism fingerprint is identical either way.
type obsSink struct {
	campaigns       *obs.Counter
	failed          *obs.Counter
	invariantChecks *obs.Counter
	violations      *obs.Counter
	faultsInstalled *obs.Counter
	clockFaultsArm  *obs.Counter
	activations     map[FaultKind]*obs.Counter
}

// newObsSink resolves the chaos counters in reg; a nil reg yields a
// fully inert sink.
func newObsSink(reg *obs.Registry) *obsSink {
	s := &obsSink{}
	if reg == nil {
		return s
	}
	s.campaigns = reg.Counter("chaos_campaigns_total")
	s.failed = reg.Counter("chaos_campaigns_failed_total")
	s.invariantChecks = reg.Counter("chaos_invariant_checks_total")
	s.violations = reg.Counter("chaos_violations_total")
	s.faultsInstalled = reg.Counter("chaos_faults_installed_total")
	s.clockFaultsArm = reg.Counter("chaos_clock_faults_armed_total")
	s.activations = make(map[FaultKind]*obs.Counter, len(kindNames))
	for kind, name := range kindNames {
		s.activations[kind] = reg.Counter("chaos_fault_activations_" + name + "_total")
	}
	return s
}

// activated records one fault's activation (its onset event firing).
func (s *obsSink) activated(kind FaultKind) {
	if s == nil || s.activations == nil {
		return
	}
	s.activations[kind].Inc()
}
