package chaos

import (
	"fmt"
	"math"

	"disttime/internal/clock"
	"disttime/internal/interval"
	"disttime/internal/service"
)

// Violation is one observed break of a theorem invariant.
type Violation struct {
	// T is the virtual time of the observation.
	T float64
	// Node is the offending server, or -1 for service-wide invariants.
	Node int
	// Invariant names the broken property: containment, byz-containment,
	// mm-monotonic, error-growth, im-decide, monotonic-clock,
	// consistency, hlc-bound, or txn-external-consistency.
	Invariant string
	// Detail is a human-readable account of the observation.
	Detail string
}

// String renders the violation on one line.
func (v Violation) String() string {
	who := "service"
	if v.Node >= 0 {
		who = fmt.Sprintf("server %d", v.Node)
	}
	return fmt.Sprintf("t=%.6g %s %s: %s", v.T, who, v.Invariant, v.Detail)
}

// Monitor is the always-on invariant checker. It attaches to the service
// through OnSyncDetail (per-pass assertions) and a periodic probe event
// (containment, consistency, and the monotonic-clock oracle between
// passes). All probes are read-only with respect to the protocol state,
// so attaching a monitor never changes what the service does — the same
// seed and schedule produce the same trajectory monitored or not.
type Monitor struct {
	svc    *service.Service
	fnName string
	tol    float64

	// clockFaultAt[i] is the onset of server i's earliest clock fault
	// (+Inf when its clock is never faulted); tainted[i] reports that the
	// server's interval can no longer be trusted to contain true time —
	// either its own clock is faulted or it set its clock while a faulted
	// or tainted server was within reach. Containment (Theorems 1/5) is
	// asserted only for untainted servers; the pass-local invariants
	// (MM monotonicity, IM decide-or-flag, the monotonic wrapper) hold for
	// every server and stay on everywhere.
	clockFaultAt []float64
	tainted      []bool

	// byz marks the strict f < n/3 containment regime: the campaign runs
	// byzIM and its liars (servers with a clock fault or a two-faced
	// window — each corrupts what the server tells peers) fit the
	// envelope's budget, so adopting a lie can no longer poison a correct
	// server. Taint does NOT propagate in this mode — a reset within reach
	// of a liar must still land on true time, and the (byz-containment)
	// assertion stays on to prove it. Outside the regime two-faced onsets
	// fold into clockFaultAt and the conservative taint machinery governs.
	// Equivocation never enters the budget: it corrupts gossip metadata,
	// not time replies, so interval containment is not at stake.
	byz bool

	// minSlack is the smallest signed containment margin seen across all
	// asserted containment checks: min(t-Lo, Hi-t) of the un-grown
	// interval. Negative slack is a violation; small positive slack is the
	// adversarial search's gradient toward one.
	minSlack float64

	// hlcArmedUntil is the earliest clock-fault (or, outside the byz
	// regime, two-faced) onset anywhere in the service; the hlc-bound
	// invariant is asserted only before it. One corrupted wall propagates
	// to every honest server through Update, and a wall running ahead of
	// physical time pins the logical counter into tiebreak territory — so
	// the boundedness claim is service-wide or nothing.
	hlcArmedUntil float64

	last       []passState
	mono       []*clock.Monotonic
	lastMono   []float64
	haveMono   []bool
	ivsScratch []interval.Interval

	violations []Violation
	maxRecord  int
	sink       *obsSink
}

// check counts one evaluated invariant assertion in the attached sink
// (inert without a registry) and returns true so it can gate the
// assertion expression inline.
func (m *Monitor) check() bool {
	m.sink.invariantChecks.Inc()
	return true
}

// hlcCeiling bounds the logical counter while the hlc-bound invariant
// is armed. Generated campaigns run at most 8 servers, so even a full
// collect window of same-wall deliveries stays far below it; reaching
// the ceiling means walls stopped advancing between events without any
// injected clock fault.
const hlcCeiling = 64

// passState is the per-server after-image of the last synchronization
// pass, for the inter-pass error-growth bound.
type passState struct {
	valid  bool
	c, e   float64
	resets int
}

// newMonitor attaches a monitor to a freshly built, un-run service. The
// sink receives invariant-check and violation counters; pass an inert
// sink (or nil registry behind it) to run unobserved.
func newMonitor(svc *service.Service, c Campaign, sink *obsSink) *Monitor {
	if sink == nil {
		sink = &obsSink{}
	}
	n := len(svc.Nodes)
	m := &Monitor{
		svc:          svc,
		sink:         sink,
		fnName:       c.FnName,
		tol:          1e-6,
		clockFaultAt: make([]float64, n),
		tainted:      make([]bool, n),
		last:         make([]passState, n),
		mono:         make([]*clock.Monotonic, n),
		lastMono:     make([]float64, n),
		haveMono:     make([]bool, n),
		maxRecord:    16,
		minSlack:     math.Inf(1),
	}
	for i := range m.clockFaultAt {
		m.clockFaultAt[i] = math.Inf(1)
	}
	for _, f := range c.Faults {
		if f.Kind.isClockFault() && f.At < m.clockFaultAt[f.Target] {
			m.clockFaultAt[f.Target] = f.At
		}
	}
	// Count the liars: servers whose replies can deviate from their honest
	// interval, whether through a corrupted clock or a two-faced window.
	liarAt := make([]float64, n)
	for i := range liarAt {
		liarAt[i] = m.clockFaultAt[i]
	}
	liars := 0
	for _, f := range c.Faults {
		if f.Kind == TwoFaced && f.At < liarAt[f.Target] {
			liarAt[f.Target] = f.At
		}
	}
	for _, at := range liarAt {
		if !math.IsInf(at, 1) {
			liars++
		}
	}
	m.byz = c.FnName == "byzIM" && 3*liars < c.N
	if !m.byz {
		// Against a non-Byzantine synchronization function (or past the
		// budget) a two-faced server poisons like a falseticker: fold its
		// onset into the taint clock.
		for i, at := range liarAt {
			if at < m.clockFaultAt[i] {
				m.clockFaultAt[i] = at
			}
		}
	}
	m.hlcArmedUntil = math.Inf(1)
	for _, at := range m.clockFaultAt {
		if at < m.hlcArmedUntil {
			m.hlcArmedUntil = at
		}
	}
	for i, node := range svc.Nodes {
		m.mono[i] = clock.NewMonotonic(node.Server.Clock(), 0.5)
	}
	svc.OnSyncDetail(m.observe)
	probeEvery := math.Max(1, c.Sync/4)
	svc.Sim.Every(probeEvery, m.probe)
	return m
}

// Violations returns what the monitor has recorded so far.
func (m *Monitor) Violations() []Violation { return m.violations }

// MinSlack returns the tightest containment margin asserted so far (+Inf
// when no containment check has run yet).
func (m *Monitor) MinSlack() float64 { return m.minSlack }

// Trusted reports whether server node's interval can currently be
// trusted to contain true time: its clock is unfaulted and it has not
// adopted state from a corrupted server. The transaction workload's
// external-consistency check gates on it — commit-wait's ordering
// argument (package txn) rests on containment of both involved
// servers, which the theorems only promise while a server is
// untainted.
func (m *Monitor) Trusted(node int) bool {
	m.refreshTaint(m.svc.Sim.Now())
	return !m.tainted[node]
}

// containmentName is the invariant label for containment checks:
// "byz-containment" in the f < n/3 regime (where the claim is strictly
// stronger — no taint exemptions), "containment" otherwise. Stable names
// matter: Shrink preserves the first violation's invariant across
// minimization.
func (m *Monitor) containmentName() string {
	if m.byz {
		return "byz-containment"
	}
	return "containment"
}

// noteSlack folds one asserted containment margin into the running
// minimum.
func (m *Monitor) noteSlack(iv interval.Interval, t float64) {
	if s := math.Min(t-iv.Lo, iv.Hi-t); s < m.minSlack {
		m.minSlack = s
	}
}

// report records a violation, capped so a broken invariant in a long
// campaign cannot flood memory.
func (m *Monitor) report(t float64, node int, invariant, detail string) {
	m.sink.violations.Inc()
	if len(m.violations) >= m.maxRecord {
		return
	}
	m.violations = append(m.violations, Violation{T: t, Node: node, Invariant: invariant, Detail: detail})
}

// refreshTaint marks servers whose clock fault has begun.
func (m *Monitor) refreshTaint(t float64) {
	for i, at := range m.clockFaultAt {
		if !m.tainted[i] && t >= at {
			m.tainted[i] = true
		}
	}
}

// taintedNeighbor reports whether any server linked to node is tainted.
// Partitions are ignored deliberately: messages in flight cross a
// partition that forms after they were sent, so reachability must be
// judged on the topology.
func (m *Monitor) taintedNeighbor(node int) bool {
	for _, id := range m.svc.Net.Neighbors(m.svc.Nodes[node].NetID) {
		if m.tainted[int(id)] {
			return true
		}
	}
	return false
}

// observe asserts the per-pass invariants.
func (m *Monitor) observe(obs service.SyncObservation) {
	t, node := obs.T, obs.Node
	m.refreshTaint(t)
	// Taint propagation: the pass set the clock (synchronization, recovery,
	// or adaptation) while a corrupted server was within reach, so the
	// adopted value may be poisoned. Conservative by construction — an
	// honest reply from a neighbor tainted later in the window still
	// taints — which keeps the containment assertion sound.
	if obs.Resets > obs.ResetsBefore && !m.byz && !m.tainted[node] && m.taintedNeighbor(node) {
		m.tainted[node] = true
	}
	srv := m.svc.Nodes[node].Server
	// Rule MM-2: an MM pass never increases the maximum error. Recovery
	// (rule of Section 3) legitimately adopts a worse third server, so a
	// pass that recovered is exempt. The bound holds even for faulted
	// clocks: the predicate compares against the server's own current
	// error, whatever the oscillator is doing.
	if m.fnName == "MM" && obs.Recoveries == obs.RecovBefore && m.check() && obs.After.E > obs.Before.E+m.tol {
		m.report(t, node, "mm-monotonic",
			fmt.Sprintf("MM pass grew max error %.9g -> %.9g", obs.Before.E, obs.After.E))
	}
	// Rule MM-1's deterioration bound: between passes (no resets in
	// between) the error grows by at most delta per clock second.
	if st := m.last[node]; st.valid && !m.tainted[node] && obs.ResetsBefore == st.resets && m.check() {
		allowed := srv.Delta() * math.Max(0, obs.Before.C-st.c)
		if obs.Before.E > st.e+allowed+m.tol {
			m.report(t, node, "error-growth",
				fmt.Sprintf("error grew %.9g -> %.9g over %.6g clock seconds (delta %.3g)",
					st.e, obs.Before.E, obs.Before.C-st.c, srv.Delta()))
		}
	}
	// Rules IM-1/IM-2: an intersection pass with replies either resets
	// (non-empty intersection) or flags inconsistency.
	if m.fnName != "MM" && obs.Replies > 0 && m.check() && !obs.Res.Reset && len(obs.Res.Inconsistent) == 0 {
		m.report(t, node, "im-decide",
			fmt.Sprintf("%d replies produced neither a reset nor an inconsistency flag", obs.Replies))
	}
	// Theorems 1/5: a correct server's interval contains true time.
	if !m.tainted[node] && m.check() {
		iv := srv.Interval(t)
		m.noteSlack(iv, t)
		if !iv.Grow(m.tol).Contains(t) {
			m.report(t, node, m.containmentName(),
				fmt.Sprintf("interval %v excludes true time %.6g (off by %.3g)", iv, t, offBy(iv, t)))
		}
	}
	m.last[node] = passState{valid: true, c: obs.After.C, e: obs.After.E, resets: obs.Resets}
}

// probe asserts the service-wide invariants between passes.
func (m *Monitor) probe() {
	t := m.svc.Sim.Now()
	m.refreshTaint(t)
	ivs := m.ivsScratch[:0]
	for i, node := range m.svc.Nodes {
		// Section 1.1's monotonic wrapper: its view of any clock — however
		// chaotically the underlying clock is reset, frozen, or raced —
		// never steps backward. Asserted for every server, faulty or not.
		v := m.mono[i].Read(t)
		if m.haveMono[i] && m.check() && v < m.lastMono[i] {
			m.report(t, i, "monotonic-clock",
				fmt.Sprintf("monotonic view stepped back %.9g -> %.9g", m.lastMono[i], v))
		}
		m.lastMono[i], m.haveMono[i] = v, true
		// HLC boundedness (Kulkarni et al.): while every clock in the
		// service is fault-free, walls — drawn from each server's latest
		// bound C+E — advance between events, so the logical counter stays
		// under a small ceiling. Disarmed service-wide at the first onset:
		// one inflated wall (a racing clock, a falseticker jump, a lie
		// adopted into C+E) propagates through Update and legitimately
		// pins every honest counter.
		if t < m.hlcArmedUntil {
			if l := node.HLCLast(); m.check() && l.Logical > hlcCeiling {
				m.report(t, i, "hlc-bound",
					fmt.Sprintf("logical counter %d exceeds ceiling %d (wall %d)",
						l.Logical, hlcCeiling, l.Wall))
			}
		}
		if m.tainted[i] {
			continue
		}
		iv := node.Server.Interval(t).Grow(m.tol)
		if m.check() {
			m.noteSlack(node.Server.Interval(t), t)
			if !iv.Contains(t) {
				m.report(t, i, m.containmentName(),
					fmt.Sprintf("interval %v excludes true time %.6g (off by %.3g)",
						node.Server.Interval(t), t, offBy(node.Server.Interval(t), t)))
			}
		}
		ivs = append(ivs, iv)
	}
	m.ivsScratch = ivs
	// Rule IM-1's premise: the correct servers' intervals always admit a
	// common point (each contains true time, so all must overlap).
	if len(ivs) > 1 && m.check() {
		if _, ok := interval.IntersectAll(ivs); !ok {
			m.report(t, -1, "consistency", "untainted servers' intervals share no common point")
		}
	}
}

// offBy reports how far t lies outside iv (zero when contained).
func offBy(iv interval.Interval, t float64) float64 {
	switch {
	case t < iv.Lo:
		return iv.Lo - t
	case t > iv.Hi:
		return t - iv.Hi
	}
	return 0
}
