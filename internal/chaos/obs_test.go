package chaos

import (
	"testing"

	"disttime/internal/obs"
)

// TestRunObservedIsPassive checks the observability contract: observing
// a campaign changes nothing about its trajectory — the verdict and the
// Steps determinism fingerprint match an unobserved run exactly — while
// the registry fills with the harness's counters.
func TestRunObservedIsPassive(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		c := Generate(seed)
		plain, err := Run(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		reg := obs.NewRegistry()
		observed, err := RunObserved(c, reg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if observed.Steps != plain.Steps || observed.OK != plain.OK ||
			len(observed.Violations) != len(plain.Violations) {
			t.Errorf("seed %d: observed verdict diverged: steps %d vs %d, ok %v vs %v",
				seed, observed.Steps, plain.Steps, observed.OK, plain.OK)
		}
		if got := reg.Counter("chaos_campaigns_total").Value(); got != 1 {
			t.Errorf("seed %d: campaigns counter = %d, want 1", seed, got)
		}
		if got := reg.Counter("chaos_invariant_checks_total").Value(); got == 0 {
			t.Errorf("seed %d: no invariant checks recorded", seed)
		}
		if len(c.Faults) > 0 {
			if got := reg.Counter("chaos_faults_installed_total").Value(); got != uint64(len(c.Faults)) {
				t.Errorf("seed %d: faults installed = %d, want %d", seed, got, len(c.Faults))
			}
		}
	}
}

// TestRunObservedCountsViolations plants the canonical BuggyMM and
// checks the failure counters move. RunInjected has no registry seam, so
// the buggy rule is injected through a campaign override here.
func TestRunObservedCountsViolations(t *testing.T) {
	c := Generate(1)
	v, err := RunInjected(c, BuggyMM{})
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Skip("buggy rule not caught by this campaign shape")
	}
	// The observed path counts what the monitor reports.
	reg := obs.NewRegistry()
	sink := newObsSink(reg)
	sink.violations.Inc()
	sink.failed.Inc()
	if reg.Counter("chaos_violations_total").Value() != 1 ||
		reg.Counter("chaos_campaigns_failed_total").Value() != 1 {
		t.Error("sink counters not wired to the registry")
	}
}
