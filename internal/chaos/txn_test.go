package chaos

import (
	"os"
	"strings"
	"testing"

	"disttime/internal/txn"
)

// TestTxnGeneratedCampaignsPass runs 50 generated campaigns with the
// transaction workload enabled against the real rules and the real
// commit-wait. External consistency and the HLC bound must hold on
// every one: the taint gate silences checks the theorems no longer
// back, so any violation is a real protocol bug, a workload bug, or a
// monitor bug.
func TestTxnGeneratedCampaignsPass(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		c := Generate(seed)
		c.Txn = true
		v, err := Run(c)
		if err != nil {
			t.Fatalf("seed %d: %v\ncampaign: %s", seed, err, c)
		}
		if !v.OK {
			first, _ := v.First()
			t.Errorf("seed %d: %v\ncampaign: %s", seed, first, c)
		}
	}
}

// TestTxnRunDeterministic extends the determinism contract to
// transaction campaigns: the workload draws every think gap from the
// service's simulator, so verdicts — step counts included — must be
// reproducible.
func TestTxnRunDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		c := Generate(seed)
		c.Txn = true
		a, err := Run(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Run(c)
		if err != nil {
			t.Fatalf("seed %d re-run: %v", seed, err)
		}
		if a.Steps != b.Steps || a.OK != b.OK || len(a.Violations) != len(b.Violations) {
			t.Fatalf("seed %d: verdicts diverge: %+v vs %+v", seed, a, b)
		}
	}
}

// TestTxnEncodeRoundTrip pins the optional txn=1 reproducer field.
func TestTxnEncodeRoundTrip(t *testing.T) {
	c := Generate(3)
	c.Txn = true
	line := c.String()
	if !strings.Contains(line, " txn=1") {
		t.Fatalf("encoded line lacks txn=1: %s", line)
	}
	got, err := Parse(line)
	if err != nil {
		t.Fatalf("Parse(%q): %v", line, err)
	}
	if !got.Txn || got.String() != line {
		t.Fatalf("round trip changed the line:\n in: %s\nout: %s", line, got.String())
	}
}

// TestHarnessCatchesBuggyCommitWait is the workload's harness
// self-test: a commit policy that skips the wait must be caught by the
// external-consistency checker, and shrinking must cut the reproducer
// down to at most three faults while preserving the violated
// invariant. Skew alone (initial offsets inside the error bound)
// suffices to trip the bug, so shrinking typically empties the fault
// schedule entirely.
func TestHarnessCatchesBuggyCommitWait(t *testing.T) {
	buggy := func(c Campaign) (Verdict, error) { return RunInjectedWaiter(c, txn.BuggyCommitWait{}) }
	caught := 0
	for seed := uint64(1); seed <= 20 && caught < 2; seed++ {
		c := Generate(seed)
		c.Txn = true
		v, err := buggy(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v.OK {
			continue
		}
		caught++
		first, _ := v.First()
		if first.Invariant != "txn-external-consistency" {
			t.Fatalf("seed %d: BuggyCommitWait broke %q first: %v", seed, first.Invariant, first)
		}
		res, err := Shrink(c, buggy, 0)
		if err != nil {
			t.Fatalf("seed %d: shrink: %v", seed, err)
		}
		if res.Verdict.OK {
			t.Fatalf("seed %d: shrink returned a passing campaign", seed)
		}
		got, _ := res.Verdict.First()
		if got.Invariant != "txn-external-consistency" {
			t.Errorf("seed %d: shrink changed the invariant %q -> %q", seed, first.Invariant, got.Invariant)
		}
		if len(res.Campaign.Faults) > 3 {
			t.Errorf("seed %d: shrunk reproducer still has %d faults: %s",
				seed, len(res.Campaign.Faults), res.Campaign)
		}
		// The minimized reproducer must replay identically, and must pass
		// under the real commit-wait (it is a bug in the policy, not the
		// protocol).
		again, err := buggy(res.Campaign)
		if err != nil {
			t.Fatalf("seed %d: replay: %v", seed, err)
		}
		if again.Steps != res.Verdict.Steps || again.OK {
			t.Errorf("seed %d: minimized reproducer does not replay identically", seed)
		}
		clean, err := Run(res.Campaign)
		if err != nil {
			t.Fatalf("seed %d: clean replay: %v", seed, err)
		}
		if !clean.OK {
			first, _ := clean.First()
			t.Errorf("seed %d: shrunk campaign fails under the real commit-wait: %v", seed, first)
		}
		t.Logf("seed %d shrunk to: %s", seed, res.Campaign)
	}
	if caught == 0 {
		t.Fatal("no seed produced a campaign BuggyCommitWait fails; the checker is asleep")
	}
}

// TestBuggyCommitWaitCorpus replays the committed reproducer under the
// injected buggy policy: it must still fail with the invariant it was
// minimized for. (TestCorpusReplays covers the `expect: ok` half — the
// same campaign passes under the real commit-wait.)
func TestBuggyCommitWaitCorpus(t *testing.T) {
	data, err := os.ReadFile("corpus/buggy-commit-wait.repro")
	if err != nil {
		t.Fatal(err)
	}
	line := ""
	for _, l := range strings.Split(string(data), "\n") {
		l = strings.TrimSpace(l)
		if l != "" && !strings.HasPrefix(l, "#") {
			line = l
		}
	}
	c, err := Parse(line)
	if err != nil {
		t.Fatalf("Parse(%q): %v", line, err)
	}
	if !c.Txn {
		t.Fatalf("reproducer does not enable the workload: %s", line)
	}
	v, err := RunInjectedWaiter(c, txn.BuggyCommitWait{})
	if err != nil {
		t.Fatal(err)
	}
	first, ok := v.First()
	if !ok || first.Invariant != "txn-external-consistency" {
		t.Fatalf("expected a txn-external-consistency violation, got %+v", v.Violations)
	}
}
