package chaos

import (
	"fmt"

	"disttime/internal/service"
	"disttime/internal/simnet"
)

// engine schedules the dynamic faults of a campaign onto a built service.
// Clock-failure wrappers are armed at construction time (they carry their
// own fail-at); everything else — falseticker jumps, loss bursts, delay
// spikes, partitions, crashes — is a simulator event the engine installs
// before the run starts, so the whole schedule is part of the
// deterministic event stream.
//
// The engine also feeds the fault-activation counters of an attached
// observability sink. Counting happens inside the events the schedule
// already contains — no extra events — so an observed campaign executes
// the same deterministic trajectory as an unobserved one.
type engine struct {
	svc     *service.Service
	sink    *obsSink
	windows []Fault // active-window faults (loss bursts, delay spikes)
}

// install schedules every dynamic fault. It must run before the
// simulation advances.
func (e *engine) install(c Campaign) error {
	if e.sink == nil {
		e.sink = &obsSink{}
	}
	for _, f := range c.Faults {
		f := f
		e.sink.faultsInstalled.Inc()
		switch f.Kind {
		case Falseticker:
			// The clock register jumps without the server's bookkeeping
			// noticing: the server keeps answering with its usual <C, E>
			// pair, whose interval now lies (the Figure 3 hazard).
			e.svc.Sim.At(f.At, func() {
				e.sink.activated(Falseticker)
				clk := e.svc.Nodes[f.Target].Server.Clock()
				clk.Set(f.At, clk.Read(f.At)+f.Param)
			})
		case LossBurst, DelaySpike:
			kind := f.Kind
			e.windows = append(e.windows, f)
			e.svc.Sim.At(f.At, func() {
				e.sink.activated(kind)
				e.rewire(f.At)
			})
			e.svc.Sim.At(f.At+f.Dur, func() { e.rewire(f.At + f.Dur) })
		case Partition:
			// Same two events PartitionAt+HealAt would schedule, inlined
			// so the onset also counts as an activation.
			netGroups := make([][]simnet.NodeID, len(f.Groups))
			for g, members := range f.Groups {
				for _, idx := range members {
					if idx < 0 || idx >= len(e.svc.Nodes) {
						return fmt.Errorf("chaos: partition group %d: no server %d", g, idx)
					}
					netGroups[g] = append(netGroups[g], e.svc.Nodes[idx].NetID)
				}
			}
			e.svc.Sim.At(f.At, func() {
				e.sink.activated(Partition)
				e.svc.Net.Partition(netGroups...)
			})
			e.svc.Sim.At(f.At+f.Dur, func() { e.svc.Net.Heal() })
		case Crash:
			e.svc.Sim.At(f.At, func() {
				e.sink.activated(Crash)
				e.svc.Crash(f.Target)
			})
			e.svc.Sim.At(f.At+f.Dur, func() { e.svc.Restart(f.Target) })
		case Churn:
			// Voluntary departure and rejoin. With membership enabled the
			// departure is announced and the rejoin is a fresh incarnation;
			// without it, Leave/Rejoin degrade to Crash/Restart.
			e.svc.Sim.At(f.At, func() {
				e.sink.activated(Churn)
				e.svc.Leave(f.Target)
			})
			e.svc.Sim.At(f.At+f.Dur, func() { e.svc.Rejoin(f.Target) })
		case TwoFaced:
			// The server starts answering each peer from a per-destination
			// skewed register at At and reverts to honesty at At+Dur. Its
			// own bookkeeping never lies — only the replies do.
			e.svc.Sim.At(f.At, func() {
				e.sink.activated(TwoFaced)
				e.svc.SetTwoFaced(f.Target, f.Peers)
			})
			e.svc.Sim.At(f.At+f.Dur, func() { e.svc.ClearTwoFaced(f.Target) })
		case Equivocate:
			// The server's pushed digests advertise conflicting <C, E> pairs
			// per destination during the window.
			e.svc.Sim.At(f.At, func() {
				e.sink.activated(Equivocate)
				e.svc.SetEquivocate(f.Target, f.Peers)
			})
			e.svc.Sim.At(f.At+f.Dur, func() { e.svc.ClearEquivocate(f.Target) })
		case StopClock, RaceClock, StickClock:
			// Armed inside the clock wrappers at build time; counted as
			// armed here (the wrapper fires without a simulator event).
			e.sink.clockFaultsArm.Inc()
		default:
			return fmt.Errorf("chaos: cannot install fault kind %v", f.Kind)
		}
	}
	return nil
}

// rewire recomputes the network-wide loss and delay overlays from the
// windows active at virtual time now and replaces every link's config
// accordingly. Links() enumerates in deterministic order and Connect
// replaces in place, so a rewire is itself a deterministic event.
func (e *engine) rewire(now float64) {
	lossP, mult := 0.0, 1.0
	for _, f := range e.windows {
		if now >= f.At && now < f.At+f.Dur {
			switch f.Kind {
			case LossBurst:
				if f.Param > lossP {
					lossP = f.Param
				}
			case DelaySpike:
				if f.Param > mult {
					mult = f.Param
				}
			}
		}
	}
	cfg := simnet.LinkConfig{Delay: nominalDelay(), Loss: lossP}
	if mult > 1 {
		cfg.Delay = simnet.Scaled{M: nominalDelay(), Factor: mult}
	}
	for _, l := range e.svc.Net.Links() {
		// Connect replaces an existing link's configuration; the nodes and
		// the link set are unchanged, so the error path is unreachable.
		if err := e.svc.Net.Connect(l.A, l.B, cfg); err != nil {
			panic(fmt.Sprintf("chaos: rewire: %v", err))
		}
	}
}
