package chaos

import (
	"math/rand/v2"
)

// This file is the adversarial scheduler: instead of sampling fault
// schedules blindly (Generate), it hill-climbs them toward a monitor
// violation. The gradient is Verdict.MinSlack — the tightest containment
// margin any asserted check saw. A mutation that tightens the margin is
// kept; one that loosens it is discarded; a mutation that produces a
// violation ends the search and hands the campaign to Shrink. Against a
// sound synchronization function the search converges to a small
// positive slack and stops — 50 seeded searches finding nothing is the
// acceptance evidence for byzIM — while against a planted bug (BuggyIM)
// the same search walks into a violation within a few steps, which is
// the harness's proof that the search itself has teeth.
//
// Everything is a pure function of the seed: the starting campaign, the
// mutation sequence, and the accept/reject decisions, so an adversarial
// run is as replayable as a generated one.

// AdversarialConfig sizes one adversarial search.
type AdversarialConfig struct {
	// Seed derives the starting campaign and the mutation stream.
	Seed uint64
	// Steps is how many mutations to try; <= 0 means 40.
	Steps int
	// Run executes candidates; nil means the production Run. Self-tests
	// pass a RunInjected closure to search against a planted bug.
	Run Runner
	// ShrinkBudget caps the minimization re-runs after a violation is
	// found; <= 0 means Shrink's default.
	ShrinkBudget int
}

// AdversarialResult is the outcome of one search.
type AdversarialResult struct {
	// Found reports that some candidate violated an invariant.
	Found bool
	// Best is the tightest campaign the search reached — the violating
	// one when Found, otherwise the one with the smallest slack.
	Best Campaign
	// Verdict is Best's verdict; its MinSlack is the search's final score.
	Verdict Verdict
	// Shrunk is the minimized reproducer when Found.
	Shrunk *ShrinkResult
	// Evals counts campaign executions, including shrinking.
	Evals int
}

// GenerateAdversarial derives the search's starting campaign from a
// seed: a full mesh of byzIM servers with one to F = floor((N-1)/3)
// two-faced liars on distinct targets — the exact regime the
// byz-containment invariant asserts unconditionally, so every
// containment check is live and the slack gradient is meaningful. The
// same seed always yields the same campaign.
func GenerateAdversarial(seed uint64) Campaign {
	rng := rand.New(rand.NewPCG(seed^0xda3e39cb94b95bdb, seed*0x9e3779b97f4a7c15+0x6a09e667f3bcc909))
	c := Campaign{
		Seed:   seed,
		N:      4 + rng.IntN(5), // 4..8: a liar budget of 1..2
		Topo:   "mesh",
		FnName: "byzIM",
		Dur:    300,
		Sync:   20,
	}
	budget := (c.N - 1) / 3
	liars := 1 + rng.IntN(budget)
	targets := rng.Perm(c.N)[:liars]
	for _, tgt := range targets {
		c.Faults = append(c.Faults, randomLiar(rng, c, tgt))
	}
	sortFaults(c.Faults)
	return c
}

// randomLiar draws one two-faced fault against target tgt with on-grid
// times inside the campaign.
func randomLiar(rng *rand.Rand, c Campaign, tgt int) Fault {
	at := 5 * float64(1+rng.IntN(int(c.Dur/5)-2))
	win := 5 * float64(2+rng.IntN(19))
	if at+win > c.Dur {
		win = c.Dur - at
	}
	return Fault{Kind: TwoFaced, Target: tgt, At: at, Dur: win,
		Peers: randomPeers(rng, c.N, tgt, 0.02, 0.12)}
}

// Adversarial runs the hill-climbing search. It is deterministic in
// cfg.Seed for a deterministic cfg.Run.
func Adversarial(cfg AdversarialConfig) (AdversarialResult, error) {
	run := cfg.Run
	if run == nil {
		run = Run
	}
	steps := cfg.Steps
	if steps <= 0 {
		steps = 40
	}
	cur := GenerateAdversarial(cfg.Seed)
	v, err := run(cur)
	if err != nil {
		return AdversarialResult{}, err
	}
	res := AdversarialResult{Best: cur, Verdict: v, Evals: 1}
	rng := rand.New(rand.NewPCG(cfg.Seed^0x243f6a8885a308d3, cfg.Seed*0x9e3779b97f4a7c15+1))
	for step := 0; step < steps && res.Verdict.OK; step++ {
		cand := mutate(rng, res.Best)
		if cand.Validate() != nil {
			// A clamped mutation can still straddle a bound; skip it (the
			// step is spent, keeping the stream aligned across runs).
			continue
		}
		cv, err := run(cand)
		if err != nil {
			return res, err
		}
		res.Evals++
		if !cv.OK || cv.MinSlack < res.Verdict.MinSlack {
			res.Best, res.Verdict = cand, cv
		}
	}
	if !res.Verdict.OK {
		res.Found = true
		sr, err := Shrink(res.Best, run, cfg.ShrinkBudget)
		if err != nil {
			return res, err
		}
		res.Shrunk = &sr
		res.Evals += sr.Runs
	}
	return res, nil
}

// mutate derives one candidate from the current best. Mutations preserve
// the search's regime: only two-faced faults on distinct targets, never
// more than floor((N-1)/3) of them, so the byz-containment invariant
// stays armed on every candidate.
func mutate(rng *rand.Rand, c Campaign) Campaign {
	out := c
	out.Faults = append([]Fault(nil), c.Faults...)
	budget := (c.N - 1) / 3
	switch op := rng.IntN(6); {
	case op == 0 && len(out.Faults) > 0:
		// Redraw one fault's whole offset vector.
		i := rng.IntN(len(out.Faults))
		f := out.Faults[i]
		f.Peers = randomPeers(rng, c.N, f.Target, 0.02, 0.12)
		out.Faults[i] = f
	case op == 1 && len(out.Faults) > 0:
		// Redraw a single destination's offset, the finest probe.
		i := rng.IntN(len(out.Faults))
		f := out.Faults[i]
		j := rng.IntN(c.N)
		if j == f.Target {
			break
		}
		peers := append([]float64(nil), f.Peers...)
		sign := 1.0
		if rng.IntN(2) == 0 {
			sign = -1
		}
		peers[j] = sign * roundParam(0.02+rng.Float64()*0.1)
		f.Peers = peers
		out.Faults[i] = f
	case op == 2 && len(out.Faults) > 0:
		// Shift the onset along the grid.
		i := rng.IntN(len(out.Faults))
		f := out.Faults[i]
		f.At = grid(f.At + float64(rng.IntN(9)-4)*5)
		if f.At < 5 {
			f.At = 5
		}
		if f.At+f.Dur > c.Dur {
			f.Dur = c.Dur - f.At
		}
		out.Faults[i] = f
	case op == 3 && len(out.Faults) > 0:
		// Resize the lying window.
		i := rng.IntN(len(out.Faults))
		f := out.Faults[i]
		f.Dur = grid(f.Dur + float64(rng.IntN(9)-4)*5)
		if f.Dur < 5 {
			f.Dur = 5
		}
		if f.At+f.Dur > c.Dur {
			f.Dur = c.Dur - f.At
		}
		out.Faults[i] = f
	case op == 4 && len(out.Faults) < budget:
		// Recruit another liar on an unused target.
		used := make(map[int]bool, len(out.Faults))
		for _, f := range out.Faults {
			used[f.Target] = true
		}
		tgt := rng.IntN(c.N)
		if used[tgt] {
			break
		}
		out.Faults = append(out.Faults, randomLiar(rng, c, tgt))
	case op == 5 && len(out.Faults) > 1:
		// Retire one liar.
		out.Faults = dropFault(out.Faults, rng.IntN(len(out.Faults)))
	}
	sortFaults(out.Faults)
	return out
}
