package chaos

import (
	"fmt"
	"testing"

	"disttime/internal/obs"
)

// TestAdversarialCatchesBuggyIM is the Byzantine tier's harness
// self-test: the hill-climbing scheduler, searching against a planted
// coverage-floor bug (BuggyIM), must walk into a byz-containment
// violation and shrink it to at most three faults — and the minimized
// schedule must pass under the real byzIM, proving the bug, not the
// schedule, is at fault.
func TestAdversarialCatchesBuggyIM(t *testing.T) {
	buggy := func(c Campaign) (Verdict, error) { return RunInjected(c, BuggyIM{}) }
	caught := 0
	for seed := uint64(1); seed <= 10 && caught < 3; seed++ {
		res, err := Adversarial(AdversarialConfig{Seed: seed, Steps: 20, Run: buggy})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Found {
			continue
		}
		caught++
		if res.Shrunk == nil {
			t.Fatalf("seed %d: found a violation but did not shrink it", seed)
		}
		first, ok := res.Shrunk.Verdict.First()
		if !ok || first.Invariant != "byz-containment" {
			t.Errorf("seed %d: shrunk violation is %+v, want byz-containment", seed, first)
		}
		if len(res.Shrunk.Campaign.Faults) > 3 {
			t.Errorf("seed %d: shrunk reproducer still has %d faults: %s",
				seed, len(res.Shrunk.Campaign.Faults), res.Shrunk.Campaign)
		}
		// The minimized schedule must replay identically under the bug...
		again, err := buggy(res.Shrunk.Campaign)
		if err != nil {
			t.Fatalf("seed %d: replay: %v", seed, err)
		}
		if again.OK || again.Steps != res.Shrunk.Verdict.Steps {
			t.Errorf("seed %d: minimized reproducer does not replay identically", seed)
		}
		// ...and pass under the real envelope: the schedule is within the
		// f < n/3 budget, so only the planted bug can fail it.
		clean, err := Run(res.Shrunk.Campaign)
		if err != nil {
			t.Fatalf("seed %d: clean replay: %v", seed, err)
		}
		if !clean.OK {
			cf, _ := clean.First()
			t.Errorf("seed %d: real byzIM also fails the shrunk schedule: %v", seed, cf)
		}
	}
	if caught == 0 {
		t.Fatal("no adversarial seed cornered BuggyIM; the search or the monitor is asleep")
	}
}

// TestAdversarialCleanByzIM is the acceptance run: 50 seeded adversarial
// searches against the real byzIM must end with zero violations — the
// hill-climber tightening the containment margin as far as it can and
// still finding the envelope sound.
func TestAdversarialCleanByzIM(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		res, err := Adversarial(AdversarialConfig{Seed: seed, Steps: 10})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Found {
			first, _ := res.Verdict.First()
			t.Errorf("seed %d: adversarial search broke byzIM: %v\ncampaign: %s",
				seed, first, res.Best)
		}
		if res.Verdict.MinSlack <= 0 {
			t.Errorf("seed %d: non-positive slack %g without a violation",
				seed, res.Verdict.MinSlack)
		}
	}
}

// TestAdversarialDeterministic re-runs one search and demands the
// identical trajectory: same best campaign, same verdict fingerprint,
// same evaluation count. Adversarial results must be as replayable as
// generated ones.
func TestAdversarialDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		a, err := Adversarial(AdversarialConfig{Seed: seed, Steps: 10})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Adversarial(AdversarialConfig{Seed: seed, Steps: 10})
		if err != nil {
			t.Fatalf("seed %d re-run: %v", seed, err)
		}
		if a.Best.String() != b.Best.String() || a.Verdict.Steps != b.Verdict.Steps ||
			a.Verdict.MinSlack != b.Verdict.MinSlack || a.Evals != b.Evals {
			t.Fatalf("seed %d: searches diverge:\n%+v\n%+v", seed, a, b)
		}
	}
}

// TestByzCodecRoundTrip checks String∘Parse is the identity on
// adversarial campaigns (per-peer offset vectors included) and on
// hand-built campaigns carrying every new field at once.
func TestByzCodecRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 100; seed++ {
		c := GenerateAdversarial(seed)
		line := c.String()
		got, err := Parse(line)
		if err != nil {
			t.Fatalf("seed %d: Parse(%q): %v", seed, line, err)
		}
		if got.String() != line {
			t.Fatalf("seed %d: round trip changed the line:\n in: %s\nout: %s",
				seed, line, got.String())
		}
		if len(got.Faults) != len(c.Faults) {
			t.Fatalf("seed %d: fault count changed %d -> %d", seed, len(c.Faults), len(got.Faults))
		}
		for i := range got.Faults {
			if len(got.Faults[i].Peers) != len(c.Faults[i].Peers) {
				t.Fatalf("seed %d fault %d: peer vector length changed", seed, i)
			}
			for j := range got.Faults[i].Peers {
				if got.Faults[i].Peers[j] != c.Faults[i].Peers[j] {
					t.Fatalf("seed %d fault %d: peer %d offset %g -> %g",
						seed, i, j, c.Faults[i].Peers[j], got.Faults[i].Peers[j])
				}
			}
		}
	}
	// Every new field in one line: phi detector plus an equivocating
	// gossiper beside a two-faced replier.
	full := Campaign{
		Seed: 7, N: 4, Topo: "mesh", FnName: "byzIM", Dur: 300, Sync: 30,
		Mem: true, Phi: true,
		Faults: []Fault{
			{Kind: TwoFaced, Target: 0, At: 50, Dur: 40, Peers: []float64{0, 0.05, -0.1, 0.025}},
			{Kind: Equivocate, Target: 2, At: 100, Dur: 50, Peers: []float64{0.03, -0.06, 0, 0.09}},
		},
	}
	line := full.String()
	got, err := Parse(line)
	if err != nil {
		t.Fatalf("Parse(%q): %v", line, err)
	}
	if got.String() != line {
		t.Fatalf("full-field round trip changed the line:\n in: %s\nout: %s", line, got.String())
	}
	if !got.Phi || !got.Mem {
		t.Fatalf("phi/mem flags lost in round trip: %+v", got)
	}
}

// TestByzCodecBackCompat pins byte identity for pre-Byzantine reproducer
// lines: old lines parse, and re-encode to exactly themselves, so every
// committed corpus file stays valid.
func TestByzCodecBackCompat(t *testing.T) {
	lines := []string{
		"v1 seed=14 n=3 topo=star fn=MM rec=0 dur=50 sync=30 faults=-",
		"v1 seed=5 n=5 topo=star fn=selectIM rec=0 dur=400 sync=60 faults=race:1@190*0.9226;false:4@280*0.6462;race:1@300*0.969;stop:0@350",
		"v1 seed=3 n=4 topo=mesh fn=IM rec=1 mem=1 dur=300 sync=30 faults=churn:2@100+50;loss@150+30*0.5",
	}
	for _, line := range lines {
		c, err := Parse(line)
		if err != nil {
			t.Fatalf("Parse(%q): %v", line, err)
		}
		if c.String() != line {
			t.Errorf("legacy line re-encoded differently:\n in: %s\nout: %s", line, c.String())
		}
		if c.Phi {
			t.Errorf("legacy line %q parsed with phi set", line)
		}
	}
}

// TestByzParseRejectsMalformed exercises the new codec error paths.
func TestByzParseRejectsMalformed(t *testing.T) {
	bad := []string{
		// Offset list sized wrong for n.
		"v1 seed=1 n=4 topo=mesh fn=byzIM rec=0 dur=300 sync=30 faults=twoface:0@50+40=0,0.05",
		// Missing offset list entirely.
		"v1 seed=1 n=4 topo=mesh fn=byzIM rec=0 dur=300 sync=30 faults=twoface:0@50+40",
		// Unparseable offset.
		"v1 seed=1 n=4 topo=mesh fn=byzIM rec=0 dur=300 sync=30 faults=twoface:0@50+40=0,x,0,0",
		// Equivocation without membership gossip.
		"v1 seed=1 n=4 topo=mesh fn=byzIM rec=0 dur=300 sync=30 faults=equiv:0@50+40=0,0.05,0.05,0.05",
		// Phi without membership.
		"v1 seed=1 n=4 topo=mesh fn=byzIM rec=0 phi=1 dur=300 sync=30 faults=-",
		// Missing target.
		"v1 seed=1 n=4 topo=mesh fn=byzIM rec=0 dur=300 sync=30 faults=twoface@50+40=0,0.05,0.05,0.05",
		// Missing duration.
		"v1 seed=1 n=4 topo=mesh fn=byzIM rec=0 dur=300 sync=30 faults=twoface:0@50=0,0.05,0.05,0.05",
	}
	for _, line := range bad {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q) accepted a malformed line", line)
		}
	}
}

// TestPhiVsDeadlineFalseEvictions runs identical churn-and-jitter
// schedules under both failure detectors and compares false-eviction
// counts — the EXPERIMENTS.md comparison. The deadline detector's
// drift-bound argument promises zero false evictions while heartbeats
// flow (announced churn, jitter, crashes), so that is asserted hard on
// loss-free schedules; under message loss no timeout detector can avoid
// evicting a silenced-but-alive member, so lossy schedules only record
// the two counts and demand determinism.
func TestPhiVsDeadlineFalseEvictions(t *testing.T) {
	schedules := []struct {
		line  string
		lossy bool
	}{
		// Announced churn only: every eviction should be of a genuinely
		// departed or crashed member.
		{"v1 seed=11 n=5 topo=mesh fn=IM rec=0 mem=1 dur=600 sync=30 faults=churn:1@100+80;churn:3@300+100", false},
		// Delay spikes past the assumed bound stretch inter-arrivals, the
		// phi detector's hardest weather; messages still arrive.
		{"v1 seed=12 n=6 topo=mesh fn=IM rec=0 mem=1 dur=600 sync=30 faults=delay@100+100*8;churn:2@250+100;delay@400+100*12", false},
		// Churn racing heavy loss: silence is indistinguishable from
		// death, so both detectors will wrongly evict — the comparison is
		// who evicts less.
		{"v1 seed=13 n=5 topo=mesh fn=IM rec=0 mem=1 dur=600 sync=30 faults=churn:1@100+80;loss@120+60*0.6;churn:3@300+100;loss@320+80*0.5", true},
		// A crash the detector is supposed to notice, then heavy loss.
		{"v1 seed=14 n=5 topo=ring fn=MM rec=0 mem=1 dur=600 sync=30 faults=crash:4@150+120;loss@300+120*0.7", true},
	}
	falseEvicts := func(line string, phi bool) (uint64, uint64) {
		c, err := Parse(line)
		if err != nil {
			t.Fatalf("Parse(%q): %v", line, err)
		}
		c.Phi = phi
		reg := obs.NewRegistry()
		v, err := RunObserved(c, reg)
		if err != nil {
			t.Fatalf("phi=%v: %v", phi, err)
		}
		if !v.OK {
			first, _ := v.First()
			t.Errorf("phi=%v: schedule violates invariants: %v\n%s", phi, first, c)
		}
		return reg.Counter("member_false_evictions_total").Value(),
			reg.Counter("member_evictions_total").Value()
	}
	for _, s := range schedules {
		dlFalse, dlEvicts := falseEvicts(s.line, false)
		phiFalse, phiEvicts := falseEvicts(s.line, true)
		t.Logf("schedule %q:\n  deadline: %d evictions, %d false\n  phi:      %d evictions, %d false",
			s.line, dlEvicts, dlFalse, phiEvicts, phiFalse)
		if !s.lossy && dlFalse != 0 {
			t.Errorf("deadline detector falsely evicted %d times on loss-free %q; its drift-bound guarantee is broken",
				dlFalse, s.line)
		}
		if !s.lossy && phiFalse > 0 && phiEvicts == phiFalse {
			// Not a failure — phi's promise is probabilistic — but worth a
			// visible line when every phi eviction was false.
			t.Logf("note: every phi eviction on %q was false", s.line)
		}
		// Counts are part of the deterministic trajectory.
		dlFalse2, _ := falseEvicts(s.line, false)
		phiFalse2, _ := falseEvicts(s.line, true)
		if dlFalse2 != dlFalse || phiFalse2 != phiFalse {
			t.Errorf("eviction counts not deterministic on %q", s.line)
		}
	}
}

// TestPhiCampaignsDeterministic pins the determinism fingerprint for
// phi-detector campaigns: the new detector must not introduce map-order
// or wall-clock dependence.
func TestPhiCampaignsDeterministic(t *testing.T) {
	line := "v1 seed=21 n=5 topo=mesh fn=byzIM rec=0 mem=1 phi=1 dur=400 sync=30 faults=churn:1@100+80;twoface:2@200+60=0.05,-0.04,0,0.06,-0.05"
	c, err := Parse(line)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.OK != b.OK || a.MinSlack != b.MinSlack {
		t.Fatalf("phi campaign not deterministic: %+v vs %+v", a, b)
	}
	if !a.OK {
		first, _ := a.First()
		t.Fatalf("phi campaign violates invariants: %v", first)
	}
}

// TestEquivocateGossipHarmless checks the interval algebra's claim about
// equivocation: conflicting <C, E> gossip corrupts peer selection at
// worst, never containment — time replies stay honest, so a campaign
// that only equivocates must pass every invariant under every rule.
func TestEquivocateGossipHarmless(t *testing.T) {
	for _, fn := range []string{"MM", "IM", "selectIM", "byzIM"} {
		line := fmt.Sprintf(
			"v1 seed=31 n=5 topo=mesh fn=%s rec=0 mem=1 dur=400 sync=30 faults=equiv:1@50+300=0.2,0,-0.2,0.15,-0.15", fn)
		c, err := Parse(line)
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		v, err := Run(c)
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		if !v.OK {
			first, _ := v.First()
			t.Errorf("%s: equivocation-only campaign failed: %v", fn, first)
		}
	}
}
