// Package chaos is the randomized conformance harness for the paper's
// theorems: it layers fault campaigns — the Section 1.1 clock failures
// (stopped, racing, stuck-on-set), falsetickers, message-loss bursts,
// delay spikes beyond the assumed xi bound, partitions, and server
// crash/restart — on top of the deterministic simulator, while an
// always-on invariant monitor asserts on every synchronization pass that
//
//   - a correct (non-faulty, untainted) server's interval [C-E, C+E]
//     contains the true time (Theorems 1 and 5),
//   - an MM pass never increases the server's maximum error (rule MM-2),
//   - an IM-family pass either resets or flags inconsistency when it had
//     replies (rules IM-1/IM-2),
//   - between passes the error grows by at most delta per clock second
//     (rule MM-1's deterioration bound),
//   - the monotonic-clock wrapper never steps backward,
//   - the correct servers' intervals always share a common point,
//   - while no clock fault has begun, every server's hybrid logical
//     clock keeps its logical counter under a small ceiling (walls
//     advance between events, so causality rarely needs the tiebreak),
//     and
//   - with the transaction workload enabled (Txn), commits are
//     externally consistent: a transaction that completes before
//     another starts carries the strictly smaller timestamp, asserted
//     while both involved servers are untainted.
//
// Every campaign is a pure function of a seed plus a fault schedule, so a
// failing campaign is a replayable artifact: Shrink minimizes it (drop
// faults, halve windows, bisect the schedule) to a one-line reproducer
// (Campaign.String / Parse) that `timesim -chaos -replay` re-executes
// bit-identically, and minimized reproducers live on as regression cases
// under internal/chaos/corpus.
package chaos

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"disttime/internal/clock"
	"disttime/internal/core"
	"disttime/internal/interval"
	"disttime/internal/service"
	"disttime/internal/simnet"
)

// FaultKind enumerates the injectable faults.
type FaultKind uint8

// The fault kinds. The first three are the paper's Section 1.1 clock
// failures; Falseticker is the Figure 3 hazard (a clock that lies while
// its server keeps answering); the rest are network and process faults.
const (
	StopClock   FaultKind = iota + 1 // clock freezes at At (oscillator dies)
	RaceClock                        // clock advances Param clock-seconds per real second from At
	StickClock                       // clock refuses Set from At onward
	Falseticker                      // clock register jumps by Param at At, bookkeeping unaware
	LossBurst                        // every link drops messages with probability Param in [At, At+Dur)
	DelaySpike                       // every link's delays are scaled by Param in [At, At+Dur)
	Partition                        // network splits into Groups in [At, At+Dur)
	Crash                            // server Target is down in [At, At+Dur)
	Churn                            // server Target leaves voluntarily at At and rejoins at At+Dur
	TwoFaced                         // server Target answers each peer from a per-peer skewed register in [At, At+Dur)
	Equivocate                       // server Target gossips conflicting <C,E> pairs per peer in [At, At+Dur)
)

// kindNames maps kinds to their reproducer-line tokens.
var kindNames = map[FaultKind]string{
	StopClock:   "stop",
	RaceClock:   "race",
	StickClock:  "stick",
	Falseticker: "false",
	LossBurst:   "loss",
	DelaySpike:  "delay",
	Partition:   "part",
	Crash:       "crash",
	Churn:       "churn",
	TwoFaced:    "twoface",
	Equivocate:  "equiv",
}

// String returns the kind's reproducer-line token.
func (k FaultKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// isClockFault reports whether the kind corrupts a server's clock (and so
// taints the server for the containment invariant).
func (k FaultKind) isClockFault() bool {
	switch k {
	case StopClock, RaceClock, StickClock, Falseticker:
		return true
	}
	return false
}

// isLyingFault reports whether the kind makes a server lie to its peers
// while its own bookkeeping stays honest — the Byzantine faults the
// f < n/3 containment argument budgets for.
func (k FaultKind) isLyingFault() bool {
	return k == TwoFaced || k == Equivocate
}

// targeted reports whether the kind applies to a single server.
func (k FaultKind) targeted() bool {
	switch k {
	case StopClock, RaceClock, StickClock, Falseticker, Crash, Churn, TwoFaced, Equivocate:
		return true
	}
	return false
}

// windowed reports whether the kind has a duration (an end event).
func (k FaultKind) windowed() bool {
	switch k {
	case LossBurst, DelaySpike, Partition, Crash, Churn, TwoFaced, Equivocate:
		return true
	}
	return false
}

// Fault is one scheduled fault.
type Fault struct {
	// Kind selects the fault.
	Kind FaultKind
	// Target is the server index for targeted kinds.
	Target int
	// At is the virtual time the fault begins.
	At float64
	// Dur is the window length for windowed kinds (clock faults are
	// permanent, as in Section 1.1: a dead oscillator stays dead).
	Dur float64
	// Param is the kind-specific magnitude: racing rate, falseticker
	// jump, loss probability, or delay multiplier.
	Param float64
	// Groups is the partition layout (server indices) for Partition.
	Groups [][]int
	// Peers is the per-destination skew vector for TwoFaced and
	// Equivocate: the lie told to server j is offset Peers[j]. It must
	// have exactly N entries; Peers[Target] is conventionally zero (a
	// server does not lie to itself).
	Peers []float64
}

// Campaign is one self-contained chaos run: everything the run depends on
// is derived deterministically from these fields, so equal campaigns
// always produce equal verdicts.
type Campaign struct {
	// Seed drives the simulator PRNG, the sync stagger, the link delay
	// draws, and the per-server spec derivation.
	Seed uint64
	// N is the number of servers.
	N int
	// Topo is the topology name: mesh, ring, line, or star.
	Topo string
	// FnName is the synchronization function: MM, IM, IMdrop, selectIM,
	// or byzIM (the Byzantine-tolerant envelope variant).
	FnName string
	// Recovery enables the Section 3 recovery heuristic on every server.
	Recovery bool
	// Dur is the campaign length in virtual seconds.
	Dur float64
	// Sync is every server's synchronization period.
	Sync float64
	// Mem enables dynamic membership on every server: rosters, gossip,
	// the drift-aware failure detector, and roster-driven polling.
	// Churn faults exercise the full leave/rejoin protocol when Mem is
	// set; without it they degrade to crash/restart (the only departure
	// a static topology can express).
	Mem bool
	// Phi selects the phi-accrual failure detector instead of the
	// drift-widened deadline detector for membership (requires Mem).
	Phi bool
	// Txn enables the commit-wait transaction workload (internal/txn):
	// one client per server stamps transactions with hybrid logical clock
	// timestamps and commits after a TrueTime-style commit-wait, while
	// the monitor checks external consistency online — a transaction that
	// completes before another starts must carry the smaller timestamp,
	// asserted only while both involved servers' clocks are untainted.
	Txn bool
	// Faults is the schedule, ordered by At.
	Faults []Fault
}

// Campaign-wide constants: the nominal delay model is the paper's
// zero-minimum uniform with a 0.05 s one-way bound (xi = 0.1 s), and the
// collection window is pinned to just over the nominal xi — so a delay
// spike genuinely violates the assumed bound instead of stretching the
// window with it.
const (
	nominalDelayMax = 0.05
	collectWindow   = 2 * nominalDelayMax * 1.05
	initialError    = 0.05
)

func nominalDelay() simnet.DelayModel { return simnet.Uniform{Min: 0, Max: nominalDelayMax} }

// specFor derives server i's physical parameters from the campaign seed
// alone (independent of the fault schedule), so shrinking a schedule
// never changes who the servers are.
func specFor(seed uint64, i int) (delta, drift, offset float64) {
	rng := rand.New(rand.NewPCG(
		seed^0x5bf036353b1cd3a9,
		uint64(i)*0x9e3779b97f4a7c15+0x243f6a8885a308d3))
	delta = 5e-5 + rng.Float64()*4.5e-4
	drift = (rng.Float64()*2 - 1) * 0.9 * delta // strictly inside the claimed bound
	offset = (rng.Float64()*2 - 1) * 0.02
	return delta, drift, offset
}

// grid snaps x to the campaign's 5-second scheduling grid (shrinking
// stays on-grid so reproducer lines remain short and exact).
func grid(x float64) float64 { return math.Round(x/5) * 5 }

// roundParam rounds magnitudes to 1e-4 so reproducer lines are compact
// and round-trip losslessly through decimal formatting.
func roundParam(x float64) float64 { return math.Round(x*1e4) / 1e4 }

// Generate derives a randomized campaign from a seed. The same seed
// always yields the same campaign.
func Generate(seed uint64) Campaign {
	rng := rand.New(rand.NewPCG(seed, seed^0x6a09e667f3bcc909))
	c := Campaign{
		Seed: seed,
		N:    3 + rng.IntN(5),
		Dur:  300 + 100*float64(rng.IntN(7)),
		Sync: 20 + 10*float64(rng.IntN(5)),
	}
	topos := []string{"mesh", "mesh", "mesh", "ring", "star"}
	c.Topo = topos[rng.IntN(len(topos))]
	fns := []string{"MM", "IM", "IMdrop", "selectIM", "byzIM"}
	c.FnName = fns[rng.IntN(len(fns))]
	c.Recovery = rng.IntN(2) == 0
	c.Mem = rng.IntN(2) == 0
	c.Phi = c.Mem && rng.IntN(3) == 0
	for nf := rng.IntN(6); nf > 0; nf-- {
		c.Faults = append(c.Faults, randomFault(rng, c.N, c.Dur, c.Mem))
	}
	sortFaults(c.Faults)
	return c
}

// randomPeers draws a per-destination skew vector: every peer except the
// liar itself gets an independent signed offset of magnitude lo..hi,
// rounded so the vector round-trips through the reproducer codec.
func randomPeers(rng *rand.Rand, n, target int, lo, hi float64) []float64 {
	peers := make([]float64, n)
	for j := range peers {
		if j == target {
			continue
		}
		sign := 1.0
		if rng.IntN(2) == 0 {
			sign = -1
		}
		peers[j] = sign * roundParam(lo+rng.Float64()*(hi-lo))
	}
	return peers
}

// randomFault draws one fault with on-grid times inside (0, dur). Churn
// and Equivocate faults are drawn only for membership-enabled campaigns,
// where they exercise the leave/rejoin protocol and the gossip path.
func randomFault(rng *rand.Rand, n int, dur float64, mem bool) Fault {
	at := 5 * float64(1+rng.IntN(int(dur/5)-2))
	win := 5 * float64(2+rng.IntN(19)) // 10..100 s
	if at+win > dur {
		win = dur - at
	}
	sign := 1.0
	if rng.IntN(2) == 0 {
		sign = -1
	}
	eligible := []FaultKind{StopClock, RaceClock, StickClock, Falseticker,
		LossBurst, DelaySpike, Partition, Crash, TwoFaced}
	if mem {
		eligible = append(eligible, Churn, Equivocate)
	}
	switch eligible[rng.IntN(len(eligible))] {
	case StopClock:
		return Fault{Kind: StopClock, Target: rng.IntN(n), At: at}
	case RaceClock:
		return Fault{Kind: RaceClock, Target: rng.IntN(n), At: at,
			Param: roundParam(1 + sign*(0.02+rng.Float64()*0.08))}
	case StickClock:
		return Fault{Kind: StickClock, Target: rng.IntN(n), At: at}
	case Falseticker:
		return Fault{Kind: Falseticker, Target: rng.IntN(n), At: at,
			Param: sign * roundParam(0.5+rng.Float64()*9.5)}
	case LossBurst:
		return Fault{Kind: LossBurst, At: at, Dur: win,
			Param: roundParam(0.3 + rng.Float64()*0.65)}
	case DelaySpike:
		return Fault{Kind: DelaySpike, At: at, Dur: win,
			Param: roundParam(3 + rng.Float64()*17)}
	case Partition:
		groups := make([][]int, 2)
		for i := 0; i < n; i++ {
			g := rng.IntN(2)
			groups[g] = append(groups[g], i)
		}
		if len(groups[0]) == 0 || len(groups[1]) == 0 {
			// Degenerate split: carve off server 0.
			groups = [][]int{{0}, nil}
			for i := 1; i < n; i++ {
				groups[1] = append(groups[1], i)
			}
		}
		return Fault{Kind: Partition, At: at, Dur: win, Groups: groups}
	case Churn:
		return Fault{Kind: Churn, Target: rng.IntN(n), At: at, Dur: win}
	case TwoFaced:
		t := rng.IntN(n)
		return Fault{Kind: TwoFaced, Target: t, At: at, Dur: win,
			Peers: randomPeers(rng, n, t, 0.02, 0.12)}
	case Equivocate:
		t := rng.IntN(n)
		return Fault{Kind: Equivocate, Target: t, At: at, Dur: win,
			Peers: randomPeers(rng, n, t, 0.02, 0.12)}
	default:
		return Fault{Kind: Crash, Target: rng.IntN(n), At: at, Dur: win}
	}
}

// sortFaults orders the schedule by start time, breaking ties by kind
// then target so encoding is canonical.
func sortFaults(fs []Fault) {
	sort.SliceStable(fs, func(i, j int) bool {
		if !interval.SameEdge(fs[i].At, fs[j].At) {
			return fs[i].At < fs[j].At
		}
		if fs[i].Kind != fs[j].Kind {
			return fs[i].Kind < fs[j].Kind
		}
		return fs[i].Target < fs[j].Target
	})
}

// Validate checks that the campaign is well-formed (Parse accepts
// arbitrary text, so the checks run before every build).
func (c Campaign) Validate() error {
	if c.N < 2 || c.N > 64 {
		return fmt.Errorf("chaos: server count %d outside [2, 64]", c.N)
	}
	if !(c.Dur > 0) || c.Dur > 1e6 {
		return fmt.Errorf("chaos: duration %v outside (0, 1e6]", c.Dur)
	}
	if !(c.Sync > 0) || c.Sync > c.Dur {
		return fmt.Errorf("chaos: sync period %v outside (0, dur]", c.Sync)
	}
	if _, err := topologyFor(c.Topo); err != nil {
		return err
	}
	if _, err := fnFor(c.FnName, c.N); err != nil {
		return err
	}
	if c.Phi && !c.Mem {
		return fmt.Errorf("chaos: phi detector requires membership (phi=1 without mem=1)")
	}
	for i, f := range c.Faults {
		if kindNames[f.Kind] == "" {
			return fmt.Errorf("chaos: fault %d: unknown kind %d", i, f.Kind)
		}
		if f.Kind.targeted() && (f.Target < 0 || f.Target >= c.N) {
			return fmt.Errorf("chaos: fault %d: target %d outside [0, %d)", i, f.Target, c.N)
		}
		if f.At < 0 || f.At > c.Dur {
			return fmt.Errorf("chaos: fault %d: start %v outside [0, %v]", i, f.At, c.Dur)
		}
		if f.Kind.windowed() && !(f.Dur > 0) {
			return fmt.Errorf("chaos: fault %d: %v needs a positive duration", i, f.Kind)
		}
		if f.Kind.windowed() && f.At+f.Dur > c.Dur {
			return fmt.Errorf("chaos: fault %d: window [%v, %v] overruns duration %v",
				i, f.At, f.At+f.Dur, c.Dur)
		}
		switch f.Kind {
		case LossBurst:
			if !(f.Param > 0) || f.Param >= 1 {
				return fmt.Errorf("chaos: fault %d: loss probability %v outside (0, 1)", i, f.Param)
			}
		case DelaySpike:
			if !(f.Param > 0) {
				return fmt.Errorf("chaos: fault %d: non-positive delay factor %v", i, f.Param)
			}
		case RaceClock:
			if !(f.Param > 0) {
				return fmt.Errorf("chaos: fault %d: non-positive racing rate %v", i, f.Param)
			}
		case Partition:
			if len(f.Groups) == 0 {
				return fmt.Errorf("chaos: fault %d: partition without groups", i)
			}
			for _, g := range f.Groups {
				for _, idx := range g {
					if idx < 0 || idx >= c.N {
						return fmt.Errorf("chaos: fault %d: partition member %d outside [0, %d)", i, idx, c.N)
					}
				}
			}
		case TwoFaced, Equivocate:
			if len(f.Peers) != c.N {
				return fmt.Errorf("chaos: fault %d: %v wants %d per-peer offsets, got %d",
					i, f.Kind, c.N, len(f.Peers))
			}
			for j, off := range f.Peers {
				if math.IsNaN(off) || math.IsInf(off, 0) {
					return fmt.Errorf("chaos: fault %d: non-finite peer offset %v for peer %d", i, off, j)
				}
			}
			if f.Kind == Equivocate && !c.Mem {
				return fmt.Errorf("chaos: fault %d: equivocation needs membership gossip (mem=1)", i)
			}
		}
	}
	return nil
}

// topologyFor maps a topology name to the service constant.
func topologyFor(name string) (service.Topology, error) {
	switch name {
	case "mesh":
		return service.FullMesh, nil
	case "ring":
		return service.Ring, nil
	case "line":
		return service.Line, nil
	case "star":
		return service.Star, nil
	}
	return 0, fmt.Errorf("chaos: unknown topology %q", name)
}

// fnFor maps a synchronization-function name to its implementation. The
// server count sizes byzIM's lie budget: F = floor((n-1)/3) is fixed at
// build so the coverage floor is per-campaign, not per-round (a per-round
// budget is unsound under message loss — see core.ByzIM).
func fnFor(name string, n int) (core.SyncFunc, error) {
	switch name {
	case "MM":
		return core.MM{}, nil
	case "IM":
		return core.IM{}, nil
	case "IMdrop":
		return core.IM{DropInconsistent: true}, nil
	case "selectIM":
		return core.SelectIM{}, nil
	case "byzIM":
		return core.ByzIM{F: (n - 1) / 3}, nil
	}
	return nil, fmt.Errorf("chaos: unknown sync function %q", name)
}

// clockFaultsFor collects the clock faults aimed at server i, in schedule
// order, for wrapper construction.
func clockFaultsFor(faults []Fault, i int) []Fault {
	var out []Fault
	for _, f := range faults {
		if f.Target == i {
			switch f.Kind {
			case StopClock, RaceClock, StickClock:
				out = append(out, f)
			}
		}
	}
	return out
}

// build assembles the service for the campaign. override, when non-nil,
// replaces the synchronization function on every server — the hook the
// harness's own self-tests use to inject deliberately broken rules and
// prove the monitor catches them.
func (c Campaign) build(override core.SyncFunc) (*service.Service, error) {
	topo, err := topologyFor(c.Topo)
	if err != nil {
		return nil, err
	}
	fn := override
	if fn == nil {
		if fn, err = fnFor(c.FnName, c.N); err != nil {
			return nil, err
		}
	}
	specs := make([]service.ServerSpec, c.N)
	for i := range specs {
		delta, drift, offset := specFor(c.Seed, i)
		wraps := clockFaultsFor(c.Faults, i)
		driftI := drift
		specs[i] = service.ServerSpec{
			Delta:         delta,
			InitialOffset: offset,
			InitialError:  initialError,
			SyncEvery:     c.Sync,
			Recovery:      c.Recovery,
			NewClock: func(t, value float64) clock.Clock {
				var clk clock.Clock = clock.NewDrifting(t, value, driftI)
				for _, f := range wraps {
					switch f.Kind {
					case StopClock:
						clk = clock.NewStopped(clk, f.At)
					case RaceClock:
						clk = clock.NewRacing(clk, f.At, f.Param)
					case StickClock:
						clk = clock.NewStuck(clk, f.At)
					}
				}
				return clk
			},
		}
	}
	cfg := service.Config{
		Seed:       c.Seed,
		Delay:      nominalDelay(),
		Topology:   topo,
		Fn:         fn,
		Servers:    specs,
		CollectFor: collectWindow,
	}
	if c.Mem {
		// Gossip several times per sync period so rosters converge well
		// within the campaign; the detector's deadline follows from the
		// period via member.DetectorConfig, so eviction windows stay
		// small relative to Dur.
		cfg.Members = &service.MemberConfig{GossipEvery: math.Max(2, c.Sync/5)}
		if c.Phi {
			cfg.Members.Detector = "phi"
		}
	}
	return service.New(cfg)
}
