// Loader: a stdlib-only package loader and type-checker for the lint
// driver. It resolves module-internal import paths against the repository
// root and everything else against GOROOT/src, type-checking from source
// (the go/importer "gc" importer needs compiled export data, which modern
// toolchains no longer ship in GOROOT/pkg; type-checking the standard
// library from source keeps the driver dependency-free and hermetic).
//
// The loader memoizes packages by import path, so a whole-repository run
// type-checks each standard-library dependency exactly once. Detailed
// types.Info is recorded only for module-internal packages — the analyzers
// never look inside the standard library, they only need its objects.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// osStat is an indirection point for tests.
var osStat = os.Stat

// Package is one type-checked package as seen by the analyzers.
type Package struct {
	// Path is the import path ("disttime/internal/interval").
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the parsed non-test source files, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's findings for Files. It is populated
	// for packages loaded via LoadDir and nil for transitive imports.
	Info *types.Info
	// Fset positions for Files.
	Fset *token.FileSet
}

// Loader loads and type-checks packages from source.
type Loader struct {
	Fset *token.FileSet
	// ModulePath is the module's import-path prefix ("disttime").
	ModulePath string
	// ModuleDir is the directory containing go.mod.
	ModuleDir string

	ctx     build.Context
	pkgs    map[string]*types.Package // memoized transitive imports
	loading map[string]bool           // cycle detection
}

// NewLoader returns a loader rooted at the given module.
func NewLoader(moduleDir, modulePath string) *Loader {
	ctx := build.Default
	// Cgo-free file selection: the lint driver only needs types, and the
	// pure-Go variants of net etc. type-check from source without the cgo
	// preprocessing step.
	ctx.CgoEnabled = false
	return &Loader{
		Fset:       token.NewFileSet(),
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		ctx:        ctx,
		pkgs:       make(map[string]*types.Package),
		loading:    make(map[string]bool),
	}
}

// dirFor maps an import path to the directory holding its source.
func (l *Loader) dirFor(importPath string) (string, error) {
	if importPath == l.ModulePath {
		return l.ModuleDir, nil
	}
	if strings.HasPrefix(importPath, l.ModulePath+"/") {
		rel := strings.TrimPrefix(importPath, l.ModulePath+"/")
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rel)), nil
	}
	goroot := l.ctx.GOROOT
	if goroot == "" {
		goroot = runtime.GOROOT()
	}
	dir := filepath.Join(goroot, "src", filepath.FromSlash(importPath))
	if _, err := osStat(dir); err != nil {
		// The standard library vendors its external dependencies
		// (golang.org/x/...) under src/vendor.
		vendored := filepath.Join(goroot, "src", "vendor", filepath.FromSlash(importPath))
		if _, verr := osStat(vendored); verr == nil {
			return vendored, nil
		}
	}
	return dir, nil
}

// Import implements types.Importer so the type-checker can resolve
// dependencies through the loader.
func (l *Loader) Import(importPath string) (*types.Package, error) {
	if importPath == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	dir, err := l.dirFor(importPath)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(dir, false)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", importPath, err)
	}
	conf := l.config()
	pkg, err := conf.Check(importPath, l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

func (l *Loader) config() types.Config {
	return types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		// Tolerate individual errors so one stray issue does not hide
		// the rest of a package; fatal problems still surface through
		// Check's returned error.
		Error: func(error) {},
	}
}

// parseDir parses the build-selected source files of dir. Comments are
// retained only when withComments is set (module-internal packages need
// them for //lint:ignore directives; the standard library does not).
func (l *Loader) parseDir(dir string, withComments bool) ([]*ast.File, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	mode := parser.SkipObjectResolution
	if withComments {
		mode |= parser.ParseComments
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadDir loads, parses (with comments), and fully type-checks the package
// in dir under the given import path, recording complete types.Info for
// the analyzers.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	files, err := l.parseDir(dir, true)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", importPath, err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := l.config()
	l.loading[importPath] = true
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	delete(l.loading, importPath)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	// Memoize only if this package has not already been imported
	// transitively: replacing the instance would give later packages a
	// different identity for the same import path and poison their
	// type checks.
	if _, exists := l.pkgs[importPath]; !exists {
		l.pkgs[importPath] = tpkg
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Files: files,
		Types: tpkg,
		Info:  info,
		Fset:  l.Fset,
	}, nil
}
