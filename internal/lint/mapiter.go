package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapIter flags `range` over a map whose loop body feeds order-sensitive
// sinks — formatted output (fmt.Print*/Fprint*), writer methods
// (Write/WriteString/Encode/...), or slice accumulation via append — in
// the packages whose artifacts must be byte-identical run-to-run
// (internal/experiments, internal/trace, cmd/). Go randomizes map
// iteration order, so a single such loop makes CSV rows, trace dumps, and
// returned slices differ between runs even under a fixed seed.
//
// The canonical fix is accepted by construction: collecting the keys,
// sorting, and ranging over the sorted slice ranges over a slice, not a
// map — and the key-collection loop itself is recognized, because an
// append whose target is later passed to a sort (sort.*, slices.Sort*)
// in the same function is order-laundering, not an order leak.
// Order-insensitive bodies (counting, summing, re-keying into another
// map) are not flagged.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "no ranging over maps where iteration order reaches output or caller-visible slices",
	Run:  runMapIter,
}

// orderSinkMethods are method names whose call inside a map-range body
// makes iteration order observable.
var orderSinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteAll":    true,
	"Encode":      true,
	"Printf":      true,
	"Println":     true,
	"Print":       true,
}

func runMapIter(pass *Pass) {
	if !pathIn(pass.Pkg.Path, pass.Cfg.MapIterScope) {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd.Body)
		}
	}
}

func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		sink, appendTarget := findOrderSink(pass, rs.Body)
		if sink == "" {
			return true
		}
		if appendTarget != nil && sortedAfter(pass, body, rs, appendTarget) {
			return true // keys collected for sorting: the approved idiom
		}
		pass.Reportf(rs.Pos(),
			"range over map feeds %s; iteration order is randomized — sort the keys and range over the sorted slice",
			sink)
		return true
	})
}

// findOrderSink returns a description of the first order-sensitive sink
// in body, or "" if the body is order-insensitive. When the sink is an
// append to a plain variable, the variable is also returned so the caller
// can check for a later sort.
func findOrderSink(pass *Pass, body *ast.BlockStmt) (string, *types.Var) {
	var sink string
	var appendTarget *types.Var
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if b, ok := pass.Pkg.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
				sink = "slice accumulation (append)"
				if id, ok := call.Args[0].(*ast.Ident); ok {
					appendTarget, _ = pass.Pkg.Info.Uses[id].(*types.Var)
				}
				return false
			}
		case *ast.SelectorExpr:
			obj := pass.Pkg.Info.Uses[fun.Sel]
			fn, ok := obj.(*types.Func)
			if !ok {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			isMethod := sig != nil && sig.Recv() != nil
			if !isMethod && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
				(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
				sink = "fmt output (" + fn.Name() + ")"
				return false
			}
			if isMethod && orderSinkMethods[fn.Name()] {
				sink = "writer method " + fn.Name()
				return false
			}
		}
		return true
	})
	return sink, appendTarget
}

// sortedAfter reports whether target is passed to a sorting function
// (package sort or slices) after the range statement, anywhere in the
// enclosing function body — the order-laundering step that makes
// append-accumulation from a map range deterministic.
func sortedAfter(pass *Pass, body *ast.BlockStmt, rs *ast.RangeStmt, target *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		// The sorted value may be wrapped (sort.Sort(byName(keys))), so
		// scan the argument subtrees for the accumulation target.
		for _, arg := range call.Args {
			hit := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok {
					if v, _ := pass.Pkg.Info.Uses[id].(*types.Var); v == target {
						hit = true
						return false
					}
				}
				return true
			})
			if hit {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
