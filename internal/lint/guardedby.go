package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// GuardedBy is the static complement of the race detector: it infers, per
// struct field, which mutex of the same struct guards it — by majority
// vote over the package's lock-held accesses — and then flags every
// access of that field reachable without the inferred mutex. The race
// detector only sees schedules it happens to execute; this analyzer sees
// every access site, so a lock-free read of a mostly-guarded field is
// caught even if no test ever races it.
//
// Inference is deliberately conservative, tuned to avoid false positives
// rather than to catch everything:
//
//   - A field is considered guarded by mutex m only when at least
//     guardedByMinLocked accesses hold m AND those are a strict majority
//     of all recorded accesses. One locked access proves nothing.
//   - Accesses through a variable declared inside the same function body
//     are skipped: a struct under construction (New functions, test
//     setup) is not yet shared, so its initialization is lock-free by
//     design.
//   - Lock-state tracking is optimistic across branches: a field access
//     after a conditional that MAY have locked is treated as locked, and
//     an unlock inside a branch that terminates (early return) does not
//     release the lock for the code after the branch. False negatives
//     are acceptable; false alarms are not.
//   - Function literals are assumed to run synchronously (they inherit
//     the current lock set) except goroutine bodies (`go func(){...}`),
//     which start with no locks held.
//
// Known blind spots (see DESIGN.md §15): cross-package accesses, mutexes
// reached through nested selectors (s.inner.mu), package-level variables
// guarded by package-level mutexes, and TryLock.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "struct fields mostly accessed under a mutex must always be accessed under it",
	Run:  runGuardedBy,
}

// guardedByMinLocked is the minimum number of lock-held accesses before a
// guard relationship is inferred at all.
const guardedByMinLocked = 2

// gbLockKey identifies one mutex instance within a function: the root
// variable it is reached through and the selector path below it ("mu" for
// c.mu, "" for a bare mutex variable).
type gbLockKey struct {
	base *types.Var
	path string
}

// gbFieldKey identifies a struct field across the package: the defining
// named type and the field's name.
type gbFieldKey struct {
	typ   *types.TypeName
	field string
}

// gbAccess is one recorded field access.
type gbAccess struct {
	key  gbFieldKey
	pos  token.Pos
	held map[string]bool // mutex field names of the same struct held here
}

// gbState is the per-function walk state.
type gbState struct {
	pass *Pass
	body *ast.BlockStmt // current FuncDecl body, for the local-base skip
	recs *[]gbAccess
}

func runGuardedBy(pass *Pass) {
	var recs []gbAccess
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			st := &gbState{pass: pass, body: fd.Body, recs: &recs}
			st.walkStmts(fd.Body.List, map[gbLockKey]bool{})
		}
	}

	// Majority inference per field.
	type tally struct {
		total    int
		byMutex  map[string]int
		accesses []int // indices into recs
	}
	tallies := make(map[gbFieldKey]*tally)
	for i, a := range recs {
		tl := tallies[a.key]
		if tl == nil {
			tl = &tally{byMutex: make(map[string]int)}
			tallies[a.key] = tl
		}
		tl.total++
		tl.accesses = append(tl.accesses, i)
		for m := range a.held {
			tl.byMutex[m]++
		}
	}
	for key, tl := range tallies {
		guard, guardN := "", 0
		// Deterministic winner on ties: smallest mutex name.
		names := make([]string, 0, len(tl.byMutex))
		for m := range tl.byMutex {
			names = append(names, m)
		}
		sort.Strings(names)
		for _, m := range names {
			if tl.byMutex[m] > guardN {
				guard, guardN = m, tl.byMutex[m]
			}
		}
		if guardN < guardedByMinLocked || guardN*2 <= tl.total {
			continue // no majority: no inferred guard
		}
		for _, i := range tl.accesses {
			a := recs[i]
			if !a.held[guard] {
				pass.Reportf(a.pos,
					"%s.%s is guarded by %s.%s (%d of %d accesses hold it); this access does not hold the lock",
					key.typ.Name(), key.field, key.typ.Name(), guard, guardN, tl.total)
			}
		}
	}
}

// walkStmts processes a statement list, threading the held-lock set
// through it, and returns the set after the list.
func (st *gbState) walkStmts(stmts []ast.Stmt, held map[gbLockKey]bool) map[gbLockKey]bool {
	for _, s := range stmts {
		held = st.walkStmt(s, held)
	}
	return held
}

func copyHeld(held map[gbLockKey]bool) map[gbLockKey]bool {
	out := make(map[gbLockKey]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// unionHeld merges branch outcomes optimistically: held on any path
// counts as held (we flag only definitely-unlocked accesses).
func unionHeld(a, b map[gbLockKey]bool) map[gbLockKey]bool {
	out := copyHeld(a)
	for k, v := range b {
		if v {
			out[k] = true
		}
	}
	return out
}

// stmtTerminates reports whether a statement list definitely transfers
// control out of the enclosing block at its end.
func stmtsTerminate(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (st *gbState) walkStmt(s ast.Stmt, held map[gbLockKey]bool) map[gbLockKey]bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := st.lockCall(s.X); ok {
			switch op {
			case "Lock", "RLock":
				held = copyHeld(held)
				held[key] = true
			case "Unlock", "RUnlock":
				held = copyHeld(held)
				delete(held, key)
			}
			return held
		}
		st.scanExpr(s.X, held)
	case *ast.DeferStmt:
		// A deferred unlock releases at return, not here: the lock stays
		// held for the remainder of the walk, which is exactly right.
		if _, _, ok := st.lockCall(s.Call); !ok {
			st.scanExpr(s.Call, held)
		}
	case *ast.AssignStmt, *ast.IncDecStmt, *ast.ReturnStmt, *ast.SendStmt,
		*ast.DeclStmt, *ast.GoStmt:
		if g, ok := s.(*ast.GoStmt); ok {
			// The goroutine body runs later, with no inherited locks.
			if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
				st.walkStmts(fl.Body.List, map[gbLockKey]bool{})
				for _, arg := range g.Call.Args {
					st.scanExpr(arg, held)
				}
				return held
			}
		}
		st.scanExpr(s, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = st.walkStmt(s.Init, held)
		}
		st.scanExpr(s.Cond, held)
		thenHeld := st.walkStmts(s.Body.List, copyHeld(held))
		after := held
		if !stmtsTerminate(s.Body.List) {
			after = unionHeld(after, thenHeld)
		}
		if s.Else != nil {
			elseHeld := st.walkStmt(s.Else, copyHeld(held))
			terminated := false
			if eb, ok := s.Else.(*ast.BlockStmt); ok {
				terminated = stmtsTerminate(eb.List)
			}
			if !terminated {
				after = unionHeld(after, elseHeld)
			}
		}
		return after
	case *ast.ForStmt:
		if s.Init != nil {
			held = st.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			st.scanExpr(s.Cond, held)
		}
		bodyHeld := st.walkStmts(s.Body.List, copyHeld(held))
		if s.Post != nil {
			st.walkStmt(s.Post, bodyHeld)
		}
		return unionHeld(held, bodyHeld)
	case *ast.RangeStmt:
		st.scanExpr(s.X, held)
		bodyHeld := st.walkStmts(s.Body.List, copyHeld(held))
		return unionHeld(held, bodyHeld)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = st.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			st.scanExpr(s.Tag, held)
		}
		return st.walkCases(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = st.walkStmt(s.Init, held)
		}
		st.scanExpr(s.Assign, held)
		return st.walkCases(s.Body, held)
	case *ast.SelectStmt:
		return st.walkCases(s.Body, held)
	case *ast.BlockStmt:
		return st.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return st.walkStmt(s.Stmt, held)
	}
	return held
}

// walkCases handles switch/select bodies: each clause starts from the
// entry state; the after-state is the optimistic union of the entry and
// every non-terminating clause.
func (st *gbState) walkCases(body *ast.BlockStmt, held map[gbLockKey]bool) map[gbLockKey]bool {
	after := held
	for _, cs := range body.List {
		var list []ast.Stmt
		switch c := cs.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				st.scanExpr(e, held)
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				st.walkStmt(c.Comm, copyHeld(held))
			}
			list = c.Body
		}
		exit := st.walkStmts(list, copyHeld(held))
		if !stmtsTerminate(list) {
			after = unionHeld(after, exit)
		}
	}
	return after
}

// lockCall recognizes base.mu.Lock()/Unlock()/RLock()/RUnlock() (or a bare
// mutex variable's mu.Lock()) and returns the mutex key and method name.
func (st *gbState) lockCall(e ast.Expr) (gbLockKey, string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return gbLockKey{}, "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return gbLockKey{}, "", false
	}
	fn, ok := st.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return gbLockKey{}, "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return gbLockKey{}, "", false
	}
	base, path := rootVarPath(st.pass, sel.X)
	if base == nil {
		return gbLockKey{}, "", false
	}
	return gbLockKey{base: base, path: path}, fn.Name(), true
}

// rootVarPath resolves an expression like c.mu (or mu) to its root
// variable and the selector path below it. Non-variable roots (function
// results, map indexes) return nil.
func rootVarPath(pass *Pass, e ast.Expr) (*types.Var, string) {
	switch x := e.(type) {
	case *ast.Ident:
		v, _ := pass.Pkg.Info.Uses[x].(*types.Var)
		return v, ""
	case *ast.SelectorExpr:
		base, path := rootVarPath(pass, x.X)
		if base == nil {
			return nil, ""
		}
		if path == "" {
			return base, x.Sel.Name
		}
		return base, path + "." + x.Sel.Name
	case *ast.ParenExpr:
		return rootVarPath(pass, x.X)
	}
	return nil, ""
}

// scanExpr records struct-field accesses inside an expression or simple
// statement with the current held set. Nested function literals inherit
// the current lock set (synchronous-execution assumption); goroutine
// bodies are handled by walkStmt and never reach here.
func (st *gbState) scanExpr(n ast.Node, held map[gbLockKey]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			st.walkStmts(fl.Body.List, copyHeld(held))
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		st.recordAccess(sel, held)
		return true
	})
}

// recordAccess records base.field accesses where base is a plain variable
// of a named struct type and field is a data field of that struct.
func (st *gbState) recordAccess(sel *ast.SelectorExpr, held map[gbLockKey]bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	base, ok := st.pass.Pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	fieldObj, ok := st.pass.Pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !fieldObj.IsField() {
		return
	}
	// The struct's named type.
	t := base.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return
	}
	// Only fields defined in this package are inferable (we see all
	// their accesses).
	if fieldObj.Pkg() != st.pass.Pkg.Types {
		return
	}
	if isSyncType(fieldObj.Type()) {
		return // mutexes, wait groups, atomics guard themselves
	}
	// A variable declared inside the current function body is still
	// under construction: lock-free access is by design.
	if st.body != nil && base.Pos() >= st.body.Pos() && base.Pos() <= st.body.End() {
		return
	}
	heldNames := make(map[string]bool)
	for key, v := range held {
		if v && key.base == base && !strings.Contains(key.path, ".") && key.path != "" {
			heldNames[key.path] = true
		}
	}
	*st.recs = append(*st.recs, gbAccess{
		key:  gbFieldKey{typ: named.Obj(), field: fieldObj.Name()},
		pos:  sel.Pos(),
		held: heldNames,
	})
}

// isSyncType reports whether t is a synchronization primitive from sync
// or sync/atomic (those fields are their own guard).
func isSyncType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic")
}
