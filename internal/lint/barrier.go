package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Barrier flags misuse of sync.WaitGroup and of the repository's
// epoch-barrier worker pools (internal/par.Pool and anything else listed
// in Config.BarrierPools):
//
//   - B1: wg.Add called inside the goroutine it accounts for. The Add
//     races the parent's Wait — if Wait runs first it sees a zero counter
//     and returns before the work happened. Add must precede the go
//     statement.
//   - B2: a goroutine whose wg.Done is not reachable on all paths — the
//     Done is nested under a branch, or an early return can bypass it.
//     `defer wg.Done()` as the goroutine's first act is always safe and
//     never flagged.
//   - B3: a second Wait on the same WaitGroup with no intervening Add.
//     After Wait returns the counter is zero; re-waiting a reused barrier
//     without re-arming it returns immediately and synchronizes nothing.
//   - B4: calling Pool.Run from inside a function already executing under
//     the same pool's Run. The epoch barrier makes Run non-reentrant:
//     the inner Run waits for workers that are all parked in the outer
//     Run's epoch — deadlock. Distinct pools may nest freely.
//
// The analysis is per function body and purely syntactic over the lock
// structure (no interprocedural flow); DESIGN.md §15 lists the known
// blind spots (Wait in a loop re-armed before the loop, Done hidden
// behind a helper call).
var Barrier = &Analyzer{
	Name: "barrier",
	Doc:  "sync.WaitGroup and epoch-pool misuse: Add racing Wait, Done not on all paths, re-Wait without Add, nested Pool.Run",
	Run:  runBarrier,
}

func runBarrier(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					barrierBody(pass, n.Body)
				}
			case *ast.FuncLit:
				barrierBody(pass, n.Body)
			}
			return true
		})
	}
}

// barrierBody checks one function body. Nested function literals are
// skipped here — the runBarrier walk gives each its own barrierBody call
// — except goroutine literals, which get the B1/B2 goroutine checks.
func barrierBody(pass *Pass, body *ast.BlockStmt) {
	type event struct {
		method string
		key    string
		pos    token.Pos
	}
	var events []event

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Nested literals get their own barrierBody from runBarrier;
			// goroutine literals were handled by the GoStmt case before
			// descent reached them.
			return false
		case *ast.GoStmt:
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				barrierGoroutine(pass, fl)
			}
			return true
		case *ast.CallExpr:
			if method, key, ok := wgCall(pass, n); ok {
				events = append(events, event{method, key, n.Pos()})
			}
			checkNestedPoolRun(pass, n)
		}
		return true
	})

	// B3: linear source-order scan per WaitGroup.
	waited := make(map[string]bool)
	for _, ev := range events {
		switch ev.method {
		case "Add":
			waited[ev.key] = false
		case "Wait":
			if waited[ev.key] {
				pass.Reportf(ev.pos,
					"re-Wait of WaitGroup %s without an intervening Add: the counter is already zero, this Wait synchronizes nothing", ev.key)
			}
			waited[ev.key] = true
		}
	}
}

// barrierGoroutine applies B1 and B2 inside the body of `go func(){...}`.
func barrierGoroutine(pass *Pass, fl *ast.FuncLit) {
	type doneCall struct {
		call     *ast.CallExpr
		key      string
		deferred bool
		topLevel bool
	}
	var dones []doneCall
	var returns []*ast.ReturnStmt

	topLevel := make(map[*ast.CallExpr]bool)
	for _, stmt := range fl.Body.List {
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				topLevel[call] = true
			}
		}
	}

	inDefer := make(map[*ast.CallExpr]bool)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != fl {
				return false
			}
		case *ast.DeferStmt:
			inDefer[n.Call] = true
		case *ast.ReturnStmt:
			returns = append(returns, n)
		case *ast.CallExpr:
			method, key, ok := wgCall(pass, n)
			if !ok {
				return true
			}
			switch method {
			case "Add":
				// B1 — unless the WaitGroup is local to this goroutine
				// (a private barrier armed and awaited inside it).
				if !declaredWithin(pass, n, fl) {
					pass.Reportf(n.Pos(),
						"wg.Add on %s inside the goroutine it accounts for races the parent's Wait; call Add before the go statement", key)
				}
			case "Done":
				dones = append(dones, doneCall{
					call: n, key: key,
					deferred: inDefer[n],
					topLevel: topLevel[n],
				})
			}
		}
		return true
	})

	// B2: a non-deferred Done must be a top-level statement of the
	// goroutine body with no earlier return that could bypass it.
	for _, d := range dones {
		if d.deferred {
			continue
		}
		if !d.topLevel {
			pass.Reportf(d.call.Pos(),
				"wg.Done on %s is nested under a branch and not reachable on all paths; use `defer wg.Done()` at the top of the goroutine", d.key)
			continue
		}
		for _, r := range returns {
			if r.Pos() < d.call.Pos() {
				pass.Reportf(d.call.Pos(),
					"an early return can bypass wg.Done on %s; use `defer wg.Done()` at the top of the goroutine", d.key)
				break
			}
		}
	}
}

// wgCall reports whether call is a sync.WaitGroup method call, returning
// the method name and a stable textual key for the receiver (root
// variable plus selector path).
func wgCall(pass *Pass, call *ast.CallExpr) (method, key string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	fn, okFn := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !okFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Add", "Done", "Wait":
	default:
		return "", "", false
	}
	if !receiverIsNamed(fn, "sync", "WaitGroup") {
		return "", "", false
	}
	base, path := rootVarPath(pass, sel.X)
	if base == nil {
		return "", "", false
	}
	if path != "" {
		return fn.Name(), base.Name() + "." + path, true
	}
	return fn.Name(), base.Name(), true
}

// receiverIsNamed reports whether fn's receiver (pointer stripped) is the
// named type pkgPath.name.
func receiverIsNamed(fn *types.Func, pkgPath, name string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// declaredWithin reports whether the receiver variable of the WaitGroup
// call is declared inside fl — a goroutine-local barrier.
func declaredWithin(pass *Pass, call *ast.CallExpr, fl *ast.FuncLit) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base, _ := rootVarPath(pass, sel.X)
	return base != nil && base.Pos() >= fl.Pos() && base.Pos() <= fl.End()
}

// checkNestedPoolRun applies B4: a Run call on a configured barrier pool
// whose function-literal argument itself calls Run on the same pool.
func checkNestedPoolRun(pass *Pass, call *ast.CallExpr) {
	base, path, ok := poolRunCall(pass, call)
	if !ok {
		return
	}
	for _, arg := range call.Args {
		fl, okFl := arg.(*ast.FuncLit)
		if !okFl {
			continue
		}
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			inner, okInner := n.(*ast.CallExpr)
			if !okInner || inner == call {
				return true
			}
			ibase, ipath, okRun := poolRunCall(pass, inner)
			if okRun && ibase == base && ipath == path {
				pass.Reportf(inner.Pos(),
					"nested Run on the same pool %s deadlocks: the epoch barrier is not reentrant (the inner Run waits for workers parked in the outer epoch)",
					poolKey(base, path))
			}
			return true
		})
	}
}

// poolRunCall reports whether call is <pool>.Run(...) on a type listed in
// Config.BarrierPools, returning the receiver's root variable and path.
func poolRunCall(pass *Pass, call *ast.CallExpr) (*types.Var, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Run" {
		return nil, "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, "", false
	}
	qual := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	found := false
	for _, p := range pass.Cfg.BarrierPools {
		if p == qual {
			found = true
			break
		}
	}
	if !found {
		return nil, "", false
	}
	base, path := rootVarPath(pass, sel.X)
	if base == nil {
		return nil, "", false
	}
	return base, path, true
}

func poolKey(base *types.Var, path string) string {
	if path == "" {
		return base.Name()
	}
	return base.Name() + "." + path
}
