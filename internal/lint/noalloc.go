package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoAlloc enforces the repository's zero-allocation annotations. A
// function marked
//
//	//lint:noalloc [BenchmarkName[,BenchmarkName...]]
//
// declares that its steady-state execution performs no heap allocation —
// the contract behind the interval Sweeper, the sharded kernel's event
// heap, the obs metric handles, and the wire codec, whose benchmarks pin
// allocs/op at zero. The analyzer rejects allocation-causing constructs
// inside annotated functions:
//
//   - make and new
//   - append to a freshly allocated slice (nil, a literal, or make —
//     growth on every call; append that extends a retained buffer is
//     amortized-zero and allowed)
//   - map and slice composite literals, and &T{} literals (heap escape)
//   - function literals and method values (closure allocation)
//   - go statements (a goroutine is an allocation)
//   - interface boxing: passing or converting a non-pointer-shaped
//     concrete value to an interface type
//   - string concatenation with + and string<->[]byte/[]rune conversions
//   - any call into package fmt
//
// Error paths are exempt: a construct inside a block whose final
// statement returns a non-nil error (or panics) is cold by definition —
// zero-allocation decoding that allocates only to describe malformed
// input is the intended shape. The optional benchmark names tie the
// annotation to measured evidence: `disttimelint -noalloc-audit` fails
// if a named benchmark is missing from the recorded baseline or shows
// allocs/op != 0. Known blind spots are listed in DESIGN.md §15
// (interprocedural calls, deferred calls in loops, append growth against
// a retained buffer before its high-water mark).
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //lint:noalloc must contain no allocation-causing constructs",
	Run:  runNoAlloc,
}

const noallocPrefix = "//lint:noalloc"

// NoallocFunc is one annotated function, as collected for the audit.
type NoallocFunc struct {
	// Name is the qualified function name (pkgpath.Func or
	// pkgpath.Type.Method).
	Name string
	// Benchmarks are the benchmark names the annotation cites as
	// evidence, possibly empty.
	Benchmarks []string
	// File and Line locate the annotated declaration.
	File string
	Line int
}

// CollectNoalloc returns the //lint:noalloc-annotated functions of pkg,
// in declaration order. The driver's -noalloc-audit mode cross-checks the
// cited benchmarks against the recorded allocation baseline.
func CollectNoalloc(pkg *Package) []NoallocFunc {
	var out []NoallocFunc
	for _, f := range pkg.Files {
		directives := noallocDirectiveLines(pkg, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			benches, ok := noallocAnnotation(pkg, fd, directives)
			if !ok {
				continue
			}
			pos := pkg.Fset.Position(fd.Pos())
			out = append(out, NoallocFunc{
				Name:       funcQualName(pkg.Path, fd),
				Benchmarks: benches,
				File:       pos.Filename,
				Line:       pos.Line,
			})
		}
	}
	return out
}

// noallocDirectiveLines maps source lines carrying a //lint:noalloc
// directive to the directive's argument text.
func noallocDirectiveLines(pkg *Package, f *ast.File) map[int]string {
	lines := make(map[int]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, noallocPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, noallocPrefix))
			lines[pkg.Fset.Position(c.Pos()).Line] = rest
		}
	}
	return lines
}

// noallocAnnotation reports whether fd carries a //lint:noalloc directive
// (in its doc comment or on the line above the declaration) and returns
// the benchmark names it cites.
func noallocAnnotation(pkg *Package, fd *ast.FuncDecl, directives map[int]string) ([]string, bool) {
	var arg string
	found := false
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.HasPrefix(c.Text, noallocPrefix) {
				arg = strings.TrimSpace(strings.TrimPrefix(c.Text, noallocPrefix))
				found = true
			}
		}
	}
	if !found {
		line := pkg.Fset.Position(fd.Pos()).Line
		if a, ok := directives[line-1]; ok {
			arg, found = a, true
		}
	}
	if !found {
		return nil, false
	}
	var benches []string
	for _, b := range strings.Split(arg, ",") {
		if b = strings.TrimSpace(b); b != "" {
			benches = append(benches, b)
		}
	}
	return benches, true
}

func runNoAlloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		directives := noallocDirectiveLines(pass.Pkg, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := noallocAnnotation(pass.Pkg, fd, directives); !ok {
				continue
			}
			checkNoAlloc(pass, fd)
		}
	}
}

func checkNoAlloc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	returnsError := funcReturnsError(pass, fd)

	// callFuns collects every expression in function position, so method
	// values (a selector used NOT as a call target) can be told apart
	// from ordinary method calls.
	callFuns := make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[call.Fun] = true
		}
		return true
	})

	report := func(n ast.Node, format string, args ...any) {
		if onColdPath(pass, fd, n, returnsError) {
			return
		}
		pass.Reportf(n.Pos(), format, args...)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n, "go statement in //lint:noalloc function %s: launching a goroutine allocates", fd.Name.Name)
		case *ast.FuncLit:
			report(n, "function literal in //lint:noalloc function %s: closures allocate", fd.Name.Name)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.Types[n.X].Type) {
				// Constant folding makes whole-constant concatenation free.
				if tv, ok := info.Types[ast.Expr(n)]; !ok || tv.Value == nil {
					report(n, "string concatenation in //lint:noalloc function %s allocates", fd.Name.Name)
				}
			}
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				report(n, "map literal in //lint:noalloc function %s allocates", fd.Name.Name)
			case *types.Slice:
				report(n, "slice literal in //lint:noalloc function %s allocates", fd.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n, "&composite literal in //lint:noalloc function %s escapes to the heap", fd.Name.Name)
				}
			}
		case *ast.SelectorExpr:
			if !callFuns[n] {
				if s := info.Selections[n]; s != nil && s.Kind() == types.MethodVal {
					report(n, "method value %s in //lint:noalloc function %s allocates a closure",
						exprString(n), fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkNoAllocCall(pass, fd, n, report)
		}
		return true
	})
}

// checkNoAllocCall applies the call-shaped rules: builtins, conversions,
// the fmt denylist, and interface boxing of arguments.
func checkNoAllocCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, report func(ast.Node, string, ...any)) {
	info := pass.Pkg.Info

	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call, "make in //lint:noalloc function %s allocates", fd.Name.Name)
			case "new":
				report(call, "new in //lint:noalloc function %s allocates", fd.Name.Name)
			case "append":
				if len(call.Args) > 0 && freshSlice(pass, call.Args[0]) {
					report(call, "append to a fresh slice in //lint:noalloc function %s allocates every call (append that extends a retained buffer is amortized-free)", fd.Name.Name)
				}
			}
			return
		}
	}

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		target := tv.Type
		argT := info.Types[call.Args[0]]
		if types.IsInterface(target.Underlying()) {
			if !argT.IsNil() && argT.Type != nil &&
				!types.IsInterface(argT.Type.Underlying()) && !pointerShaped(argT.Type) {
				report(call, "conversion to interface in //lint:noalloc function %s boxes %s on the heap",
					fd.Name.Name, types.TypeString(argT.Type, nil))
			}
			return
		}
		if stringSliceConversion(target, argT.Type) {
			report(call, "string<->byte-slice conversion in //lint:noalloc function %s copies and allocates", fd.Name.Name)
		}
		return
	}

	// fmt denylist.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			report(call, "fmt.%s in //lint:noalloc function %s allocates", fn.Name(), fd.Name.Name)
			// Fall through: boxing of the args would double-report.
			return
		}
	}

	// Interface boxing at ordinary call sites.
	sigTV, ok := info.Types[call.Fun]
	if !ok || sigTV.Type == nil {
		return
	}
	sig, ok := sigTV.Type.Underlying().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				paramT = s.Elem()
			}
		case i < params.Len():
			paramT = params.At(i).Type()
		}
		if paramT == nil || !types.IsInterface(paramT.Underlying()) {
			continue
		}
		argT := info.Types[arg]
		if argT.IsNil() || argT.Type == nil {
			continue
		}
		if types.IsInterface(argT.Type.Underlying()) || pointerShaped(argT.Type) {
			continue
		}
		report(arg, "passing %s to an interface parameter in //lint:noalloc function %s boxes it on the heap",
			types.TypeString(argT.Type, nil), fd.Name.Name)
	}
}

// freshSlice reports whether e denotes a slice allocated at this very
// expression: nil, a composite literal, or a make call. Appending to one
// of those allocates on every execution.
func freshSlice(pass *Pass, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.Ident:
		return pass.Pkg.Info.Types[e].IsNil()
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok {
			if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
				return true
			}
		}
	case *ast.ParenExpr:
		return freshSlice(pass, x.X)
	}
	return false
}

// pointerShaped reports whether values of t fit in an interface's data
// word without a heap copy: pointers, channels, maps, funcs, and
// unsafe.Pointer.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// stringSliceConversion reports whether a conversion between target and
// arg crosses the string/[]byte (or []rune) boundary, which copies.
func stringSliceConversion(target, arg types.Type) bool {
	if arg == nil {
		return false
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 ||
			b.Kind() == types.Rune || b.Kind() == types.Int32)
	}
	return (isStringType(target) && isByteOrRuneSlice(arg)) ||
		(isByteOrRuneSlice(target) && isStringType(arg))
}

// funcReturnsError reports whether fd's last result is an error.
func funcReturnsError(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		return false
	}
	last := fd.Type.Results.List[len(fd.Type.Results.List)-1]
	t := pass.Pkg.Info.Types[last.Type].Type
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// onColdPath reports whether n sits inside a nested block whose final
// statement returns a non-nil error or panics — an error exit, exempt
// from the zero-allocation contract because it cannot be part of the
// steady state. The function's own body does not count: only branches.
func onColdPath(pass *Pass, fd *ast.FuncDecl, n ast.Node, returnsError bool) bool {
	blocks := enclosingBlocks(fd.Body, n.Pos())
	for _, b := range blocks {
		if b == fd.Body {
			continue
		}
		if len(b.List) == 0 {
			continue
		}
		switch last := b.List[len(b.List)-1].(type) {
		case *ast.ReturnStmt:
			if !returnsError || len(last.Results) == 0 {
				continue
			}
			final := last.Results[len(last.Results)-1]
			if id, ok := final.(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			return true
		case *ast.ExprStmt:
			if call, ok := last.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		}
	}
	return false
}
