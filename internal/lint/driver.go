// Driver: pattern expansion, analyzer selection, output formatting, and
// exit-code policy for cmd/disttimelint. The driver lives in the library
// so tests can run it in-process and assert exit codes and JSON shape.
package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/build"
	"io"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Exit codes.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one diagnostic
	ExitError    = 2 // usage, load, or type-check failure
)

// Main runs the lint driver: disttimelint [-json] [-checks a,b] [-v]
// [-noalloc-audit bench.json] [patterns...]. Patterns are directories or
// "dir/..." walks, resolved relative to the current directory; the
// default is "./...". It returns the process exit code.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("disttimelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	verbose := fs.Bool("v", false, "list packages as they are checked")
	auditPath := fs.String("noalloc-audit", "", "cross-check //lint:noalloc benchmark citations against allocs/op in the given baseline JSON instead of linting")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: disttimelint [-json] [-checks a,b] [-noalloc-audit bench.json] [patterns...]\n\nchecks:\n")
		for _, a := range Analyzers() {
			fmt.Fprintf(stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}

	analyzers, err := selectAnalyzers(*checksFlag)
	if err != nil {
		fmt.Fprintf(stderr, "disttimelint: %v\n", err)
		return ExitError
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "disttimelint: %v\n", err)
		return ExitError
	}
	moduleDir, modulePath, err := findModule(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "disttimelint: %v\n", err)
		return ExitError
	}

	dirs, err := expandPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "disttimelint: %v\n", err)
		return ExitError
	}

	loader := NewLoader(moduleDir, modulePath)
	if *auditPath != "" {
		return noallocAudit(loader, moduleDir, modulePath, dirs, *auditPath, stdout, stderr)
	}
	cfg := DefaultConfig()
	var diags []Diagnostic
	packages := 0
	for _, dir := range dirs {
		importPath, err := importPathFor(moduleDir, modulePath, dir)
		if err != nil {
			fmt.Fprintf(stderr, "disttimelint: %v\n", err)
			return ExitError
		}
		if *verbose {
			fmt.Fprintf(stderr, "checking %s\n", importPath)
		}
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			fmt.Fprintf(stderr, "disttimelint: %v\n", err)
			return ExitError
		}
		packages++
		diags = append(diags, RunPackage(pkg, analyzers, cfg)...)
	}

	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		return diags[i].Col < diags[j].Col
	})

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if diags == nil {
			diags = []Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "disttimelint: %v\n", err)
			return ExitError
		}
	} else {
		for _, d := range diags {
			rel := d.File
			if r, err := filepath.Rel(cwd, d.File); err == nil && !strings.HasPrefix(r, "..") {
				rel = r
			}
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", rel, d.Line, d.Col, d.Check, d.Message)
		}
	}
	// Machine-readable per-analyzer summary, on stderr so -json stdout
	// stays a pure diagnostic array. CI logs grep this line to see at a
	// glance which checks ran and what each found.
	counts := make(map[string]int)
	for _, d := range diags {
		counts[d.Check]++
	}
	summary := fmt.Sprintf("disttimelint: %d packages, %d diagnostics:", packages, len(diags))
	for _, a := range analyzers {
		summary += fmt.Sprintf(" %s=%d", a.Name, counts[a.Name])
	}
	if n := counts["lint"]; n > 0 {
		summary += fmt.Sprintf(" lint=%d", n)
	}
	fmt.Fprintln(stderr, summary)

	if len(diags) > 0 {
		return ExitFindings
	}
	return ExitClean
}

// noallocAudit cross-checks every //lint:noalloc annotation that cites
// benchmarks against the recorded baseline: each cited benchmark must
// exist and show allocs/op == 0. The annotation's static check proves the
// absence of allocation constructs; the audit ties it to measured
// evidence so the two cannot silently drift apart.
func noallocAudit(loader *Loader, moduleDir, modulePath string, dirs []string, baselinePath string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "disttimelint: %v\n", err)
		return ExitError
	}
	var baseline map[string]struct {
		Iterations  int64   `json:"iterations"`
		NsPerOp     float64 `json:"ns_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	}
	if err := json.Unmarshal(data, &baseline); err != nil {
		fmt.Fprintf(stderr, "disttimelint: %s: %v\n", baselinePath, err)
		return ExitError
	}

	annotations, cited, failures := 0, 0, 0
	for _, dir := range dirs {
		importPath, err := importPathFor(moduleDir, modulePath, dir)
		if err != nil {
			fmt.Fprintf(stderr, "disttimelint: %v\n", err)
			return ExitError
		}
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			fmt.Fprintf(stderr, "disttimelint: %v\n", err)
			return ExitError
		}
		for _, fn := range CollectNoalloc(pkg) {
			annotations++
			for _, bench := range fn.Benchmarks {
				cited++
				rec, ok := baseline[bench]
				switch {
				case !ok:
					failures++
					fmt.Fprintf(stdout, "%s:%d: %s cites %s, not present in %s\n",
						fn.File, fn.Line, fn.Name, bench, baselinePath)
				case rec.AllocsPerOp != 0:
					failures++
					fmt.Fprintf(stdout, "%s:%d: %s cites %s, but baseline shows %d allocs/op (want 0)\n",
						fn.File, fn.Line, fn.Name, bench, rec.AllocsPerOp)
				}
			}
		}
	}
	fmt.Fprintf(stderr, "disttimelint: noalloc-audit: annotations=%d cited=%d failures=%d\n",
		annotations, cited, failures)
	if failures > 0 {
		return ExitFindings
	}
	return ExitClean
}

// selectAnalyzers resolves the -checks flag to a subset of the suite.
func selectAnalyzers(checks string) ([]*Analyzer, error) {
	all := Analyzers()
	if checks == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module directory and module path.
func findModule(dir string) (moduleDir, modulePath string, err error) {
	d := dir
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s: no module line", filepath.Join(d, "go.mod"))
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// importPathFor maps a directory inside the module to its import path.
func importPathFor(moduleDir, modulePath, dir string) (string, error) {
	rel, err := filepath.Rel(moduleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("directory %s is outside module %s", dir, moduleDir)
	}
	if rel == "." {
		return modulePath, nil
	}
	return path.Join(modulePath, filepath.ToSlash(rel)), nil
}

// expandPatterns resolves CLI patterns to package directories. "dir/..."
// walks recursively, skipping testdata, vendor, hidden, and underscore
// directories (explicitly named directories are always accepted, so the
// driver can be pointed straight at a fixture).
func expandPatterns(cwd string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(cwd, root)
		}
		root = filepath.Clean(root)
		info, err := os.Stat(root)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("%s is not a directory", pat)
		}
		if !recursive {
			add(root)
			continue
		}
		err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// hasGoFiles reports whether dir contains at least one buildable non-test
// Go file.
func hasGoFiles(dir string) bool {
	ctx := build.Default
	ctx.CgoEnabled = false
	bp, err := ctx.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}
