package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix enforces all-or-nothing atomicity: once any access to a field
// or package-level variable goes through sync/atomic (atomic.AddUint64,
// atomic.LoadInt64, ...), every access must. A plain load concurrent with
// an atomic store can tear or read a stale value, the compiler is free to
// cache or reorder the plain access, and — worst for this repository —
// the race detector only reports the mix if a test happens to schedule
// both sides. simnet.Stats, the obs counters, and the par worker budget
// are the live targets; they use typed atomics today precisely because a
// mixed access cannot compile, and this analyzer keeps any future
// raw-uint64 counter honest too.
//
// The check is per-package: an atomic access in one package does not
// protect a field from plain access in another (DESIGN.md §15 lists this
// blind spot; exported fields that need atomicity should use the typed
// sync/atomic wrappers, which make mixing impossible in any package).
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field or variable accessed via sync/atomic must never be plain-loaded or stored",
	Run:  runAtomicMix,
}

// atomicFuncs are the sync/atomic package functions whose first argument
// is the address of the shared word.
func isAtomicFunc(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	name := fn.Name()
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// atomicTarget resolves the operand of &expr in an atomic call to the
// struct field or variable object it names, plus the position of the
// naming ident (sanctioned: it is an atomic access, not a plain one).
// Expressions whose root is not a field or variable (map indexes,
// function results) return nil.
func atomicTarget(pass *Pass, e ast.Expr) (*types.Var, token.Pos) {
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := pass.Pkg.Info.Uses[x].(*types.Var); ok {
			return v, x.NamePos
		}
	case *ast.SelectorExpr:
		if v, ok := pass.Pkg.Info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
			return v, x.Sel.NamePos
		}
	case *ast.ParenExpr:
		return atomicTarget(pass, x.X)
	}
	return nil, token.NoPos
}

func runAtomicMix(pass *Pass) {
	// Pass 1: find every object (struct field or variable) whose address
	// is passed to a sync/atomic function, and remember the sanctioned
	// reference positions (the idents inside those calls).
	atomicObjs := make(map[*types.Var]token.Pos) // object -> first atomic use
	sanctioned := make(map[token.Pos]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || !isAtomicFunc(fn) {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			obj, refPos := atomicTarget(pass, addr.X)
			if obj == nil {
				return true
			}
			if _, seen := atomicObjs[obj]; !seen {
				atomicObjs[obj] = call.Pos()
			}
			sanctioned[refPos] = true
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}

	// Pass 2: every other reference to those objects is a plain access.
	// (Selector fields reach here through their Sel ident, so one Ident
	// case covers both s.field and bare-variable references.)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				// Construction sites are pre-publication by definition;
				// skip the field keys (and walk the values).
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							sanctioned[id.NamePos] = true
						}
					}
				}
			case *ast.Ident:
				obj, ok := pass.Pkg.Info.Uses[n].(*types.Var)
				if !ok {
					return true
				}
				firstAtomic, isAtomic := atomicObjs[obj]
				if !isAtomic || sanctioned[n.NamePos] {
					return true
				}
				pass.Reportf(n.Pos(),
					"%s is accessed with sync/atomic at %s; this plain access can tear or read a stale value — use the atomic API everywhere (or a typed atomic)",
					n.Name, pass.Pkg.Fset.Position(firstAtomic))
			}
			return true
		})
	}
}
