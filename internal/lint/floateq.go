package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq bans == and != on floating-point operands outside an explicit
// allowlist of approved comparison helpers. Interval endpoints are float64
// seconds; after drift scaling and midpoint arithmetic two "equal" edges
// rarely share a bit pattern, so exact comparison silently corrupts the
// consistency predicate |Ci - Cj| <= Ei + Ej and the Figure 4 group
// decomposition. Code that genuinely needs exact equality (sort
// tie-breaks, NaN tests) lives in the allowlisted helpers or carries a
// justified //lint:ignore.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= on floating-point operands outside approved comparison helpers",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				qual := funcQualName(pass.Pkg.Path, d)
				allowed := false
				for _, a := range pass.Cfg.FloatEqAllowed {
					if a == qual {
						allowed = true
						break
					}
				}
				if allowed {
					continue
				}
				checkFloatEq(pass, d.Body)
			case *ast.GenDecl:
				// Package-level initializers are never allowlisted.
				checkFloatEq(pass, d)
			}
		}
	}
}

func checkFloatEq(pass *Pass, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		xt := pass.Pkg.Info.Types[be.X]
		yt := pass.Pkg.Info.Types[be.Y]
		if !isFloat(xt.Type) && !isFloat(yt.Type) {
			return true
		}
		// Two constants compare exactly at compile time; the hazard is
		// computed values.
		if xt.Value != nil && yt.Value != nil {
			return true
		}
		pass.Reportf(be.OpPos,
			"%s on floating-point operands; use an approved epsilon/exact helper (interval endpoints rarely share bit patterns)",
			be.Op)
		return true
	})
}

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
