package lint

import (
	"go/ast"
	"go/types"
)

// NowCheck enforces the simulated-path time discipline: outside the
// real-network packages (internal/udptime, internal/ntp) and the binaries
// (cmd/, examples/), code must not read the wall clock. Paper §1.1 models
// a clock reading as the pair <C, E>; the reproduction's simulated path
// draws C from internal/sim's virtual timeline and internal/clock's drift
// models, so a stray time.Now silently re-couples experiments to the host
// clock and destroys bit-determinism.
var NowCheck = &Analyzer{
	Name: "nowcheck",
	Doc:  "wall-clock reads (time.Now/Since/Sleep) are confined to real-network packages and binaries",
	Run:  runNowCheck,
}

// bannedTimeFuncs are the package time functions that read or depend on
// the host wall clock. Referencing one (call or function value) outside
// the allowlist is a finding.
var bannedTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Sleep": true,
	"Until": true,
	"After": true,
	"Tick":  true,
}

func runNowCheck(pass *Pass) {
	if pathIn(pass.Pkg.Path, pass.Cfg.NowAllowed) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if bannedTimeFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the host wall clock; simulated code must take time from internal/sim or internal/clock",
					fn.Name())
			}
			return true
		})
	}
}
