package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runDriver(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := Main(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestDriverExitsNonzeroOnFixtures: every violating fixture must make the
// driver exit 1 under the default (shipping) configuration.
func TestDriverExitsNonzeroOnFixtures(t *testing.T) {
	for _, name := range []string{"nowcheck", "globalrand", "floateq", "mapiter", "poolput", "badignore"} {
		code, out, errb := runDriver(t, "testdata/src/"+name)
		if code != ExitFindings {
			t.Errorf("fixture %s: exit %d, want %d (stdout %q, stderr %q)",
				name, code, ExitFindings, out, errb)
		}
		if !strings.Contains(out, name+".go:") && name != "badignore" {
			t.Errorf("fixture %s: findings do not mention %s.go:\n%s", name, name, out)
		}
	}
}

// TestDriverExitsZeroOnClean: the clean fixture and the lint package
// subtree itself are finding-free.
func TestDriverExitsZeroOnClean(t *testing.T) {
	if code, out, errb := runDriver(t, "testdata/src/clean"); code != ExitClean {
		t.Errorf("clean fixture: exit %d (stdout %q, stderr %q)", code, out, errb)
	}
}

// TestDriverWholeTreeClean runs the driver over the entire repository
// exactly as `make lint` does; the tree must stay finding-free.
func TestDriverWholeTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree type check skipped in -short mode")
	}
	code, out, errb := runDriver(t, "../../...")
	if code != ExitClean {
		t.Errorf("tree not clean: exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
}

// TestDriverJSONShape pins the machine-readable output: a JSON array of
// objects with check/file/line/col/message fields.
func TestDriverJSONShape(t *testing.T) {
	code, out, _ := runDriver(t, "-json", "testdata/src/nowcheck")
	if code != ExitFindings {
		t.Fatalf("exit %d, want %d", code, ExitFindings)
	}
	var diags []Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics decoded")
	}
	for _, d := range diags {
		if d.Check != "nowcheck" || d.Line <= 0 || d.Col <= 0 ||
			!strings.Contains(d.File, "nowcheck") || d.Message == "" {
			t.Errorf("malformed diagnostic: %+v", d)
		}
	}
	// The wire keys are stable lowercase names.
	var raw []map[string]any
	if err := json.Unmarshal([]byte(out), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"check", "file", "line", "col", "message"} {
		if _, ok := raw[0][key]; !ok {
			t.Errorf("JSON object missing key %q: %v", key, raw[0])
		}
	}
}

// TestDriverJSONCleanIsEmptyArray: clean runs still emit valid JSON.
func TestDriverJSONCleanIsEmptyArray(t *testing.T) {
	code, out, _ := runDriver(t, "-json", "testdata/src/clean")
	if code != ExitClean {
		t.Fatalf("exit %d, want %d", code, ExitClean)
	}
	var diags []Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil || diags == nil || len(diags) != 0 {
		t.Fatalf("want empty JSON array, got %q (err %v)", out, err)
	}
}

// TestDriverChecksFlag: -checks restricts the suite, and unknown names
// are usage errors.
func TestDriverChecksFlag(t *testing.T) {
	if code, out, _ := runDriver(t, "-checks", "globalrand", "testdata/src/nowcheck"); code != ExitClean {
		t.Errorf("nowcheck fixture with only globalrand enabled: exit %d, stdout %q", code, out)
	}
	if code, _, errb := runDriver(t, "-checks", "nosuchcheck", "testdata/src/clean"); code != ExitError {
		t.Errorf("unknown check: exit %d, stderr %q", code, errb)
	}
}

// TestDriverBadPattern: unknown paths are load errors, not findings.
func TestDriverBadPattern(t *testing.T) {
	if code, _, _ := runDriver(t, "testdata/src/doesnotexist"); code != ExitError {
		t.Errorf("missing dir: want exit %d", ExitError)
	}
}
