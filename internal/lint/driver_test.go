package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runDriver(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := Main(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestDriverExitsNonzeroOnFixtures: every violating fixture must make the
// driver exit 1 under the default (shipping) configuration.
func TestDriverExitsNonzeroOnFixtures(t *testing.T) {
	for _, name := range []string{"nowcheck", "globalrand", "floateq", "mapiter", "poolput",
		"guardedby", "atomicmix", "noalloc", "barrier", "badignore"} {
		code, out, errb := runDriver(t, "testdata/src/"+name)
		if code != ExitFindings {
			t.Errorf("fixture %s: exit %d, want %d (stdout %q, stderr %q)",
				name, code, ExitFindings, out, errb)
		}
		if !strings.Contains(out, name+".go:") && name != "badignore" {
			t.Errorf("fixture %s: findings do not mention %s.go:\n%s", name, name, out)
		}
	}
}

// TestDriverExitsZeroOnClean: the clean fixture and the lint package
// subtree itself are finding-free.
func TestDriverExitsZeroOnClean(t *testing.T) {
	if code, out, errb := runDriver(t, "testdata/src/clean"); code != ExitClean {
		t.Errorf("clean fixture: exit %d (stdout %q, stderr %q)", code, out, errb)
	}
}

// TestDriverWholeTreeClean runs the driver over the entire repository
// exactly as `make lint` does; the tree must stay finding-free.
func TestDriverWholeTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree type check skipped in -short mode")
	}
	code, out, errb := runDriver(t, "../../...")
	if code != ExitClean {
		t.Errorf("tree not clean: exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
}

// TestDriverJSONShape pins the machine-readable output: a JSON array of
// objects with check/file/line/col/message fields.
func TestDriverJSONShape(t *testing.T) {
	code, out, _ := runDriver(t, "-json", "testdata/src/nowcheck")
	if code != ExitFindings {
		t.Fatalf("exit %d, want %d", code, ExitFindings)
	}
	var diags []Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics decoded")
	}
	for _, d := range diags {
		if d.Check != "nowcheck" || d.Line <= 0 || d.Col <= 0 ||
			!strings.Contains(d.File, "nowcheck") || d.Message == "" {
			t.Errorf("malformed diagnostic: %+v", d)
		}
	}
	// The wire keys are stable lowercase names.
	var raw []map[string]any
	if err := json.Unmarshal([]byte(out), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"check", "file", "line", "col", "message"} {
		if _, ok := raw[0][key]; !ok {
			t.Errorf("JSON object missing key %q: %v", key, raw[0])
		}
	}
}

// TestDriverJSONCleanIsEmptyArray: clean runs still emit valid JSON.
func TestDriverJSONCleanIsEmptyArray(t *testing.T) {
	code, out, _ := runDriver(t, "-json", "testdata/src/clean")
	if code != ExitClean {
		t.Fatalf("exit %d, want %d", code, ExitClean)
	}
	var diags []Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil || diags == nil || len(diags) != 0 {
		t.Fatalf("want empty JSON array, got %q (err %v)", out, err)
	}
}

// TestDriverChecksFlag: -checks restricts the suite, and unknown names
// are usage errors.
func TestDriverChecksFlag(t *testing.T) {
	if code, out, _ := runDriver(t, "-checks", "globalrand", "testdata/src/nowcheck"); code != ExitClean {
		t.Errorf("nowcheck fixture with only globalrand enabled: exit %d, stdout %q", code, out)
	}
	if code, _, errb := runDriver(t, "-checks", "nosuchcheck", "testdata/src/clean"); code != ExitError {
		t.Errorf("unknown check: exit %d, stderr %q", code, errb)
	}
}

// TestDriverBadPattern: unknown paths are load errors, not findings.
func TestDriverBadPattern(t *testing.T) {
	if code, _, _ := runDriver(t, "testdata/src/doesnotexist"); code != ExitError {
		t.Errorf("missing dir: want exit %d", ExitError)
	}
}

// TestDriverSummaryLine pins the machine-readable per-analyzer summary
// CI greps out of stderr: every enabled check appears as name=count.
func TestDriverSummaryLine(t *testing.T) {
	_, _, errb := runDriver(t, "testdata/src/nowcheck")
	line := ""
	for _, l := range strings.Split(errb, "\n") {
		if strings.HasPrefix(l, "disttimelint: ") && strings.Contains(l, "diagnostics:") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no summary line on stderr:\n%s", errb)
	}
	if !strings.Contains(line, "1 packages") {
		t.Errorf("summary missing package count: %q", line)
	}
	for _, a := range Analyzers() {
		if !strings.Contains(line, " "+a.Name+"=") {
			t.Errorf("summary missing %s count: %q", a.Name, line)
		}
	}
	if strings.Contains(line, "nowcheck=0") {
		t.Errorf("nowcheck fixture should report nonzero nowcheck findings: %q", line)
	}
}

// writeBaseline writes a temporary benchmark-baseline JSON for the audit
// tests.
func writeBaseline(t *testing.T, allocs int64, omit bool) string {
	t.Helper()
	baseline := map[string]map[string]int64{}
	if !omit {
		baseline["BenchmarkFixtureSteady"] = map[string]int64{
			"iterations": 100, "ns_per_op": 10, "bytes_per_op": 0, "allocs_per_op": allocs,
		}
	}
	data, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDriverNoallocAudit: the audit passes when every cited benchmark
// exists with zero allocs/op, and fails when one is missing or nonzero.
func TestDriverNoallocAudit(t *testing.T) {
	good := writeBaseline(t, 0, false)
	if code, out, errb := runDriver(t, "-noalloc-audit", good, "testdata/src/noalloc"); code != ExitClean {
		t.Errorf("clean audit: exit %d\nstdout %q\nstderr %q", code, out, errb)
	} else if !strings.Contains(errb, "failures=0") {
		t.Errorf("clean audit summary missing failures=0: %q", errb)
	}

	missing := writeBaseline(t, 0, true)
	if code, out, _ := runDriver(t, "-noalloc-audit", missing, "testdata/src/noalloc"); code != ExitFindings {
		t.Errorf("missing benchmark: exit %d, want %d", code, ExitFindings)
	} else if !strings.Contains(out, "not present in") {
		t.Errorf("missing-benchmark failure not reported: %q", out)
	}

	dirty := writeBaseline(t, 3, false)
	if code, out, _ := runDriver(t, "-noalloc-audit", dirty, "testdata/src/noalloc"); code != ExitFindings {
		t.Errorf("nonzero allocs: exit %d, want %d", code, ExitFindings)
	} else if !strings.Contains(out, "3 allocs/op (want 0)") {
		t.Errorf("nonzero-alloc failure not reported: %q", out)
	}

	if code, _, _ := runDriver(t, "-noalloc-audit", filepath.Join(t.TempDir(), "nope.json"), "testdata/src/noalloc"); code != ExitError {
		t.Errorf("unreadable baseline: want exit %d", ExitError)
	}
}
