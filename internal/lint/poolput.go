package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolPut guards the zero-allocation hot paths: once a value has been
// returned to its pool — via (*sync.Pool).Put directly, or via a
// same-package wrapper that Puts a parameter or pushes it onto a free
// list — the caller must not read it, return it, Put it again, or have
// stored it into a long-lived field. The interval Sweeper pool, the
// simulator's event free list, and the service's reply free list all
// recycle structs whose contents are overwritten by the next Get; a
// use-after-put reads another round's data and corrupts results silently
// (no crash, just wrong intervals).
//
// The analysis is intraprocedural and forward-flow: after a put of x,
// later references to x are flagged until x is reassigned. A put inside a
// block that terminates (return/branch/panic) does not taint code after
// the block.
var PoolPut = &Analyzer{
	Name: "poolput",
	Doc:  "no use of a value after returning it to a pool; no storing pooled values into fields",
	Run:  runPoolPut,
}

// putterPrefixes are function-name prefixes that mark a free-list release
// helper. A same-package function with such a name that appends a
// parameter to a slice (or Puts it) is treated as consuming that
// parameter.
var putterPrefixes = []string{"put", "free", "release", "recycle", "giveback", "drop"}

func runPoolPut(pass *Pass) {
	putters := findPutters(pass)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeFuncPuts(pass, fd, putters)
		}
	}
}

// isPoolPutCall reports whether call is (*sync.Pool).Put.
func isPoolPutCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Put" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// hasPutterName reports whether a function name announces a release
// helper (put/free/release/...).
func hasPutterName(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range putterPrefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

// findPutters scans the package for release helpers: functions that pass
// a parameter to sync.Pool.Put, or whose name marks them as a release
// helper and whose body appends a parameter to a free-list slice. It maps
// each such function to the indices of its consumed parameters.
func findPutters(pass *Pass) map[*types.Func][]int {
	putters := make(map[*types.Func][]int)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Params == nil {
				continue
			}
			fnObj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			params := paramObjects(pass, fd)
			if len(params) == 0 {
				continue
			}
			var consumed []int
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isPoolPutCall(pass.Pkg.Info, call) && len(call.Args) == 1 {
					if i := paramIndex(pass, params, call.Args[0]); i >= 0 {
						consumed = append(consumed, i)
					}
					return true
				}
				// Free-list push: append(..., param) inside a
				// release-named helper.
				if id, ok := call.Fun.(*ast.Ident); ok && hasPutterName(fd.Name.Name) {
					if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
						for _, arg := range call.Args[1:] {
							if i := paramIndex(pass, params, arg); i >= 0 {
								consumed = append(consumed, i)
							}
						}
					}
				}
				return true
			})
			if len(consumed) > 0 {
				putters[fnObj] = consumed
			}
		}
	}
	return putters
}

func paramObjects(pass *Pass, fd *ast.FuncDecl) []*types.Var {
	var params []*types.Var
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := pass.Pkg.Info.Defs[name].(*types.Var); ok {
				params = append(params, v)
			}
		}
	}
	return params
}

func paramIndex(pass *Pass, params []*types.Var, arg ast.Expr) int {
	id, ok := arg.(*ast.Ident)
	if !ok {
		return -1
	}
	obj := pass.Pkg.Info.Uses[id]
	for i, p := range params {
		if obj == p {
			return i
		}
	}
	return -1
}

// putEvent is one point where a variable was returned to a pool.
type putEvent struct {
	obj  *types.Var
	call *ast.CallExpr
}

// analyzeFuncPuts runs the forward-flow use-after-put and field-store
// checks over one function body.
func analyzeFuncPuts(pass *Pass, fd *ast.FuncDecl, putters map[*types.Func][]int) {
	var puts []putEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPoolPutCall(pass.Pkg.Info, call) && len(call.Args) == 1 {
			if v := varOf(pass, call.Args[0]); v != nil {
				puts = append(puts, putEvent{obj: v, call: call})
			}
			return true
		}
		if fn := calleeFunc(pass, call); fn != nil {
			if idxs, ok := putters[fn]; ok {
				for _, i := range idxs {
					if i < len(call.Args) {
						if v := varOf(pass, call.Args[i]); v != nil {
							puts = append(puts, putEvent{obj: v, call: call})
						}
					}
				}
			}
		}
		return true
	})
	if len(puts) == 0 {
		return
	}

	putObjs := make(map[*types.Var]bool, len(puts))
	for _, p := range puts {
		putObjs[p.obj] = true
	}

	// One walk collecting, per pooled object: plain uses, reassignment
	// positions, and field stores.
	type objFlow struct {
		uses      []*ast.Ident
		reassigns []token.Pos
	}
	flows := make(map[*types.Var]*objFlow)
	flow := func(v *types.Var) *objFlow {
		fl := flows[v]
		if fl == nil {
			fl = &objFlow{}
			flows[v] = fl
		}
		return fl
	}
	lhsIdents := make(map[*ast.Ident]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if v, ok := pass.Pkg.Info.Uses[id].(*types.Var); ok && putObjs[v] {
					lhsIdents[id] = true
					flow(v).reassigns = append(flow(v).reassigns, as.Pos())
				}
			}
			// Field store of a pooled value: lhs is a selector and some
			// rhs is the pooled ident.
			if _, ok := lhs.(*ast.SelectorExpr); ok {
				for _, rhs := range as.Rhs {
					if v := varOf(pass, rhs); v != nil && putObjs[v] {
						pass.Reportf(as.Pos(),
							"pooled value %s stored into field %s; a recycled struct must not outlive its pool round",
							v.Name(), exprString(lhs))
					}
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || lhsIdents[id] {
			return true
		}
		if v, ok := pass.Pkg.Info.Uses[id].(*types.Var); ok && putObjs[v] {
			flow(v).uses = append(flow(v).uses, id)
		}
		return true
	})

	for _, put := range puts {
		fl := flows[put.obj]
		if fl == nil {
			continue
		}
		for _, use := range fl.uses {
			if use.Pos() <= put.call.End() {
				continue // before or part of the put itself
			}
			if reassignedBetween(fl.reassigns, put.call.End(), use.Pos()) {
				continue
			}
			if !reachableAfter(fd.Body, put.call, use.Pos()) {
				continue
			}
			pass.Reportf(use.Pos(),
				"%s used after being returned to its pool at line %d; the pool may already have recycled it",
				put.obj.Name(), pass.Pkg.Fset.Position(put.call.Pos()).Line)
		}
	}
}

func varOf(pass *Pass, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.Pkg.Info.Uses[id].(*types.Var)
	return v
}

// calleeFunc resolves a call's static callee, if it is a plain function
// or method of this package.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.Pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func reassignedBetween(reassigns []token.Pos, from, to token.Pos) bool {
	for _, r := range reassigns {
		if r > from && r < to {
			return true
		}
	}
	return false
}

// reachableAfter reports whether control can flow from the put call to a
// use at usePos, approximated by block structure: a use positionally after
// the put is unreachable if it lies outside an enclosing block of the put
// that terminates (return / branch / panic).
func reachableAfter(body *ast.BlockStmt, put *ast.CallExpr, usePos token.Pos) bool {
	blocks := enclosingBlocks(body, put.Pos())
	// Innermost first.
	for i := len(blocks) - 1; i >= 0; i-- {
		b := blocks[i]
		if usePos >= b.Pos() && usePos <= b.End() {
			return true // same block (or nested): forward flow reaches it
		}
		if blockTerminates(b) {
			return false // control cannot fall out of this block
		}
	}
	return true
}

// enclosingBlocks returns the chain of blocks containing pos, outermost
// first.
func enclosingBlocks(body *ast.BlockStmt, pos token.Pos) []*ast.BlockStmt {
	var blocks []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if pos < n.Pos() || pos > n.End() {
			return false
		}
		if b, ok := n.(*ast.BlockStmt); ok {
			blocks = append(blocks, b)
		}
		return true
	})
	return blocks
}

// blockTerminates reports whether a block's final statement definitely
// transfers control (return, branch, or panic).
func blockTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// exprString renders a short expression for diagnostics.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	}
	return "expression"
}
