// Package barrier exercises the barrier analyzer: WaitGroup misuse (Add
// racing Wait, Done not reachable on all paths, re-Wait without
// re-arming) and nested Run on the same epoch pool.
package barrier

import "sync"

// addInGoroutine is B1: the Add races the parent's Wait, which may see a
// zero counter and return before the goroutine runs.
func addInGoroutine() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "inside the goroutine it accounts for"
		defer wg.Done()
	}()
	wg.Wait()
}

// doneNested is B2: Done fires on one branch only.
func doneNested(ok bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if ok {
			wg.Done() // want "not reachable on all paths"
		}
	}()
	wg.Wait()
}

// doneAfterReturn is B2's other shape: an early return bypasses Done.
func doneAfterReturn(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if n < 0 {
			return
		}
		wg.Done() // want "early return can bypass"
	}()
	wg.Wait()
}

func worker(wg *sync.WaitGroup) { wg.Done() }

// reWait is B3: after the first Wait the counter is zero, so the second
// Wait synchronizes nothing.
func reWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	wg.Wait()
	wg.Wait() // want "re-Wait of WaitGroup wg"
}

// okPattern is the canonical correct shape: Add before go, deferred
// Done, one Wait (false-positive guard).
func okPattern(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// reArmed re-Waits legitimately: an Add intervenes (false-positive
// guard).
func reArmed() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

// localBarrier arms a goroutine-local WaitGroup: the parent cannot Wait
// on it, so Add inside the goroutine is fine (false-positive guard).
func localBarrier() {
	go func() {
		var inner sync.WaitGroup
		inner.Add(1)
		inner.Done()
		inner.Wait()
	}()
}

// suppressedWait documents a deliberately benign re-Wait.
func suppressedWait() {
	var wg sync.WaitGroup
	wg.Wait()
	//lint:ignore barrier the counter is never armed in this fixture so both Waits are no-ops
	wg.Wait()
}

// Pool is a stand-in for the epoch-barrier worker pool; the fixture
// config lists it in BarrierPools.
type Pool struct{}

// Run is non-reentrant in the real pool: nested Run deadlocks.
func (p *Pool) Run(fn func(int)) { fn(0) }

// nestedRun is B4: the inner Run waits for workers parked in the outer
// epoch.
func nestedRun(p *Pool) {
	p.Run(func(i int) {
		p.Run(func(j int) { _ = j }) // want "nested Run on the same pool p"
	})
}

// siblingPools nest distinct pools, which is fine (false-positive
// guard).
func siblingPools(a, b *Pool) {
	a.Run(func(i int) {
		b.Run(func(j int) { _ = j })
	})
}
