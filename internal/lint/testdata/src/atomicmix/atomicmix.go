// Package atomicmix exercises the atomicmix analyzer: a field or
// variable accessed through sync/atomic anywhere must never be
// plain-loaded or stored elsewhere in the package.
package atomicmix

import "sync/atomic"

// stats mixes an atomically-updated field (hits) with a plain one
// (misses): only the former's plain accesses are findings.
type stats struct {
	hits   uint64
	misses uint64
}

func (s *stats) hit() {
	atomic.AddUint64(&s.hits, 1)
}

// loadAtomic stays clean: the access goes through the atomic API.
func (s *stats) loadAtomic() uint64 {
	return atomic.LoadUint64(&s.hits)
}

// readHits tears: a plain load concurrent with hit's atomic add.
func (s *stats) readHits() uint64 {
	return s.hits // want "hits is accessed with sync/atomic"
}

// resetHits tears the other way: a plain store.
func (s *stats) resetHits() {
	s.hits = 0 // want "hits is accessed with sync/atomic"
}

// miss touches only the never-atomic field: no diagnostic
// (false-positive guard).
func (s *stats) miss() {
	s.misses++
}

// newStats constructs with composite-literal keys: construction is
// pre-publication by definition, so the keys are exempt.
func newStats() *stats {
	return &stats{hits: 0, misses: 0}
}

// global shows the same rule on a package-level variable.
var global uint64

func bumpGlobal() {
	atomic.AddUint64(&global, 1)
}

func readGlobal() uint64 {
	return global // want "global is accessed with sync/atomic"
}

// initExclusive documents a deliberate plain write under external
// synchronization.
func initExclusive(s *stats) {
	//lint:ignore atomicmix caller guarantees exclusive access during single-threaded initialization
	s.hits = 0
}
