// Package globalrand exercises the globalrand analyzer: package-level
// draws from math/rand and math/rand/v2 hit the shared, implicitly-seeded
// generator and break experiment reproducibility.
package globalrand

import (
	randv1 "math/rand"
	"math/rand/v2"
)

func bad() (int, float64, int64) {
	n := rand.IntN(10)      // want `math/rand/v2\.IntN draws from the shared global generator`
	f := randv1.Float64()   // want `math/rand\.Float64 draws from the shared global generator`
	g := rand.N(int64(100)) // want `math/rand/v2\.N draws from the shared global generator`
	return n, f, g
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want `math/rand/v2\.Shuffle draws from the shared global generator`
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// good shows the sanctioned path: explicit construction from a named
// seed, then drawing through the injected generator.
func good() float64 {
	rng := rand.New(rand.NewPCG(1, 2))
	return rng.Float64()
}

func goodV1() float64 {
	rng := randv1.New(randv1.NewSource(42))
	return rng.Float64()
}

func goodChaCha(seed [32]byte) uint64 {
	return rand.NewChaCha8(seed).Uint64()
}
