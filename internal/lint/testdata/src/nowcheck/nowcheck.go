// Package nowcheck exercises the nowcheck analyzer: this package is
// outside the wall-clock allowlist, so any time.Now/Since/Sleep reference
// is a finding.
package nowcheck

import "time"

func bad() time.Time {
	t := time.Now()              // want "time.Now reads the host wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the host wall clock"
	_ = time.Since(t)            // want "time.Since reads the host wall clock"
	return t
}

// asValue catches wall-clock functions smuggled out as values, not just
// direct calls.
func asValue() func() time.Time {
	return time.Now // want "time.Now reads the host wall clock"
}

// allowedUses shows that the rest of package time is fine: durations,
// formatting, and explicit construction carry no hidden wall-clock read.
func allowedUses() (time.Duration, time.Time) {
	d := 3 * time.Second
	return d, time.Unix(0, 0)
}

// suppressed demonstrates a justified suppression: the directive names
// the check and gives a reason, so no diagnostic survives.
func suppressed() time.Time {
	//lint:ignore nowcheck fixture demonstrating a justified suppression
	return time.Now()
}
