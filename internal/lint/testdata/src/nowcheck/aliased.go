package nowcheck

import stdtime "time"

// aliased shows the check resolves through import aliases: the object,
// not the source text, is what matters.
func aliased() stdtime.Time {
	return stdtime.Now() // want "time.Now reads the host wall clock"
}
