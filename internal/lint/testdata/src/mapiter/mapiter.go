// Package mapiter exercises the mapiter analyzer: ranging over a map
// whose body feeds order-sensitive sinks (output, writers, slice
// accumulation) leaks Go's randomized iteration order into artifacts
// that must be byte-identical run-to-run.
package mapiter

import (
	"fmt"
	"sort"
	"strings"
)

func badPrint(m map[string]int) {
	for k, v := range m { // want `range over map feeds fmt output`
		fmt.Println(k, v)
	}
}

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map feeds slice accumulation`
		out = append(out, k)
	}
	return out // unsorted: caller sees random order
}

func badWriter(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `range over map feeds writer method WriteString`
		b.WriteString(k)
	}
	return b.String()
}

func badNested(m map[string][]int, w *strings.Builder) {
	for k, vs := range m { // want `range over map feeds writer method WriteString`
		for range vs {
			w.WriteString(k)
		}
	}
}

// goodSorted is the canonical fix: collect keys, sort, range the slice.
// The key-collection loop appends, but the target is sorted before use,
// so it is order-laundering, not an order leak.
func goodSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// goodCount is order-insensitive: accumulation commutes.
func goodCount(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// goodRekey builds another map; map inserts are order-insensitive.
func goodRekey(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
