// Package guardedby exercises the guardedby analyzer: the mutex guarding
// each struct field is inferred from the majority of lock-held accesses,
// and accesses reachable without that lock are findings.
package guardedby

import "sync"

// counter's val is accessed under mu by the majority of its accesses, so
// mu is inferred as its guard.
type counter struct {
	mu   sync.Mutex
	val  int
	hits int
}

func (c *counter) inc() {
	c.mu.Lock()
	c.val++
	c.mu.Unlock()
}

func (c *counter) add(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.val += n
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.val
}

// racyPeek reads val without mu: the inferred guard is not held.
func (c *counter) racyPeek() int {
	return c.val // want "counter.val is guarded by counter.mu"
}

// asyncBad locks, but the goroutine body outlives the critical section:
// the held set is empty inside `go func`.
func (c *counter) asyncBad() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.val++ // want "counter.val is guarded by counter.mu"
	}()
}

// touchOnce is hits' only locked access: one locked access is below the
// inference threshold, so peekHits stays clean (false-positive guard).
func (c *counter) touchOnce() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
}

func (c *counter) peekHits() int { return c.hits }

// tryGet early-returns from a terminating branch after unlocking inside
// it; the lock is still held on the fall-through path, so no diagnostic
// (false-positive guard for the lock/branch merge).
func (c *counter) tryGet() (int, bool) {
	c.mu.Lock()
	if c.val < 0 {
		c.mu.Unlock()
		return 0, false
	}
	v := c.val
	c.mu.Unlock()
	return v, true
}

// newCounter writes fields before publication: variables declared inside
// the current function are under construction, never flagged.
func newCounter() *counter {
	c := &counter{}
	c.val = 1
	return c
}

// table shows RWMutex inference: RLock counts as holding the guard.
type table struct {
	rw sync.RWMutex
	m  map[string]int
}

func (t *table) set(k string, v int) {
	t.rw.Lock()
	defer t.rw.Unlock()
	t.m[k] = v
}

func (t *table) get(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[k]
}

// size is a caller-holds-the-lock helper: the analyzer cannot see the
// caller, so the suppression documents the contract in place.
func (t *table) size() int {
	//lint:ignore guardedby every caller holds t.rw across this helper by documented contract
	return len(t.m)
}
