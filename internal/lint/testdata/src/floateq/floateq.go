// Package floateq exercises the floateq analyzer: == and != on
// floating-point operands are banned outside approved helpers, because
// computed interval endpoints rarely share bit patterns.
package floateq

import "math"

type seconds float64

func bad(a, b float64) bool {
	if a == b { // want `== on floating-point operands`
		return true
	}
	return a != b // want `!= on floating-point operands`
}

// namedType shows the check sees through named types whose underlying
// type is a float.
func namedType(x, y seconds) bool {
	return x == y // want `== on floating-point operands`
}

func mixed(a float64, b int) bool {
	return a == float64(b) // want `== on floating-point operands`
}

func float32too(a, b float32) bool {
	return a == b // want `== on floating-point operands`
}

// packageLevelInit shows comparisons in package-level initializers are
// never allowlisted.
var packageLevelInit = func(a float64) bool {
	return a == 0 // want `== on floating-point operands`
}

// ints is fine: only floating-point comparison is hazardous here.
func ints(a, b int) bool { return a == b }

// constants compare exactly at compile time.
func constants() bool { return 1.0 == 2.0 }

// approvedHelper is allowlisted by the test config, standing in for the
// approved epsilon helpers in internal/interval and internal/stats.
func approvedHelper(a, b float64) bool {
	return a == b
}

// edge.Less is allowlisted as a method ("...floateq.edge.Less"),
// standing in for interval's sort tie-break.
type edge struct{ at float64 }

func (e edge) Less(o edge) bool {
	return e.at != o.at
}

// epsilon comparisons never trip the check: there is no ==/!= operator.
func approxEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9
}
