// Package poolput exercises the poolput analyzer: once a value is
// returned to a pool (sync.Pool.Put, a wrapper, or a free-list release
// helper), the caller must not read it, Put it again, or have stored it
// into a long-lived field.
package poolput

import "sync"

type buf struct {
	n    int
	data []byte
}

var bufPool = sync.Pool{New: func() any { return new(buf) }}

func useAfterPut() int {
	b := bufPool.Get().(*buf)
	bufPool.Put(b)
	return b.n // want `b used after being returned to its pool`
}

func doublePut() {
	b := bufPool.Get().(*buf)
	bufPool.Put(b)
	bufPool.Put(b) // want `b used after being returned to its pool`
}

type holder struct{ last *buf }

func fieldStore(h *holder) {
	b := bufPool.Get().(*buf)
	h.last = b // want `pooled value b stored into field h.last`
	bufPool.Put(b)
}

// putBuf is a release wrapper: the analyzer learns that its parameter is
// consumed, so calling it counts as a Put at the call site.
func putBuf(b *buf) {
	b.n = 0
	bufPool.Put(b)
}

func viaWrapper() int {
	b := bufPool.Get().(*buf)
	putBuf(b)
	return b.n // want `b used after being returned to its pool`
}

// cache is a slice free list in the style of the simulator's event pool;
// release-named helpers that append a parameter are treated as Puts.
type cache struct{ free []*buf }

func (c *cache) release(b *buf) {
	c.free = append(c.free, b)
}

func viaFreeList(c *cache) int {
	b := new(buf)
	c.release(b)
	return b.n // want `b used after being returned to its pool`
}

// reassigned is fine: after rebinding, b no longer aliases the pooled
// struct.
func reassigned() int {
	b := bufPool.Get().(*buf)
	bufPool.Put(b)
	b = new(buf)
	return b.n
}

// branchPut is fine: the put sits in a block that returns, so control
// never flows from the put to the later uses.
func branchPut(done bool) {
	b := bufPool.Get().(*buf)
	if done {
		bufPool.Put(b)
		return
	}
	b.n++
	bufPool.Put(b)
}

// normalUse is the intended pattern: compute the result, release, return
// the computed value.
func normalUse(xs []byte) int {
	b := bufPool.Get().(*buf)
	b.data = append(b.data[:0], xs...)
	n := len(b.data)
	bufPool.Put(b)
	return n
}
