// Package badignore holds malformed //lint:ignore directives; the
// framework reports them as diagnostics of check "lint" instead of
// silently accepting an unjustified suppression.
package badignore

//lint:ignore
func missingEverything() {}

//lint:ignore floateq
func missingReason() {}

//lint:ignore floateq because
func tokenReason() {}
