// Package clean is a fixture with zero findings: it demonstrates the
// sanctioned forms of everything the analyzers police, and the driver
// test asserts that linting it exits 0.
package clean

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
)

// report ranges a map the approved way: keys out, sort, range the slice.
func report(m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// jitter draws only through an injected generator.
func jitter(rng *rand.Rand) float64 {
	return rng.Float64()
}

// seeded builds its generator from named seeds.
func seeded(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// approxEqual compares floats with an epsilon, not ==.
func approxEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9
}

type scratch struct{ sum float64 }

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// pooled computes with a pooled scratch value and releases it only after
// the last read.
func pooled(xs []float64) float64 {
	s := scratchPool.Get().(*scratch)
	s.sum = 0
	for _, x := range xs {
		s.sum += x
	}
	total := s.sum
	scratchPool.Put(s)
	return total
}
