// Package noalloc exercises the noalloc analyzer: functions annotated
// //lint:noalloc must contain no allocation-causing constructs, with
// error exits and amortized appends exempt.
package noalloc

import "fmt"

//lint:noalloc
func badMake(n int) []int {
	return make([]int, n) // want "make in //lint:noalloc function badMake"
}

//lint:noalloc
func badNew() *int {
	return new(int) // want "new in //lint:noalloc function badNew"
}

//lint:noalloc
func badFreshAppend(v int) []int {
	return append([]int{}, v) // want "append to a fresh slice" "slice literal"
}

//lint:noalloc
func badClosure(n int) func() int {
	return func() int { return n } // want "function literal"
}

type adder struct{ n int }

func (a *adder) add() int { return a.n }

//lint:noalloc
func badMethodValue(a *adder) func() int {
	return a.add // want "method value a.add"
}

func sink(x any) { _ = x }

//lint:noalloc
func badBoxing(v int) {
	sink(v) // want "passing int to an interface parameter"
}

//lint:noalloc
func badIfaceConv(v int) any {
	return any(v) // want "conversion to interface"
}

//lint:noalloc
func badConcat(a, b string) string {
	return a + b // want "string concatenation"
}

//lint:noalloc
func badStringConv(b []byte) string {
	return string(b) // want "string<->byte-slice conversion"
}

//lint:noalloc
func badMapLit() map[string]int {
	return map[string]int{} // want "map literal"
}

//lint:noalloc
func badEscape() *adder {
	return &adder{n: 1} // want "&composite literal"
}

//lint:noalloc
func badSprintf(n int) string {
	return fmt.Sprintf("%d", n) // want "fmt.Sprintf in //lint:noalloc"
}

//lint:noalloc
func badGo(ch chan int) {
	go func() { ch <- 1 }() // want "go statement" "function literal"
}

// steady appends into a caller-retained buffer: amortized-free, no
// diagnostic (false-positive guard).
//
//lint:noalloc BenchmarkFixtureSteady
func steady(buf []int, v int) []int {
	return append(buf, v)
}

// errorPath allocates only inside the cold error exit, which is exempt:
// the block ends in a non-nil error return.
//
//lint:noalloc
func errorPath(buf []byte) (int, error) {
	if len(buf) < 4 {
		return 0, fmt.Errorf("short buffer: %d bytes", len(buf))
	}
	return int(buf[0]), nil
}

// panicPath allocates only to describe a programming error before dying:
// blocks ending in panic are exempt.
//
//lint:noalloc
func panicPath(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("negative: %d", n))
	}
	return n * 2
}

// suppressedMake documents a deliberate allocation inside an annotated
// function.
//
//lint:noalloc
func suppressedMake() []int {
	//lint:ignore noalloc one-time warmup buffer allocated before the steady state begins
	return make([]int, 8)
}

// unannotated is free to allocate: no annotation, no checks
// (false-positive guard).
func unannotated() []int {
	return make([]int, 4)
}
