package lint

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture type-checks one testdata fixture package under its real
// import path.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(repoRoot, "internal", "lint", "testdata", "src", name)
	loader := NewLoader(repoRoot, "disttime")
	pkg, err := loader.LoadDir(dir, "disttime/internal/lint/testdata/src/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return pkg
}

// fixtureConfig extends the default policy with the fixture-local
// allowlist entries (stand-ins for the approved helpers in
// internal/interval and internal/stats).
func fixtureConfig() *Config {
	cfg := DefaultConfig()
	cfg.FloatEqAllowed = append(cfg.FloatEqAllowed,
		"disttime/internal/lint/testdata/src/floateq.approvedHelper",
		"disttime/internal/lint/testdata/src/floateq.edge.Less",
	)
	cfg.BarrierPools = append(cfg.BarrierPools,
		"disttime/internal/lint/testdata/src/barrier.Pool",
	)
	return cfg
}

// wantRe extracts the quoted regexps of a "// want" comment; both
// double-quoted and backtick-quoted forms are accepted.
var wantRe = regexp.MustCompile("\"[^\"]*\"|`[^`]*`")

// collectWants gathers expected-diagnostic regexps per file and line from
// the fixture's trailing comments.
func collectWants(t *testing.T, pkg *Package) map[string]map[int][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string]map[int][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRe.FindAllString(c.Text[idx+len("// want "):], -1) {
					pat := q[1 : len(q)-1]
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					byLine := wants[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]*regexp.Regexp)
						wants[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], re)
				}
			}
		}
	}
	return wants
}

// runFixture checks an analyzer's diagnostics against the fixture's
// // want comments, in both directions: every diagnostic must be
// expected, and every expectation must fire.
func runFixture(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	pkg := loadFixture(t, name)
	diags := RunPackage(pkg, analyzers, fixtureConfig())
	wants := collectWants(t, pkg)

	matched := make(map[string]map[int][]bool)
	for file, byLine := range wants {
		matched[file] = make(map[int][]bool)
		for line, res := range byLine {
			matched[file][line] = make([]bool, len(res))
		}
	}

	for _, d := range diags {
		res := wants[d.File][d.Line]
		found := false
		for i, re := range res {
			if re.MatchString(d.Message) {
				matched[d.File][d.Line][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic %s:%d:%d: %s: %s",
				filepath.Base(d.File), d.Line, d.Col, d.Check, d.Message)
		}
	}
	for file, byLine := range wants {
		for line, res := range byLine {
			for i, re := range res {
				if !matched[file][line][i] {
					t.Errorf("%s:%d: expected diagnostic matching %q did not fire",
						filepath.Base(file), line, re.String())
				}
			}
		}
	}
}

func TestNowCheck(t *testing.T)   { runFixture(t, "nowcheck", []*Analyzer{NowCheck}) }
func TestGlobalRand(t *testing.T) { runFixture(t, "globalrand", []*Analyzer{GlobalRand}) }
func TestFloatEq(t *testing.T)    { runFixture(t, "floateq", []*Analyzer{FloatEq}) }
func TestMapIter(t *testing.T)    { runFixture(t, "mapiter", []*Analyzer{MapIter}) }
func TestPoolPut(t *testing.T)    { runFixture(t, "poolput", []*Analyzer{PoolPut}) }
func TestGuardedBy(t *testing.T)  { runFixture(t, "guardedby", []*Analyzer{GuardedBy}) }
func TestAtomicMix(t *testing.T)  { runFixture(t, "atomicmix", []*Analyzer{AtomicMix}) }
func TestNoAlloc(t *testing.T)    { runFixture(t, "noalloc", []*Analyzer{NoAlloc}) }
func TestBarrier(t *testing.T)    { runFixture(t, "barrier", []*Analyzer{Barrier}) }

// TestCleanFixture runs the full suite over the clean fixture; it has no
// want comments, so any diagnostic fails the bidirectional match.
func TestCleanFixture(t *testing.T) { runFixture(t, "clean", Analyzers()) }

// TestMalformedIgnore asserts the framework reports unjustified or
// incomplete suppression directives.
func TestMalformedIgnore(t *testing.T) {
	pkg := loadFixture(t, "badignore")
	diags := RunPackage(pkg, Analyzers(), DefaultConfig())
	var lintDiags []Diagnostic
	for _, d := range diags {
		if d.Check == "lint" {
			lintDiags = append(lintDiags, d)
		}
	}
	if len(lintDiags) != 3 {
		t.Fatalf("want 3 malformed-directive diagnostics, got %d: %v", len(lintDiags), diags)
	}
	for _, d := range lintDiags {
		if !strings.Contains(d.Message, "malformed //lint:ignore") &&
			!strings.Contains(d.Message, "suppression reason too short") {
			t.Errorf("unexpected message %q", d.Message)
		}
	}
}

// TestSuppressionRequiresMatchingCheck makes sure an ignore directive for
// one check does not silence another.
func TestSuppressionRequiresMatchingCheck(t *testing.T) {
	pkg := loadFixture(t, "nowcheck")
	// Run with a config and suite where the suppressed time.Now call in
	// suppressed() would be the only candidate; the directive names
	// nowcheck, so it must not leak through.
	diags := RunPackage(pkg, []*Analyzer{NowCheck}, DefaultConfig())
	for _, d := range diags {
		if d.Line == suppressedLine(t, pkg) {
			t.Errorf("suppressed diagnostic leaked: %+v", d)
		}
	}
}

// suppressedLine finds the line of the suppressed time.Now call in the
// nowcheck fixture (the line after the ignore directive).
func suppressedLine(t *testing.T, pkg *Package) int {
	t.Helper()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "//lint:ignore nowcheck") {
					return pkg.Fset.Position(c.Pos()).Line + 1
				}
			}
		}
	}
	t.Fatal("no //lint:ignore nowcheck directive found in fixture")
	return 0
}

// TestFuncQualName pins the allowlist key format.
func TestFuncQualName(t *testing.T) {
	pkg := loadFixture(t, "floateq")
	var got []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				got = append(got, funcQualName(pkg.Path, fd))
			}
		}
	}
	want := []string{
		"disttime/internal/lint/testdata/src/floateq.approvedHelper",
		"disttime/internal/lint/testdata/src/floateq.edge.Less",
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("funcQualName: %q not among %v", w, got)
		}
	}
}
