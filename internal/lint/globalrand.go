package lint

import (
	"go/ast"
	"go/types"
)

// GlobalRand bans draws from the shared, implicitly-seeded generators of
// math/rand and math/rand/v2 (rand.IntN, rand.Float64, ...). Experiments
// are byte-identical across runs and under the parallel runner only when
// every random number flows through an injected *rand.Rand built from a
// named seed (rand.New(rand.NewPCG(seed1, seed2))). A single global draw
// re-introduces cross-goroutine ordering dependence and breaks
// reproducibility of every figure downstream.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "no package-level math/rand(/v2) draws; randomness flows through injected seeded generators",
	Run:  runGlobalRand,
}

// randConstructors are the package-level functions of math/rand(/v2) that
// construct explicit generators or sources rather than drawing from the
// global one. They are the sanctioned entry points.
var randConstructors = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewSource":  true,
	"NewZipf":    true,
}

func runGlobalRand(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand / sources are the sanctioned path;
			// only package-level draws hit the shared generator.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if randConstructors[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s draws from the shared global generator; inject a seeded *rand.Rand (rand.New(rand.NewPCG(...))) instead",
				fn.Pkg().Path(), fn.Name())
			return true
		})
	}
}
