// Package lint is disttime's in-tree static-analysis framework. It is
// built on the standard library only (go/ast, go/parser, go/token,
// go/types) — no golang.org/x/tools — honoring the repository's
// no-dependency rule.
//
// The framework exists because the paper's guarantees (a returned interval
// [C-E, C+E] contains correct time; the MM/IM update rules preserve it)
// only reproduce when the simulator is bit-deterministic and the
// zero-allocation hot paths stay pool-safe. Those are whole-program
// invariants that conventions alone cannot protect across aggressive
// refactors, so they are enforced by nine repo-specific analyzers:
//
//	nowcheck   — wall-clock reads (time.Now/Since/Sleep) are confined to
//	             the real-network packages; simulated code draws time from
//	             internal/sim and internal/clock (paper §1.1: a clock
//	             reading is a <C, E> pair, not the OS clock).
//	globalrand — no package-level math/rand(/v2) draws; randomness flows
//	             through injected, seeded generators so experiments are
//	             byte-identical under -parallel.
//	floateq    — no ==/!= on floating-point operands outside approved
//	             helpers; interval endpoints are float64 seconds and exact
//	             comparison corrupts the consistency predicate (Fig. 4).
//	mapiter    — no ranging over maps where iteration order can reach
//	             experiment/trace output or caller-visible slices.
//	poolput    — no use of a value after it was returned to its pool and
//	             no storing pooled values into long-lived fields.
//	guardedby  — a struct field accessed under a mutex by the majority of
//	             its accesses must hold that mutex at every access; the
//	             static complement to -race, covering schedules the race
//	             detector never executes.
//	atomicmix  — a field or variable touched via sync/atomic anywhere must
//	             never be plain-loaded or stored elsewhere in the package.
//	noalloc    — functions annotated //lint:noalloc must contain no
//	             allocation-causing constructs (the shard event heap,
//	             interval Sweeper, obs handles, and wire codec hot paths
//	             carry the annotation).
//	barrier    — sync.WaitGroup / epoch-pool misuse: Add racing Wait, Done
//	             not reachable on all paths, re-Wait without re-arming,
//	             nested Pool.Run on the same pool.
//
// Diagnostics can be suppressed with a justified directive on the same
// line or the line above:
//
//	//lint:ignore <check> <reason>
//
// A directive without a reason — or with a token reason shorter than
// three words — is itself a diagnostic: suppressions must explain
// themselves to the next reader.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned and attributed to a check.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the check name used in output and //lint:ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run inspects pass.Pkg and reports findings through pass.Reportf.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Cfg      *Config

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full analyzer suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{NowCheck, GlobalRand, FloatEq, MapIter, PoolPut,
		GuardedBy, AtomicMix, NoAlloc, Barrier}
}

// Config scopes the analyzers to the repository's layout. The driver uses
// DefaultConfig; tests substitute fixture-shaped configs.
type Config struct {
	// NowAllowed lists import-path prefixes where wall-clock reads are
	// legitimate (the real-network packages and the binaries).
	NowAllowed []string
	// FloatEqAllowed lists functions permitted to compare floats with
	// ==/!=, as "pkgpath.Func" or "pkgpath.Type.Method" (receiver
	// pointer stripped). These are the approved comparison helpers.
	FloatEqAllowed []string
	// MapIterScope lists import-path prefixes where mapiter applies
	// (the packages that produce ordered experiment/trace output).
	MapIterScope []string
	// BarrierPools lists epoch-barrier pool types, as "pkgpath.Type",
	// whose Run method is non-reentrant: the barrier analyzer flags a
	// Run nested inside the same pool's Run.
	BarrierPools []string
}

// DefaultConfig returns the repository's enforcement policy.
func DefaultConfig() *Config {
	return &Config{
		NowAllowed: []string{
			// Real-network time sources: wall clock is the subject.
			"disttime/internal/udptime",
			"disttime/internal/ntp",
			// Binaries and runnable examples: pacing, timeouts, and
			// wall-clock reporting at the edge are legitimate.
			"disttime/cmd",
			"disttime/examples",
		},
		FloatEqAllowed: []string{
			// Sort tie-break on identical endpoint bit patterns; exact
			// comparison is the point (equal positions order by edge
			// kind so closed intervals touching at a point intersect).
			"disttime/internal/interval.edgeSlice.Less",
			// Approved exact-equality helper for interval endpoints.
			"disttime/internal/interval.SameEdge",
		},
		MapIterScope: []string{
			// Packages whose output must be byte-identical run-to-run.
			"disttime/internal/experiments",
			"disttime/internal/trace",
			// Chaos verdicts, reproducer lines, and shrink results are
			// determinism contracts (equal campaigns => equal bytes).
			"disttime/internal/chaos",
			// Metrics snapshots and span logs are byte-deterministic
			// under fixed seeds (sorted enumeration is the mechanism).
			"disttime/internal/obs",
			// Roster digests, gossip payloads, and detector verdicts feed
			// deterministic timelines; sorted iteration is the contract.
			"disttime/internal/member",
			// The sharded kernel and its planet-scale workload are
			// determinism contracts across shard counts; any map
			// iteration feeding event order or fingerprints is a bug.
			"disttime/internal/sim/shard",
			"disttime/internal/scale",
			// Hybrid logical clocks and the commit-wait workload feed
			// deterministic timelines (txn-smoke diffs them byte-for-byte).
			"disttime/internal/hlc",
			"disttime/internal/txn",
			"disttime/cmd",
			// Fixtures exercising the analyzer itself.
			"disttime/internal/lint/testdata",
		},
		BarrierPools: []string{
			// The epoch-barrier worker pool: Run inside Run deadlocks
			// (workers are parked in the outer epoch).
			"disttime/internal/par.Pool",
		},
	}
}

// pathIn reports whether pkgPath equals prefix or sits beneath it.
func pathIn(pkgPath string, prefixes []string) bool {
	for _, p := range prefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// RunPackage runs the given analyzers over one package, applies
// //lint:ignore suppressions, and returns the surviving diagnostics in
// position order.
func RunPackage(pkg *Package, analyzers []*Analyzer, cfg *Config) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, Cfg: cfg, diags: &diags}
		a.Run(pass)
	}
	ignores, malformed := collectIgnores(pkg)
	diags = append(diags, malformed...)
	kept := diags[:0]
	for _, d := range diags {
		if !ignores.suppresses(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].File != kept[j].File {
			return kept[i].File < kept[j].File
		}
		if kept[i].Line != kept[j].Line {
			return kept[i].Line < kept[j].Line
		}
		if kept[i].Col != kept[j].Col {
			return kept[i].Col < kept[j].Col
		}
		return kept[i].Check < kept[j].Check
	})
	return kept
}

// ignoreSet maps file -> line -> set of suppressed check names.
type ignoreSet map[string]map[int]map[string]bool

func (s ignoreSet) suppresses(d Diagnostic) bool {
	lines := s[d.File]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Line, d.Line - 1} {
		if checks := lines[line]; checks != nil && (checks[d.Check] || checks["*"]) {
			return true
		}
	}
	return false
}

const ignorePrefix = "//lint:ignore"

// collectIgnores gathers //lint:ignore directives from the package's
// comments. A directive suppresses the named check on its own line and the
// line below. Directives missing a check name or a reason are reported as
// diagnostics of check "lint", as are directives whose reason is shorter
// than three words — a suppression must carry a written justification,
// not a token.
func collectIgnores(pkg *Package) (ignoreSet, []Diagnostic) {
	set := make(ignoreSet)
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				position := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Check:   "lint",
						File:    position.Filename,
						Line:    position.Line,
						Col:     position.Column,
						Message: "malformed //lint:ignore directive: want \"//lint:ignore <check> <reason>\"",
					})
					continue
				}
				if len(fields) < 4 {
					malformed = append(malformed, Diagnostic{
						Check:   "lint",
						File:    position.Filename,
						Line:    position.Line,
						Col:     position.Column,
						Message: "suppression reason too short: //lint:ignore must carry a written justification (at least three words)",
					})
					continue
				}
				lines := set[position.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					set[position.Filename] = lines
				}
				checks := lines[position.Line]
				if checks == nil {
					checks = make(map[string]bool)
					lines[position.Line] = checks
				}
				for _, name := range strings.Split(fields[0], ",") {
					checks[name] = true
				}
			}
		}
	}
	return set, malformed
}

// funcQualName renders the allowlist key for a function declaration:
// "pkgpath.Func" or "pkgpath.Type.Method" with any receiver pointer
// stripped.
func funcQualName(pkgPath string, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkgPath + "." + fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers (Type[T]) reduce to their base identifier.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return pkgPath + "." + id.Name + "." + fd.Name.Name
	}
	return pkgPath + "." + fd.Name.Name
}
