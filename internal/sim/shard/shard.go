// Package shard is the sharded, deterministic discrete-event simulation
// kernel behind the planet-scale scenarios: the multi-network "internet"
// of the paper's Xerox setting grown to 10^5 servers and beyond, which
// the single-heap kernel of internal/sim cannot reach.
//
// Nodes are partitioned across N shards. Each shard owns a
// hand-specialized 4-ary min-heap of value-typed events (the pooled
// event idiom of internal/sim taken one step further: events are plain
// values in the heap's backing array, so there is nothing to pool and
// nothing to box) and advances in lockstep windows bounded by the
// minimum cross-shard message delay (the conservative-PDES lookahead).
// Cross-shard deliveries buffer in per-shard outboxes during a window
// and are exchanged at the window barrier in a deterministic merge,
// drained in fixed source-shard order.
//
// # Determinism across shard counts
//
// The kernel's contract is stronger than reproducibility under one
// configuration: a seeded run is byte-identical for ANY shard count,
// including the degenerate N=1 — which, with its single heap and
// unbounded window, IS the sequential kernel. Three rules make this
// hold:
//
//   - Every event carries a key (At, From, Seq), where From is the node
//     that created the event and Seq is that node's own monotone
//     counter. Heap order is the lexicographic order of keys, so the
//     global execution order is a pure function of the workload, not of
//     the partition: keys are unique, so a min-heap's pop sequence
//     depends only on its contents, never on insertion order. (The
//     barrier merge still drains outboxes in fixed source-shard order so
//     even heap internals are reproducible run-to-run.)
//   - Every random draw comes from a per-node PCG stream seeded from
//     (seed, node). A node's draws depend only on its own event order.
//   - Two events executing in the same window on different shards touch
//     disjoint state (their own nodes'), and the lookahead guarantees a
//     cross-shard message sent in a window cannot arrive inside it:
//     a window spans [tNext, tNext+L) and cross-shard delays are >= L.
//     Any interleaving of a window therefore commutes.
//
// Shards execute their windows on a par.Pool, so the worker budget and
// the shard count are independent knobs; on an exhausted budget (or a
// single-core machine) the pool collapses to an inline loop and the
// kernel is simply a fast sequential simulator with deterministic
// sharded semantics. Sparse windows are executed inline regardless of
// budget — dispatching goroutines to move one event is slower than
// moving it.
package shard

import (
	"fmt"
	"math"
	"math/rand/v2"

	"disttime/internal/obs"
	"disttime/internal/par"
)

// Ev is one scheduled event: a timer on a node, or a message delivery to
// a node. Events are value types — heaps and outboxes hold them directly,
// so scheduling never allocates and the kernel's steady state produces no
// garbage at all.
type Ev struct {
	// At is the virtual delivery/firing time.
	At float64
	// A and B are workload-defined payload scalars (a reading <C, E>, a
	// delay, ...). Fixed scalar payloads instead of `any` are what keep
	// 10^7-event runs free of boxing.
	A, B float64
	// Seq is the per-From sequence number, assigned by the kernel at
	// scheduling time. (At, From, Seq) is the event's globally unique,
	// partition-independent ordering key.
	Seq uint64
	// From is the node that created the event (the sender of a message,
	// the node itself for a timer).
	From int32
	// Node is the node the event executes on.
	Node int32
	// Tag is a workload-defined discriminator (e.g. a round id).
	Tag uint32
	// Kind is the workload-defined dispatch code.
	Kind uint16
}

// Handler consumes events. The kernel calls Event with the executing
// shard's Proc; the handler must only touch state owned by ev.Node (plus
// shard-local aggregates), and must do all scheduling and random draws
// through p.
type Handler interface {
	Event(p *Proc, ev Ev)
}

// Config configures a kernel.
type Config struct {
	// Nodes is the number of simulated nodes. Required.
	Nodes int
	// Shards is the number of partitions. Values < 1 mean 1. Shards
	// never changes results, only the potential for parallelism.
	Shards int
	// Seed makes the run reproducible: it roots every per-node PCG
	// stream.
	Seed uint64
	// Lookahead is the minimum delay of any cross-shard message, the
	// safe window length. Required > 0 when Shards > 1; ignored for a
	// single shard (the window is unbounded).
	Lookahead float64
	// ShardOf maps a node to its shard in [0, Shards). Nil means
	// contiguous blocks. The workload should align partition boundaries
	// with its slow links (clusters on one shard, backbone across) so
	// Lookahead can be the backbone's minimum delay.
	ShardOf func(node int32) int32
	// Handler dispatches events. Required.
	Handler Handler
}

// Kernel is a sharded simulator.
type Kernel struct {
	shards     []*Proc
	shardOf    []int32
	seqs       []uint64   // per-node event sequence, touched only by the owning shard
	rngs       []rand.PCG // per-node PCG stream, touched only by the owning shard
	handler    Handler
	pool       *par.Pool
	runShareFn func(int) // k.runShare bound once; a fresh method value per window would allocate
	lookahead  float64
	now        float64
	horizon    float64
	lastBurst  int // events executed in the previous window, for the inline heuristic

	// Observability (nil-safe until Observe).
	obsWindows  *obs.Counter
	obsMerged   *obs.Counter
	obsWinLen   *obs.LogHistogram
	obsExecuted []*obs.Counter // per shard
}

// Proc is one shard's execution context. Handlers receive it to read the
// clock, draw randomness, and schedule.
type Proc struct {
	k        *Kernel
	id       int32
	now      float64
	heap     []Ev   // 4-ary min-heap by (At, From, Seq)
	out      [][]Ev // per-destination-shard outboxes
	executed uint64 // events executed in the current window
	steps    uint64 // events executed in total
}

// inlineBurst is the window size (events) below which the kernel runs
// shards inline even when pool workers are available: barrier handoffs
// cost more than the work. Purely a scheduling heuristic — execution
// order is identical either way.
const inlineBurst = 192

// splitmix64 is the SplitMix64 step, used to derive independent PCG seed
// words per node from (seed, node).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New builds a kernel at virtual time zero.
func New(cfg Config) (*Kernel, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("shard: %d nodes", cfg.Nodes)
	}
	if cfg.Handler == nil {
		return nil, fmt.Errorf("shard: nil handler")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Shards > cfg.Nodes {
		cfg.Shards = cfg.Nodes
	}
	if cfg.Shards > 1 && !(cfg.Lookahead > 0) {
		return nil, fmt.Errorf("shard: %d shards need a positive lookahead, got %v",
			cfg.Shards, cfg.Lookahead)
	}
	k := &Kernel{
		shardOf:   make([]int32, cfg.Nodes),
		seqs:      make([]uint64, cfg.Nodes),
		rngs:      make([]rand.PCG, cfg.Nodes),
		handler:   cfg.Handler,
		lookahead: cfg.Lookahead,
	}
	if cfg.Shards == 1 {
		k.lookahead = math.Inf(1)
	}
	for n := 0; n < cfg.Nodes; n++ {
		var s int32
		if cfg.ShardOf != nil {
			s = cfg.ShardOf(int32(n))
			if s < 0 || int(s) >= cfg.Shards {
				return nil, fmt.Errorf("shard: ShardOf(%d) = %d outside [0,%d)", n, s, cfg.Shards)
			}
		} else {
			s = int32(n * cfg.Shards / cfg.Nodes)
		}
		k.shardOf[n] = s
		h := splitmix64(cfg.Seed ^ splitmix64(uint64(n)+0x51ed2701))
		k.rngs[n].Seed(h, splitmix64(h))
	}
	k.shards = make([]*Proc, cfg.Shards)
	for i := range k.shards {
		p := &Proc{k: k, id: int32(i), out: make([][]Ev, cfg.Shards)}
		k.shards[i] = p
	}
	k.pool = par.NewPool(cfg.Shards)
	k.runShareFn = k.runShare
	return k, nil
}

// Close releases the kernel's worker pool. The kernel must be idle.
func (k *Kernel) Close() { k.pool.Close() }

// Observe registers the kernel's counters in reg: windows executed, the
// window-length histogram (virtual seconds), cross-shard events merged at
// barriers, and per-shard executed-event counters. Counts of windows and
// merges describe the partition, so they legitimately vary with the shard
// count; workload results never do.
func (k *Kernel) Observe(reg *obs.Registry) {
	k.obsWindows = reg.Counter("simshard_windows_total")
	k.obsMerged = reg.Counter("simshard_merged_events_total")
	k.obsWinLen = reg.LogHistogram("simshard_window_seconds")
	k.obsExecuted = make([]*obs.Counter, len(k.shards))
	for i := range k.shards {
		k.obsExecuted[i] = reg.Counter(fmt.Sprintf("simshard_events_executed_total_s%d", i))
	}
}

// Now returns the kernel's virtual time (the horizon every shard has
// reached).
func (k *Kernel) Now() float64 { return k.now }

// Shards returns the shard count.
func (k *Kernel) Shards() int { return len(k.shards) }

// ShardOf returns the shard owning node.
func (k *Kernel) ShardOf(node int32) int32 { return k.shardOf[node] }

// Steps returns the total number of events executed.
func (k *Kernel) Steps() uint64 {
	var n uint64
	for _, p := range k.shards {
		n += p.steps
	}
	return n
}

// Proc returns shard i's context, for seeding initial events before Run.
// Initial events for a node must be scheduled on its owning shard.
func (k *Kernel) Proc(i int) *Proc { return k.shards[i] }

// Seed schedules an initial timer on node at absolute time at, routing to
// the owning shard. It is the pre-Run convenience over Proc/At.
func (k *Kernel) Seed(node int32, at float64, kind uint16, tag uint32, a, b float64) {
	k.shards[k.shardOf[node]].at(node, at, kind, tag, a, b)
}

// Now returns the shard's current virtual time.
func (p *Proc) Now() float64 { return p.now }

// Shard returns the shard's index.
func (p *Proc) Shard() int32 { return p.id }

// Uint64 draws from node's PCG stream. The node must be local.
func (p *Proc) Uint64(node int32) uint64 {
	return p.k.rngs[node].Uint64()
}

// Float64 draws a uniform [0, 1) float from node's stream.
func (p *Proc) Float64(node int32) float64 {
	return float64(p.Uint64(node)>>11) / (1 << 53)
}

// at schedules a timer event on a local node at absolute time at.
//
//lint:noalloc
func (p *Proc) at(node int32, at float64, kind uint16, tag uint32, a, b float64) {
	if p.k.shardOf[node] != p.id {
		panic(fmt.Sprintf("shard: timer on node %d scheduled from shard %d (owner %d)",
			node, p.id, p.k.shardOf[node]))
	}
	seq := p.k.seqs[node]
	p.k.seqs[node] = seq + 1
	p.push(Ev{At: at, A: a, B: b, Seq: seq, From: node, Node: node, Tag: tag, Kind: kind})
}

// After schedules a timer on a local node d seconds from now. Negative
// delays panic: they would reorder causality.
//
//lint:noalloc
func (p *Proc) After(node int32, d float64, kind uint16, tag uint32, a, b float64) {
	if d < 0 {
		panic(fmt.Sprintf("shard: negative delay %v", d))
	}
	p.at(node, p.now+d, kind, tag, a, b)
}

// Send schedules a message event from a local node to any node, arriving
// after delay. Cross-shard sends must respect the configured lookahead
// and buffer in the outbox until the window barrier.
//
//lint:noalloc
func (p *Proc) Send(from, to int32, delay float64, kind uint16, tag uint32, a, b float64) {
	if delay < 0 {
		panic(fmt.Sprintf("shard: negative delay %v", delay))
	}
	seq := p.k.seqs[from]
	p.k.seqs[from] = seq + 1
	ev := Ev{At: p.now + delay, A: a, B: b, Seq: seq, From: from, Node: to, Tag: tag, Kind: kind}
	dst := p.k.shardOf[to]
	if dst == p.id {
		p.push(ev)
		return
	}
	if delay < p.k.lookahead {
		panic(fmt.Sprintf("shard: cross-shard delay %v below lookahead %v (nodes %d->%d)",
			delay, p.k.lookahead, from, to))
	}
	p.out[dst] = append(p.out[dst], ev)
}

// runWindow executes the shard's events with At < horizon and advances
// the shard clock to the horizon.
//
//lint:noalloc BenchmarkShardWindow
func (p *Proc) runWindow(horizon float64) {
	n := uint64(0)
	for len(p.heap) > 0 && p.heap[0].At < horizon {
		ev := p.pop()
		p.now = ev.At
		n++
		p.k.handler.Event(p, ev)
	}
	p.now = horizon
	p.executed = n
	p.steps += n
}

// runShare is the pool body: one shard's window.
//
//lint:noalloc
func (k *Kernel) runShare(i int) {
	k.shards[i].runWindow(k.horizon)
}

// Run advances the kernel to virtual time `until`: every event with
// At < until executes, in key order, and all shard clocks land exactly on
// `until`. Events scheduled at exactly `until` run in the next call —
// callers sample between calls, so the cut must be identical for every
// shard count, and it is: the strict inequality is partition-independent.
//
//lint:noalloc BenchmarkShardWindow
func (k *Kernel) Run(until float64) {
	for {
		tNext := math.Inf(1)
		for _, p := range k.shards {
			if len(p.heap) > 0 && p.heap[0].At < tNext {
				tNext = p.heap[0].At
			}
		}
		if tNext >= until {
			break
		}
		horizon := until
		if h := tNext + k.lookahead; h < horizon {
			horizon = h
		}
		k.horizon = horizon
		if len(k.shards) == 1 {
			k.shards[0].runWindow(horizon)
		} else if k.lastBurst >= inlineBurst && k.pool.Workers() > 0 {
			k.pool.Run(k.runShareFn)
		} else {
			for i := range k.shards {
				k.runShare(i)
			}
		}
		burst := 0
		for i, p := range k.shards {
			burst += int(p.executed)
			if k.obsExecuted != nil {
				k.obsExecuted[i].Add(p.executed)
			}
		}
		k.lastBurst = burst
		k.obsWindows.Inc()
		k.obsWinLen.Observe(horizon - tNext)
		k.exchange()
	}
	for _, p := range k.shards {
		p.now = until
	}
	k.now = until
}

// exchange is the window barrier's deterministic cross-shard merge: every
// outbox drains into its destination shard's heap in fixed source-shard
// order. No sort is needed: events carry the globally unique total key
// (At, From, Seq), and a min-heap's pop sequence under a total order
// depends only on its contents, never on insertion order — so execution
// is identical for any drain order, and the fixed order makes even the
// heap layout reproducible.
//
//lint:noalloc
func (k *Kernel) exchange() {
	for dst, dp := range k.shards {
		total := 0
		for _, sp := range k.shards {
			out := sp.out[dst]
			if len(out) == 0 {
				continue
			}
			total += len(out)
			for i := range out {
				dp.push(out[i])
			}
			sp.out[dst] = out[:0]
		}
		if total > 0 {
			k.obsMerged.Add(uint64(total))
		}
	}
}

// --- hand-specialized 4-ary min-heap over Ev values ---

// less orders events by the partition-independent key (At, From, Seq).
func less(a, b *Ev) bool {
	if a.At < b.At {
		return true
	}
	if b.At < a.At {
		return false
	}
	if a.From != b.From {
		return a.From < b.From
	}
	return a.Seq < b.Seq
}

// The heap is 4-ary: parent (i-1)/4, children 4i+1..4i+4. Sift-up — the
// hot direction, since every barrier merge is a run of pushes — walks
// half the levels of a binary heap; sift-down compares up to four
// children per level but over half the levels, so pop breaks even.
// Both directions sift a hole instead of swapping: one 48-byte copy per
// level rather than two.

// push inserts ev.
//
//lint:noalloc BenchmarkShardWindow
func (p *Proc) push(ev Ev) {
	q := append(p.heap, ev)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !less(&ev, &q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = ev
	p.heap = q
}

// pop removes and returns the minimum event, sifting a hole down for the
// displaced last element. The heap must be non-empty.
//
//lint:noalloc BenchmarkShardWindow
func (p *Proc) pop() Ev {
	q := p.heap
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q = q[:n]
	p.heap = q
	if n == 0 {
		return top
	}
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		for r := c + 1; r < end; r++ {
			if less(&q[r], &q[c]) {
				c = r
			}
		}
		if !less(&q[c], &last) {
			break
		}
		q[i] = q[c]
		i = c
	}
	q[i] = last
	return top
}
