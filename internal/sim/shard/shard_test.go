package shard

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"disttime/internal/obs"
	"disttime/internal/par"
)

// gossip is the test workload: every node re-arms a jittered timer and, on
// each tick, sends payloads to two randomly drawn peers. Receipt order,
// payload values, and the nodes' own random streams all fold into a
// per-node FNV-1a hash, so the fingerprint is sensitive to any
// perturbation of event order or randomness.
type gossip struct {
	nodes int32
	l     float64 // minimum message delay == kernel lookahead
	hash  []uint64
	recv  []uint64
}

const (
	kindTick = 1
	kindMsg  = 2
)

func newGossip(nodes int32, l float64) *gossip {
	g := &gossip{nodes: nodes, l: l, hash: make([]uint64, nodes), recv: make([]uint64, nodes)}
	for i := range g.hash {
		g.hash[i] = 14695981039346656037 // FNV offset basis
	}
	return g
}

func (g *gossip) mix(node int32, v uint64) {
	h := g.hash[node]
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	g.hash[node] = h
}

func (g *gossip) Event(p *Proc, ev Ev) {
	switch ev.Kind {
	case kindTick:
		n := ev.Node
		g.mix(n, math.Float64bits(p.Now()))
		for i := 0; i < 2; i++ {
			peer := int32(p.Uint64(n) % uint64(g.nodes))
			delay := g.l * (1 + p.Float64(n))
			p.Send(n, peer, delay, kindMsg, ev.Tag+1, p.Float64(n), float64(n))
		}
		p.After(n, g.l*(0.5+p.Float64(n)), kindTick, ev.Tag+1, 0, 0)
	case kindMsg:
		n := ev.Node
		g.recv[n]++
		g.mix(n, uint64(ev.From))
		g.mix(n, uint64(ev.Tag))
		g.mix(n, math.Float64bits(ev.A))
		g.mix(n, math.Float64bits(ev.At))
	default:
		panic("gossip: unknown kind")
	}
}

// fingerprint folds the full per-node state into one printable digest.
func (g *gossip) fingerprint() string {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	for i := range g.hash {
		mix(g.hash[i])
		mix(g.recv[i])
	}
	return fmt.Sprintf("%016x", h)
}

// runGossip builds a kernel, seeds one tick per node, and runs it in
// sampled segments (several Run calls), returning the digest after each
// segment. Sampling mid-run is deliberate: the Run(until) cut must be
// partition-independent too.
func runGossip(t *testing.T, nodes int32, shards int, seed uint64, shardOf func(int32) int32) []string {
	t.Helper()
	const l = 0.25
	g := newGossip(nodes, l)
	k, err := New(Config{
		Nodes: int(nodes), Shards: shards, Seed: seed,
		Lookahead: l, ShardOf: shardOf, Handler: g,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer k.Close()
	for n := int32(0); n < nodes; n++ {
		k.Seed(n, float64(n%7)*0.01, kindTick, 0, 0, 0)
	}
	var digests []string
	for _, until := range []float64{3, 7, 10} {
		k.Run(until)
		digests = append(digests, g.fingerprint())
	}
	if k.Steps() == 0 {
		t.Fatal("kernel executed no events")
	}
	return digests
}

// TestDeterminismAcrossShardCounts checks the kernel's core contract: a
// seeded run produces byte-identical results for every shard count,
// including mid-run samples, and for a non-default partition map.
func TestDeterminismAcrossShardCounts(t *testing.T) {
	for _, seed := range []uint64{1, 42, 20260808} {
		want := runGossip(t, 64, 1, seed, nil)
		for _, shards := range []int{2, 4, 8} {
			got := runGossip(t, 64, shards, seed, nil)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d shards %d sample %d: digest %s, want %s (shards=1)",
						seed, shards, i, got[i], want[i])
				}
			}
		}
		// Striped partition instead of contiguous blocks.
		striped := runGossip(t, 64, 4, seed, func(n int32) int32 { return n % 4 })
		for i := range want {
			if striped[i] != want[i] {
				t.Fatalf("seed %d striped: digest %s, want %s", seed, striped[i], want[i])
			}
		}
	}
}

// TestDeterminismSeedSensitivity checks different seeds give different
// runs (the digest is not degenerate).
func TestDeterminismSeedSensitivity(t *testing.T) {
	a := runGossip(t, 32, 2, 1, nil)
	b := runGossip(t, 32, 2, 2, nil)
	if a[len(a)-1] == b[len(b)-1] {
		t.Fatalf("seeds 1 and 2 produced the same digest %s", a[0])
	}
}

// refRun is an independent reference executor: it ignores windows and
// barriers entirely, instead repeatedly executing the globally minimal
// event by (At, From, Seq) across all shard heaps and draining outboxes
// after every event. Agreement with Run means the windowed, batched,
// merge-at-barrier machinery preserves the one true event order.
func refRun(k *Kernel, until float64) {
	for {
		best := -1
		for i, p := range k.shards {
			if len(p.heap) == 0 {
				continue
			}
			if best < 0 || less(&p.heap[0], &k.shards[best].heap[0]) {
				best = i
			}
		}
		if best < 0 || k.shards[best].heap[0].At >= until {
			break
		}
		p := k.shards[best]
		ev := p.pop()
		p.now = ev.At
		p.steps++
		k.handler.Event(p, ev)
		// Drain every outbox immediately; arrival times are all in the
		// future, so eager delivery cannot disturb key order.
		for _, sp := range k.shards {
			for dst := range sp.out {
				for _, out := range sp.out[dst] {
					k.shards[dst].push(out)
				}
				sp.out[dst] = sp.out[dst][:0]
			}
		}
	}
	for _, p := range k.shards {
		p.now = until
	}
	k.now = until
}

// TestWindowedRunMatchesReference cross-checks Run against refRun on the
// same workload and seed.
func TestWindowedRunMatchesReference(t *testing.T) {
	const l = 0.25
	build := func() (*gossip, *Kernel) {
		g := newGossip(48, l)
		k, err := New(Config{Nodes: 48, Shards: 4, Seed: 99, Lookahead: l, Handler: g})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		for n := int32(0); n < 48; n++ {
			k.Seed(n, float64(n)*0.003, kindTick, 0, 0, 0)
		}
		return g, k
	}
	gWant, kRef := build()
	refRun(kRef, 8)
	kRef.Close()
	gGot, kWin := build()
	kWin.Run(8)
	kWin.Close()
	if gGot.fingerprint() != gWant.fingerprint() {
		t.Fatalf("windowed digest %s, reference digest %s", gGot.fingerprint(), gWant.fingerprint())
	}
	if kWin.Steps() != kRef.Steps() {
		t.Fatalf("windowed executed %d events, reference %d", kWin.Steps(), kRef.Steps())
	}
}

// TestParallelWindowsDeterministic forces real worker goroutines (a
// 4-slot budget and bursts above the inline threshold) and checks the
// digest still matches the single-shard run. Under -race this also proves
// window execution and barrier merge are race-clean.
func TestParallelWindowsDeterministic(t *testing.T) {
	prev := par.SetLimit(4)
	defer par.SetLimit(prev)
	const nodes, l = 512, 0.25
	run := func(shards int) string {
		g := newGossip(nodes, l)
		k, err := New(Config{Nodes: nodes, Shards: shards, Seed: 7, Lookahead: l, Handler: g})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer k.Close()
		if shards > 1 && k.pool.Workers() == 0 {
			t.Fatal("pool got no workers despite SetLimit(4)")
		}
		for n := int32(0); n < nodes; n++ {
			k.Seed(n, float64(n%11)*0.001, kindTick, 0, 0, 0)
		}
		k.Run(6)
		return g.fingerprint()
	}
	want := run(1)
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != want {
			t.Fatalf("shards %d digest %s, want %s", shards, got, want)
		}
	}
}

// TestRunBoundary checks the Run(until) cut: events at exactly `until`
// stay pending and fire in the next call.
type recorder struct{ times []float64 }

func (r *recorder) Event(p *Proc, ev Ev) { r.times = append(r.times, ev.At) }

func TestRunBoundary(t *testing.T) {
	r := &recorder{}
	k, err := New(Config{Nodes: 4, Shards: 2, Seed: 1, Lookahead: 1, Handler: r})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer k.Close()
	k.Seed(0, 1.0, kindTick, 0, 0, 0)
	k.Seed(1, 2.0, kindTick, 0, 0, 0)
	k.Seed(2, 2.0, kindTick, 0, 0, 0)
	k.Run(2.0)
	if len(r.times) != 1 || r.times[0] > 1.0 || r.times[0] < 1.0 {
		t.Fatalf("Run(2) executed %v, want exactly the t=1 event", r.times)
	}
	if now := k.Now(); now < 2.0 || now > 2.0 {
		t.Fatalf("Now() = %v after Run(2), want 2", now)
	}
	k.Run(2.5)
	if len(r.times) != 3 {
		t.Fatalf("Run(2.5) left %d events executed, want 3 (boundary events fired)", len(r.times))
	}
}

// TestLookaheadViolationPanics checks a cross-shard send below the
// configured lookahead is rejected loudly rather than silently breaking
// the window invariant.
type violator struct{ delay float64 }

func (v *violator) Event(p *Proc, ev Ev) {
	// Node 0 lives on shard 0, node 3 on the last shard.
	p.Send(0, 3, v.delay, kindMsg, 0, 0, 0)
}

func TestLookaheadViolationPanics(t *testing.T) {
	k, err := New(Config{Nodes: 4, Shards: 2, Seed: 1, Lookahead: 0.5, Handler: &violator{delay: 0.1}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer k.Close()
	k.Seed(0, 0, kindTick, 0, 0, 0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("cross-shard send below lookahead did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "lookahead") {
			t.Fatalf("panic %v, want a lookahead violation", r)
		}
	}()
	k.Run(1)
}

// TestNegativeDelayPanics checks negative After/Send delays are rejected.
func TestNegativeDelayPanics(t *testing.T) {
	r := &recorder{}
	k, err := New(Config{Nodes: 2, Shards: 1, Seed: 1, Handler: r})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer k.Close()
	p := k.Proc(0)
	for name, fn := range map[string]func(){
		"After": func() { p.After(0, -1, kindTick, 0, 0, 0) },
		"Send":  func() { p.Send(0, 1, -1, kindMsg, 0, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with negative delay did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestConfigValidation covers New's error paths and clamping.
func TestConfigValidation(t *testing.T) {
	h := &recorder{}
	if _, err := New(Config{Nodes: 0, Handler: h}); err == nil {
		t.Fatal("Nodes=0 accepted")
	}
	if _, err := New(Config{Nodes: 4}); err == nil {
		t.Fatal("nil handler accepted")
	}
	if _, err := New(Config{Nodes: 4, Shards: 2, Lookahead: 0, Handler: h}); err == nil {
		t.Fatal("multi-shard with zero lookahead accepted")
	}
	if _, err := New(Config{Nodes: 4, Shards: 2, Lookahead: 1,
		ShardOf: func(int32) int32 { return 9 }, Handler: h}); err == nil {
		t.Fatal("out-of-range ShardOf accepted")
	}
	k, err := New(Config{Nodes: 3, Shards: 16, Lookahead: 1, Handler: h})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer k.Close()
	if k.Shards() != 3 {
		t.Fatalf("Shards() = %d with 3 nodes, want clamped to 3", k.Shards())
	}
	if k.ShardOf(2) != 2 {
		t.Fatalf("ShardOf(2) = %d, want 2", k.ShardOf(2))
	}
}

// TestObserve checks the kernel's metrics: windows advance, cross-shard
// merges are counted, and per-shard executed counters sum to Steps().
func TestObserve(t *testing.T) {
	const l = 0.25
	g := newGossip(32, l)
	k, err := New(Config{Nodes: 32, Shards: 4, Seed: 5, Lookahead: l, Handler: g})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer k.Close()
	reg := obs.NewRegistry()
	k.Observe(reg)
	for n := int32(0); n < 32; n++ {
		k.Seed(n, 0, kindTick, 0, 0, 0)
	}
	k.Run(5)
	if v := reg.Counter("simshard_windows_total").Value(); v == 0 {
		t.Fatal("no windows recorded")
	}
	if v := reg.Counter("simshard_merged_events_total").Value(); v == 0 {
		t.Fatal("no cross-shard merges recorded on a 4-shard gossip run")
	}
	var executed uint64
	for i := 0; i < 4; i++ {
		executed += reg.Counter(fmt.Sprintf("simshard_events_executed_total_s%d", i)).Value()
	}
	if executed != k.Steps() {
		t.Fatalf("per-shard executed counters sum to %d, Steps() = %d", executed, k.Steps())
	}
	if reg.LogHistogram("simshard_window_seconds").Count() == 0 {
		t.Fatal("window-length histogram empty")
	}
}

// TestHeapKeyOrderStress pushes an adversarial schedule (heavy At
// duplication across many From nodes) through one shard's heap and checks
// pops come out in exact (At, From, Seq) order.
func TestHeapKeyOrderStress(t *testing.T) {
	k, err := New(Config{Nodes: 8, Shards: 1, Seed: 3, Handler: &recorder{}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer k.Close()
	p := k.Proc(0)
	for i := 0; i < 5000; i++ {
		n := int32(p.Uint64(0) % 8)
		at := float64(p.Uint64(0) % 50) // heavy duplication
		p.at(n, at, kindTick, 0, 0, 0)
	}
	prev := Ev{At: -1}
	for i := 0; i < 5000; i++ {
		ev := p.pop()
		if less(&ev, &prev) {
			t.Fatalf("pop %d out of order: %+v after %+v", i, ev, prev)
		}
		prev = ev
	}
	if len(p.heap) != 0 {
		t.Fatalf("%d events left after 5000 pops", len(p.heap))
	}
}

// TestSchedulingAllocs checks the value-typed scheduling path is
// allocation-free once the heap's backing array is warm.
func TestSchedulingAllocs(t *testing.T) {
	k, err := New(Config{Nodes: 2, Shards: 1, Seed: 1, Handler: &recorder{}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer k.Close()
	p := k.Proc(0)
	// Warm the heap.
	for i := 0; i < 64; i++ {
		p.at(0, float64(i), kindTick, 0, 0, 0)
	}
	for len(p.heap) > 0 {
		p.pop()
	}
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			p.at(0, float64(i), kindTick, 0, 0, 0)
		}
		for len(p.heap) > 0 {
			p.pop()
		}
	})
	if allocs > 0 {
		t.Fatalf("warm push/pop cycle allocates %v per op, want 0", allocs)
	}
}
