package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New(1)
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	s.Run()
	if !sort.Float64sAreSorted(got) {
		t.Errorf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Errorf("ran %d events, want 5", len(got))
	}
	if s.Now() != 5 {
		t.Errorf("Now() = %v, want 5", s.Now())
	}
	if s.Steps() != 5 {
		t.Errorf("Steps() = %v, want 5", s.Steps())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(7, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestAfter(t *testing.T) {
	s := New(1)
	var at float64
	s.At(10, func() {
		s.After(5, func() { at = s.Now() })
	})
	s.Run()
	if at != 15 {
		t.Errorf("After fired at %v, want 15", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.At(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling in the past")
		}
	}()
	s.At(5, func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative delay")
		}
	}()
	s.After(-1, func() {})
}

func TestCancel(t *testing.T) {
	s := New(1)
	ran := false
	e := s.At(5, func() { ran = true })
	e.Cancel()
	s.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	// Double-cancel and nil-cancel are harmless.
	e.Cancel()
	var nilEvent *Event
	nilEvent.Cancel()
}

func TestCancelInterleaved(t *testing.T) {
	s := New(1)
	var got []string
	a := s.At(1, func() { got = append(got, "a") })
	s.At(2, func() { got = append(got, "b") })
	c := s.At(3, func() { got = append(got, "c") })
	a.Cancel()
	s.At(2.5, func() { c.Cancel() })
	s.Run()
	if len(got) != 1 || got[0] != "b" {
		t.Errorf("got %v, want [b]", got)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var got []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	s.RunUntil(3)
	if len(got) != 3 {
		t.Errorf("RunUntil(3) ran %d events, want 3", len(got))
	}
	if s.Now() != 3 {
		t.Errorf("Now() = %v, want 3", s.Now())
	}
	s.RunUntil(10)
	if len(got) != 5 {
		t.Errorf("RunUntil(10) total %d events, want 5", len(got))
	}
	if s.Now() != 10 {
		t.Errorf("Now() = %v, want exactly 10", s.Now())
	}
}

func TestRunUntilBackwardsPanics(t *testing.T) {
	s := New(1)
	s.RunUntil(5)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.RunUntil(4)
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	s := New(1)
	ran := false
	s.At(3, func() { ran = true })
	s.RunUntil(3)
	if !ran {
		t.Error("event exactly at boundary did not run")
	}
}

func TestEvery(t *testing.T) {
	s := New(1)
	var times []float64
	stop := s.Every(10, func() { times = append(times, s.Now()) })
	s.At(35, func() { stop() })
	s.RunUntil(100)
	want := []float64{10, 20, 30}
	if len(times) != len(want) {
		t.Fatalf("ticks at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticks at %v, want %v", times, want)
		}
	}
	if s.Pending() != 0 {
		t.Errorf("Pending() = %d after stop, want 0", s.Pending())
	}
}

func TestEveryStopWithinTick(t *testing.T) {
	s := New(1)
	n := 0
	var stop func()
	stop = s.Every(1, func() {
		n++
		if n == 3 {
			stop()
		}
	})
	s.RunUntil(100)
	if n != 3 {
		t.Errorf("ticked %d times, want 3", n)
	}
}

func TestEveryBadPeriodPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Every(0, func() {})
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		s := New(42)
		var got []float64
		var schedule func()
		n := 0
		schedule = func() {
			if n >= 100 {
				return
			}
			n++
			d := s.Rand().Float64() * 10
			s.After(d, func() {
				got = append(got, s.Now())
				schedule()
			})
		}
		schedule()
		s.Run()
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPending(t *testing.T) {
	s := New(1)
	e1 := s.At(1, func() {})
	s.At(2, func() {})
	if got := s.Pending(); got != 2 {
		t.Errorf("Pending() = %d, want 2", got)
	}
	e1.Cancel()
	if got := s.Pending(); got != 1 {
		t.Errorf("Pending() after cancel = %d, want 1", got)
	}
}

func TestEventTime(t *testing.T) {
	s := New(1)
	e := s.At(17, func() {})
	if e.Time() != 17 {
		t.Errorf("Time() = %v", e.Time())
	}
}

// TestHeapOrderProperty: for any random batch of schedule times, execution
// order is the sorted order.
func TestHeapOrderProperty(t *testing.T) {
	f := func(seed uint64, raw []float64) bool {
		s := New(seed)
		rng := rand.New(rand.NewPCG(seed, 99))
		var times []float64
		for i := 0; i < len(raw) || i < 3; i++ {
			times = append(times, rng.Float64()*1000)
		}
		var got []float64
		for _, at := range times {
			at := at
			s.At(at, func() { got = append(got, at) })
		}
		s.Run()
		return sort.Float64sAreSorted(got) && len(got) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(uint64(i))
		for j := 0; j < 1000; j++ {
			s.After(s.Rand().Float64()*100, func() {})
		}
		s.Run()
	}
}
